// Atom-granularity design-space ablation — the Figure 19 scenario: compare
// 1/2/3-bit atom designs at matched BitOps/cycle on the cycle-accurate tile
// simulator, including the shift-range cost that makes 1-bit atoms
// area-hungry.
//
//	go run ./examples/atomgranularity
package main

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/energy"
	"ristretto/internal/refconv"
	"ristretto/internal/ristretto"
	"ristretto/internal/workload"
)

func main() {
	// Matched BitOps/cycle per tile: 64×1b ≈ 16×2b ≈ 7×3b.
	mults := map[int]int{1: 64, 2: 16, 3: 7}

	fmt.Println("Shift ranges a coupled product would need (why shifts are decoupled):")
	for _, gran := range []int{1, 2, 3} {
		fmt.Printf("  %d-bit atoms, 8b x 8b: %v\n", gran, atom.ProductShiftRange(8, 8, atom.Granularity(gran)))
	}

	fmt.Println("\nCycle-accurate single-tile runs (8-bit sparse operands, same tensor):")
	fmt.Printf("%5s %6s %10s %12s %12s %14s\n", "gran", "mults", "cycles", "atom mults", "rel area", "perf/area")
	var baseCycles float64
	for _, gran := range []int{1, 2, 3} {
		g := workload.NewGen(3) // same seed: same underlying values
		f := g.FeatureMapExact(8, 16, 16, 8, 2, 0.5, 0.7)
		w := g.KernelsExact(16, 8, 3, 3, 8, 2, 0.5, 0.7)
		cfg := ristretto.Config{Tiles: 1, Tile: ristretto.TileConfig{Mults: mults[gran], Gran: atom.Granularity(gran)}}
		sim := ristretto.SimulateConv(f, w, 1, 1, cfg)
		if !sim.Output.Equal(refconv.Conv(f, w, 1, 1)) {
			panic("granularity variant produced wrong results")
		}
		ab := energy.RistrettoArea(32, mults[gran], gran)
		area := ab.Atomizer + ab.Atomputer + ab.Atomulator + ab.AccBuffer
		if gran == 1 {
			baseCycles = float64(sim.Cycles)
		}
		_ = baseCycles
		fmt.Printf("%4db %6d %10d %12d %12.2f %14.4f\n",
			gran, mults[gran], sim.Cycles, sim.Products, area/0.348, 1e3/(float64(sim.Cycles)*area))
	}
	fmt.Println("\n2-bit atoms balance bit-sparsity exploitation against shifter/accumulator area (paper Figure 19).")
}
