package main

import (
	"os"
	"testing"
)

// TestMainRuns executes the example end to end with stdout silenced: the
// example programs double as smoke tests of the public flow they document,
// and several of them cross-check against the reference convolution and
// crash on divergence.
func TestMainRuns(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	old := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = old }()
	main()
}
