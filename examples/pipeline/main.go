// End-to-end inference pipeline: a small three-layer CNN runs entirely
// through condensed streaming computation, with the post-processing unit
// (ReLU, requantization, compression, atom statistics) closing the loop
// between layers — the full on-chip cycle of the paper's Figure 7.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"ristretto/internal/core"
	"ristretto/internal/quant"
	"ristretto/internal/refconv"
	"ristretto/internal/ristretto"
	"ristretto/internal/workload"
)

func main() {
	g := workload.NewGen(11)
	input := g.FeatureMap(3, 32, 32, 8, 0.6) // RGB-like 32×32 input

	layers := []ristretto.PipelineLayer{
		{ // conv1: 3→16, 3×3, mixed 4-bit weights
			Kernels: g.Kernels(16, 3, 3, 3, 4, 0.5),
			Stride:  1, Pad: 1,
			Post: ristretto.PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 5},
		},
		{ // conv2: 16→32, 3×3 stride 2, 8-bit weights
			Kernels: g.Kernels(32, 16, 3, 3, 8, 0.45),
			Stride:  2, Pad: 1,
			Post: ristretto.PostProcessor{OutBits: 4, Gran: 2, ShiftRight: 10},
		},
		{ // conv3: 32→10, 1×1, 2-bit weights
			Kernels: g.Kernels(10, 32, 1, 1, 2, 0.5),
			Stride:  1, Pad: 0,
			Post: ristretto.PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 2},
		},
	}

	res := ristretto.RunPipeline(input, layers, core.Config{Gran: 2, Multiplier: 32})

	// Reference chain for verification.
	cur := input
	for _, l := range layers {
		out := refconv.Conv(cur, l.Kernels, l.Stride, l.Pad)
		fm, _ := l.Post.Run(out)
		cur = fm
	}
	for i := range cur.Data {
		if cur.Data[i] != res.Output.Data[i] {
			log.Fatal("pipeline diverged from the dense reference chain")
		}
	}

	fmt.Println("3-layer CSC pipeline, bit-exact against the dense reference chain")
	fmt.Printf("input : %v\n", input)
	fmt.Printf("output: %v\n\n", res.Output)
	fmt.Printf("%-6s %10s %12s %12s %14s %12s\n", "layer", "steps", "act atoms", "w atoms", "atom products", "out density")
	cur = input
	for i, l := range layers {
		st := res.Stats[i]
		out := refconv.Conv(cur, l.Kernels, l.Stride, l.Pad)
		fm, _ := l.Post.Run(out)
		d := quant.Measure(fm.Data, fm.Bits, 2)
		fmt.Printf("conv%-2d %10d %12d %12d %14d %11.1f%%\n", i+1, st.Steps, st.ActAtoms, st.WeightAtoms, st.Products, 100*d.ValueDensity)
		cur = fm
	}
	fmt.Println("\nThe post-processing unit's per-channel atom counts feed the next layer's")
	fmt.Println("w/a load balancer — the statistics SparTen cannot obtain before execution:")
	for li, counts := range res.AtomStats {
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		fmt.Printf("  after conv%d: %d output channels, atoms/channel min %d max %d\n", li+1, len(counts), min, max)
	}
}
