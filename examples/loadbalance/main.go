// Load-balancing study on conv3_2 of 4-bit ResNet-18 — the Figure 18
// scenario: 128 input feature maps and their kernels distributed over 32
// compute tiles under the three policies, visualized as per-tile workloads.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"strings"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/experiments"
)

func main() {
	b := experiments.NewQuickBench(1, 1)
	b.Nets = []string{"ResNet-18"}
	n := b.Networks()[0]
	stats := b.Stats(n, "4b", atom.Granularity(2))
	for _, s := range stats {
		if s.Layer.Name != "conv3_2" {
			continue
		}
		fmt.Printf("layer %s: %d input channels -> 32 compute tiles (Eq. 5 costs)\n\n", s.Layer.Name, s.Layer.C)
		costs := make([]int64, s.Layer.C)
		for c := range costs {
			costs[c] = balance.Cost(s.ActAtomsPerChan[c], s.WAtomsPerChan[c], 32)
		}
		for _, p := range []balance.Policy{balance.None, balance.WeightOnly, balance.WeightAct} {
			gc := balance.GroupCosts(balance.Assign(p, costs, s.WAtomsPerChan, 32), costs)
			max, min, mean := balance.Spread(gc)
			fmt.Printf("%s (max %d, min %d, mean %.0f, imbalance %.2fx):\n", p, max, min, mean, float64(max)/mean)
			for tile, c := range gc {
				bars := int(float64(c) / float64(max) * 50)
				fmt.Printf("  tile %2d %8d |%s\n", tile, c, strings.Repeat("#", bars))
			}
			fmt.Println()
		}
		return
	}
	panic("conv3_2 not found")
}
