// Mixed-precision network sweep: estimate ResNet-18 inference across
// quantization settings on Ristretto and all baselines — the workload the
// paper's introduction motivates (mixed-precision quantized models with
// dual-sided irregular sparsity).
//
//	go run ./examples/mixedprecision
package main

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/energy"
	"ristretto/internal/experiments"
	"ristretto/internal/ristretto"
)

func main() {
	b := experiments.NewQuickBench(7, 2) // half-scale spatial dims for a fast demo
	b.Nets = []string{"ResNet-18"}
	n := b.Networks()[0]
	m := energy.Default()

	fmt.Printf("ResNet-18 (%d conv layers), synthetic quantized+pruned operands, 500 MHz\n\n", len(n.Layers))
	fmt.Printf("%-8s %-12s %14s %12s %12s\n", "prec", "accelerator", "cycles", "ms", "energy mJ")
	for _, prec := range experiments.PrecisionNames {
		stats := b.Stats(n, prec, atom.Granularity(2))
		rcfg := ristretto.Config{Tiles: 32, Tile: ristretto.TileConfig{Mults: 16, Gran: 2}, Policy: balance.WeightAct}
		rp := ristretto.EstimateNetwork(stats, rcfg)
		print(prec, "ristretto", rp.Cycles, m.TotalPJ(rp.Counters))

		bc, bcnt := bitfusion.EstimateNetwork(stats, bitfusion.DefaultConfig())
		print(prec, "bitfusion", bc, m.TotalPJ(bcnt))
		lc, lcnt := laconic.EstimateNetwork(stats, laconic.DefaultConfig())
		print(prec, "laconic", lc, m.TotalPJ(lcnt))
		sc, scnt := sparten.EstimateNetwork(stats, sparten.DefaultConfig())
		print(prec, "sparten", sc, m.TotalPJ(scnt))
		mc, mcnt := sparten.EstimateNetwork(stats, sparten.Config{CUs: 32, MP: true})
		print(prec, "sparten-mp", mc, m.TotalPJ(mcnt))
		fmt.Println()
	}
	fmt.Println("(half-scale spatial dims; run cmd/ristretto-bench -scale 1 for paper-scale figures)")
}

func print(prec, accel string, cycles int64, pj float64) {
	fmt.Printf("%-8s %-12s %14d %12.3f %12.3f\n", prec, accel, cycles, float64(cycles)/500e6*1e3, pj/1e9)
}
