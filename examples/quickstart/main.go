// Quickstart: run one mixed-precision sparse convolution through condensed
// streaming computation, check it against the dense reference, and look at
// the work it took.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ristretto/internal/core"
	"ristretto/internal/refconv"
	"ristretto/internal/ristretto"
	"ristretto/internal/workload"
)

func main() {
	// A small layer: 16 input channels of 28×28 8-bit activations convolved
	// with 32 4-bit 3×3 kernels (mixed precision), both sides sparse.
	g := workload.NewGen(42)
	fmap := g.FeatureMap(16, 28, 28, 8, 0.45)  // ~45% of activations non-zero
	kernels := g.Kernels(32, 16, 3, 3, 4, 0.4) // ~40% of weights non-zero
	fmt.Println("input  :", fmap)
	fmt.Println("kernels:", kernels)

	// 1. The paper's Figure 5 in one call: a single mixed-precision multiply
	// as a 1-D convolution of atom streams.
	product, steps := core.MultiplyStreaming(13, 4, -11, 8, 2)
	fmt.Printf("\n-11 x 13 via 1-D stream convolution: %d in %d steps (partials %v)\n", product, len(steps), steps)

	// 2. Whole-layer condensed streaming computation, bit-exact vs the
	// dense reference.
	out, stats := core.Convolve(fmap, kernels, 1, 1, core.Config{Gran: 2, Multiplier: 32})
	want := refconv.Conv(fmap, kernels, 1, 1)
	if !out.Equal(want) {
		log.Fatal("CSC output does not match the dense reference")
	}
	fmt.Printf("\nCSC convolution verified against dense reference: %dx%dx%d outputs\n", out.K, out.H, out.W)
	fmt.Printf("  activation atoms streamed : %d\n", stats.ActAtoms)
	fmt.Printf("  static weight atoms       : %d\n", stats.WeightAtoms)
	fmt.Printf("  atom multiplications      : %d (dense equivalent: %d)\n",
		stats.Products, int64(fmap.Len())*int64(kernels.K*kernels.KH*kernels.KW)*16/int64(kernels.C))
	fmt.Printf("  intersection steps        : %d\n", stats.Steps)

	// 3. The same layer on the cycle-accurate compute-tile simulator with
	// 4 tiles of 16 multipliers.
	cfg := ristretto.Config{Tiles: 4, Tile: ristretto.TileConfig{Mults: 16, Gran: 2}, TileW: 14, TileH: 14}
	sim := ristretto.SimulateConv(fmap, kernels, 1, 1, cfg)
	if !sim.Output.Equal(want) {
		log.Fatal("cycle simulator output does not match the dense reference")
	}
	fmt.Printf("\ncycle-accurate simulation: %d cycles (%d crossbar stalls) across %d tiles\n",
		sim.Cycles, sim.Stalls, len(sim.TileCycles))
	for i, c := range sim.TileCycles {
		fmt.Printf("  tile %d: %d cycles\n", i, c)
	}
}
