// Command ristretto-sim estimates one network's inference on a chosen
// accelerator: cycles, per-layer utilization and the energy breakdown.
//
// Usage:
//
//	ristretto-sim -net ResNet-18 -precision 4b -accel ristretto
//	              [-tiles 32] [-mults 32] [-gran 2] [-balance wa|w|none]
//	              [-seed 1] [-scale 1] [-layers] [-telemetry] [-manifest path]
//	              [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/scnn"
	"ristretto/internal/baselines/snap"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/energy"
	"ristretto/internal/experiments"
	"ristretto/internal/model"
	"ristretto/internal/ristretto"
	"ristretto/internal/telemetry"
)

func main() {
	net := flag.String("net", "ResNet-18", "network: AlexNet, VGG-16, GoogLeNet, Inception-V2, ResNet-18, ResNet-50")
	precision := flag.String("precision", "8b", "8b, 4b, 2b or mix2/4")
	accel := flag.String("accel", "ristretto", "ristretto, ristretto-ns, bitfusion, laconic, laconic-mod, sparten, sparten-mp, scnn, snap")
	tiles := flag.Int("tiles", 32, "Ristretto compute tiles")
	mults := flag.Int("mults", 32, "atom multipliers per tile")
	gran := flag.Int("gran", 2, "atom granularity in bits (1-3)")
	bal := flag.String("balance", "wa", "load balancing: wa, w, none")
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor")
	perLayer := flag.Bool("layers", false, "print per-layer detail (ristretto only)")
	telem := flag.Bool("telemetry", false, "enable telemetry and print the counter snapshot")
	manifestPath := flag.String("manifest", "", "also write a run manifest to this path (implies -telemetry)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-sim"))
		return
	}

	// Validate every enum flag up front: an unknown value must name the
	// allowed set and exit non-zero instead of silently falling through (or
	// panicking deep inside a sweep).
	accels := []string{"ristretto", "ristretto-ns", "bitfusion", "laconic", "laconic-mod", "sparten", "sparten-mp", "scnn", "snap"}
	checkEnum("accel", *accel, accels)
	checkEnum("precision", *precision, experiments.PrecisionNames)
	checkEnum("balance", *bal, []string{"wa", "w", "none"})
	if *gran < 1 || *gran > 3 {
		fatal(fmt.Errorf("invalid -gran %d (allowed: 1, 2, 3)", *gran))
	}
	if *tiles < 1 {
		fatal(fmt.Errorf("invalid -tiles %d: must be >= 1", *tiles))
	}
	if *mults < 1 {
		fatal(fmt.Errorf("invalid -mults %d: must be >= 1", *mults))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if _, err := model.ByName(*net); err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-sim:", err)
		}
	}()
	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)
	b := experiments.NewQuickBench(*seed, *scale)
	b.Nets = []string{*net}
	n := b.Networks()[0]
	stats := b.Stats(n, *precision, atom.Granularity(*gran))

	var policy balance.Policy
	switch *bal {
	case "wa":
		policy = balance.WeightAct
	case "w":
		policy = balance.WeightOnly
	case "none":
		policy = balance.None
	}

	m := energy.Default()
	var cycles int64
	var cnt energy.Counters
	switch *accel {
	case "ristretto", "ristretto-ns":
		cfg := ristretto.Config{
			Tiles:  *tiles,
			Tile:   ristretto.TileConfig{Mults: *mults, Gran: atom.Granularity(*gran)},
			Policy: policy,
			Dense:  *accel == "ristretto-ns",
		}
		perf := ristretto.EstimateNetwork(stats, cfg)
		cycles, cnt = perf.Cycles, perf.Counters
		m = energy.ModelForGranularity(*gran)
		if *perLayer {
			fmt.Printf("%-16s %12s %12s %6s\n", "layer", "cycles", "ideal", "util")
			for i, lp := range perf.Layers {
				fmt.Printf("%-16s %12d %12d %5.1f%%\n", stats[i].Layer.Name, lp.Cycles, lp.IdealCycles, 100*lp.Utilization)
			}
		}
	case "bitfusion":
		cycles, cnt = bitfusion.EstimateNetwork(stats, bitfusion.DefaultConfig())
	case "laconic":
		cycles, cnt = laconic.EstimateNetwork(stats, laconic.DefaultConfig())
	case "sparten":
		cycles, cnt = sparten.EstimateNetwork(stats, sparten.DefaultConfig())
	case "sparten-mp":
		cycles, cnt = sparten.EstimateNetwork(stats, sparten.Config{CUs: 32, MP: true})
	case "laconic-mod":
		cycles, cnt = laconic.EstimateNetworkModified(stats, laconic.DefaultConfig())
	case "scnn":
		cycles, cnt = scnn.EstimateNetwork(stats, scnn.DefaultConfig())
	case "snap":
		cycles, cnt = snap.EstimateNetwork(stats, snap.DefaultConfig())
	}

	split := m.Split(cnt)
	fmt.Printf("network      : %s (%s, %d conv layers, %.2f GMACs)\n", n.Name, *precision, len(n.Layers), float64(n.MACs())/1e9)
	fmt.Printf("accelerator  : %s\n", *accel)
	fmt.Printf("cycles       : %d (%.3f ms @ 500 MHz)\n", cycles, float64(cycles)/500e3)
	fmt.Printf("energy       : %.3f mJ (compute %.3f, on-chip %.3f, DRAM %.3f)\n",
		split.Total()/1e9, split.ComputePJ/1e9, split.OnChipPJ/1e9, split.OffChipPJ/1e9)
	fmt.Printf("DRAM traffic : %.2f MB\n", float64(cnt.DRAMBytes)/(1<<20))

	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("\n== Telemetry ==")
		fmt.Print(snap.String())
		if *manifestPath != "" {
			m := telemetry.NewManifest("ristretto-sim")
			m.Seed = *seed
			m.Scale = *scale
			m.Workers = 1
			m.Nets = []string{*net}
			m.AttachSnapshot(snap)
			if err := m.Write(*manifestPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ristretto-sim: run manifest written to %s\n", *manifestPath)
		}
	}
}

func checkEnum(name, val string, allowed []string) {
	for _, a := range allowed {
		if val == a {
			return
		}
	}
	fatal(fmt.Errorf("invalid -%s %q (allowed: %s)", name, val, strings.Join(allowed, ", ")))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-sim:", err)
	os.Exit(1)
}
