// Command ristretto-bench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and prints them as text tables
// (optionally writing CSVs and a structured run manifest).
//
// Usage:
//
//	ristretto-bench [-seed N] [-scale N] [-parallel N] [-only "Figure 12"]
//	                [-csv dir] [-telemetry] [-manifest path]
//	                [-checkpoint path] [-resume] [-keep-going]
//	                [-cell-timeout d] [-retries N] [-fault spec]
//	                [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
//	ristretto-bench -bench-manifest path [-bench-baseline path]
//	                [-bench-compare path] [-bench-tolerance x]
//	                [-bench-alloc-slack n] [-bench-scale N]
//
// The second form is the perf-trajectory mode (ROADMAP item 1): it runs the
// tracked micro-benchmark suite (internal/benchmanifest.Registry) through
// testing.Benchmark plus one end-to-end experiment-suite pass at
// -bench-scale, and writes a ristretto.bench-manifest/v1 JSON document.
// -bench-compare re-runs the suite and fails (exit 1) when any benchmark
// exceeds the committed manifest's ns/op by more than -bench-tolerance× or
// its allocs/op by more than -bench-alloc-slack; CI runs this against the
// newest committed BENCH_*.json. -bench-baseline embeds another manifest's
// entries as the baseline section and computes the geomean speedup.
//
// -scale divides layer spatial dimensions (4 ≈ 16× faster, same ratios).
// -parallel bounds the experiment worker pool (0 = all CPUs); the output is
// bit-identical for every value — only the wall-clock changes.
// -telemetry turns the counter registry on, prints the per-stage
// busy/stall/idle utilization table after the results, and writes a run
// manifest (JSON: seed, scale, workers, git revision, per-figure timing,
// per-stage breakdowns — see EXPERIMENTS.md for the schema) next to the
// CSVs: -manifest overrides the path, which defaults to
// <csv dir>/run_manifest.json, or results/run_manifest.json without -csv.
//
// Fault tolerance: -checkpoint journals each completed experiment to an
// append-only crc-guarded file (schema ristretto.checkpoint/v1); after an
// interrupt (SIGINT/SIGTERM flush the journal and write a partial manifest,
// exit code 130) or a crash, -resume replays the journaled cells and runs
// only what is missing, producing output bit-identical to an uninterrupted
// run. -keep-going collects every cell failure instead of stopping at the
// first; -cell-timeout and -retries bound hung and transient cells; -fault
// injects a deterministic fault schedule (see EXPERIMENTS.md) for chaos
// testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ristretto/internal/benchmanifest"
	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	parallel := flag.Int("parallel", 0, "max concurrent experiments (0 = all CPUs, 1 = serial)")
	only := flag.String("only", "", "run only the experiment whose ID contains this substring")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	quiet := flag.Bool("q", false, "suppress the run-stats footer")
	telem := flag.Bool("telemetry", false, "enable telemetry: print the stage-utilization table and write a run manifest")
	manifestPath := flag.String("manifest", "", "run-manifest path (default <csv dir or results>/run_manifest.json; implies -telemetry)")
	checkpoint := flag.String("checkpoint", "", "journal completed experiments to this file (schema "+experiments.CheckpointSchema+")")
	resume := flag.Bool("resume", false, "replay completed cells from the -checkpoint journal and run only what is missing")
	keepGoing := flag.Bool("keep-going", false, "run every experiment even after failures, reporting all of them")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-experiment wall-time bound (0 = none)")
	retries := flag.Int("retries", 0, "max re-attempts per experiment for transient errors")
	faultSpec := flag.String("fault", "", "deterministic fault-injection spec, e.g. \"seed=7,panic=0.1,transient=0.2:2,delay=0.05:10ms,kill-after=5\"")
	benchManifestPath := flag.String("bench-manifest", "", "run the tracked micro-benchmark suite and write a "+benchmanifest.Schema+" document to this path, then exit")
	benchCompare := flag.String("bench-compare", "", "compare a fresh micro-benchmark run against the committed manifest at this path; exit 1 on regression")
	benchBaseline := flag.String("bench-baseline", "", "embed this manifest's entries as the baseline section of -bench-manifest output and compute the geomean speedup")
	benchTolerance := flag.Float64("bench-tolerance", 1.25, "ns/op regression ratio allowed by -bench-compare")
	benchAllocSlack := flag.Int64("bench-alloc-slack", 16, "absolute allocs/op slack allowed by -bench-compare")
	benchScale := flag.Int("bench-scale", 4, "experiment-suite scale for the bench_all wall-clock measurement")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-bench"))
		return
	}
	if *benchManifestPath != "" || *benchCompare != "" {
		os.Exit(runBenchSuite(*benchManifestPath, *benchCompare, *benchBaseline, *benchTolerance, *benchAllocSlack, *seed, *benchScale))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("invalid -retries %d: must be >= 0", *retries))
	}
	if *cellTimeout < 0 {
		fatal(fmt.Errorf("invalid -cell-timeout %v: must be >= 0", *cellTimeout))
	}
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
		}
	}()

	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)

	// SIGINT/SIGTERM cancel the run context: in-flight cells finish (and
	// journal), no new cells start, and a partial manifest is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	b := experiments.NewQuickBench(*seed, *scale)
	b.Workers = *parallel
	b.Ctx = ctx

	opts := experiments.RunOptions{
		KeepGoing:   *keepGoing,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
	}
	sched := faultinject.New(spec)
	sched.OnKill(cancel)
	opts.Fault = sched.Hook()
	if spec.Transient > 0 {
		opts.Retryable = faultinject.IsTransient
	}
	if *checkpoint != "" {
		j, err := experiments.OpenJournal(*checkpoint, "ristretto-bench", b.Fingerprint(), *resume)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		if *resume {
			if j.Resumable() {
				fmt.Fprintf(os.Stderr, "ristretto-bench: resuming from %s (%d completed cells", *checkpoint, j.Cells())
				if n := j.CorruptRecords(); n > 0 {
					fmt.Fprintf(os.Stderr, ", %d corrupt records skipped", n)
				}
				fmt.Fprintln(os.Stderr, ")")
			} else {
				fmt.Fprintf(os.Stderr, "ristretto-bench: no resumable checkpoint at %s, starting fresh\n", *checkpoint)
			}
		}
		opts.Journal = j
	}

	results, rep, runErr := b.AllChecked(opts)
	failed := runErr != nil && !rep.Interrupted
	for _, r := range results {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(r.String())
		if r.Err != nil {
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fatal(err)
			}
		}
	}
	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("== Stage utilization (cycle-simulated experiments) ==")
		fmt.Print(snap.StageTable())
		path := *manifestPath
		if path == "" {
			dir := *csvDir
			if dir == "" {
				dir = "results"
			}
			path = filepath.Join(dir, "run_manifest.json")
		}
		m := telemetry.NewManifest("ristretto-bench")
		m.Seed = *seed
		m.Scale = *scale
		m.Workers = rep.Workers
		m.WallMillis = float64(rep.Elapsed.Nanoseconds()) / 1e6
		m.WorkMillis = float64(rep.Work.Nanoseconds()) / 1e6
		m.Timings = rep.Timings
		m.Interrupted = rep.Interrupted
		m.ResumedCells = rep.Resumed
		m.Checkpoint = *checkpoint
		m.Failures = rep.Failures
		m.AttachSnapshot(snap)
		if err := m.Write(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ristretto-bench: run manifest written to %s\n", path)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-bench: %d experiments in %s wall-clock (%s of work, %d workers on %d CPUs, %.2fx speedup)\n",
			rep.Experiments, rep.Elapsed.Round(time.Millisecond), rep.Work.Round(time.Millisecond),
			rep.Workers, runtime.NumCPU(), rep.Speedup())
		if rep.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "ristretto-bench: %d experiments replayed from checkpoint\n", rep.Resumed)
		}
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "ristretto-bench: cell %q failed: %s (replay seed %d)\n", f.Cell, f.Error, f.Seed)
		}
	}
	if rep.Interrupted {
		msg := "ristretto-bench: interrupted"
		if *checkpoint != "" {
			msg += fmt.Sprintf("; rerun with -checkpoint %s -resume to continue", *checkpoint)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}
	if errors.Is(runErr, context.Canceled) {
		os.Exit(130)
	}
	if failed {
		fatal(fmt.Errorf("one or more experiments failed"))
	}
}

// runBenchSuite is the perf-trajectory mode: run the tracked micro-benchmark
// registry plus one end-to-end experiment pass, optionally embed a baseline,
// optionally gate against a committed manifest, optionally write the fresh
// manifest. Returns the process exit code.
func runBenchSuite(writePath, comparePath, baselinePath string, tolerance float64, allocSlack int64, seed int64, scale int) int {
	if scale < 1 {
		fmt.Fprintf(os.Stderr, "ristretto-bench: invalid -bench-scale %d: must be >= 1\n", scale)
		return 1
	}
	fmt.Fprintln(os.Stderr, "ristretto-bench: running tracked micro-benchmark suite")
	m := benchmanifest.New("ristretto-bench")
	m.Run(func(line string) { fmt.Println(line) })

	// One end-to-end pass of the experiment suite at a recorded scale: the
	// coarse wall-clock companion to the per-op entries.
	start := time.Now()
	for _, r := range experiments.NewQuickBench(seed, scale).All() {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "ristretto-bench: bench_all cell %q failed: %v\n", r.ID, r.Err)
			return 1
		}
	}
	m.BenchAllScale = scale
	m.BenchAllWallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	fmt.Printf("%-28s %12.1f ms wall (scale %d)\n", "bench_all", m.BenchAllWallMs, scale)

	if baselinePath != "" {
		base, err := benchmanifest.Load(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
			return 1
		}
		m.Baseline = base.Entries
		m.BaselineNote = base.BaselineNote
		m.ComputeSpeedup()
		if m.GeomeanSpeedup > 0 {
			m.GeomeanNote = "geomean of baseline/current ns/op over benchmarks present in both"
			fmt.Printf("%-28s %12.2fx vs baseline\n", "geomean_speedup", m.GeomeanSpeedup)
		}
	}
	if comparePath != "" {
		committed, err := benchmanifest.Load(comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
			return 1
		}
		regs := benchmanifest.Compare(committed, m, tolerance, allocSlack)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "ristretto-bench: REGRESSION:", r)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "ristretto-bench: no regressions vs %s (tolerance %.2fx, alloc slack %d)\n",
			comparePath, tolerance, allocSlack)
	}
	if writePath != "" {
		if err := m.Write(writePath); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "ristretto-bench: benchmark manifest written to %s\n", writePath)
	}
	return 0
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(r.ID, " ", "_")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
	os.Exit(1)
}
