// Command ristretto-bench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and prints them as text tables
// (optionally writing CSVs).
//
// Usage:
//
//	ristretto-bench [-seed N] [-scale N] [-only "Figure 12"] [-csv dir]
//
// -scale divides layer spatial dimensions (4 ≈ 16× faster, same ratios).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ristretto/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	only := flag.String("only", "", "run only the experiment whose ID contains this substring")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	flag.Parse()

	b := experiments.NewQuickBench(*seed, *scale)
	for _, r := range b.All() {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(r.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(r.ID, " ", "_")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}
