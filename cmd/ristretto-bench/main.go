// Command ristretto-bench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and prints them as text tables
// (optionally writing CSVs).
//
// Usage:
//
//	ristretto-bench [-seed N] [-scale N] [-parallel N] [-only "Figure 12"] [-csv dir]
//
// -scale divides layer spatial dimensions (4 ≈ 16× faster, same ratios).
// -parallel bounds the experiment worker pool (0 = all CPUs); the output is
// bit-identical for every value — only the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ristretto/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	parallel := flag.Int("parallel", 0, "max concurrent experiments (0 = all CPUs, 1 = serial)")
	only := flag.String("only", "", "run only the experiment whose ID contains this substring")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	quiet := flag.Bool("q", false, "suppress the run-stats footer")
	flag.Parse()

	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}

	b := experiments.NewQuickBench(*seed, *scale)
	b.Workers = *parallel
	results, stats := b.AllStats()
	failed := false
	for _, r := range results {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(r.String())
		if r.Err != nil {
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fatal(err)
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-bench: %d experiments in %s wall-clock (%s of work, %d workers on %d CPUs, %.2fx speedup)\n",
			stats.Experiments, stats.Elapsed.Round(1e6), stats.Work.Round(1e6),
			stats.Workers, runtime.NumCPU(), stats.Speedup())
	}
	if failed {
		fatal(fmt.Errorf("one or more experiments failed"))
	}
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(r.ID, " ", "_")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
	os.Exit(1)
}
