// Command ristretto-bench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and prints them as text tables
// (optionally writing CSVs and a structured run manifest).
//
// Usage:
//
//	ristretto-bench [-seed N] [-scale N] [-parallel N] [-only "Figure 12"]
//	                [-csv dir] [-telemetry] [-manifest path]
//	                [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
//
// -scale divides layer spatial dimensions (4 ≈ 16× faster, same ratios).
// -parallel bounds the experiment worker pool (0 = all CPUs); the output is
// bit-identical for every value — only the wall-clock changes.
// -telemetry turns the counter registry on, prints the per-stage
// busy/stall/idle utilization table after the results, and writes a run
// manifest (JSON: seed, scale, workers, git revision, per-figure timing,
// per-stage breakdowns — see EXPERIMENTS.md for the schema) next to the
// CSVs: -manifest overrides the path, which defaults to
// <csv dir>/run_manifest.json, or results/run_manifest.json without -csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ristretto/internal/experiments"
	"ristretto/internal/telemetry"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	parallel := flag.Int("parallel", 0, "max concurrent experiments (0 = all CPUs, 1 = serial)")
	only := flag.String("only", "", "run only the experiment whose ID contains this substring")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	quiet := flag.Bool("q", false, "suppress the run-stats footer")
	telem := flag.Bool("telemetry", false, "enable telemetry: print the stage-utilization table and write a run manifest")
	manifestPath := flag.String("manifest", "", "run-manifest path (default <csv dir or results>/run_manifest.json; implies -telemetry)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-bench"))
		return
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
		}
	}()

	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)

	b := experiments.NewQuickBench(*seed, *scale)
	b.Workers = *parallel
	results, stats := b.AllStats()
	failed := false
	for _, r := range results {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(r.String())
		if r.Err != nil {
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fatal(err)
			}
		}
	}
	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("== Stage utilization (cycle-simulated experiments) ==")
		fmt.Print(snap.StageTable())
		path := *manifestPath
		if path == "" {
			dir := *csvDir
			if dir == "" {
				dir = "results"
			}
			path = filepath.Join(dir, "run_manifest.json")
		}
		m := telemetry.NewManifest("ristretto-bench")
		m.Seed = *seed
		m.Scale = *scale
		m.Workers = stats.Workers
		m.WallMillis = float64(stats.Elapsed.Nanoseconds()) / 1e6
		m.WorkMillis = float64(stats.Work.Nanoseconds()) / 1e6
		m.Timings = stats.Timings
		m.AttachSnapshot(snap)
		if err := m.Write(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ristretto-bench: run manifest written to %s\n", path)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-bench: %d experiments in %s wall-clock (%s of work, %d workers on %d CPUs, %.2fx speedup)\n",
			stats.Experiments, stats.Elapsed.Round(1e6), stats.Work.Round(1e6),
			stats.Workers, runtime.NumCPU(), stats.Speedup())
	}
	if failed {
		fatal(fmt.Errorf("one or more experiments failed"))
	}
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(r.ID, " ", "_")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-bench:", err)
	os.Exit(1)
}
