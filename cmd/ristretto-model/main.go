// Command ristretto-model generates, exports and inspects the synthetic
// quantized operands that stand in for model checkpoints (see DESIGN.md §1).
//
// Usage:
//
//	ristretto-model -gen -net ResNet-18 -layer conv3_2 -precision 4b -out dir   # export .rstt tensors
//	ristretto-model -inspect dir/conv3_2.acts.rstt                              # print stats
//
// Exported tensors round-trip bit-identically (CRC-checked) and can seed
// external tools or future sessions with the exact benchmark workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ristretto/internal/model"
	"ristretto/internal/modelio"
	"ristretto/internal/quant"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

func main() {
	gen := flag.Bool("gen", false, "generate and export a layer's operands")
	inspect := flag.String("inspect", "", "print statistics of a saved tensor file")
	net := flag.String("net", "ResNet-18", "network name")
	layer := flag.String("layer", "conv3_2", "layer name")
	precision := flag.String("precision", "4b", "8b, 4b or 2b")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", ".", "output directory")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-model"))
		return
	}

	switch {
	case *inspect != "":
		doInspect(*inspect)
	case *gen:
		doGen(*net, *layer, *precision, *seed, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doGen(netName, layerName, precision string, seed int64, out string) {
	n, err := model.ByName(netName)
	if err != nil {
		fatal(err)
	}
	l, err := n.Layer(layerName)
	if err != nil {
		fatal(err)
	}
	bits := map[string]int{"8b": 8, "4b": 4, "2b": 2}[precision]
	if bits == 0 {
		fatal(fmt.Errorf("invalid -precision %q (allowed: 8b, 4b, 2b)", precision))
	}
	g := workload.NewGen(seed)
	f, k := g.LayerOperands(l, bits, bits, workload.EvalTargets(netName, bits, bits))
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	base := strings.ReplaceAll(layerName, "/", "_")
	fp := filepath.Join(out, base+".acts.rstt")
	kp := filepath.Join(out, base+".weights.rstt")
	if err := modelio.SaveFeatureMap(fp, f); err != nil {
		fatal(err)
	}
	if err := modelio.SaveKernelStack(kp, k); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%v)\n", fp, f)
	fmt.Printf("wrote %s (%v)\n", kp, k)
}

func doInspect(path string) {
	if f, err := modelio.LoadFeatureMap(path); err == nil {
		s := quant.Measure(f.Data, f.Bits, 2)
		fmt.Printf("%s: %v\n", path, f)
		fmt.Printf("  value density %.3f, atom density %.3f, stream %d atoms (dense %d)\n",
			s.ValueDensity, s.AtomDensity, s.NonZeroAtoms, s.DenseAtoms)
		return
	}
	if k, err := modelio.LoadKernelStack(path); err == nil {
		s := quant.Measure(k.Data, k.Bits, 2)
		fmt.Printf("%s: %v\n", path, k)
		fmt.Printf("  value density %.3f, atom density %.3f, stream %d atoms (dense %d)\n",
			s.ValueDensity, s.AtomDensity, s.NonZeroAtoms, s.DenseAtoms)
		return
	}
	fatal(fmt.Errorf("%s is neither a feature map nor a kernel stack", path))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-model:", err)
	os.Exit(1)
}
