// Command ristretto-quant runs the statistical quantization study behind
// Figure 1: it quantizes synthetic Gaussian weight and rectified-Gaussian
// activation populations at several bit-widths and reports value- and
// atom-level sparsity, plus the condensed stream lengths a layer would
// produce.
//
// Usage:
//
//	ristretto-quant [-n 1000000] [-gran 2] [-seed 1] [-prune-w 0] [-prune-a 0]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ristretto/internal/atom"
	"ristretto/internal/quant"
	"ristretto/internal/telemetry"
)

func main() {
	n := flag.Int("n", 1_000_000, "samples per population")
	gran := flag.Int("gran", 2, "atom granularity in bits (1-3)")
	seed := flag.Int64("seed", 1, "rng seed")
	pruneW := flag.Float64("prune-w", 0, "additionally prune weights to this density (0 = off)")
	pruneA := flag.Float64("prune-a", 0, "additionally prune activations to this density (0 = off)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-quant"))
		return
	}

	if *n < 1 {
		fatal(fmt.Errorf("invalid -n %d: must be >= 1", *n))
	}
	if *gran < 1 || *gran > 3 {
		fatal(fmt.Errorf("invalid -gran %d (allowed: 1, 2, 3)", *gran))
	}
	if *pruneW < 0 || *pruneW > 1 {
		fatal(fmt.Errorf("invalid -prune-w %v: must be in [0, 1]", *pruneW))
	}
	if *pruneA < 0 || *pruneA > 1 {
		fatal(fmt.Errorf("invalid -prune-a %v: must be in [0, 1]", *pruneA))
	}

	rng := rand.New(rand.NewSource(*seed))
	raw := make([]float64, *n)
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	g := atom.Granularity(*gran)

	fmt.Printf("%4s  %-10s %14s %14s %14s %14s\n", "bits", "operand", "value sparsity", "atom density", "atoms/value", "stream vs dense")
	for _, bits := range []int{8, 6, 4, 2} {
		w := quant.QuantizeSigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultWeightClip(bits)})
		a := quant.QuantizeUnsigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultActClip(bits)})
		if *pruneW > 0 {
			quant.PruneToDensity(w, *pruneW)
		}
		if *pruneA > 0 {
			quant.PruneToDensity(a, *pruneA)
		}
		for _, op := range []struct {
			name string
			data []int32
		}{{"weight", w}, {"activation", a}} {
			s := quant.Measure(op.data, bits, g)
			atomsPerVal := 0.0
			if s.NonZero > 0 {
				atomsPerVal = float64(s.NonZeroAtoms) / float64(s.NonZero)
			}
			fmt.Printf("%4d  %-10s %13.2f%% %13.2f%% %14.2f %13.2f%%\n",
				bits, op.name, 100*s.Sparsity(), 100*s.AtomDensity, atomsPerVal,
				100*float64(s.NonZeroAtoms)/float64(s.DenseAtoms))
		}
	}
	fmt.Println("\npaper Figure 1 anchors (2-bit, unpruned): weight 47.43%, activation 75.25% sparsity")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-quant:", err)
	os.Exit(1)
}
