// Command ristretto-fleet runs the experiment sweep distributed over a
// fleet of ristretto-serve workers and prints the merged results —
// byte-identical to `ristretto-bench -q` at the same seed/scale/nets,
// which is the distributed-sweep determinism guarantee CI enforces.
//
// Usage:
//
//	ristretto-fleet -workers http://h1:8390,http://h2:8390
//	                [-seed N] [-scale N] [-nets AlexNet,ResNet-18]
//	                [-cache-dir dir] [-cache-max-bytes N]
//	                [-deadline-ms N] [-timeout 5m]
//	                [-strikes 3] [-journal path] [-resume]
//	                [-audit F] [-hedge auto|DUR] [-net-fault SPEC]
//	                [-disk-fault SPEC] [-report path] [-q] [-keep-going]
//	                [-version]
//	ristretto-fleet -scrub -cache-dir dir [-disk-fault SPEC] [-q]
//
// The coordinator enumerates the suite's sweep cells, serves any already
// present in the content-addressed cache at -cache-dir locally, and
// spreads the rest over the workers with a work-stealing queue: a worker
// that dies or stalls has its cells reassigned and is retired after
// -strikes consecutive failures. Deterministic cell failures (a panic or
// timeout inside the experiment code) are NOT retried on other workers —
// they would fail identically — and are reported with their replay seeds;
// without -keep-going any such failure exits 1 after the full sweep.
//
// Byzantine tolerance: every worker response is digest-verified end to
// end; a worker whose bytes do not verify is quarantined (retired on one
// strike) and its cells recomputed elsewhere. -audit F re-executes a
// seed-deterministic fraction F of verified cells on a second worker and
// byte-compares, catching workers that compute wrong answers and digest
// them honestly. -hedge races stragglers onto a second worker after a
// fixed delay (or, with "auto", 3× the observed attempt-latency P95);
// the first verified result wins.
//
// -journal records every completion durably (crc-guarded, fsynced); after
// a coordinator crash or SIGKILL, rerunning with -resume serves journaled
// cells without re-dispatching them. -net-fault injects seed-deterministic
// response faults into the coordinator's own HTTP client (see
// internal/faultinject: corrupt, truncate, blackhole, slowdrip, optionally
// host-scoped) — the chaos harness for all of the above.
//
// Storage robustness: the -cache-dir cell cache is scrubbed on open
// (corrupt or bit-rotted entries deleted), -cache-max-bytes bounds its
// footprint with deterministic second-chance eviction, and persistent
// write failures (a full disk) degrade it to read-only — the sweep slows
// down but never fails or changes its output. -disk-fault threads the
// seed-deterministic disk fault FS (ENOSPC, EIO, failed fsync, torn
// writes, bit rot — spec grammar in EXPERIMENTS.md) under the
// coordinator's cache and journal; the disk-chaos CI gate diffs a faulted
// sweep byte-for-byte against `ristretto-bench -q`. -scrub runs a
// standalone scrub pass over -cache-dir and exits (no workers needed).
//
// -report writes a JSON fleet report (cells, per-cell outcomes, steal,
// reassignment, integrity, hedge and resume counts, cache hits) — the CI
// cache-warm gate reads it to assert a repeat sweep is ≥90% cache-served,
// and the chaos gate asserts the integrity/hedge counters fired.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ristretto/internal/cellcache"
	"ristretto/internal/faultinject"
	"ristretto/internal/fleet"
	"ristretto/internal/safeio"
	"ristretto/internal/telemetry"
)

func main() {
	workers := flag.String("workers", "", "comma-separated base URLs of ristretto-serve workers (required)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	nets := flag.String("nets", "", "comma-separated benchmark networks (empty = full benchmark)")
	cacheDir := flag.String("cache-dir", "", "coordinator-side content-addressed cell cache directory (empty disables)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "cell cache capacity bound in bytes; excess entries are evicted second-chance (0 = unbounded)")
	scrub := flag.Bool("scrub", false, "scrub the -cache-dir cell cache (verify and delete corrupt entries), then exit")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-cell deadline sent to workers in milliseconds (0 = worker default)")
	timeout := flag.Duration("timeout", 0, "end-to-end bound on one cell request, including worker queue time (0 = 5m)")
	strikes := flag.Int("strikes", 0, "consecutive retryable failures that retire a worker (0 = 3)")
	journalPath := flag.String("journal", "", "journal completions to this file for crash-resume (empty disables)")
	resume := flag.Bool("resume", false, "resume from an existing -journal instead of truncating it")
	audit := flag.Float64("audit", 0, "fraction of verified cells to re-execute on a second worker (0 disables, 1 = all)")
	hedge := flag.String("hedge", "", "hedge stragglers after this delay, e.g. 150ms, or 'auto' for 3x observed P95 (empty disables)")
	netFault := flag.String("net-fault", "", "inject response faults into the coordinator's HTTP client, e.g. 'host=h1:8390,seed=9,corrupt=1' (chaos testing)")
	diskFault := flag.String("disk-fault", "", "inject disk faults under the cell cache and journal, e.g. 'path=cells/*,seed=7,enospc=1' (chaos testing)")
	reportPath := flag.String("report", "", "write the JSON fleet report to this path")
	quiet := flag.Bool("q", false, "suppress the run-stats footer")
	keepGoing := flag.Bool("keep-going", false, "exit 0 even when cells failed deterministically")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-fleet"))
		return
	}
	log.SetPrefix("ristretto-fleet: ")
	log.SetFlags(0)

	diskSpec, err := faultinject.ParseDiskSpec(*diskFault)
	if err != nil {
		fatal(err)
	}

	if *scrub {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-scrub requires -cache-dir"))
		}
		if err := runScrub(*cacheDir, diskSpec, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	if *workers == "" {
		fatal(fmt.Errorf("-workers is required (comma-separated ristretto-serve URLs)"))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *resume && *journalPath == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}
	hedgeAfter, err := parseHedge(*hedge)
	if err != nil {
		fatal(err)
	}

	cfg := fleet.Config{
		Workers:        splitList(*workers),
		Seed:           *seed,
		Scale:          *scale,
		Nets:           splitList(*nets),
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMaxBytes,
		DiskFault:      diskSpec,
		DeadlineMS:     *deadlineMS,
		RequestTimeout: *timeout,
		WorkerStrikes:  *strikes,
		JournalPath:    *journalPath,
		Resume:         *resume,
		AuditFraction:  *audit,
		HedgeAfter:     hedgeAfter,
	}
	if *netFault != "" {
		spec, err := faultinject.ParseNetSpec(*netFault)
		if err != nil {
			fatal(err)
		}
		cfg.NetFault = spec
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	// SIGINT/SIGTERM cancel the sweep: in-flight cells finish their HTTP
	// attempt, nothing new is dispatched.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	results, rep, err := fleet.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	// stdout carries exactly what `ristretto-bench -q` prints: one rendered
	// result per line block — the byte-identity contract CI diffs.
	failed := false
	for _, r := range results {
		fmt.Println(r.String())
		if r.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "ristretto-fleet: cell failed: %v\n", r.Err)
		}
	}

	if *reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := safeio.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ristretto-fleet: report written to %s\n", *reportPath)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-fleet: %d cells over %d workers in %s (%d cache hits, %d resumed, %d computed, %d steals, %d reassigned, %d workers retired, %d CPUs local)\n",
			rep.Cells, rep.Workers, rep.Elapsed.Round(time.Millisecond),
			rep.LocalCacheHits, rep.ResumedCells, rep.Computed, rep.Steals, rep.Reassigned, rep.RetiredWorkers, runtime.NumCPU())
		if rep.DigestMismatches > 0 || rep.Quarantined > 0 || rep.AuditMismatches > 0 {
			fmt.Fprintf(os.Stderr,
				"ristretto-fleet: INTEGRITY: %d digest mismatches, %d audit mismatches, %d workers quarantined\n",
				rep.DigestMismatches, rep.AuditMismatches, rep.Quarantined)
		}
		if rep.Audits > 0 || rep.HedgesLaunched > 0 {
			fmt.Fprintf(os.Stderr,
				"ristretto-fleet: %d cells audited, %d hedges launched (%d won)\n",
				rep.Audits, rep.HedgesLaunched, rep.HedgeWins)
		}
		if rep.CacheWriteErrors > 0 || rep.CacheReadErrors > 0 || rep.CacheEvicted > 0 || rep.CacheCorrupt > 0 || rep.CacheDegraded {
			state := ""
			if rep.CacheDegraded {
				state = ", cache DEGRADED to read-only"
			}
			fmt.Fprintf(os.Stderr,
				"ristretto-fleet: CACHE: %d write errors, %d read errors, %d evicted, %d scrubbed (%d corrupt deleted)%s\n",
				rep.CacheWriteErrors, rep.CacheReadErrors, rep.CacheEvicted, rep.CacheScrubbed, rep.CacheCorrupt, state)
		}
	}
	if failed && !*keepGoing {
		fatal(fmt.Errorf("one or more cells failed"))
	}
}

// runScrub opens the cell cache through the (possibly fault-injected)
// filesystem, walks every entry verifying CRC and fingerprint-bound digest,
// deletes what does not verify, and prints a summary.
func runScrub(dir string, spec faultinject.DiskSpec, quiet bool) error {
	fsys := faultinject.NewDiskFS(spec, nil)
	c, err := cellcache.OpenWith(dir, nil, cellcache.Options{FS: fsys})
	if err != nil {
		return err
	}
	rep, err := c.Scrub()
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-fleet: scrub %s: %d entries checked, %d corrupt deleted, %d unreadable deleted, %d bytes retained\n",
			dir, rep.Checked, rep.Corrupt, rep.ReadErrors, rep.Bytes)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// parseHedge resolves the -hedge flag: empty disables, "auto" selects the
// adaptive telemetry-derived delay, anything else must be a positive
// duration.
func parseHedge(s string) (time.Duration, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return fleet.HedgeAuto, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("invalid -hedge %q: want a duration like 150ms, or 'auto'", s)
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid -hedge %q: must be positive", s)
	}
	return d, nil
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-fleet:", err)
	os.Exit(1)
}
