// Command ristretto-fleet runs the experiment sweep distributed over a
// fleet of ristretto-serve workers and prints the merged results —
// byte-identical to `ristretto-bench -q` at the same seed/scale/nets,
// which is the distributed-sweep determinism guarantee CI enforces.
//
// Usage:
//
//	ristretto-fleet -workers http://h1:8390,http://h2:8390
//	                [-seed N] [-scale N] [-nets AlexNet,ResNet-18]
//	                [-cache-dir dir] [-deadline-ms N] [-timeout 5m]
//	                [-strikes 3] [-report path] [-q] [-keep-going]
//	                [-version]
//
// The coordinator enumerates the suite's sweep cells, serves any already
// present in the content-addressed cache at -cache-dir locally, and
// spreads the rest over the workers with a work-stealing queue: a worker
// that dies or stalls has its cells reassigned and is retired after
// -strikes consecutive failures. Deterministic cell failures (a panic or
// timeout inside the experiment code) are NOT retried on other workers —
// they would fail identically — and are reported with their replay seeds;
// without -keep-going any such failure exits 1 after the full sweep.
//
// -report writes a JSON fleet report (cells, per-cell outcomes, steal and
// reassignment counts, cache hits) — the CI cache-warm gate reads it to
// assert a repeat sweep is ≥90% cache-served.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ristretto/internal/fleet"
	"ristretto/internal/safeio"
	"ristretto/internal/telemetry"
)

func main() {
	workers := flag.String("workers", "", "comma-separated base URLs of ristretto-serve workers (required)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor (1 = paper scale)")
	nets := flag.String("nets", "", "comma-separated benchmark networks (empty = full benchmark)")
	cacheDir := flag.String("cache-dir", "", "coordinator-side content-addressed cell cache directory (empty disables)")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-cell deadline sent to workers in milliseconds (0 = worker default)")
	timeout := flag.Duration("timeout", 0, "end-to-end bound on one cell request, including worker queue time (0 = 5m)")
	strikes := flag.Int("strikes", 0, "consecutive retryable failures that retire a worker (0 = 3)")
	reportPath := flag.String("report", "", "write the JSON fleet report to this path")
	quiet := flag.Bool("q", false, "suppress the run-stats footer")
	keepGoing := flag.Bool("keep-going", false, "exit 0 even when cells failed deterministically")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-fleet"))
		return
	}
	log.SetPrefix("ristretto-fleet: ")
	log.SetFlags(0)

	if *workers == "" {
		fatal(fmt.Errorf("-workers is required (comma-separated ristretto-serve URLs)"))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}

	cfg := fleet.Config{
		Workers:        splitList(*workers),
		Seed:           *seed,
		Scale:          *scale,
		Nets:           splitList(*nets),
		CacheDir:       *cacheDir,
		DeadlineMS:     *deadlineMS,
		RequestTimeout: *timeout,
		WorkerStrikes:  *strikes,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	// SIGINT/SIGTERM cancel the sweep: in-flight cells finish their HTTP
	// attempt, nothing new is dispatched.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	results, rep, err := fleet.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	// stdout carries exactly what `ristretto-bench -q` prints: one rendered
	// result per line block — the byte-identity contract CI diffs.
	failed := false
	for _, r := range results {
		fmt.Println(r.String())
		if r.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "ristretto-fleet: cell failed: %v\n", r.Err)
		}
	}

	if *reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := safeio.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ristretto-fleet: report written to %s\n", *reportPath)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ristretto-fleet: %d cells over %d workers in %s (%d cache hits, %d computed, %d steals, %d reassigned, %d workers retired, %d CPUs local)\n",
			rep.Cells, rep.Workers, rep.Elapsed.Round(time.Millisecond),
			rep.LocalCacheHits, rep.Computed, rep.Steals, rep.Reassigned, rep.RetiredWorkers, runtime.NumCPU())
	}
	if failed && !*keepGoing {
		fatal(fmt.Errorf("one or more cells failed"))
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-fleet:", err)
	os.Exit(1)
}
