// Command ristretto-serve runs the simulation-as-a-service daemon: the
// repository's engines (analytic model, cycle-accurate core simulator,
// quantization sweep, conformance spot-checks) behind the hardened HTTP
// layer of internal/server — admission control with load shedding,
// per-request deadlines and panic isolation, a circuit breaker that
// degrades cycle-accurate answers to the analytic model under queue
// pressure, and graceful drain on SIGINT/SIGTERM (exit 0).
//
// Usage:
//
//	ristretto-serve [-addr :8390] [-max-concurrent N] [-queue 64]
//	                [-deadline 15s] [-max-deadline 2m] [-max-body 1048576]
//	                [-breaker-threshold 250ms] [-breaker-cooldown 2s]
//	                [-breaker-hard-factor 4] [-cache-entries 4096]
//	                [-batch-window 1ms] [-max-batch 16] [-batch-queue-share N]
//	                [-tenant-rate 0] [-tenant-burst N] [-max-tenants 10000]
//	                [-default-scale 16] [-drain-grace 30s]
//	                [-cell-cache-dir dir] [-cell-cache-max-bytes 0]
//	                [-fault spec] [-disk-fault spec] [-version]
//	                [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
//
// Endpoints: POST /v1/model, /v1/sim, /v1/quant, /v1/conformance, and
// /v1/cell — one full sweep cell per request, the unit of work
// ristretto-fleet distributes; -cell-cache-dir arms a content-addressed
// on-disk cache of cell payloads keyed by fingerprint; the cache is
// scrubbed on open (corrupt entries deleted), -cell-cache-max-bytes bounds
// its footprint, and persistent write failures degrade it to read-only
// instead of failing requests.
// GET /healthz, /readyz, /metrics. The -fault flag takes the same
// seed-deterministic schedule spec as the batch CLIs (see EXPERIMENTS.md)
// and injects it into request handling — the chaos CI job uses it to prove
// injected panics 500 one request without killing the daemon. -disk-fault
// threads the seed-deterministic disk fault FS (ENOSPC, EIO, failed fsync,
// torn writes, bit rot — see EXPERIMENTS.md) under the cell cache; the
// disk-chaos job uses it to prove a rotting worker cache still serves
// correct payloads.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ristretto/internal/cellcache"
	"ristretto/internal/faultinject"
	"ristretto/internal/server"
	"ristretto/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8390", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent compute requests (0 = NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth; excess load is shed with 429")
	deadline := flag.Duration("deadline", 15*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	breakerThreshold := flag.Duration("breaker-threshold", 250*time.Millisecond, "queue wait that degrades /v1/sim to the analytic model (negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long the breaker stays open after the last slow wait")
	breakerHardFactor := flag.Int("breaker-hard-factor", 0, "multiple of breaker-threshold at which interactive traffic also degrades (0 = 4)")
	cacheEntries := flag.Int("cache-entries", 0, "memo cache capacity for /v1/model and /v1/quant (0 = 4096, negative disables)")
	batchWindow := flag.Duration("batch-window", 0, "coalescing window for /v1/sim batching (0 = 1ms, negative disables)")
	maxBatch := flag.Int("max-batch", 0, "distinct simulations per coalesced batch (0 = 16)")
	batchQueueShare := flag.Int("batch-queue-share", 0, "admission-queue places the batch priority class may occupy (0 = queue/2)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant token refill in requests/second (0 disables quotas)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token bucket capacity (0 = max(1, tenant-rate))")
	maxTenants := flag.Int("max-tenants", 0, "tracked tenant buckets before overflow tenants share one (0 = 10000)")
	defaultScale := flag.Int("default-scale", 16, "spatial scale-down applied when a request names none")
	cellCacheDir := flag.String("cell-cache-dir", "", "directory for the content-addressed /v1/cell payload cache (empty disables)")
	cellCacheMaxBytes := flag.Int64("cell-cache-max-bytes", 0, "cell cache capacity bound in bytes; excess entries are evicted second-chance (0 = unbounded)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	faultSpec := flag.String("fault", "", "fault-injection schedule for request handling (e.g. seed=7,panic=0.05,delay=0.2:5ms)")
	diskFaultSpec := flag.String("disk-fault", "", "disk fault-injection spec for the cell cache (e.g. path=cells/*,seed=7,bit-rot=0.2)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-serve"))
		return
	}
	log.SetPrefix("ristretto-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	var sched *faultinject.Schedule
	if !spec.Zero() {
		sched = faultinject.New(spec)
		log.Printf("fault injection armed: %q", *faultSpec)
	}

	if err := prof.Start(); err != nil {
		fatal(err)
	}

	diskSpec, err := faultinject.ParseDiskSpec(*diskFaultSpec)
	if err != nil {
		fatal(err)
	}

	var cells *cellcache.Cache
	if *cellCacheDir != "" {
		fsys := faultinject.NewDiskFS(diskSpec, nil)
		if !diskSpec.Zero() {
			log.Printf("disk fault injection armed: %q", *diskFaultSpec)
		}
		cells, err = cellcache.OpenWith(*cellCacheDir, nil, cellcache.Options{
			FS:          fsys,
			MaxBytes:    *cellCacheMaxBytes,
			ScrubOnOpen: true,
		})
		if err != nil {
			fatal(err)
		}
		n, lerr := cells.Len()
		if lerr != nil {
			log.Printf("cell cache at %s (census failed: %v)", cells.Dir(), lerr)
		} else {
			log.Printf("cell cache at %s (%d entries)", cells.Dir(), n)
		}
	}

	srv := server.New(server.Config{
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *queue,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		MaxBodyBytes:      *maxBody,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		BreakerHardFactor: *breakerHardFactor,
		CacheEntries:      *cacheEntries,
		BatchWindow:       *batchWindow,
		MaxBatch:          *maxBatch,
		BatchQueueShare:   *batchQueueShare,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		MaxTenants:        *maxTenants,
		DefaultScale:      *defaultScale,
		CellCache:         cells,
		Fault:             sched,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigs:
		log.Printf("received %v: draining (in-flight: %d, grace %v)", sig, srv.QueueDepth(), *drainGrace)
	case err := <-serveErr:
		fatal(err) // listener died before any signal
	}

	// Graceful drain: readiness flips first so load balancers stop sending,
	// then Shutdown closes the listener and waits for in-flight requests.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	code := 0
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		code = 1
	} else {
		log.Printf("drained cleanly")
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve error: %v", err)
		code = 1
	}
	if err := prof.Stop(); err != nil {
		log.Printf("profiler stop: %v", err)
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-serve:", err)
	os.Exit(1)
}
