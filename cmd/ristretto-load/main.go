// Command ristretto-load drives open-loop traffic at a running
// ristretto-serve daemon and reports what came back: status-code mix, shed
// (429) and degraded (degraded=true) counts, and latency quantiles. The CI
// serve job uses it to prove the daemon sheds rather than collapses at
// saturation and keeps serving under fault injection.
//
// Usage:
//
//	ristretto-load -addr http://127.0.0.1:8390 [-rps 50] [-duration 10s]
//	               [-timeout 10s] [-inflight 1024] [-seed 1]
//	               [-mix model=6,sim=1,quant=2,conformance=1]
//	               [-net ResNet-18] [-layer conv3_2] [-precision 4b]
//	               [-scale 16] [-keys 1] [-key-skew 1.2]
//	               [-tenants 0] [-tenant-skew 1.2] [-batch-frac 0]
//	               [-json] [-version]
//
// Multi-tenant mode (-tenants > 0 or -batch-frac > 0) tags every request
// with X-Tenant / X-Priority headers, draws tenants and hot request keys
// from zipfian distributions, and reports per-class tallies (shed,
// quota-denied, degraded, p99) plus cache-hit and batched counts — the
// traffic shape the serving-scale CI gates assert on.
//
// Exit status: 0 when the run completed and the server answered (any
// status codes — shedding is healthy behaviour); 1 when the server was
// unreachable for most of the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ristretto/internal/loadtest"
	"ristretto/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8390", "server base URL")
	rps := flag.Float64("rps", 50, "open-loop request rate per second")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	inflight := flag.Int("inflight", 1024, "in-flight request cap (arrivals beyond it are dropped, not queued)")
	seed := flag.Int64("seed", 1, "mix/pick seed")
	mix := flag.String("mix", "model=6,sim=1,quant=2,conformance=1", "traffic mix weights (target=weight, 0 removes)")
	net := flag.String("net", "ResNet-18", "network for model/sim requests")
	layer := flag.String("layer", "conv3_2", "layer for sim requests")
	precision := flag.String("precision", "4b", "precision for model/sim requests")
	scale := flag.Int("scale", 16, "spatial scale-down for model/sim requests")
	keys := flag.Int("keys", 1, "distinct request bodies per target (seeds seed..seed+keys-1)")
	keySkew := flag.Float64("key-skew", 0, "zipf s for hot-key picks among -keys bodies (0 = 1.2, must be > 1)")
	tenants := flag.Int("tenants", 0, "synthetic tenants to spread traffic over via X-Tenant (0 = no header)")
	tenantSkew := flag.Float64("tenant-skew", 0, "zipf s for tenant picks (0 = 1.2, must be > 1)")
	batchFrac := flag.Float64("batch-frac", 0, "fraction of requests tagged X-Priority: batch (0..1)")
	asJSON := flag.Bool("json", false, "print the report as JSON")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-load"))
		return
	}
	if *rps <= 0 {
		fatal(fmt.Errorf("invalid -rps %v: must be > 0", *rps))
	}
	if *duration <= 0 {
		fatal(fmt.Errorf("invalid -duration %v: must be > 0", *duration))
	}

	targets, err := buildMix(*mix, *net, *layer, *precision, *scale, *seed, *keys)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadtest.Run(ctx, loadtest.Config{
		BaseURL:       strings.TrimRight(*addr, "/"),
		RPS:           *rps,
		Duration:      *duration,
		Timeout:       *timeout,
		MaxInFlight:   *inflight,
		Seed:          *seed,
		Targets:       targets,
		Tenants:       *tenants,
		TenantSkew:    *tenantSkew,
		KeySkew:       *keySkew,
		BatchFraction: *batchFrac,
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.String())
	}

	// Shed/degraded/5xx responses are the daemon behaving as designed under
	// stress; only a server that mostly failed to answer at all is a load
	// failure.
	if rep.Completed == 0 || rep.TransportErrors > rep.Completed/2 {
		fmt.Fprintf(os.Stderr, "ristretto-load: server unreachable (%d/%d transport errors)\n",
			rep.TransportErrors, rep.Completed)
		os.Exit(1)
	}
}

// buildMix reweights the default traffic mix by the -mix flag; keys > 1
// expands each target into that many distinct bodies for hot-key runs.
func buildMix(spec, net, layer, precision string, scale int, seed int64, keys int) ([]loadtest.Target, error) {
	base := loadtest.DefaultMix(net, layer, precision, scale, seed)
	if keys > 1 {
		base = loadtest.MultiKeyMix(net, layer, precision, scale, seed, keys)
	}
	weights := map[string]int{}
	for _, t := range base {
		weights[t.Name] = t.Weight
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix pair %q (want target=weight)", kv)
		}
		if _, known := weights[name]; !known {
			return nil, fmt.Errorf("unknown -mix target %q (allowed: model, sim, quant, conformance)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q for %s", val, name)
		}
		weights[name] = w
	}
	var out []loadtest.Target
	for _, t := range base {
		if w := weights[t.Name]; w > 0 {
			t.Weight = w
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix %q removes every target", spec)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-load:", err)
	os.Exit(1)
}
