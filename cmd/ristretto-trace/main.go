// Command ristretto-trace runs a layer on the lockstep whole-core simulator
// and writes a JSONL execution trace (job/chunk/drain transitions per
// compute tile) for offline analysis or visualization.
//
// Usage:
//
//	ristretto-trace -synth [-out trace.jsonl]      # small synthetic layer
//	ristretto-trace -acts zoo/conv3_2.acts.rstt -weights zoo/conv3_2.weights.rstt [-out trace.jsonl]
//
// Input is either -synth (a small synthetic layer controlled by -seed,
// default 1) or a pair of .rstt tensor files exported by ristretto-model
// (-acts + -weights). Simulator shape flags and their defaults: -tiles 4,
// -mults 16, -gran 2, -stride 1, -pad 1. The trace is written to -out
// (default "trace.jsonl"), one TraceEvent JSON object per line:
// {"cycle":..,"tile":..,"event":"chunk_start",...}. README.md's Tools
// section documents the same flag set; keep the two in sync.
package main

import (
	"flag"
	"fmt"
	"os"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/modelio"
	"ristretto/internal/ristretto"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func main() {
	actsPath := flag.String("acts", "", "feature-map .rstt file (from ristretto-model)")
	weightsPath := flag.String("weights", "", "kernel-stack .rstt file (from ristretto-model)")
	synth := flag.Bool("synth", false, "use a small synthetic layer instead of files")
	out := flag.String("out", "trace.jsonl", "JSONL trace output path")
	tiles := flag.Int("tiles", 4, "compute tiles")
	mults := flag.Int("mults", 16, "multipliers per tile")
	gran := flag.Int("gran", 2, "atom granularity in bits (1-3)")
	stride := flag.Int("stride", 1, "convolution stride")
	pad := flag.Int("pad", 1, "convolution padding")
	seed := flag.Int64("seed", 1, "synthetic workload seed (with -synth)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-trace"))
		return
	}

	if *gran < 1 || *gran > 3 {
		fatal(fmt.Errorf("invalid -gran %d (allowed: 1, 2, 3)", *gran))
	}
	if *tiles < 1 {
		fatal(fmt.Errorf("invalid -tiles %d: must be >= 1", *tiles))
	}
	if *mults < 1 {
		fatal(fmt.Errorf("invalid -mults %d: must be >= 1", *mults))
	}
	if *stride < 1 {
		fatal(fmt.Errorf("invalid -stride %d: must be >= 1", *stride))
	}
	if *pad < 0 {
		fatal(fmt.Errorf("invalid -pad %d: must be >= 0", *pad))
	}

	var f *tensor.FeatureMap
	var w *tensor.KernelStack
	var err error
	switch {
	case *synth:
		g := workload.NewGen(*seed)
		f = g.FeatureMap(4, 12, 12, 8, 0.5)
		w = g.Kernels(8, 4, 3, 3, 4, 0.5)
	case *actsPath != "" && *weightsPath != "":
		if f, err = modelio.LoadFeatureMap(*actsPath); err != nil {
			fatal(err)
		}
		if w, err = modelio.LoadKernelStack(*weightsPath); err != nil {
			fatal(err)
		}
		if f.C != w.C {
			fatal(fmt.Errorf("channel mismatch: acts %d vs weights %d", f.C, w.C))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fh, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	tracer := &ristretto.JSONTracer{W: fh}
	cfg := ristretto.CoreSimConfig{
		Tiles:  *tiles,
		Tile:   ristretto.TileConfig{Mults: *mults, Gran: atom.Granularity(*gran)},
		Policy: balance.WeightAct,
		Trace:  tracer,
	}
	res := ristretto.SimulateCore(f, w, *stride, *pad, cfg)
	if err := fh.Close(); err != nil {
		fatal(err)
	}
	if tracer.Err() != nil {
		fatal(tracer.Err())
	}
	fmt.Printf("input   : %v\n", f)
	fmt.Printf("kernels : %v\n", w)
	fmt.Printf("cycles  : %d (stalls %d, drain-wait %d, weight-load %d)\n",
		res.Cycles, res.Stalls, res.DrainWait, res.LoadCycles)
	for i, b := range res.TileBusy {
		fmt.Printf("  tile %d busy %5.1f%%\n", i, 100*float64(b)/float64(res.Cycles))
	}
	fmt.Printf("trace   : %s (%d events)\n", *out, tracer.Events())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-trace:", err)
	os.Exit(1)
}
