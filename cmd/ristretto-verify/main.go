// Command ristretto-verify runs the differential conformance sweep: every
// selected engine is cross-checked against the dense reference convolution
// over a deterministic, seed-derived workload distribution, and failing
// cases are shrunk to minimal reproducers.
//
// Usage:
//
//	ristretto-verify [-engines all|csc,snap,...] [-cases 200] [-seed 1]
//	                 [-shrink] [-workers N] [-q] [-telemetry] [-manifest path]
//	                 [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
//
// The exit status is 0 when every engine conforms on every case and 1
// otherwise, so the command doubles as a CI gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ristretto/internal/conformance"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

func main() {
	engines := flag.String("engines", "all", "engines to verify: all, or a comma-separated subset of "+strings.Join(conformance.Names(), ", "))
	cases := flag.Int("cases", 200, "randomized cases per engine")
	seed := flag.Int64("seed", 1, "case-derivation seed (same seed, same cases)")
	shrink := flag.Bool("shrink", true, "minimize failing cases to small reproducers")
	workers := flag.Int("workers", runtime.NumCPU(), "engines verified in parallel (0 = all CPUs)")
	quiet := flag.Bool("q", false, "print failures only")
	telem := flag.Bool("telemetry", false, "enable telemetry and print the counter snapshot")
	manifestPath := flag.String("manifest", "", "also write a run manifest to this path (implies -telemetry)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-verify"))
		return
	}

	selected, err := selectEngines(*engines)
	if err != nil {
		fatal(err)
	}
	if *cases < 1 {
		fatal(fmt.Errorf("invalid -cases %d: must be >= 1", *cases))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("invalid -workers %d: must be >= 0", *workers))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-verify:", err)
		}
	}()
	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	pool := runner.New(*workers)
	reports, err := runner.Map(ctx, pool, len(selected), func(i int) (conformance.EngineReport, error) {
		return conformance.SweepEngine(selected[i], *seed, *cases, *shrink), nil
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ristretto-verify: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	failures := 0
	for _, rep := range reports {
		failures += len(rep.Failures)
		if *quiet && len(rep.Failures) == 0 {
			continue
		}
		status := "ok"
		if len(rep.Failures) > 0 {
			status = fmt.Sprintf("FAIL (%d)", len(rep.Failures))
		}
		kind := "numeric"
		if rep.Analytic {
			kind = "analytic"
		}
		fmt.Printf("%-12s %-8s %4d cases  %s\n", rep.Engine, kind, rep.Cases, status)
	}
	for _, rep := range reports {
		for _, fl := range rep.Failures {
			fmt.Printf("\n%v\n", &fl.Mismatch)
			if fl.Shrunk != nil {
				fmt.Printf("shrunk reproducer:\n%s", fl.Shrunk.Repro())
			}
		}
	}
	if !*quiet {
		fmt.Printf("\n%d engines x %d cases in %.2fs: %d failure(s)\n",
			len(selected), *cases, elapsed.Seconds(), failures)
	}

	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("\n== Telemetry ==")
		fmt.Print(snap.String())
		if *manifestPath != "" {
			m := telemetry.NewManifest("ristretto-verify")
			m.Seed = *seed
			m.Scale = 1
			m.Workers = pool.Workers()
			m.WallMillis = float64(elapsed.Nanoseconds()) / 1e6
			for _, rep := range reports {
				m.Timings = append(m.Timings, telemetry.ExperimentTiming{
					IDs:  []string{"conformance/" + rep.Engine},
					Rows: rep.Cases,
				})
			}
			m.AttachSnapshot(snap)
			if err := m.Write(*manifestPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ristretto-verify: run manifest written to %s\n", *manifestPath)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// selectEngines resolves the -engines flag: "all", or a comma-separated
// list of registered engine names.
func selectEngines(spec string) ([]conformance.Engine, error) {
	if spec == "all" {
		return conformance.All(), nil
	}
	var out []conformance.Engine
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		e, ok := conformance.ByName(name)
		if !ok {
			return nil, fmt.Errorf("invalid -engines %q (allowed: all, %s)", name, strings.Join(conformance.Names(), ", "))
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("invalid -engines %q: no engines selected", spec)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-verify:", err)
	os.Exit(1)
}
