// Command ristretto-dse explores the Ristretto design space — compute-tile
// count × multipliers per tile × atom granularity — for one network and
// precision, printing cycles, area, energy and the Pareto frontier.
//
// Usage:
//
//	ristretto-dse -net ResNet-18 -precision 4b [-scale 4] [-seed 1] [-parallel N]
//	              [-tiles 8,16,32,64] [-mults 8,16,32] [-grans 1,2,3]
//	              [-telemetry] [-manifest path]
//	              [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ristretto/internal/experiments"
	"ristretto/internal/telemetry"
)

func main() {
	net := flag.String("net", "ResNet-18", "network name")
	precision := flag.String("precision", "4b", strings.Join(experiments.PrecisionNames, ", "))
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor")
	parallel := flag.Int("parallel", 0, "max concurrent sweep points (0 = all CPUs, 1 = serial)")
	tiles := flag.String("tiles", "8,16,32,64", "comma-separated tile counts")
	mults := flag.String("mults", "8,16,32", "comma-separated multipliers per tile")
	grans := flag.String("grans", "1,2,3", "comma-separated atom granularities (1-3)")
	telem := flag.Bool("telemetry", false, "enable telemetry and print the stage-utilization table and counter snapshot")
	manifestPath := flag.String("manifest", "", "also write a run manifest to this path (implies -telemetry)")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-dse"))
		return
	}
	if !validPrecision(*precision) {
		fatal(fmt.Errorf("invalid -precision %q (allowed: %s)", *precision, strings.Join(experiments.PrecisionNames, ", ")))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}
	for _, g := range ints(*grans) {
		if g < 1 || g > 3 {
			fatal(fmt.Errorf("invalid -grans value %d (allowed: 1, 2, 3)", g))
		}
	}
	for _, v := range append(ints(*tiles), ints(*mults)...) {
		if v < 1 {
			fatal(fmt.Errorf("invalid -tiles/-mults value %d: must be >= 1", v))
		}
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
		}
	}()
	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)

	b := experiments.NewQuickBench(*seed, *scale)
	b.Nets = []string{*net}
	b.Workers = *parallel
	r, err := b.DSETable(*net, *precision, ints(*tiles), ints(*mults), ints(*grans))
	if err != nil {
		fatal(err)
	}
	fmt.Println(r.String())
	fmt.Println("* = Pareto-optimal on (cycles, area, energy)")
	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("\n== Stage utilization ==")
		fmt.Print(snap.StageTable())
		if *manifestPath != "" {
			m := telemetry.NewManifest("ristretto-dse")
			m.Seed = *seed
			m.Scale = *scale
			m.Workers = *parallel
			if m.Workers <= 0 {
				m.Workers = runtime.NumCPU()
			}
			m.Nets = []string{*net}
			m.AttachSnapshot(snap)
			if err := m.Write(*manifestPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ristretto-dse: run manifest written to %s\n", *manifestPath)
		}
	}
}

func validPrecision(p string) bool {
	for _, name := range experiments.PrecisionNames {
		if p == name {
			return true
		}
	}
	return false
}

func ints(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", s))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
	os.Exit(1)
}
