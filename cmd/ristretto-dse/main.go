// Command ristretto-dse explores the Ristretto design space — compute-tile
// count × multipliers per tile × atom granularity — for one network and
// precision, printing cycles, area, energy and the Pareto frontier.
//
// Usage:
//
//	ristretto-dse -net ResNet-18 -precision 4b [-scale 4] [-seed 1] [-parallel N]
//	              [-tiles 8,16,32,64] [-mults 8,16,32] [-grans 1,2,3]
//	              [-telemetry] [-manifest path]
//	              [-checkpoint path] [-resume] [-keep-going]
//	              [-cell-timeout d] [-retries N] [-fault spec]
//	              [-cpuprofile f] [-memprofile f] [-trace f] [-pprof addr]
//
// Fault tolerance mirrors ristretto-bench: -checkpoint journals each grid
// point (keyed "g<gran>-t<tiles>-m<mults>") to an append-only crc-guarded
// file, SIGINT/SIGTERM flush the journal and exit 130, and -resume
// recomputes only the missing points — the rendered frontier is
// bit-identical to an uninterrupted sweep. The journal fingerprint covers
// the network, precision and grid, so resuming with different sweep
// parameters is rejected.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

func main() {
	net := flag.String("net", "ResNet-18", "network name")
	precision := flag.String("precision", "4b", strings.Join(experiments.PrecisionNames, ", "))
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor")
	parallel := flag.Int("parallel", 0, "max concurrent sweep points (0 = all CPUs, 1 = serial)")
	tiles := flag.String("tiles", "8,16,32,64", "comma-separated tile counts")
	mults := flag.String("mults", "8,16,32", "comma-separated multipliers per tile")
	grans := flag.String("grans", "1,2,3", "comma-separated atom granularities (1-3)")
	telem := flag.Bool("telemetry", false, "enable telemetry and print the stage-utilization table and counter snapshot")
	manifestPath := flag.String("manifest", "", "also write a run manifest to this path (implies -telemetry)")
	checkpoint := flag.String("checkpoint", "", "journal completed grid points to this file (schema "+experiments.CheckpointSchema+")")
	resume := flag.Bool("resume", false, "replay completed grid points from the -checkpoint journal and compute only what is missing")
	keepGoing := flag.Bool("keep-going", false, "sweep every grid point even after failures, excluding failed points from the frontier")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-point wall-time bound (0 = none)")
	retries := flag.Int("retries", 0, "max re-attempts per grid point for transient errors")
	faultSpec := flag.String("fault", "", "deterministic fault-injection spec, e.g. \"seed=7,transient=0.2:2,kill-after=5\"")
	version := flag.Bool("version", false, "print version and VCS info, then exit")
	var prof telemetry.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.VersionString("ristretto-dse"))
		return
	}
	if !validPrecision(*precision) {
		fatal(fmt.Errorf("invalid -precision %q (allowed: %s)", *precision, strings.Join(experiments.PrecisionNames, ", ")))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}
	for _, g := range ints(*grans) {
		if g < 1 || g > 3 {
			fatal(fmt.Errorf("invalid -grans value %d (allowed: 1, 2, 3)", g))
		}
	}
	for _, v := range append(ints(*tiles), ints(*mults)...) {
		if v < 1 {
			fatal(fmt.Errorf("invalid -tiles/-mults value %d: must be >= 1", v))
		}
	}
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("invalid -retries %d: must be >= 0", *retries))
	}
	if *cellTimeout < 0 {
		fatal(fmt.Errorf("invalid -cell-timeout %v: must be >= 0", *cellTimeout))
	}
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
		}
	}()
	if *manifestPath != "" {
		*telem = true
	}
	telemetry.Default.SetEnabled(*telem)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	b := experiments.NewQuickBench(*seed, *scale)
	b.Nets = []string{*net}
	b.Workers = *parallel
	b.Ctx = ctx

	opts := experiments.RunOptions{
		KeepGoing:   *keepGoing,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
	}
	sched := faultinject.New(spec)
	sched.OnKill(cancel)
	opts.Fault = sched.Hook()
	if spec.Transient > 0 {
		opts.Retryable = faultinject.IsTransient
	}
	if *checkpoint != "" {
		// The bench fingerprint alone would collide across -net/-precision and
		// grid shapes; pin the whole sweep identity into the journal header.
		fp := fmt.Sprintf("%s net=%s prec=%s tiles=%s mults=%s grans=%s",
			b.Fingerprint(), *net, *precision, *tiles, *mults, *grans)
		j, err := experiments.OpenJournal(*checkpoint, "ristretto-dse", fp, *resume)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		if *resume && j.Resumable() {
			fmt.Fprintf(os.Stderr, "ristretto-dse: resuming from %s (%d completed points)\n", *checkpoint, j.Cells())
		}
		opts.Journal = j
	}

	r, err := b.DSETableOpts(opts, *net, *precision, ints(*tiles), ints(*mults), ints(*grans))
	if ctx.Err() != nil {
		msg := "ristretto-dse: interrupted"
		if *checkpoint != "" {
			msg += fmt.Sprintf("; rerun with -checkpoint %s -resume to continue", *checkpoint)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}
	if err != nil && !errors.Is(err, context.Canceled) && r == nil {
		fatal(err)
	}
	fmt.Println(r.String())
	fmt.Println("* = Pareto-optimal on (cycles, area, energy)")
	if *telem {
		snap := telemetry.Default.Snapshot()
		fmt.Println("\n== Stage utilization ==")
		fmt.Print(snap.StageTable())
		if *manifestPath != "" {
			m := telemetry.NewManifest("ristretto-dse")
			m.Seed = *seed
			m.Scale = *scale
			m.Workers = *parallel
			if m.Workers <= 0 {
				m.Workers = runtime.NumCPU()
			}
			m.Nets = []string{*net}
			m.Checkpoint = *checkpoint
			m.AttachSnapshot(snap)
			if err := m.Write(*manifestPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ristretto-dse: run manifest written to %s\n", *manifestPath)
		}
	}
	if r.Err != nil {
		fatal(fmt.Errorf("one or more grid points failed: %w", r.Err))
	}
}

func validPrecision(p string) bool {
	for _, name := range experiments.PrecisionNames {
		if p == name {
			return true
		}
	}
	return false
}

func ints(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", s))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
	os.Exit(1)
}
