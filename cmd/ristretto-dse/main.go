// Command ristretto-dse explores the Ristretto design space — compute-tile
// count × multipliers per tile × atom granularity — for one network and
// precision, printing cycles, area, energy and the Pareto frontier.
//
// Usage:
//
//	ristretto-dse -net ResNet-18 -precision 4b [-scale 4] [-seed 1]
//	              [-tiles 8,16,32,64] [-mults 8,16,32] [-grans 1,2,3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ristretto/internal/experiments"
)

func main() {
	net := flag.String("net", "ResNet-18", "network name")
	precision := flag.String("precision", "4b", "8b, 4b, 2b or mix2/4")
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor")
	tiles := flag.String("tiles", "8,16,32,64", "comma-separated tile counts")
	mults := flag.String("mults", "8,16,32", "comma-separated multipliers per tile")
	grans := flag.String("grans", "1,2,3", "comma-separated atom granularities")
	flag.Parse()

	b := experiments.NewQuickBench(*seed, *scale)
	b.Nets = []string{*net}
	r, err := b.DSETable(*net, *precision, ints(*tiles), ints(*mults), ints(*grans))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
		os.Exit(1)
	}
	fmt.Println(r.String())
	fmt.Println("* = Pareto-optimal on (cycles, area, energy)")
}

func ints(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ristretto-dse: bad integer %q\n", s)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}
