// Command ristretto-dse explores the Ristretto design space — compute-tile
// count × multipliers per tile × atom granularity — for one network and
// precision, printing cycles, area, energy and the Pareto frontier.
//
// Usage:
//
//	ristretto-dse -net ResNet-18 -precision 4b [-scale 4] [-seed 1] [-parallel N]
//	              [-tiles 8,16,32,64] [-mults 8,16,32] [-grans 1,2,3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ristretto/internal/experiments"
)

func main() {
	net := flag.String("net", "ResNet-18", "network name")
	precision := flag.String("precision", "4b", strings.Join(experiments.PrecisionNames, ", "))
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Int("scale", 1, "spatial scale-down factor")
	parallel := flag.Int("parallel", 0, "max concurrent sweep points (0 = all CPUs, 1 = serial)")
	tiles := flag.String("tiles", "8,16,32,64", "comma-separated tile counts")
	mults := flag.String("mults", "8,16,32", "comma-separated multipliers per tile")
	grans := flag.String("grans", "1,2,3", "comma-separated atom granularities")
	flag.Parse()

	if !validPrecision(*precision) {
		fatal(fmt.Errorf("invalid -precision %q (allowed: %s)", *precision, strings.Join(experiments.PrecisionNames, ", ")))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("invalid -scale %d: must be >= 1", *scale))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("invalid -parallel %d: must be >= 0 (0 = all CPUs)", *parallel))
	}

	b := experiments.NewQuickBench(*seed, *scale)
	b.Nets = []string{*net}
	b.Workers = *parallel
	r, err := b.DSETable(*net, *precision, ints(*tiles), ints(*mults), ints(*grans))
	if err != nil {
		fatal(err)
	}
	fmt.Println(r.String())
	fmt.Println("* = Pareto-optimal on (cycles, area, energy)")
}

func validPrecision(p string) bool {
	for _, name := range experiments.PrecisionNames {
		if p == name {
			return true
		}
	}
	return false
}

func ints(csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", s))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ristretto-dse:", err)
	os.Exit(1)
}
