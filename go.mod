module ristretto

go 1.22
