// Package bench hosts the benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (regenerating the same rows at
// reduced scale; run cmd/ristretto-bench -scale 1 for paper-scale output),
// plus micro-benchmarks of the computational kernels.
package bench

import (
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/snap"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/benchmanifest"
	"ristretto/internal/core"
	"ristretto/internal/experiments"
	"ristretto/internal/ristretto"
	"ristretto/internal/sparse"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// quick returns a reduced-scale bench whose stats cache persists across
// b.N iterations, so steady-state iterations measure the analysis itself.
func quick() *experiments.Bench {
	b := experiments.NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet", "ResNet-18"}
	return b
}

func BenchmarkFigure1(b *testing.B) {
	eb := experiments.NewQuickBench(1, 8)
	for i := 0; i < b.N; i++ {
		if r := eb.Figure1(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	eb := experiments.NewQuickBench(1, 8)
	for i := 0; i < b.N; i++ {
		if r := eb.Figure4(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure12(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure13(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure14(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure15(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure16(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure17(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure17(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure18(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure18(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure19a(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure19a(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure19b(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.Figure19b(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.TableIV(); len(r.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.TableVI(); len(r.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

// --- kernel micro-benchmarks ---

func BenchmarkAtomDecompose(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		atom.Decompose(int32(i%127), 8, 2)
	}
}

func BenchmarkNAFTermCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		atom.TermCount(int32(i % 255))
	}
}

func BenchmarkCSCIntersect(b *testing.B) {
	g := workload.NewGen(1)
	f := g.FeatureMapExact(1, 16, 16, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(16, 1, 3, 3, 8, 2, 0.5, 0.7)
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 16, H: 16}), 8, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.NewOutputMap(16, 18, 18)
		core.Intersect(acts, ws, 32, 3, 3, 16, 16, out)
	}
}

func BenchmarkCycleSimTile(b *testing.B) {
	g := workload.NewGen(2)
	f := g.FeatureMapExact(1, 16, 16, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(16, 1, 3, 3, 8, 2, 0.5, 0.7)
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 16, H: 16}), 8, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	cfg := ristretto.TileConfig{Mults: 32, Gran: 2, FIFODepth: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.NewOutputMap(16, 18, 18)
		ristretto.SimulateIntersection(acts, ws, 3, 3, 16, 16, out, cfg)
	}
}

func BenchmarkSparTenInnerJoin(b *testing.B) {
	g := workload.NewGen(3)
	a := g.SparseVector(512, 8, 0.4, false)
	w := g.SparseVector(512, 8, 0.5, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparten.InnerProduct(a, w)
	}
}

func BenchmarkBitmapMatch(b *testing.B) {
	g := workload.NewGen(4)
	av := sparse.EncodeBitmap(g.SparseVector(1024, 8, 0.4, false), 8)
	wv := sparse.EncodeBitmap(g.SparseVector(1024, 8, 0.5, true), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.MatchCount(av, wv)
	}
}

func BenchmarkLaconicTile(b *testing.B) {
	g := workload.NewGen(5)
	cfg := laconic.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		laconic.SimulateTile(g, cfg, 8, 0.5)
	}
}

func BenchmarkBalanceAssign(b *testing.B) {
	g := workload.NewGen(6)
	costs := make([]int64, 512)
	watoms := make([]int, 512)
	for i := range costs {
		costs[i] = int64(g.SparseVector(1, 8, 1, false)[0]) + 1
		watoms[i] = int(costs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balance.Assign(balance.WeightAct, costs, watoms, 32)
	}
}

func BenchmarkAnalyticLayerEstimate(b *testing.B) {
	eb := quick()
	stats := eb.Stats(eb.Networks()[1], "4b", 2)
	cfg := ristretto.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range stats {
			ristretto.EstimateLayer(st, cfg)
		}
	}
}

func BenchmarkBitFusionEstimate(b *testing.B) {
	eb := quick()
	stats := eb.Stats(eb.Networks()[1], "4b", 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitfusion.EstimateNetwork(stats, bitfusion.DefaultConfig())
	}
}

// --- extension-study benchmarks (ablations DESIGN.md calls out) ---

func BenchmarkExtTableITrio(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtTableI(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtFigure3Strawman(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtFigure3(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtStrideAblation(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtStride(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtFIFODepthAblation(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtFIFO(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtFormatStudy(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtFormats(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtHighPrecisionModes(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtHighPrecision(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtBalancingAblation(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtBalancingNetworks(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExtMultiCoreScaling(b *testing.B) {
	eb := quick()
	for i := 0; i < b.N; i++ {
		if r := eb.ExtMultiCore(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkSNAPMatch(b *testing.B) {
	g := workload.NewGen(7)
	a := g.SparseVector(512, 8, 0.4, false)
	w := g.SparseVector(512, 8, 0.5, true)
	var ai, av, wi, wv []int32
	for i, x := range a {
		if x != 0 {
			ai = append(ai, int32(i))
			av = append(av, x)
		}
	}
	for i, x := range w {
		if x != 0 {
			wi = append(wi, int32(i))
			wv = append(wv, x)
		}
	}
	cfg := snap.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.MatchVectors(ai, av, wi, wv, cfg)
	}
}

func BenchmarkSparTenLayerSim(b *testing.B) {
	g := workload.NewGen(8)
	f := g.FeatureMapExact(4, 10, 10, 8, 2, 0.5, 0.8)
	w := g.KernelsExact(8, 4, 3, 3, 8, 2, 0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparten.SimulateLayer(f, w, 1, 1, sparten.Config{CUs: 4})
	}
}

// BenchmarkManifest runs the tracked micro-benchmark registry — the same
// entries `ristretto-bench -bench-manifest` measures and commits to the
// BENCH_*.json perf-trajectory manifests — under the standard harness:
//
//	go test -bench 'Manifest/' -benchmem .
func BenchmarkManifest(b *testing.B) {
	for _, bm := range benchmanifest.Registry() {
		b.Run(bm.Name, bm.Fn)
	}
}

// TestBenchHarnessSmoke keeps `go test` (without -bench) meaningful for this
// package: the harness must produce non-empty results for one cheap table
// and one cheap figure.
func TestBenchHarnessSmoke(t *testing.T) {
	if r := experiments.TableIV(); len(r.Rows) != 4 {
		t.Fatalf("Table IV rows = %d", len(r.Rows))
	}
	if r := quick().Figure19a(); len(r.Rows) != 3 {
		t.Fatalf("Figure 19a rows = %d", len(r.Rows))
	}
}
