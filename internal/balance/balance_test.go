package balance

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randCosts(rng *rand.Rand, n int) ([]int64, []int) {
	costs := make([]int64, n)
	watoms := make([]int, n)
	for i := range costs {
		watoms[i] = rng.Intn(500) + 1
		costs[i] = int64(rng.Intn(10000) + 1)
	}
	return costs, watoms
}

func TestCost(t *testing.T) {
	if Cost(10, 33, 32) != 20 {
		t.Fatalf("Cost(10,33,32) = %d, want 20", Cost(10, 33, 32))
	}
	if Cost(10, 32, 32) != 10 {
		t.Fatalf("Cost(10,32,32) = %d, want 10", Cost(10, 32, 32))
	}
	if Cost(0, 5, 32) != 0 || Cost(5, 0, 32) != 0 {
		t.Fatal("empty streams must cost zero")
	}
}

func TestAssignPartition(t *testing.T) {
	// Every policy must produce a partition: all channels exactly once.
	rng := rand.New(rand.NewSource(1))
	costs, watoms := randCosts(rng, 128)
	for _, p := range []Policy{None, WeightOnly, WeightAct} {
		groups := Assign(p, costs, watoms, 32)
		if len(groups) != 32 {
			t.Fatalf("%v: %d groups", p, len(groups))
		}
		seen := make([]bool, 128)
		for _, g := range groups {
			for _, c := range g {
				if seen[c] {
					t.Fatalf("%v: channel %d assigned twice", p, c)
				}
				seen[c] = true
			}
		}
		for c, s := range seen {
			if !s {
				t.Fatalf("%v: channel %d unassigned", p, c)
			}
		}
	}
}

func TestWeightActBeatsNone(t *testing.T) {
	// With skewed costs, w/a balancing must never have a worse max-group
	// cost than cyclic assignment, and typically much better.
	rng := rand.New(rand.NewSource(2))
	better := 0
	for trial := 0; trial < 50; trial++ {
		costs, watoms := randCosts(rng, 128)
		gNone := GroupCosts(Assign(None, costs, watoms, 32), costs)
		gWA := GroupCosts(Assign(WeightAct, costs, watoms, 32), costs)
		maxNone, _, _ := Spread(gNone)
		maxWA, _, _ := Spread(gWA)
		if maxWA > maxNone {
			t.Fatalf("trial %d: w/a max %d worse than none %d", trial, maxWA, maxNone)
		}
		if maxWA < maxNone {
			better++
		}
	}
	if better < 40 {
		t.Fatalf("w/a balancing strictly better in only %d/50 trials", better)
	}
}

func TestWeightActNearIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	costs, watoms := randCosts(rng, 128)
	var total int64
	for _, c := range costs {
		total += c
	}
	ideal := float64(total) / 32
	max, _, _ := Spread(GroupCosts(Assign(WeightAct, costs, watoms, 32), costs))
	if float64(max) > ideal*1.25 {
		t.Fatalf("w/a max group %d exceeds 1.25× ideal %f", max, ideal)
	}
}

func TestWeightOnlyUsesWeightMetric(t *testing.T) {
	// Costs anti-correlated with weight atoms: w balancing should be poor
	// at equalizing true costs, w/a balancing good (Figure 18 narrative).
	n := 64
	costs := make([]int64, n)
	watoms := make([]int, n)
	rng := rand.New(rand.NewSource(4))
	for i := range costs {
		watoms[i] = rng.Intn(1000) + 1
		costs[i] = int64(100000/watoms[i]) + int64(rng.Intn(50))
	}
	maxW, _, _ := Spread(GroupCosts(Assign(WeightOnly, costs, watoms, 8), costs))
	maxWA, _, _ := Spread(GroupCosts(Assign(WeightAct, costs, watoms, 8), costs))
	if maxWA >= maxW {
		t.Fatalf("w/a (%d) should beat w-only (%d) when activations matter", maxWA, maxW)
	}
}

func TestAssignPartitionProperty(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%100 + 1
		m := int(m8)%16 + 1
		costs, watoms := randCosts(rng, n)
		for _, p := range []Policy{None, WeightOnly, WeightAct} {
			groups := Assign(p, costs, watoms, m)
			cnt := 0
			for _, g := range groups {
				cnt += len(g)
			}
			if cnt != n || len(groups) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpread(t *testing.T) {
	max, min, mean := Spread([]int64{4, 8, 6})
	if max != 8 || min != 4 || mean != 6 {
		t.Fatalf("Spread = %d %d %f", max, min, mean)
	}
}

func TestPolicyString(t *testing.T) {
	if None.String() != "no balancing" || WeightOnly.String() != "w balancing" || WeightAct.String() != "w/a balancing" {
		t.Fatal("policy names changed")
	}
}

func TestCostDegenerateMultipliers(t *testing.T) {
	// Regression: zero or negative multiplier counts must cost nothing, not
	// divide by zero (reachable from DSE grids and CLI flags).
	if got := Cost(10, 20, 0); got != 0 {
		t.Fatalf("Cost(10,20,0) = %d, want 0", got)
	}
	if got := Cost(10, 20, -4); got != 0 {
		t.Fatalf("Cost(10,20,-4) = %d, want 0", got)
	}
}
