package balance_test

import (
	"fmt"

	"ristretto/internal/balance"
)

// Section IV-E: channels with known Eq. 5 costs are grouped onto tiles by
// repeatedly pairing the largest with the smallest.
func ExampleAssign() {
	costs := []int64{100, 10, 90, 20, 80, 30, 70, 40}
	watoms := []int{1, 1, 1, 1, 1, 1, 1, 1}
	groups := balance.Assign(balance.WeightAct, costs, watoms, 4)
	gc := balance.GroupCosts(groups, costs)
	max, min, mean := balance.Spread(gc)
	fmt.Printf("max %d min %d mean %.0f\n", max, min, mean)
	// Output:
	// max 110 min 110 mean 110
}

// Eq. 5: the cost of one channel's stream pair on N multipliers.
func ExampleCost() {
	fmt.Println(balance.Cost(1000, 96, 32)) // 3 rounds of the static stream
	// Output:
	// 3000
}
