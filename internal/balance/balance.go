// Package balance implements the workload allocation policies of Section
// IV-E: input feature maps (channels) and their kernels are divided among the
// M compute tiles so per-tile work is as even as possible.
//
// Because CSC latency is determined by compressed stream lengths, the cost of
// a channel is known *before* computation starts: C_T = T·⌈S/N⌉ (Eq. 5),
// where T counts the channel's non-zero activation atoms and S its kernels'
// non-zero weight atoms. Ristretto's "w/a balancing" exploits exactly this;
// the baselines are cyclic assignment ("no balancing") and weight-statistics
// only ("w balancing", as SparTen does).
package balance

import (
	"fmt"
	"sort"
)

// Policy selects a balancing method.
type Policy int

const (
	// None allocates channels to tiles cyclically, ignoring statistics.
	None Policy = iota
	// WeightOnly groups channels greedily by weight-atom counts alone.
	WeightOnly
	// WeightAct groups channels greedily by the full Eq. 5 cost, using both
	// weight and activation statistics. This is the paper's contribution.
	WeightAct
)

func (p Policy) String() string {
	switch p {
	case None:
		return "no balancing"
	case WeightOnly:
		return "w balancing"
	case WeightAct:
		return "w/a balancing"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Cost returns C_T for one channel: T·⌈S/N⌉ (Eq. 5, ε omitted as in the
// paper).
func Cost(actAtoms, weightAtoms, mults int) int64 {
	if weightAtoms <= 0 || actAtoms <= 0 || mults <= 0 {
		return 0
	}
	rounds := (weightAtoms + mults - 1) / mults
	return int64(actAtoms) * int64(rounds)
}

// Assign divides channels 0..len(costs)-1 into m groups under the policy.
// costs must be the Eq. 5 costs; watoms the per-channel weight-atom counts
// (used by WeightOnly). The returned slice has m entries, each the channel
// indices of one tile's group.
func Assign(p Policy, costs []int64, watoms []int, m int) [][]int {
	n := len(costs)
	if m <= 0 {
		panic("balance: need at least one tile")
	}
	groups := make([][]int, m)
	switch p {
	case None:
		for c := 0; c < n; c++ {
			groups[c%m] = append(groups[c%m], c)
		}
	case WeightOnly:
		metric := make([]int64, n)
		for c := range metric {
			metric[c] = int64(watoms[c])
		}
		groups = bestOf(greedyPair(metric, m), cyclic(n, m), metric)
	case WeightAct:
		groups = bestOf(greedyPair(costs, m), cyclic(n, m), costs)
	default:
		panic("balance: unknown policy")
	}
	return groups
}

func cyclic(n, m int) [][]int {
	groups := make([][]int, m)
	for c := 0; c < n; c++ {
		groups[c%m] = append(groups[c%m], c)
	}
	return groups
}

// bestOf picks the grouping with the smaller maximum metric — the offline
// scheduler can always fall back to cyclic assignment when the greedy
// pairing happens to lose on near-uniform workloads.
func bestOf(a, b [][]int, metric []int64) [][]int {
	maxA, _, _ := Spread(GroupCosts(a, metric))
	maxB, _, _ := Spread(GroupCosts(b, metric))
	if maxB < maxA {
		return b
	}
	return a
}

// greedyPair implements the paper's grouping: items are repeatedly paired
// "largest with smallest, second largest with second smallest" until only m
// groups remain.
func greedyPair(metric []int64, m int) [][]int {
	type item struct {
		cost     int64
		channels []int
	}
	items := make([]item, len(metric))
	for c, v := range metric {
		items[c] = item{cost: v, channels: []int{c}}
	}
	for len(items) > m {
		sort.SliceStable(items, func(i, j int) bool { return items[i].cost > items[j].cost })
		// Pair extremes: (0, last), (1, last-1), ... halving the item count.
		k := len(items)
		pairs := k / 2
		if k-pairs < m {
			pairs = k - m // only merge down to exactly m groups
		}
		next := make([]item, 0, k-pairs)
		for i := 0; i < pairs; i++ {
			a, b := items[i], items[k-1-i]
			next = append(next, item{cost: a.cost + b.cost, channels: append(append([]int{}, a.channels...), b.channels...)})
		}
		next = append(next, items[pairs:k-pairs]...)
		items = next
	}
	out := make([][]int, m)
	for i := range items {
		out[i] = items[i].channels
	}
	return out
}

// GroupCosts returns the total cost of each group under the true (Eq. 5)
// costs — what the tile latencies will be.
func GroupCosts(groups [][]int, costs []int64) []int64 {
	out := make([]int64, len(groups))
	for g, chans := range groups {
		for _, c := range chans {
			out[g] += costs[c]
		}
	}
	return out
}

// Spread reports the max, min and mean of group costs — the imbalance metric
// Figure 18 visualizes.
func Spread(groupCosts []int64) (max, min int64, mean float64) {
	if len(groupCosts) == 0 {
		return 0, 0, 0
	}
	max, min = groupCosts[0], groupCosts[0]
	var sum int64
	for _, c := range groupCosts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
		sum += c
	}
	return max, min, float64(sum) / float64(len(groupCosts))
}
