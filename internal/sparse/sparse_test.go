package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ristretto/internal/tensor"
)

func randFeatureMap(rng *rand.Rand, c, h, w, bits int, density float64) *tensor.FeatureMap {
	f := tensor.NewFeatureMap(c, h, w, bits)
	for i := range f.Data {
		if rng.Float64() < density {
			f.Data[i] = int32(rng.Intn(1<<bits-1) + 1)
		}
	}
	return f
}

func TestTileCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randFeatureMap(rng, 3, 17, 13, 8, 0.4)
	for _, tl := range tensor.TileGrid(f.W, f.H, 8, 8) {
		for c := 0; c < f.C; c++ {
			enc := EncodeTile(f, c, tl)
			got := tensor.NewFeatureMap(f.C, f.H, f.W, f.Bits)
			enc.DecodeInto(got)
			for y := 0; y < tl.H; y++ {
				for x := 0; x < tl.W; x++ {
					if got.At(c, tl.Y0+y, tl.X0+x) != f.At(c, tl.Y0+y, tl.X0+x) {
						t.Fatalf("tile %v c=%d mismatch at (%d,%d)", tl, c, x, y)
					}
				}
			}
		}
	}
}

func TestTileCOOZigzagOrder(t *testing.T) {
	f := tensor.NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 1, 5)
	f.Set(0, 1, 0, 9)
	enc := EncodeTile(f, 0, tensor.Tile{W: 2, H: 2})
	if len(enc.Entries) != 2 || enc.Entries[0].Val != 5 || enc.Entries[1].Val != 9 {
		t.Fatalf("zigzag order violated: %+v", enc.Entries)
	}
}

func TestTileCOOSize(t *testing.T) {
	f := tensor.NewFeatureMap(1, 4, 4, 4)
	f.Set(0, 0, 0, 3)
	f.Set(0, 3, 3, 1)
	enc := EncodeTile(f, 0, tensor.Tile{W: 4, H: 4})
	// 2 entries × (4-bit payload + 2+2-bit coordinates) + 16-bit header.
	if enc.SizeBits() != 16+2*(4+4) {
		t.Fatalf("SizeBits = %d", enc.SizeBits())
	}
	if enc.NNZ() != 2 {
		t.Fatalf("NNZ = %d", enc.NNZ())
	}
}

func TestKernelCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.NewKernelStack(4, 3, 3, 3, 4)
	for i := range w.Data {
		if rng.Float64() < 0.5 {
			w.Data[i] = int32(rng.Intn(15) - 7)
		}
	}
	enc := EncodeKernels(w, nil)
	got := tensor.NewKernelStack(4, 3, 3, 3, 4)
	enc.Decode(got)
	for i := range w.Data {
		if got.Data[i] != w.Data[i] {
			t.Fatalf("kernel COO round trip mismatch at %d", i)
		}
	}
	if enc.NNZ() != w.NonZero() {
		t.Fatalf("NNZ %d != %d", enc.NNZ(), w.NonZero())
	}
}

func TestKernelCOOSubset(t *testing.T) {
	w := tensor.NewKernelStack(4, 1, 1, 1, 8)
	for k := 0; k < 4; k++ {
		w.Set(k, 0, 0, 0, int32(k+1))
	}
	enc := EncodeKernels(w, []int{1, 3})
	if enc.NNZ() != 2 || enc.Entries[0].K != 1 || enc.Entries[1].K != 3 {
		t.Fatalf("subset encode wrong: %+v", enc.Entries)
	}
}

func TestBitmapRoundTripProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		v := make([]int32, n)
		for i := range v {
			if rng.Intn(3) == 0 {
				v[i] = int32(rng.Intn(255) + 1)
			}
		}
		b := EncodeBitmap(v, 8)
		dec := b.Decode()
		for i := range v {
			if dec[i] != v[i] {
				return false
			}
		}
		return b.SizeBits() == n+b.NNZ()*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchCountAndPairs(t *testing.T) {
	a := EncodeBitmap([]int32{0, 2, 3, 0, 5, 0}, 8)
	w := EncodeBitmap([]int32{1, 0, 4, 0, 6, 7}, 8)
	if MatchCount(a, w) != 2 {
		t.Fatalf("MatchCount = %d, want 2", MatchCount(a, w))
	}
	pairs := MatchedPairs(a, w)
	if len(pairs) != 2 || pairs[0] != [2]int32{3, 4} || pairs[1] != [2]int32{5, 6} {
		t.Fatalf("MatchedPairs = %v", pairs)
	}
	// Inner product via matched pairs equals dense dot product.
	var dot, dense int32
	for _, p := range pairs {
		dot += p[0] * p[1]
	}
	da, dw := a.Decode(), w.Decode()
	for i := range da {
		dense += da[i] * dw[i]
	}
	if dot != dense {
		t.Fatalf("sparse dot %d != dense %d", dot, dense)
	}
}

func TestLaneMatchCounts(t *testing.T) {
	av := make([]int32, 64)
	wv := make([]int32, 64)
	for i := 0; i < 64; i++ {
		av[i] = 1
	}
	wv[0], wv[1], wv[33] = 1, 1, 1
	counts := LaneMatchCounts(EncodeBitmap(av, 8), EncodeBitmap(wv, 8), 32)
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("LaneMatchCounts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != MatchCount(EncodeBitmap(av, 8), EncodeBitmap(wv, 8)) {
		t.Fatal("lane counts do not sum to MatchCount")
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := int(r8)%20+1, int(c8)%20+1
		dense := make([]int32, rows*cols)
		for i := range dense {
			if rng.Intn(4) == 0 {
				dense[i] = int32(rng.Intn(200) - 100)
			}
		}
		m := EncodeCSR(dense, rows, cols, 8)
		dec := m.Decode()
		for i := range dense {
			if dec[i] != dense[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRRowView(t *testing.T) {
	dense := []int32{0, 5, 0, 7, 0, 9}
	m := EncodeCSR(dense, 2, 3, 8)
	cols, vals := m.Row(1)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 7 || vals[1] != 9 {
		t.Fatalf("Row(1) = %v %v", cols, vals)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestEncodeTileRejectsOversizedTiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiles beyond 8-bit coordinates")
		}
	}()
	f := tensor.NewFeatureMap(1, 300, 300, 8)
	EncodeTile(f, 0, tensor.Tile{W: 300, H: 300})
}
