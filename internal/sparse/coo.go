// Package sparse implements the compressed tensor formats used by the
// accelerators in this study: the block COO-2D format Ristretto uses for
// feature-map tiles and kernels (Figure 8), the bitmap format SparTen uses for
// chunked vectors, and CSR as a conventional reference.
//
// Besides encode/decode, every format reports its encoded size in bits
// (payload plus metadata), which drives the buffer/DRAM traffic accounting in
// the energy models.
package sparse

import (
	"fmt"

	"ristretto/internal/tensor"
)

// COOEntry is one non-zero value with its spatial offset within a tile.
// The coordinate is the offset from the tile origin (block COO-2D), so tiles
// up to 256×256 need only one byte per axis.
type COOEntry struct {
	X, Y uint8
	Val  int32
}

// TileCOO is a block COO-2D encoding of one channel plane of one tile:
// a compact list of non-zero values in zigzag (row-major) order plus the tile
// geometry needed to reconstruct absolute coordinates.
type TileCOO struct {
	Tile    tensor.Tile
	Channel int
	Bits    int // value bit-width
	Entries []COOEntry
}

// EncodeTile extracts the non-zero activations of channel c within tile tl of
// f, in row-major (zigzag-flattened) order.
func EncodeTile(f *tensor.FeatureMap, c int, tl tensor.Tile) *TileCOO {
	if tl.W > 256 || tl.H > 256 {
		panic(fmt.Sprintf("sparse: tile %v exceeds COO-2D 8-bit coordinate range", tl))
	}
	t := &TileCOO{Tile: tl, Channel: c, Bits: f.Bits}
	for y := 0; y < tl.H; y++ {
		for x := 0; x < tl.W; x++ {
			v := f.At(c, tl.Y0+y, tl.X0+x)
			if v != 0 {
				t.Entries = append(t.Entries, COOEntry{X: uint8(x), Y: uint8(y), Val: v})
			}
		}
	}
	return t
}

// Decode scatters the entries back into dst (which must contain the tile).
// Positions not covered by an entry are left untouched, so dst should be
// zeroed over the tile first; DecodeInto handles that.
func (t *TileCOO) Decode(dst *tensor.FeatureMap) {
	for _, e := range t.Entries {
		dst.Set(t.Channel, t.Tile.Y0+int(e.Y), t.Tile.X0+int(e.X), e.Val)
	}
}

// DecodeInto zeroes the tile region of dst and scatters the entries.
func (t *TileCOO) DecodeInto(dst *tensor.FeatureMap) {
	for y := 0; y < t.Tile.H; y++ {
		for x := 0; x < t.Tile.W; x++ {
			dst.Set(t.Channel, t.Tile.Y0+y, t.Tile.X0+x, 0)
		}
	}
	t.Decode(dst)
}

// NNZ returns the number of encoded non-zero values.
func (t *TileCOO) NNZ() int { return len(t.Entries) }

// SizeBits returns the encoded size: per entry, the value payload plus two
// block-relative coordinates sized to the tile (4+4 bits for tiles up to
// 16×16), plus a 16-bit entry-count header.
func (t *TileCOO) SizeBits() int {
	return 16 + len(t.Entries)*(t.Bits+coordBits(t.Tile.W)+coordBits(t.Tile.H))
}

// coordBits returns the bits needed to address n positions.
func coordBits(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// KernelCOOEntry is one non-zero weight with kernel-space coordinates, its
// input channel, and the output channel (feature map) it contributes to.
type KernelCOOEntry struct {
	X, Y uint8  // position within the k×k kernel window
	C    uint16 // input channel
	K    uint16 // output channel
	Val  int32
}

// KernelCOO encodes the non-zero weights of a set of kernels in COO form.
// Weight compression happens offline (weights are fixed after training), so
// the encoder also strips zero atoms later in the pipeline.
type KernelCOO struct {
	KH, KW  int
	Bits    int
	Entries []KernelCOOEntry
}

// EncodeKernels extracts all non-zero weights of the given output channels
// (nil = all), ordered (k, c, y, x) — channel-first within a kernel window,
// matching Ristretto's weight-buffer layout.
func EncodeKernels(w *tensor.KernelStack, outChans []int) *KernelCOO {
	if outChans == nil {
		outChans = make([]int, w.K)
		for i := range outChans {
			outChans[i] = i
		}
	}
	kc := &KernelCOO{KH: w.KH, KW: w.KW, Bits: w.Bits}
	for _, k := range outChans {
		for c := 0; c < w.C; c++ {
			for y := 0; y < w.KH; y++ {
				for x := 0; x < w.KW; x++ {
					v := w.At(k, c, y, x)
					if v != 0 {
						kc.Entries = append(kc.Entries, KernelCOOEntry{
							X: uint8(x), Y: uint8(y), C: uint16(c), K: uint16(k), Val: v,
						})
					}
				}
			}
		}
	}
	return kc
}

// Decode scatters the weights into dst.
func (kc *KernelCOO) Decode(dst *tensor.KernelStack) {
	for _, e := range kc.Entries {
		dst.Set(int(e.K), int(e.C), int(e.Y), int(e.X), e.Val)
	}
}

// NNZ returns the number of encoded non-zero weights.
func (kc *KernelCOO) NNZ() int { return len(kc.Entries) }

// SizeBits returns the encoded size: value payload, 4+4 bits of kernel-window
// coordinates (kernels are at most 11×11), and 16+16 bits of channel indices.
func (kc *KernelCOO) SizeBits() int {
	return 16 + len(kc.Entries)*(kc.Bits+4+4+16+16)
}
