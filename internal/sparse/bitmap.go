package sparse

import "fmt"

// BitmapVec is SparTen's compression format: a dense bitmask recording which
// positions of a logical vector are non-zero, plus the packed non-zero values
// in order. SparTen's inner-join ANDs two bitmasks and uses priority encoding
// plus prefix sums over them to extract matched weight/activation pairs.
type BitmapVec struct {
	N    int      // logical vector length
	Bits int      // value bit-width
	Mask []uint64 // ceil(N/64) words, bit i set iff position i is non-zero
	Vals []int32  // packed non-zero values, ascending position order
}

// EncodeBitmap compresses v into bitmap form.
func EncodeBitmap(v []int32, bits int) *BitmapVec {
	b := &BitmapVec{N: len(v), Bits: bits, Mask: make([]uint64, (len(v)+63)/64)}
	for i, x := range v {
		if x != 0 {
			b.Mask[i/64] |= 1 << uint(i%64)
			b.Vals = append(b.Vals, x)
		}
	}
	return b
}

// Decode expands the bitmap back into a dense vector.
func (b *BitmapVec) Decode() []int32 {
	out := make([]int32, b.N)
	vi := 0
	for i := 0; i < b.N; i++ {
		if b.Mask[i/64]&(1<<uint(i%64)) != 0 {
			out[i] = b.Vals[vi]
			vi++
		}
	}
	return out
}

// NNZ returns the number of non-zero values.
func (b *BitmapVec) NNZ() int { return len(b.Vals) }

// SizeBits returns the encoded size: the full-length bitmask plus the packed
// payload.
func (b *BitmapVec) SizeBits() int { return b.N + len(b.Vals)*b.Bits }

// MatchCount returns the number of positions where both vectors are non-zero
// — the inner-join workload (one matched pair is extracted per cycle per
// inner-join module in SparTen).
func MatchCount(a, w *BitmapVec) int {
	if a.N != w.N {
		panic(fmt.Sprintf("sparse: bitmap length mismatch %d vs %d", a.N, w.N))
	}
	cnt := 0
	for i := range a.Mask {
		cnt += popcount64(a.Mask[i] & w.Mask[i])
	}
	return cnt
}

// MatchedPairs extracts the (activation, weight) value pairs at the matched
// positions, in ascending position order — exactly what the inner-join feeds
// the MAC. The scalar product of the vectors is the sum of pair products.
func MatchedPairs(a, w *BitmapVec) [][2]int32 {
	if a.N != w.N {
		panic("sparse: bitmap length mismatch")
	}
	var out [][2]int32
	ai, wi := 0, 0
	for i := 0; i < a.N; i++ {
		word, bit := i/64, uint(i%64)
		an := a.Mask[word]&(1<<bit) != 0
		wn := w.Mask[word]&(1<<bit) != 0
		if an && wn {
			out = append(out, [2]int32{a.Vals[ai], w.Vals[wi]})
		}
		if an {
			ai++
		}
		if wn {
			wi++
		}
	}
	return out
}

// LaneMatchCounts partitions the logical vector into lanes contiguous
// sub-ranges of laneLen positions and returns the per-lane matched-pair
// counts. SparTen-mp runs one inner-join per lane in parallel; the slowest
// lane bounds extraction throughput (Section II-B2a).
func LaneMatchCounts(a, w *BitmapVec, laneLen int) []int {
	if a.N != w.N {
		panic("sparse: bitmap length mismatch")
	}
	lanes := (a.N + laneLen - 1) / laneLen
	counts := make([]int, lanes)
	for i := 0; i < a.N; i++ {
		word, bit := i/64, uint(i%64)
		if a.Mask[word]&w.Mask[word]&(1<<bit) != 0 {
			counts[i/laneLen]++
		}
	}
	return counts
}

func popcount64(x uint64) int {
	cnt := 0
	for x != 0 {
		x &= x - 1
		cnt++
	}
	return cnt
}
