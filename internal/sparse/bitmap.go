package sparse

import (
	"fmt"
	"math/bits"
)

// BitmapVec is SparTen's compression format: a dense bitmask recording which
// positions of a logical vector are non-zero, plus the packed non-zero values
// in order. SparTen's inner-join ANDs two bitmasks and uses priority encoding
// plus prefix sums over them to extract matched weight/activation pairs.
type BitmapVec struct {
	N    int      // logical vector length
	Bits int      // value bit-width
	Mask []uint64 // ceil(N/64) words, bit i set iff position i is non-zero
	Vals []int32  // packed non-zero values, ascending position order
}

// EncodeBitmap compresses v into bitmap form.
func EncodeBitmap(v []int32, bits int) *BitmapVec {
	b := &BitmapVec{N: len(v), Bits: bits, Mask: make([]uint64, (len(v)+63)/64)}
	for i, x := range v {
		if x != 0 {
			b.Mask[i/64] |= 1 << uint(i%64)
			b.Vals = append(b.Vals, x)
		}
	}
	return b
}

// Decode expands the bitmap back into a dense vector.
func (b *BitmapVec) Decode() []int32 {
	out := make([]int32, b.N)
	vi := 0
	for i := 0; i < b.N; i++ {
		if b.Mask[i/64]&(1<<uint(i%64)) != 0 {
			out[i] = b.Vals[vi]
			vi++
		}
	}
	return out
}

// NNZ returns the number of non-zero values.
func (b *BitmapVec) NNZ() int { return len(b.Vals) }

// SizeBits returns the encoded size: the full-length bitmask plus the packed
// payload.
func (b *BitmapVec) SizeBits() int { return b.N + len(b.Vals)*b.Bits }

// MatchCount returns the number of positions where both vectors are non-zero
// — the inner-join workload (one matched pair is extracted per cycle per
// inner-join module in SparTen).
func MatchCount(a, w *BitmapVec) int {
	if a.N != w.N {
		panic(fmt.Sprintf("sparse: bitmap length mismatch %d vs %d", a.N, w.N))
	}
	cnt := 0
	for i := range a.Mask {
		cnt += popcount64(a.Mask[i] & w.Mask[i])
	}
	return cnt
}

// MatchedPairs extracts the (activation, weight) value pairs at the matched
// positions, in ascending position order — exactly what the inner-join feeds
// the MAC. The scalar product of the vectors is the sum of pair products.
func MatchedPairs(a, w *BitmapVec) [][2]int32 {
	if a.N != w.N {
		panic("sparse: bitmap length mismatch")
	}
	var out [][2]int32
	ai, wi := 0, 0
	for i := 0; i < a.N; i++ {
		word, bit := i/64, uint(i%64)
		an := a.Mask[word]&(1<<bit) != 0
		wn := w.Mask[word]&(1<<bit) != 0
		if an && wn {
			out = append(out, [2]int32{a.Vals[ai], w.Vals[wi]})
		}
		if an {
			ai++
		}
		if wn {
			wi++
		}
	}
	return out
}

// LaneMatchCounts partitions the logical vector into lanes contiguous
// sub-ranges of laneLen positions and returns the per-lane matched-pair
// counts. SparTen-mp runs one inner-join per lane in parallel; the slowest
// lane bounds extraction throughput (Section II-B2a).
func LaneMatchCounts(a, w *BitmapVec, laneLen int) []int {
	if a.N != w.N {
		panic("sparse: bitmap length mismatch")
	}
	lanes := (a.N + laneLen - 1) / laneLen
	counts := make([]int, lanes)
	for i := 0; i < a.N; i++ {
		word, bit := i/64, uint(i%64)
		if a.Mask[word]&w.Mask[word]&(1<<bit) != 0 {
			counts[i/laneLen]++
		}
	}
	return counts
}

func popcount64(x uint64) int { return bits.OnesCount64(x) }

// AppendMaskWords appends the non-zero bitmask words of v to dst (64
// positions per word, bit i%64 of word i/64 set iff v[i] != 0) and returns
// the extended slice. This is the zero-skipping front end the stream
// builders use: consumers iterate set bits with bits.TrailingZeros64 and
// never branch on the zero positions, the same word-at-a-time walk SparTen's
// inner join performs over its bitmasks.
func AppendMaskWords(dst []uint64, v []int32) []uint64 {
	for base := 0; base < len(v); base += 64 {
		end := base + 64
		if end > len(v) {
			end = len(v)
		}
		var word uint64
		for i, x := range v[base:end] {
			if x != 0 {
				word |= 1 << uint(i)
			}
		}
		dst = append(dst, word)
	}
	return dst
}

// NextNonZero returns the position of the first set bit at or after pos in
// the mask words, or n if there is none — the priority-encoder primitive
// over AppendMaskWords output.
func NextNonZero(mask []uint64, pos, n int) int {
	for pos < n {
		w := mask[pos/64] >> uint(pos%64)
		if w != 0 {
			pos += bits.TrailingZeros64(w)
			if pos >= n {
				return n
			}
			return pos
		}
		pos = (pos/64 + 1) * 64
	}
	return n
}
