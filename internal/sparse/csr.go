package sparse

// CSRMatrix is a conventional compressed-sparse-row encoding of a dense
// rows×cols matrix. Section II-B2b discusses applying CSR to Laconic's dense
// tensors; we implement it both for that modified-Laconic analysis and as a
// reference format in the compression tests.
type CSRMatrix struct {
	Rows, Cols int
	Bits       int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // len NNZ
	Vals       []int32 // len NNZ
}

// EncodeCSR compresses a row-major dense matrix.
func EncodeCSR(dense []int32, rows, cols, bits int) *CSRMatrix {
	if len(dense) != rows*cols {
		panic("sparse: dense length does not match shape")
	}
	m := &CSRMatrix{Rows: rows, Cols: cols, Bits: bits, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if v := dense[r*cols+c]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(c))
				m.Vals = append(m.Vals, v)
			}
		}
		m.RowPtr[r+1] = int32(len(m.Vals))
	}
	return m
}

// Decode expands back into a row-major dense matrix.
func (m *CSRMatrix) Decode() []int32 {
	out := make([]int32, m.Rows*m.Cols)
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out[r*m.Cols+int(m.ColIdx[i])] = m.Vals[i]
		}
	}
	return out
}

// NNZ returns the number of stored non-zeros.
func (m *CSRMatrix) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row r (shared storage).
func (m *CSRMatrix) Row(r int) ([]int32, []int32) {
	return m.ColIdx[m.RowPtr[r]:m.RowPtr[r+1]], m.Vals[m.RowPtr[r]:m.RowPtr[r+1]]
}

// SizeBits returns the encoded size assuming 16-bit column indices and 32-bit
// row pointers.
func (m *CSRMatrix) SizeBits() int {
	return len(m.RowPtr)*32 + len(m.Vals)*(m.Bits+16)
}
