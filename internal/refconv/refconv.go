// Package refconv is the golden model: a plain dense integer convolution and
// a tiled full-convolution variant mirroring the Atomulator's coordinate
// algebra. Every sparse/streaming/simulated implementation in this repository
// is validated bit-exactly against it.
package refconv

import (
	"fmt"

	"ristretto/internal/tensor"
)

// Conv computes the standard (cross-correlation) convolution of f with w at
// the given stride and zero padding, accumulating in int32.
func Conv(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int) *tensor.OutputMap {
	if f.C != w.C {
		panic(fmt.Sprintf("refconv: channel mismatch %d vs %d", f.C, w.C))
	}
	oh := tensor.ConvOutSize(f.H, w.KH, stride, pad)
	ow := tensor.ConvOutSize(f.W, w.KW, stride, pad)
	out := tensor.NewOutputMap(w.K, oh, ow)
	for k := 0; k < w.K; k++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int32
				for c := 0; c < f.C; c++ {
					for dy := 0; dy < w.KH; dy++ {
						iy := oy*stride - pad + dy
						if iy < 0 || iy >= f.H {
							continue
						}
						for dx := 0; dx < w.KW; dx++ {
							ix := ox*stride - pad + dx
							if ix < 0 || ix >= f.W {
								continue
							}
							acc += f.At(c, iy, ix) * w.At(k, c, dy, dx)
						}
					}
				}
				out.Set(k, oy, ox, acc)
			}
		}
	}
	return out
}

// FullConv computes the "full" convolution buffer the Ristretto accumulate
// buffer holds: for each output channel, a (H+kh-1)×(W+kw-1) plane where
// position (u,v) accumulates all products with u = (kh-1) - y_w + y_in and
// v = (kw-1) - x_w + x_in (Eq. 1). It is computed densely and directly from
// the definition, independent of the streaming implementation.
func FullConv(f *tensor.FeatureMap, w *tensor.KernelStack) *tensor.OutputMap {
	if f.C != w.C {
		panic("refconv: channel mismatch")
	}
	fh := tensor.FullConvSize(f.H, w.KH)
	fw := tensor.FullConvSize(f.W, w.KW)
	out := tensor.NewOutputMap(w.K, fh, fw)
	for k := 0; k < w.K; k++ {
		for c := 0; c < f.C; c++ {
			for yin := 0; yin < f.H; yin++ {
				for xin := 0; xin < f.W; xin++ {
					a := f.At(c, yin, xin)
					if a == 0 {
						continue
					}
					for yw := 0; yw < w.KH; yw++ {
						for xw := 0; xw < w.KW; xw++ {
							wt := w.At(k, c, yw, xw)
							if wt == 0 {
								continue
							}
							u := w.KH - 1 - yw + yin
							v := w.KW - 1 - xw + xin
							out.Add(k, u, v, a*wt)
						}
					}
				}
			}
		}
	}
	return out
}

// ExtractStrided reads the standard conv output out of a full-convolution
// buffer: output pixel (ox,oy) lives at full-buffer position
// (ox*stride + kw-1 - pad, oy*stride + kh-1 - pad).
func ExtractStrided(full *tensor.OutputMap, inH, inW, kh, kw, stride, pad int) *tensor.OutputMap {
	oh := tensor.ConvOutSize(inH, kh, stride, pad)
	ow := tensor.ConvOutSize(inW, kw, stride, pad)
	out := tensor.NewOutputMap(full.K, oh, ow)
	for k := 0; k < full.K; k++ {
		for oy := 0; oy < oh; oy++ {
			u := oy*stride + kh - 1 - pad
			for ox := 0; ox < ow; ox++ {
				v := ox*stride + kw - 1 - pad
				if u >= 0 && u < full.H && v >= 0 && v < full.W {
					out.Set(k, oy, ox, full.At(k, u, v))
				}
			}
		}
	}
	return out
}

// AddTileFull overlap-adds a tile's full-convolution buffer (computed over
// the tile's local coordinates) into the global full buffer at the tile
// origin. Tiled full convolution is exact because convolution is linear in
// the input: partitioning the input plane and summing per-tile full
// convolutions reproduces the whole-plane full convolution.
func AddTileFull(global, tileFull *tensor.OutputMap, tl tensor.Tile) {
	for k := 0; k < tileFull.K; k++ {
		for y := 0; y < tileFull.H; y++ {
			for x := 0; x < tileFull.W; x++ {
				if v := tileFull.At(k, y, x); v != 0 {
					global.Add(k, tl.Y0+y, tl.X0+x, v)
				}
			}
		}
	}
}
