package refconv

import (
	"testing"

	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func TestConvIdentityKernel(t *testing.T) {
	f := tensor.NewFeatureMap(1, 3, 3, 8)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			f.Set(0, y, x, int32(y*3+x+1))
		}
	}
	w := tensor.NewKernelStack(1, 1, 1, 1, 8)
	w.Set(0, 0, 0, 0, 1)
	out := Conv(f, w, 1, 0)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if out.At(0, y, x) != f.At(0, y, x) {
				t.Fatal("1x1 identity kernel must copy input")
			}
		}
	}
}

func TestConvKnown3x3(t *testing.T) {
	// 2x2 input, 2x2 kernel, no pad, stride 1 → single output:
	// sum of elementwise products.
	f := tensor.NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 0, 1)
	f.Set(0, 0, 1, 2)
	f.Set(0, 1, 0, 3)
	f.Set(0, 1, 1, 4)
	w := tensor.NewKernelStack(1, 1, 2, 2, 8)
	w.Set(0, 0, 0, 0, 10)
	w.Set(0, 0, 0, 1, 20)
	w.Set(0, 0, 1, 0, 30)
	w.Set(0, 0, 1, 1, -40)
	out := Conv(f, w, 1, 0)
	if out.H != 1 || out.W != 1 {
		t.Fatalf("output %dx%d, want 1x1", out.H, out.W)
	}
	if got := out.At(0, 0, 0); got != 1*10+2*20+3*30+4*-40 {
		t.Fatalf("got %d", got)
	}
}

func TestConvPaddingAndStride(t *testing.T) {
	g := workload.NewGen(1)
	f := g.FeatureMapExact(3, 7, 9, 8, 2, 0.6, 0.7)
	w := g.KernelsExact(4, 3, 3, 3, 8, 2, 0.6, 0.7)
	out := Conv(f, w, 2, 1)
	if out.H != 4 || out.W != 5 {
		t.Fatalf("output %dx%d, want 4x5", out.H, out.W)
	}
	// Check one pixel by hand accumulation.
	var acc int32
	oy, ox, k := 1, 2, 3
	for c := 0; c < 3; c++ {
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				iy, ix := oy*2-1+dy, ox*2-1+dx
				if iy >= 0 && iy < 7 && ix >= 0 && ix < 9 {
					acc += f.At(c, iy, ix) * w.At(k, c, dy, dx)
				}
			}
		}
	}
	if out.At(k, oy, ox) != acc {
		t.Fatalf("pixel mismatch: %d vs %d", out.At(k, oy, ox), acc)
	}
}

func TestFullConvExtractMatchesConv(t *testing.T) {
	g := workload.NewGen(2)
	for _, cfg := range []struct{ stride, pad int }{{1, 0}, {1, 1}, {2, 1}, {2, 0}, {1, 2}} {
		f := g.FeatureMapExact(2, 8, 8, 8, 2, 0.5, 0.7)
		w := g.KernelsExact(3, 2, 3, 3, 8, 2, 0.5, 0.7)
		full := FullConv(f, w)
		got := ExtractStrided(full, f.H, f.W, w.KH, w.KW, cfg.stride, cfg.pad)
		want := Conv(f, w, cfg.stride, cfg.pad)
		if !got.Equal(want) {
			t.Fatalf("stride=%d pad=%d: extract(full) != conv (maxdiff %d)", cfg.stride, cfg.pad, got.MaxAbsDiff(want))
		}
	}
}

func TestTiledFullConvOverlapAdd(t *testing.T) {
	g := workload.NewGen(3)
	f := g.FeatureMapExact(3, 13, 11, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(2, 3, 3, 3, 8, 2, 0.5, 0.7)
	whole := FullConv(f, w)
	global := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	for _, tl := range tensor.TileGrid(f.W, f.H, 4, 5) {
		// Build a tile-local feature map and convolve it fully.
		tf := tensor.NewFeatureMap(f.C, tl.H, tl.W, f.Bits)
		for c := 0; c < f.C; c++ {
			for y := 0; y < tl.H; y++ {
				for x := 0; x < tl.W; x++ {
					tf.Set(c, y, x, f.At(c, tl.Y0+y, tl.X0+x))
				}
			}
		}
		AddTileFull(global, FullConv(tf, w), tl)
	}
	if !global.Equal(whole) {
		t.Fatalf("tiled overlap-add differs from whole-plane full conv (maxdiff %d)", global.MaxAbsDiff(whole))
	}
}

func TestConvChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	Conv(tensor.NewFeatureMap(2, 4, 4, 8), tensor.NewKernelStack(1, 3, 3, 3, 8), 1, 1)
}

func TestNonSquareKernel(t *testing.T) {
	g := workload.NewGen(4)
	f := g.FeatureMapExact(2, 9, 9, 4, 2, 0.8, 0.8)
	w := g.KernelsExact(2, 2, 1, 3, 4, 2, 0.8, 0.8)
	full := FullConv(f, w)
	got := ExtractStrided(full, f.H, f.W, w.KH, w.KW, 1, 0)
	want := Conv(f, w, 1, 0)
	if !got.Equal(want) {
		t.Fatal("non-square kernel full-conv mismatch")
	}
}
