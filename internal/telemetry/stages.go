package telemetry

import (
	"fmt"
	"strings"
)

// Stage identifies one of the three pipeline stages of the Ristretto
// compute tile (Section IV-C of the paper): the Atomizer feeds one non-zero
// activation atom per cycle, the Atomputer is the systolic chain of atom
// multipliers, and the Atomulator routes accumulator deliveries through
// FIFOs and the crossbar into the accumulate banks (including their drain
// to the output buffer).
type Stage int

// The three pipeline stages, in dataflow order.
const (
	StageAtomizer Stage = iota
	StageAtomputer
	StageAtomulator

	// NumStages bounds the Stage enum; StageCycles arrays index by Stage.
	NumStages
)

// String returns the lower-case stage name used in counter names and
// manifests.
func (s Stage) String() string {
	switch s {
	case StageAtomizer:
		return "atomizer"
	case StageAtomputer:
		return "atomputer"
	case StageAtomulator:
		return "atomulator"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StageCycles is the per-stage busy/stall/idle cycle breakdown of a
// simulation. Simulators accumulate into a local StageCycles with plain
// increments (so disabled telemetry costs nothing beyond the classification
// the simulator performs anyway) and flush it once at the end via
// Registry.AddStageCycles.
//
// Per cycle and stage, exactly one of the three buckets is incremented:
// busy (the stage did useful work), stall (it had work but back-pressure or
// contention blocked it), idle (nothing to do — e.g. the stream is
// exhausted and the chain is draining).
type StageCycles struct {
	Busy  [NumStages]int64
	Stall [NumStages]int64
	Idle  [NumStages]int64
}

// Merge accumulates another breakdown into sc.
func (sc *StageCycles) Merge(o StageCycles) {
	for s := Stage(0); s < NumStages; s++ {
		sc.Busy[s] += o.Busy[s]
		sc.Stall[s] += o.Stall[s]
		sc.Idle[s] += o.Idle[s]
	}
}

// Total returns busy+stall+idle cycles attributed to stage s.
func (sc StageCycles) Total(s Stage) int64 {
	return sc.Busy[s] + sc.Stall[s] + sc.Idle[s]
}

// stageCounterName builds the registry name for one stage bucket, e.g.
// "ristretto.atomizer.busy_cycles".
func stageCounterName(s Stage, bucket string) string {
	return "ristretto." + s.String() + "." + bucket + "_cycles"
}

// AddStageCycles flushes a per-simulation stage breakdown into the
// registry's stage counters. It is a no-op when the registry is disabled,
// which is the only check instrumented simulators need.
func (r *Registry) AddStageCycles(sc StageCycles) {
	if !r.Enabled() {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		if n := sc.Busy[s]; n != 0 {
			r.Counter(stageCounterName(s, "busy")).Add(n)
		}
		if n := sc.Stall[s]; n != 0 {
			r.Counter(stageCounterName(s, "stall")).Add(n)
		}
		if n := sc.Idle[s]; n != 0 {
			r.Counter(stageCounterName(s, "idle")).Add(n)
		}
	}
}

// StageReport is one row of the stage-utilization table: the aggregated
// busy/stall/idle cycles of a pipeline stage and the derived fractions.
type StageReport struct {
	Stage string  `json:"stage"`
	Busy  int64   `json:"busy_cycles"`
	Stall int64   `json:"stall_cycles"`
	Idle  int64   `json:"idle_cycles"`
	Util  float64 `json:"utilization"` // busy / (busy+stall+idle)
}

// StageReports extracts the three pipeline-stage rows from a snapshot. All
// three stages are always present (zero-valued when nothing ran), so
// manifest consumers can rely on the shape.
func (s Snapshot) StageReports() []StageReport {
	out := make([]StageReport, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		rep := StageReport{
			Stage: st.String(),
			Busy:  s.Counters[stageCounterName(st, "busy")],
			Stall: s.Counters[stageCounterName(st, "stall")],
			Idle:  s.Counters[stageCounterName(st, "idle")],
		}
		if tot := rep.Busy + rep.Stall + rep.Idle; tot > 0 {
			rep.Util = float64(rep.Busy) / float64(tot)
		}
		out = append(out, rep)
	}
	return out
}

// StageTable renders the per-stage utilization breakdown as an aligned text
// table — what the -telemetry flag prints (the measured Figure 15 story).
func (s Snapshot) StageTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %14s %14s %14s %7s %7s\n", "stage", "busy", "stall", "idle", "util%", "stall%")
	for _, rep := range s.StageReports() {
		tot := rep.Busy + rep.Stall + rep.Idle
		stallPct := 0.0
		if tot > 0 {
			stallPct = 100 * float64(rep.Stall) / float64(tot)
		}
		fmt.Fprintf(&b, "%-11s %14d %14d %14d %6.1f%% %6.1f%%\n",
			rep.Stage, rep.Busy, rep.Stall, rep.Idle, 100*rep.Util, stallPct)
	}
	return b.String()
}
