package telemetry_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

func TestCounterAndHistogramBasics(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter handle not stable across lookups")
	}

	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 7 {
		t.Fatalf("histogram count = %d, want 7", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("histogram max = %d, want 100", s.Max)
	}
	// -5 clamps to 0, so sum = 0+1+2+3+4+100+0.
	if s.Sum != 110 {
		t.Fatalf("histogram sum = %d, want 110", s.Sum)
	}
	// Power-of-two buckets: <=0 holds {0, -5}; <=1 holds {1}; <=3 holds
	// {2, 3}; <=7 holds {4}; <=127 holds {100}.
	for bound, want := range map[string]int64{"<=0": 2, "<=1": 1, "<=3": 2, "<=7": 1, "<=127": 1} {
		if s.Buckets[bound] != want {
			t.Errorf("bucket %s = %d, want %d (buckets: %v)", bound, s.Buckets[bound], want, s.Buckets)
		}
	}
}

// TestAggregationUnderParallelRunner drives counter and histogram handles
// from many concurrent worker-pool cells (run under -race in CI) and checks
// the aggregate is exact: the lock-free primitives must not drop updates
// however the pool schedules the cells.
func TestAggregationUnderParallelRunner(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("cells.work")
	h := reg.Histogram("cells.value")

	const n = 1000
	p := runner.New(8)
	_, err := runner.Map(context.Background(), p, n, func(i int) (int, error) {
		c.Add(int64(i))
		h.Observe(int64(i % 16))
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Load(), int64(n*(n-1)/2); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	s := h.Summary()
	if s.Count != n {
		t.Fatalf("histogram count = %d, want %d", s.Count, n)
	}
	var wantSum int64
	for i := 0; i < n; i++ {
		wantSum += int64(i % 16)
	}
	if s.Sum != wantSum {
		t.Fatalf("histogram sum = %d, want %d", s.Sum, wantSum)
	}
}

// TestDefaultRegistryTapsUnderRunner exercises the runner's own telemetry
// taps (queue depth, per-cell wall time) against the Default registry: the
// cell counter must equal the number of cells run, with no lost updates
// across workers.
func TestDefaultRegistryTapsUnderRunner(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Default.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.Default.SetEnabled(false)
		telemetry.Default.Reset()
	})

	const n = 500
	_, err := runner.Map(context.Background(), runner.New(4), n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	snap := telemetry.Default.Snapshot()
	if got := snap.Counters["runner.cells"]; got != n {
		t.Fatalf("runner.cells = %d, want %d", got, n)
	}
	depth := snap.Histograms["runner.queue_depth"]
	if depth.Count != n {
		t.Fatalf("queue_depth observations = %d, want %d", depth.Count, n)
	}
	if depth.Max > 4 {
		t.Fatalf("queue depth %d exceeds the worker bound 4", depth.Max)
	}
	if ns := snap.Histograms["runner.cell_ns"]; ns.Count != n {
		t.Fatalf("cell_ns observations = %d, want %d", ns.Count, n)
	}
}

func TestStageCyclesMergeAndReports(t *testing.T) {
	var a, b telemetry.StageCycles
	a.Busy[telemetry.StageAtomizer] = 10
	a.Stall[telemetry.StageAtomputer] = 5
	b.Busy[telemetry.StageAtomizer] = 2
	b.Idle[telemetry.StageAtomulator] = 7
	a.Merge(b)
	if a.Busy[telemetry.StageAtomizer] != 12 || a.Idle[telemetry.StageAtomulator] != 7 {
		t.Fatalf("merge mismatch: %+v", a)
	}
	if a.Total(telemetry.StageAtomizer) != 12 {
		t.Fatalf("total = %d, want 12", a.Total(telemetry.StageAtomizer))
	}

	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	r.AddStageCycles(a)
	reps := r.Snapshot().StageReports()
	if len(reps) != int(telemetry.NumStages) {
		t.Fatalf("got %d stage reports, want %d", len(reps), telemetry.NumStages)
	}
	if reps[0].Stage != "atomizer" || reps[0].Busy != 12 {
		t.Fatalf("atomizer report = %+v", reps[0])
	}
	if reps[0].Util != 1.0 {
		t.Fatalf("atomizer utilization = %v, want 1.0", reps[0].Util)
	}

	// A disabled registry must ignore the flush entirely.
	off := telemetry.NewRegistry()
	off.AddStageCycles(a)
	if got := off.Snapshot().StageReports()[0].Busy; got != 0 {
		t.Fatalf("disabled registry recorded %d busy cycles", got)
	}
}

func TestStageTableAlwaysListsAllStages(t *testing.T) {
	table := telemetry.NewRegistry().Snapshot().StageTable()
	for _, stage := range []string{"atomizer", "atomputer", "atomulator"} {
		if !strings.Contains(table, stage) {
			t.Errorf("stage table missing %q:\n%s", stage, table)
		}
	}
}

func TestManifestWriteRoundTrip(t *testing.T) {
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	r.Counter("a.b").Add(42)
	var sc telemetry.StageCycles
	sc.Busy[telemetry.StageAtomputer] = 9
	r.AddStageCycles(sc)

	m := telemetry.NewManifest("test-tool")
	m.Seed, m.Scale, m.Workers = 1, 4, 2
	m.AttachSnapshot(r.Snapshot())
	path := filepath.Join(t.TempDir(), "sub", "run_manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != telemetry.ManifestSchema {
		t.Fatalf("schema = %q, want %q", back.Schema, telemetry.ManifestSchema)
	}
	if back.Seed != 1 || back.Scale != 4 || back.Workers != 2 {
		t.Fatalf("config round-trip mismatch: %+v", back)
	}
	if len(back.Stages) != int(telemetry.NumStages) {
		t.Fatalf("manifest has %d stages, want %d", len(back.Stages), telemetry.NumStages)
	}
	if back.Telemetry.Counters["a.b"] != 42 {
		t.Fatalf("counter a.b = %d, want 42", back.Telemetry.Counters["a.b"])
	}
	if back.Stages[int(telemetry.StageAtomputer)].Busy != 9 {
		t.Fatalf("atomputer busy = %d, want 9", back.Stages[int(telemetry.StageAtomputer)].Busy)
	}
}

func TestVersionString(t *testing.T) {
	v := telemetry.VersionString("ristretto-x")
	if !strings.HasPrefix(v, "ristretto-x ") || !strings.Contains(v, "go1") {
		t.Fatalf("unexpected version string %q", v)
	}
}

func TestSnapshotStringSorted(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	out := r.Snapshot().String()
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("snapshot listing not sorted:\n%s", out)
	}
}
