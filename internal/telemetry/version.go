package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// VCSInfo is the build's version-control stamp, read from the Go build
// info. All fields are "unknown"/false when the binary was built without
// VCS stamping (e.g. `go run` or a source tree without .git).
type VCSInfo struct {
	Revision string `json:"revision"`
	Time     string `json:"time"`
	Modified bool   `json:"modified"` // true when the working tree was dirty at build time
}

// ReadVCSInfo extracts the VCS stamp via runtime/debug.ReadBuildInfo.
func ReadVCSInfo() VCSInfo {
	info := VCSInfo{Revision: "unknown", Time: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// VersionString renders the one-line output of a -version flag: tool name,
// module version, git revision (+dirty marker) and toolchain.
func VersionString(tool string) string {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	vcs := ReadVCSInfo()
	rev := vcs.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if vcs.Modified {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s %s (rev %s, %s)", tool, version, rev, runtime.Version())
}
