package telemetry_test

import (
	"testing"

	"ristretto/internal/telemetry"
)

// TestQuantileEmpty pins the degenerate cases: no observations and
// out-of-range q values.
func TestQuantileEmpty(t *testing.T) {
	var h telemetry.Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	s := h.Summary()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("empty summary quantiles = %v/%v/%v, want zeros", s.P50, s.P95, s.P99)
	}
}

// TestQuantileConstant checks a single-valued distribution: every quantile
// estimate must land inside the value's power-of-two bucket and never exceed
// the exact tracked max.
func TestQuantileConstant(t *testing.T) {
	var h telemetry.Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket [512, 1023], clamped to max=1000
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < 512 || got > 1000 {
			t.Fatalf("Quantile(%v) = %v, want within [512, 1000]", q, got)
		}
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %v, want exact max 1000", got)
	}
}

// TestQuantileZeros: bucket 0 holds exact zeros, so quantiles covered by it
// are exact.
func TestQuantileZeros(t *testing.T) {
	var h telemetry.Histogram
	for i := 0; i < 99; i++ {
		h.Observe(0)
	}
	h.Observe(1 << 20)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("p50 of 99%% zeros = %v, want 0", got)
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("p99 of 99%% zeros = %v, want 0 (rank 99 of 100)", got)
	}
	if got := h.Quantile(1); got != float64(1<<20) {
		t.Fatalf("p100 = %v, want %v", got, float64(1<<20))
	}
}

// TestQuantileBimodal uses a known two-spike distribution where the quantile
// ranks fall in unambiguous buckets: 90 ones and 10 thousands.
func TestQuantileBimodal(t *testing.T) {
	var h telemetry.Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want exactly 1 (bucket [1,1])", got)
	}
	p95 := h.Quantile(0.95)
	if p95 < 512 || p95 > 1000 {
		t.Fatalf("p95 = %v, want in the 1000-spike bucket [512, 1000]", p95)
	}
	p99 := h.Quantile(0.99)
	if p99 < p95 || p99 > 1000 {
		t.Fatalf("p99 = %v, want monotone above p95=%v and <= 1000", p99, p95)
	}
}

// TestQuantileUniform checks bucket-resolution accuracy on a uniform 1..4096
// distribution: each estimate must be within a factor of two of the true
// quantile (the histogram's stated resolution) and monotone in q.
func TestQuantileUniform(t *testing.T) {
	var h telemetry.Histogram
	for v := int64(1); v <= 4096; v++ {
		h.Observe(v)
	}
	want := map[float64]float64{0.5: 2048, 0.95: 3891, 0.99: 4055}
	prev := 0.0
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got < want[q]/2 || got > want[q]*2 {
			t.Fatalf("Quantile(%v) = %v, want within 2x of %v", q, got, want[q])
		}
		if got < prev {
			t.Fatalf("quantiles not monotone: Quantile(%v) = %v < %v", q, got, prev)
		}
		prev = got
	}
}

// TestSummaryQuantilesMatch ensures Summary reports the same estimates as
// the Quantile method for a quiescent histogram.
func TestSummaryQuantilesMatch(t *testing.T) {
	var h telemetry.Histogram
	for v := int64(0); v < 1000; v += 7 {
		h.Observe(v * v)
	}
	s := h.Summary()
	for _, c := range []struct {
		q    float64
		want float64
	}{{0.5, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Summary/Quantile disagree at q=%v: %v vs %v", c.q, c.want, got)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > float64(s.Max) {
		t.Fatalf("summary quantiles not ordered: p50=%v p95=%v p99=%v max=%d", s.P50, s.P95, s.P99, s.Max)
	}
}
