package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ristretto/internal/safeio"
)

// ManifestSchema identifies the run-manifest JSON layout. Bump the suffix
// when the shape changes incompatibly; consumers should check it before
// parsing.
const ManifestSchema = "ristretto.run-manifest/v1"

// ExperimentTiming records how long one experiment job of a sweep took and
// what it produced. Jobs that regenerate several results (the taxonomy
// tables) list every ID they covered.
type ExperimentTiming struct {
	IDs    []string `json:"ids"`
	Rows   int      `json:"rows"`
	Millis float64  `json:"ms"`
}

// CellFailure is one failed sweep cell as recorded in a run manifest: the
// stable cell key, the error, and the replay coordinates (seed, attempts)
// plus how it failed — enough to rerun the cell alone.
type CellFailure struct {
	Cell     string `json:"cell"`
	Error    string `json:"error"`
	Seed     int64  `json:"seed,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Panic    bool   `json:"panic,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`
}

// Manifest is the structured record of one experiment run, written as JSON
// alongside the CSVs in results/. Everything a table in EXPERIMENTS.md
// depends on is captured: the exact seed/scale/worker configuration, the
// build (git revision via runtime/debug.ReadBuildInfo), per-figure wall
// times, the per-stage pipeline breakdown, and the raw counter/histogram
// snapshot. The schema is documented in EXPERIMENTS.md.
type Manifest struct {
	Schema    string   `json:"schema"`
	Tool      string   `json:"tool"`
	CreatedAt string   `json:"created_at"` // RFC 3339, UTC
	GoVersion string   `json:"go_version"`
	VCS       VCSInfo  `json:"vcs"`
	Args      []string `json:"args,omitempty"` // raw command line after the binary name

	Seed    int64    `json:"seed"`
	Scale   int      `json:"scale"`
	Workers int      `json:"workers"` // resolved worker count (never 0)
	CPUs    int      `json:"cpus"`
	Nets    []string `json:"nets,omitempty"` // restricted benchmark subset, if any

	WallMillis float64            `json:"wall_ms"` // whole-run wall clock
	WorkMillis float64            `json:"work_ms"` // summed per-experiment time
	Timings    []ExperimentTiming `json:"experiments,omitempty"`

	// Fault-tolerance outcome of the run: whether it was interrupted before
	// completing (the manifest is then partial), how many cells were
	// replayed from the checkpoint journal, the journal path, and every
	// per-cell failure record.
	Interrupted  bool          `json:"interrupted,omitempty"`
	ResumedCells int           `json:"resumed_cells,omitempty"`
	Checkpoint   string        `json:"checkpoint,omitempty"`
	Failures     []CellFailure `json:"failures,omitempty"`

	Stages    []StageReport `json:"stages"` // always all three pipeline stages
	Telemetry Snapshot      `json:"telemetry"`
}

// NewManifest returns a manifest stamped with the environment: schema, tool
// name, creation time, Go version, CPU count, VCS info and the command
// line.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		Tool:      tool,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		VCS:       ReadVCSInfo(),
		Args:      os.Args[1:],
		CPUs:      runtime.NumCPU(),
	}
}

// AttachSnapshot stores the registry snapshot and derives the per-stage
// reports from it.
func (m *Manifest) AttachSnapshot(s Snapshot) {
	m.Telemetry = s
	m.Stages = s.StageReports()
}

// Write serializes the manifest as indented JSON to path, creating parent
// directories as needed. The write is crash-safe (temp file + fsync +
// rename): a kill mid-write never leaves a truncated manifest behind.
func (m *Manifest) Write(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, append(b, '\n'), 0o644)
}
