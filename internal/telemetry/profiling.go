package telemetry

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler bundles the profiling options every long-running cmd binary
// exposes: CPU/heap profiles, a runtime execution trace, and an opt-in
// net/http/pprof endpoint for live inspection under load.
type Profiler struct {
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write a heap profile to this file on Stop
	TracePath  string // write a runtime/trace to this file
	PprofAddr  string // serve net/http/pprof on this address (e.g. "localhost:6060")

	cpuFile   *os.File
	traceFile *os.File
}

// RegisterFlags installs the standard -cpuprofile/-memprofile/-trace/-pprof
// flags on fs.
func (p *Profiler) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.TracePath, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Start begins whichever profiles were requested. It returns an error if a
// profile file cannot be created or a profile cannot start; the pprof HTTP
// endpoint runs on a background goroutine and reports its (unlikely) serve
// error to stderr rather than aborting the run.
func (p *Profiler) Start() error {
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return fmt.Errorf("telemetry: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: start CPU profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("telemetry: -trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("telemetry: start trace: %w", err)
		}
		p.traceFile = f
	}
	if p.PprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(p.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: pprof endpoint: %v\n", err)
			}
		}()
	}
	return nil
}

func (p *Profiler) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// Stop finalizes every profile Start began: it stops the CPU profile and
// trace, and writes the heap profile if one was requested. It returns the
// first error encountered but always attempts every stop.
func (p *Profiler) Stop() error {
	var first error
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		p.traceFile = nil
	}
	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("telemetry: -memprofile: %w", err)
			}
		} else {
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("telemetry: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
