// Package telemetry is the observability spine of the repository: a
// zero-allocation counter/histogram registry that the cycle simulators
// (internal/ristretto), the analytic models, the baselines and the
// experiment harness (internal/experiments, internal/runner) report into,
// plus the run-manifest writer and the pprof/trace profiling helpers the
// cmd/ binaries share.
//
// Telemetry is off by default and bit-invisible: instrumented code either
// accumulates into plain local structs that are flushed once per simulation
// (see StageCycles), or guards its taps on Registry.Enabled. Enabling
// telemetry never changes a simulated number — the golden and determinism
// tests in internal/experiments run with it enabled to enforce that.
//
// The hot-path primitives allocate nothing after registration: a Counter is
// a single atomic add, a Histogram is an atomic add into a fixed
// power-of-two bucket array. Handles returned by Counter/Histogram are
// stable and safe to cache and share across goroutines, which is how the
// parallel experiment runner aggregates without locks.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; Add/Inc are lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous metric: a level (queue depth,
// cache entries, tracked tenants) rather than a flow. The zero value is
// ready to use; Set/Add/Load are lock-free and safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge's level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). Bucket 0 holds zero (and clamped negative) observations.
const histBuckets = 64

// Histogram records a distribution of non-negative int64 observations in
// fixed power-of-two buckets. The zero value is ready to use; Observe is
// lock-free, allocation-free and safe for concurrent use. Negative
// observations are clamped to zero.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns how many observations the histogram has recorded — the
// cheap cardinality check callers use to decide whether quantile
// estimates are meaningful yet (the fleet's adaptive hedge delay gates on
// a minimum sample count before trusting P95).
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSummary is a point-in-time rollup of a Histogram, as serialized
// into run manifests and the serving daemon's /metrics endpoint. P50/P95/P99
// are bucket-interpolated estimates (see Quantile), exact only up to the
// power-of-two bucket resolution.
type HistogramSummary struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "≤2^i" → count, empty buckets omitted
}

// Summary rolls the histogram up. Mean is exact (sum/count); the bucket map
// keys are upper bounds ("<=1", "<=2", "<=4", ...); quantiles are estimated
// from the same bucket snapshot the map reports.
func (h *Histogram) Summary() HistogramSummary {
	var counts [histBuckets + 1]int64
	s := HistogramSummary{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			if s.Buckets == nil {
				s.Buckets = map[string]int64{}
			}
			s.Buckets[bucketLabel(i)] = counts[i]
		}
	}
	s.P50 = quantileFromBuckets(&counts, total, s.Max, 0.50)
	s.P95 = quantileFromBuckets(&counts, total, s.Max, 0.95)
	s.P99 = quantileFromBuckets(&counts, total, s.Max, 0.99)
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values by
// linear interpolation inside the covering power-of-two bucket, clamped to
// the recorded maximum. The estimate is exact to within one bucket (a factor
// of two); an empty histogram reports 0. Concurrent Observe calls may skew a
// racing estimate by the in-flight observations, never corrupt it.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileFromBuckets(&counts, total, h.max.Load(), q)
}

// quantileFromBuckets resolves the q-quantile from a bucket snapshot: find
// the bucket holding the ceil(q·total)-th smallest observation and
// interpolate linearly across its value range [2^(i-1), 2^i - 1] (bucket 0
// is exactly zero). The top estimate is clamped to max, which is tracked
// exactly.
func quantileFromBuckets(counts *[histBuckets + 1]int64, total, max int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		n := counts[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := float64(int64(1) << (i - 1))
		hi := float64((int64(1) << i) - 1)
		if i >= 63 {
			hi = float64(math.MaxInt64)
		}
		if m := float64(max); m > 0 && m < hi {
			hi = m // the true bucket ceiling cannot exceed the exact max
		}
		frac := float64(rank-(cum-n)) / float64(n)
		v := lo + frac*(hi-lo)
		if m := float64(max); m > 0 && v > m {
			v = m
		}
		return v
	}
	return float64(max)
}

// bucketLabel names bucket i: the inclusive upper bound of its range.
func bucketLabel(i int) string {
	if i == 0 {
		return "<=0"
	}
	if i >= 63 {
		return fmt.Sprintf("<=%d", uint64(math.MaxInt64))
	}
	return fmt.Sprintf("<=%d", uint64(1)<<i-1)
}

// Registry holds named counters and histograms. Registration (first lookup
// of a name) takes a lock; subsequent lookups are lock-free loads, and the
// returned handles bypass the registry entirely. A disabled registry still
// hands out working handles — Enabled is a convention for callers to gate
// optional taps on, not a hard switch inside the primitives.
type Registry struct {
	enabled    atomic.Bool
	counters   sync.Map // string → *Counter
	histograms sync.Map // string → *Histogram
	gauges     sync.Map // string → *Gauge
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry the instrumented packages report
// into. It starts disabled; cmd binaries enable it behind their -telemetry
// flag.
var Default = NewRegistry()

// Enabled reports whether instrumented code should record optional taps.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetEnabled switches optional taps on or off.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Counter returns the counter registered under name, creating it on first
// use. The returned handle is stable for the registry's lifetime.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Histogram returns the histogram registered under name, creating it on
// first use. The returned handle is stable for the registry's lifetime.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.histograms.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Gauge returns the gauge registered under name, creating it on first use.
// The returned handle is stable for the registry's lifetime.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Snapshot is a point-in-time copy of every metric in a registry, with
// deterministically ordered names (see Names).
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.counters.Range(func(k, v any) bool {
		if s.Counters == nil {
			s.Counters = map[string]int64{}
		}
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.histograms.Range(func(k, v any) bool {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSummary{}
		}
		s.Histograms[k.(string)] = v.(*Histogram).Summary()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	return s
}

// Reset zeroes and deregisters every metric. Handles obtained before Reset
// keep working but are no longer reachable from the registry — intended for
// tests, not for hot paths.
func (r *Registry) Reset() {
	r.counters.Range(func(k, _ any) bool { r.counters.Delete(k); return true })
	r.histograms.Range(func(k, _ any) bool { r.histograms.Delete(k); return true })
	r.gauges.Range(func(k, _ any) bool { r.gauges.Delete(k); return true })
}

// CounterNames returns the registered counter names in sorted order.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot as an aligned name/value listing, counters
// first, histograms (count/mean/max) after.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%-44s %d\n", n, s.Counters[n])
	}
	hn := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hn = append(hn, n)
	}
	sort.Strings(hn)
	for _, n := range hn {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-44s count=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d\n",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
