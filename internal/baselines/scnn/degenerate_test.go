package scnn

import (
	"testing"

	"ristretto/internal/refconv"
	"ristretto/internal/workload"
)

// TestSimulateLayerDegenerateShapes pins the boundary shapes the random
// conformance sweep only hits probabilistically: all-zero operands, 1×1
// kernels, a single input channel and the maximum bit-width all must stay
// bit-exact against the dense reference.
func TestSimulateLayerDegenerateShapes(t *testing.T) {
	cases := []struct {
		name               string
		c, h, w, k, kh, kw int
		aBits, wBits       int
		aDens, wDens       float64
		stride, pad        int
	}{
		{"zero-density-acts", 3, 6, 6, 4, 3, 3, 4, 4, 0, 0.5, 1, 1},
		{"zero-density-weights", 3, 6, 6, 4, 3, 3, 4, 4, 0.5, 0, 1, 1},
		{"pointwise-kernel", 3, 5, 5, 4, 1, 1, 4, 4, 0.5, 0.5, 1, 0},
		{"single-channel", 1, 6, 6, 2, 3, 3, 4, 4, 0.6, 0.6, 1, 1},
		{"max-bit-width", 2, 5, 5, 3, 3, 3, 8, 8, 0.7, 0.7, 2, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := workload.NewGen(workload.DeriveSeed(7, "scnn/degenerate", tc.name))
			f := g.FeatureMapExact(tc.c, tc.h, tc.w, tc.aBits, 2, tc.aDens, 0.8)
			w := g.KernelsExact(tc.k, tc.c, tc.kh, tc.kw, tc.wBits, 2, tc.wDens, 0.8)
			res := SimulateLayer(f, w, tc.stride, tc.pad, DefaultConfig())
			want := refconv.Conv(f, w, tc.stride, tc.pad)
			if !want.Equal(res.Output) {
				t.Fatalf("output diverges from refconv (max |Δ| = %d)", want.MaxAbsDiff(res.Output))
			}
			// SCNN's outer products touch exactly the non-zero value pairs of
			// each input channel.
			var wantProducts int64
			for c := 0; c < f.C; c++ {
				nzA := int64(nonZero(f.Channel(c)))
				var nzW int64
				for k := 0; k < w.K; k++ {
					for y := 0; y < w.KH; y++ {
						for x := 0; x < w.KW; x++ {
							if w.At(k, c, y, x) != 0 {
								nzW++
							}
						}
					}
				}
				wantProducts += nzA * nzW
			}
			if res.Products != wantProducts {
				t.Errorf("Products = %d, non-zero pairs imply %d", res.Products, wantProducts)
			}
		})
	}
}

func nonZero(data []int32) int {
	n := 0
	for _, v := range data {
		if v != 0 {
			n++
		}
	}
	return n
}
