package scnn

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func TestOuterProductCycles(t *testing.T) {
	cfg := DefaultConfig()
	// 8 weights × 8 activations on a 4×4 array: 2×2 rounds.
	if got := OuterProductCycles(8, 8, cfg, 1.0); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
	if OuterProductCycles(0, 8, cfg, 1.0) != 0 || OuterProductCycles(8, 0, cfg, 1.0) != 0 {
		t.Fatal("empty operands must be free")
	}
	// Ceiling behaviour.
	if got := OuterProductCycles(5, 5, cfg, 1.0); got != 4 {
		t.Fatalf("ceil: got %d, want 4", got)
	}
}

func TestContentionFactor(t *testing.T) {
	f := ContentionFactor(DefaultConfig())
	if f < 1.0 || f > 3.0 {
		t.Fatalf("contention factor %v implausible", f)
	}
	// A single multiplier never contends.
	if ContentionFactor(Config{F: 1, I: 1, Banks: 32}) != 1 {
		t.Fatal("1 product must not contend")
	}
	// Fewer banks → more contention.
	few := ContentionFactor(Config{F: 4, I: 4, Banks: 4})
	many := ContentionFactor(Config{F: 4, I: 4, Banks: 64})
	if few <= many {
		t.Fatalf("contention should grow with fewer banks: %v vs %v", few, many)
	}
}

func layerStats(t *testing.T, seed int64, bits int, wd, ad float64) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(seed)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, bits, bits, 2, workload.Targets{WDensity: wd, ADensity: ad}, true)
}

func TestDualSidedSparsityHelpsMultiplicatively(t *testing.T) {
	// Outer product work scales with nzW × nzA: halving both sides should
	// shrink cycles by ~4× (modulo array-width ceilings). Use a large plane
	// so per-PE activation counts stay well above the array width.
	big := model.Layer{Name: "t", C: 16, H: 56, W: 56, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	mk := func(wd, ad float64) workload.LayerStats {
		g := workload.NewGen(1)
		return g.LayerStats(big, 8, 8, 2, workload.Targets{WDensity: wd, ADensity: ad}, true)
	}
	// Activation targets stay below the natural post-ReLU 8-bit density
	// (~0.5) so both settings are actually achieved.
	dense := EstimateLayer(mk(0.8, 0.45), DefaultConfig())
	sparse := EstimateLayer(mk(0.4, 0.225), DefaultConfig())
	gain := float64(dense.Cycles) / float64(sparse.Cycles)
	if gain < 2.5 {
		t.Fatalf("dual-sided gain %v too small (dense %d, sparse %d)", gain, dense.Cycles, sparse.Cycles)
	}
}

func TestPrecisionInsensitive(t *testing.T) {
	// 16-bit value-level multipliers: no benefit from narrow operands.
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	exact := func(bits int) workload.LayerStats {
		g := workload.NewGen(2)
		f := g.FeatureMapExact(l.C, l.H, l.W, bits, 2, 0.5, 0.8)
		w := g.KernelsExact(l.K, l.C, l.KH, l.KW, bits, 2, 0.5, 0.8)
		return workload.StatsFromTensors(l, f, w, 2, true)
	}
	c8 := EstimateLayer(exact(8), DefaultConfig())
	c2 := EstimateLayer(exact(2), DefaultConfig())
	ratio := float64(c8.Cycles) / float64(c2.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("SCNN should be precision-insensitive: %d vs %d", c8.Cycles, c2.Cycles)
	}
}

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(3)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 8), 2, true)
	cycles, cnt := EstimateNetwork(stats, DefaultConfig())
	if cycles <= 0 || cnt.MAC8 <= 0 || cnt.AccBufBytes <= 0 {
		t.Fatalf("bad estimate: %d %+v", cycles, cnt)
	}
}
