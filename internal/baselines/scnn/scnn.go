// Package scnn models SCNN (Parashar et al., ISCA 2017), the outer-product
// dual-sided sparse accelerator of the paper's Table I — and the closest
// dataflow relative of Ristretto itself: SCNN's PT-IS-CP dataflow multiplies
// a vector of F non-zero weights by a vector of I non-zero activations per
// cycle (an F×I outer product) and scatters the products through a crossbar
// into accumulator banks, exactly the pattern Ristretto refines to the atom
// level. Like Ristretto, SCNN computes full (stride-1) convolutions and
// handles stride in the accumulator (the Ristretto paper cites SCNN for this
// choice, Section IV-C3).
//
// SCNN is not in the paper's quantitative evaluation; it is included for the
// extension study comparing the value-level outer product against the
// atom-level one.
package scnn

import (
	"math"

	"ristretto/internal/energy"
	"ristretto/internal/workload"
)

// Config parameterizes an SCNN accelerator.
type Config struct {
	PEs   int // spatial PEs, each owning an input-feature-map tile (SCNN: 64)
	F, I  int // weight-vector and activation-vector width per cycle (4×4)
	Banks int // accumulator banks per PE (32)
}

// DefaultConfig is SCNN's published 64-PE, 4×4-multiplier, 32-bank setup.
func DefaultConfig() Config { return Config{PEs: 64, F: 4, I: 4, Banks: 32} }

// OuterProductCycles is the detailed per-(channel, tile) model: nzW non-zero
// weights against nzA non-zero activations take ⌈nzW/F⌉·⌈nzA/I⌉ cycles of
// F×I outer products, inflated by crossbar contention when several of the
// F·I products target the same accumulator bank in one cycle.
func OuterProductCycles(nzW, nzA int, cfg Config, contention float64) int64 {
	if nzW == 0 || nzA == 0 {
		return 0
	}
	rounds := int64((nzW+cfg.F-1)/cfg.F) * int64((nzA+cfg.I-1)/cfg.I)
	return int64(float64(rounds) * contention)
}

// ContentionFactor estimates the average crossbar slowdown: with F·I
// products hashing into Banks accumulator banks per cycle, throughput is
// bounded by the expected maximum bank occupancy (balls-into-bins). For
// SCNN's 16 products into 32 banks this lands near 1.2–1.3×, matching the
// published sensitivity.
func ContentionFactor(cfg Config) float64 {
	products := cfg.F * cfg.I
	if products <= 1 || cfg.Banks <= 1 {
		return 1
	}
	// Each bank retires one product per cycle; the pre-crossbar FIFOs
	// smooth per-round bursts, so sustained throughput is bounded by the
	// bank bandwidth (m/n when m > n) plus a small burst penalty that
	// grows with bank pressure.
	m := float64(products)
	n := float64(cfg.Banks)
	sustained := m / n
	if sustained < 1 {
		sustained = 1
	}
	return sustained + 0.15*math.Sqrt(m/n)
}

// LayerPerf is the analytic layer estimate.
type LayerPerf struct {
	Cycles   int64
	Counters energy.Counters
}

// EstimateLayer estimates a layer: input feature-map tiles are spread over
// PEs (each PE owns one tile across all input channels); per channel a PE
// runs the outer product between the channel's non-zero weights (all K
// filters) and its tile's non-zero activations. The layer latency is the
// slowest PE; SCNN's halos make tiles independent just like Ristretto's
// overlap-add.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	cont := ContentionFactor(cfg)
	// Per-channel work, split over PEs by activations (spatial tiling).
	var maxPE int64
	for c := 0; c < l.C; c++ {
		nzW := st.WNZPerChan[c]
		nzA := st.ActNZPerChan[c]
		perPE := (nzA + cfg.PEs - 1) / cfg.PEs
		maxPE += OuterProductCycles(nzW, perPE, cfg, cont)
	}
	p := LayerPerf{Cycles: maxPE}

	// Energy: every non-zero product is computed once (16-bit multipliers
	// in the published design → 4× the 8-bit MAC energy unit).
	var products int64
	for c := 0; c < l.C; c++ {
		products += int64(st.WNZPerChan[c]) * int64(st.ActNZPerChan[c])
	}
	p.Counters.MAC8 = products * 4
	actNZ := int64(0)
	for _, n := range st.ActNZPerChan {
		actNZ += int64(n)
	}
	var wnz int64
	for _, n := range st.WNZPerChan {
		wnz += int64(n)
	}
	aBytes := actNZ * int64(st.ABits+8) / 8
	wBytes := wnz * int64(st.WBits+8) / 8
	p.Counters.InputBufBytes = aBytes
	p.Counters.WeightBufBytes = wBytes * int64(cfg.PEs) // weights broadcast to every PE
	outVals := int64(l.K) * int64(l.OutH()) * int64(l.OutW())
	p.Counters.AccBufBytes = products * 4
	p.Counters.OutputBufBytes = outVals * 4
	passes := energy.WeightPassAmplification(wBytes, 0)
	p.Counters.DRAMBytes = aBytes*passes + wBytes + int64(float64(outVals)*st.A.ValueDensity)*int64(st.ABits+8)/8
	return p
}

// EstimateNetwork sums layer estimates.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayer(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
