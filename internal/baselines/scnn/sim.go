package scnn

import (
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
)

// SimResult is the outcome of the detailed (tensor-level) SCNN layer
// simulation.
type SimResult struct {
	Output   *tensor.OutputMap
	Cycles   int64
	Products int64 // non-zero value-level multiplications
}

// SimulateLayer runs a whole (small) layer through the PT-IS-CP dataflow:
// per input channel, the non-zero weight vector (across all filters) outer-
// products against the non-zero activation vector, and every product
// scatters into the full-convolution accumulator at the Eq. (1) coordinate
// — the value-level ancestor of Ristretto's atom-level intersection. Stride
// is handled in the accumulator (ExtractStrided), exactly as SCNN and
// Ristretto both do. The numeric output is bit-exact against refconv.Conv,
// and the cycle count follows OuterProductCycles with the crossbar
// contention model.
func SimulateLayer(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	if cfg.F < 1 {
		cfg.F = 1
	}
	if cfg.I < 1 {
		cfg.I = 1
	}
	type wEntry struct {
		val  int32
		x, y int
		k    int
	}
	type aEntry struct {
		val  int32
		x, y int
	}
	var res SimResult
	full := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	cont := ContentionFactor(cfg)
	for c := 0; c < f.C; c++ {
		var wts []wEntry
		for k := 0; k < w.K; k++ {
			for y := 0; y < w.KH; y++ {
				for x := 0; x < w.KW; x++ {
					if v := w.At(k, c, y, x); v != 0 {
						wts = append(wts, wEntry{val: v, x: x, y: y, k: k})
					}
				}
			}
		}
		var acts []aEntry
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				if v := f.At(c, y, x); v != 0 {
					acts = append(acts, aEntry{val: v, x: x, y: y})
				}
			}
		}
		res.Cycles += OuterProductCycles(len(wts), len(acts), cfg, cont)
		for _, we := range wts {
			for _, ae := range acts {
				res.Products++
				u := w.KH - 1 - we.y + ae.y
				v := w.KW - 1 - we.x + ae.x
				full.Add(we.k, u, v, ae.val*we.val)
			}
		}
	}
	res.Output = refconv.ExtractStrided(full, f.H, f.W, w.KH, w.KW, stride, pad)
	return res
}
