package sparten

import (
	"sort"

	"ristretto/internal/tensor"
)

// SimResult is the outcome of the detailed (tensor-level) SparTen layer
// simulation.
type SimResult struct {
	Output   *tensor.OutputMap
	Cycles   int64 // slowest CU
	CUCycles []int64
	Pairs    int64 // matched non-zero pairs (MAC operations)
}

// SimulateLayer runs a whole (small) layer through the detailed CU model:
// filters are assigned to CUs greedily by non-zero weight count; each CU
// computes its filters' inner products pixel by pixel with the bitmap
// inner-join (or the SparTen-mp fusion-unit variant), and the layer latency
// is the slowest CU. The numeric output is bit-exact against refconv.Conv,
// and the cycle count cross-validates EstimateLayer.
func SimulateLayer(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	oh := tensor.ConvOutSize(f.H, w.KH, stride, pad)
	ow := tensor.ConvOutSize(f.W, w.KW, stride, pad)
	res := SimResult{
		Output:   tensor.NewOutputMap(w.K, oh, ow),
		CUCycles: make([]int64, cfg.CUs),
	}

	// Greedy filter→CU assignment by weight count (w balancing).
	nz := make([]int, w.K)
	for k := 0; k < w.K; k++ {
		for _, v := range w.Kernel(k) {
			if v != 0 {
				nz[k]++
			}
		}
	}
	order := make([]int, w.K)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return nz[order[i]] > nz[order[j]] })
	assign := make([]int, w.K)
	load := make([]int64, cfg.CUs)
	for _, k := range order {
		best := 0
		for i := 1; i < cfg.CUs; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		assign[k] = best
		load[best] += int64(nz[k])
	}

	vecLen := f.C * w.KH * w.KW
	aVec := make([]int32, vecLen)
	wVec := make([]int32, vecLen)
	for k := 0; k < w.K; k++ {
		// The filter vector is fixed per output channel.
		i := 0
		for c := 0; c < w.C; c++ {
			for dy := 0; dy < w.KH; dy++ {
				for dx := 0; dx < w.KW; dx++ {
					wVec[i] = w.At(k, c, dy, dx)
					i++
				}
			}
		}
		cu := assign[k]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				i = 0
				for c := 0; c < f.C; c++ {
					for dy := 0; dy < w.KH; dy++ {
						iy := oy*stride - pad + dy
						for dx := 0; dx < w.KW; dx++ {
							ix := ox*stride - pad + dx
							if iy >= 0 && iy < f.H && ix >= 0 && ix < f.W {
								aVec[i] = f.At(c, iy, ix)
							} else {
								aVec[i] = 0
							}
							i++
						}
					}
				}
				var dot int32
				var cycles int64
				if cfg.MP {
					dot, cycles = InnerProductMP(aVec, wVec, w.Bits, f.Bits)
				} else {
					dot, cycles = InnerProduct(aVec, wVec)
				}
				res.Output.Set(k, oy, ox, dot)
				res.CUCycles[cu] += cycles
				for i := range aVec {
					if aVec[i] != 0 && wVec[i] != 0 {
						res.Pairs++
					}
				}
			}
		}
	}
	for _, c := range res.CUCycles {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	return res
}
