package sparten

import (
	"testing"

	"ristretto/internal/refconv"
	"ristretto/internal/workload"
)

// TestSimulateLayerDegenerateShapes pins the boundary shapes the random
// conformance sweep only hits probabilistically: all-zero operands, 1×1
// kernels, a single input channel and the maximum bit-width all must stay
// bit-exact against the dense reference, in both plain and mixed-precision
// configurations.
func TestSimulateLayerDegenerateShapes(t *testing.T) {
	cases := []struct {
		name               string
		c, h, w, k, kh, kw int
		aBits, wBits       int
		aDens, wDens       float64
		stride, pad        int
	}{
		{"zero-density-acts", 3, 6, 6, 4, 3, 3, 4, 4, 0, 0.5, 1, 1},
		{"zero-density-weights", 3, 6, 6, 4, 3, 3, 4, 4, 0.5, 0, 1, 1},
		{"pointwise-kernel", 3, 5, 5, 4, 1, 1, 4, 4, 0.5, 0.5, 1, 0},
		{"single-channel", 1, 6, 6, 2, 3, 3, 4, 4, 0.6, 0.6, 1, 1},
		{"max-bit-width", 2, 5, 5, 3, 3, 3, 8, 8, 0.7, 0.7, 2, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := workload.NewGen(workload.DeriveSeed(7, "sparten/degenerate", tc.name))
			f := g.FeatureMapExact(tc.c, tc.h, tc.w, tc.aBits, 2, tc.aDens, 0.8)
			w := g.KernelsExact(tc.k, tc.c, tc.kh, tc.kw, tc.wBits, 2, tc.wDens, 0.8)
			want := refconv.Conv(f, w, tc.stride, tc.pad)
			for _, mp := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.MP = mp
				res := SimulateLayer(f, w, tc.stride, tc.pad, cfg)
				if !want.Equal(res.Output) {
					t.Fatalf("mp=%v: output diverges from refconv (max |Δ| = %d)", mp, want.MaxAbsDiff(res.Output))
				}
				if (tc.aDens == 0 || tc.wDens == 0) && res.Pairs != 0 {
					t.Errorf("mp=%v: zero-density layer reports %d matched pairs", mp, res.Pairs)
				}
				var maxCU int64
				for _, c := range res.CUCycles {
					if c > maxCU {
						maxCU = c
					}
				}
				if res.Cycles != maxCU {
					t.Errorf("mp=%v: Cycles = %d, slowest CU = %d", mp, res.Cycles, maxCU)
				}
			}
		})
	}
}
