package sparten

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func denseDot(a, w []int32) int32 {
	var d int32
	for i := range a {
		d += a[i] * w[i]
	}
	return d
}

func TestInnerProductCorrectAndCycleModel(t *testing.T) {
	g := workload.NewGen(1)
	a := g.SparseVector(300, 8, 0.4, false)
	w := g.SparseVector(300, 8, 0.5, true)
	dot, cycles := InnerProduct(a, w)
	if dot != denseDot(a, w) {
		t.Fatalf("dot %d != dense %d", dot, denseDot(a, w))
	}
	// Cycles: matched pairs with a floor of one per chunk (3 chunks).
	matched := int64(0)
	for i := range a {
		if a[i] != 0 && w[i] != 0 {
			matched++
		}
	}
	if cycles < 3 || cycles < matched || cycles > matched+3 {
		t.Fatalf("cycles %d implausible for %d matched pairs", cycles, matched)
	}
}

func TestInnerProductEmptyChunks(t *testing.T) {
	a := make([]int32, 256)
	w := make([]int32, 256)
	dot, cycles := InnerProduct(a, w)
	if dot != 0 || cycles != 2 {
		t.Fatalf("all-zero vectors: dot=%d cycles=%d, want 0 and 2", dot, cycles)
	}
}

func TestInnerProductMPCorrectAndFaster(t *testing.T) {
	g := workload.NewGen(2)
	a := g.SparseVector(512, 8, 0.5, false)
	w := g.SparseVector(512, 8, 0.5, true)
	dot, cy2 := InnerProductMP(a, w, 2, 2)
	if dot != denseDot(a, w) {
		t.Fatalf("mp dot wrong")
	}
	_, cyPlain := InnerProduct(a, w)
	if cy2 >= cyPlain {
		t.Fatalf("mp at 2 bits (%d) not faster than plain (%d)", cy2, cyPlain)
	}
	// At 8 bits the fusion unit consumes one pair/cycle: no speedup beyond
	// lane parallelism floor.
	_, cy8 := InnerProductMP(a, w, 8, 8)
	if cy8 > cyPlain {
		t.Fatalf("mp at 8 bits (%d) slower than plain (%d)", cy8, cyPlain)
	}
	if cy2 > cy8 {
		t.Fatalf("mp 2-bit (%d) slower than mp 8-bit (%d)", cy2, cy8)
	}
}

func TestPairsPerCycle(t *testing.T) {
	cases := []struct {
		w, a int
		want int64
	}{
		{8, 8, 1}, {4, 4, 4}, {2, 2, 16}, {2, 8, 4}, {8, 2, 4}, {2, 4, 8},
	}
	for _, c := range cases {
		if got := PairsPerCycle(c.w, c.a); got != c.want {
			t.Errorf("PairsPerCycle(%d,%d) = %d, want %d", c.w, c.a, got, c.want)
		}
	}
}

func layerStats(t *testing.T, seed int64, bits int, wd, ad float64) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(seed)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, bits, bits, 2, workload.Targets{WDensity: wd, ADensity: ad}, true)
}

func TestEstimateLayerSparsityHelps(t *testing.T) {
	dense := EstimateLayer(layerStats(t, 3, 8, 0.9, 0.9), DefaultConfig())
	sparse := EstimateLayer(layerStats(t, 3, 8, 0.3, 0.3), DefaultConfig())
	if sparse.Cycles >= dense.Cycles {
		t.Fatalf("sparse (%d) not faster than dense (%d)", sparse.Cycles, dense.Cycles)
	}
}

func TestEstimateLayerPrecisionInsensitive(t *testing.T) {
	// SparTen extracts one pair per cycle regardless of bit-width: at
	// *identical* value densities (exact-mode operands), 2-bit and 8-bit
	// layers cost the same cycles.
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	exact := func(bits int) workload.LayerStats {
		g := workload.NewGen(4)
		f := g.FeatureMapExact(l.C, l.H, l.W, bits, 2, 0.5, 0.8)
		w := g.KernelsExact(l.K, l.C, l.KH, l.KW, bits, 2, 0.5, 0.8)
		return workload.StatsFromTensors(l, f, w, 2, true)
	}
	c8 := EstimateLayer(exact(8), DefaultConfig())
	c2 := EstimateLayer(exact(2), DefaultConfig())
	ratio := float64(c8.Cycles) / float64(c2.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("SparTen cycles should be precision-insensitive: 8b=%d 2b=%d", c8.Cycles, c2.Cycles)
	}
}

func TestMPFasterAtLowPrecision(t *testing.T) {
	st := layerStats(t, 5, 2, 0.5, 0.5)
	plain := EstimateLayer(st, Config{CUs: 32})
	mp := EstimateLayer(st, Config{CUs: 32, MP: true})
	if mp.Cycles >= plain.Cycles {
		t.Fatalf("SparTen-mp (%d) not faster than SparTen (%d) at 2 bits", mp.Cycles, plain.Cycles)
	}
}

func TestMoreCUsFaster(t *testing.T) {
	st := layerStats(t, 6, 8, 0.5, 0.5)
	small := EstimateLayer(st, Config{CUs: 8})
	big := EstimateLayer(st, Config{CUs: 32})
	if big.Cycles >= small.Cycles {
		t.Fatalf("32 CUs (%d) not faster than 8 CUs (%d)", big.Cycles, small.Cycles)
	}
}

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(7)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 8), 2, true)
	cycles, cnt := EstimateNetwork(stats, DefaultConfig())
	if cycles <= 0 || cnt.MAC8 <= 0 || cnt.InnerJoin <= 0 || cnt.DRAMBytes <= 0 {
		t.Fatalf("bad network estimate: %d cycles, %+v", cycles, cnt)
	}
}
