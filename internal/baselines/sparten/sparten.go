// Package sparten models SparTen (Gondimalla et al., MICRO 2019), the
// state-of-the-art dual-sided sparse CNN accelerator the paper compares
// against (Sections II-B2a, V-D), plus the SparTen-mp strawman that bolts a
// Bit Fusion fusion unit and 16 parallel inner-joins onto each compute unit.
//
// A SparTen compute unit (CU) holds one filter and receives broadcast
// activation vectors in bitmap-compressed form. Per cycle its inner-join
// module ANDs the two bitmasks and extracts ONE matched non-zero
// weight/activation pair (priority encoding + prefix sums), feeding an 8-bit
// scalar MAC. The latency of one inner product is therefore the number of
// matched pairs, floored at one cycle per bitmask chunk. Filters are
// assigned to CUs offline, greedily by weight density (the paper's
// "w balancing").
package sparten

import (
	"math"
	"sort"

	"ristretto/internal/energy"
	"ristretto/internal/sparse"
	"ristretto/internal/workload"
)

// ChunkLen is the logical vector length one inner-join bitmask covers.
const ChunkLen = 128

// Config parameterizes a SparTen accelerator.
type Config struct {
	CUs int  // parallel compute units (paper: 32)
	MP  bool // SparTen-mp: fusion-unit MAC + 16 parallel inner-joins
}

// DefaultConfig matches Section V-D: 32 CUs.
func DefaultConfig() Config { return Config{CUs: 32} }

// InnerProduct runs the detailed CU model on one (activation, weight) vector
// pair: it returns the dot product and the cycles the inner-join serializes
// it to — max(1, matched pairs) per 128-long chunk.
func InnerProduct(a, w []int32) (dot int32, cycles int64) {
	if len(a) != len(w) {
		panic("sparten: vector length mismatch")
	}
	for off := 0; off < len(a); off += ChunkLen {
		end := off + ChunkLen
		if end > len(a) {
			end = len(a)
		}
		av := sparse.EncodeBitmap(a[off:end], 8)
		wv := sparse.EncodeBitmap(w[off:end], 8)
		matched := int64(0)
		for _, p := range sparse.MatchedPairs(av, wv) {
			dot += p[0] * p[1]
			matched++
		}
		if matched < 1 {
			matched = 1 // the bitmask still occupies the inner-join for a cycle
		}
		cycles += matched
	}
	return dot, cycles
}

// InnerProductMP is the SparTen-mp CU model: 16 inner-joins each own a
// 32-bit sub-mask and extract one pair per cycle; the fusion unit consumes
// up to pairsPerCycle matched pairs per cycle (16 at 2-bit, 4 at 4-bit, 1 at
// 8-bit). The cycle count is bounded below by both the busiest lane and the
// fusion unit's consumption bandwidth.
func InnerProductMP(a, w []int32, wbits, abits int) (dot int32, cycles int64) {
	if len(a) != len(w) {
		panic("sparten: vector length mismatch")
	}
	rate := PairsPerCycle(wbits, abits)
	for off := 0; off < len(a); off += 16 * 32 {
		end := off + 16*32
		if end > len(a) {
			end = len(a)
		}
		av := sparse.EncodeBitmap(a[off:end], 8)
		wv := sparse.EncodeBitmap(w[off:end], 8)
		var matched int64
		for _, p := range sparse.MatchedPairs(av, wv) {
			dot += p[0] * p[1]
			matched++
		}
		maxLane := int64(0)
		for _, c := range sparse.LaneMatchCounts(av, wv, 32) {
			if int64(c) > maxLane {
				maxLane = int64(c)
			}
		}
		c := (matched + rate - 1) / rate
		if maxLane > c {
			c = maxLane
		}
		if c < 1 {
			c = 1
		}
		cycles += c
	}
	return dot, cycles
}

// PairsPerCycle returns the fusion unit's pair consumption bandwidth: one
// 8-bit, four 4-bit or sixteen 2-bit multiplications per cycle.
func PairsPerCycle(wbits, abits int) int64 {
	sub := int64(((wbits + 1) / 2) * ((abits + 1) / 2))
	r := 16 / sub
	if r < 1 {
		r = 1
	}
	return r
}

// LayerPerf is the analytic layer estimate.
type LayerPerf struct {
	Cycles   int64
	CUCycles []int64
	Counters energy.Counters
}

// EstimateLayer applies the CU model statistically to a whole layer. Each
// output pixel of each filter costs one inner product over the C·kh·kw
// receptive field; its expected inner-join latency is
// max(#chunks, αv·nnz(filter)) — matched pairs dominated by the filter's
// non-zero count times the activation value density. Filters are distributed
// over CUs greedily by non-zero weight count (SparTen's offline balancing)
// and the layer latency is the slowest CU.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	outPix := int64(l.OutH()) * int64(l.OutW())
	alphaV := st.A.ValueDensity
	vecLen := l.C * l.KH * l.KW
	chunks := int64((vecLen + ChunkLen - 1) / ChunkLen)

	// Per-filter inner-product latency (cycles per output pixel).
	perFilter := make([]int64, l.K)
	var rate int64 = 1
	if cfg.MP {
		rate = PairsPerCycle(st.WBits, st.ABits)
	}
	for k := 0; k < l.K; k++ {
		matched := alphaV * float64(st.WNZPerFilter[k])
		var c int64
		if cfg.MP {
			// 16 lanes: bounded by consumption bandwidth and the busiest
			// lane (mean + dispersion term of a multinomial split).
			mean := matched / 16
			maxLane := mean + 1.2*math.Sqrt(mean*2.77) // ≈ E[max of 16 Poisson] , ln16≈2.77
			c = int64(matched/float64(rate) + 0.5)
			if int64(maxLane+0.5) > c {
				c = int64(maxLane + 0.5)
			}
			mpChunks := int64((vecLen + 16*32 - 1) / (16 * 32))
			if c < mpChunks {
				c = mpChunks
			}
		} else {
			c = int64(matched + 0.5)
			if c < chunks {
				c = chunks
			}
		}
		perFilter[k] = c * outPix
	}

	// Greedy filter→CU assignment by weight count (w balancing): largest
	// filters first onto the least-loaded CU.
	order := make([]int, l.K)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return st.WNZPerFilter[order[i]] > st.WNZPerFilter[order[j]]
	})
	cu := make([]int64, cfg.CUs)
	for _, k := range order {
		best := 0
		for i := 1; i < cfg.CUs; i++ {
			if cu[i] < cu[best] {
				best = i
			}
		}
		cu[best] += perFilter[k]
	}

	p := LayerPerf{CUCycles: cu}
	for _, c := range cu {
		if c > p.Cycles {
			p.Cycles = c
		}
	}

	// Energy events.
	var totalPairs int64
	for k := 0; k < l.K; k++ {
		totalPairs += int64(alphaV*float64(st.WNZPerFilter[k])+0.5) * outPix
	}
	var totalCycles int64
	for _, c := range cu {
		totalCycles += c
	}
	if cfg.MP {
		p.Counters.Fusion2b = totalPairs * (int64((st.WBits+1)/2) * int64((st.ABits+1)/2))
		p.Counters.InnerJoin = totalCycles * 16
	} else {
		p.Counters.MAC8 = totalPairs
		p.Counters.InnerJoin = totalCycles
	}
	// Buffer traffic: each CU re-reads the broadcast activation vector per
	// output pixel (bitmap payload + mask), and its filter once per layer.
	actNZ := int64(float64(vecLen) * alphaV)
	actBytes := actNZ + int64(vecLen)/8 // 8-bit values + bitmask
	p.Counters.InputBufBytes = actBytes * outPix * int64(cfg.CUs)
	var wnz int64
	for _, n := range st.WNZPerFilter {
		wnz += int64(n)
	}
	p.Counters.WeightBufBytes = wnz + int64(l.K*vecLen)/8
	p.Counters.OutputBufBytes = outPix * int64(l.K) * 4
	// DRAM: bitmap-compressed activations, weights, outputs.
	var actPlaneNZ int64
	for _, n := range st.ActNZPerChan {
		actPlaneNZ += int64(n)
	}
	wDRAM := wnz + int64(l.Weights())/8
	passes := energy.WeightPassAmplification(wDRAM, 0)
	p.Counters.DRAMBytes = (actPlaneNZ+int64(l.Activations())/8)*passes +
		wDRAM +
		int64(float64(outPix)*float64(l.K)*st.A.ValueDensity) + outPix*int64(l.K)/8
	return p
}

// EstimateNetwork sums layer estimates.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayer(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
