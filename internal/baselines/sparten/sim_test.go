package sparten

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/refconv"
	"ristretto/internal/workload"
)

func TestSimulateLayerBitExact(t *testing.T) {
	g := workload.NewGen(1)
	f := g.FeatureMapExact(4, 10, 10, 8, 2, 0.5, 0.8)
	w := g.KernelsExact(8, 4, 3, 3, 8, 2, 0.5, 0.8)
	for _, cfg := range []Config{{CUs: 4}, {CUs: 4, MP: true}, {CUs: 1}} {
		sim := SimulateLayer(f, w, 1, 1, cfg)
		want := refconv.Conv(f, w, 1, 1)
		if !sim.Output.Equal(want) {
			t.Fatalf("cfg %+v: SparTen simulation output wrong (maxdiff %d)", cfg, sim.Output.MaxAbsDiff(want))
		}
		if sim.Cycles <= 0 || sim.Pairs <= 0 {
			t.Fatalf("cfg %+v: no work recorded", cfg)
		}
	}
}

func TestSimulateLayerStridePad(t *testing.T) {
	g := workload.NewGen(2)
	f := g.FeatureMapExact(3, 9, 9, 4, 2, 0.6, 0.8)
	w := g.KernelsExact(5, 3, 3, 3, 4, 2, 0.6, 0.8)
	sim := SimulateLayer(f, w, 2, 1, DefaultConfig())
	want := refconv.Conv(f, w, 2, 1)
	if !sim.Output.Equal(want) {
		t.Fatal("strided SparTen simulation wrong")
	}
}

func TestEstimateTracksSimulation(t *testing.T) {
	// The analytic model must track the detailed simulation within ~25% on
	// a layer large enough for the statistical expectations to hold.
	g := workload.NewGen(3)
	l := model.Layer{Name: "t", C: 16, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	f := g.FeatureMap(l.C, l.H, l.W, 8, 0.45)
	w := g.Kernels(l.K, l.C, l.KH, l.KW, 8, 0.5)
	cfg := Config{CUs: 8}
	sim := SimulateLayer(f, w, l.Stride, l.Pad, cfg)
	st := workload.StatsFromTensors(l, f, w, 2, true)
	est := EstimateLayer(st, cfg)
	ratio := float64(sim.Cycles) / float64(est.Cycles)
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("simulation %d vs estimate %d (ratio %.3f) outside tolerance", sim.Cycles, est.Cycles, ratio)
	}
}

func TestSimulatedMPFasterAt2Bit(t *testing.T) {
	g := workload.NewGen(4)
	f := g.FeatureMapExact(8, 10, 10, 2, 2, 0.5, 1.0)
	w := g.KernelsExact(8, 8, 3, 3, 2, 2, 0.5, 1.0)
	plain := SimulateLayer(f, w, 1, 1, Config{CUs: 4})
	mp := SimulateLayer(f, w, 1, 1, Config{CUs: 4, MP: true})
	if mp.Cycles >= plain.Cycles {
		t.Fatalf("SparTen-mp (%d) not faster than SparTen (%d) at 2 bits", mp.Cycles, plain.Cycles)
	}
	if !mp.Output.Equal(plain.Output) {
		t.Fatal("mp and plain disagree numerically")
	}
}
