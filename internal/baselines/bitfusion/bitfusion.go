// Package bitfusion models Bit Fusion (Sharma et al., ISCA 2018), the
// precision-scalable dense baseline (Sections II-B, V-B): an 8×8
// weight-stationary systolic array of fusion units, each spatially composing
// 16 two-bit multipliers into one 8-bit, four 4-bit or sixteen 2-bit
// multiplications per cycle. The dataflow is dense — zero weights and
// activations are computed and moved like any other value.
package bitfusion

import (
	"ristretto/internal/energy"
	"ristretto/internal/workload"
)

// Config parameterizes a Bit Fusion array.
type Config struct {
	Rows, Cols int // systolic array of fusion units (paper comparison: 8×8)
}

// DefaultConfig matches Section V-B: an 8×8 array (1024 two-bit multipliers).
func DefaultConfig() Config { return Config{Rows: 8, Cols: 8} }

// Units returns the fusion-unit count.
func (c Config) Units() int { return c.Rows * c.Cols }

// SubProducts returns how many 2-bit sub-products one (wbits × abits)
// multiplication decomposes into inside a fusion unit.
func SubProducts(wbits, abits int) int64 {
	return int64((wbits+1)/2) * int64((abits+1)/2)
}

// MACsPerCycle returns the whole array's multiplication throughput at the
// given precision.
func MACsPerCycle(cfg Config, wbits, abits int) float64 {
	per := 16.0 / float64(SubProducts(wbits, abits))
	if per < 1 {
		per = 1
	}
	return per * float64(cfg.Units())
}

// LayerPerf is the analytic layer estimate.
type LayerPerf struct {
	Cycles      int64
	Utilization float64
	Counters    energy.Counters
}

// EstimateLayer estimates a dense layer: output channels map to array
// columns and the C·kh·kw reduction streams through rows in a weight-
// stationary schedule. Utilization losses come from partially filled
// column groups (K mod Cols) and the systolic fill/drain of each pass.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	macsPerCycle := MACsPerCycle(cfg, st.WBits, st.ABits)

	// Column tiling over output channels.
	colPasses := (l.K + cfg.Cols - 1) / cfg.Cols
	colUtil := float64(l.K) / float64(colPasses*cfg.Cols)
	ideal := float64(l.MACs()) / macsPerCycle
	cycles := ideal / colUtil
	// Systolic fill/drain: weight tiles along the reduction dimension are
	// double-buffered, so the pixel-stream pipeline only fills once per
	// column pass.
	fills := int64(colPasses) * int64(cfg.Rows+cfg.Cols-2)
	p := LayerPerf{Cycles: int64(cycles) + fills}
	if p.Cycles > 0 {
		p.Utilization = ideal / float64(p.Cycles)
	}

	// Energy: every MAC executes all of its 2-bit sub-products.
	p.Counters.Fusion2b = l.MACs() * SubProducts(st.WBits, st.ABits)
	// Dense buffer traffic: weights loaded once per pass set, activations
	// re-read once per column pass (they feed different output channels).
	aBytes := l.Activations() * int64(st.ABits) / 8
	wBytes := l.Weights() * int64(st.WBits) / 8
	outVals := int64(l.K) * int64(l.OutH()) * int64(l.OutW())
	p.Counters.InputBufBytes = aBytes * int64(colPasses)
	p.Counters.WeightBufBytes = wBytes
	p.Counters.OutputBufBytes = outVals * 4
	passes := energy.WeightPassAmplification(wBytes, 0)
	p.Counters.DRAMBytes = aBytes*passes + wBytes + outVals*int64(st.ABits)/8
	return p
}

// EstimateNetwork sums layer estimates.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayer(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
