package bitfusion

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func TestSubProducts(t *testing.T) {
	cases := []struct {
		w, a int
		want int64
	}{
		{8, 8, 16}, {4, 4, 4}, {2, 2, 1}, {2, 8, 4}, {4, 8, 8},
	}
	for _, c := range cases {
		if got := SubProducts(c.w, c.a); got != c.want {
			t.Errorf("SubProducts(%d,%d) = %d, want %d", c.w, c.a, got, c.want)
		}
	}
}

func TestMACsPerCycle(t *testing.T) {
	cfg := DefaultConfig()
	// 64 fusion units: 64 MACs/cycle at 8 bit, 256 at 4, 1024 at 2.
	if MACsPerCycle(cfg, 8, 8) != 64 {
		t.Fatalf("8-bit throughput %v", MACsPerCycle(cfg, 8, 8))
	}
	if MACsPerCycle(cfg, 4, 4) != 256 {
		t.Fatalf("4-bit throughput %v", MACsPerCycle(cfg, 4, 4))
	}
	if MACsPerCycle(cfg, 2, 2) != 1024 {
		t.Fatalf("2-bit throughput %v", MACsPerCycle(cfg, 2, 2))
	}
}

func layerStats(t *testing.T, seed int64, bits int) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(seed)
	l := model.Layer{Name: "t", C: 64, H: 14, W: 14, K: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, bits, bits, 2, workload.Targets{WDensity: 0.5, ADensity: 0.5}, true)
}

func TestPrecisionScaling(t *testing.T) {
	c8 := EstimateLayer(layerStats(t, 1, 8), DefaultConfig())
	c4 := EstimateLayer(layerStats(t, 1, 4), DefaultConfig())
	c2 := EstimateLayer(layerStats(t, 1, 2), DefaultConfig())
	// Ideal scaling is 4× per halved precision; the precision-independent
	// systolic fill/drain overhead dilutes it somewhat on small layers.
	r84 := float64(c8.Cycles) / float64(c4.Cycles)
	r42 := float64(c4.Cycles) / float64(c2.Cycles)
	if r84 < 3.0 || r84 > 4.5 || r42 < 2.0 || r42 > 4.5 {
		t.Fatalf("precision scaling off: 8b=%d 4b=%d 2b=%d", c8.Cycles, c4.Cycles, c2.Cycles)
	}
}

func TestSparsityInsensitive(t *testing.T) {
	// Dense dataflow: sparsity must not change cycles at all.
	g := workload.NewGen(2)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	dense := g.LayerStats(l, 8, 8, 2, workload.Targets{WDensity: 0.95, ADensity: 0.95}, true)
	sparse := g.LayerStats(l, 8, 8, 2, workload.Targets{WDensity: 0.2, ADensity: 0.2}, true)
	if EstimateLayer(dense, DefaultConfig()).Cycles != EstimateLayer(sparse, DefaultConfig()).Cycles {
		t.Fatal("Bit Fusion cycles changed with sparsity")
	}
}

func TestColumnUtilizationPenalty(t *testing.T) {
	// K=9 on 8 columns wastes nearly half the array versus K=8.
	g := workload.NewGen(3)
	mk := func(k int) workload.LayerStats {
		l := model.Layer{Name: "t", C: 16, H: 14, W: 14, K: k, KH: 3, KW: 3, Stride: 1, Pad: 1}
		return g.LayerStats(l, 8, 8, 2, workload.Targets{WDensity: 0.5, ADensity: 0.5}, true)
	}
	u8 := EstimateLayer(mk(8), DefaultConfig()).Utilization
	u9 := EstimateLayer(mk(9), DefaultConfig()).Utilization
	if u9 >= u8 {
		t.Fatalf("K=9 utilization %v should be below K=8 %v", u9, u8)
	}
}

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(4)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 8), 2, true)
	cycles, cnt := EstimateNetwork(stats, DefaultConfig())
	if cycles <= 0 || cnt.Fusion2b <= 0 {
		t.Fatalf("bad estimate: %d %+v", cycles, cnt)
	}
	// All MACs execute: Fusion2b = Σ MACs × 16 at 8 bits.
	if cnt.Fusion2b != n.MACs()*16 {
		t.Fatalf("Fusion2b %d != MACs×16 %d", cnt.Fusion2b, n.MACs()*16)
	}
}
