package bitfusion

import (
	"math"

	"ristretto/internal/atom"
	"ristretto/internal/tensor"
)

// SimResult is the outcome of the detailed (tensor-level) Bit Fusion layer
// simulation.
type SimResult struct {
	Output      *tensor.OutputMap
	Cycles      int64
	MACs        int64 // whole multiplications performed (dense: every tap)
	SubProducts int64 // 2-bit sub-multiplications inside fusion units
}

// SimulateLayer runs a whole (small) layer through the fusion-unit model:
// every output tap is multiplied — Bit Fusion is dense — but each
// multiplication is carried out the way a fusion unit does it, as the
// shift-added sum of 2-bit × 2-bit sub-products over the operands' digit
// decompositions (sign-magnitude on the weight side). The numeric output is
// bit-exact against refconv.Conv, and the sub-product count cross-validates
// SubProducts().
func SimulateLayer(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	oh := tensor.ConvOutSize(f.H, w.KH, stride, pad)
	ow := tensor.ConvOutSize(f.W, w.KW, stride, pad)
	res := SimResult{Output: tensor.NewOutputMap(w.K, oh, ow)}
	for k := 0; k < w.K; k++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int32
				for c := 0; c < f.C; c++ {
					for dy := 0; dy < w.KH; dy++ {
						iy := oy*stride - pad + dy
						if iy < 0 || iy >= f.H {
							continue
						}
						for dx := 0; dx < w.KW; dx++ {
							ix := ox*stride - pad + dx
							if ix < 0 || ix >= f.W {
								continue
							}
							res.MACs++
							acc += fusionMultiply(f.At(c, iy, ix), f.Bits, w.At(k, c, dy, dx), w.Bits, &res.SubProducts)
						}
					}
				}
				res.Output.Set(k, oy, ox, acc)
			}
		}
	}
	mpc := MACsPerCycle(cfg, w.Bits, f.Bits)
	if mpc <= 0 {
		mpc = 1
	}
	res.Cycles = int64(math.Ceil(float64(res.MACs) / mpc))
	return res
}

// fusionMultiply computes a × w as a fusion unit does: both operands are
// split into dense 2-bit digit streams (the weight in sign-magnitude form)
// and every digit pair contributes one shifted sub-product.
func fusionMultiply(a int32, aBits int, wt int32, wBits int, subProducts *int64) int32 {
	aa := atom.DecomposeDense(a, aBits, 2)
	ww := atom.DecomposeDense(wt, wBits-1, 2)
	var p int32
	for _, ad := range aa {
		for _, wd := range ww {
			*subProducts++
			sp := int32(ad.Mag) * int32(wd.Mag) << (ad.Shift + wd.Shift)
			if wd.Sign {
				sp = -sp
			}
			p += sp
		}
	}
	return p
}
