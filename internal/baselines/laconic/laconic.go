// Package laconic models Laconic (Sharify et al., ISCA 2019), the strongest
// precision-scalable baseline (Sections II-B2b, V-C). Laconic is a 2-D
// broadcast mesh of PEs; each PE holds 16 bit-serial multipliers computing
// one 16-element inner product. Operands are booth-encoded at the array
// boundary into effectual terms (±2^k); a multiplier serializes one
// weight/activation pair over #termsₐ×#termsᵥ cycles. Because operands are
// stored densely and PEs share data across rows/columns, a PE's latency is
// the maximum over its 16 pairs and a tile's latency is the maximum over its
// PEs — which is why Laconic is insensitive to value-level sparsity
// (Figure 4).
package laconic

import (
	"ristretto/internal/atom"
	"ristretto/internal/energy"
	"ristretto/internal/workload"
)

// Config parameterizes a Laconic tile array.
type Config struct {
	PERows, PECols int  // PE mesh (paper comparison: 6×8)
	Lanes          int  // bit-serial multipliers per PE (16)
	Booth          bool // booth/NAF term encoding (true) or plain bits
}

// DefaultConfig matches Section V-C: 6×8 PEs × 16 lanes.
func DefaultConfig() Config { return Config{PERows: 6, PECols: 8, Lanes: 16, Booth: true} }

// PEs returns the PE count.
func (c Config) PEs() int { return c.PERows * c.PECols }

func terms(v int32, booth bool) int {
	if booth {
		return atom.TermCount(v)
	}
	return atom.OneCount(v)
}

// PairWork returns the serial cycles one bit-serial multiplier spends on a
// weight/activation pair.
func PairWork(a, w int32, booth bool) int {
	return terms(a, booth) * terms(w, booth)
}

// TileRun is the detailed small-scale model used for the Figure 4 study: the
// tile processes `pes` inner products of length `lanes` in lock-step.
type TileRun struct {
	TheoreticalCycles float64 // total work / total multipliers (upper bound)
	AvgPECycles       float64 // data sharing disabled: mean per-PE latency
	TileCycles        int64   // lock-step: max over PEs per round
}

// SimulateTile generates pes random vector pairs (sparse, uniform values, as
// in Figure 4) and measures the three latency notions of the paper's study.
func SimulateTile(g *workload.Gen, cfg Config, bits int, density float64) TileRun {
	var run TileRun
	totalWork := 0
	peLat := make([]int, cfg.PEs())
	for pe := 0; pe < cfg.PEs(); pe++ {
		a := g.SparseVector(cfg.Lanes, bits, density, false)
		w := g.SparseVector(cfg.Lanes, bits, density, true)
		maxPair := 0
		for i := 0; i < cfg.Lanes; i++ {
			wl := PairWork(a[i], w[i], cfg.Booth)
			totalWork += wl
			if wl > maxPair {
				maxPair = wl
			}
		}
		peLat[pe] = maxPair
	}
	tile := 0
	sum := 0
	for _, l := range peLat {
		sum += l
		if l > tile {
			tile = l
		}
	}
	run.TheoreticalCycles = float64(totalWork) / float64(cfg.PEs()*cfg.Lanes)
	run.AvgPECycles = float64(sum) / float64(cfg.PEs())
	run.TileCycles = int64(tile)
	return run
}

// workDist builds the distribution of per-pair workloads ta×tw from the two
// term histograms (index = #terms including zeros at 0).
func workDist(aHist, wHist []int) []float64 {
	var aTot, wTot float64
	for _, c := range aHist {
		aTot += float64(c)
	}
	for _, c := range wHist {
		wTot += float64(c)
	}
	maxW := (len(aHist) - 1) * (len(wHist) - 1)
	d := make([]float64, maxW+1)
	for ta, ca := range aHist {
		if ca == 0 {
			continue
		}
		pa := float64(ca) / aTot
		for tw, cw := range wHist {
			if cw == 0 {
				continue
			}
			d[ta*tw] += pa * float64(cw) / wTot
		}
	}
	return d
}

// expectedMax returns E[max of n iid draws] from a small discrete
// distribution: Σ_x P(max > x) = Σ_x (1 − F(x)ⁿ).
func expectedMax(dist []float64, n int) float64 {
	e := 0.0
	cdf := 0.0
	for x := 0; x < len(dist)-1; x++ {
		cdf += dist[x]
		p := 1.0
		f := cdf
		if f > 1 {
			f = 1
		}
		// f^n
		base := f
		p = 1.0
		for k := n; k > 0; k >>= 1 {
			if k&1 == 1 {
				p *= base
			}
			base *= base
		}
		e += 1 - p
	}
	return e
}

// LayerPerf is the analytic layer estimate.
type LayerPerf struct {
	Cycles   int64
	Counters energy.Counters
}

// EstimateLayer estimates a layer's latency on the Laconic tile: the dense
// MAC count is processed in rounds of PEs×Lanes pairs; each round's latency
// is the expected maximum pair workload across all lanes of all PEs (the
// lock-step data-sharing penalty), computed from the operands' term
// distributions.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	pairs := l.MACs() // dense: zero values still occupy lanes
	perRound := int64(cfg.PEs() * cfg.Lanes)
	rounds := (pairs + perRound - 1) / perRound

	dist := workDist(st.ATermHist, st.WTermHist)
	roundLat := expectedMax(dist, int(perRound))
	if roundLat < 1 {
		roundLat = 1
	}
	p := LayerPerf{Cycles: int64(float64(rounds) * roundLat)}

	// Energy: term operations actually executed (zero terms skip cycles in
	// a lane but the lane still waits — energy follows executed terms).
	meanWork := 0.0
	for x, pr := range dist {
		meanWork += float64(x) * pr
	}
	p.Counters.TermOps = int64(meanWork * float64(pairs))
	// Dense operand storage and movement (no compression in Laconic).
	aBytes := l.Activations() * int64(st.ABits) / 8
	wBytes := l.Weights() * int64(st.WBits) / 8
	outVals := int64(l.K) * int64(l.OutH()) * int64(l.OutW())
	// Broadcast reuse: activations re-read once per output-channel pass
	// (K/PECols column groups), weights once per window-group pass.
	p.Counters.InputBufBytes = aBytes * int64((l.K+cfg.PECols-1)/cfg.PECols)
	p.Counters.WeightBufBytes = wBytes * int64((l.OutH()*l.OutW()+cfg.PERows-1)/(cfg.PERows))
	p.Counters.OutputBufBytes = outVals * 4
	passes := energy.WeightPassAmplification(wBytes, 0)
	p.Counters.DRAMBytes = aBytes*passes + wBytes + outVals*int64(st.ABits)/8
	return p
}

// EstimateNetwork sums layer estimates.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayer(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
