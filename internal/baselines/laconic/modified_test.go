package laconic

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func exactStats(t *testing.T, seed int64, bits int, density float64) workload.LayerStats {
	t.Helper()
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g := workload.NewGen(seed)
	f := g.FeatureMapExact(l.C, l.H, l.W, bits, 2, density, 0.8)
	w := g.KernelsExact(l.K, l.C, l.KH, l.KW, bits, 2, density, 0.8)
	return workload.StatsFromTensors(l, f, w, 2, true)
}

func TestModifiedBeatsPlainAtHighSparsity(t *testing.T) {
	// The point of the Figure 3 modification: exploit value sparsity. At
	// 20% density the AIM-compressed design must be faster in cycles.
	st := exactStats(t, 1, 8, 0.2)
	plain := EstimateLayer(st, DefaultConfig())
	mod := EstimateLayerModified(st, DefaultConfig())
	if mod.Cycles >= plain.Cycles {
		t.Fatalf("modified (%d) not faster than plain (%d) at 20%% density", mod.Cycles, plain.Cycles)
	}
}

func TestModifiedNoBenefitWhenDense(t *testing.T) {
	// With dense operands the AIM adds nothing: cycle counts converge
	// (and the modification only costs area).
	st := exactStats(t, 2, 8, 1.0)
	plain := EstimateLayer(st, DefaultConfig())
	mod := EstimateLayerModified(st, DefaultConfig())
	ratio := float64(mod.Cycles) / float64(plain.Cycles)
	if ratio < 0.95 || ratio > 1.35 {
		t.Fatalf("dense modified/plain ratio %v should be ≈1", ratio)
	}
}

func TestModifiedBenefitSaturates(t *testing.T) {
	// Section II-B2b problem 2: the value-sparsity benefit saturates — the
	// gain from 40%→20% density is much smaller than the ideal 2× once the
	// lock-step max and lane floor bite.
	c40 := EstimateLayerModified(exactStats(t, 3, 8, 0.4), DefaultConfig())
	c20 := EstimateLayerModified(exactStats(t, 3, 8, 0.2), DefaultConfig())
	idealGain := (0.4 * 0.4) / (0.2 * 0.2) // 4× fewer matched pairs
	gain := float64(c40.Cycles) / float64(c20.Cycles)
	if gain >= idealGain*0.9 {
		t.Fatalf("modified Laconic gain %v should saturate well below ideal %v", gain, idealGain)
	}
}

func TestModifiedAreaOverhead(t *testing.T) {
	if ModifiedAreaFactor <= 1.0 {
		t.Fatal("the modification must cost area")
	}
}

func TestModifiedNetworkRuns(t *testing.T) {
	g := workload.NewGen(4)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 8), 2, true)
	cy, cnt := EstimateNetworkModified(stats, DefaultConfig())
	plain, _ := EstimateNetwork(stats, DefaultConfig())
	if cy <= 0 || cnt.InnerJoin <= 0 {
		t.Fatalf("bad estimate: %d %+v", cy, cnt)
	}
	if cy > plain {
		t.Fatalf("modified (%d) slower than plain (%d) on sparse workloads", cy, plain)
	}
}
