package laconic

import (
	"math"

	"ristretto/internal/energy"
	"ristretto/internal/workload"
)

// This file models the Figure 3 strawman: Laconic with value-level sparsity
// bolted on by compressing operands (CSR) and adding a SNAP-style
// associative index matcher (AIM) plus a local booth encoder inside every
// PE. Section II-B2b identifies its two problems, both of which this model
// expresses:
//
//  1. considerable area overhead — the per-PE AIM and relocated booth
//     encoders (ModifiedAreaFactor);
//  2. PE underutilization — lanes only fill with *matched* non-zero pairs,
//     and the lock-step tile still waits for the slowest PE, so the benefit
//     of rising value sparsity saturates.

// ModifiedAreaFactor is the compute-area multiplier of the modified PE:
// an AIM comparator array plus a local booth encoder roughly sized against
// the 16 bit-serial multipliers they feed (SNAP reports AIM ≈ 40% of a PE;
// encoders previously amortized at the array boundary add ~20%).
const ModifiedAreaFactor = 1.6

// EstimateLayerModified estimates a layer on the modified design: operand
// vectors are compressed, each PE's AIM extracts the matched pairs of its
// 16-long logical window, and the bit-serial lanes process only those pairs.
// Rounds still cover the dense MAC count (windows are positional), but a
// round's latency is now the expected maximum over the *matched* pair
// workloads — value sparsity shortens the tail yet the max barely moves
// until sparsity is extreme.
func EstimateLayerModified(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	pairs := l.MACs()
	perRound := int64(cfg.PEs() * cfg.Lanes)
	rounds := (pairs + perRound - 1) / perRound

	// Pair workload distribution including zero-valued operands: the AIM
	// removes zero pairs from the lanes, but a removed pair contributes a
	// zero workload — exactly what the dense distribution already encodes
	// (terms(0) = 0). The difference against plain Laconic is bandwidth:
	// matched pairs per window are compacted onto lanes, letting a PE
	// retire a window in ceil(matched/lanes) lane-occupancies instead of
	// one, shortening rounds when value sparsity is high.
	matchFrac := st.A.ValueDensity * st.W.ValueDensity
	effRounds := int64(math.Ceil(float64(rounds) * math.Max(matchFrac*1.25, 1.0/float64(cfg.Lanes))))
	if effRounds < 1 {
		effRounds = 1
	}

	dist := workDist(st.ATermHist, st.WTermHist)
	roundLat := expectedMax(dist, int(perRound))
	if roundLat < 1 {
		roundLat = 1
	}
	p := LayerPerf{Cycles: int64(float64(effRounds) * roundLat)}

	meanWork := 0.0
	for x, pr := range dist {
		meanWork += float64(x) * pr
	}
	p.Counters.TermOps = int64(meanWork * float64(pairs))
	// AIM activity: one associative match per compressed pair per window.
	p.Counters.InnerJoin = int64(matchFrac * float64(pairs))
	// CSR-compressed movement instead of dense.
	var actNZ int64
	for _, n := range st.ActNZPerChan {
		actNZ += int64(n)
	}
	var wnz int64
	for _, n := range st.WNZPerChan {
		wnz += int64(n)
	}
	aBytes := actNZ * int64(st.ABits+16) / 8 // CSR: payload + 16-bit column index
	wBytes := wnz * int64(st.WBits+16) / 8
	outVals := int64(l.K) * int64(l.OutH()) * int64(l.OutW())
	p.Counters.InputBufBytes = aBytes * int64((l.K+cfg.PECols-1)/cfg.PECols)
	p.Counters.WeightBufBytes = wBytes * int64((l.OutH()*l.OutW()+cfg.PERows-1)/cfg.PERows)
	p.Counters.OutputBufBytes = outVals * 4
	passes := energy.WeightPassAmplification(wBytes, 0)
	p.Counters.DRAMBytes = aBytes*passes + wBytes + outVals*int64(st.ABits)/8
	return p
}

// EstimateNetworkModified sums modified-design layer estimates.
func EstimateNetworkModified(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayerModified(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
