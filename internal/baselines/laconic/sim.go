package laconic

import (
	"ristretto/internal/atom"
	"ristretto/internal/tensor"
)

// SimResult is the outcome of the detailed (tensor-level) Laconic layer
// simulation.
type SimResult struct {
	Output  *tensor.OutputMap
	Cycles  int64
	Pairs   int64 // non-zero (activation, weight) operand pairs
	TermOps int64 // effectual term-pair operations (the bit-serial workload)
}

// SimulateLayer runs a whole (small) layer through the bit-serial PE model:
// each non-zero operand pair multiplies as the cross product of the two
// operands' effectual terms (NAF when cfg.Booth, plain set bits otherwise),
// each term pair costing one exponent-add cycle on some lane. Zero operands
// are skipped entirely — Laconic exploits both value- and bit-level
// sparsity. The numeric output is bit-exact against refconv.Conv, and the
// term-op count is exactly the Σ PairWork of the non-zero pairs.
func SimulateLayer(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	oh := tensor.ConvOutSize(f.H, w.KH, stride, pad)
	ow := tensor.ConvOutSize(f.W, w.KW, stride, pad)
	res := SimResult{Output: tensor.NewOutputMap(w.K, oh, ow)}
	memo := map[int32][]atom.Term{}
	termsOf := func(v int32) []atom.Term {
		if t, ok := memo[v]; ok {
			return t
		}
		t := effectualTerms(v, cfg.Booth)
		memo[v] = t
		return t
	}
	for k := 0; k < w.K; k++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int32
				for c := 0; c < f.C; c++ {
					for dy := 0; dy < w.KH; dy++ {
						iy := oy*stride - pad + dy
						if iy < 0 || iy >= f.H {
							continue
						}
						for dx := 0; dx < w.KW; dx++ {
							ix := ox*stride - pad + dx
							if ix < 0 || ix >= f.W {
								continue
							}
							a, wt := f.At(c, iy, ix), w.At(k, c, dy, dx)
							if a == 0 || wt == 0 {
								continue
							}
							res.Pairs++
							for _, ta := range termsOf(a) {
								for _, tw := range termsOf(wt) {
									res.TermOps++
									sp := int32(1) << (ta.Shift + tw.Shift)
									if ta.Neg != tw.Neg {
										sp = -sp
									}
									acc += sp
								}
							}
						}
					}
				}
				res.Output.Set(k, oy, ox, acc)
			}
		}
	}
	// Throughput bound: every lane of every PE retires one term pair per
	// cycle when fully fed (the analytic model layers the cross-pair load
	// imbalance on top of this).
	lanes := int64(cfg.PEs() * cfg.Lanes)
	if lanes < 1 {
		lanes = 1
	}
	res.Cycles = (res.TermOps + lanes - 1) / lanes
	return res
}

// effectualTerms returns the signed power-of-two terms a Laconic front-end
// feeds the PEs: the NAF recoding with Booth encoding enabled, or one +2^k
// term per set magnitude bit (sign folded into the terms) without.
func effectualTerms(v int32, booth bool) []atom.Term {
	if booth {
		return atom.NAFTerms(v)
	}
	neg := v < 0
	x := uint32(v)
	if neg {
		x = uint32(-v)
	}
	var out []atom.Term
	for shift := uint8(0); x != 0; shift++ {
		if x&1 != 0 {
			out = append(out, atom.Term{Shift: shift, Neg: neg})
		}
		x >>= 1
	}
	return out
}
