package laconic

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func TestPairWork(t *testing.T) {
	// 3 = two terms (4-1), 5 = two terms (4+1): 2×2 = 4 cycles.
	if got := PairWork(3, 5, true); got != 4 {
		t.Fatalf("PairWork(3,5) = %d, want 4", got)
	}
	if PairWork(0, 127, true) != 0 {
		t.Fatal("zero operand must cost zero terms")
	}
	// Plain binary encoding: 7 has 3 bits vs 2 NAF terms.
	if PairWork(7, 1, false) != 3 || PairWork(7, 1, true) != 2 {
		t.Fatal("booth flag not honoured")
	}
}

func TestSimulateTileOrdering(t *testing.T) {
	// Theoretical ≤ average-PE ≤ tile latency, always (Figure 4).
	g := workload.NewGen(1)
	for _, density := range []float64{0.2, 0.5, 1.0} {
		for trial := 0; trial < 20; trial++ {
			run := SimulateTile(g, DefaultConfig(), 8, density)
			if run.TheoreticalCycles > run.AvgPECycles+1e-9 {
				t.Fatalf("theoretical %v > avg PE %v", run.TheoreticalCycles, run.AvgPECycles)
			}
			if run.AvgPECycles > float64(run.TileCycles)+1e-9 {
				t.Fatalf("avg PE %v > tile %v", run.AvgPECycles, run.TileCycles)
			}
		}
	}
}

func TestValueSparsityInsensitivity(t *testing.T) {
	// Figure 4's headline: halving value density should NOT halve tile
	// latency — the lock-step max over lanes barely moves, while the
	// theoretical bound scales with density.
	g := workload.NewGen(3)
	avg := func(density float64) (tile, theo float64) {
		for i := 0; i < 300; i++ {
			run := SimulateTile(g, DefaultConfig(), 8, density)
			tile += float64(run.TileCycles)
			theo += run.TheoreticalCycles
		}
		return tile / 300, theo / 300
	}
	tileDense, theoDense := avg(1.0)
	tileSparse, theoSparse := avg(0.4)
	if theoSparse >= theoDense*0.55 {
		t.Fatalf("theoretical bound should scale with density: %v vs %v", theoSparse, theoDense)
	}
	if tileSparse < tileDense*0.75 {
		t.Fatalf("tile latency too sensitive to sparsity: %v vs %v", tileSparse, tileDense)
	}
}

func TestExpectedMax(t *testing.T) {
	// Point mass at 3: E[max] = 3 for any n.
	dist := []float64{0, 0, 0, 1}
	if got := expectedMax(dist, 16); got < 2.999 || got > 3.001 {
		t.Fatalf("expectedMax point mass = %v", got)
	}
	// Uniform on {0,1}: E[max of n] → 1 as n grows.
	dist = []float64{0.5, 0.5}
	small := expectedMax(dist, 1)
	big := expectedMax(dist, 64)
	if small < 0.49 || small > 0.51 {
		t.Fatalf("E[max of 1] = %v, want 0.5", small)
	}
	if big < 0.99 {
		t.Fatalf("E[max of 64] = %v, want ≈1", big)
	}
}

func layerStats(t *testing.T, seed int64, bits int, wd, ad float64) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(seed)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, bits, bits, 2, workload.Targets{WDensity: wd, ADensity: ad}, true)
}

func TestEstimateLayerLowerPrecisionFaster(t *testing.T) {
	// Bit-serial: fewer effectual terms at lower precision → fewer cycles.
	c8 := EstimateLayer(layerStats(t, 5, 8, 0.5, 0.5), DefaultConfig())
	c2 := EstimateLayer(layerStats(t, 5, 2, 0.5, 0.5), DefaultConfig())
	if c2.Cycles >= c8.Cycles {
		t.Fatalf("2-bit (%d) not faster than 8-bit (%d)", c2.Cycles, c8.Cycles)
	}
}

func TestEstimateLayerValueSparsityWeak(t *testing.T) {
	// Value sparsity gives Laconic little: halving density must not halve
	// cycles (the round count is dense and the max barely moves).
	dense := EstimateLayer(layerStats(t, 6, 8, 0.9, 0.9), DefaultConfig())
	sparse := EstimateLayer(layerStats(t, 6, 8, 0.45, 0.45), DefaultConfig())
	if float64(sparse.Cycles) < 0.6*float64(dense.Cycles) {
		t.Fatalf("Laconic too sensitive to value sparsity: %d vs %d", sparse.Cycles, dense.Cycles)
	}
}

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(7)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 4), 2, true)
	cycles, cnt := EstimateNetwork(stats, DefaultConfig())
	if cycles <= 0 || cnt.TermOps <= 0 || cnt.DRAMBytes <= 0 {
		t.Fatalf("bad estimate: %d cycles %+v", cycles, cnt)
	}
	// Dense storage: DRAM traffic must match the uncompressed operand sizes
	// order of magnitude (no compression savings).
	var denseBytes int64
	for _, l := range n.Layers {
		denseBytes += l.Activations()*4/8 + l.Weights()*4/8
	}
	if cnt.DRAMBytes < denseBytes {
		t.Fatalf("DRAM bytes %d below dense operand size %d", cnt.DRAMBytes, denseBytes)
	}
}
