package laconic

import (
	"math"
	"math/rand"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/workload"
)

// The analytic layer model rests on expectedMax over the term-product
// distribution. Validate it against Monte-Carlo sampling from the same
// empirical distribution.
func TestExpectedMaxMatchesMonteCarlo(t *testing.T) {
	g := workload.NewGen(1)
	a := g.SparseVector(20000, 8, 0.6, false)
	w := g.SparseVector(20000, 8, 0.6, true)
	dist := workDist(atom.TermHistogram(a, true), atom.TermHistogram(w, true))

	// Sampler over the discrete distribution.
	cdf := make([]float64, len(dist))
	sum := 0.0
	for i, p := range dist {
		sum += p
		cdf[i] = sum
	}
	rng := rand.New(rand.NewSource(2))
	sample := func() int {
		u := rng.Float64() * sum
		for i, c := range cdf {
			if u <= c {
				return i
			}
		}
		return len(cdf) - 1
	}

	for _, n := range []int{16, 128, 768} {
		analytic := expectedMax(dist, n)
		const trials = 3000
		mc := 0.0
		for tr := 0; tr < trials; tr++ {
			m := 0
			for i := 0; i < n; i++ {
				if s := sample(); s > m {
					m = s
				}
			}
			mc += float64(m)
		}
		mc /= trials
		if math.Abs(analytic-mc)/mc > 0.05 {
			t.Fatalf("n=%d: analytic E[max]=%v vs Monte-Carlo %v", n, analytic, mc)
		}
	}
}

// The analytic layer estimate must agree with a direct lock-step simulation
// over real tensors within a modest tolerance.
func TestEstimateTracksLockStepSimulation(t *testing.T) {
	g := workload.NewGen(3)
	cfg := Config{PERows: 2, PECols: 4, Lanes: 16, Booth: true}
	// Direct simulation: pair up two big dense-position streams in rounds.
	a := g.SparseVector(64000, 8, 0.6, false)
	w := g.SparseVector(64000, 8, 0.6, true)
	perRound := cfg.PEs() * cfg.Lanes
	var simCycles int64
	for off := 0; off+perRound <= len(a); off += perRound {
		m := 0
		for i := 0; i < perRound; i++ {
			if wl := PairWork(a[off+i], w[off+i], true); wl > m {
				m = wl
			}
		}
		if m < 1 {
			m = 1
		}
		simCycles += int64(m)
	}
	rounds := int64(len(a) / perRound)

	dist := workDist(atom.TermHistogram(a, true), atom.TermHistogram(w, true))
	lat := expectedMax(dist, perRound)
	if lat < 1 {
		lat = 1
	}
	analytic := int64(float64(rounds) * lat)
	ratio := float64(simCycles) / float64(analytic)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("lock-step sim %d vs analytic %d (ratio %.3f)", simCycles, analytic, ratio)
	}
}
