package snap

import (
	"ristretto/internal/tensor"
)

// SimResult is the outcome of the detailed (tensor-level) SNAP layer
// simulation.
type SimResult struct {
	Output   *tensor.OutputMap
	Cycles   int64 // slowest PE
	PECycles []int64
	Matched  int64 // index-matched non-zero pairs (MAC operations)
}

// SimulateLayer runs a whole (small) layer through the detailed
// associative-index-matching model: for every output pixel the C·kh·kw
// reduction window is gathered into compressed (index, value) vectors on
// both sides and handed to MatchVectors, SNAP's AIM comparator + MAC row.
// Output pixels round-robin across PEs and the layer latency is the slowest
// PE. The numeric output is bit-exact against refconv.Conv.
func SimulateLayer(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	oh := tensor.ConvOutSize(f.H, w.KH, stride, pad)
	ow := tensor.ConvOutSize(f.W, w.KW, stride, pad)
	pes := cfg.PEs
	if pes < 1 {
		pes = 1
	}
	if cfg.AIMWidth < 1 {
		cfg.AIMWidth = 1
	}
	if cfg.MACsPerPE < 1 {
		cfg.MACsPerPE = 1
	}
	res := SimResult{
		Output:   tensor.NewOutputMap(w.K, oh, ow),
		PECycles: make([]int64, pes),
	}

	// Per-filter compressed weight vectors are static: built once, reused
	// for every output pixel.
	vecLen := f.C * w.KH * w.KW
	wIdx := make([][]int32, w.K)
	wVal := make([][]int32, w.K)
	for k := 0; k < w.K; k++ {
		i := int32(0)
		for c := 0; c < w.C; c++ {
			for dy := 0; dy < w.KH; dy++ {
				for dx := 0; dx < w.KW; dx++ {
					if v := w.At(k, c, dy, dx); v != 0 {
						wIdx[k] = append(wIdx[k], i)
						wVal[k] = append(wVal[k], v)
					}
					i++
				}
			}
		}
	}

	aIdx := make([]int32, 0, vecLen)
	aVal := make([]int32, 0, vecLen)
	pe := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			// Gather the activation window once per pixel, compressed.
			aIdx, aVal = aIdx[:0], aVal[:0]
			i := int32(0)
			for c := 0; c < f.C; c++ {
				for dy := 0; dy < w.KH; dy++ {
					iy := oy*stride - pad + dy
					for dx := 0; dx < w.KW; dx++ {
						ix := ox*stride - pad + dx
						if iy >= 0 && iy < f.H && ix >= 0 && ix < f.W {
							if v := f.At(c, iy, ix); v != 0 {
								aIdx = append(aIdx, i)
								aVal = append(aVal, v)
							}
						}
						i++
					}
				}
			}
			for k := 0; k < w.K; k++ {
				dot, matched, cycles := MatchVectors(aIdx, aVal, wIdx[k], wVal[k], cfg)
				res.Output.Set(k, oy, ox, dot)
				res.Matched += matched
				res.PECycles[pe] += cycles
				pe = (pe + 1) % pes
			}
		}
	}
	for _, c := range res.PECycles {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	return res
}
