package snap

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func compress(v []int32) (idx, val []int32) {
	for i, x := range v {
		if x != 0 {
			idx = append(idx, int32(i))
			val = append(val, x)
		}
	}
	return idx, val
}

func TestMatchVectorsDotProduct(t *testing.T) {
	g := workload.NewGen(1)
	a := g.SparseVector(200, 8, 0.4, false)
	w := g.SparseVector(200, 8, 0.5, true)
	ai, av := compress(a)
	wi, wv := compress(w)
	dot, matched, cycles := MatchVectors(ai, av, wi, wv, DefaultConfig())
	var want int32
	var wantM int64
	for i := range a {
		want += a[i] * w[i]
		if a[i] != 0 && w[i] != 0 {
			wantM++
		}
	}
	if dot != want {
		t.Fatalf("dot %d != %d", dot, want)
	}
	if matched != wantM {
		t.Fatalf("matched %d != %d", matched, wantM)
	}
	if cycles < 1 {
		t.Fatal("cycles must be positive")
	}
	// The MAC row retires 3 pairs/cycle: cycles ≥ matched/3.
	if cycles < (matched+2)/3 {
		t.Fatalf("cycles %d below MAC bound for %d matches", cycles, matched)
	}
}

func TestMatchVectorsEmpty(t *testing.T) {
	dot, matched, cycles := MatchVectors(nil, nil, nil, nil, DefaultConfig())
	if dot != 0 || matched != 0 || cycles != 1 {
		t.Fatalf("empty match: %d %d %d", dot, matched, cycles)
	}
}

func TestMatchVectorsAIMBound(t *testing.T) {
	// Dense-ish long vectors: AIM scan (window 16) must bound cycles even
	// when few pairs match.
	a := make([]int32, 320)
	w := make([]int32, 320)
	for i := range a {
		a[i] = 1 // dense activations
	}
	w[0] = 1 // single weight
	ai, av := compress(a)
	wi, wv := compress(w)
	_, matched, cycles := MatchVectors(ai, av, wi, wv, DefaultConfig())
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	if cycles != 20 { // 320/16 scan steps
		t.Fatalf("cycles = %d, want 20 (AIM scan bound)", cycles)
	}
}

func layerStats(t *testing.T, seed int64, bits int, wd, ad float64) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(seed)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, bits, bits, 2, workload.Targets{WDensity: wd, ADensity: ad}, true)
}

func TestEstimateLayerDualSidedSparsityHelps(t *testing.T) {
	dense := EstimateLayer(layerStats(t, 2, 8, 0.9, 0.9), DefaultConfig())
	sparse := EstimateLayer(layerStats(t, 2, 8, 0.3, 0.3), DefaultConfig())
	if sparse.Cycles >= dense.Cycles {
		t.Fatalf("sparse (%d) not faster than dense (%d)", sparse.Cycles, dense.Cycles)
	}
	// Dual-sided: 0.3×0.3 ≈ 9× fewer matches than 0.9×0.9 — expect a large
	// (though AIM-scan-bounded) gain.
	if float64(dense.Cycles)/float64(sparse.Cycles) < 2 {
		t.Fatalf("gain too small: %d vs %d", dense.Cycles, sparse.Cycles)
	}
}

func TestEstimateLayerPrecisionInsensitive(t *testing.T) {
	// Fixed-precision 16-bit MACs: like SparTen, SNAP gains nothing from
	// lower operand precision beyond its sparsity side-effects.
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	exact := func(bits int) workload.LayerStats {
		g := workload.NewGen(3)
		f := g.FeatureMapExact(l.C, l.H, l.W, bits, 2, 0.5, 0.8)
		w := g.KernelsExact(l.K, l.C, l.KH, l.KW, bits, 2, 0.5, 0.8)
		return workload.StatsFromTensors(l, f, w, 2, true)
	}
	c8 := EstimateLayer(exact(8), DefaultConfig())
	c2 := EstimateLayer(exact(2), DefaultConfig())
	ratio := float64(c8.Cycles) / float64(c2.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("SNAP should be precision-insensitive: 8b=%d 2b=%d", c8.Cycles, c2.Cycles)
	}
}

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(4)
	n := model.AlexNet()
	stats := g.NetworkStats(n, model.Uniform(n, 8), 2, true)
	cycles, cnt := EstimateNetwork(stats, DefaultConfig())
	if cycles <= 0 || cnt.MAC8 <= 0 || cnt.InnerJoin <= 0 {
		t.Fatalf("bad estimate: %d %+v", cycles, cnt)
	}
}
