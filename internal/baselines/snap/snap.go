// Package snap models SNAP (Zhang et al., JSSC 2021), the third dual-sided
// sparse accelerator of the paper's Table I. SNAP pairs non-zero weights and
// activations with an associative index matching (AIM) unit — a comparator
// array over channel indices of the two compressed vectors — then computes
// the matched pairs on a small MAC array and merges partial sums through a
// two-level (PE-level, core-level) reduction.
//
// SNAP is not part of the paper's quantitative evaluation (Section V uses
// Bit Fusion, Laconic and SparTen), but it is described in Section II and
// its AIM is the ingredient of the modified-Laconic strawman of Figure 3,
// so the reproduction includes it: both as a detailed vector-pair model and
// as an analytic layer model usable in the extension studies.
package snap

import (
	"ristretto/internal/energy"
	"ristretto/internal/workload"
)

// Config parameterizes a SNAP core.
type Config struct {
	PEs       int // parallel processing elements
	MACsPerPE int // multipliers fed by one AIM per cycle (SNAP: 3)
	AIMWidth  int // compressed-vector window the AIM compares per step
}

// DefaultConfig is a 32-PE core with SNAP's 3-wide MAC rows and a 16-entry
// AIM window, sized to the same order as the other baselines.
func DefaultConfig() Config { return Config{PEs: 32, MACsPerPE: 3, AIMWidth: 16} }

// MatchVectors runs the detailed AIM model on one compressed vector pair
// given as parallel (index, value) lists sorted by index: it returns the dot
// product, the matched-pair count, and the cycles spent — the AIM compares
// an AIMWidth window per cycle and the MAC row retires up to MACsPerPE
// matches per cycle, whichever is slower.
func MatchVectors(aIdx []int32, aVal []int32, wIdx []int32, wVal []int32, cfg Config) (dot int32, matched, cycles int64) {
	if len(aIdx) != len(aVal) || len(wIdx) != len(wVal) {
		panic("snap: index/value length mismatch")
	}
	i, j := 0, 0
	for i < len(aIdx) && j < len(wIdx) {
		switch {
		case aIdx[i] == wIdx[j]:
			dot += aVal[i] * wVal[j]
			matched++
			i++
			j++
		case aIdx[i] < wIdx[j]:
			i++
		default:
			j++
		}
	}
	// AIM scan cycles: both compressed vectors stream through the
	// comparator window.
	scan := int64((len(aIdx) + cfg.AIMWidth - 1) / cfg.AIMWidth)
	if s := int64((len(wIdx) + cfg.AIMWidth - 1) / cfg.AIMWidth); s > scan {
		scan = s
	}
	mac := (matched + int64(cfg.MACsPerPE) - 1) / int64(cfg.MACsPerPE)
	cycles = scan
	if mac > cycles {
		cycles = mac
	}
	if cycles < 1 {
		cycles = 1
	}
	return dot, matched, cycles
}

// LayerPerf is the analytic layer estimate.
type LayerPerf struct {
	Cycles   int64
	Counters energy.Counters
}

// EstimateLayer estimates a layer: each output pixel of each filter is one
// compressed inner product over the C·kh·kw receptive field; expected
// matches are αv·βv·len, AIM scan cost follows the compressed operand
// lengths, and PEs divide the output pixels with a two-level reduction
// pipeline overhead per output.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	l := st.Layer
	outPix := int64(l.OutH()) * int64(l.OutW())
	vecLen := float64(l.C * l.KH * l.KW)
	alphaV := st.A.ValueDensity
	betaV := st.W.ValueDensity

	matched := alphaV * betaV * vecLen
	aLen := alphaV * vecLen
	wLen := betaV * vecLen
	scan := ceilF(aLen / float64(cfg.AIMWidth))
	if s := ceilF(wLen / float64(cfg.AIMWidth)); s > scan {
		scan = s
	}
	mac := ceilF(matched / float64(cfg.MACsPerPE))
	per := scan
	if mac > per {
		per = mac
	}
	if per < 1 {
		per = 1
	}
	const reduction = 2 // two-level partial-sum merge pipeline per output
	totalOutputs := outPix * int64(l.K)
	work := (per + reduction) * totalOutputs
	p := LayerPerf{Cycles: (work + int64(cfg.PEs) - 1) / int64(cfg.PEs)}

	pairs := int64(matched * float64(totalOutputs))
	p.Counters.MAC8 = pairs * 4 // 16-bit MACs ≈ 4× the 8-bit MAC energy
	p.Counters.InnerJoin = work // AIM comparator activity per busy cycle
	actNZ := int64(0)
	for _, n := range st.ActNZPerChan {
		actNZ += int64(n)
	}
	var wnz int64
	for _, n := range st.WNZPerFilter {
		wnz += int64(n)
	}
	aBytes := actNZ * int64(st.ABits+8) / 8
	p.Counters.InputBufBytes = aBytes * int64(l.K)
	p.Counters.WeightBufBytes = wnz * int64(st.WBits+8) / 8
	p.Counters.OutputBufBytes = totalOutputs * 4
	wDRAM := wnz * int64(st.WBits+8) / 8
	passes := energy.WeightPassAmplification(wDRAM, 0)
	p.Counters.DRAMBytes = aBytes*passes + wDRAM +
		int64(float64(totalOutputs)*alphaV)*int64(st.ABits+8)/8
	return p
}

func ceilF(x float64) int64 {
	n := int64(x)
	if float64(n) < x {
		n++
	}
	return n
}

// EstimateNetwork sums layer estimates.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) (int64, energy.Counters) {
	var cycles int64
	var cnt energy.Counters
	for _, st := range stats {
		p := EstimateLayer(st, cfg)
		cycles += p.Cycles
		cnt.Add(p.Counters)
	}
	return cycles, cnt
}
