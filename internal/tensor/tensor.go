// Package tensor provides the small integer tensors used throughout the
// Ristretto reproduction: activation feature maps (C×H×W, unsigned values
// post-ReLU) and convolution kernel stacks (K×C×k×k, signed values).
//
// Values are stored as int32 so that both quantized operands (2–8 bit) and
// partial sums fit without overflow; the quantized bit-width travels with the
// tensor so downstream code (atomization, compression, simulators) knows how
// many atoms a value may contain.
package tensor

import (
	"fmt"
	"math"
)

// FeatureMap is a C×H×W activation tensor. Values are unsigned (post-ReLU)
// and bounded by Bits, i.e. 0 <= v < 1<<Bits.
type FeatureMap struct {
	C, H, W int
	Bits    int
	Data    []int32 // len C*H*W, channel-major (c, y, x)
}

// NewFeatureMap allocates a zeroed C×H×W feature map quantized to bits.
func NewFeatureMap(c, h, w, bits int) *FeatureMap {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid feature map shape %dx%dx%d", c, h, w))
	}
	checkBits(bits)
	return &FeatureMap{C: c, H: h, W: w, Bits: bits, Data: make([]int32, c*h*w)}
}

// At returns the activation at channel c, row y, column x.
func (f *FeatureMap) At(c, y, x int) int32 { return f.Data[(c*f.H+y)*f.W+x] }

// Set stores v at channel c, row y, column x after validating its range.
func (f *FeatureMap) Set(c, y, x int, v int32) {
	if v < 0 || v >= 1<<f.Bits {
		panic(fmt.Sprintf("tensor: activation %d out of range for %d bits", v, f.Bits))
	}
	f.Data[(c*f.H+y)*f.W+x] = v
}

// Channel returns the H*W slice backing channel c (shared storage).
func (f *FeatureMap) Channel(c int) []int32 {
	return f.Data[c*f.H*f.W : (c+1)*f.H*f.W]
}

// Len returns the number of elements.
func (f *FeatureMap) Len() int { return len(f.Data) }

// Clone returns a deep copy.
func (f *FeatureMap) Clone() *FeatureMap {
	g := *f
	g.Data = append([]int32(nil), f.Data...)
	return &g
}

// Density returns the fraction of non-zero values.
func (f *FeatureMap) Density() float64 { return density(f.Data) }

// NonZero returns the number of non-zero values.
func (f *FeatureMap) NonZero() int { return nonZero(f.Data) }

// String implements fmt.Stringer with a compact shape/stat summary.
func (f *FeatureMap) String() string {
	return fmt.Sprintf("FeatureMap(%dx%dx%d, %db, density=%.3f)", f.C, f.H, f.W, f.Bits, f.Density())
}

// KernelStack is a K×C×k×k weight tensor. Values are signed and bounded by
// Bits, i.e. -(1<<(Bits-1)) < v < 1<<(Bits-1). Note the magnitude bound is
// symmetric: the most negative two's-complement code is excluded so every
// weight has a (Bits-1)-bit magnitude, matching sign-magnitude atomization.
type KernelStack struct {
	K, C, KH, KW int
	Bits         int
	Data         []int32 // len K*C*KH*KW, (k, c, y, x)
}

// NewKernelStack allocates a zeroed K×C×kh×kw kernel stack quantized to bits.
func NewKernelStack(k, c, kh, kw, bits int) *KernelStack {
	if k <= 0 || c <= 0 || kh <= 0 || kw <= 0 {
		panic(fmt.Sprintf("tensor: invalid kernel shape %dx%dx%dx%d", k, c, kh, kw))
	}
	checkBits(bits)
	return &KernelStack{K: k, C: c, KH: kh, KW: kw, Bits: bits, Data: make([]int32, k*c*kh*kw)}
}

// At returns the weight for output channel k, input channel c, offset (y,x).
func (w *KernelStack) At(k, c, y, x int) int32 {
	return w.Data[((k*w.C+c)*w.KH+y)*w.KW+x]
}

// Set stores v for output channel k, input channel c, offset (y,x).
func (w *KernelStack) Set(k, c, y, x int, v int32) {
	limit := int32(1) << (w.Bits - 1)
	if v <= -limit || v >= limit {
		panic(fmt.Sprintf("tensor: weight %d out of range for %d bits", v, w.Bits))
	}
	w.Data[((k*w.C+c)*w.KH+y)*w.KW+x] = v
}

// Kernel returns the C*KH*KW slice backing output channel k (shared storage).
func (w *KernelStack) Kernel(k int) []int32 {
	n := w.C * w.KH * w.KW
	return w.Data[k*n : (k+1)*n]
}

// Len returns the number of elements.
func (w *KernelStack) Len() int { return len(w.Data) }

// Clone returns a deep copy.
func (w *KernelStack) Clone() *KernelStack {
	g := *w
	g.Data = append([]int32(nil), w.Data...)
	return &g
}

// Density returns the fraction of non-zero values.
func (w *KernelStack) Density() float64 { return density(w.Data) }

// NonZero returns the number of non-zero values.
func (w *KernelStack) NonZero() int { return nonZero(w.Data) }

// String implements fmt.Stringer with a compact shape/stat summary.
func (w *KernelStack) String() string {
	return fmt.Sprintf("KernelStack(%dx%dx%dx%d, %db, density=%.3f)", w.K, w.C, w.KH, w.KW, w.Bits, w.Density())
}

// OutputMap is a K×H×W partial-sum tensor (int32 accumulators).
type OutputMap struct {
	K, H, W int
	Data    []int32
}

// NewOutputMap allocates a zeroed K×H×W output accumulator.
func NewOutputMap(k, h, w int) *OutputMap {
	return &OutputMap{K: k, H: h, W: w, Data: make([]int32, k*h*w)}
}

// At returns the accumulator at output channel k, row y, column x.
func (o *OutputMap) At(k, y, x int) int32 { return o.Data[(k*o.H+y)*o.W+x] }

// Add accumulates v into output channel k, row y, column x.
func (o *OutputMap) Add(k, y, x int, v int32) { o.Data[(k*o.H+y)*o.W+x] += v }

// Set stores v at output channel k, row y, column x.
func (o *OutputMap) Set(k, y, x int, v int32) { o.Data[(k*o.H+y)*o.W+x] = v }

// Equal reports whether two output maps have identical shape and contents.
func (o *OutputMap) Equal(p *OutputMap) bool {
	if o.K != p.K || o.H != p.H || o.W != p.W {
		return false
	}
	for i, v := range o.Data {
		if v != p.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element difference between two
// same-shaped output maps; useful in tests for diagnosing mismatches.
func (o *OutputMap) MaxAbsDiff(p *OutputMap) int32 {
	var m int32
	for i, v := range o.Data {
		d := v - p.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func checkBits(bits int) {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("tensor: unsupported bit-width %d", bits))
	}
}

func density(data []int32) float64 {
	if len(data) == 0 {
		return 0
	}
	return float64(nonZero(data)) / float64(len(data))
}

func nonZero(data []int32) int {
	n := 0
	for _, v := range data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Histogram returns counts of |v| over a slice; index 0 counts zeros. The
// histogram is used by the distribution-based baseline performance models.
func Histogram(data []int32, maxAbs int) []int {
	h := make([]int, maxAbs+1)
	for _, v := range data {
		a := int(math.Abs(float64(v)))
		if a > maxAbs {
			a = maxAbs
		}
		h[a]++
	}
	return h
}
