package tensor

import "fmt"

// Tile identifies a spatial rectangle of a feature map: origin (X0,Y0) and
// extent W×H. Ristretto partitions input feature maps into tiles; each tile is
// compressed and streamed independently (block COO-2D, Figure 8).
type Tile struct {
	X0, Y0 int
	W, H   int
}

func (t Tile) String() string {
	return fmt.Sprintf("Tile(%d,%d %dx%d)", t.X0, t.Y0, t.W, t.H)
}

// TileGrid partitions an h×w plane into tiles of at most tw×th, last tiles
// clipped to the plane boundary. Tiles are emitted row-major.
func TileGrid(w, h, tw, th int) []Tile {
	if tw <= 0 || th <= 0 {
		panic("tensor: non-positive tile size")
	}
	var tiles []Tile
	for y := 0; y < h; y += th {
		hh := th
		if y+hh > h {
			hh = h - y
		}
		for x := 0; x < w; x += tw {
			ww := tw
			if x+ww > w {
				ww = w - x
			}
			tiles = append(tiles, Tile{X0: x, Y0: y, W: ww, H: hh})
		}
	}
	return tiles
}

// ConvOutSize returns the output spatial size of a convolution over an in-size
// input with the given kernel size, stride and padding.
func ConvOutSize(in, k, stride, pad int) int {
	o := (in+2*pad-k)/stride + 1
	if o < 0 {
		return 0
	}
	return o
}

// FullConvSize returns the size of the "full" convolution buffer used by the
// Atomulator address algebra (Eq. 2): input size + kernel size - 1.
func FullConvSize(in, k int) int { return in + k - 1 }
