package tensor

import (
	"testing"
	"testing/quick"
)

func TestFeatureMapAccess(t *testing.T) {
	f := NewFeatureMap(3, 4, 5, 8)
	f.Set(2, 3, 4, 255)
	f.Set(0, 0, 0, 7)
	if f.At(2, 3, 4) != 255 || f.At(0, 0, 0) != 7 {
		t.Fatal("At/Set mismatch")
	}
	if f.Len() != 60 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.NonZero() != 2 {
		t.Fatalf("NonZero = %d", f.NonZero())
	}
	if got := f.Density(); got != 2.0/60.0 {
		t.Fatalf("Density = %v", got)
	}
}

func TestFeatureMapRangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range activation")
		}
	}()
	f := NewFeatureMap(1, 1, 1, 4)
	f.Set(0, 0, 0, 16)
}

func TestKernelStackAccess(t *testing.T) {
	w := NewKernelStack(2, 3, 3, 3, 4)
	w.Set(1, 2, 2, 2, -7)
	w.Set(0, 0, 0, 0, 7)
	if w.At(1, 2, 2, 2) != -7 || w.At(0, 0, 0, 0) != 7 {
		t.Fatal("At/Set mismatch")
	}
	if len(w.Kernel(1)) != 27 {
		t.Fatalf("Kernel slice len = %d", len(w.Kernel(1)))
	}
	if w.Kernel(1)[26] != -7 {
		t.Fatal("Kernel view does not share storage")
	}
}

func TestKernelStackRangeCheck(t *testing.T) {
	w := NewKernelStack(1, 1, 1, 1, 4)
	for _, bad := range []int32{8, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weight %d at 4 bits", bad)
				}
			}()
			w.Set(0, 0, 0, 0, bad)
		}()
	}
	w.Set(0, 0, 0, 0, 7)
	w.Set(0, 0, 0, 0, -7)
}

func TestCloneIndependence(t *testing.T) {
	f := NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 0, 5)
	g := f.Clone()
	g.Set(0, 0, 0, 9)
	if f.At(0, 0, 0) != 5 {
		t.Fatal("Clone shares storage")
	}
	w := NewKernelStack(1, 1, 2, 2, 8)
	w.Set(0, 0, 0, 0, -5)
	w2 := w.Clone()
	w2.Set(0, 0, 0, 0, 3)
	if w.At(0, 0, 0, 0) != -5 {
		t.Fatal("KernelStack Clone shares storage")
	}
}

func TestOutputMapEqualAndDiff(t *testing.T) {
	a := NewOutputMap(1, 2, 2)
	b := NewOutputMap(1, 2, 2)
	a.Add(0, 1, 1, 10)
	b.Set(0, 1, 1, 7)
	if a.Equal(b) {
		t.Fatal("Equal on differing maps")
	}
	if a.MaxAbsDiff(b) != 3 {
		t.Fatalf("MaxAbsDiff = %d", a.MaxAbsDiff(b))
	}
	b.Add(0, 1, 1, 3)
	if !a.Equal(b) {
		t.Fatal("Equal after fixing")
	}
	c := NewOutputMap(2, 2, 2)
	if a.Equal(c) {
		t.Fatal("Equal across shapes")
	}
}

func TestTileGridCoversPlaneExactly(t *testing.T) {
	f := func(w8, h8, tw8, th8 uint8) bool {
		w, h := int(w8%40)+1, int(h8%40)+1
		tw, th := int(tw8%9)+1, int(th8%9)+1
		tiles := TileGrid(w, h, tw, th)
		covered := make([]bool, w*h)
		for _, tl := range tiles {
			if tl.W > tw || tl.H > th || tl.W <= 0 || tl.H <= 0 {
				return false
			}
			for y := tl.Y0; y < tl.Y0+tl.H; y++ {
				for x := tl.X0; x < tl.X0+tl.W; x++ {
					idx := y*w + x
					if covered[idx] {
						return false // overlap
					}
					covered[idx] = true
				}
			}
		}
		for _, c := range covered {
			if !c {
				return false // gap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 3, 1, 1, 224},
		{224, 7, 2, 3, 112},
		{227, 11, 4, 0, 55},
		{56, 1, 1, 0, 56},
		{56, 3, 2, 1, 28},
		{2, 5, 1, 0, 0},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
	if FullConvSize(8, 3) != 10 {
		t.Fatal("FullConvSize")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int32{0, 1, -1, 3, 300}, 8)
	if h[0] != 1 || h[1] != 2 || h[3] != 1 || h[8] != 1 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestStringSummaries(t *testing.T) {
	f := NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 0, 1)
	if got := f.String(); got != "FeatureMap(1x2x2, 8b, density=0.250)" {
		t.Fatalf("FeatureMap.String = %q", got)
	}
	w := NewKernelStack(1, 1, 1, 1, 4)
	if got := w.String(); got != "KernelStack(1x1x1x1, 4b, density=0.000)" {
		t.Fatalf("KernelStack.String = %q", got)
	}
	tl := Tile{X0: 1, Y0: 2, W: 3, H: 4}
	if got := tl.String(); got != "Tile(1,2 3x4)" {
		t.Fatalf("Tile.String = %q", got)
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { NewFeatureMap(0, 1, 1, 8) },
		func() { NewKernelStack(1, 0, 1, 1, 8) },
		func() { NewFeatureMap(1, 1, 1, 17) },
		func() { TileGrid(4, 4, 0, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
