package safeio_test

// Appender failure-path coverage through the injected filesystem (an
// external test package: faultinject imports safeio, so these tests cannot
// live inside it). The contract under test: a failed write or fsync
// surfaces as an Append error — the record is never half-acknowledged —
// and records appended before the failure stay durable and parseable.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"ristretto/internal/faultinject"
	"ristretto/internal/safeio"
)

func TestAppenderSyncFailurePropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, SyncFail: 1}, nil)
	ap, err := safeio.OpenAppenderFS(fsys, path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	if err := ap.Append([]byte("rec1\n")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append with failing fsync = %v, want wrapped EIO", err)
	}
}

func TestAppenderWriteFailurePropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, ENOSPC: 1}, nil)
	ap, err := safeio.OpenAppenderFS(fsys, path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	if err := ap.Append([]byte("rec1\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Append to a full disk = %v, want wrapped ENOSPC", err)
	}
	// Nothing may have been acknowledged to the file either.
	if data, err := os.ReadFile(path); err != nil || len(data) != 0 {
		t.Fatalf("failed append left bytes on disk: %q, %v", data, err)
	}
}

// TestAppenderFaultsAfterGate proves records appended while the disk was
// healthy survive the moment it goes bad. Write faults are decided per
// handle at open, so the gate is exercised across two appender opens
// (the crash-resume shape): the first open slips under the After gate and
// appends durably, the second open draws the armed sync fault and its
// append errors out without corrupting the earlier record.
func TestAppenderFaultsAfterGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, SyncFail: 1, After: 1}, nil)
	ap, err := safeio.OpenAppenderFS(fsys, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Append([]byte("rec1\n")); err != nil {
		t.Fatalf("append before the disk went bad failed: %v", err)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	ap2, err := safeio.OpenAppenderFS(fsys, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ap2.Close()
	if err := ap2.Append([]byte("rec2\n")); err == nil {
		t.Fatal("append after the disk went bad succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "rec1\nrec2\n" && string(data) != "rec1\n" {
		t.Fatalf("journal holds %q; the healthy record must be intact", data)
	}
}
