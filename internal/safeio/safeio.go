// Package safeio writes files crash-safely: content goes to a temporary
// file in the destination directory, is flushed and fsynced, and only then
// renamed over the target. A process killed mid-write (the chaos tests do
// exactly this) leaves either the old file or the new one — never a
// truncated hybrid. Manifest, checkpoint and tensor (.rstt) writers all go
// through here.
//
// Every disk operation goes through the FS seam (see fs.go): the default
// is the OS passthrough, and internal/faultinject supplies a
// fault-injecting FS that makes the disk lie — ENOSPC, EIO, failed fsync,
// torn writes, bit rot — so the storage layers built on safeio can be
// adversarially tested without a special kernel.
package safeio

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The parent directory must
// exist (callers that create paths on demand MkdirAll first).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(OS, path, data, perm)
}

// WriteFileFS is WriteFile through an explicit filesystem (nil = OS).
func WriteFileFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	return WriteToFS(fsys, path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo atomically replaces path with whatever write produces. The writer
// is buffered; flush, fsync and rename happen only if write returns nil,
// otherwise the temporary file is removed and the existing target is left
// untouched.
func WriteTo(path string, perm os.FileMode, write func(w io.Writer) error) error {
	return WriteToFS(OS, path, perm, write)
}

// WriteToFS is WriteTo through an explicit filesystem (nil = OS).
func WriteToFS(fsys FS, path string, perm os.FileMode, write func(w io.Writer) error) error {
	if fsys == nil {
		fsys = OS
	}
	dir := filepath.Dir(path)
	// The temp file must live in the destination directory: rename(2) is
	// only atomic within one filesystem.
	f, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return cleanup(err)
	}
	if err := bw.Flush(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	syncDir(fsys, dir)
	return nil
}

// syncDir fsyncs the directory so the rename itself is durable. Best
// effort: some filesystems refuse directory fsync, and the rename already
// guarantees atomicity.
func syncDir(fsys FS, dir string) {
	d, err := fsys.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
