package safeio

// The filesystem seam: every byte safeio (and the storage layers built on
// it — the cell cache, the fleet journal, the experiment checkpoint) moves
// to or from disk goes through an FS, so a fault-injecting implementation
// (internal/faultinject's disk fault FS) can make the disk lie — ENOSPC,
// EIO, failed fsync, torn writes, bit rot — under a deterministic schedule
// while the default OS passthrough costs one interface dispatch.

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the per-handle surface an FS hands out: exactly the operations
// the crash-safe writers and the journal readers need. *os.File satisfies
// it directly.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the handle's written data to stable storage (fsync).
	Sync() error
	// Close releases the handle.
	Close() error
	// Chmod sets the file's permission bits.
	Chmod(mode os.FileMode) error
	// Name returns the path the handle was opened with.
	Name() string
}

// FS is the injectable filesystem: the operations the atomic writer, the
// fsynced appender and the cache/journal readers perform, with the OS
// passthrough as the default. Implementations must be safe for concurrent
// use.
type FS interface {
	// CreateTemp creates a new temporary file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile opens path with the given flags (see os.OpenFile).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (same filesystem).
	Rename(oldpath, newpath string) error
	// Remove deletes the file at path.
	Remove(path string) error
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes the file at path.
	Stat(path string) (os.FileInfo, error)
	// WalkDir walks the tree rooted at root (see filepath.WalkDir).
	WalkDir(root string, fn fs.WalkDirFunc) error
}

// OS is the passthrough FS: every operation goes straight to the real
// filesystem. It is the default wherever an FS is not supplied.
var OS FS = osFS{}

// osFS implements FS over the os and filepath packages.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
func (osFS) Open(path string) (File, error)               { return os.Open(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }
func (osFS) WalkDir(root string, fn fs.WalkDirFunc) error { return filepath.WalkDir(root, fn) }
