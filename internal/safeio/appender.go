package safeio

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"sync"
)

// Appender is the append-side companion to WriteFile: an open journal file
// whose every Append is flushed and fsynced before returning, so a process
// killed between appends loses at most the record being written. Torn
// trailing records are the reader's problem by design — journal formats
// layered on top (the experiment checkpoint, the fleet journal) guard each
// record with a CRC and skip what does not verify.
//
// Appender is safe for concurrent use; records from concurrent Appends
// never interleave.
type Appender struct {
	mu     sync.Mutex
	f      File
	w      *bufio.Writer
	path   string
	closed bool
}

// OpenAppender opens (or creates) path for appending. With truncate true
// any existing content is discarded first — the fresh-run case; with
// truncate false existing bytes are preserved — the resume case. The
// parent directory is created as needed.
func OpenAppender(path string, truncate bool) (*Appender, error) {
	return OpenAppenderFS(OS, path, truncate)
}

// OpenAppenderFS is OpenAppender through an explicit filesystem (nil = OS).
func OpenAppenderFS(fsys FS, path string, truncate bool) (*Appender, error) {
	if fsys == nil {
		fsys = OS
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if truncate {
		flags |= os.O_TRUNC
	}
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &Appender{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Append writes one record and makes it durable (flush + fsync) before
// returning. The caller frames its own records (typically one line each).
func (a *Appender) Append(record []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("safeio: appender closed")
	}
	if _, err := a.w.Write(record); err != nil {
		return err
	}
	if err := a.w.Flush(); err != nil {
		return err
	}
	return a.f.Sync()
}

// Path returns the file being appended to.
func (a *Appender) Path() string { return a.path }

// Close releases the descriptor. Records appended before Close are already
// durable. Close is idempotent.
func (a *Appender) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	if err := a.w.Flush(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}
