package safeio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte(`{"ok":true}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestFailedWriteLeavesOriginalIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.json")
	if err := WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("writer exploded")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want writer error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("target corrupted: %q", got)
	}
	// No temp residue either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestOverwriteReplacesWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("a long first version"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "short" {
		t.Fatalf("overwrite left %q", got)
	}
}
