package safeio

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestAppenderWritesDurableRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "journal.log")
	a, err := OpenAppender(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Path() != path {
		t.Fatalf("Path = %q", a.Path())
	}
	for i := 0; i < 3; i++ {
		if err := a.Append([]byte(fmt.Sprintf("record %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Durable before Close: read the file while the appender is open.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "record 0\nrecord 1\nrecord 2\n" {
		t.Fatalf("journal = %q", got)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := a.Append([]byte("late\n")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestAppenderResumePreservesTruncateDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	a, err := OpenAppender(path, false)
	if err != nil {
		t.Fatal(err)
	}
	a.Append([]byte("first\n"))
	a.Close()

	// Resume: existing bytes kept, new records follow.
	a, err = OpenAppender(path, false)
	if err != nil {
		t.Fatal(err)
	}
	a.Append([]byte("second\n"))
	a.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "first\nsecond\n" {
		t.Fatalf("resume journal = %q", got)
	}

	// Truncate: fresh run discards history.
	a, err = OpenAppender(path, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Append([]byte("fresh\n"))
	a.Close()
	got, _ = os.ReadFile(path)
	if string(got) != "fresh\n" {
		t.Fatalf("truncated journal = %q", got)
	}
}

// TestAppenderConcurrentRecordsNeverInterleave: every record survives
// whole under concurrent appenders.
func TestAppenderConcurrentRecordsNeverInterleave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	a, err := OpenAppender(path, true)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := a.Append([]byte(fmt.Sprintf("w%02d-%02d\n", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	a.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range splitLines(data) {
		if len(line) != len("w00-00") || line[0] != 'w' {
			t.Fatalf("interleaved or torn record %q", line)
		}
		seen[line] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("%d distinct records, want %d", len(seen), writers*each)
	}
}

func splitLines(data []byte) []string {
	var out []string
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, string(data[start:i]))
			start = i + 1
		}
	}
	return out
}
