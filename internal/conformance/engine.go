package conformance

import (
	"fmt"
	"sort"

	"ristretto/internal/tensor"
)

// Result is what an engine reports for one case.
type Result struct {
	// Output is the computed convolution, compared bit-exactly against the
	// reference. Nil only for analytic engines.
	Output *tensor.OutputMap
	// Cycles is the engine's latency estimate; it must be non-negative.
	Cycles int64
	// AtomMuls is the number of atom multiplications the engine performed,
	// checked against the dataflow invariant (every non-zero activation
	// atom of a channel meets every non-zero weight atom of that channel
	// exactly once). Engines that do not track atom work report -1.
	AtomMuls int64
}

// Engine adapts one convolution implementation to the differential harness.
// Run must take the convolution geometry (stride, pad) and the engine shape
// (granularity, multipliers, tiles) from the case, but operand shapes and
// bit-widths from the tensors themselves — the shrinker re-runs engines on
// progressively smaller tensors under the same case.
type Engine struct {
	Name     string
	Analytic bool // reports cycles/work only; Output stays nil
	Run      func(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result
}

var registry = map[string]Engine{}

// Register adds an engine to the global registry. It panics on an empty
// name, a nil Run, or a duplicate registration — adapters are wired once,
// at init time.
func Register(e Engine) {
	if e.Name == "" {
		panic("conformance: engine with empty name")
	}
	if e.Run == nil {
		panic(fmt.Sprintf("conformance: engine %q has no Run function", e.Name))
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("conformance: duplicate engine %q", e.Name))
	}
	registry[e.Name] = e
}

// Names returns the sorted names of all registered engines.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName looks up a registered engine.
func ByName(name string) (Engine, bool) {
	e, ok := registry[name]
	return e, ok
}

// All returns every registered engine, sorted by name.
func All() []Engine {
	names := Names()
	out := make([]Engine, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}
