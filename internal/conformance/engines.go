package conformance

import (
	"fmt"

	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/scnn"
	"ristretto/internal/baselines/snap"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/core"
	"ristretto/internal/model"
	"ristretto/internal/ristretto"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// The built-in adapter set: the four Ristretto-side views of the dataflow
// and the five baseline accelerator models (plus their variants). Every
// adapter routes the numerics through that engine's own arithmetic
// primitive, so agreement with refconv is evidence about the dataflow, not
// about a shared multiply routine.
func init() {
	Register(Engine{Name: "csc", Run: runCSC(false)})
	Register(Engine{Name: "csc-ns", Run: runCSC(true)})
	Register(Engine{Name: "tile-sim", Run: runTileSim})
	Register(Engine{Name: "core-sim", Run: runCoreSim})
	Register(Engine{Name: "analytic", Analytic: true, Run: runAnalytic})
	Register(Engine{Name: "bitfusion", Run: runBitfusion})
	Register(Engine{Name: "laconic", Run: runLaconic})
	Register(Engine{Name: "scnn", Run: runSCNN})
	Register(Engine{Name: "snap", Run: runSnap})
	Register(Engine{Name: "sparten", Run: runSparten(false)})
	Register(Engine{Name: "sparten-mp", Run: runSparten(true)})
}

// runCSC adapts the functional condensed-streaming pipeline; dense selects
// the Ristretto-ns (sparsity-disabled) configuration, whose atom-work
// counts intentionally differ from the sparse invariant.
func runCSC(dense bool) func(Case, *tensor.FeatureMap, *tensor.KernelStack) Result {
	return func(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
		out, st := core.Convolve(f, w, cs.Stride, cs.Pad, core.Config{
			Gran:       cs.Gran,
			Multiplier: cs.Mults,
			TileW:      cs.TileW,
			TileH:      cs.TileH,
			Dense:      dense,
		})
		muls := int64(st.Products)
		if dense {
			muls = -1
		}
		return Result{Output: out, Cycles: int64(st.Steps), AtomMuls: muls}
	}
}

func runTileSim(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := ristretto.SimulateConv(f, w, cs.Stride, cs.Pad, ristretto.Config{
		Tiles:  cs.Tiles,
		Tile:   ristretto.TileConfig{Mults: cs.Mults, Gran: cs.Gran},
		TileW:  cs.TileW,
		TileH:  cs.TileH,
		Policy: balance.WeightAct,
	})
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: r.Counters.AtomMuls}
}

func runCoreSim(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := ristretto.SimulateCore(f, w, cs.Stride, cs.Pad, ristretto.CoreSimConfig{
		Tiles:  cs.Tiles,
		Tile:   ristretto.TileConfig{Mults: cs.Mults, Gran: cs.Gran},
		TileW:  cs.TileW,
		TileH:  cs.TileH,
		Policy: balance.WeightAct,
	})
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: r.Counters.AtomMuls}
}

// runAnalytic adapts the closed-form performance model. It has no numeric
// output; its conformance check is the atom-work invariant (exact at
// stride 1) plus cycle sanity.
func runAnalytic(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	l := model.Layer{
		Name: fmt.Sprintf("conf-%d", cs.Index),
		C:    f.C, H: f.H, W: f.W,
		K: w.K, KH: w.KH, KW: w.KW,
		Stride: cs.Stride, Pad: cs.Pad,
	}
	st := workload.StatsFromTensors(l, f, w, cs.Gran, true)
	p := ristretto.EstimateLayer(st, ristretto.Config{
		Tiles:  cs.Tiles,
		Tile:   ristretto.TileConfig{Mults: cs.Mults, Gran: cs.Gran},
		Policy: balance.WeightAct,
	})
	muls := p.Counters.AtomMuls
	if cs.Stride > 1 {
		// The stride-phase decomposition rounds per-phase stream lengths;
		// the invariant is only exact at stride 1.
		muls = -1
	}
	return Result{Cycles: p.Cycles, AtomMuls: muls}
}

func runBitfusion(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := bitfusion.SimulateLayer(f, w, cs.Stride, cs.Pad, bitfusion.DefaultConfig())
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: -1}
}

func runLaconic(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := laconic.SimulateLayer(f, w, cs.Stride, cs.Pad, laconic.DefaultConfig())
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: -1}
}

func runSCNN(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := scnn.SimulateLayer(f, w, cs.Stride, cs.Pad, scnn.DefaultConfig())
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: -1}
}

func runSnap(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
	r := snap.SimulateLayer(f, w, cs.Stride, cs.Pad, snap.DefaultConfig())
	return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: -1}
}

func runSparten(mp bool) func(Case, *tensor.FeatureMap, *tensor.KernelStack) Result {
	return func(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
		cfg := sparten.DefaultConfig()
		cfg.MP = mp
		r := sparten.SimulateLayer(f, w, cs.Stride, cs.Pad, cfg)
		return Result{Output: r.Output, Cycles: r.Cycles, AtomMuls: -1}
	}
}
