package conformance

import (
	"fmt"
	"strings"

	"ristretto/internal/tensor"
)

// Failing is a concrete failing input: the tensor pair plus the convolution
// geometry it fails under. The shrinker transforms one Failing into a
// smaller one while the failure predicate stays true.
type Failing struct {
	F           *tensor.FeatureMap
	W           *tensor.KernelStack
	Stride, Pad int
}

// valid reports whether the geometry still defines a non-empty convolution.
func (fl Failing) valid() bool {
	return fl.F.C == fl.W.C &&
		tensor.ConvOutSize(fl.F.H, fl.W.KH, fl.Stride, fl.Pad) >= 1 &&
		tensor.ConvOutSize(fl.F.W, fl.W.KW, fl.Stride, fl.Pad) >= 1
}

// ShrinkFailure minimizes a failing case for one engine: the predicate is
// "the engine still disagrees with refconv (or panics) on these tensors".
// Geometry parameters other than stride/pad are taken from the (shrinking)
// tensors themselves, so the case's shape fields are ignored by Run.
func ShrinkFailure(e Engine, cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Failing {
	fails := func(cand Failing) bool {
		cs2 := cs
		cs2.Stride, cs2.Pad = cand.Stride, cand.Pad
		return CheckTensors(e, cs2, cand.F, cand.W) != nil
	}
	return ShrinkWith(Failing{F: f.Clone(), W: w.Clone(), Stride: cs.Stride, Pad: cs.Pad}, fails)
}

// ShrinkWith greedily minimizes cur while fails(cur) stays true, iterating
// shrink passes to a fixpoint: simplify geometry (stride, pad), halve
// channels, filters, rows, columns and kernel extents, then delta-debug
// individual non-zero values away and reduce surviving magnitudes. The
// result is the smallest reproducer the pass set can reach — typically a
// single-channel, single-filter, few-pixel tensor pair.
func ShrinkWith(cur Failing, fails func(Failing) bool) Failing {
	try := func(cand Failing) bool {
		if !cand.valid() || !fails(cand) {
			return false
		}
		cur = cand
		return true
	}
	for changed := true; changed; {
		changed = false
		// Geometry: a stride-1, pad-0 reproducer is the easiest to reason
		// about, so try simplifying those first.
		if cur.Stride > 1 {
			cand := cur
			cand.Stride = 1
			changed = try(cand) || changed
		}
		for cur.Pad > 0 {
			cand := cur
			cand.Pad--
			if !try(cand) {
				break
			}
			changed = true
		}
		changed = shrinkChannels(&cur, try) || changed
		changed = shrinkFilters(&cur, try) || changed
		changed = shrinkSpatial(&cur, try) || changed
		changed = shrinkKernel(&cur, try) || changed
		changed = shrinkValues(&cur, try) || changed
	}
	return cur
}

// shrinkChannels tries keeping only the first or second half of the input
// channels (both tensors shrink together).
func shrinkChannels(cur *Failing, try func(Failing) bool) bool {
	changed := false
	for cur.F.C > 1 {
		c := cur.F.C
		half := c / 2
		if try(sliceChannels(*cur, 0, half)) || try(sliceChannels(*cur, half, c)) {
			changed = true
			continue
		}
		break
	}
	return changed
}

// shrinkFilters tries keeping only the first or second half of the output
// channels.
func shrinkFilters(cur *Failing, try func(Failing) bool) bool {
	changed := false
	for cur.W.K > 1 {
		k := cur.W.K
		half := k / 2
		if try(sliceFilters(*cur, 0, half)) || try(sliceFilters(*cur, half, k)) {
			changed = true
			continue
		}
		break
	}
	return changed
}

// shrinkSpatial tries cropping the feature map to its top/bottom and
// left/right halves.
func shrinkSpatial(cur *Failing, try func(Failing) bool) bool {
	changed := false
	for cur.F.H > 1 {
		h := cur.F.H
		half := (h + 1) / 2
		if try(cropPlane(*cur, 0, half, 0, cur.F.W)) || try(cropPlane(*cur, h-half, h, 0, cur.F.W)) {
			changed = true
			continue
		}
		break
	}
	for cur.F.W > 1 {
		w := cur.F.W
		half := (w + 1) / 2
		if try(cropPlane(*cur, 0, cur.F.H, 0, half)) || try(cropPlane(*cur, 0, cur.F.H, w-half, w)) {
			changed = true
			continue
		}
		break
	}
	return changed
}

// shrinkKernel tries cropping the kernel window to its leading rows and
// columns.
func shrinkKernel(cur *Failing, try func(Failing) bool) bool {
	changed := false
	for cur.W.KH > 1 {
		if !try(cropKernel(*cur, cur.W.KH-1, cur.W.KW)) {
			break
		}
		changed = true
	}
	for cur.W.KW > 1 {
		if !try(cropKernel(*cur, cur.W.KH, cur.W.KW-1)) {
			break
		}
		changed = true
	}
	return changed
}

// shrinkValues delta-debugs non-zero values away in halving chunks, then
// tries reducing each survivor's magnitude (to ±1, then halved).
func shrinkValues(cur *Failing, try func(Failing) bool) bool {
	changed := false
	zeroChunk := func(data func(Failing) []int32) {
		for size := nonZeroCount(data(*cur)); size >= 1; size /= 2 {
			retry := true
			for retry {
				retry = false
				idx := nonZeroIndices(data(*cur))
				for start := 0; start < len(idx); start += size {
					end := start + size
					if end > len(idx) {
						end = len(idx)
					}
					cand := clone(*cur)
					d := data(cand)
					for _, i := range idx[start:end] {
						d[i] = 0
					}
					if try(cand) {
						changed = true
						retry = size > 1 // chunk layout changed; rescan at this size
						break
					}
				}
			}
		}
	}
	zeroChunk(func(fl Failing) []int32 { return fl.F.Data })
	zeroChunk(func(fl Failing) []int32 { return fl.W.Data })

	// Magnitude reduction on the survivors.
	reduce := func(data func(Failing) []int32) {
		for _, i := range nonZeroIndices(data(*cur)) {
			for _, repl := range []func(int32) int32{
				func(v int32) int32 {
					if v < 0 {
						return -1
					}
					return 1
				},
				func(v int32) int32 { return v / 2 },
			} {
				cand := clone(*cur)
				d := data(cand)
				if nv := repl(d[i]); nv != d[i] && nv != 0 {
					d[i] = nv
					if try(cand) {
						changed = true
					}
				}
			}
		}
	}
	reduce(func(fl Failing) []int32 { return fl.F.Data })
	reduce(func(fl Failing) []int32 { return fl.W.Data })
	return changed
}

func clone(fl Failing) Failing {
	fl.F = fl.F.Clone()
	fl.W = fl.W.Clone()
	return fl
}

func nonZeroCount(data []int32) int {
	n := 0
	for _, v := range data {
		if v != 0 {
			n++
		}
	}
	return n
}

func nonZeroIndices(data []int32) []int {
	var idx []int
	for i, v := range data {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

func sliceChannels(fl Failing, lo, hi int) Failing {
	f := tensor.NewFeatureMap(hi-lo, fl.F.H, fl.F.W, fl.F.Bits)
	for c := lo; c < hi; c++ {
		copy(f.Channel(c-lo), fl.F.Channel(c))
	}
	w := tensor.NewKernelStack(fl.W.K, hi-lo, fl.W.KH, fl.W.KW, fl.W.Bits)
	for k := 0; k < fl.W.K; k++ {
		for c := lo; c < hi; c++ {
			for y := 0; y < fl.W.KH; y++ {
				for x := 0; x < fl.W.KW; x++ {
					w.Set(k, c-lo, y, x, fl.W.At(k, c, y, x))
				}
			}
		}
	}
	fl.F, fl.W = f, w
	return fl
}

func sliceFilters(fl Failing, lo, hi int) Failing {
	w := tensor.NewKernelStack(hi-lo, fl.W.C, fl.W.KH, fl.W.KW, fl.W.Bits)
	for k := lo; k < hi; k++ {
		copy(w.Kernel(k-lo), fl.W.Kernel(k))
	}
	fl.W = w
	fl.F = fl.F.Clone()
	return fl
}

func cropPlane(fl Failing, y0, y1, x0, x1 int) Failing {
	f := tensor.NewFeatureMap(fl.F.C, y1-y0, x1-x0, fl.F.Bits)
	for c := 0; c < fl.F.C; c++ {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				f.Set(c, y-y0, x-x0, fl.F.At(c, y, x))
			}
		}
	}
	fl.F = f
	fl.W = fl.W.Clone()
	return fl
}

func cropKernel(fl Failing, kh, kw int) Failing {
	w := tensor.NewKernelStack(fl.W.K, fl.W.C, kh, kw, fl.W.Bits)
	for k := 0; k < fl.W.K; k++ {
		for c := 0; c < fl.W.C; c++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					w.Set(k, c, y, x, fl.W.At(k, c, y, x))
				}
			}
		}
	}
	fl.W = w
	fl.F = fl.F.Clone()
	return fl
}

// Repro renders the reproducer as a compact, replayable description: the
// geometry line plus one line per non-zero value. Pasting these into
// tensor.NewFeatureMap/NewKernelStack Set calls (see EXPERIMENTS.md,
// Verification) reproduces the failure in a regression test.
func (fl Failing) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A %d×%d×%d (%db)  W %d×%d×%d×%d (%db)  stride %d pad %d\n",
		fl.F.C, fl.F.H, fl.F.W, fl.F.Bits,
		fl.W.K, fl.W.C, fl.W.KH, fl.W.KW, fl.W.Bits,
		fl.Stride, fl.Pad)
	for c := 0; c < fl.F.C; c++ {
		for y := 0; y < fl.F.H; y++ {
			for x := 0; x < fl.F.W; x++ {
				if v := fl.F.At(c, y, x); v != 0 {
					fmt.Fprintf(&b, "  A[%d,%d,%d] = %d\n", c, y, x, v)
				}
			}
		}
	}
	for k := 0; k < fl.W.K; k++ {
		for c := 0; c < fl.W.C; c++ {
			for y := 0; y < fl.W.KH; y++ {
				for x := 0; x < fl.W.KW; x++ {
					if v := fl.W.At(k, c, y, x); v != 0 {
						fmt.Fprintf(&b, "  W[%d,%d,%d,%d] = %d\n", k, c, y, x, v)
					}
				}
			}
		}
	}
	return b.String()
}
