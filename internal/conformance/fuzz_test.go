package conformance

import (
	"math"
	"math/rand"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/quant"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
)

// The fuzz targets below are the adversarial half of the conformance
// harness: `go test` replays their seed corpora (testdata/fuzz/ plus the
// f.Add calls) on every run, and `go test -fuzz` explores beyond them. Raw
// fuzz inputs are clamped into each API's documented domain — the targets
// probe behaviour inside the contract, not argument validation.

func clampPos(v, lo, span int32) int {
	if v < 0 {
		v = -v
	}
	if v < 0 { // MinInt32
		v = 0
	}
	return int(lo + v%span)
}

// FuzzAtomize checks the decomposition round-trip for arbitrary values,
// bit-widths and granularities: atoms reconstruct the value exactly, the
// sparse atom count matches CountNonZero, dense mode always emits
// ceil(bits/N) atoms, and stream metadata (shift alignment, Last flag) is
// well-formed.
func FuzzAtomize(f *testing.F) {
	f.Add(int32(0), int32(8), int32(2))
	f.Add(int32(173), int32(8), int32(2))
	f.Add(int32(-5), int32(4), int32(1))
	f.Add(int32(65535), int32(16), int32(3))
	f.Add(int32(-32768), int32(16), int32(4))
	f.Fuzz(func(t *testing.T, raw, bitsRaw, granRaw int32) {
		bits := clampPos(bitsRaw, 1, 16)
		gran := atom.Granularity(clampPos(granRaw, 1, 4))
		mag := int32(uint32(raw) % (uint32(1) << bits))
		for _, v := range []int32{mag, -mag} {
			sparse := atom.Decompose(v, bits, gran)
			if got := atom.Reconstruct(sparse); got != v {
				t.Fatalf("Reconstruct(Decompose(%d, %d, %d)) = %d", v, bits, gran, got)
			}
			if len(sparse) != atom.CountNonZero(v, bits, gran) {
				t.Fatalf("sparse atom count %d != CountNonZero %d for %d", len(sparse), atom.CountNonZero(v, bits, gran), v)
			}
			dense := atom.DecomposeDense(v, bits, gran)
			if got := atom.Reconstruct(dense); got != v {
				t.Fatalf("dense reconstruction of %d = %d", v, got)
			}
			if len(dense) != gran.Count(bits) {
				t.Fatalf("dense decomposition of %d has %d atoms, want %d", v, len(dense), gran.Count(bits))
			}
			prevShift := -1
			for i, a := range sparse {
				if a.Mag == 0 {
					t.Fatalf("sparse stream of %d contains a zero atom", v)
				}
				if int(a.Shift)%int(gran) != 0 || int(a.Shift) <= prevShift {
					t.Fatalf("sparse stream of %d has misaligned/unordered shift %d", v, a.Shift)
				}
				prevShift = int(a.Shift)
				if (i == len(sparse)-1) != a.Last {
					t.Fatalf("Last flag misplaced in stream of %d: %v", v, sparse)
				}
			}
		}
	})
}

// FuzzBooth checks the NAF recoding: terms reconstruct the value, the term
// count matches, digits are non-adjacent (the defining NAF property), and
// the recoding never uses more terms than the plain binary encoding it is
// meant to improve on.
func FuzzBooth(f *testing.F) {
	f.Add(int32(0))
	f.Add(int32(7))
	f.Add(int32(-127))
	f.Add(int32(1) << 30)
	f.Add(int32(math.MinInt32))
	f.Fuzz(func(t *testing.T, v int32) {
		terms := atom.NAFTerms(v)
		if got := atom.TermValue(terms); got != v {
			t.Fatalf("TermValue(NAFTerms(%d)) = %d", v, got)
		}
		if len(terms) != atom.TermCount(v) {
			t.Fatalf("len(NAFTerms(%d)) = %d, TermCount = %d", v, len(terms), atom.TermCount(v))
		}
		for i := 1; i < len(terms); i++ {
			if int(terms[i].Shift)-int(terms[i-1].Shift) < 2 {
				t.Fatalf("NAF of %d has adjacent non-zero digits: %v", v, terms)
			}
		}
		if tc, oc := atom.TermCount(v), atom.OneCount(v); tc > oc {
			t.Fatalf("NAF of %d uses %d terms, plain binary only %d", v, tc, oc)
		}
	})
}

// FuzzQuantize checks the quantizer contracts: signed output magnitudes fit
// bits-1 bits (the sign-magnitude atomization precondition), unsigned
// output stays in [0, 1<<bits), and magnitude pruning reaches the requested
// density.
func FuzzQuantize(f *testing.F) {
	f.Add(int64(1), int32(4), 2.5, 0.5)
	f.Add(int64(99), int32(2), 1.28, 0.0)
	f.Add(int64(7), int32(8), 4.0, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, bitsRaw int32, clip, density float64) {
		bits := clampPos(bitsRaw, 2, 7)
		if math.IsNaN(clip) || math.IsInf(clip, 0) || clip < 0.1 || clip > 16 {
			clip = quant.DefaultWeightClip(bits)
		}
		if math.IsNaN(density) || density < 0 {
			density = 0
		}
		if density > 1 {
			density = 1
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		cfg := quant.Config{Bits: bits, ClipSigma: clip}
		qs := quant.QuantizeSigned(x, 1, cfg)
		lim := int32(1) << (bits - 1)
		for _, v := range qs {
			if v <= -lim || v >= lim {
				t.Fatalf("signed code %d out of (-%d, %d) at %d bits", v, lim, lim, bits)
			}
			if got := atom.Reconstruct(atom.Decompose(v, bits-1, 2)); got != v {
				t.Fatalf("quantized weight %d does not survive atomization", v)
			}
		}
		qu := quant.QuantizeUnsigned(x, 1, cfg)
		for _, v := range qu {
			if v < 0 || v >= 1<<bits {
				t.Fatalf("unsigned code %d out of [0, %d) at %d bits", v, 1<<bits, bits)
			}
		}
		quant.PruneToDensity(qs, density)
		if nz, budget := nonZeroCount(qs), int(math.Ceil(density*float64(len(qs)))); nz > budget {
			t.Fatalf("pruning to %.3f left %d non-zeros, budget %d", density, nz, budget)
		}
	})
}

// tensorsFromBytes deterministically fills a feature map and kernel stack of
// the given shape from a fuzz byte stream (values wrap into each tensor's
// legal range; an empty stream yields all zeros).
func tensorsFromBytes(data []byte, c, h, w, k, kh, kw, aBits, wBits int) (*tensor.FeatureMap, *tensor.KernelStack) {
	next := func(i int) int32 {
		if len(data) == 0 {
			return 0
		}
		return int32(data[i%len(data)])
	}
	f := tensor.NewFeatureMap(c, h, w, aBits)
	for i := range f.Data {
		f.Data[i] = next(i) % (1 << aBits)
	}
	ws := tensor.NewKernelStack(k, c, kh, kw, wBits)
	for i := range ws.Data {
		v := next(i+len(f.Data)) % (1 << (wBits - 1))
		if next(i+len(f.Data)+1)&1 == 1 {
			v = -v
		}
		ws.Data[i] = v
	}
	return f, ws
}

// FuzzIntersect drives the flatten→compress→intersect pipeline (including
// tiling and multiplier rounds) on byte-derived tensors and demands
// bit-exact agreement with the dense reference plus the atom-work
// invariant.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, int32(2), int32(8), int32(0))
	f.Add([]byte{0, 0, 0}, int32(1), int32(1), int32(2))
	f.Add([]byte{255, 128, 64, 32}, int32(3), int32(32), int32(3))
	f.Fuzz(func(t *testing.T, data []byte, granRaw, multRaw, tileRaw int32) {
		gran := atom.Granularity(clampPos(granRaw, 1, 4))
		mult := clampPos(multRaw, 1, 32)
		tile := clampPos(tileRaw, 0, 5) // 0 = untiled
		h, w := 1+len(data)%7, 1+(len(data)/2)%7
		kh, kw := 1+len(data)%3, 1+len(data)%2
		if kh > h {
			kh = h
		}
		if kw > w {
			kw = w
		}
		fm, ks := tensorsFromBytes(data, 2, h, w, 3, kh, kw, 4, 4)
		cfg := core.Config{Gran: gran, Multiplier: mult, TileW: tile, TileH: tile}
		got, st := core.Convolve(fm, ks, 1, 0, cfg)
		want := refconv.Conv(fm, ks, 1, 0)
		if !want.Equal(got) {
			t.Fatalf("CSC output diverges from reference (max |Δ| = %d)", want.MaxAbsDiff(got))
		}
		if inv := AtomMulInvariant(fm, ks, gran); int64(st.Products) != inv {
			t.Fatalf("intersection performed %d atom muls, invariant says %d", st.Products, inv)
		}
	})
}

// FuzzConvEquivalence is the differential fuzz target: byte-derived
// operands with fuzz-chosen geometry run through every registered engine
// and must conform. This is the same predicate as the sweep, but with the
// fuzzer rather than the workload generator choosing the inputs.
func FuzzConvEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(0x0102030201020302))
	f.Add([]byte{}, int64(0))
	f.Add([]byte{255, 255, 0, 0, 17}, int64(0x7fffffffffffffff))
	f.Fuzz(func(t *testing.T, data []byte, geo int64) {
		take := func(span int64) int {
			v := geo % span
			if v < 0 {
				v = -v
			}
			geo /= span
			return int(v)
		}
		cs := Case{
			Seed: -1, C: 1 + take(3), K: 1 + take(3),
			H: 1 + take(6), W: 1 + take(6),
			KH: 1 + take(3), KW: 1 + take(3),
			Stride: 1 + take(2), Pad: take(3),
			ABits: []int{2, 3, 4, 8}[take(4)], WBits: []int{2, 4, 8}[take(3)],
			Gran:  atom.Granularity(1 + take(3)),
			Mults: 1 + take(16), Tiles: 1 + take(3),
		}
		if take(2) == 1 {
			cs.TileW, cs.TileH = 2+take(4), 2+take(4)
		}
		for tensor.ConvOutSize(cs.H, cs.KH, cs.Stride, cs.Pad) < 1 ||
			tensor.ConvOutSize(cs.W, cs.KW, cs.Stride, cs.Pad) < 1 {
			cs.Pad++
		}
		fm, ks := tensorsFromBytes(data, cs.C, cs.H, cs.W, cs.K, cs.KH, cs.KW, cs.ABits, cs.WBits)
		for _, e := range All() {
			if m := CheckTensors(e, cs, fm, ks); m != nil {
				t.Fatalf("%v", m)
			}
		}
	})
}
