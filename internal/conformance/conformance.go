// Package conformance is the differential-testing subsystem: every
// convolution engine in the repository — the CSC functional pipeline, the
// Ristretto tile and core simulators, the analytic model, and the five
// baseline accelerator models — is cross-checked against the dense golden
// reference (internal/refconv) over seeded randomized workloads.
//
// The pieces:
//
//   - Engine adapters (engines.go) wrap each implementation behind a uniform
//     oracle interface. Engines that produce numeric outputs are compared
//     bit-exactly against refconv.Conv; analytic engines are checked against
//     work-count invariants computed independently from the tensors.
//   - A seeded case generator (CaseAt) sweeps bit-widths 2–8, mixed
//     precision, densities 0–100%, atom granularities, multiplier/tile
//     shapes and degenerate geometries (1×1 kernels, single channels,
//     single-pixel planes, all-zero tensors).
//   - A shrinker (shrink.go) minimizes any failing tensor pair to a small
//     reproducer by cutting channels, filters, rows, columns and individual
//     non-zero values while the failure persists.
//   - Native fuzz targets (fuzz_test.go) drive the atomizer, Booth recoder,
//     intersection kernel, quantizer and whole-conv equivalence from
//     arbitrary bytes, with seed corpora under testdata/fuzz/.
//   - Metamorphic invariants (conformance_test.go): zero-padding
//     invariance, atom-recombination identity, cycle monotonicity under
//     nested sparsification.
//
// The cmd/ristretto-verify binary exposes the sweep on the command line and
// CI runs it (plus a race-enabled test pass and short fuzz jobs) on every
// change.
package conformance

import (
	"math/rand"
	"strconv"

	"ristretto/internal/atom"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// Case is one randomized conformance workload: the convolution geometry,
// operand precisions and densities, and the engine shape parameters. The
// operand tensors are derived deterministically from (Seed, Index) — two
// runs with the same seed check bit-identical workloads.
type Case struct {
	Index int   // position in the sweep
	Seed  int64 // sweep seed the tensors derive from

	C, H, W     int // input channels and spatial size
	K, KH, KW   int // output channels and kernel size
	Stride, Pad int

	ABits, WBits int              // activation / weight bit-widths (mixed precision when unequal)
	Gran         atom.Granularity // atom granularity for CSC engines
	ADensity     float64          // value-level activation density (0 = all-zero plane)
	WDensity     float64          // value-level weight density
	AtomDensity  float64          // atom-level density within non-zero values

	Mults        int // atom multipliers per compute tile (CSC engines)
	Tiles        int // compute tiles (CSC engines)
	TileW, TileH int // spatial tile size (0 = whole plane)
}

// CaseAt deterministically generates the i-th case of the sweep seeded with
// seed. Each index derives an independent random stream, so cases can be
// generated (and checked) in any order or in parallel.
func CaseAt(seed int64, i int) Case {
	rng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "conformance/case", strconv.Itoa(i))))
	cs := Case{
		Index: i,
		Seed:  seed,

		C: 1 + rng.Intn(6),
		K: 1 + rng.Intn(8),

		ABits: []int{2, 3, 4, 8}[rng.Intn(4)],
		WBits: []int{2, 4, 8}[rng.Intn(3)],
		Gran:  atom.Granularity(1 + rng.Intn(3)),

		ADensity:    sampleDensity(rng),
		WDensity:    sampleDensity(rng),
		AtomDensity: 0.3 + 0.7*rng.Float64(),

		Mults:  []int{1, 2, 8, 32}[rng.Intn(4)],
		Tiles:  []int{1, 2, 4}[rng.Intn(3)],
		Stride: 1 + rng.Intn(2),
		Pad:    rng.Intn(3),
	}
	cs.KH = []int{1, 2, 3, 5}[rng.Intn(4)]
	cs.KW = []int{1, 2, 3, 5}[rng.Intn(4)]
	cs.H = 1 + rng.Intn(10)
	cs.W = 1 + rng.Intn(10)
	// Spatial tiling on about half the cases; whole-plane otherwise.
	if rng.Intn(2) == 0 {
		cs.TileW = 2 + rng.Intn(5)
		cs.TileH = 2 + rng.Intn(5)
	}

	// Degenerate specials, injected on a fixed rotation so every short
	// sweep still covers them.
	switch i % 11 {
	case 1:
		cs.ADensity = 0 // all-zero activations
	case 3:
		cs.WDensity = 0 // all-zero weights
	case 5:
		cs.KH, cs.KW = 1, 1 // pointwise kernel
	case 7:
		cs.C = 1 // single input channel
	case 9:
		cs.H, cs.W = 1, 1 // single-pixel plane
	case 10:
		cs.ABits, cs.WBits = 8, 8 // max evaluated bit-width
	}

	// Keep the output non-empty: grow padding until the (possibly strided)
	// output has at least one pixel in each dimension.
	for tensor.ConvOutSize(cs.H, cs.KH, cs.Stride, cs.Pad) < 1 {
		cs.Pad++
	}
	for tensor.ConvOutSize(cs.W, cs.KW, cs.Stride, cs.Pad) < 1 {
		cs.Pad++
	}
	return cs
}

// sampleDensity draws a value-level density: mostly uniform, with mass at
// the exact 0%, 100% and very-sparse endpoints.
func sampleDensity(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 0.02
	default:
		return rng.Float64()
	}
}

// Operands materializes the case's tensors, deterministically from
// (Seed, Index). Exact-mode generation gives direct control of both value-
// and atom-level density, including the exact all-zero endpoints.
func (cs Case) Operands() (*tensor.FeatureMap, *tensor.KernelStack) {
	g := workload.NewGen(workload.DeriveSeed(cs.Seed, "conformance/operands", strconv.Itoa(cs.Index)))
	f := g.FeatureMapExact(cs.C, cs.H, cs.W, cs.ABits, cs.Gran, cs.ADensity, cs.AtomDensity)
	w := g.KernelsExact(cs.K, cs.C, cs.KH, cs.KW, cs.WBits, cs.Gran, cs.WDensity, cs.AtomDensity)
	return f, w
}
