package conformance

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/refconv"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
)

// Mismatch describes one conformance failure: which engine diverged, on
// which case, and why. A panic inside an engine is also a mismatch — the
// harness recovers it so one crash cannot hide later divergences.
type Mismatch struct {
	Engine string
	Case   Case
	Reason string
}

// Error formats the mismatch as a one-line diagnostic.
func (m *Mismatch) Error() string {
	c := m.Case
	return fmt.Sprintf("%s: case %d (seed %d): %s [A %dx%dx%d %db d=%.2f | W %dx%dx%dx%d %db d=%.2f | stride %d pad %d gran %d mults %d]",
		m.Engine, c.Index, c.Seed, m.Reason,
		c.C, c.H, c.W, c.ABits, c.ADensity,
		c.K, c.C, c.KH, c.KW, c.WBits, c.WDensity,
		c.Stride, c.Pad, c.Gran, c.Mults)
}

// Check generates the case's tensors and cross-checks the engine against
// the dense reference. It returns nil when the engine conforms.
func Check(e Engine, cs Case) *Mismatch {
	f, w := cs.Operands()
	return CheckTensors(e, cs, f, w)
}

// CheckTensors cross-checks the engine on explicit tensors (the shrinker
// re-enters here with reduced operands). The reference output is
// refconv.Conv; numeric engines must match it bit-exactly, and engines
// reporting atom work must satisfy the dataflow invariant.
func CheckTensors(e Engine, cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) (m *Mismatch) {
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Engine: e.Name, Case: cs, Reason: fmt.Sprintf("panic: %v", r)}
		}
	}()
	ref := refconv.Conv(f, w, cs.Stride, cs.Pad)
	res := e.Run(cs, f, w)
	if !e.Analytic {
		if res.Output == nil {
			return &Mismatch{Engine: e.Name, Case: cs, Reason: "engine returned no output"}
		}
		if !ref.Equal(res.Output) {
			return &Mismatch{Engine: e.Name, Case: cs,
				Reason: fmt.Sprintf("output diverges from refconv (max |Δ| = %d)", ref.MaxAbsDiff(res.Output))}
		}
	}
	if res.Cycles < 0 {
		return &Mismatch{Engine: e.Name, Case: cs, Reason: fmt.Sprintf("negative cycle count %d", res.Cycles)}
	}
	if res.AtomMuls >= 0 {
		if want := AtomMulInvariant(f, w, cs.Gran); res.AtomMuls != want {
			return &Mismatch{Engine: e.Name, Case: cs,
				Reason: fmt.Sprintf("atom-work invariant violated: engine reports %d atom muls, tensors imply %d", res.AtomMuls, want)}
		}
	}
	return nil
}

// AtomMulInvariant computes, directly from the tensors, the number of atom
// multiplications the sparse CSC dataflow must perform: per input channel,
// every non-zero activation atom meets every non-zero weight atom exactly
// once (weights atomized in sign-magnitude form, so magnitudes use
// WBits-1 bits).
func AtomMulInvariant(f *tensor.FeatureMap, w *tensor.KernelStack, gran atom.Granularity) int64 {
	var total int64
	for c := 0; c < f.C; c++ {
		t := atom.TotalNonZeroAtoms(f.Channel(c), f.Bits, gran)
		s := 0
		for k := 0; k < w.K; k++ {
			for y := 0; y < w.KH; y++ {
				for x := 0; x < w.KW; x++ {
					if v := w.At(k, c, y, x); v != 0 {
						s += atom.CountNonZero(v, w.Bits-1, gran)
					}
				}
			}
		}
		total += int64(t) * int64(s)
	}
	return total
}

// Failure is one sweep failure, optionally with its shrunk reproducer.
type Failure struct {
	Mismatch Mismatch
	Shrunk   *Failing // minimized reproducer, when shrinking was requested
}

// EngineReport summarizes one engine's sweep.
type EngineReport struct {
	Engine   string
	Analytic bool
	Cases    int
	Failures []Failure
}

// Sweep cross-checks every engine against the reference over n seeded
// cases. The same (seed, n) always checks the same workloads, in the same
// order. When shrink is set, each failing case is minimized to a small
// reproducer before being reported. Telemetry (when enabled) counts cases
// and failures per engine.
func Sweep(engines []Engine, seed int64, n int, shrink bool) []EngineReport {
	reports := make([]EngineReport, 0, len(engines))
	for _, e := range engines {
		reports = append(reports, SweepEngine(e, seed, n, shrink))
	}
	return reports
}

// SweepEngine runs one engine over the n-case sweep. It is safe to call
// concurrently for different engines: case generation is index-derived and
// engines share no mutable state.
func SweepEngine(e Engine, seed int64, n int, shrink bool) EngineReport {
	rep := EngineReport{Engine: e.Name, Analytic: e.Analytic, Cases: n}
	for i := 0; i < n; i++ {
		cs := CaseAt(seed, i)
		m := Check(e, cs)
		if telemetry.Default.Enabled() {
			telemetry.Default.Counter("conformance.cases").Add(1)
		}
		if m == nil {
			continue
		}
		if telemetry.Default.Enabled() {
			telemetry.Default.Counter("conformance.failures").Add(1)
		}
		fail := Failure{Mismatch: *m}
		if shrink {
			f, w := cs.Operands()
			shrunk := ShrinkFailure(e, cs, f, w)
			fail.Shrunk = &shrunk
		}
		rep.Failures = append(rep.Failures, fail)
	}
	return rep
}
