package conformance

import (
	"reflect"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// sweepSeed/sweepCases pin the CI acceptance sweep: every registered engine
// must agree with refconv over at least 200 randomized configurations.
const (
	sweepSeed  = 1
	sweepCases = 200
)

// TestSweepAllEnginesConform is the headline differential test: all
// registered engines, 200 seeded cases each, zero tolerance.
func TestSweepAllEnginesConform(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < sweepCases; i++ {
				if m := Check(e, CaseAt(sweepSeed, i)); m != nil {
					t.Fatalf("conformance failure: %v", m)
				}
			}
		})
	}
}

// TestRegistryComplete guards the oracle surface: the adapter set must
// cover the Ristretto views and every baseline accelerator.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"analytic", "bitfusion", "core-sim", "csc", "csc-ns",
		"laconic", "scnn", "snap", "sparten", "sparten-mp", "tile-sim",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registered engines = %v, want %v", got, want)
	}
}

// TestCaseGenerationDeterministic: the same (seed, index) must yield the
// same case and bit-identical tensors, in any order.
func TestCaseGenerationDeterministic(t *testing.T) {
	for _, i := range []int{0, 7, 63, 199} {
		a, b := CaseAt(41, i), CaseAt(41, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("case %d not deterministic: %+v vs %+v", i, a, b)
		}
		fa, wa := a.Operands()
		fb, wb := b.Operands()
		if !reflect.DeepEqual(fa, fb) || !reflect.DeepEqual(wa, wb) {
			t.Fatalf("operands for case %d not deterministic", i)
		}
	}
	if reflect.DeepEqual(CaseAt(41, 0), CaseAt(42, 0)) {
		t.Fatal("different seeds produced identical cases")
	}
}

// TestDegenerateShapes pins the shapes the random sweep only hits
// probabilistically: every engine must handle them without crashing and
// with a bit-exact (or invariant-consistent) result.
func TestDegenerateShapes(t *testing.T) {
	base := Case{
		Seed: 9, C: 3, H: 6, W: 6, K: 4, KH: 3, KW: 3,
		Stride: 1, Pad: 1, ABits: 4, WBits: 4, Gran: 2,
		ADensity: 0.5, WDensity: 0.5, AtomDensity: 0.8,
		Mults: 8, Tiles: 2,
	}
	mut := []struct {
		name string
		mod  func(*Case)
	}{
		{"all-zero-acts", func(c *Case) { c.ADensity = 0 }},
		{"all-zero-weights", func(c *Case) { c.WDensity = 0 }},
		{"all-zero-both", func(c *Case) { c.ADensity, c.WDensity = 0, 0 }},
		{"pointwise-kernel", func(c *Case) { c.KH, c.KW = 1, 1; c.Pad = 0 }},
		{"single-channel", func(c *Case) { c.C = 1 }},
		{"single-pixel", func(c *Case) { c.H, c.W = 1, 1 }},
		{"max-bits", func(c *Case) { c.ABits, c.WBits = 8, 8 }},
		{"min-bits", func(c *Case) { c.ABits, c.WBits = 2, 2 }},
		{"mixed-precision", func(c *Case) { c.ABits, c.WBits = 8, 2 }},
		{"single-multiplier", func(c *Case) { c.Mults = 1 }},
		{"strided", func(c *Case) { c.Stride = 2 }},
		{"wide-pad", func(c *Case) { c.KH, c.KW, c.Pad = 1, 1, 2 }},
		{"tiled", func(c *Case) { c.TileW, c.TileH = 2, 3 }},
	}
	for idx, m := range mut {
		m := m
		cs := base
		cs.Index = idx
		m.mod(&cs)
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			for _, e := range All() {
				if mm := Check(e, cs); mm != nil {
					t.Errorf("%v", mm)
				}
			}
		})
	}
}

// TestZeroPaddingInvariance is the first metamorphic invariant: embedding
// the feature map in an m-wide zero border while shrinking the logical pad
// by m must not change any engine's output. refconv and the engine are both
// run on both formulations.
func TestZeroPaddingInvariance(t *testing.T) {
	cs := CaseAt(17, 4)
	cs.Stride = 1
	cs.Pad = 2
	f, w := cs.Operands()
	const m = 2
	embedded := tensor.NewFeatureMap(f.C, f.H+2*m, f.W+2*m, f.Bits)
	for c := 0; c < f.C; c++ {
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				embedded.Set(c, y+m, x+m, f.At(c, y, x))
			}
		}
	}
	csEmb := cs
	csEmb.Pad = cs.Pad - m
	if refW := refconv.Conv(f, w, cs.Stride, cs.Pad); !refW.Equal(refconv.Conv(embedded, w, csEmb.Stride, csEmb.Pad)) {
		t.Fatal("reference convolution itself is not padding-invariant")
	}
	for _, e := range All() {
		if e.Analytic {
			continue
		}
		r1 := e.Run(cs, f, w)
		r2 := e.Run(csEmb, embedded, w)
		if !r1.Output.Equal(r2.Output) {
			t.Errorf("%s: output changed under zero-border embedding (max |Δ| = %d)",
				e.Name, r1.Output.MaxAbsDiff(r2.Output))
		}
	}
}

// TestAtomRecombinationIdentity is the second metamorphic invariant: for
// every representable operand pair, the sum of atom partial products equals
// the full-precision product — decomposition loses nothing.
func TestAtomRecombinationIdentity(t *testing.T) {
	for _, gran := range []atom.Granularity{1, 2, 3} {
		for _, aBits := range []int{2, 3, 4, 8} {
			for _, wBits := range []int{2, 4, 8} {
				amax := int32(1)<<aBits - 1
				wmax := int32(1)<<(wBits-1) - 1
				for _, a := range []int32{0, 1, amax / 2, amax} {
					for _, wv := range []int32{-wmax, -1, 0, 1, wmax} {
						// Reconstruct is the inverse of Decompose…
						if got := atom.Reconstruct(atom.Decompose(a, aBits, gran)); got != a {
							t.Fatalf("gran %d: Reconstruct(Decompose(%d)) = %d", gran, a, got)
						}
						// …and the streamed multiply recombines to the
						// full-precision product.
						prod, _ := core.MultiplyStreaming(a, aBits, wv, wBits, gran)
						if prod != a*wv {
							t.Fatalf("gran %d bits %d/%d: MultiplyStreaming(%d, %d) = %d, want %d",
								gran, aBits, wBits, a, wv, prod, a*wv)
						}
					}
				}
			}
		}
	}
}

// TestCycleMonotonicityInDensity is the third metamorphic invariant:
// zeroing values out of a fixed tensor pair (nested masks, so the atom
// streams only ever shrink) must not increase CSC latency beyond the
// per-round pipeline-drain slack.
func TestCycleMonotonicityInDensity(t *testing.T) {
	g := workload.NewGen(workload.DeriveSeed(5, "monotonicity"))
	f := g.FeatureMapExact(6, 16, 16, 8, 2, 0.9, 0.8)
	w := g.KernelsExact(8, 6, 3, 3, 8, 2, 0.9, 0.8)
	cfg := core.Config{Gran: 2, Multiplier: 8}
	prev := int64(1 << 62)
	for _, keep := range []float64{1.0, 0.6, 0.3, 0.1, 0.0} {
		// Nested masking: each step zeroes a suffix of the non-zero
		// positions, so every stream is a subset of the previous one.
		masked := f.Clone()
		maskedW := w.Clone()
		for _, d := range [][]int32{masked.Data, maskedW.Data} {
			idx := nonZeroIndices(d)
			for _, i := range idx[int(float64(len(idx))*keep):] {
				d[i] = 0
			}
		}
		_, st := core.Convolve(masked, maskedW, 1, 1, cfg)
		// Slack: each (channel, round) boundary can add up to N-1 drain
		// steps, so allow a small constant on top of strict monotonicity.
		slack := int64(8 * f.C * (st.Rounds + 1))
		if int64(st.Steps) > prev+slack {
			t.Fatalf("keep=%.1f: steps %d exceed previous density's %d (+slack %d)", keep, st.Steps, prev, slack)
		}
		prev = int64(st.Steps)
	}
}

// buggyAtomizerEngine is the deliberately broken engine of the shrink
// demonstration: a CSC-style convolution whose atomizer drops activation
// atoms with magnitude 3 in the second slice (value bits [3:2] == 11) —
// exactly the kind of single-digit encoder bug the harness exists to catch.
func buggyAtomizerEngine() Engine {
	return Engine{
		Name: "csc-buggy",
		Run: func(cs Case, f *tensor.FeatureMap, w *tensor.KernelStack) Result {
			oh := tensor.ConvOutSize(f.H, w.KH, cs.Stride, cs.Pad)
			ow := tensor.ConvOutSize(f.W, w.KW, cs.Stride, cs.Pad)
			out := tensor.NewOutputMap(w.K, oh, ow)
			for k := 0; k < w.K; k++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						var acc int32
						for c := 0; c < f.C; c++ {
							for dy := 0; dy < w.KH; dy++ {
								iy := oy*cs.Stride - cs.Pad + dy
								if iy < 0 || iy >= f.H {
									continue
								}
								for dx := 0; dx < w.KW; dx++ {
									ix := ox*cs.Stride - cs.Pad + dx
									if ix < 0 || ix >= f.W {
										continue
									}
									for _, aa := range atom.Decompose(f.At(c, iy, ix), f.Bits, cs.Gran) {
										if aa.Mag == 3 && aa.Shift == 2 {
											continue // the injected bug
										}
										acc += aa.Term() * w.At(k, c, dy, dx)
									}
								}
							}
						}
						out.Set(k, oy, ox, acc)
					}
				}
			}
			return Result{Output: out, AtomMuls: -1}
		},
	}
}

// TestInjectedBugCaughtAndShrunk is the acceptance demonstration: the sweep
// catches the injected atomizer bug and the shrinker reduces the failing
// tensors to a reproducer no larger than 4×4 with a single non-zero value
// on each side.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	buggy := buggyAtomizerEngine()
	rep := SweepEngine(buggy, sweepSeed, sweepCases, true)
	if len(rep.Failures) == 0 {
		t.Fatal("sweep failed to catch the injected atomizer bug")
	}
	fail := rep.Failures[0]
	if fail.Shrunk == nil {
		t.Fatal("no shrunk reproducer attached")
	}
	s := *fail.Shrunk
	t.Logf("shrunk reproducer:\n%s", s.Repro())
	if s.F.C != 1 || s.W.K != 1 {
		t.Errorf("reproducer not single-channel/single-filter: C=%d K=%d", s.F.C, s.W.K)
	}
	if s.F.H > 4 || s.F.W > 4 || s.W.KH > 4 || s.W.KW > 4 {
		t.Errorf("reproducer larger than 4×4: A %dx%d, W %dx%d", s.F.H, s.F.W, s.W.KH, s.W.KW)
	}
	if nz := s.F.NonZero(); nz > 1 {
		t.Errorf("reproducer keeps %d non-zero activations, want 1", nz)
	}
	if nz := s.W.NonZero(); nz > 1 {
		t.Errorf("reproducer keeps %d non-zero weights, want 1", nz)
	}
	// The shrunk tensors must still fail — that is what makes them a
	// reproducer.
	cs := fail.Mismatch.Case
	cs.Stride, cs.Pad = s.Stride, s.Pad
	if CheckTensors(buggy, cs, s.F, s.W) == nil {
		t.Error("shrunk reproducer no longer fails")
	}
	// And the genuine engine passes on it.
	if csc, ok := ByName("csc"); !ok {
		t.Fatal("csc engine missing")
	} else if m := CheckTensors(csc, cs, s.F, s.W); m != nil {
		t.Errorf("real csc engine fails the reproducer: %v", m)
	}
}

// TestSweepDeterministic: two sweeps from the same seed must produce
// byte-identical reports.
func TestSweepDeterministic(t *testing.T) {
	e, ok := ByName("csc")
	if !ok {
		t.Fatal("csc engine missing")
	}
	a := SweepEngine(e, 23, 50, false)
	b := SweepEngine(e, 23, 50, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep reports differ across identical runs")
	}
}
