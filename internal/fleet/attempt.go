package fleet

// One dispatch attempt: POST a cell to one worker, classify the answer.
// Every payload that comes back is verified end to end before it may
// leave this file — the coordinator recomputes the fingerprint-bound
// sha256 digest over the received bytes and compares it to the worker's
// stamped digest AND to its own expected fingerprint, so a response
// corrupted in flight, a stale-schema worker, or a worker replaying
// another cell's payload is an integrity violation (quarantine), never a
// merge input.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ristretto/internal/experiments"
	"ristretto/internal/runner"
	"ristretto/internal/server"
)

// attemptKind classifies one dispatch attempt.
type attemptKind int

const (
	// attemptOK: verified payload in hand.
	attemptOK attemptKind = iota
	// attemptTerminal: deterministic cell failure (wire CellError) — the
	// same failure would reproduce on any worker, surface it.
	attemptTerminal
	// attemptRetry: the worker was unavailable, shed the request, or
	// answered garbage that looks like transport trouble; reassign the
	// cell and strike the worker.
	attemptRetry
	// attemptIntegrity: the response failed digest or fingerprint
	// verification. The offending worker has already been quarantined by
	// the time the result is returned.
	attemptIntegrity
	// attemptFatal: coordinator-level failure (request rejected) that no
	// reassignment can fix.
	attemptFatal
)

// attemptResult is one classified dispatch attempt.
type attemptResult struct {
	kind        attemptKind
	worker      int             // who answered (or failed to)
	hedge       bool            // this was the speculative attempt of a hedged pair
	payload     json.RawMessage // attemptOK only; digest-verified
	workerCache bool            // worker answered from its cell cache
	cellErr     *runner.WireCellError
	err         error
	retryAfter  time.Duration // server-suggested pause (Retry-After), 0 if none
	elapsed     time.Duration
}

// attempt runs one cell attempt against worker w under its own deadline.
// Integrity violations quarantine w before returning.
func (c *coord) attempt(ctx context.Context, w int, cell string) attemptResult {
	spec := c.specs[cell]
	fp := spec.Fingerprint()
	res := attemptResult{worker: w}
	body, _ := json.Marshal(server.CellRequest{
		Seed: spec.Seed, Scale: spec.Scale, Nets: spec.Nets, Cell: cell, DeadlineMS: c.cfg.DeadlineMS,
	})
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		c.cfg.Workers[w]+"/v1/cell", bytes.NewReader(body))
	if err != nil {
		res.kind, res.err = attemptFatal, err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		res.kind, res.err = attemptRetry, err // transport failure: worker gone or unreachable
		return res
	}
	defer resp.Body.Close()
	res.elapsed = time.Since(start)

	if resp.StatusCode == http.StatusOK {
		var cr server.CellResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			// Truncated or garbled mid-flight: indistinguishable from a
			// dropped connection, so strike-and-reassign rather than
			// quarantine.
			res.kind, res.err = attemptRetry, fmt.Errorf("undecodable worker response: %w", err)
			return res
		}
		if verr := verifyCell(fp, &cr); verr != nil {
			c.integrityDigestMismatch.Inc()
			c.quarantine(w, fmt.Errorf("cell %q: %w", cell, verr))
			res.kind, res.err = attemptIntegrity, verr
			return res
		}
		c.latency.Observe(res.elapsed.Milliseconds())
		res.kind, res.payload, res.workerCache = attemptOK, cr.Payload, cr.Cached
		return res
	}

	var werr workerError
	_ = json.NewDecoder(resp.Body).Decode(&werr)
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		// Shed, draining, transient fault or queue-deadline expiry: the
		// work itself is fine, try it elsewhere — after honoring any
		// server-suggested pause.
		res.kind = attemptRetry
		res.err = fmt.Errorf("worker answered %d: %s", resp.StatusCode, werr.Msg)
		res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		return res
	case http.StatusInternalServerError:
		if werr.CellError != nil {
			// Deterministic failure inside the experiment: retrying on
			// another worker reproduces it. Surface it with its replay
			// seed, exactly like a local keep-going run.
			werr.CellError.Key = cell
			res.kind, res.cellErr = attemptTerminal, werr.CellError
			return res
		}
		res.kind, res.err = attemptRetry, fmt.Errorf("worker answered 500: %s", werr.Msg)
		return res
	default:
		res.kind = attemptFatal
		res.err = fmt.Errorf("worker rejected cell: %d %s", resp.StatusCode, werr.Msg)
		return res
	}
}

// verifyCell checks a 200 response end to end against the coordinator's
// own expectation: the worker's fingerprint must match ours (version skew
// or in-flight fingerprint corruption), and the payload digest — bound to
// OUR fingerprint, recomputed locally — must match the worker's stamp
// (payload corrupted in flight, or a worker whose digest does not cover
// the bytes it sent).
func verifyCell(fp string, cr *server.CellResponse) error {
	if cr.Fingerprint != fp {
		return fmt.Errorf("fingerprint mismatch: worker %q, coordinator %q", cr.Fingerprint, fp)
	}
	if got := experiments.CellPayloadDigest(fp, cr.Payload); got != cr.PayloadSHA256 {
		return fmt.Errorf("payload digest mismatch: computed %s, worker stamped %s", got, cr.PayloadSHA256)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header's delay-seconds form (what
// ristretto-serve emits). Unparseable or absent values mean "no hint".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

const (
	// backoffBase is the first exponential backoff step when the server
	// gave no Retry-After hint.
	backoffBase = 100 * time.Millisecond
	// backoffCap bounds a single pause: a worker mid-drain advertising a
	// long Retry-After should not stall its coordinator loop for longer
	// than this — the cell has already been reassigned, only this
	// worker's next poll is delayed.
	backoffCap = 5 * time.Second
)

// retryBackoff computes how long a striking worker loop pauses before its
// next attempt: the server's Retry-After hint when present, else
// exponential in the strike count (100ms, 200ms, 400ms, ... capped), with
// deterministic ±25% jitter keyed on (seed, cell, strike) so retrying
// loops de-synchronize without wall-clock randomness.
func retryBackoff(strikes int, retryAfter time.Duration, seed int64, cell string) time.Duration {
	base := retryAfter
	if base <= 0 {
		if strikes < 1 {
			strikes = 1
		}
		shift := strikes - 1
		if shift > 6 {
			shift = 6
		}
		base = backoffBase << shift
	}
	if base > backoffCap {
		base = backoffCap
	}
	jitter := 0.75 + 0.5*detRoll(seed, "backoff", fmt.Sprintf("%s/%d", cell, strikes))
	return time.Duration(float64(base) * jitter)
}

// sleepCtx pauses for d, returning false if ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
