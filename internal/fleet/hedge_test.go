package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ristretto/internal/telemetry"
)

// slowWorker proxies a real worker, delaying every response by d.
func slowWorker(t *testing.T, backend *httptest.Server, d time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
		backend.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetHedgedStraggler: with one worker stalling every request well
// past the fixed hedge delay, the coordinator must race stragglers onto
// the fast worker, take the hedge's verified result, and stay
// byte-identical to serial.
func TestFleetHedgedStraggler(t *testing.T) {
	backend := newWorker(t, nil)
	slow := slowWorker(t, backend, 2*time.Second)
	fast := newWorker(t, nil)

	cfg := fleetCfg(slow.URL, fast.URL)
	cfg.HedgeAfter = 100 * time.Millisecond
	start := time.Now()
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("hedged sweep differs from serial:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.HedgesLaunched == 0 {
		t.Error("no hedges launched despite a 2s straggler and a 100ms hedge delay")
	}
	if rep.HedgeWins == 0 {
		t.Error("no hedge ever beat the 2s straggler")
	}
	hedged := 0
	for _, o := range rep.Outcomes {
		if o.Hedged {
			hedged++
		}
	}
	if hedged == 0 {
		t.Error("no outcome marked hedged")
	}
	// Sanity bound, generous for CI: without hedging the slow worker's
	// share alone would cost its cell count × 2s.
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Errorf("hedged sweep took %v", elapsed)
	}
}

// TestFleetHedgeDisabledByDefault: the zero-value HedgeAfter must never
// launch a speculative attempt, even with a straggler present.
func TestFleetHedgeDisabledByDefault(t *testing.T) {
	backend := newWorker(t, nil)
	slow := slowWorker(t, backend, 250*time.Millisecond)
	fast := newWorker(t, nil)

	cfg := fleetCfg(slow.URL, fast.URL)
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if render(rs) != serialGolden() {
		t.Fatal("sweep differs from serial")
	}
	if rep.HedgesLaunched != 0 {
		t.Errorf("HedgeAfter=0 launched %d hedges", rep.HedgesLaunched)
	}
}

// TestHedgeDelayResolution covers the three HedgeAfter regimes: disabled,
// fixed, and adaptive (which stays silent until the latency histogram has
// enough samples, then tracks 3×P95 with a floor).
func TestHedgeDelayResolution(t *testing.T) {
	mk := func(after time.Duration) *coord {
		r := telemetry.NewRegistry()
		return &coord{cfg: Config{HedgeAfter: after}, latency: r.Histogram("fleet.attempt_ms")}
	}

	if _, ok := mk(0).hedgeDelay(); ok {
		t.Error("HedgeAfter=0 resolved to hedging")
	}
	if d, ok := mk(150 * time.Millisecond).hedgeDelay(); !ok || d != 150*time.Millisecond {
		t.Errorf("fixed delay resolved to (%v, %v)", d, ok)
	}

	c := mk(HedgeAuto)
	if _, ok := c.hedgeDelay(); ok {
		t.Error("adaptive delay hedged with zero samples")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		c.latency.Observe(20)
	}
	d, ok := c.hedgeDelay()
	if !ok {
		t.Fatal("adaptive delay still silent with enough samples")
	}
	if d < hedgeFloor {
		t.Errorf("adaptive delay %v below floor %v", d, hedgeFloor)
	}
	if d > time.Second {
		t.Errorf("adaptive delay %v implausible for a 20ms P95", d)
	}
}

// TestRetryBackoff pins the backoff policy: server Retry-After hints are
// honored, the default grows exponentially from 100ms, everything is
// capped near 5s, and the ±25% jitter is deterministic in (seed, cell,
// strike).
func TestRetryBackoff(t *testing.T) {
	within := func(d, base time.Duration) bool {
		return d >= base*3/4 && d <= base*5/4
	}
	if d := retryBackoff(1, 2*time.Second, 1, "table4"); !within(d, 2*time.Second) {
		t.Errorf("Retry-After 2s → %v, want 2s ±25%%", d)
	}
	if d := retryBackoff(1, 0, 1, "table4"); !within(d, backoffBase) {
		t.Errorf("strike 1 → %v, want %v ±25%%", d, backoffBase)
	}
	if d := retryBackoff(3, 0, 1, "table4"); !within(d, 4*backoffBase) {
		t.Errorf("strike 3 → %v, want %v ±25%%", d, 4*backoffBase)
	}
	if d := retryBackoff(20, 0, 1, "table4"); d > backoffCap*5/4 {
		t.Errorf("strike 20 → %v, exceeds cap %v (+jitter)", d, backoffCap)
	}
	if d := retryBackoff(2, time.Hour, 1, "table4"); d > backoffCap*5/4 {
		t.Errorf("Retry-After 1h → %v, want capped at %v (+jitter)", d, backoffCap)
	}
	if a, b := retryBackoff(2, 0, 7, "figure9"), retryBackoff(2, 0, 7, "figure9"); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	if a, b := retryBackoff(2, 0, 7, "figure9"), retryBackoff(2, 0, 7, "table4"); a == b {
		t.Log("jitter collision across cells (possible but unlikely)")
	}
}

// TestSleepCtxCancellation: a backoff sleep must abort promptly when the
// sweep is cancelled, not run out its full duration.
func TestSleepCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if sleepCtx(ctx, 10*time.Second) {
		t.Error("cancelled sleep reported completion")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled sleep took %v", elapsed)
	}
	if !sleepCtx(context.Background(), time.Millisecond) {
		t.Error("completed sleep reported cancellation")
	}
}

// TestParseRetryAfter covers the delay-seconds form and the garbage the
// parser must shrug off.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"1.5", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestFleetRetryAfterHonored: a worker shedding load with 429+Retry-After
// is retried — after the hinted delay — and the sweep still completes
// byte-identical. The hint keeps the retry from hammering the worker
// faster than it asked.
func TestFleetRetryAfterHonored(t *testing.T) {
	backend := newWorker(t, nil)
	var shed atomic.Int64
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed the first two requests, then behave.
		if shed.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		backend.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(shedding.Close)

	cfg := fleetCfg(shedding.URL)
	cfg.WorkerStrikes = 10
	start := time.Now()
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if render(rs) != serialGolden() {
		t.Fatal("sweep differs from serial after load shedding")
	}
	if rep.Reassigned == 0 {
		t.Error("shed requests recorded no retries")
	}
	// Two sheds with Retry-After: 1 (±25% jitter) must cost at least ~1.5s
	// of honored backoff on the single worker.
	if elapsed := time.Since(start); elapsed < 1400*time.Millisecond {
		t.Errorf("sweep finished in %v — Retry-After hints not honored", elapsed)
	}
}
