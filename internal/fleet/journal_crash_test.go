package fleet

// The fleet journal's crash-consistency matrix: every byte truncation
// point of a journal with three verified completions is replayed through a
// resume, which must serve each cell either not at all (re-dispatch) or
// byte-identical to what was journaled — never a hybrid, and never losing
// a record older than one that survived (appends are fsynced in order).
// The cell cache and checkpoint journal matrices live in
// internal/crashmatrix; this one is here because openJournal is
// unexported.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ristretto/internal/crashmatrix"
)

func TestFleetJournalTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.journal")
	j, _ := newJournal(t, path, false)
	cells := []struct {
		name, fp string
		payload  json.RawMessage
	}{
		{"cell-a", "aa00000000000000000000000000000000000000000000000000000000000000", json.RawMessage(`[{"id":"A","rows":[["1"]]}]`)},
		{"cell-b", "bb00000000000000000000000000000000000000000000000000000000000000", json.RawMessage(`[{"id":"B","rows":[["2"]]}]`)},
		{"cell-c", "cc00000000000000000000000000000000000000000000000000000000000000", json.RawMessage(`[{"id":"C","rows":[["3"]]}]`)},
	}
	for _, c := range cells {
		if err := j.complete(c.name, c.fp, c.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	replayPath := filepath.Join(dir, "replay.journal")
	err = crashmatrix.Replay(data, func(n int, prefix []byte) error {
		if err := os.WriteFile(replayPath, prefix, 0o644); err != nil {
			return err
		}
		j2, _ := newJournal(t, replayPath, true)
		seenPresent, missing := false, 0
		for i := len(cells) - 1; i >= 0; i-- { // newest first: absences must be a suffix
			c := cells[i]
			fp, payload, ok := j2.lookup(c.name)
			if !ok {
				if seenPresent {
					return fmt.Errorf("%s missing while a newer completion survived", c.name)
				}
				missing++
				continue
			}
			seenPresent = true
			if fp != c.fp || !bytes.Equal(payload, c.payload) {
				return fmt.Errorf("%s resumed as a hybrid: fp=%s payload=%s", c.name, fp, payload)
			}
		}
		if n == len(data) && missing > 0 {
			return fmt.Errorf("intact journal lost %d completions", missing)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
