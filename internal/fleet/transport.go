package fleet

// The coordinator's HTTP plumbing. The old coarse http.Client{Timeout}
// bounded connect, queue and compute with one knob; the tuned transport
// separates them — fast connect/TLS/header failure detection, pooled
// keep-alive connections per worker — and leaves the end-to-end bound to
// the per-attempt context (Config.RequestTimeout), which is what hedging
// and cancellation need to cut a losing attempt loose mid-flight.

import (
	"net"
	"net/http"
	"time"

	"ristretto/internal/faultinject"
)

const (
	// dialTimeout bounds TCP connect to a worker: a black-holed or dead
	// address fails in seconds, not in the per-attempt budget.
	dialTimeout = 5 * time.Second
	// tlsTimeout bounds the TLS handshake (workers are usually plain HTTP;
	// this only matters behind a terminating proxy).
	tlsTimeout = 5 * time.Second
	// idleConnTimeout recycles pooled keep-alive connections.
	idleConnTimeout = 90 * time.Second
	// maxIdlePerWorker keeps a few warm connections per worker — dispatch,
	// hedge and audit traffic to one host reuse them instead of
	// re-handshaking.
	maxIdlePerWorker = 8
)

// newClient builds the coordinator's HTTP client for cfg: a tuned
// transport wrapped (when a net-fault spec is configured) in the
// fault-injecting RoundTripper. No client-level Timeout — each attempt
// carries its own context deadline, so a hedge can outlive the primary it
// races.
func newClient(cfg *Config) *http.Client {
	base := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   dialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: tlsTimeout,
		// Headers arrive only after the worker computes the cell, so the
		// header timeout IS the compute bound — align it with the
		// per-attempt budget rather than racing it.
		ResponseHeaderTimeout: cfg.RequestTimeout,
		MaxIdleConns:          8 * maxIdlePerWorker,
		MaxIdleConnsPerHost:   maxIdlePerWorker,
		IdleConnTimeout:       idleConnTimeout,
		ExpectContinueTimeout: time.Second,
	}
	return &http.Client{Transport: faultinject.NewTransport(cfg.NetFault, base)}
}

// wrapClient applies the net-fault transport to a caller-supplied client
// (tests inject httptest clients) without mutating the original.
func wrapClient(client *http.Client, spec faultinject.NetSpec) *http.Client {
	if spec.Zero() {
		return client
	}
	cp := *client
	cp.Transport = faultinject.NewTransport(spec, client.Transport)
	return &cp
}
