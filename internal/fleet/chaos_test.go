package fleet

// Chaos suite: real worker processes (the test binary re-exec'd into
// worker mode), real signals. The property under test is the distributed
// determinism guarantee under failure — killing a worker mid-sweep must
// not change a single output byte, and a remote panic must come back
// replayable.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/runner"
	"ristretto/internal/server"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

const chaosWorkerEnv = "RISTRETTO_FLEET_CHAOS_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(chaosWorkerEnv) == "1" {
		runChaosWorker()
		return
	}
	os.Exit(m.Run())
}

// runChaosWorker serves /v1/cell until killed, announcing its address on
// stdout. RISTRETTO_FLEET_FAULT injects a fault schedule into the worker.
func runChaosWorker() {
	cfg := server.Config{Registry: telemetry.NewRegistry()}
	if spec := os.Getenv("RISTRETTO_FLEET_FAULT"); spec != "" {
		s, err := faultinject.ParseSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos worker:", err)
			os.Exit(1)
		}
		cfg.Fault = faultinject.New(s)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker:", err)
		os.Exit(1)
	}
	fmt.Printf("CHAOS_WORKER %s\n", ln.Addr())
	if err := http.Serve(ln, server.New(cfg).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker:", err)
		os.Exit(1)
	}
}

// spawnChaosWorker starts one worker process and returns its URL and pid.
func spawnChaosWorker(t *testing.T, extraEnv ...string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), chaosWorkerEnv+"=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "CHAOS_WORKER "); ok {
				addrCh <- addr
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatal("worker exited before announcing its address")
		}
		return "http://" + addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not announce its address within 30s")
	}
	panic("unreachable")
}

// TestFleetChaosSIGKILLWorker: three real worker processes, one of them
// SIGKILLed mid-sweep. The coordinator must reassign its in-flight and
// queued cells to the survivors and still produce a manifest
// byte-identical to the serial run.
func TestFleetChaosSIGKILLWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos sweep in -short mode")
	}
	var workers []string
	var victims []*exec.Cmd
	for i := 0; i < 3; i++ {
		url, cmd := spawnChaosWorker(t)
		workers = append(workers, url)
		victims = append(victims, cmd)
	}

	// SIGKILL worker 0 well inside the sweep: a full 22-cell run takes
	// seconds, so 500ms lands with cells queued and usually in flight.
	killed := make(chan error, 1)
	go func() {
		time.Sleep(500 * time.Millisecond)
		killed <- syscall.Kill(victims[0].Process.Pid, syscall.SIGKILL)
	}()

	rs, rep, err := Run(context.Background(), fleetCfg(workers...))
	if err != nil {
		t.Fatal(err)
	}
	if kerr := <-killed; kerr != nil {
		t.Fatalf("SIGKILL failed: %v", kerr)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("output differs from serial run after SIGKILL:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.Failures != 0 {
		t.Fatalf("%d cells reported failed; a killed worker must not surface failures", rep.Failures)
	}
	if rep.RetiredWorkers != 1 {
		t.Errorf("retired %d workers, want exactly the killed one", rep.RetiredWorkers)
	}
	if rep.Reassigned == 0 {
		t.Error("no cells reassigned after the kill")
	}
	for _, o := range rep.Outcomes {
		if o.Worker == -1 {
			t.Errorf("cell %q claims a local cache hit in an uncached run", o.Cell)
		}
	}
}

// TestFleetRemotePanicReproducesLocally is the satellite regression for
// the wire-format replay-seed gap: a panic on a remote worker must come
// back with a replay seed that (1) uniquely names the failed cell under
// the local AllChecked derivation and (2) drives a local replay of that
// exact cell to the same classification. Before WireCellError, remote
// failures lost their seeds and a local replay could not target the
// failed cell.
func TestFleetRemotePanicReproducesLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	url, _ := spawnChaosWorker(t, "RISTRETTO_FLEET_FAULT=seed=7,panic=1")
	rs, rep, err := Run(context.Background(), fleetCfg(url))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != rep.Cells {
		t.Fatalf("%d/%d cells failed; the always-panic worker should fail every cell", rep.Failures, rep.Cells)
	}

	out := rep.Outcomes[0]
	if out.Err == nil {
		t.Fatal("first outcome carries no wire error")
	}
	ce := out.Err.CellError()
	if ce.Stack == nil {
		t.Fatal("remote panic lost its classification crossing the wire")
	}
	if ce.Seed == 0 {
		t.Fatal("remote panic carries no replay seed")
	}

	// (1) The seed uniquely resolves to the failed cell under the local
	// derivation — the property that makes a replay target the right work.
	var resolved []string
	for _, k := range experiments.CellKeys() {
		if workload.DeriveSeed(testSeed, "job", k) == ce.Seed {
			resolved = append(resolved, k)
		}
	}
	if len(resolved) != 1 || resolved[0] != out.Cell {
		t.Fatalf("replay seed %d resolves to %v, want exactly [%s]", ce.Seed, resolved, out.Cell)
	}

	// (2) A local replay of that cell reproduces the same failure shape:
	// same derived seed, panic classification, same cell identity.
	b := experiments.NewQuickBench(testSeed, testScale)
	b.Nets = append([]string(nil), testNets...)
	_, lerr := b.RunCellChecked(out.Cell, experiments.RunOptions{
		Fault: func(cell, attempt int) error { panic("replay: injected") },
	})
	var local *runner.CellError
	if !asCellError(lerr, &local) {
		t.Fatalf("local replay returned %T (%v), want *runner.CellError", lerr, lerr)
	}
	if local.Seed != ce.Seed {
		t.Fatalf("local replay derives seed %d, remote reported %d: wire format broke the round trip",
			local.Seed, ce.Seed)
	}
	if local.Stack == nil {
		t.Fatal("local replay not classified as a panic")
	}

	// The placeholder Result in the merged output mirrors a local
	// keep-going run's shape for the same cell.
	if rs[0].ID != "Job "+out.Cell || rs[0].Err == nil {
		t.Fatalf("placeholder result %+v does not carry the failure", rs[0])
	}
}
