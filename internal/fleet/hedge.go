package fleet

// Hedged dispatch: a cell stuck on a straggling worker is speculatively
// re-dispatched to a second worker after a delay; the first VERIFIED
// result wins and the loser's attempt is cancelled mid-flight (the
// per-attempt context makes that cheap). The delay is either fixed
// (Config.HedgeAfter > 0) or derived from the fleet's own attempt-latency
// telemetry (HedgeAuto): 3× the observed P95, so hedges fire only for
// genuine outliers, not for the natural spread. Determinism is untouched:
// both attempts compute the same pure function, and whichever answer wins
// passed the same digest verification.

import (
	"context"
	"time"
)

// HedgeAuto is the Config.HedgeAfter sentinel selecting the adaptive,
// telemetry-derived hedge delay.
const HedgeAuto time.Duration = -1

const (
	// hedgeMinSamples is how many successful attempts the latency
	// histogram must hold before the adaptive delay trusts its P95.
	hedgeMinSamples = 5
	// hedgeFloor is the minimum adaptive delay — hedging faster than this
	// just doubles load on a healthy fleet.
	hedgeFloor = 50 * time.Millisecond
	// hedgeP95Factor scales the observed P95 into the hedge delay.
	hedgeP95Factor = 3
)

// hedgeDelay resolves the current hedge delay. ok=false means "do not
// hedge this attempt" — hedging disabled, or the adaptive estimator has
// too few samples to tell a straggler from normal spread.
func (c *coord) hedgeDelay() (time.Duration, bool) {
	switch {
	case c.cfg.HedgeAfter == 0:
		return 0, false
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter, true
	}
	if c.latency.Count() < hedgeMinSamples {
		return 0, false
	}
	d := time.Duration(hedgeP95Factor*c.latency.Quantile(0.95)) * time.Millisecond
	if d < hedgeFloor {
		d = hedgeFloor
	}
	return d, true
}

// runCell executes one cell from worker w's perspective: a primary
// attempt, plus — once the hedge delay expires with the primary still in
// flight and another live worker available — one speculative attempt.
// The first decisive result (verified payload or terminal deterministic
// failure) wins and cancels the other side. Integrity violations
// quarantine the offender (inside attempt) and the race keeps waiting for
// the surviving side.
func (c *coord) runCell(ctx context.Context, w int, cell string) attemptResult {
	delay, hedging := c.hedgeDelay()
	if !hedging {
		return c.attempt(ctx, w, cell)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, 2)
	go func() { results <- c.attempt(actx, w, cell) }()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	inflight := 1
	launched := false
	var fallback *attemptResult
	for inflight > 0 {
		select {
		case <-timer.C:
			if launched {
				continue
			}
			v := c.queue.shortestAlive(w)
			if v < 0 {
				continue // no second worker; keep waiting on the primary
			}
			launched = true
			inflight++
			c.hedgeLaunched.Inc()
			c.cfg.Logf("fleet: hedging cell %q: worker %d straggling past %v, racing worker %d", cell, w, delay, v)
			go func() {
				a := c.attempt(actx, v, cell)
				a.hedge = true
				results <- a
			}()
		case a := <-results:
			inflight--
			switch a.kind {
			case attemptOK, attemptTerminal:
				if a.hedge {
					c.hedgeWins.Inc()
				}
				if inflight > 0 {
					c.hedgeCancelled.Inc()
					cancel() // cut the loser loose mid-flight
				}
				return a
			case attemptFatal:
				cancel()
				return a
			default:
				// attemptRetry or attemptIntegrity: remember the primary's
				// verdict (it drives the worker loop's strike/retire
				// decision) and wait for whatever is still in flight.
				if !a.hedge || fallback == nil {
					fallback = &a
				}
			}
		}
	}
	if fallback != nil {
		return *fallback
	}
	return attemptResult{kind: attemptRetry, worker: w}
}
