package fleet

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ristretto/internal/experiments"
	"ristretto/internal/telemetry"
)

const testBenchFP = "seed=1 scale=32 nets=AlexNet"

func newJournal(t *testing.T, path string, resume bool) (*journal, *telemetry.Registry) {
	t.Helper()
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	j, err := openJournal(nil, path, testBenchFP, resume, r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.close() })
	return j, r
}

// TestJournalResumeSkipsCompleted is the crash-resume core: completions
// journaled before a kill are served on resume, in-flight assignments are
// not.
func TestJournalResumeSkipsCompleted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, _ := newJournal(t, path, false)
	if j.resumable() {
		t.Fatal("fresh journal claims resume")
	}
	payloadA := json.RawMessage(`[{"id":"A","rows":[["1"]]}]`)
	fpA := "aa00000000000000000000000000000000000000000000000000000000000000"
	if err := j.assign("table4", 0); err != nil {
		t.Fatal(err)
	}
	if err := j.complete("table4", fpA, payloadA); err != nil {
		t.Fatal(err)
	}
	if err := j.assign("figure1", 1); err != nil { // in flight at the "kill"
		t.Fatal(err)
	}
	j.close() // the kill: no Close-time state matters, every record is already durable

	j2, r2 := newJournal(t, path, true)
	if !j2.resumable() {
		t.Fatal("journal with valid header did not resume")
	}
	fp, payload, ok := j2.lookup("table4")
	if !ok || fp != fpA || string(payload) != string(payloadA) {
		t.Fatalf("lookup(table4) = (%q, %q, %v)", fp, payload, ok)
	}
	if _, _, ok := j2.lookup("figure1"); ok {
		t.Fatal("assigned-but-incomplete cell served as complete")
	}
	snap := r2.Snapshot()
	if snap.Counters["fleet.journal.resumed_cells"] != 1 {
		t.Fatalf("resumed_cells = %d, want 1", snap.Counters["fleet.journal.resumed_cells"])
	}
}

// TestJournalFreshRunTruncates: without resume, history is discarded and
// a new header written.
func TestJournalFreshRunTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, _ := newJournal(t, path, false)
	j.complete("table4", "ff00", json.RawMessage(`[]`))
	j.close()

	j2, _ := newJournal(t, path, false)
	if _, _, ok := j2.lookup("table4"); ok {
		t.Fatal("fresh run served stale completion")
	}
}

// TestJournalFingerprintMismatchRejected: a journal written for a
// different workload must refuse to resume, loudly.
func TestJournalFingerprintMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	r := telemetry.NewRegistry()
	j, err := openJournal(nil, path, "seed=2 scale=64 nets=all", false, r)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	if _, err := openJournal(nil, path, testBenchFP, true, r); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("workload mismatch resumed: %v", err)
	}
}

// TestJournalCorruptRecordsSkipped: torn lines, bad CRCs and — the
// end-to-end case — a record whose crc is fine but whose payload digest
// does not verify are all skipped, never served.
func TestJournalCorruptRecordsSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, _ := newJournal(t, path, false)
	goodPayload := json.RawMessage(`[{"id":"good"}]`)
	goodFP := "cc00000000000000000000000000000000000000000000000000000000000000"
	j.complete("table4", goodFP, goodPayload)
	j.close()

	// Append by hand: a torn line, a crc-valid record whose digest lies
	// (payload swapped after digest computation), and a bit-flipped line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	lying := journalRec{
		Kind: "complete", Cell: "figure1", Fingerprint: goodFP,
		Digest:  experiments.CellPayloadDigest(goodFP, []byte(`["original"]`)),
		Payload: json.RawMessage(`["swapped"]`),
	}
	body, _ := json.Marshal(lying)
	fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE(body), body)
	fmt.Fprintf(f, "deadbeef {\"kind\":\"complete\",\"cell\":\"figure12\"}\n") // crc mismatch
	fmt.Fprintf(f, "%08x {\"kind\":\"comp", crc32.ChecksumIEEE(body))          // torn, no newline
	f.Close()

	j2, r2 := newJournal(t, path, true)
	if _, _, ok := j2.lookup("figure1"); ok {
		t.Fatal("digest-lying record served")
	}
	if _, _, ok := j2.lookup("figure12"); ok {
		t.Fatal("crc-corrupt record served")
	}
	if _, payload, ok := j2.lookup("table4"); !ok || string(payload) != string(goodPayload) {
		t.Fatal("valid record lost amid corruption")
	}
	if j2.corruptRecords() != 3 {
		t.Fatalf("corruptRecords = %d, want 3", j2.corruptRecords())
	}
	if snap := r2.Snapshot(); snap.Counters["fleet.journal.corrupt"] != 3 {
		t.Fatalf("fleet.journal.corrupt = %d, want 3", snap.Counters["fleet.journal.corrupt"])
	}
}

// TestJournalMissingFileResumesFresh: -resume against a journal that does
// not exist yet starts a fresh sweep instead of failing.
func TestJournalMissingFileResumesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.journal")
	j, _ := newJournal(t, path, true)
	if j.resumable() {
		t.Fatal("missing file claims resume")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("journal file not created")
	}
}
