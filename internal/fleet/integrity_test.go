package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/server"
)

// hostOf strips the scheme from an httptest URL, yielding the host:port
// a faultinject.NetSpec scopes on.
func hostOf(url string) string {
	return strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
}

func readLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return strings.Split(strings.TrimRight(string(data), "\n"), "\n"), nil
}

func writeLines(path string, lines []string) error {
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// TestFleetCorruptResponseQuarantined is the end-to-end integrity gate
// in-process: with every response from one worker corrupted in flight
// (seed-deterministic digit rewrite — JSON stays valid, digest breaks),
// the coordinator must quarantine that worker on first contact, recompute
// its cells on the survivor, and still merge byte-identical output. No
// corrupted payload may reach the merge or the cache.
func TestFleetCorruptResponseQuarantined(t *testing.T) {
	victim, honest := newWorker(t, nil), newWorker(t, nil)
	cacheDir := filepath.Join(t.TempDir(), "cells")

	cfg := fleetCfg(victim.URL, honest.URL)
	cfg.CacheDir = cacheDir
	cfg.NetFault = faultinject.NetSpec{Seed: 9, Corrupt: 1, Host: hostOf(victim.URL)}
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("corrupted responses leaked into the merge:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.DigestMismatches == 0 {
		t.Error("no digest mismatches recorded despite corrupt=1 on the victim")
	}
	if rep.Quarantined != 1 {
		t.Errorf("quarantined %d workers, want exactly the victim", rep.Quarantined)
	}
	if rep.RetiredWorkers != 1 {
		t.Errorf("retired %d workers, want 1", rep.RetiredWorkers)
	}
	for _, o := range rep.Outcomes {
		if o.Worker == 0 {
			t.Errorf("cell %q attributed to the quarantined worker", o.Cell)
		}
	}

	// The cache must hold only verified payloads: a warm re-run against a
	// fault-free fleet serves every cell from disk, still byte-identical.
	cfg2 := fleetCfg(honest.URL)
	cfg2.CacheDir = cacheDir
	warm, warmRep, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if render(warm) != serialGolden() {
		t.Fatal("cache poisoned: warm run differs from serial golden")
	}
	if warmRep.LocalCacheHits != warmRep.Cells {
		t.Errorf("warm run hit %d/%d — corrupted-run cells missing from cache", warmRep.LocalCacheHits, warmRep.Cells)
	}
}

// lyingWorker proxies a real worker but rewrites one digit of every cell
// payload AND re-stamps a self-consistent digest — the Byzantine case the
// wire digest cannot catch, only re-execution can.
func lyingWorker(t *testing.T, backend *httptest.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		backend.Config.Handler.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		var cr server.CellResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
			t.Errorf("proxy: undecodable backend response: %v", err)
			return
		}
		mutated := append([]byte(nil), cr.Payload...)
		for i, b := range mutated {
			if b >= '0' && b <= '9' {
				mutated[i] = '0' + (b-'0'+1)%10
				break
			}
		}
		cr.Payload = mutated
		cr.PayloadSHA256 = experiments.CellPayloadDigest(cr.Fingerprint, mutated) // the lie: digest covers the wrong bytes
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&cr)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetLyingWorkerCaughtByAudit: a worker returning wrong payloads
// with self-consistent digests passes wire verification — the audit
// sampler must catch it by re-execution, arbitrate against a local
// recomputation, quarantine the liar, and keep the merged output
// byte-identical to serial.
func TestFleetLyingWorkerCaughtByAudit(t *testing.T) {
	backend := newWorker(t, nil)
	liar := lyingWorker(t, backend)
	honest := newWorker(t, nil)

	cfg := fleetCfg(liar.URL, honest.URL)
	cfg.AuditFraction = 1 // audit everything: the liar must not survive its first audited cell
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("lying worker's payloads reached the merge:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.Audits == 0 {
		t.Fatal("no audits ran despite AuditFraction=1")
	}
	if rep.AuditMismatches == 0 {
		t.Error("audits never caught the lying worker")
	}
	if rep.Quarantined == 0 {
		t.Error("lying worker was not quarantined")
	}
	audited := false
	for _, o := range rep.Outcomes {
		if o.Audited {
			audited = true
		}
	}
	if !audited {
		t.Error("no outcome is marked audited")
	}
}

// TestFleetAuditCleanFleet: on an honest fleet, audits agree and change
// nothing — no mismatches, no quarantine, byte-identical output.
func TestFleetAuditCleanFleet(t *testing.T) {
	w0, w1 := newWorker(t, nil), newWorker(t, nil)
	cfg := fleetCfg(w0.URL, w1.URL)
	cfg.AuditFraction = 0.5
	rs, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("audited sweep differs from serial:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.Audits == 0 {
		t.Error("AuditFraction=0.5 selected no cells across the sweep")
	}
	if rep.AuditMismatches != 0 || rep.Quarantined != 0 {
		t.Errorf("honest fleet flagged: %d mismatches, %d quarantined", rep.AuditMismatches, rep.Quarantined)
	}
}

// TestAuditSelectionDeterministic: the sampler's choices depend only on
// (seed, cell) — two coordinators with the same seed select identically,
// a different seed selects differently somewhere.
func TestAuditSelectionDeterministic(t *testing.T) {
	mk := func(seed int64) map[string]bool {
		c := &coord{cfg: Config{Seed: seed, AuditFraction: 0.5}}
		sel := map[string]bool{}
		for _, k := range experiments.CellKeys() {
			sel[k] = c.auditSelected(k)
		}
		return sel
	}
	a, b := mk(7), mk(7)
	some, all := false, true
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("cell %q selection differs across identical coordinators", k)
		}
		if a[k] {
			some = true
		} else {
			all = false
		}
	}
	if !some || all {
		t.Fatalf("fraction 0.5 selected some=%v all=%v; want a proper subset", some, all)
	}
	diff := false
	for k, v := range mk(8) {
		if v != a[k] {
			diff = true
		}
	}
	if !diff {
		t.Error("seed change did not move the audit sample")
	}
}

// TestFleetJournalResume: a sweep journaled to disk resumes entirely from
// the journal — byte-identical output with zero dispatches, even against
// a fleet that no longer exists.
func TestFleetJournalResume(t *testing.T) {
	w := newWorker(t, nil)
	path := filepath.Join(t.TempDir(), "fleet.journal")

	cfg := fleetCfg(w.URL)
	cfg.JournalPath = path
	first, firstRep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if render(first) != serialGolden() {
		t.Fatal("journaled run differs from serial")
	}
	if firstRep.ResumedCells != 0 {
		t.Fatalf("fresh run claims %d resumed cells", firstRep.ResumedCells)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	cfg2 := fleetCfg(deadURL) // nothing to dispatch, so the dead fleet is never contacted
	cfg2.JournalPath = path
	cfg2.Resume = true
	resumed, rep2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(resumed); got != serialGolden() {
		t.Fatalf("resumed output differs from serial:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep2.ResumedCells != rep2.Cells || rep2.Computed != 0 {
		t.Fatalf("resume: %d/%d resumed, %d computed; want all/0", rep2.ResumedCells, rep2.Cells, rep2.Computed)
	}
	for _, o := range rep2.Outcomes {
		if !o.Resumed || o.Worker != -1 {
			t.Fatalf("outcome %+v not marked as journal-resumed", o)
		}
	}
}

// TestFleetJournalPartialResume: a journal holding only part of the sweep
// (the mid-kill shape) resumes the completed cells and dispatches only
// the remainder.
func TestFleetJournalPartialResume(t *testing.T) {
	w := newWorker(t, nil)
	path := filepath.Join(t.TempDir(), "fleet.journal")

	// Build the partial journal out-of-band: a full journaled run, then
	// rewrite it keeping the header and the first 5 completions — byte
	// surgery a real SIGKILL would perform by stopping the appender.
	cfg := fleetCfg(w.URL)
	cfg.JournalPath = path
	if _, _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, completes := []string{}, 0
	for _, line := range data {
		rec, ok := decodeJournalLine(line)
		if !ok {
			continue
		}
		if rec.Kind == "complete" {
			if completes == 5 {
				continue
			}
			completes++
		}
		kept = append(kept, line)
	}
	if err := writeLines(path, kept); err != nil {
		t.Fatal(err)
	}

	cfg2 := fleetCfg(w.URL)
	cfg2.JournalPath = path
	cfg2.Resume = true
	rs, rep, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("partial resume differs from serial:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.ResumedCells != 5 {
		t.Errorf("resumed %d cells, want 5", rep.ResumedCells)
	}
	if rep.Computed != rep.Cells-5 {
		t.Errorf("computed %d cells, want %d", rep.Computed, rep.Cells-5)
	}
}
