package fleet

import (
	"sync"

	"ristretto/internal/telemetry"
)

// stealQueue is the coordinator's work-stealing dispatch structure: one
// deque of cell keys per worker. A worker pops from the front of its own
// deque; an idle worker steals from the back of the longest other deque,
// so the tail of a skewed initial partition migrates to whoever is free.
// Cells in flight on a failing worker are pushed back through reassign,
// and a retired worker's whole deque is drained to the survivors —
// between the two, every cell either completes or is reported unassigned
// when the last worker dies.
//
// All transitions are guarded by one mutex with a condition variable:
// idle workers block in next until a cell arrives (steal, reassign,
// retire spill) or the sweep finishes.
type stealQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	deques  [][]string
	dead    []bool
	pending int // cells not yet completed or failed

	localPops *telemetry.Counter
	steals    *telemetry.Counter
	reassigns *telemetry.Counter
	retired   *telemetry.Counter
}

// newStealQueue partitions cells over workers in contiguous blocks —
// deliberately naive, because cell costs are skewed and the stealing is
// what balances the load (the fleet tests assert steals actually happen).
func newStealQueue(workers int, cells []string, r *telemetry.Registry) *stealQueue {
	q := &stealQueue{
		deques:    make([][]string, workers),
		dead:      make([]bool, workers),
		pending:   len(cells),
		localPops: r.Counter("fleet.steal.local_pops"),
		steals:    r.Counter("fleet.steal.steals"),
		reassigns: r.Counter("fleet.steal.reassigned"),
		retired:   r.Counter("fleet.steal.workers_retired"),
	}
	q.cond = sync.NewCond(&q.mu)
	per := (len(cells) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if lo > len(cells) {
			lo = len(cells)
		}
		if hi > len(cells) {
			hi = len(cells)
		}
		q.deques[w] = append([]string(nil), cells[lo:hi]...)
	}
	return q
}

// next returns the next cell for worker w: the front of its own deque, or
// — when that is empty — the back of the longest other deque (a steal).
// It blocks while no cell is available but the sweep is unfinished, and
// returns ok=false once every cell has completed (or w was retired).
func (q *stealQueue) next(w int) (cell string, stolen bool, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.pending == 0 || q.dead[w] {
			return "", false, false
		}
		if len(q.deques[w]) > 0 {
			cell = q.deques[w][0]
			q.deques[w] = q.deques[w][1:]
			q.localPops.Inc()
			return cell, false, true
		}
		if v := q.longest(w); v >= 0 {
			d := q.deques[v]
			cell = d[len(d)-1]
			q.deques[v] = d[:len(d)-1]
			q.steals.Inc()
			return cell, true, true
		}
		// Nothing queued anywhere, but cells are in flight on other
		// workers; one may come back via reassign, or the sweep may end.
		q.cond.Wait()
	}
}

// longest returns the index of the longest non-empty deque other than w,
// or -1 when every other deque is empty.
func (q *stealQueue) longest(w int) int {
	best, bestLen := -1, 0
	for v := range q.deques {
		if v == w {
			continue
		}
		if l := len(q.deques[v]); l > bestLen {
			best, bestLen = v, l
		}
	}
	return best
}

// complete marks one cell finished (success or terminal failure) and
// wakes idle workers when the sweep is done.
func (q *stealQueue) complete() {
	q.mu.Lock()
	q.pending--
	done := q.pending == 0
	q.mu.Unlock()
	if done {
		q.cond.Broadcast()
	}
}

// reassign puts a cell whose attempt failed retryably back into play, at
// the front of the shortest live deque other than from (falling back to
// from's own deque when it is the only live worker left).
func (q *stealQueue) reassign(cell string, from int) {
	q.mu.Lock()
	target := q.shortestAlive(from)
	if target < 0 {
		target = from
	}
	q.deques[target] = append([]string{cell}, q.deques[target]...)
	q.reassigns.Inc()
	q.mu.Unlock()
	q.cond.Broadcast()
}

// shortestAlive returns the live worker (other than `exclude`) with the
// shortest deque, or -1 when none is left.
func (q *stealQueue) shortestAlive(exclude int) int {
	best, bestLen := -1, int(^uint(0)>>1)
	for v := range q.deques {
		if v == exclude || q.dead[v] {
			continue
		}
		if l := len(q.deques[v]); l < bestLen {
			best, bestLen = v, l
		}
	}
	return best
}

// retire marks worker w dead and spills its remaining deque to the
// survivors. Call after reassigning any in-flight cell.
func (q *stealQueue) retire(w int) {
	q.mu.Lock()
	if !q.dead[w] {
		q.dead[w] = true
		q.retired.Inc()
		spill := q.deques[w]
		q.deques[w] = nil
		for i, cell := range spill {
			if t := q.shortestAlive(w); t >= 0 {
				q.deques[t] = append(q.deques[t], cell)
			} else {
				// No live workers: leave the rest where the unassigned
				// snapshot will find them.
				q.deques[w] = append(q.deques[w], spill[i:]...)
				break
			}
		}
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// alive reports how many workers have not been retired.
func (q *stealQueue) alive() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, d := range q.dead {
		if !d {
			n++
		}
	}
	return n
}

// unassigned snapshots every cell still sitting in a deque — non-empty
// only when the sweep ended with all workers retired.
func (q *stealQueue) unassigned() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []string
	for _, d := range q.deques {
		out = append(out, d...)
	}
	return out
}
