package fleet

// Byzantine tolerance beyond the digest: the digest catches corruption
// and cross-cell replay, but a worker that computes the WRONG payload and
// honestly digests it is self-consistent — only re-execution exposes it.
// The audit sampler re-executes a seed-deterministic fraction of verified
// cells on a second worker and byte-compares; on disagreement the
// coordinator recomputes the cell locally (the same code path a worker
// runs, so bytes are the arbiter) and quarantines whichever workers
// disagree with the local truth. Quarantine is the one-strike integrity
// response: the worker is retired immediately and its queue spilled to
// the survivors.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"ristretto/internal/experiments"
)

// detRoll maps (seed, kind, key) to a uniform value in [0,1) with no
// wall-clock or ordering input — the fleet-side sibling of the
// faultinject schedule's roll, used for audit selection and backoff
// jitter so both are reproducible from the sweep seed alone.
func detRoll(seed int64, kind, key string) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 1099511628211
	}
	h ^= uint64(255) // separator: ("ab","c") and ("a","bc") must differ
	h *= 1099511628211
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := uint64(seed) ^ h
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// quarantine retires worker w for an integrity violation: one strike is
// enough, because a worker that lies once about bytes cannot be trusted
// with any cell. Idempotent per worker; the queue spill hands its pending
// cells to the survivors.
func (c *coord) quarantine(w int, reason error) {
	c.mu.Lock()
	already := c.quarantined[w]
	c.quarantined[w] = true
	c.mu.Unlock()
	if already {
		return
	}
	c.integrityQuarantined.Inc()
	c.cfg.Logf("fleet: QUARANTINE worker %d (%s): %v", w, c.cfg.Workers[w], reason)
	c.queue.retire(w)
}

// isQuarantined reports whether worker w has been quarantined.
func (c *coord) isQuarantined(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined[w]
}

// auditSelected decides — deterministically from the sweep seed and the
// cell key, never from timing — whether a cell's verified result is
// re-executed for audit.
func (c *coord) auditSelected(cell string) bool {
	f := c.cfg.AuditFraction
	if f <= 0 {
		return false
	}
	return detRoll(c.cfg.Seed, "audit", cell) < f
}

// computeLocal executes the cell on the coordinator, exactly as a worker
// would (same Bench construction as server.runCell), so its bytes are the
// authoritative arbiter when two workers disagree.
func (c *coord) computeLocal(ctx context.Context, cell string) (json.RawMessage, error) {
	c.integrityLocalRecompute.Inc()
	spec := c.specs[cell]
	b := experiments.NewQuickBench(spec.Seed, spec.Scale)
	b.Nets = spec.Nets
	b.Ctx = ctx
	return b.RunCellChecked(cell, experiments.RunOptions{})
}

// audit re-executes a verified cell and arbitrates. It returns the
// payload to merge — the original when the audit agrees (or cannot
// arbitrate), the locally recomputed truth when it does not — and updates
// the outcome and counters. A worker whose bytes disagree with the local
// recomputation is quarantined: its digest was self-consistent, so only
// the content was wrong — the lying-worker case.
func (c *coord) audit(ctx context.Context, cell string, out *CellOutcome, payload json.RawMessage) json.RawMessage {
	c.integrityAudits.Inc()
	out.Audited = true

	// Prefer an independent second worker; fall back to local compute.
	var second *attemptResult
	if v := c.queue.shortestAlive(out.Worker); v >= 0 {
		a := c.attempt(ctx, v, cell)
		second = &a
		if a.kind == attemptOK && bytes.Equal(a.payload, payload) {
			return payload // independent re-execution agrees, byte for byte
		}
		// Integrity violations inside the audit attempt already
		// quarantined v; disagreement or unavailability falls through to
		// local arbitration.
	}
	local, err := c.computeLocal(ctx, cell)
	if err != nil {
		// Cannot arbitrate (likely ctx cancelled). Keep the original
		// verified payload; record the unresolved disagreement if there
		// was one.
		if second != nil && second.kind == attemptOK {
			c.flagAuditMismatch(out, cell, "unarbitrated disagreement: local recompute failed: "+err.Error())
		}
		return payload
	}
	primaryHonest := bytes.Equal(payload, local)
	if second != nil && second.kind == attemptOK && !bytes.Equal(second.payload, local) {
		c.quarantine(second.worker, fmt.Errorf("audit of cell %q: payload disagrees with local recomputation", cell))
	}
	if primaryHonest {
		return payload
	}
	c.flagAuditMismatch(out, cell, "payload disagrees with local recomputation")
	c.quarantine(out.Worker, fmt.Errorf("audit of cell %q: payload disagrees with local recomputation", cell))
	return local
}

// flagAuditMismatch records one audit disagreement on the outcome.
func (c *coord) flagAuditMismatch(out *CellOutcome, cell, why string) {
	c.integrityAuditMismatch.Inc()
	out.AuditMismatch = true
	c.cfg.Logf("fleet: AUDIT MISMATCH cell %q worker %d: %s", cell, out.Worker, why)
}
