package fleet

// Coordinator crash-resume: the fleet journals assignment and completion
// state through a crc-guarded append-only file (the checkpoint journal's
// discipline, fsynced per record via safeio.Appender), so a coordinator
// SIGKILLed mid-sweep resumes without re-dispatching completed cells.
// Completion records carry the cell's payload bytes AND its
// fingerprint-bound digest: resume re-verifies every record end to end,
// so a journal corrupted on disk degrades to recomputing the affected
// cells, never to merging bad bytes. Resume is deliberately
// cache-independent — cache hits journal a completion too — so a sweep
// resumes correctly even with the cell cache disabled or wiped.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"ristretto/internal/experiments"
	"ristretto/internal/safeio"
	"ristretto/internal/telemetry"
)

// JournalSchema identifies the fleet journal file format. Bump on
// incompatible change; resume then refuses with a clear error.
const JournalSchema = "ristretto.fleet-journal/v1"

// journalTool names the writer in the header record, so a fleet journal
// and an experiment checkpoint can never be confused for one another.
const journalTool = "ristretto-fleet"

// journalRec is one line of the journal: an 8-hex-digit IEEE crc32 of the
// JSON body, a space, then the body. Kinds: "header" (schema, tool,
// workload fingerprint), "assign" (cell handed to a worker — audit trail,
// ignored on resume), "complete" (cell finished, with its payload and
// fingerprint-bound digest).
type journalRec struct {
	Kind        string          `json:"kind"`
	Schema      string          `json:"schema,omitempty"`
	Tool        string          `json:"tool,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"` // header: workload; complete: cell
	Cell        string          `json:"cell,omitempty"`
	Worker      int             `json:"worker,omitempty"`
	Digest      string          `json:"digest,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// journalCell is one resumable completion: the cell's fingerprint and the
// verified payload bytes.
type journalCell struct {
	fp      string
	payload json.RawMessage
}

// journal is the coordinator's crash-resume record. Safe for concurrent
// use by the worker loops.
type journal struct {
	ap *safeio.Appender

	mu      sync.Mutex
	done    map[string]journalCell
	resumed bool
	corrupt int

	records  *telemetry.Counter
	loaded   *telemetry.Counter
	corruptC *telemetry.Counter
}

// openJournal opens (or creates) the journal at path for a sweep whose
// workload fingerprint is benchFP. With resume false any existing file is
// truncated and a fresh header written. With resume true an existing file
// is validated — schema, tool and workload fingerprint must match or the
// error says to rerun without -resume — and every digest-verified
// completion becomes available through lookup; torn, corrupt or
// digest-mismatched records are skipped and counted, never served.
func openJournal(fsys safeio.FS, path, benchFP string, resume bool, r *telemetry.Registry) (*journal, error) {
	if fsys == nil {
		fsys = safeio.OS
	}
	j := &journal{
		done:     map[string]journalCell{},
		records:  r.Counter("fleet.journal.records"),
		loaded:   r.Counter("fleet.journal.resumed_cells"),
		corruptC: r.Counter("fleet.journal.corrupt"),
	}
	if resume {
		if err := j.load(fsys, path, benchFP); err != nil {
			return nil, err
		}
	}
	ap, err := safeio.OpenAppenderFS(fsys, path, !j.resumed)
	if err != nil {
		return nil, err
	}
	j.ap = ap
	if !j.resumed {
		hdr := journalRec{Kind: "header", Schema: JournalSchema, Tool: journalTool, Fingerprint: benchFP}
		if err := j.append(hdr); err != nil {
			ap.Close()
			return nil, err
		}
	}
	return j, nil
}

// load reads and validates an existing journal for resume. A missing file
// degrades to a fresh journal.
func (j *journal) load(fsys safeio.FS, path, benchFP string) error {
	f, err := fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	sawHeader := false
	for sc.Scan() {
		rec, ok := decodeJournalLine(sc.Text())
		if !ok {
			j.corrupt++
			continue
		}
		switch rec.Kind {
		case "header":
			if rec.Schema != JournalSchema {
				return fmt.Errorf("fleet: journal %s has schema %q, want %q — rerun without -resume", path, rec.Schema, JournalSchema)
			}
			if rec.Tool != journalTool {
				return fmt.Errorf("fleet: journal %s was written by %q, not %q — rerun without -resume", path, rec.Tool, journalTool)
			}
			if rec.Fingerprint != benchFP {
				return fmt.Errorf("fleet: journal %s fingerprint %q does not match this sweep (%q) — rerun without -resume", path, rec.Fingerprint, benchFP)
			}
			sawHeader = true
		case "assign":
			// Audit trail only: an assignment without a completion means the
			// cell was in flight at the kill and must be re-dispatched.
		case "complete":
			// End-to-end verification against the record's own fingerprint:
			// the crc catches torn lines, the digest catches everything else
			// (a record spliced from another journal, a corrupted payload
			// with a recomputed crc).
			if rec.Digest != experiments.CellPayloadDigest(rec.Fingerprint, rec.Payload) {
				j.corrupt++
				continue
			}
			// Later valid duplicates win, like the checkpoint journal.
			j.done[rec.Cell] = journalCell{fp: rec.Fingerprint, payload: rec.Payload}
		default:
			j.corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: reading journal %s: %w", path, err)
	}
	if !sawHeader {
		if len(j.done) > 0 {
			return fmt.Errorf("fleet: journal %s has completions but no valid header — rerun without -resume", path)
		}
		return nil // empty or fully corrupt: start fresh
	}
	j.resumed = true
	j.loaded.Add(int64(len(j.done)))
	j.corruptC.Add(int64(j.corrupt))
	return nil
}

// decodeJournalLine parses one "crc json" line, rejecting torn or
// bit-flipped records.
func decodeJournalLine(line string) (journalRec, bool) {
	var rec journalRec
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &sum); err != nil {
		return rec, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE([]byte(body)) != sum {
		return rec, false
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// append encodes and durably writes one record.
func (j *journal) append(rec journalRec) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Appendf(nil, "%08x %s\n", crc32.ChecksumIEEE(body), body)
	if err := j.ap.Append(line); err != nil {
		return err
	}
	j.records.Inc()
	return nil
}

// assign journals a dispatch intent. Best effort: the record is an audit
// trail, not resume state, so a failed append degrades to a log line.
func (j *journal) assign(cell string, worker int) error {
	return j.append(journalRec{Kind: "assign", Cell: cell, Worker: worker})
}

// complete journals a finished cell with its verified payload. The record
// is durable when complete returns — the cell will not be re-dispatched
// by a resumed coordinator.
func (j *journal) complete(cell, cellFP string, payload json.RawMessage) error {
	if err := j.append(journalRec{
		Kind: "complete", Cell: cell, Fingerprint: cellFP,
		Digest: experiments.CellPayloadDigest(cellFP, payload), Payload: payload,
	}); err != nil {
		return err
	}
	j.mu.Lock()
	j.done[cell] = journalCell{fp: cellFP, payload: payload}
	j.mu.Unlock()
	return nil
}

// lookup returns the journaled fingerprint and payload for a cell, if a
// verified completion exists.
func (j *journal) lookup(cell string) (fp string, payload json.RawMessage, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jc, ok := j.done[cell]
	return jc.fp, jc.payload, ok
}

// resumable reports whether the journal was loaded from an existing,
// header-valid file.
func (j *journal) resumable() bool { return j.resumed }

// corruptRecords reports how many lines were skipped while loading.
func (j *journal) corruptRecords() int { return j.corrupt }

// close releases the journal file descriptor.
func (j *journal) close() error { return j.ap.Close() }
