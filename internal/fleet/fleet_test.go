package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/runner"
	"ristretto/internal/server"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

// testSeed/testScale/testNets is the shared sweep configuration: one
// network at a deep scale-down keeps a full 22-cell sweep to seconds
// while exercising every experiment.
const (
	testSeed  = 1
	testScale = 32
)

var testNets = []string{"AlexNet"}

// serialGolden renders the serial run of the shared configuration once;
// every fleet test compares against these exact bytes.
var serialGolden = sync.OnceValue(func() string {
	b := experiments.NewQuickBench(testSeed, testScale)
	b.Nets = testNets
	return render(b.All())
})

// render concatenates results exactly like ristretto-bench -q prints them.
func render(rs []*experiments.Result) string {
	var sb strings.Builder
	for _, r := range rs {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// newWorker boots one in-process ristretto-serve worker.
func newWorker(t *testing.T, mutate func(*server.Config)) *httptest.Server {
	t.Helper()
	cfg := server.Config{Registry: telemetry.NewRegistry()}
	if mutate != nil {
		mutate(&cfg)
	}
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func fleetCfg(workers ...string) Config {
	return Config{
		Workers:  workers,
		Seed:     testSeed,
		Scale:    testScale,
		Nets:     append([]string(nil), testNets...),
		Registry: telemetry.NewRegistry(),
	}
}

// TestFleetMatchesSerial is the determinism guarantee in-process: a sweep
// spread over three workers renders byte-identically to the serial run.
func TestFleetMatchesSerial(t *testing.T) {
	w0, w1, w2 := newWorker(t, nil), newWorker(t, nil), newWorker(t, nil)
	rs, rep, err := Run(context.Background(), fleetCfg(w0.URL, w1.URL, w2.URL))
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("fleet output differs from serial run:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.Cells != len(experiments.CellKeys()) || rep.Failures != 0 {
		t.Fatalf("report %+v inconsistent with a clean full sweep", rep)
	}
	used := map[int]bool{}
	for _, o := range rep.Outcomes {
		used[o.Worker] = true
	}
	if len(used) < 2 {
		t.Errorf("only workers %v computed cells; expected the sweep to spread", used)
	}
}

// TestFleetStealsWork: with one worker slowed to a crawl, the fast worker
// drains its own deque and then steals the slow worker's backlog — and
// the merged output is still byte-identical.
func TestFleetStealsWork(t *testing.T) {
	slowBackend := newWorker(t, nil)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		slowBackend.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	fast := newWorker(t, nil)

	rs, rep, err := Run(context.Background(), fleetCfg(slow.URL, fast.URL))
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("fleet output differs from serial run under stealing:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.Steals == 0 {
		t.Error("fast worker never stole from the slow worker's deque")
	}
	stolen := 0
	for _, o := range rep.Outcomes {
		if o.Stolen {
			stolen++
		}
	}
	if stolen == 0 {
		t.Error("no outcome is marked stolen despite steals in the report")
	}
}

// TestFleetWorkerDeathReassigns: a worker that is dead from the start
// strikes out; its cells are reassigned and the survivor completes the
// sweep byte-identically.
func TestFleetWorkerDeathReassigns(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the first request on

	live := newWorker(t, nil)
	rs, rep, err := Run(context.Background(), fleetCfg(deadURL, live.URL))
	if err != nil {
		t.Fatal(err)
	}
	if got := render(rs); got != serialGolden() {
		t.Fatalf("fleet output differs from serial run after worker death:\n%s", firstDiff(t, got, serialGolden()))
	}
	if rep.RetiredWorkers != 1 {
		t.Errorf("retired %d workers, want 1", rep.RetiredWorkers)
	}
	if rep.Reassigned == 0 {
		t.Error("no reassignments recorded for the dead worker's cells")
	}
	for _, o := range rep.Outcomes {
		if o.Worker == 0 {
			t.Errorf("cell %q attributed to the dead worker", o.Cell)
		}
	}
}

// TestFleetAllWorkersDead: when nobody can serve, Run fails loudly with
// the unassigned cells instead of hanging or returning a partial sweep.
func TestFleetAllWorkersDead(t *testing.T) {
	d1 := httptest.NewServer(http.NotFoundHandler())
	d2 := httptest.NewServer(http.NotFoundHandler())
	u1, u2 := d1.URL, d2.URL
	d1.Close()
	d2.Close()
	_, _, err := Run(context.Background(), fleetCfg(u1, u2))
	if err == nil || !strings.Contains(err.Error(), "unassigned") {
		t.Fatalf("err = %v, want unassigned-cells failure", err)
	}
}

// TestFleetCacheWarm: a second sweep over the same cache directory is
// served entirely from the content-addressed cache — byte-identical, no
// recomputation. The CI gate asserts the same ≥90% bound end to end.
func TestFleetCacheWarm(t *testing.T) {
	w := newWorker(t, nil)
	dir := filepath.Join(t.TempDir(), "cells")

	cfg := fleetCfg(w.URL)
	cfg.CacheDir = dir
	cold, coldRep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.LocalCacheHits != 0 {
		t.Fatalf("cold run claims %d cache hits", coldRep.LocalCacheHits)
	}

	cfg2 := fleetCfg(w.URL)
	cfg2.CacheDir = dir
	warm, warmRep, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if render(warm) != render(cold) || render(warm) != serialGolden() {
		t.Fatal("cache-warm output differs from cold/serial run")
	}
	if warmRep.LocalCacheHits != warmRep.Cells || warmRep.Computed != 0 {
		t.Fatalf("warm run: %d/%d cache hits, %d computed; want all/0",
			warmRep.LocalCacheHits, warmRep.Cells, warmRep.Computed)
	}
	if warmRep.CacheHitRate() < 0.9 {
		t.Fatalf("warm hit rate %.2f below the 0.9 gate", warmRep.CacheHitRate())
	}
}

// TestFleetDeterministicFailureNotRetried: a panic inside the experiment
// code is not a worker fault — the cell must NOT bounce between workers;
// it surfaces once as a keep-going placeholder carrying the replay seed
// a local run would derive.
func TestFleetDeterministicFailureNotRetried(t *testing.T) {
	w := newWorker(t, func(c *server.Config) {
		spec, err := faultinject.ParseSpec("seed=7,panic=1")
		if err != nil {
			t.Fatal(err)
		}
		c.Fault = faultinject.New(spec)
	})
	rs, rep, err := Run(context.Background(), fleetCfg(w.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != rep.Cells {
		t.Fatalf("%d/%d cells failed; the always-panic worker should fail all", rep.Failures, rep.Cells)
	}
	if rep.Reassigned != 0 || rep.RetiredWorkers != 0 {
		t.Errorf("deterministic failures were retried (reassigned %d, retired %d)",
			rep.Reassigned, rep.RetiredWorkers)
	}
	keys := experiments.CellKeys()
	for i, r := range rs {
		var ce *runner.CellError
		if !asCellError(r.Err, &ce) {
			t.Fatalf("result %d carries %T, want *runner.CellError", i, r.Err)
		}
		if want := workload.DeriveSeed(testSeed, "job", keys[i]); ce.Seed != want {
			t.Errorf("cell %q replay seed %d, want %d", keys[i], ce.Seed, want)
		}
		if ce.Stack == nil {
			t.Errorf("cell %q failure lost its panic classification", keys[i])
		}
	}
}

// asCellError unwraps r.Err into a *runner.CellError.
func asCellError(err error, out **runner.CellError) bool {
	ce, ok := err.(*runner.CellError)
	if ok {
		*out = ce
	}
	return ok
}

// TestFleetNoWorkers: an empty worker set is a configuration error.
func TestFleetNoWorkers(t *testing.T) {
	if _, _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty worker set accepted")
	}
}

// firstDiff locates the first differing line of two renders.
func firstDiff(t *testing.T, got, want string) string {
	t.Helper()
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(g), len(w))
}
