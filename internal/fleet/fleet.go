// Package fleet is the distributed-sweep coordinator: it enumerates the
// experiment suite's sweep cells (the same stable keys the checkpoint
// journal uses), distributes them over a set of ristretto-serve workers
// through the /v1/cell endpoint with a work-stealing bounded queue, and
// merges the per-worker payloads into a result list byte-identical to a
// serial experiments.All() run — the distributed-sweep determinism
// guarantee, enforced by the cross-process determinism and chaos suites.
//
// Fault tolerance: a worker that dies or times out mid-cell has its
// in-flight cell reassigned to a survivor (after enough consecutive
// strikes the worker is retired and its queue spilled); a cell that fails
// deterministically on a healthy worker — a panic or timeout inside the
// experiment code — is NOT retried elsewhere, because it would fail
// identically: the remote *runner.CellError crosses the wire with its
// replay seed and surfaces as the same placeholder Result a local
// keep-going run produces.
//
// A content-addressed cell cache (internal/cellcache, keyed by
// experiments.CellSpec.Fingerprint) sits in front of dispatch: cells
// already cached are served locally without touching a worker, and every
// computed payload is written back, so a repeat sweep is near-free.
//
// Telemetry lands under fleet.steal.* (local_pops, steals, reassigned,
// workers_retired) and fleet.cache.* (see cellcache).
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ristretto/internal/cellcache"
	"ristretto/internal/experiments"
	"ristretto/internal/runner"
	"ristretto/internal/server"
	"ristretto/internal/telemetry"
)

// Config describes one fleet sweep: the workload (identical to what a
// serial bench run would use) and the worker set to spread it over.
type Config struct {
	// Workers are the base URLs of ristretto-serve processes (e.g.
	// "http://127.0.0.1:8080"). At least one is required.
	Workers []string
	// Seed, Scale, Nets configure the workload exactly like
	// experiments.Bench — they are the cache identity of every cell.
	Seed  int64
	Scale int
	Nets  []string
	// CacheDir, when non-empty, opens the coordinator-side cell cache
	// there: cached cells skip dispatch, computed cells are written back.
	CacheDir string
	// DeadlineMS is the per-cell request deadline sent to workers
	// (0 = the worker's default).
	DeadlineMS int64
	// RequestTimeout bounds one HTTP attempt end to end, including queue
	// time on the worker; 0 = 5m. Keep it above DeadlineMS.
	RequestTimeout time.Duration
	// WorkerStrikes is how many consecutive retryable failures retire a
	// worker; 0 = 3.
	WorkerStrikes int
	// Client overrides the HTTP client (tests inject httptest clients);
	// nil builds one with RequestTimeout.
	Client *http.Client
	// Registry receives fleet.steal.* metrics; nil = telemetry.Default.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// CellOutcome records where one cell's payload came from.
type CellOutcome struct {
	Cell        string                `json:"cell"`
	Fingerprint string                `json:"fingerprint"`
	Worker      int                   `json:"worker"`                  // index into Config.Workers; -1 = local cache
	Stolen      bool                  `json:"stolen,omitempty"`        // dispatched via a steal
	WorkerCache bool                  `json:"worker_cache,omitempty"`  // worker answered from its cell cache
	LocalCache  bool                  `json:"local_cache,omitempty"`   // served from CacheDir without dispatch
	Attempts    int                   `json:"attempts"`                // dispatch attempts (0 for local cache)
	Err         *runner.WireCellError `json:"err,omitempty"`           // terminal deterministic failure
}

// Report summarizes a fleet sweep for manifests and the CI gates.
type Report struct {
	Cells          int           `json:"cells"`
	Workers        int           `json:"workers"`
	LocalCacheHits int           `json:"local_cache_hits"`
	Computed       int           `json:"computed"`
	Failures       int           `json:"failures"`
	Steals         int64         `json:"steals"`
	Reassigned     int64         `json:"reassigned"`
	RetiredWorkers int           `json:"retired_workers"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	Outcomes       []CellOutcome `json:"outcomes"` // paper order
}

// CacheHitRate is the fraction of cells served from the local cache —
// what the CI cache-warm gate asserts against.
func (r Report) CacheHitRate() float64 {
	if r.Cells == 0 {
		return 0
	}
	return float64(r.LocalCacheHits) / float64(r.Cells)
}

// workerError is the JSON error body a worker answers with (the server's
// apiError shape), carrying the wire CellError for deterministic failures.
type workerError struct {
	Status    int                   `json:"status"`
	Msg       string                `json:"error"`
	CellError *runner.WireCellError `json:"cell_error"`
}

// coord is one Run invocation's state.
type coord struct {
	cfg    Config
	client *http.Client
	cache  *cellcache.Cache // nil without CacheDir
	queue  *stealQueue
	specs  map[string]experiments.CellSpec

	mu       sync.Mutex
	payloads map[string]json.RawMessage
	outcomes map[string]*CellOutcome
	fatal    error // non-retryable coordinator-level failure (config skew)
}

// Run executes the full sweep over the fleet and returns the merged
// results in paper order — byte-identical to a serial run of the same
// workload — plus the dispatch report. Deterministic cell failures
// surface as keep-going placeholder Results (and in the report), not as a
// Run error; Run itself fails only when cells could not be executed at
// all (every worker retired, config rejected, context cancelled).
func Run(ctx context.Context, cfg Config) ([]*experiments.Result, Report, error) {
	if len(cfg.Workers) == 0 {
		return nil, Report{}, fmt.Errorf("fleet: no workers configured")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.WorkerStrikes <= 0 {
		cfg.WorkerStrikes = 3
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for i, w := range cfg.Workers {
		cfg.Workers[i] = strings.TrimRight(w, "/")
	}

	c := &coord{
		cfg:      cfg,
		client:   cfg.Client,
		specs:    map[string]experiments.CellSpec{},
		payloads: map[string]json.RawMessage{},
		outcomes: map[string]*CellOutcome{},
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	if cfg.CacheDir != "" {
		cache, err := cellcache.Open(cfg.CacheDir, cfg.Registry)
		if err != nil {
			return nil, Report{}, fmt.Errorf("fleet: opening cell cache: %w", err)
		}
		c.cache = cache
	}

	start := time.Now()
	bench := experiments.Bench{Seed: cfg.Seed, Scale: cfg.Scale, Nets: cfg.Nets}
	keys := experiments.CellKeys()
	rep := Report{Cells: len(keys), Workers: len(cfg.Workers)}

	// Phase 1: serve everything the local cache already holds.
	var todo []string
	for _, key := range keys {
		spec := bench.CellSpec(key)
		c.specs[key] = spec
		fp := spec.Fingerprint()
		if c.cache != nil {
			if payload, ok := c.cache.Get(fp); ok {
				c.payloads[key] = payload
				c.outcomes[key] = &CellOutcome{Cell: key, Fingerprint: fp, Worker: -1, LocalCache: true}
				rep.LocalCacheHits++
				continue
			}
		}
		todo = append(todo, key)
	}
	cfg.Logf("fleet: %d cells, %d from local cache, %d to dispatch over %d workers",
		len(keys), rep.LocalCacheHits, len(todo), len(cfg.Workers))

	// Phase 2: work-stealing dispatch of the rest. Report counts are
	// deltas over the run, because the registry's counters are cumulative
	// across runs sharing it.
	c.queue = newStealQueue(len(cfg.Workers), todo, cfg.Registry)
	baseSteals := c.queue.steals.Load()
	baseReassigns := c.queue.reassigns.Load()
	var wg sync.WaitGroup
	for w := range cfg.Workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(ctx, w)
		}(w)
	}
	wg.Wait()

	rep.Steals = c.queue.steals.Load() - baseSteals
	rep.Reassigned = c.queue.reassigns.Load() - baseReassigns
	rep.RetiredWorkers = len(cfg.Workers) - c.queue.alive()
	rep.Elapsed = time.Since(start)

	if c.fatal != nil {
		return nil, rep, c.fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}
	if left := c.queue.unassigned(); len(left) > 0 {
		return nil, rep, fmt.Errorf("fleet: %d cells unassigned after every worker retired: %v", len(left), left)
	}

	// Phase 3: merge in paper order; deterministic failures become the
	// same placeholder Results a local keep-going run produces.
	var results []*experiments.Result
	for _, key := range keys {
		out := c.outcomes[key]
		if out == nil {
			return nil, rep, fmt.Errorf("fleet: cell %q never completed", key)
		}
		rep.Outcomes = append(rep.Outcomes, *out)
		if out.Err != nil {
			rep.Failures++
			results = append(results, &experiments.Result{
				ID: "Job " + key, Title: "experiment job failed", Err: out.Err.CellError(),
			})
			continue
		}
		rs, err := experiments.DecodeCellPayload(c.payloads[key])
		if err != nil {
			return nil, rep, fmt.Errorf("fleet: corrupt payload for cell %q: %w", key, err)
		}
		results = append(results, rs...)
		if !out.LocalCache {
			rep.Computed++
		}
	}
	return results, rep, nil
}

// workerLoop drains cells for worker w until the sweep finishes or the
// worker is retired for striking out.
func (c *coord) workerLoop(ctx context.Context, w int) {
	strikes := 0
	for {
		cell, stolen, ok := c.queue.next(w)
		if !ok {
			return
		}
		if ctx.Err() != nil {
			c.queue.reassign(cell, w)
			c.queue.retire(w)
			return
		}
		out, retryable, err := c.dispatch(ctx, w, cell, stolen)
		if err == nil {
			strikes = 0
			c.record(cell, out)
			c.queue.complete()
			continue
		}
		if !retryable {
			// Coordinator-level failure (request rejected, version skew):
			// no worker will do better, fail the run.
			c.mu.Lock()
			if c.fatal == nil {
				c.fatal = fmt.Errorf("fleet: cell %q on worker %d: %w", cell, w, err)
			}
			c.mu.Unlock()
			c.queue.complete()
			continue
		}
		strikes++
		c.cfg.Logf("fleet: worker %d failed cell %q (strike %d/%d): %v",
			w, cell, strikes, c.cfg.WorkerStrikes, err)
		c.queue.reassign(cell, w)
		if strikes >= c.cfg.WorkerStrikes {
			c.cfg.Logf("fleet: retiring worker %d (%s)", w, c.cfg.Workers[w])
			c.queue.retire(w)
			return
		}
	}
}

// record stores a completed cell's outcome (and payload) under the lock.
func (c *coord) record(cell string, out *CellOutcome) {
	c.mu.Lock()
	c.outcomes[cell] = out
	c.mu.Unlock()
}

// dispatch runs one cell attempt against worker w. The three-way result:
// (outcome, _, nil) on success or terminal deterministic failure;
// (nil, true, err) for retryable trouble — worker dead, shed, timed out
// in queue — where the cell must be reassigned; (nil, false, err) for a
// coordinator-level failure that no reassignment can fix.
func (c *coord) dispatch(ctx context.Context, w int, cell string, stolen bool) (*CellOutcome, bool, error) {
	spec := c.specs[cell]
	fp := spec.Fingerprint()
	body, _ := json.Marshal(server.CellRequest{
		Seed: spec.Seed, Scale: spec.Scale, Nets: spec.Nets, Cell: cell, DeadlineMS: c.cfg.DeadlineMS,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.cfg.Workers[w]+"/v1/cell", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, true, err // transport failure: worker gone or unreachable
	}
	defer resp.Body.Close()

	out := &CellOutcome{Cell: cell, Fingerprint: fp, Worker: w, Stolen: stolen, Attempts: 1}
	if resp.StatusCode == http.StatusOK {
		var cr server.CellResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			return nil, true, fmt.Errorf("undecodable worker response: %w", err)
		}
		if cr.Fingerprint != fp {
			// Version skew: the worker canonicalizes cells differently.
			// Its payloads cannot share a cache with ours — refuse.
			return nil, false, fmt.Errorf("fingerprint mismatch for cell %q: worker %s, coordinator %s",
				cell, cr.Fingerprint, fp)
		}
		out.WorkerCache = cr.Cached
		c.mu.Lock()
		c.payloads[cell] = cr.Payload
		c.mu.Unlock()
		if c.cache != nil {
			_ = c.cache.Put(fp, cr.Payload) // best effort; a miss next run recomputes
		}
		return out, false, nil
	}

	var werr workerError
	_ = json.NewDecoder(resp.Body).Decode(&werr)
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		// Shed, draining, transient fault or queue-deadline expiry: the
		// work itself is fine, try it on another worker.
		return nil, true, fmt.Errorf("worker answered %d: %s", resp.StatusCode, werr.Msg)
	case http.StatusInternalServerError:
		if werr.CellError != nil {
			// Deterministic failure inside the experiment: retrying on
			// another worker reproduces it. Surface it with its replay
			// seed, exactly like a local keep-going run.
			werr.CellError.Key = cell
			out.Err = werr.CellError
			return out, false, nil
		}
		return nil, true, fmt.Errorf("worker answered 500: %s", werr.Msg)
	default:
		return nil, false, fmt.Errorf("worker rejected cell: %d %s", resp.StatusCode, werr.Msg)
	}
}
