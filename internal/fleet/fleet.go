// Package fleet is the distributed-sweep coordinator: it enumerates the
// experiment suite's sweep cells (the same stable keys the checkpoint
// journal uses), distributes them over a set of ristretto-serve workers
// through the /v1/cell endpoint with a work-stealing bounded queue, and
// merges the per-worker payloads into a result list byte-identical to a
// serial experiments.All() run — the distributed-sweep determinism
// guarantee, enforced by the cross-process determinism and chaos suites.
//
// Byzantine tolerance — the coordinator assumes workers can lie, stall
// and die, and defends each layer separately:
//
//   - end-to-end integrity: every 200 response is verified against the
//     coordinator's own fingerprint-bound sha256 payload digest
//     (experiments.CellPayloadDigest) before it may enter the merge, a
//     cache or the journal. A digest or fingerprint violation quarantines
//     the worker on the spot (one strike, deque spilled to survivors) and
//     the cell recomputes elsewhere;
//   - audit sampling: a seed-deterministic fraction of verified cells
//     (Config.AuditFraction) is re-executed on a second worker and
//     byte-compared — catching a worker whose payload is wrong but whose
//     digest is self-consistent; disagreements are arbitrated by local
//     recomputation, which also decides who gets quarantined;
//   - hedged dispatch: a cell straggling past the hedge delay (fixed or
//     derived from attempt-latency telemetry, see HedgeAuto) races a
//     speculative second attempt; the first verified result wins and the
//     loser is cancelled mid-flight;
//   - crash-resume: with Config.JournalPath set, assignment and verified
//     completion state is journaled through fsynced, crc-guarded records,
//     so a SIGKILLed coordinator resumes without re-dispatching completed
//     cells (Config.Resume);
//   - retryable failures (worker dead, shed, draining) reassign the cell
//     to a survivor and strike the worker — honoring a Retry-After hint
//     with jittered, context-aware backoff — and enough consecutive
//     strikes retire it. A cell that fails deterministically on a healthy
//     worker is NOT retried elsewhere: the remote *runner.CellError
//     crosses the wire with its replay seed and surfaces as the same
//     placeholder Result a local keep-going run produces.
//
// A content-addressed cell cache (internal/cellcache, keyed by
// experiments.CellSpec.Fingerprint) sits in front of dispatch: cells
// already cached are served locally without touching a worker, and every
// computed payload is written back, so a repeat sweep is near-free.
//
// Telemetry lands under fleet.steal.* (local_pops, steals, reassigned,
// workers_retired), fleet.cache.* (see cellcache), fleet.integrity.*
// (digest_mismatch, quarantined, audits, audit_mismatch,
// local_recompute), fleet.hedge.* (launched, wins, cancelled) and
// fleet.journal.* (records, resumed_cells, corrupt).
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ristretto/internal/cellcache"
	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// Config describes one fleet sweep: the workload (identical to what a
// serial bench run would use) and the worker set to spread it over.
type Config struct {
	// Workers are the base URLs of ristretto-serve processes (e.g.
	// "http://127.0.0.1:8080"). At least one is required.
	Workers []string
	// Seed, Scale, Nets configure the workload exactly like
	// experiments.Bench — they are the cache identity of every cell.
	Seed  int64
	Scale int
	Nets  []string
	// CacheDir, when non-empty, opens the coordinator-side cell cache
	// there: cached cells skip dispatch, computed cells are written back.
	// The cache is scrubbed on open (corrupt entries deleted) and degrades
	// to read-only after persistent write failures — a full or lying disk
	// slows the sweep, it never fails it.
	CacheDir string
	// CacheMaxBytes bounds the cell cache's on-disk footprint; entries past
	// the bound are evicted by a deterministic second-chance sweep
	// (0 = unbounded).
	CacheMaxBytes int64
	// DiskFault, when non-zero, threads the seed-deterministic disk fault
	// FS (ENOSPC, EIO, failed fsync, torn writes, bit rot — see
	// internal/faultinject) under the coordinator's cell cache and journal;
	// the disk-chaos gates prove the storage robustness story with it.
	DiskFault faultinject.DiskSpec
	// JournalPath, when non-empty, journals assignment and completion
	// state there (crc-guarded, fsynced per record) for crash-resume.
	JournalPath string
	// Resume loads an existing journal at JournalPath and skips its
	// verified completions instead of re-dispatching them. The journal's
	// workload fingerprint must match this sweep.
	Resume bool
	// AuditFraction, in [0,1], is the seed-deterministic fraction of
	// computed cells re-executed on a second worker and byte-compared
	// (0 = no audits). Disagreements arbitrate against a local
	// recomputation and quarantine the dishonest worker.
	AuditFraction float64
	// HedgeAfter controls speculative re-dispatch of stragglers:
	// 0 disables hedging, a positive duration hedges after that fixed
	// delay, and HedgeAuto derives the delay from attempt-latency
	// telemetry (3× P95 once enough samples exist).
	HedgeAfter time.Duration
	// NetFault, when non-zero, wraps the coordinator's transport in the
	// seed-deterministic response-fault injector (corrupt, truncate,
	// black-hole, slow-drip) — the chaos gates prove the integrity
	// pipeline with it.
	NetFault faultinject.NetSpec
	// DeadlineMS is the per-cell request deadline sent to workers
	// (0 = the worker's default).
	DeadlineMS int64
	// RequestTimeout bounds one HTTP attempt end to end, including queue
	// time on the worker; 0 = 5m. Keep it above DeadlineMS.
	RequestTimeout time.Duration
	// WorkerStrikes is how many consecutive retryable failures retire a
	// worker; 0 = 3. Integrity violations ignore this: one is enough.
	WorkerStrikes int
	// Client overrides the HTTP client (tests inject httptest clients);
	// nil builds a tuned pooled transport (see newClient). NetFault wraps
	// either.
	Client *http.Client
	// Registry receives fleet.* metrics; nil = telemetry.Default.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// CellOutcome records where one cell's payload came from.
type CellOutcome struct {
	Cell          string                `json:"cell"`
	Fingerprint   string                `json:"fingerprint"`
	Worker        int                   `json:"worker"`                   // index into Config.Workers; -1 = local (cache or journal)
	Stolen        bool                  `json:"stolen,omitempty"`         // dispatched via a steal
	WorkerCache   bool                  `json:"worker_cache,omitempty"`   // worker answered from its cell cache
	LocalCache    bool                  `json:"local_cache,omitempty"`    // served from CacheDir without dispatch
	Resumed       bool                  `json:"resumed,omitempty"`        // served from the crash-resume journal
	Hedged        bool                  `json:"hedged,omitempty"`         // a speculative second attempt was launched
	HedgeWon      bool                  `json:"hedge_won,omitempty"`      // the speculative attempt delivered the payload
	Audited       bool                  `json:"audited,omitempty"`        // re-executed by the audit sampler
	AuditMismatch bool                  `json:"audit_mismatch,omitempty"` // audit caught a disagreement (payload arbitrated locally)
	Attempts      int                   `json:"attempts"`                 // dispatch attempts (0 for local cache/journal)
	Err           *runner.WireCellError `json:"err,omitempty"`            // terminal deterministic failure
}

// Report summarizes a fleet sweep for manifests and the CI gates.
type Report struct {
	Cells            int           `json:"cells"`
	Workers          int           `json:"workers"`
	LocalCacheHits   int           `json:"local_cache_hits"`
	ResumedCells     int           `json:"resumed_cells"`
	Computed         int           `json:"computed"`
	Failures         int           `json:"failures"`
	Steals           int64         `json:"steals"`
	Reassigned       int64         `json:"reassigned"`
	RetiredWorkers   int           `json:"retired_workers"`
	DigestMismatches int64         `json:"digest_mismatches"`
	Quarantined      int64         `json:"quarantined"`
	Audits           int64         `json:"audits"`
	AuditMismatches  int64         `json:"audit_mismatches"`
	HedgesLaunched   int64         `json:"hedges_launched"`
	HedgeWins        int64         `json:"hedge_wins"`
	CacheWriteErrors int64         `json:"cache_write_errors"`
	CacheReadErrors  int64         `json:"cache_read_errors"`
	CacheEvicted     int64         `json:"cache_evicted"`
	CacheScrubbed    int64         `json:"cache_scrubbed"`
	CacheCorrupt     int64         `json:"cache_corrupt"`
	CacheDegraded    bool          `json:"cache_degraded,omitempty"`
	Elapsed          time.Duration `json:"elapsed_ns"`
	Outcomes         []CellOutcome `json:"outcomes"` // paper order
}

// CacheHitRate is the fraction of cells served from the local cache —
// what the CI cache-warm gate asserts against.
func (r Report) CacheHitRate() float64 {
	if r.Cells == 0 {
		return 0
	}
	return float64(r.LocalCacheHits) / float64(r.Cells)
}

// workerError is the JSON error body a worker answers with (the server's
// apiError shape), carrying the wire CellError for deterministic failures.
type workerError struct {
	Status    int                   `json:"status"`
	Msg       string                `json:"error"`
	CellError *runner.WireCellError `json:"cell_error"`
}

// coord is one Run invocation's state.
type coord struct {
	cfg     Config
	client  *http.Client
	cache   *cellcache.Cache // nil without CacheDir
	journal *journal         // nil without JournalPath
	queue   *stealQueue
	specs   map[string]experiments.CellSpec
	latency *telemetry.Histogram // successful attempt latency (ms), feeds HedgeAuto

	integrityDigestMismatch *telemetry.Counter
	integrityQuarantined    *telemetry.Counter
	integrityAudits         *telemetry.Counter
	integrityAuditMismatch  *telemetry.Counter
	integrityLocalRecompute *telemetry.Counter
	hedgeLaunched           *telemetry.Counter
	hedgeWins               *telemetry.Counter
	hedgeCancelled          *telemetry.Counter

	mu          sync.Mutex
	payloads    map[string]json.RawMessage
	outcomes    map[string]*CellOutcome
	quarantined map[int]bool
	fatal       error // non-retryable coordinator-level failure (config skew)
}

// counterDelta remembers a counter's value at sweep start so the report
// can publish this run's contribution (registries are cumulative).
type counterDelta struct {
	c    *telemetry.Counter
	base int64
}

func delta(c *telemetry.Counter) counterDelta { return counterDelta{c, c.Load()} }
func (d counterDelta) since() int64           { return d.c.Load() - d.base }

// Run executes the full sweep over the fleet and returns the merged
// results in paper order — byte-identical to a serial run of the same
// workload — plus the dispatch report. Deterministic cell failures
// surface as keep-going placeholder Results (and in the report), not as a
// Run error; Run itself fails only when cells could not be executed at
// all (every worker retired, config rejected, context cancelled).
func Run(ctx context.Context, cfg Config) ([]*experiments.Result, Report, error) {
	if len(cfg.Workers) == 0 {
		return nil, Report{}, fmt.Errorf("fleet: no workers configured")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.WorkerStrikes <= 0 {
		cfg.WorkerStrikes = 3
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Minute
	}
	if cfg.AuditFraction < 0 || cfg.AuditFraction > 1 {
		return nil, Report{}, fmt.Errorf("fleet: audit fraction %v not in [0,1]", cfg.AuditFraction)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	for i, w := range cfg.Workers {
		cfg.Workers[i] = strings.TrimRight(w, "/")
	}

	r := cfg.Registry
	c := &coord{
		cfg:         cfg,
		specs:       map[string]experiments.CellSpec{},
		payloads:    map[string]json.RawMessage{},
		outcomes:    map[string]*CellOutcome{},
		quarantined: map[int]bool{},
		latency:     r.Histogram("fleet.attempt_ms"),

		integrityDigestMismatch: r.Counter("fleet.integrity.digest_mismatch"),
		integrityQuarantined:    r.Counter("fleet.integrity.quarantined"),
		integrityAudits:         r.Counter("fleet.integrity.audits"),
		integrityAuditMismatch:  r.Counter("fleet.integrity.audit_mismatch"),
		integrityLocalRecompute: r.Counter("fleet.integrity.local_recompute"),
		hedgeLaunched:           r.Counter("fleet.hedge.launched"),
		hedgeWins:               r.Counter("fleet.hedge.wins"),
		hedgeCancelled:          r.Counter("fleet.hedge.cancelled"),
	}
	if cfg.Client != nil {
		c.client = wrapClient(cfg.Client, cfg.NetFault)
	} else {
		c.client = newClient(&cfg)
	}
	// The disk-fault FS sits under every coordinator-side storage layer —
	// cache and journal — exactly like the net-fault transport sits under
	// every request. Cache counter deltas anchor here, before the open-time
	// scrub runs.
	cacheDeltas := map[string]counterDelta{
		"write_errors": delta(r.Counter("fleet.cache.write_errors")),
		"read_errors":  delta(r.Counter("fleet.cache.read_errors")),
		"evicted":      delta(r.Counter("fleet.cache.evicted")),
		"scrubbed":     delta(r.Counter("fleet.cache.scrubbed")),
		"corrupt":      delta(r.Counter("fleet.cache.corrupt")),
	}
	fsys := faultinject.NewDiskFS(cfg.DiskFault, nil)
	if cfg.CacheDir != "" {
		cache, err := cellcache.OpenWith(cfg.CacheDir, r, cellcache.Options{
			FS: fsys, MaxBytes: cfg.CacheMaxBytes, ScrubOnOpen: true,
		})
		if err != nil {
			return nil, Report{}, fmt.Errorf("fleet: opening cell cache: %w", err)
		}
		c.cache = cache
	}

	start := time.Now()
	bench := experiments.Bench{Seed: cfg.Seed, Scale: cfg.Scale, Nets: cfg.Nets}
	keys := experiments.CellKeys()
	rep := Report{Cells: len(keys), Workers: len(cfg.Workers)}

	if cfg.JournalPath != "" {
		j, err := openJournal(fsys, cfg.JournalPath, bench.Fingerprint(), cfg.Resume, r)
		if err != nil {
			return nil, Report{}, err
		}
		c.journal = j
		defer j.close()
		if j.resumable() {
			cfg.Logf("fleet: resuming from %s (%d verified completions, %d corrupt records skipped)",
				cfg.JournalPath, len(j.done), j.corruptRecords())
		}
	}

	// Phase 1: serve everything already settled — journaled completions
	// from a killed predecessor first (cache-independent), then the local
	// cell cache. Cache hits are journaled too, so the NEXT resume does
	// not depend on the cache surviving.
	var todo []string
	for _, key := range keys {
		spec := bench.CellSpec(key)
		c.specs[key] = spec
		fp := spec.Fingerprint()
		if c.journal != nil {
			if jfp, payload, ok := c.journal.lookup(key); ok && jfp == fp {
				c.payloads[key] = payload
				c.outcomes[key] = &CellOutcome{Cell: key, Fingerprint: fp, Worker: -1, Resumed: true}
				rep.ResumedCells++
				continue
			}
		}
		if c.cache != nil {
			if payload, ok := c.cache.Get(fp); ok {
				c.payloads[key] = payload
				c.outcomes[key] = &CellOutcome{Cell: key, Fingerprint: fp, Worker: -1, LocalCache: true}
				rep.LocalCacheHits++
				if c.journal != nil {
					if err := c.journal.complete(key, fp, payload); err != nil {
						cfg.Logf("fleet: journaling cache hit %q: %v", key, err)
					}
				}
				continue
			}
		}
		todo = append(todo, key)
	}
	cfg.Logf("fleet: %d cells, %d resumed from journal, %d from local cache, %d to dispatch over %d workers",
		len(keys), rep.ResumedCells, rep.LocalCacheHits, len(todo), len(cfg.Workers))

	// Phase 2: work-stealing dispatch of the rest. Report counts are
	// deltas over the run, because the registry's counters are cumulative
	// across runs sharing it. The cache scrub/write-error counts start at
	// open (before phase 1), so their deltas are anchored there instead.
	c.queue = newStealQueue(len(cfg.Workers), todo, r)
	deltas := map[string]counterDelta{
		"steals":     delta(c.queue.steals),
		"reassigned": delta(c.queue.reassigns),
		"digest":     delta(c.integrityDigestMismatch),
		"quarantine": delta(c.integrityQuarantined),
		"audits":     delta(c.integrityAudits),
		"auditmiss":  delta(c.integrityAuditMismatch),
		"hedges":     delta(c.hedgeLaunched),
		"hedgewins":  delta(c.hedgeWins),
	}
	var wg sync.WaitGroup
	for w := range cfg.Workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(ctx, w)
		}(w)
	}
	wg.Wait()

	rep.Steals = deltas["steals"].since()
	rep.Reassigned = deltas["reassigned"].since()
	rep.DigestMismatches = deltas["digest"].since()
	rep.Quarantined = deltas["quarantine"].since()
	rep.Audits = deltas["audits"].since()
	rep.AuditMismatches = deltas["auditmiss"].since()
	rep.HedgesLaunched = deltas["hedges"].since()
	rep.HedgeWins = deltas["hedgewins"].since()
	rep.CacheWriteErrors = cacheDeltas["write_errors"].since()
	rep.CacheReadErrors = cacheDeltas["read_errors"].since()
	rep.CacheEvicted = cacheDeltas["evicted"].since()
	rep.CacheScrubbed = cacheDeltas["scrubbed"].since()
	rep.CacheCorrupt = cacheDeltas["corrupt"].since()
	if c.cache != nil {
		rep.CacheDegraded = c.cache.Degraded()
	}
	rep.RetiredWorkers = len(cfg.Workers) - c.queue.alive()
	rep.Elapsed = time.Since(start)

	if c.fatal != nil {
		return nil, rep, c.fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}
	if left := c.queue.unassigned(); len(left) > 0 {
		return nil, rep, fmt.Errorf("fleet: %d cells unassigned after every worker retired: %v", len(left), left)
	}

	// Phase 3: merge in paper order; deterministic failures become the
	// same placeholder Results a local keep-going run produces.
	var results []*experiments.Result
	for _, key := range keys {
		out := c.outcomes[key]
		if out == nil {
			return nil, rep, fmt.Errorf("fleet: cell %q never completed", key)
		}
		rep.Outcomes = append(rep.Outcomes, *out)
		if out.Err != nil {
			rep.Failures++
			results = append(results, &experiments.Result{
				ID: "Job " + key, Title: "experiment job failed", Err: out.Err.CellError(),
			})
			continue
		}
		rs, err := experiments.DecodeCellPayload(c.payloads[key])
		if err != nil {
			return nil, rep, fmt.Errorf("fleet: corrupt payload for cell %q: %w", key, err)
		}
		results = append(results, rs...)
		if !out.LocalCache && !out.Resumed {
			rep.Computed++
		}
	}
	return results, rep, nil
}

// workerLoop drains cells for worker w until the sweep finishes or the
// worker is retired (struck out, or quarantined for an integrity
// violation).
func (c *coord) workerLoop(ctx context.Context, w int) {
	strikes := 0
	for {
		cell, stolen, ok := c.queue.next(w)
		if !ok {
			return
		}
		if ctx.Err() != nil {
			c.queue.reassign(cell, w)
			c.queue.retire(w)
			return
		}
		if c.journal != nil {
			if err := c.journal.assign(cell, w); err != nil {
				c.cfg.Logf("fleet: journaling assignment of %q: %v", cell, err)
			}
		}
		res := c.runCell(ctx, w, cell)
		fp := c.specs[cell].Fingerprint()
		switch res.kind {
		case attemptOK:
			strikes = 0
			out := &CellOutcome{
				Cell: cell, Fingerprint: fp, Worker: res.worker, Stolen: stolen,
				WorkerCache: res.workerCache, Attempts: 1,
				Hedged: res.hedge || res.worker != w, HedgeWon: res.hedge,
			}
			if out.Hedged {
				out.Attempts = 2
			}
			payload := res.payload
			if c.auditSelected(cell) {
				payload = c.audit(ctx, cell, out, payload)
			}
			c.mu.Lock()
			c.payloads[cell] = payload
			c.mu.Unlock()
			if c.cache != nil {
				_ = c.cache.Put(fp, payload) // best effort; a miss next run recomputes
			}
			if c.journal != nil {
				if err := c.journal.complete(cell, fp, payload); err != nil {
					c.cfg.Logf("fleet: journaling completion of %q: %v", cell, err)
				}
			}
			c.record(cell, out)
			c.queue.complete()
			if c.isQuarantined(w) {
				return // an audit found this worker lying mid-sweep
			}
		case attemptTerminal:
			strikes = 0
			out := &CellOutcome{
				Cell: cell, Fingerprint: fp, Worker: res.worker, Stolen: stolen,
				Attempts: 1, Err: res.cellErr,
			}
			c.record(cell, out)
			c.queue.complete()
		case attemptFatal:
			// Coordinator-level failure (request rejected, config skew):
			// no worker will do better, fail the run.
			c.mu.Lock()
			if c.fatal == nil {
				c.fatal = fmt.Errorf("fleet: cell %q on worker %d: %w", cell, w, res.err)
			}
			c.mu.Unlock()
			c.queue.complete()
		case attemptIntegrity:
			// The offending worker is already quarantined (attempt did
			// it). Put the cell back into play for the survivors; if the
			// offender was this loop's own worker, the loop is done.
			c.queue.reassign(cell, w)
			if c.isQuarantined(w) {
				return
			}
		default: // attemptRetry
			strikes++
			c.cfg.Logf("fleet: worker %d failed cell %q (strike %d/%d): %v",
				w, cell, strikes, c.cfg.WorkerStrikes, res.err)
			c.queue.reassign(cell, w)
			if strikes >= c.cfg.WorkerStrikes {
				c.cfg.Logf("fleet: retiring worker %d (%s)", w, c.cfg.Workers[w])
				c.queue.retire(w)
				return
			}
			// Satellite of the integrity work: strike pauses honor the
			// server's Retry-After and de-synchronize via deterministic
			// jitter. The cell is already reassigned — only this worker's
			// next poll waits.
			if !sleepCtx(ctx, retryBackoff(strikes, res.retryAfter, c.cfg.Seed, cell)) {
				c.queue.retire(w)
				return
			}
		}
	}
}

// record stores a completed cell's outcome under the lock.
func (c *coord) record(cell string, out *CellOutcome) {
	c.mu.Lock()
	c.outcomes[cell] = out
	c.mu.Unlock()
}
