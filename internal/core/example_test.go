package core_test

import (
	"fmt"

	"ristretto/internal/core"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
)

// The paper's Figure 5: −11 × 13 computed as a 1-D convolution between the
// dense atom streams of a 4-bit activation and an 8-bit weight.
func ExampleMultiplyStreaming() {
	product, steps := core.MultiplyStreaming(13, 4, -11, 8, 2)
	fmt.Printf("product %d in %d steps, partial sums %v\n", product, len(steps), steps)
	// Output:
	// product -143 in 5 steps, partial sums [-3 -44 -96 0 0]
}

// Eq. 3/4: intersection latency from stream lengths alone.
func ExampleSteps() {
	// 100 activation atoms against 40 weight atoms on 32 multipliers:
	// two rounds (chunks of 32 and 8) plus the final pipeline drain.
	fmt.Println(core.Steps(100, 40, 32))
	// Output:
	// 207
}

// A complete mixed-precision sparse convolution through condensed streaming
// computation, verified against the dense reference.
func ExampleConvolve() {
	f := tensor.NewFeatureMap(1, 2, 2, 8) // one 2×2 8-bit channel
	f.Set(0, 0, 0, 9)
	f.Set(0, 1, 0, 68)
	f.Set(0, 1, 1, 3)
	w := tensor.NewKernelStack(2, 1, 2, 2, 4) // two 2×2 4-bit kernels
	w.Set(0, 0, 0, 0, 5)
	w.Set(0, 0, 1, 1, -3)
	w.Set(1, 0, 0, 1, 7)

	out, stats := core.Convolve(f, w, 1, 1, core.Config{Gran: 2, Multiplier: 8})
	ref := refconv.Conv(f, w, 1, 1)
	fmt.Println("matches reference:", out.Equal(ref))
	fmt.Println("atom products:", stats.Products)
	// Output:
	// matches reference: true
	// atom products: 25
}
