package core

import (
	"ristretto/internal/atom"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
)

// Config selects the CSC parameters.
type Config struct {
	Gran       atom.Granularity // atom bit-width N (default 2)
	Multiplier int              // static stream length / parallel atom multipliers
	TileW      int              // feature-map tile width (0 = whole plane)
	TileH      int              // feature-map tile height (0 = whole plane)
	Dense      bool             // keep zero values and zero atoms (Ristretto-ns)
}

func (c Config) withDefaults() Config {
	if c.Gran == 0 {
		c.Gran = 2
	}
	if c.Multiplier == 0 {
		c.Multiplier = 32
	}
	return c
}

// Stats aggregates the work a CSC convolution performed.
type Stats struct {
	Steps       int // total intersection steps (per-tile serialized)
	Products    int // atom multiplications
	ActAtoms    int // total activation atoms streamed (over all tiles/rounds once)
	WeightAtoms int // total weight atoms in static streams (unique)
	Rounds      int
	SliceDrains int
}

// Convolve runs the full CSC pipeline for one layer on a single stream of
// compute (the multi-tile parallel mapping lives in internal/ristretto):
// flatten and compress each (input channel, tile) pair, intersect against
// the per-channel static weight streams, overlap-add the per-tile full
// convolutions, and extract the strided/padded output. The result is
// bit-exact against refconv.Conv.
func Convolve(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) (*tensor.OutputMap, Stats) {
	full, st := ConvolveFull(f, w, cfg)
	out := refconv.ExtractStrided(full, f.H, f.W, w.KH, w.KW, stride, pad)
	return out, st
}

// ConvolveFull computes the full-convolution buffer for a whole layer via
// condensed streaming computation.
func ConvolveFull(f *tensor.FeatureMap, w *tensor.KernelStack, cfg Config) (*tensor.OutputMap, Stats) {
	cfg = cfg.withDefaults()
	if f.C != w.C {
		panic("core: channel mismatch")
	}
	tw, th := cfg.TileW, cfg.TileH
	if tw == 0 {
		tw = f.W
	}
	if th == 0 {
		th = f.H
	}
	global := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	var st Stats

	// Static weight atom streams are per input channel and shared by all
	// tiles of that channel (weights are compressed offline, once).
	wstreams := make([][]WeightAtom, f.C)
	flatK, flatT := FlattenKernels, FlattenTile
	if cfg.Dense {
		flatK, flatT = FlattenKernelsDense, FlattenTileDense
	}
	for c := 0; c < f.C; c++ {
		wstreams[c] = CompressWeights(flatK(w, c, nil), w.Bits, cfg.Gran, cfg.Dense)
		st.WeightAtoms += len(wstreams[c])
	}

	for _, tl := range tensor.TileGrid(f.W, f.H, tw, th) {
		tileFull := tensor.NewOutputMap(w.K, tl.H+w.KH-1, tl.W+w.KW-1)
		for c := 0; c < f.C; c++ {
			acts := CompressActs(flatT(f, c, tl), f.Bits, cfg.Gran, cfg.Dense)
			st.ActAtoms += len(acts)
			r := Intersect(acts, wstreams[c], cfg.Multiplier, w.KH, w.KW, tl.W, tl.H, tileFull)
			st.Steps += r.Steps
			st.Products += r.Products
			st.Rounds += r.Rounds
			st.SliceDrains += r.SliceDrains
		}
		refconv.AddTileFull(global, tileFull, tl)
	}
	return global, st
}

// MultiplyStreaming multiplies one activation by one weight through the 1-D
// convolution of their dense atom streams, returning the product and the
// per-step partial sums — the paper's Figure 5 walk-through. The activation
// stream slides across the static weight stream one atom per step; at each
// step the atoms in the intersection region multiply in parallel.
func MultiplyStreaming(a int32, aBits int, wv int32, wBits int, n atom.Granularity) (product int32, stepSums []int32) {
	aa := atom.DecomposeDense(a, aBits, n)
	wa := atom.DecomposeDense(wv, wBits-1, n)
	// Apply the weight's sign to its atoms (sign-magnitude).
	steps := len(aa) + len(wa) - 1
	stepSums = make([]int32, steps)
	for s := 0; s < steps; s++ {
		var sum int32
		// At step s, activation atom i aligns with weight atom j = s - i.
		for i := 0; i < len(aa); i++ {
			j := s - i
			if j < 0 || j >= len(wa) {
				continue
			}
			p := int32(aa[i].Mag) * int32(wa[j].Mag) << (aa[i].Shift + wa[j].Shift)
			if wa[j].Sign {
				p = -p
			}
			sum += p
		}
		stepSums[s] = sum
		product += sum
	}
	return product, stepSums
}
