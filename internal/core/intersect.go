package core

import (
	"fmt"

	"ristretto/internal/tensor"
)

// OutCoord applies Eq. (1): the full-convolution output coordinate of the
// product between a weight at kernel position (xw,yw) and an activation at
// tile position (xin,yin), for a kh×kw kernel window.
func OutCoord(xw, yw, xin, yin, kh, kw int) (xout, yout int) {
	return kw - 1 - xw + xin, kh - 1 - yw + yin
}

// OutAddr applies Eq. (2): the linear accumulate-buffer address of a full-
// convolution coordinate for a tile of input width tileW.
func OutAddr(xout, yout, tileW, kw int) int {
	return yout*(tileW+kw-1) + xout
}

// IntersectResult reports what one tile/channel intersection produced.
type IntersectResult struct {
	Steps       int // intersection steps actually taken
	Products    int // atom multiplications performed
	Deliveries  int // accumulator deliveries into the Atomulator (last flags)
	Rounds      int // static-stream reloads (ceil(S/N))
	SliceDrains int // accumulate-bank drain events (decoupled weight shift)
}

// Intersect performs the intersection phase functionally: the weight atom
// stream is split into static chunks of at most n atoms; for each chunk the
// activation atom stream slides across it, every (activation atom, weight
// atom) pair multiplies once, and products accumulate into the full-
// convolution buffer out (K × (tileH+kh-1) × (tileW+kw-1)).
//
// The implementation mirrors the decoupled-shift microarchitecture: products
// are aligned by the activation shift when computed, accumulated per
// (channel, address) bank, and the weight-slice shift is applied when a
// slice's bank drains. Because CompressWeights emits slice-homogeneous
// groups, every chunk is drained with a single well-defined slice shift.
func Intersect(acts []ActAtom, weights []WeightAtom, n int, kh, kw, tileW, tileH int, out *tensor.OutputMap) IntersectResult {
	if n <= 0 {
		panic("core: need at least one multiplier")
	}
	var res IntersectResult
	fullW := tileW + kw - 1
	fullH := tileH + kh - 1
	if out.W != fullW || out.H != fullH {
		panic(fmt.Sprintf("core: output buffer %dx%d, want full-conv %dx%d", out.W, out.H, fullW, fullH))
	}
	if len(acts) == 0 || len(weights) == 0 {
		return res
	}
	// Accumulate banks: one per (output channel, address), holding the
	// slice-unshifted partial sums of the current chunk.
	type bankKey struct {
		k    uint16
		addr int
	}
	for start := 0; start < len(weights); start += n {
		end := start + n
		if end > len(weights) {
			end = len(weights)
		}
		chunk := weights[start:end]
		res.Rounds++
		// All atoms in a chunk must share a slice shift for the decoupled
		// drain; CompressWeights guarantees slice-major order, but a chunk
		// can straddle a slice boundary, so drain per distinct shift.
		banks := map[uint8]map[bankKey]int32{}
		for _, a := range acts {
			for _, w := range chunk {
				res.Products++
				p := int32(w.Mag) * (int32(a.Mag) << a.Shift)
				if w.Sign {
					p = -p
				}
				xo, yo := OutCoord(int(w.X), int(w.Y), int(a.X), int(a.Y), kh, kw)
				if xo < 0 || xo >= fullW || yo < 0 || yo >= fullH {
					continue // comp module: out-of-boundary products dropped
				}
				if a.Last {
					res.Deliveries++
				}
				b := banks[w.Shift]
				if b == nil {
					b = map[bankKey]int32{}
					banks[w.Shift] = b
				}
				b[bankKey{w.K, OutAddr(xo, yo, tileW, kw)}] += p
			}
		}
		// Drain: apply the decoupled weight-slice shift while aggregating
		// into the output buffer.
		for shift, b := range banks {
			res.SliceDrains++
			for key, v := range b {
				yo := key.addr / fullW
				xo := key.addr % fullW
				out.Add(int(key.k), yo, xo, v<<shift)
			}
		}
		// Steps: the activation stream replays once per round; the final
		// chunk adds its pipeline drain (Eq. 3/4 accounting happens in
		// Steps(); here we track the same total).
	}
	res.Steps = Steps(len(acts), len(weights), n)
	return res
}

// MulSteps reports the number of 1-D convolution steps needed to multiply an
// aBits-bit unsigned activation by a wBits-bit signed weight at granularity n
// with dense atom streams — the Figure 5 example takes len(a)+len(w)-1 = 5
// steps for 4b×8b at 2-bit atoms. The weight stream covers the wBits-1
// magnitude bits (sign-magnitude).
func MulSteps(aBits, wBits int, n int) int {
	if n <= 0 || aBits <= 0 || wBits <= 1 {
		return 0 // no granularity / no magnitude bits: no convolution steps
	}
	la := (aBits + n - 1) / n
	lw := (wBits - 1 + n - 1) / n
	return la + lw - 1
}
