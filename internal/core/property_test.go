package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ristretto/internal/atom"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// Property: for arbitrary small sparse operands and arbitrary CSC
// configuration, Convolve is bit-exact against the dense reference.
func TestConvolveEquivalenceProperty(t *testing.T) {
	f := func(seed int64, cfgBits uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		gran := atom.Granularity(int(cfgBits%3) + 1)
		mult := int(cfgBits>>2)%15 + 1
		abits := []int{2, 4, 8}[int(cfgBits>>6)%3]
		wbits := []int{2, 4, 8}[int(cfgBits>>8)%3]
		stride := int(cfgBits>>10)%2 + 1
		pad := int(cfgBits>>11) % 2
		g := workload.NewGen(seed)
		c := rng.Intn(3) + 1
		h := rng.Intn(5) + 3
		wd := rng.Intn(5) + 3
		k := rng.Intn(3) + 1
		ks := rng.Intn(2)*2 + 1
		fm := g.FeatureMapExact(c, h, wd, abits, gran, 0.5, 0.7)
		kr := g.KernelsExact(k, c, ks, ks, wbits, gran, 0.6, 0.7)
		got, _ := Convolve(fm, kr, stride, pad, Config{Gran: gran, Multiplier: mult})
		want := refconv.Conv(fm, kr, stride, pad)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of products Intersect performs always equals the
// product of the stream lengths (every atom meets every atom), regardless
// of multiplier count.
func TestIntersectProductCountProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		g := workload.NewGen(seed)
		n := int(n8)%40 + 1
		fm := g.FeatureMapExact(1, 5, 5, 8, 2, 0.5, 0.7)
		kr := g.KernelsExact(2, 1, 3, 3, 8, 2, 0.5, 0.7)
		acts := CompressActs(FlattenTile(fm, 0, tensor.Tile{W: 5, H: 5}), 8, 2, false)
		ws := CompressWeights(FlattenKernels(kr, 0, nil), 8, 2, false)
		out := tensor.NewOutputMap(2, 7, 7)
		r := Intersect(acts, ws, n, 3, 3, 5, 5, out)
		return r.Products == len(acts)*len(ws) && r.Steps == Steps(len(acts), len(ws), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting the weight stream across two intersections (as the
// ping-pong rounds do) accumulates to the same output as one intersection —
// linearity of the outer product.
func TestIntersectSplitLinearityProperty(t *testing.T) {
	f := func(seed int64, cut8 uint8) bool {
		g := workload.NewGen(seed)
		fm := g.FeatureMapExact(1, 4, 6, 8, 2, 0.6, 0.7)
		kr := g.KernelsExact(3, 1, 3, 3, 8, 2, 0.6, 0.7)
		acts := CompressActs(FlattenTile(fm, 0, tensor.Tile{W: 6, H: 4}), 8, 2, false)
		ws := CompressWeights(FlattenKernels(kr, 0, nil), 8, 2, false)
		if len(ws) == 0 {
			return true
		}
		cut := int(cut8) % len(ws)
		whole := tensor.NewOutputMap(3, 6, 8)
		Intersect(acts, ws, 8, 3, 3, 6, 4, whole)
		split := tensor.NewOutputMap(3, 6, 8)
		Intersect(acts, ws[:cut], 8, 3, 3, 6, 4, split)
		Intersect(acts, ws[cut:], 8, 3, 3, 6, 4, split)
		return whole.Equal(split)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MultiplyStreaming is a complete multiplier for all operand
// ranges and granularities.
func TestMultiplyStreamingProperty(t *testing.T) {
	f := func(a8 uint8, w16 int16, granSeed uint8) bool {
		gran := atom.Granularity(granSeed%3 + 1)
		a := int32(a8)
		w := int32(w16 % 128)
		p, steps := MultiplyStreaming(a, 8, w, 8, gran)
		return p == a*w && len(steps) == MulSteps(8, 8, int(gran))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CompressActs emits atoms grouped per value with exactly one Last
// flag per non-zero value, in stream order.
func TestCompressActsStructureProperty(t *testing.T) {
	f := func(seed int64, bits8 uint8) bool {
		bits := []int{2, 4, 8}[bits8%3]
		g := workload.NewGen(seed)
		fm := g.FeatureMapExact(1, 6, 6, bits, 2, 0.5, 0.7)
		elems := FlattenTile(fm, 0, tensor.Tile{W: 6, H: 6})
		atoms := CompressActs(elems, bits, 2, false)
		lasts := 0
		for _, a := range atoms {
			if a.Last {
				lasts++
			}
		}
		if lasts != len(elems) {
			return false
		}
		// Reconstruct each value from its contiguous atom run.
		i := 0
		for _, e := range elems {
			var v int32
			for {
				a := atoms[i]
				v += int32(a.Mag) << a.Shift
				i++
				if a.Last {
					break
				}
			}
			if v != e.Val {
				return false
			}
		}
		return i == len(atoms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
