package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// oracleCompressWeights is the pre-optimization map-based implementation of
// CompressWeights, kept verbatim as the ordering oracle: the counting-sort
// rewrite must emit a byte-identical stream (chunking, and therefore every
// simulated cycle count, depends on the order).
func oracleCompressWeights(elems []WeightElem, bits int, n atom.Granularity, dense bool) []WeightAtom {
	slices := n.Count(bits - 1)
	bySlice := make([][]WeightAtom, slices)
	for _, e := range elems {
		var atoms []atom.Atom
		if dense {
			atoms = atom.DecomposeDense(e.Val, bits-1, n)
		} else {
			atoms = atom.Decompose(e.Val, bits-1, n)
		}
		for _, a := range atoms {
			s := int(a.Shift) / int(n)
			bySlice[s] = append(bySlice[s], WeightAtom{
				Mag: a.Mag, Shift: a.Shift, Sign: a.Sign, X: e.X, Y: e.Y, K: e.K,
			})
		}
	}
	var out []WeightAtom
	for _, s := range bySlice {
		byChan := map[uint16][]WeightAtom{}
		var order []uint16
		for _, a := range s {
			if _, ok := byChan[a.K]; !ok {
				order = append(order, a.K)
			}
			byChan[a.K] = append(byChan[a.K], a)
		}
		for i := 0; ; i++ {
			emitted := false
			for _, k := range order {
				if i < len(byChan[k]) {
					out = append(out, byChan[k][i])
					emitted = true
				}
			}
			if !emitted {
				break
			}
		}
	}
	return out
}

func TestCompressWeightsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 40; i++ {
		gran := atom.Granularity(rng.Intn(3) + 1)
		bits := []int{2, 4, 8}[rng.Intn(3)]
		k := 1 + rng.Intn(20)
		ks := 1 + 2*rng.Intn(2)
		g := workload.NewGen(int64(500 + i))
		w := g.KernelsExact(k, 2, ks, ks, bits, gran, 0.3+rng.Float64()*0.7, 0.7)
		for c := 0; c < 2; c++ {
			for _, dense := range []bool{false, true} {
				var elems []WeightElem
				if dense {
					elems = FlattenKernelsDense(w, c, nil)
				} else {
					elems = FlattenKernels(w, c, nil)
				}
				got := CompressWeights(elems, bits, gran, dense)
				want := oracleCompressWeights(elems, bits, gran, dense)
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("iter %d c=%d dense=%v: stream order diverged from oracle\n got %v\nwant %v",
						i, c, dense, got, want)
				}
			}
		}
	}
}

func TestStreamTileActsMatchesCompressActs(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 40; i++ {
		gran := atom.Granularity(rng.Intn(3) + 1)
		bits := []int{2, 4, 8}[rng.Intn(3)]
		g := workload.NewGen(int64(600 + i))
		c, h, w := 1+rng.Intn(3), 2+rng.Intn(14), 2+rng.Intn(14)
		f := g.FeatureMapExact(c, h, w, bits, gran, 0.2+rng.Float64()*0.8, 0.7)
		tw, th := 1+rng.Intn(w), 1+rng.Intn(h)
		for _, tl := range tensor.TileGrid(w, h, tw, th) {
			for ch := 0; ch < c; ch++ {
				got := StreamTileActs(f, ch, tl, gran)
				want := CompressActs(FlattenTile(f, ch, tl), bits, gran, false)
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("iter %d ch=%d tile %+v: fused stream diverged\n got %v\nwant %v",
						i, ch, tl, got, want)
				}
			}
		}
	}
}

func TestStreamTileActsAllZero(t *testing.T) {
	f := tensor.NewFeatureMap(1, 8, 8, 8)
	got := StreamTileActs(f, 0, tensor.Tile{W: 8, H: 8}, 2)
	if len(got) != 0 {
		t.Fatalf("all-zero plane produced %d atoms", len(got))
	}
}
