// Package core implements condensed streaming computation (CSC), the paper's
// primary contribution (Section III): a unified dataflow in which high-level
// sparse convolution and low-level mixed-precision multiplication are both
// expressed as the outer product of compact non-zero atom streams.
//
// The pipeline has three phases:
//
//  1. Flattening — feature-map tiles and kernels are reshaped into 1-D value
//     streams in zigzag order, each element carrying its spatial coordinates
//     and channel index as metadata.
//  2. Compression — zero values and zero atoms are squeezed out, producing
//     compact atom streams whose elements carry shift offsets, sign bits and
//     last-atom flags.
//  3. Intersection — a 1-D convolution between the static weight atom stream
//     and the sliding activation atom stream; partial products are aligned by
//     the activation shift immediately and by the weight-slice shift at
//     aggregation time (decoupled shift, Section IV-C2).
//
// The functional implementation here is bit-exact against the dense reference
// convolution; the cycle-accurate microarchitecture lives in
// internal/ristretto and reuses these streams.
package core

import (
	"math/bits"

	"ristretto/internal/atom"
	"ristretto/internal/sparse"
	"ristretto/internal/tensor"
)

// ActElem is one non-zero activation value in a flattened tile stream, with
// its tile-relative coordinates.
type ActElem struct {
	Val  int32
	X, Y uint8
}

// WeightElem is one non-zero weight in a flattened kernel stream: kernel-
// window coordinates plus the output channel it contributes to. The input
// channel is implicit (streams are built per input channel).
type WeightElem struct {
	Val  int32
	X, Y uint8
	K    uint16
}

// ActAtom is one non-zero atom of an activation, as produced by the Atomizer:
// the 2-bit (or 1/3-bit) digit, its shift offset, the last-atom flag, and the
// owning activation's coordinates. Activation atoms are unsigned (ReLU).
type ActAtom struct {
	Mag   uint8
	Shift uint8
	Last  bool
	X, Y  uint8
}

// WeightAtom is one non-zero atom of a weight in the static stream: digit,
// shift offset (its slice), sign, the kernel-window coordinates and output
// channel of the owning weight.
type WeightAtom struct {
	Mag   uint8
	Shift uint8
	Sign  bool
	X, Y  uint8
	K     uint16
}

// FlattenTile extracts the non-zero activations of channel c within tile tl
// in zigzag (row-major) order — phase 1 for feature maps. Coordinates are
// tile-relative, as in the block COO-2D format.
func FlattenTile(f *tensor.FeatureMap, c int, tl tensor.Tile) []ActElem {
	return flattenTile(f, c, tl, false)
}

// FlattenTileDense keeps zero values too — the Ristretto-ns configuration,
// which disables sparsity entirely to isolate its contribution (Section V-B).
func FlattenTileDense(f *tensor.FeatureMap, c int, tl tensor.Tile) []ActElem {
	return flattenTile(f, c, tl, true)
}

func flattenTile(f *tensor.FeatureMap, c int, tl tensor.Tile, dense bool) []ActElem {
	var out []ActElem
	for y := 0; y < tl.H; y++ {
		for x := 0; x < tl.W; x++ {
			if v := f.At(c, tl.Y0+y, tl.X0+x); v != 0 || dense {
				out = append(out, ActElem{Val: v, X: uint8(x), Y: uint8(y)})
			}
		}
	}
	return out
}

// FlattenKernels extracts the non-zero weights of input channel c across the
// given output channels (nil = all), ordered output-channel-first — phase 1
// for kernels. In Ristretto this happens offline.
func FlattenKernels(w *tensor.KernelStack, c int, outChans []int) []WeightElem {
	return flattenKernels(w, c, outChans, false)
}

// FlattenKernelsDense keeps zero weights too (Ristretto-ns).
func FlattenKernelsDense(w *tensor.KernelStack, c int, outChans []int) []WeightElem {
	return flattenKernels(w, c, outChans, true)
}

func flattenKernels(w *tensor.KernelStack, c int, outChans []int, dense bool) []WeightElem {
	if outChans == nil {
		outChans = make([]int, w.K)
		for i := range outChans {
			outChans[i] = i
		}
	}
	var out []WeightElem
	for _, k := range outChans {
		for y := 0; y < w.KH; y++ {
			for x := 0; x < w.KW; x++ {
				if v := w.At(k, c, y, x); v != 0 || dense {
					out = append(out, WeightElem{Val: v, X: uint8(x), Y: uint8(y), K: uint16(k)})
				}
			}
		}
	}
	return out
}

// CompressActs decomposes a flattened activation stream into its non-zero
// atom stream — phase 2, performed on the fly by the Atomizer in hardware.
// With dense set, zero atoms of non-zero values are kept (Ristretto-ns).
func CompressActs(elems []ActElem, bits int, n atom.Granularity, dense bool) []ActAtom {
	if dense {
		var out []ActAtom
		for _, e := range elems {
			for _, a := range atom.DecomposeDense(e.Val, bits, n) {
				out = append(out, ActAtom{Mag: a.Mag, Shift: a.Shift, Last: a.Last, X: e.X, Y: e.Y})
			}
		}
		return out
	}
	n.Validate()
	total := 0
	for _, e := range elems {
		total += atom.DigitCount(absMag(e.Val), n)
	}
	out := make([]ActAtom, 0, total)
	for _, e := range elems {
		out = appendActAtoms(out, e.Val, bits, n, e.X, e.Y)
	}
	return out
}

func absMag(v int32) uint32 {
	if v < 0 {
		return uint32(-v)
	}
	return uint32(v)
}

// appendActAtoms appends the non-zero atoms of one activation value through
// the precomputed digit tables (generic fallback above 8-bit magnitudes).
// Activation atoms are unsigned: a negative value contributes its magnitude
// atoms, matching the pre-table behavior of dropping the sign bit.
func appendActAtoms(dst []ActAtom, v int32, bits int, n atom.Granularity, x, y uint8) []ActAtom {
	mag := absMag(v)
	if mag < 256 && bits > 0 && (bits >= 8 || mag < 1<<uint(bits)) {
		for _, a := range atom.Digits(mag, n) {
			dst = append(dst, ActAtom{Mag: a.Mag, Shift: a.Shift, Last: a.Last, X: x, Y: y})
		}
		return dst
	}
	for _, a := range atom.Decompose(v, bits, n) {
		dst = append(dst, ActAtom{Mag: a.Mag, Shift: a.Shift, Last: a.Last, X: x, Y: y})
	}
	return dst
}

// CompressWeights decomposes a flattened weight stream into its non-zero atom
// stream with the stream shuffle of Figure 9 applied: atoms are grouped by
// slice (identical shift offset) so the weight shift can be decoupled into
// the accumulate-buffer drain, and within a slice they are ordered output-
// channel-first so concurrent products target distinct accumulate banks.
// Magnitudes use bits-1 bits (sign-magnitude).
func CompressWeights(elems []WeightElem, bits int, n atom.Granularity, dense bool) []WeightAtom {
	n.Validate()
	if len(elems) == 0 {
		return nil
	}
	slices := n.Count(bits - 1)

	// Pass 1: per-slice atom counts and the channel-index bound, so the
	// grouping below runs over flat scratch arrays instead of per-value
	// slices and per-channel maps.
	sliceCount := make([]int, slices+1)
	maxK := uint16(0)
	total := 0
	var tmp []atom.Atom
	for _, e := range elems {
		tmp = weightDigits(tmp[:0], e.Val, bits-1, n, dense)
		for _, a := range tmp {
			sliceCount[int(a.Shift)/int(n)]++
			total++
		}
		if e.K > maxK {
			maxK = e.K
		}
	}

	// Pass 2: scatter atoms into slice-major order (stable within a slice,
	// i.e. elem order — exactly the old bySlice grouping).
	sliceOff := make([]int, slices+1)
	off := 0
	for s := 0; s <= slices; s++ {
		sliceOff[s] = off
		off += sliceCount[s]
		sliceCount[s] = sliceOff[s] // reuse as write cursor
	}
	flat := make([]WeightAtom, total)
	for _, e := range elems {
		sign := e.Val < 0
		tmp = weightDigits(tmp[:0], e.Val, bits-1, n, dense)
		for _, a := range tmp {
			s := int(a.Shift) / int(n)
			flat[sliceCount[s]] = WeightAtom{Mag: a.Mag, Shift: a.Shift, Sign: sign, X: e.X, Y: e.Y, K: e.K}
			sliceCount[s]++
		}
	}

	// Pass 3, per slice: channel-first interleave. Channels keep their
	// first-appearance order within the slice; atoms round-robin across
	// channels so adjacent stream slots target distinct accumulate banks
	// (the Figure 9 stream shuffle). A counting sort over a K-indexed
	// scratch array replaces the old per-channel map, byte-for-byte
	// preserving the emitted order.
	out := make([]WeightAtom, 0, total)
	kCount := make([]int32, int(maxK)+1)
	kOff := make([]int32, int(maxK)+1)
	order := make([]uint16, 0, int(maxK)+1)
	buf := make([]WeightAtom, total)
	for s := 0; s < slices; s++ {
		seg := flat[sliceOff[s]:sliceOff[s+1]]
		if len(seg) == 0 {
			continue
		}
		order = order[:0]
		for _, a := range seg {
			if kCount[a.K] == 0 {
				order = append(order, a.K)
			}
			kCount[a.K]++
		}
		pos := int32(0)
		maxCnt := int32(0)
		for _, k := range order {
			kOff[k] = pos
			pos += kCount[k]
			if kCount[k] > maxCnt {
				maxCnt = kCount[k]
			}
		}
		for _, a := range seg {
			buf[kOff[a.K]] = a
			kOff[a.K]++
		}
		// kOff[k] now points one past channel k's bucket; rewind to start.
		for _, k := range order {
			kOff[k] -= kCount[k]
		}
		for i := int32(0); i < maxCnt; i++ {
			for _, k := range order {
				if i < kCount[k] {
					out = append(out, buf[kOff[k]+i])
				}
			}
		}
		for _, k := range order {
			kCount[k] = 0
		}
	}
	return out
}

// weightDigits appends the atoms of one weight magnitude to dst: the table
// fast path for <8-bit magnitudes in sparse mode, atom.Decompose/
// DecomposeDense otherwise. Sign is applied by the caller (sign-magnitude:
// every atom of a value shares its sign).
func weightDigits(dst []atom.Atom, v int32, magBits int, n atom.Granularity, dense bool) []atom.Atom {
	if !dense {
		if mag := absMag(v); mag < 256 && magBits > 0 && (magBits >= 8 || mag < 1<<uint(magBits)) {
			return append(dst, atom.Digits(mag, n)...)
		}
		return append(dst, atom.Decompose(v, magBits, n)...)
	}
	return append(dst, atom.DecomposeDense(v, magBits, n)...)
}

// StreamTileActs builds the compressed activation atom stream of channel c
// within tile tl directly from the feature map — the fused equivalent of
// CompressActs(FlattenTile(f, c, tl), f.Bits, n, false), byte-identical in
// output but without the intermediate element slice. Zero values are skipped
// 64 lanes at a time: each tile row is reduced to bitmap words
// (sparse.AppendMaskWords) and only set bits are visited via trailing-zero
// iteration, so the per-element branch of the flatten phase disappears on
// sparse data. Atomization goes through the precomputed digit tables.
func StreamTileActs(f *tensor.FeatureMap, c int, tl tensor.Tile, n atom.Granularity) []ActAtom {
	n.Validate()
	var words [4]uint64 // tiles are ≤256 wide (8-bit block-COO coordinates)
	masks := words[:0]
	chanBase := c * f.H * f.W

	// Pass 1: exact atom count, bitmap-driven.
	total := 0
	for y := 0; y < tl.H; y++ {
		row := f.Data[chanBase+(tl.Y0+y)*f.W+tl.X0:]
		row = row[:tl.W]
		masks = sparse.AppendMaskWords(masks[:0], row)
		for wi, word := range masks {
			for word != 0 {
				x := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				total += atom.DigitCount(absMag(row[x]), n)
			}
		}
	}

	// Pass 2: fill.
	out := make([]ActAtom, 0, total)
	for y := 0; y < tl.H; y++ {
		row := f.Data[chanBase+(tl.Y0+y)*f.W+tl.X0:]
		row = row[:tl.W]
		masks = sparse.AppendMaskWords(masks[:0], row)
		for wi, word := range masks {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				x := wi*64 + b
				out = appendActAtoms(out, row[x], f.Bits, n, uint8(x), uint8(y))
			}
		}
	}
	return out
}

// StreamLengths summarizes the compressed stream lengths that determine CSC
// latency (Section III-B characteristics).
type StreamLengths struct {
	ActAtoms    int // t: non-zero activation atoms in the sliding stream
	WeightAtoms int // S: non-zero weight atoms in the static stream
}

// Steps returns the exact number of intersection steps for streams of t
// activation atoms against S weight atoms on N multipliers — the paper's
// Eq. (3) with the ε of Eq. (4): the static stream is split into ceil(S/N)
// rounds, the activation stream replays once per round, and the ping-pong
// weight registers overlap all round transitions except the final drain.
func Steps(t, S, N int) int {
	if t <= 0 || S <= 0 || N <= 0 {
		// N <= 0 means no multipliers: no steps can execute. Guarded rather
		// than assumed away so a zero-multiplier DSE point or CLI flag reports
		// zero work instead of panicking with a divide by zero.
		return 0
	}
	rounds := (S + N - 1) / N
	eps := S % N
	if eps == 0 {
		eps = N
	}
	eps--
	return t*rounds + eps
}
