// Package core implements condensed streaming computation (CSC), the paper's
// primary contribution (Section III): a unified dataflow in which high-level
// sparse convolution and low-level mixed-precision multiplication are both
// expressed as the outer product of compact non-zero atom streams.
//
// The pipeline has three phases:
//
//  1. Flattening — feature-map tiles and kernels are reshaped into 1-D value
//     streams in zigzag order, each element carrying its spatial coordinates
//     and channel index as metadata.
//  2. Compression — zero values and zero atoms are squeezed out, producing
//     compact atom streams whose elements carry shift offsets, sign bits and
//     last-atom flags.
//  3. Intersection — a 1-D convolution between the static weight atom stream
//     and the sliding activation atom stream; partial products are aligned by
//     the activation shift immediately and by the weight-slice shift at
//     aggregation time (decoupled shift, Section IV-C2).
//
// The functional implementation here is bit-exact against the dense reference
// convolution; the cycle-accurate microarchitecture lives in
// internal/ristretto and reuses these streams.
package core

import (
	"ristretto/internal/atom"
	"ristretto/internal/tensor"
)

// ActElem is one non-zero activation value in a flattened tile stream, with
// its tile-relative coordinates.
type ActElem struct {
	Val  int32
	X, Y uint8
}

// WeightElem is one non-zero weight in a flattened kernel stream: kernel-
// window coordinates plus the output channel it contributes to. The input
// channel is implicit (streams are built per input channel).
type WeightElem struct {
	Val  int32
	X, Y uint8
	K    uint16
}

// ActAtom is one non-zero atom of an activation, as produced by the Atomizer:
// the 2-bit (or 1/3-bit) digit, its shift offset, the last-atom flag, and the
// owning activation's coordinates. Activation atoms are unsigned (ReLU).
type ActAtom struct {
	Mag   uint8
	Shift uint8
	Last  bool
	X, Y  uint8
}

// WeightAtom is one non-zero atom of a weight in the static stream: digit,
// shift offset (its slice), sign, the kernel-window coordinates and output
// channel of the owning weight.
type WeightAtom struct {
	Mag   uint8
	Shift uint8
	Sign  bool
	X, Y  uint8
	K     uint16
}

// FlattenTile extracts the non-zero activations of channel c within tile tl
// in zigzag (row-major) order — phase 1 for feature maps. Coordinates are
// tile-relative, as in the block COO-2D format.
func FlattenTile(f *tensor.FeatureMap, c int, tl tensor.Tile) []ActElem {
	return flattenTile(f, c, tl, false)
}

// FlattenTileDense keeps zero values too — the Ristretto-ns configuration,
// which disables sparsity entirely to isolate its contribution (Section V-B).
func FlattenTileDense(f *tensor.FeatureMap, c int, tl tensor.Tile) []ActElem {
	return flattenTile(f, c, tl, true)
}

func flattenTile(f *tensor.FeatureMap, c int, tl tensor.Tile, dense bool) []ActElem {
	var out []ActElem
	for y := 0; y < tl.H; y++ {
		for x := 0; x < tl.W; x++ {
			if v := f.At(c, tl.Y0+y, tl.X0+x); v != 0 || dense {
				out = append(out, ActElem{Val: v, X: uint8(x), Y: uint8(y)})
			}
		}
	}
	return out
}

// FlattenKernels extracts the non-zero weights of input channel c across the
// given output channels (nil = all), ordered output-channel-first — phase 1
// for kernels. In Ristretto this happens offline.
func FlattenKernels(w *tensor.KernelStack, c int, outChans []int) []WeightElem {
	return flattenKernels(w, c, outChans, false)
}

// FlattenKernelsDense keeps zero weights too (Ristretto-ns).
func FlattenKernelsDense(w *tensor.KernelStack, c int, outChans []int) []WeightElem {
	return flattenKernels(w, c, outChans, true)
}

func flattenKernels(w *tensor.KernelStack, c int, outChans []int, dense bool) []WeightElem {
	if outChans == nil {
		outChans = make([]int, w.K)
		for i := range outChans {
			outChans[i] = i
		}
	}
	var out []WeightElem
	for _, k := range outChans {
		for y := 0; y < w.KH; y++ {
			for x := 0; x < w.KW; x++ {
				if v := w.At(k, c, y, x); v != 0 || dense {
					out = append(out, WeightElem{Val: v, X: uint8(x), Y: uint8(y), K: uint16(k)})
				}
			}
		}
	}
	return out
}

// CompressActs decomposes a flattened activation stream into its non-zero
// atom stream — phase 2, performed on the fly by the Atomizer in hardware.
// With dense set, zero atoms of non-zero values are kept (Ristretto-ns).
func CompressActs(elems []ActElem, bits int, n atom.Granularity, dense bool) []ActAtom {
	var out []ActAtom
	for _, e := range elems {
		var atoms []atom.Atom
		if dense {
			atoms = atom.DecomposeDense(e.Val, bits, n)
		} else {
			atoms = atom.Decompose(e.Val, bits, n)
		}
		for _, a := range atoms {
			out = append(out, ActAtom{Mag: a.Mag, Shift: a.Shift, Last: a.Last, X: e.X, Y: e.Y})
		}
	}
	return out
}

// CompressWeights decomposes a flattened weight stream into its non-zero atom
// stream with the stream shuffle of Figure 9 applied: atoms are grouped by
// slice (identical shift offset) so the weight shift can be decoupled into
// the accumulate-buffer drain, and within a slice they are ordered output-
// channel-first so concurrent products target distinct accumulate banks.
// Magnitudes use bits-1 bits (sign-magnitude).
func CompressWeights(elems []WeightElem, bits int, n atom.Granularity, dense bool) []WeightAtom {
	slices := n.Count(bits - 1)
	bySlice := make([][]WeightAtom, slices)
	for _, e := range elems {
		var atoms []atom.Atom
		if dense {
			atoms = atom.DecomposeDense(e.Val, bits-1, n)
		} else {
			atoms = atom.Decompose(e.Val, bits-1, n)
		}
		for _, a := range atoms {
			s := int(a.Shift) / int(n)
			bySlice[s] = append(bySlice[s], WeightAtom{
				Mag: a.Mag, Shift: a.Shift, Sign: a.Sign, X: e.X, Y: e.Y, K: e.K,
			})
		}
	}
	var out []WeightAtom
	for _, s := range bySlice {
		// Channel-first: interleave by output channel so adjacent stream
		// slots hit different accumulate banks. Stable counting sort by K
		// position within channel, then round-robin across channels.
		byChan := map[uint16][]WeightAtom{}
		var order []uint16
		for _, a := range s {
			if _, ok := byChan[a.K]; !ok {
				order = append(order, a.K)
			}
			byChan[a.K] = append(byChan[a.K], a)
		}
		for i := 0; ; i++ {
			emitted := false
			for _, k := range order {
				if i < len(byChan[k]) {
					out = append(out, byChan[k][i])
					emitted = true
				}
			}
			if !emitted {
				break
			}
		}
	}
	return out
}

// StreamLengths summarizes the compressed stream lengths that determine CSC
// latency (Section III-B characteristics).
type StreamLengths struct {
	ActAtoms    int // t: non-zero activation atoms in the sliding stream
	WeightAtoms int // S: non-zero weight atoms in the static stream
}

// Steps returns the exact number of intersection steps for streams of t
// activation atoms against S weight atoms on N multipliers — the paper's
// Eq. (3) with the ε of Eq. (4): the static stream is split into ceil(S/N)
// rounds, the activation stream replays once per round, and the ping-pong
// weight registers overlap all round transitions except the final drain.
func Steps(t, S, N int) int {
	if t <= 0 || S <= 0 || N <= 0 {
		// N <= 0 means no multipliers: no steps can execute. Guarded rather
		// than assumed away so a zero-multiplier DSE point or CLI flag reports
		// zero work instead of panicking with a divide by zero.
		return 0
	}
	rounds := (S + N - 1) / N
	eps := S % N
	if eps == 0 {
		eps = N
	}
	eps--
	return t*rounds + eps
}
