package core

import (
	"math/rand"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func TestFigure5Multiplication(t *testing.T) {
	// Paper Figure 5: -11 × 13 as a five-step 1-D convolution between the
	// 2-atom stream of the 4-bit activation and the 4-atom stream of the
	// 8-bit weight.
	product, steps := MultiplyStreaming(13, 4, -11, 8, 2)
	if product != -143 {
		t.Fatalf("product = %d, want -143", product)
	}
	if len(steps) != 5 {
		t.Fatalf("%d steps, want 5", len(steps))
	}
	var sum int32
	for _, s := range steps {
		sum += s
	}
	if sum != -143 {
		t.Fatalf("step sums total %d", sum)
	}
	if MulSteps(4, 8, 2) != 5 {
		t.Fatalf("MulSteps(4,8,2) = %d", MulSteps(4, 8, 2))
	}
}

func TestMulStepsDegenerateInputs(t *testing.T) {
	// Regression: a non-positive granularity or bit-width must yield zero
	// steps instead of dividing by zero.
	for _, c := range [][3]int{{4, 8, 0}, {4, 8, -1}, {0, 8, 2}, {4, 1, 2}, {4, 0, 2}} {
		if got := MulSteps(c[0], c[1], c[2]); got != 0 {
			t.Errorf("MulSteps(%d,%d,%d) = %d, want 0", c[0], c[1], c[2], got)
		}
	}
}

func TestMultiplyStreamingExhaustive(t *testing.T) {
	for _, gran := range []atom.Granularity{1, 2, 3} {
		for a := int32(0); a < 16; a++ {
			for w := int32(-127); w <= 127; w += 7 {
				p, _ := MultiplyStreaming(a, 4, w, 8, gran)
				if p != a*w {
					t.Fatalf("gran=%d %d*%d = %d, want %d", gran, a, w, p, a*w)
				}
			}
		}
	}
}

func TestStepsFormula(t *testing.T) {
	// Eq. 3/4: C = t*ceil(S/N) + ε.
	cases := []struct{ t, S, N, want int }{
		{10, 32, 32, 10 + 31}, // one full round, ε = N-1
		{10, 33, 32, 20 + 0},  // two rounds, last chunk 1 atom, ε = 0
		{10, 40, 32, 20 + 7},  // last chunk 8, ε = 7
		{5, 16, 32, 5 + 15},   // S < N: one round of 16, ε = 15
		{0, 40, 32, 0},
		{10, 0, 32, 0},
		// Regression: N <= 0 (zero-multiplier CLI flag or DSE point) must
		// report zero steps, not panic with an integer divide by zero.
		{10, 40, 0, 0},
		{10, 40, -3, 0},
		{-1, 40, 32, 0},
	}
	for _, c := range cases {
		if got := Steps(c.t, c.S, c.N); got != c.want {
			t.Errorf("Steps(%d,%d,%d) = %d, want %d", c.t, c.S, c.N, got, c.want)
		}
	}
}

func TestFigure6SmallExample(t *testing.T) {
	// The shape of Figure 6: an 8-bit 2×2 feature-map tile convolved with
	// two 4-bit 2×2 kernels yields two output tiles. Verify against the
	// dense reference on the full-convolution buffer.
	f := tensor.NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 0, 9)
	f.Set(0, 0, 1, 0) // a zero value, squeezed out
	f.Set(0, 1, 0, 68)
	f.Set(0, 1, 1, 3)
	w := tensor.NewKernelStack(2, 1, 2, 2, 4)
	w.Set(0, 0, 0, 0, 5)
	w.Set(0, 0, 1, 1, -3)
	w.Set(1, 0, 0, 1, 7)
	w.Set(1, 0, 1, 0, 1)
	got, st := ConvolveFull(f, w, Config{Gran: 2, Multiplier: 4})
	want := refconv.FullConv(f, w)
	if !got.Equal(want) {
		t.Fatalf("CSC full conv differs (maxdiff %d)", got.MaxAbsDiff(want))
	}
	if st.Products == 0 || st.Steps == 0 {
		t.Fatal("no work recorded")
	}
}

func convCase(t *testing.T, seed int64, c, h, wd, kk, ks, abits, wbits int, gran atom.Granularity, mult, tileW, tileH, stride, pad int, dense bool) {
	t.Helper()
	g := workload.NewGen(seed)
	f := g.FeatureMapExact(c, h, wd, abits, gran, 0.5, 0.7)
	w := g.KernelsExact(kk, c, ks, ks, wbits, gran, 0.6, 0.7)
	got, _ := Convolve(f, w, stride, pad, Config{Gran: gran, Multiplier: mult, TileW: tileW, TileH: tileH, Dense: dense})
	want := refconv.Conv(f, w, stride, pad)
	if !got.Equal(want) {
		t.Fatalf("seed=%d mismatch (maxdiff=%d)", seed, got.MaxAbsDiff(want))
	}
}

func TestConvolveMatchesReferenceAcrossConfigs(t *testing.T) {
	// Sweep bit-widths, granularities, multiplier counts, tilings, strides.
	cfgs := []struct {
		abits, wbits int
		gran         atom.Granularity
		mult         int
		tw, th       int
		stride, pad  int
		dense        bool
	}{
		{8, 8, 2, 32, 0, 0, 1, 1, false},
		{8, 8, 2, 3, 4, 4, 1, 0, false},
		{4, 4, 2, 8, 5, 3, 2, 1, false},
		{2, 2, 2, 16, 4, 4, 1, 1, false},
		{8, 4, 2, 7, 6, 6, 2, 0, false},
		{4, 8, 2, 32, 0, 0, 1, 2, false},
		{8, 8, 1, 16, 4, 4, 1, 1, false},
		{8, 8, 3, 16, 4, 4, 1, 1, false},
		{6, 6, 2, 16, 0, 0, 1, 1, false},
		{8, 8, 2, 32, 4, 4, 1, 1, true},
		{2, 4, 2, 1, 3, 3, 1, 1, false},
	}
	for i, c := range cfgs {
		convCase(t, int64(i+10), 3, 9, 11, 4, 3, c.abits, c.wbits, c.gran, c.mult, c.tw, c.th, c.stride, c.pad, c.dense)
	}
}

func TestConvolveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		abits := []int{2, 4, 8}[rng.Intn(3)]
		wbits := []int{2, 4, 8}[rng.Intn(3)]
		gran := atom.Granularity(rng.Intn(3) + 1)
		convCase(t, int64(1000+i), 1+rng.Intn(4), 4+rng.Intn(8), 4+rng.Intn(8),
			1+rng.Intn(5), 1+rng.Intn(3)*2, abits, wbits, gran,
			1+rng.Intn(40), 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(2), rng.Intn(3), false)
	}
}

func TestStreamShuffleInvariance(t *testing.T) {
	// Characteristic 3 (Section III-B): reordering atoms within a stream
	// does not change the result, because every atom of one stream meets
	// every atom of the other.
	g := workload.NewGen(5)
	f := g.FeatureMapExact(1, 4, 4, 8, 2, 0.7, 0.7)
	w := g.KernelsExact(3, 1, 3, 3, 8, 2, 0.7, 0.7)
	acts := CompressActs(FlattenTile(f, 0, tensor.Tile{W: 4, H: 4}), 8, 2, false)
	weights := CompressWeights(FlattenKernels(w, 0, nil), 8, 2, false)
	ref := tensor.NewOutputMap(3, 6, 6)
	Intersect(acts, weights, 8, 3, 3, 4, 4, ref)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		sa := append([]ActAtom(nil), acts...)
		sw := append([]WeightAtom(nil), weights...)
		rng.Shuffle(len(sa), func(i, j int) { sa[i], sa[j] = sa[j], sa[i] })
		rng.Shuffle(len(sw), func(i, j int) { sw[i], sw[j] = sw[j], sw[i] })
		got := tensor.NewOutputMap(3, 6, 6)
		Intersect(sa, sw, 8, 3, 3, 4, 4, got)
		if !got.Equal(ref) {
			t.Fatalf("trial %d: shuffled streams changed the result", trial)
		}
	}
}

func TestConstantInputBandwidth(t *testing.T) {
	// Characteristic 1: the intersection consumes exactly one activation
	// atom per step regardless of bit-width — steps per round equals the
	// activation stream length, so Steps() scales with t, not with t×bits.
	for _, bits := range []int{2, 4, 8} {
		g := workload.NewGen(int64(bits))
		f := g.FeatureMapExact(1, 8, 8, bits, 2, 1.0, 1.0)
		acts := CompressActs(FlattenTile(f, 0, tensor.Tile{W: 8, H: 8}), bits, 2, false)
		// One full round on N >= S: steps = t + ε.
		S, N := 16, 16
		want := len(acts) + S - 1
		if got := Steps(len(acts), S, N); got != want {
			t.Fatalf("bits=%d Steps=%d want %d", bits, got, want)
		}
	}
}

func TestStepPredictorMatchesCharacteristic2(t *testing.T) {
	// Characteristic 2: step count is determined solely by stream lengths.
	// Intersect must report exactly Steps(t,S,N).
	g := workload.NewGen(6)
	f := g.FeatureMapExact(1, 5, 7, 8, 2, 0.4, 0.6)
	w := g.KernelsExact(2, 1, 3, 3, 8, 2, 0.5, 0.6)
	acts := CompressActs(FlattenTile(f, 0, tensor.Tile{W: 7, H: 5}), 8, 2, false)
	weights := CompressWeights(FlattenKernels(w, 0, nil), 8, 2, false)
	for _, n := range []int{1, 3, 8, 32, 100} {
		out := tensor.NewOutputMap(2, 7, 9)
		r := Intersect(acts, weights, n, 3, 3, 7, 5, out)
		if r.Steps != Steps(len(acts), len(weights), n) {
			t.Fatalf("n=%d Steps %d != predictor %d", n, r.Steps, Steps(len(acts), len(weights), n))
		}
		if r.Products != len(acts)*len(weights) {
			t.Fatalf("n=%d products %d != t*S %d", n, r.Products, len(acts)*len(weights))
		}
	}
}

func TestCompressWeightsSliceGrouping(t *testing.T) {
	// Stream shuffle (Figure 9): atoms must be ordered by slice (shift),
	// non-decreasing across the stream.
	g := workload.NewGen(7)
	w := g.KernelsExact(4, 1, 3, 3, 8, 2, 0.8, 0.8)
	ws := CompressWeights(FlattenKernels(w, 0, nil), 8, 2, false)
	for i := 1; i < len(ws); i++ {
		if ws[i].Shift < ws[i-1].Shift {
			t.Fatalf("slice grouping violated at %d: %v after %v", i, ws[i], ws[i-1])
		}
	}
}

func TestCompressWeightsChannelFirst(t *testing.T) {
	// Within a slice, consecutive atoms should rotate across output
	// channels (channel-first mapping eliminates bank contention).
	w := tensor.NewKernelStack(4, 1, 1, 1, 4)
	for k := 0; k < 4; k++ {
		w.Set(k, 0, 0, 0, 5) // 0b101: atoms at shift 0 and 2
	}
	ws := CompressWeights(FlattenKernels(w, 0, nil), 4, 2, false)
	if len(ws) != 8 {
		t.Fatalf("got %d atoms", len(ws))
	}
	for i := 0; i < 4; i++ {
		if ws[i].K != uint16(i) || ws[i].Shift != 0 {
			t.Fatalf("slice 0 not channel-first: %+v", ws[:4])
		}
		if ws[4+i].K != uint16(i) || ws[4+i].Shift != 2 {
			t.Fatalf("slice 1 not channel-first: %+v", ws[4:])
		}
	}
}

func TestDenseModeStreamsAllAtoms(t *testing.T) {
	f := tensor.NewFeatureMap(1, 2, 2, 8)
	f.Set(0, 0, 0, 1) // one non-zero value
	acts := CompressActs(FlattenTile(f, 0, tensor.Tile{W: 2, H: 2}), 8, 2, true)
	// Dense mode still excludes zero *values* (they were removed by
	// flattening) but keeps zero atoms: 4 atoms for the one value.
	if len(acts) != 4 {
		t.Fatalf("dense act stream length %d, want 4", len(acts))
	}
}
