// Package loadtest is an open-loop HTTP load generator for the
// ristretto-serve daemon. Open-loop means the request clock never waits
// for responses: requests fire at the configured rate no matter how slowly
// the server answers, which is the arrival model that actually exposes
// overload behaviour (a closed-loop generator self-throttles exactly when
// the server is drowning and hides the failure mode).
//
// The generator is deliberately honest about its own limits: when the
// in-flight cap is hit, the would-be request is counted as Dropped rather
// than silently delayed, so offered load is always accountable as
// Sent + Dropped. The chaos tests and the CI serve job use the Report to
// assert the daemon sheds (429), degrades (degraded=true) and keeps
// answering health checks at saturation.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ristretto/internal/telemetry"
)

// Target is one weighted request template in the traffic mix.
type Target struct {
	Name   string // label in the report, e.g. "model"
	Path   string // request path, e.g. "/v1/model"
	Body   string // JSON body
	Weight int    // relative pick probability (>= 1)
	// Bodies, when non-empty, is a set of distinct request bodies for this
	// target; each arrival picks one zipfian-skewed by Config.KeySkew, so a
	// few hot configurations dominate — the cache-hot traffic shape the
	// serving-scale experiments measure. Body is ignored when Bodies is set.
	Bodies []string
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8390".
	BaseURL string
	// RPS is the open-loop arrival rate (> 0).
	RPS float64
	// Duration is how long to keep offering load (> 0).
	Duration time.Duration
	// Timeout bounds each request; 0 = 10s.
	Timeout time.Duration
	// MaxInFlight caps concurrent requests; arrivals beyond it are counted
	// as Dropped instead of queued (the clock never blocks). 0 = 1024.
	MaxInFlight int
	// Seed drives the target mix picks (deterministic arrival sequence).
	Seed int64
	// Targets is the traffic mix (required, weights >= 1).
	Targets []Target

	// Tenants, when > 0, enables multi-tenant mode: every request carries
	// an X-Tenant header naming one of this many synthetic tenants, picked
	// zipfian-skewed so a few tenants dominate the traffic.
	Tenants int
	// TenantSkew is the zipf s parameter for tenant picks; must be > 1
	// when set. 0 = 1.2 (mild skew).
	TenantSkew float64
	// KeySkew is the zipf s parameter for per-target body picks (see
	// Target.Bodies); must be > 1 when set. 0 = 1.2.
	KeySkew float64
	// BatchFraction is the probability an arrival is tagged
	// "X-Priority: batch" instead of interactive (0..1). Any value > 0
	// enables per-class accounting in the report.
	BatchFraction float64

	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// ClassReport is the per-priority-class slice of a multi-tenant run's
// outcome, keyed "interactive" / "batch" in Report.Classes.
type ClassReport struct {
	Sent         int64   `json:"sent"`
	Completed    int64   `json:"completed"`
	OK           int64   `json:"ok"`   // 200s
	Shed         int64   `json:"shed"` // 429s
	QuotaDenied  int64   `json:"quota_denied"`
	Degraded     int64   `json:"degraded"`
	LatencyMSP99 float64 `json:"latency_ms_p99"`

	lat telemetry.Histogram
}

// Report is the outcome of one run.
type Report struct {
	Offered         int64            `json:"offered"` // ticks of the arrival clock
	Sent            int64            `json:"sent"`    // requests actually fired
	Dropped         int64            `json:"dropped"` // arrivals over the in-flight cap
	Completed       int64            `json:"completed"`
	Status          map[string]int64 `json:"status"` // "200" → count
	ByTarget        map[string]int64 `json:"by_target"`
	Degraded        int64            `json:"degraded"`     // 200s flagged degraded=true
	CacheHits       int64            `json:"cache_hits"`   // 200s flagged cached=true
	Batched         int64            `json:"batched"`      // 200s flagged batched=true
	QuotaDenied     int64            `json:"quota_denied"` // 429s naming an exhausted tenant quota
	TransportErrors int64            `json:"transport_errors"`
	LatencyMSP50    float64          `json:"latency_ms_p50"`
	LatencyMSP95    float64          `json:"latency_ms_p95"`
	LatencyMSP99    float64          `json:"latency_ms_p99"`
	LatencyMSMax    float64          `json:"latency_ms_max"`
	Elapsed         time.Duration    `json:"elapsed_ns"`
	// Classes holds per-priority-class tallies; populated only when the run
	// used multi-tenant mode (Tenants > 0 or BatchFraction > 0).
	Classes map[string]*ClassReport `json:"classes,omitempty"`
}

// String renders the report as an aligned human-readable summary.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "offered %d  sent %d  dropped %d  completed %d  transport-errors %d\n",
		r.Offered, r.Sent, r.Dropped, r.Completed, r.TransportErrors)
	codes := make([]string, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %s: %d\n", c, r.Status[c])
	}
	names := make([]string, 0, len(r.ByTarget))
	for n := range r.ByTarget {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  target %s: %d\n", n, r.ByTarget[n])
	}
	fmt.Fprintf(&b, "  degraded responses: %d\n", r.Degraded)
	if r.CacheHits > 0 || r.Batched > 0 || r.QuotaDenied > 0 {
		fmt.Fprintf(&b, "  cache hits: %d  batched: %d  quota denied: %d\n",
			r.CacheHits, r.Batched, r.QuotaDenied)
	}
	fmt.Fprintf(&b, "  latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		r.LatencyMSP50, r.LatencyMSP95, r.LatencyMSP99, r.LatencyMSMax)
	classes := make([]string, 0, len(r.Classes))
	for n := range r.Classes {
		classes = append(classes, n)
	}
	sort.Strings(classes)
	for _, n := range classes {
		c := r.Classes[n]
		fmt.Fprintf(&b, "  class %s: sent %d ok %d shed %d quota-denied %d degraded %d p99=%.1fms\n",
			n, c.Sent, c.OK, c.Shed, c.QuotaDenied, c.Degraded, c.LatencyMSP99)
	}
	return b.String()
}

// respProbe is the minimal success-response shape the generator inspects.
type respProbe struct {
	Degraded bool `json:"degraded"`
	Cached   bool `json:"cached"`
	Batched  bool `json:"batched"`
}

// errProbe is the minimal error-envelope shape the generator inspects: a
// 429 naming a tenant in quota was a per-tenant rate denial rather than a
// global queue shed.
type errProbe struct {
	Quota string `json:"quota"`
}

// Run offers cfg.RPS requests per second against cfg.BaseURL for
// cfg.Duration (or until ctx is done) and returns the aggregated report.
// The arrival schedule and target picks are deterministic in cfg.Seed; the
// outcomes of course are not.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadtest: BaseURL required")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadtest: RPS %v must be > 0", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadtest: Duration %v must be > 0", cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		return nil, errors.New("loadtest: at least one target required")
	}
	totalWeight := 0
	for _, t := range cfg.Targets {
		if t.Weight < 1 {
			return nil, fmt.Errorf("loadtest: target %q weight %d must be >= 1", t.Name, t.Weight)
		}
		totalWeight += t.Weight
	}
	if cfg.TenantSkew == 0 {
		cfg.TenantSkew = 1.2
	}
	if cfg.KeySkew == 0 {
		cfg.KeySkew = 1.2
	}
	if cfg.TenantSkew <= 1 {
		return nil, fmt.Errorf("loadtest: TenantSkew %v must be > 1 (zipf s parameter)", cfg.TenantSkew)
	}
	if cfg.KeySkew <= 1 {
		return nil, fmt.Errorf("loadtest: KeySkew %v must be > 1 (zipf s parameter)", cfg.KeySkew)
	}
	if cfg.BatchFraction < 0 || cfg.BatchFraction > 1 {
		return nil, fmt.Errorf("loadtest: BatchFraction %v must be in [0, 1]", cfg.BatchFraction)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1024
	}
	client := cfg.Client
	if client == nil {
		// The default transport keeps only 2 idle connections per host, so
		// at serving-scale rates the generator would reconnect on nearly
		// every request and throttle itself on connection setup — measuring
		// its own TCP churn instead of the server. Size the idle pool to the
		// in-flight cap so connections are reused across the whole run.
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInFlight,
				MaxIdleConnsPerHost: cfg.MaxInFlight,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	multiTenant := cfg.Tenants > 0 || cfg.BatchFraction > 0

	rep := &Report{Status: map[string]int64{}, ByTarget: map[string]int64{}}
	if multiTenant {
		// Pre-created so fire goroutines never mutate the map itself.
		rep.Classes = map[string]*ClassReport{
			"interactive": {},
			"batch":       {},
		}
	}
	var mu sync.Mutex // guards rep maps and scalar tallies
	var lat telemetry.Histogram
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInFlight)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// All random picks happen on the clock goroutine, so the arrival
	// sequence — targets, bodies, tenants, classes — is deterministic in
	// Seed.
	var tenantZipf *rand.Zipf
	if cfg.Tenants > 1 {
		tenantZipf = rand.NewZipf(rng, cfg.TenantSkew, 1, uint64(cfg.Tenants-1))
	}
	keyZipf := map[string]*rand.Zipf{}
	for i := range cfg.Targets {
		if n := len(cfg.Targets[i].Bodies); n > 1 {
			keyZipf[cfg.Targets[i].Name] = rand.NewZipf(rng, cfg.KeySkew, 1, uint64(n-1))
		}
	}

	pick := func() *Target {
		w := rng.Intn(totalWeight)
		for i := range cfg.Targets {
			if w -= cfg.Targets[i].Weight; w < 0 {
				return &cfg.Targets[i]
			}
		}
		return &cfg.Targets[len(cfg.Targets)-1]
	}
	pickBody := func(t *Target) string {
		if len(t.Bodies) == 0 {
			return t.Body
		}
		if z := keyZipf[t.Name]; z != nil {
			return t.Bodies[z.Uint64()]
		}
		return t.Bodies[0]
	}
	pickTenant := func() string {
		if cfg.Tenants <= 0 {
			return ""
		}
		idx := uint64(0)
		if tenantZipf != nil {
			idx = tenantZipf.Uint64()
		}
		return "tenant-" + strconv.FormatUint(idx, 10)
	}
	pickClass := func() string {
		if !multiTenant {
			return ""
		}
		if cfg.BatchFraction > 0 && rng.Float64() < cfg.BatchFraction {
			return "batch"
		}
		return "interactive"
	}

	fire := func(t *Target, body, tenant, class string) {
		defer wg.Done()
		defer func() { <-inflight }()
		start := time.Now()
		req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+t.Path, bytes.NewReader([]byte(body)))
		if err != nil {
			mu.Lock()
			rep.TransportErrors++
			mu.Unlock()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		if class != "" {
			req.Header.Set("X-Priority", class)
		}
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		mu.Lock()
		defer mu.Unlock()
		rep.Completed++
		cr := rep.Classes[class] // nil when not multi-tenant
		if cr != nil {
			cr.Completed++
		}
		if err != nil {
			rep.TransportErrors++
			return
		}
		defer resp.Body.Close()
		body2, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		lat.Observe(elapsed.Nanoseconds())
		if cr != nil {
			cr.lat.Observe(elapsed.Nanoseconds())
		}
		rep.Status[strconv.Itoa(resp.StatusCode)]++
		rep.ByTarget[t.Name]++
		switch resp.StatusCode {
		case http.StatusOK:
			if cr != nil {
				cr.OK++
			}
			var p respProbe
			if json.Unmarshal(body2, &p) == nil {
				if p.Degraded {
					rep.Degraded++
					if cr != nil {
						cr.Degraded++
					}
				}
				if p.Cached {
					rep.CacheHits++
				}
				if p.Batched {
					rep.Batched++
				}
			}
		case http.StatusTooManyRequests:
			if cr != nil {
				cr.Shed++
			}
			var p errProbe
			if json.Unmarshal(body2, &p) == nil && p.Quota != "" {
				rep.QuotaDenied++
				if cr != nil {
					cr.QuotaDenied++
				}
			}
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	startAll := time.Now()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			rep.Offered++
			t := pick()
			body := pickBody(t)
			tenant := pickTenant()
			class := pickClass()
			select {
			case inflight <- struct{}{}:
				rep.Sent++
				if cr := rep.Classes[class]; cr != nil {
					cr.Sent++
				}
				wg.Add(1)
				go fire(t, body, tenant, class)
			default:
				rep.Dropped++ // open loop: never block the clock
			}
		}
	}
	wg.Wait()
	rep.Elapsed = time.Since(startAll)
	rep.LatencyMSP50 = lat.Quantile(0.50) / 1e6
	rep.LatencyMSP95 = lat.Quantile(0.95) / 1e6
	rep.LatencyMSP99 = lat.Quantile(0.99) / 1e6
	rep.LatencyMSMax = float64(lat.Summary().Max) / 1e6
	for _, cr := range rep.Classes {
		cr.LatencyMSP99 = cr.lat.Quantile(0.99) / 1e6
	}
	return rep, nil
}

// DefaultMix builds the standard traffic mix against the daemon for the
// given workload parameters. Weights: mostly cheap model queries, a
// sprinkle of expensive sims, some quant sweeps and conformance probes —
// roughly the shape a fleet of analysis dashboards would generate.
func DefaultMix(net, layer, precision string, scale int, seed int64) []Target {
	simPrecision := precision
	if _, ok := map[string]bool{"8b": true, "4b": true, "2b": true}[precision]; !ok {
		simPrecision = "4b" // sim is uniform-precision only
	}
	return []Target{
		{Name: "model", Path: "/v1/model", Weight: 6,
			Body: fmt.Sprintf(`{"net":%q,"precision":%q,"scale":%d,"seed":%d}`, net, precision, scale, seed)},
		{Name: "sim", Path: "/v1/sim", Weight: 1,
			Body: fmt.Sprintf(`{"net":%q,"layer":%q,"precision":%q,"scale":%d,"seed":%d}`, net, layer, simPrecision, scale, seed)},
		{Name: "quant", Path: "/v1/quant", Weight: 2,
			Body: fmt.Sprintf(`{"bits":[8,4,2],"n":50000,"seed":%d}`, seed)},
		{Name: "conformance", Path: "/v1/conformance", Weight: 1,
			Body: fmt.Sprintf(`{"engine":"csc","cases":5,"seed":%d}`, seed)},
	}
}

// MultiKeyMix is DefaultMix expanded to keys distinct request bodies per
// target — the bodies differ only in seed (seed .. seed+keys-1), so each is
// a distinct cache key with identical cost. Combined with Config.KeySkew
// this produces the zipfian hot-key traffic the serving-scale experiments
// measure: a handful of hot configurations served from cache, a long cold
// tail exercising the compute path.
func MultiKeyMix(net, layer, precision string, scale int, seed int64, keys int) []Target {
	if keys < 1 {
		keys = 1
	}
	base := DefaultMix(net, layer, precision, scale, seed)
	for i := range base {
		bodies := make([]string, keys)
		for k := 0; k < keys; k++ {
			bodies[k] = DefaultMix(net, layer, precision, scale, seed+int64(k))[i].Body
		}
		base[i].Bodies = bodies
	}
	return base
}
