// Package loadtest is an open-loop HTTP load generator for the
// ristretto-serve daemon. Open-loop means the request clock never waits
// for responses: requests fire at the configured rate no matter how slowly
// the server answers, which is the arrival model that actually exposes
// overload behaviour (a closed-loop generator self-throttles exactly when
// the server is drowning and hides the failure mode).
//
// The generator is deliberately honest about its own limits: when the
// in-flight cap is hit, the would-be request is counted as Dropped rather
// than silently delayed, so offered load is always accountable as
// Sent + Dropped. The chaos tests and the CI serve job use the Report to
// assert the daemon sheds (429), degrades (degraded=true) and keeps
// answering health checks at saturation.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ristretto/internal/telemetry"
)

// Target is one weighted request template in the traffic mix.
type Target struct {
	Name   string // label in the report, e.g. "model"
	Path   string // request path, e.g. "/v1/model"
	Body   string // JSON body
	Weight int    // relative pick probability (>= 1)
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8390".
	BaseURL string
	// RPS is the open-loop arrival rate (> 0).
	RPS float64
	// Duration is how long to keep offering load (> 0).
	Duration time.Duration
	// Timeout bounds each request; 0 = 10s.
	Timeout time.Duration
	// MaxInFlight caps concurrent requests; arrivals beyond it are counted
	// as Dropped instead of queued (the clock never blocks). 0 = 1024.
	MaxInFlight int
	// Seed drives the target mix picks (deterministic arrival sequence).
	Seed int64
	// Targets is the traffic mix (required, weights >= 1).
	Targets []Target
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// Report is the outcome of one run.
type Report struct {
	Offered         int64            `json:"offered"`  // ticks of the arrival clock
	Sent            int64            `json:"sent"`     // requests actually fired
	Dropped         int64            `json:"dropped"`  // arrivals over the in-flight cap
	Completed       int64            `json:"completed"`
	Status          map[string]int64 `json:"status"` // "200" → count
	ByTarget        map[string]int64 `json:"by_target"`
	Degraded        int64            `json:"degraded"` // 200s flagged degraded=true
	TransportErrors int64            `json:"transport_errors"`
	LatencyMSP50    float64          `json:"latency_ms_p50"`
	LatencyMSP95    float64          `json:"latency_ms_p95"`
	LatencyMSP99    float64          `json:"latency_ms_p99"`
	LatencyMSMax    float64          `json:"latency_ms_max"`
	Elapsed         time.Duration    `json:"elapsed_ns"`
}

// String renders the report as an aligned human-readable summary.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "offered %d  sent %d  dropped %d  completed %d  transport-errors %d\n",
		r.Offered, r.Sent, r.Dropped, r.Completed, r.TransportErrors)
	codes := make([]string, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %s: %d\n", c, r.Status[c])
	}
	names := make([]string, 0, len(r.ByTarget))
	for n := range r.ByTarget {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  target %s: %d\n", n, r.ByTarget[n])
	}
	fmt.Fprintf(&b, "  degraded responses: %d\n", r.Degraded)
	fmt.Fprintf(&b, "  latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		r.LatencyMSP50, r.LatencyMSP95, r.LatencyMSP99, r.LatencyMSMax)
	return b.String()
}

// degradedProbe is the minimal response shape the generator inspects.
type degradedProbe struct {
	Degraded bool `json:"degraded"`
}

// Run offers cfg.RPS requests per second against cfg.BaseURL for
// cfg.Duration (or until ctx is done) and returns the aggregated report.
// The arrival schedule and target picks are deterministic in cfg.Seed; the
// outcomes of course are not.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadtest: BaseURL required")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadtest: RPS %v must be > 0", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadtest: Duration %v must be > 0", cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		return nil, errors.New("loadtest: at least one target required")
	}
	totalWeight := 0
	for _, t := range cfg.Targets {
		if t.Weight < 1 {
			return nil, fmt.Errorf("loadtest: target %q weight %d must be >= 1", t.Name, t.Weight)
		}
		totalWeight += t.Weight
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1024
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	rep := &Report{Status: map[string]int64{}, ByTarget: map[string]int64{}}
	var mu sync.Mutex // guards rep maps and scalar tallies
	var lat telemetry.Histogram
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInFlight)
	rng := rand.New(rand.NewSource(cfg.Seed))

	pick := func() *Target {
		w := rng.Intn(totalWeight)
		for i := range cfg.Targets {
			if w -= cfg.Targets[i].Weight; w < 0 {
				return &cfg.Targets[i]
			}
		}
		return &cfg.Targets[len(cfg.Targets)-1]
	}

	fire := func(t *Target) {
		defer wg.Done()
		defer func() { <-inflight }()
		start := time.Now()
		req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+t.Path, bytes.NewReader([]byte(t.Body)))
		if err != nil {
			mu.Lock()
			rep.TransportErrors++
			mu.Unlock()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		mu.Lock()
		defer mu.Unlock()
		rep.Completed++
		if err != nil {
			rep.TransportErrors++
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		lat.Observe(elapsed.Nanoseconds())
		rep.Status[strconv.Itoa(resp.StatusCode)]++
		rep.ByTarget[t.Name]++
		if resp.StatusCode == http.StatusOK {
			var p degradedProbe
			if json.Unmarshal(body, &p) == nil && p.Degraded {
				rep.Degraded++
			}
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	startAll := time.Now()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			rep.Offered++
			t := pick()
			select {
			case inflight <- struct{}{}:
				rep.Sent++
				wg.Add(1)
				go fire(t)
			default:
				rep.Dropped++ // open loop: never block the clock
			}
		}
	}
	wg.Wait()
	rep.Elapsed = time.Since(startAll)
	rep.LatencyMSP50 = lat.Quantile(0.50) / 1e6
	rep.LatencyMSP95 = lat.Quantile(0.95) / 1e6
	rep.LatencyMSP99 = lat.Quantile(0.99) / 1e6
	rep.LatencyMSMax = float64(lat.Summary().Max) / 1e6
	return rep, nil
}

// DefaultMix builds the standard traffic mix against the daemon for the
// given workload parameters. Weights: mostly cheap model queries, a
// sprinkle of expensive sims, some quant sweeps and conformance probes —
// roughly the shape a fleet of analysis dashboards would generate.
func DefaultMix(net, layer, precision string, scale int, seed int64) []Target {
	simPrecision := precision
	if _, ok := map[string]bool{"8b": true, "4b": true, "2b": true}[precision]; !ok {
		simPrecision = "4b" // sim is uniform-precision only
	}
	return []Target{
		{Name: "model", Path: "/v1/model", Weight: 6,
			Body: fmt.Sprintf(`{"net":%q,"precision":%q,"scale":%d,"seed":%d}`, net, precision, scale, seed)},
		{Name: "sim", Path: "/v1/sim", Weight: 1,
			Body: fmt.Sprintf(`{"net":%q,"layer":%q,"precision":%q,"scale":%d,"seed":%d}`, net, layer, simPrecision, scale, seed)},
		{Name: "quant", Path: "/v1/quant", Weight: 2,
			Body: fmt.Sprintf(`{"bits":[8,4,2],"n":50000,"seed":%d}`, seed)},
		{Name: "conformance", Path: "/v1/conformance", Weight: 1,
			Body: fmt.Sprintf(`{"engine":"csc","cases":5,"seed":%d}`, seed)},
	}
}
