package loadtest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stubServer answers each path with a fixed status/body and an optional
// per-request delay, so report accounting can be asserted exactly.
func stubServer(delay time.Duration, routes map[string]struct {
	status int
	body   string
}) *httptest.Server {
	mux := http.NewServeMux()
	for path, r := range routes {
		r := r
		mux.HandleFunc(path, func(w http.ResponseWriter, _ *http.Request) {
			if delay > 0 {
				time.Sleep(delay)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(r.status)
			w.Write([]byte(r.body))
		})
	}
	return httptest.NewServer(mux)
}

func TestRunAccounting(t *testing.T) {
	ts := stubServer(0, map[string]struct {
		status int
		body   string
	}{
		"/v1/model": {200, `{"degraded":false}`},
		"/v1/sim":   {200, `{"degraded":true}`},
		"/v1/quant": {429, `{"error":"overloaded"}`},
	})
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      400,
		Duration: 300 * time.Millisecond,
		Seed:     3,
		Targets: []Target{
			{Name: "model", Path: "/v1/model", Body: `{}`, Weight: 2},
			{Name: "sim", Path: "/v1/sim", Body: `{}`, Weight: 1},
			{Name: "quant", Path: "/v1/quant", Body: `{}`, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Sent == 0 {
		t.Fatalf("no load offered: %+v", rep)
	}
	if rep.Sent+rep.Dropped != rep.Offered {
		t.Fatalf("offered %d != sent %d + dropped %d", rep.Offered, rep.Sent, rep.Dropped)
	}
	if rep.Completed != rep.Sent {
		t.Fatalf("completed %d != sent %d", rep.Completed, rep.Sent)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("transport errors against live stub: %d", rep.TransportErrors)
	}
	var statusTotal int64
	for _, n := range rep.Status {
		statusTotal += n
	}
	if statusTotal != rep.Completed {
		t.Fatalf("status tally %d != completed %d", statusTotal, rep.Completed)
	}
	// Every sim answer is flagged degraded, every quant is a 429.
	if rep.Degraded != rep.ByTarget["sim"] {
		t.Fatalf("degraded %d != sim responses %d", rep.Degraded, rep.ByTarget["sim"])
	}
	if rep.Status["429"] != rep.ByTarget["quant"] {
		t.Fatalf("429s %d != quant responses %d", rep.Status["429"], rep.ByTarget["quant"])
	}
	if rep.LatencyMSMax < 0 || rep.LatencyMSP99 < rep.LatencyMSP50 {
		t.Fatalf("implausible latency summary: %+v", rep)
	}
	if !strings.Contains(rep.String(), "status 200") {
		t.Fatalf("report text missing status line:\n%s", rep.String())
	}
}

// TestRunOpenLoopDrops proves the clock never blocks: with a 1-request
// in-flight cap against a slow server, overflow arrivals are dropped and
// accounted, not queued.
func TestRunOpenLoopDrops(t *testing.T) {
	ts := stubServer(150*time.Millisecond, map[string]struct {
		status int
		body   string
	}{
		"/v1/model": {200, `{}`},
	})
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		RPS:         200,
		Duration:    300 * time.Millisecond,
		MaxInFlight: 1,
		Seed:        1,
		Targets:     []Target{{Name: "model", Path: "/v1/model", Body: `{}`, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatalf("no drops with in-flight cap 1 against a 150ms server: %+v", rep)
	}
	if rep.Sent+rep.Dropped != rep.Offered {
		t.Fatalf("offered %d != sent %d + dropped %d", rep.Offered, rep.Sent, rep.Dropped)
	}
}

func TestRunCancel(t *testing.T) {
	ts := stubServer(0, map[string]struct {
		status int
		body   string
	}{
		"/v1/model": {200, `{}`},
	})
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{
		BaseURL:  ts.URL,
		RPS:      50,
		Duration: time.Hour, // the context, not the duration, ends the run
		Seed:     1,
		Targets:  []Target{{Name: "model", Path: "/v1/model", Body: `{}`, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if rep.Offered == 0 {
		t.Fatal("cancelled run offered nothing")
	}
}

func TestRunValidation(t *testing.T) {
	valid := Config{
		BaseURL:  "http://127.0.0.1:1",
		RPS:      1,
		Duration: time.Millisecond,
		Targets:  []Target{{Name: "m", Path: "/", Body: `{}`, Weight: 1}},
	}
	for name, mutate := range map[string]func(*Config){
		"no base url": func(c *Config) { c.BaseURL = "" },
		"bad rps":     func(c *Config) { c.RPS = 0 },
		"bad dur":     func(c *Config) { c.Duration = 0 },
		"no targets":  func(c *Config) { c.Targets = nil },
		"bad weight":  func(c *Config) { c.Targets = []Target{{Name: "m", Weight: 0}} },
	} {
		cfg := valid
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

func TestDefaultMix(t *testing.T) {
	targets := DefaultMix("AlexNet", "conv2", "mix2/4", 16, 7)
	if len(targets) != 4 {
		t.Fatalf("DefaultMix has %d targets, want 4", len(targets))
	}
	for _, tgt := range targets {
		if tgt.Weight < 1 || tgt.Path == "" || tgt.Body == "" {
			t.Fatalf("bad target: %+v", tgt)
		}
		if tgt.Name == "sim" && !strings.Contains(tgt.Body, `"4b"`) {
			t.Fatalf("sim target did not fall back to uniform precision: %s", tgt.Body)
		}
		if tgt.Name == "model" && !strings.Contains(tgt.Body, "mix2/4") {
			t.Fatalf("model target lost the mixed precision: %s", tgt.Body)
		}
	}
}
