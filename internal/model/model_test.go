package model

import "testing"

func TestBenchmarkNetworks(t *testing.T) {
	nets := Benchmark()
	if len(nets) != 6 {
		t.Fatalf("benchmark has %d networks, want 6", len(nets))
	}
	counts := map[string]int{
		"AlexNet": 5, "VGG-16": 13, "ResNet-18": 20, "ResNet-50": 53,
	}
	for _, n := range nets {
		if want, ok := counts[n.Name]; ok && len(n.Layers) != want {
			t.Errorf("%s has %d conv layers, want %d", n.Name, len(n.Layers), want)
		}
		for _, l := range n.Layers {
			if l.OutH() <= 0 || l.OutW() <= 0 {
				t.Errorf("%s %s produces empty output", n.Name, l.Name)
			}
			if l.C <= 0 || l.K <= 0 || l.MACs() <= 0 {
				t.Errorf("%s %s malformed: %v", n.Name, l.Name, l)
			}
		}
	}
}

func TestKnownMACCounts(t *testing.T) {
	// Well-known totals: VGG-16 ≈ 15.3 GMACs, ResNet-18 ≈ 1.8 GMACs,
	// ResNet-50 ≈ 4.1 GMACs, AlexNet ≈ 0.66 GMACs (conv layers only).
	cases := []struct {
		name   string
		lo, hi float64 // GMACs
	}{
		{"VGG-16", 14.5, 16.0},
		{"ResNet-18", 1.6, 2.0},
		{"ResNet-50", 3.5, 4.5},
		{"AlexNet", 1.0, 1.2}, // ungrouped convs (grouping ignored, see package doc)
		{"GoogLeNet", 1.2, 1.8},
		{"Inception-V2", 1.2, 2.4},
	}
	for _, c := range cases {
		n, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		g := float64(n.MACs()) / 1e9
		if g < c.lo || g > c.hi {
			t.Errorf("%s: %.2f GMACs outside [%v,%v]", c.name, g, c.lo, c.hi)
		}
	}
}

func TestChannelChaining(t *testing.T) {
	// Spot-check that sequential-chain networks have consistent channel
	// counts (layer i input channels == some earlier layer's K).
	vgg := VGG16()
	for i := 1; i < len(vgg.Layers); i++ {
		if vgg.Layers[i].C != vgg.Layers[i-1].K {
			t.Errorf("VGG-16 layer %s input channels %d != previous output %d",
				vgg.Layers[i].Name, vgg.Layers[i].C, vgg.Layers[i-1].K)
		}
	}
}

func TestResNet18Conv32(t *testing.T) {
	// Figure 18 visualizes conv3_2 of ResNet-18: 128 input feature maps.
	n := ResNet18()
	l, err := n.Layer("conv3_2")
	if err != nil {
		t.Fatal(err)
	}
	if l.C != 128 || l.K != 128 || l.H != 28 {
		t.Fatalf("conv3_2 = %v, want 128x28x28 -> 128", l)
	}
}

func TestAlexNetConv1Geometry(t *testing.T) {
	l := AlexNet().Layers[0]
	if l.OutH() != 55 || l.OutW() != 55 {
		t.Fatalf("AlexNet conv1 output %dx%d, want 55x55", l.OutH(), l.OutW())
	}
}

func TestUniformPrecision(t *testing.T) {
	n := AlexNet()
	p := Uniform(n, 4)
	if len(p.WBits) != len(n.Layers) {
		t.Fatal("precision length mismatch")
	}
	for i := range p.WBits {
		if p.WBits[i] != 4 || p.ABits[i] != 4 {
			t.Fatal("uniform precision not uniform")
		}
	}
}

func TestMixed24Precision(t *testing.T) {
	n := ResNet50()
	p := Mixed24(n, 1)
	if p.WBits[0] != 4 || p.ABits[0] != 4 {
		t.Fatal("first layer must stay at 4 bits")
	}
	saw2, saw4 := false, false
	for i := 1; i < len(p.WBits); i++ {
		if p.WBits[i] != 2 && p.WBits[i] != 4 {
			t.Fatalf("layer %d weight bits %d not in {2,4}", i, p.WBits[i])
		}
		if p.ABits[i] != 2 && p.ABits[i] != 4 {
			t.Fatalf("layer %d act bits %d not in {2,4}", i, p.ABits[i])
		}
		saw2 = saw2 || p.WBits[i] == 2 || p.ABits[i] == 2
		saw4 = saw4 || p.WBits[i] == 4 || p.ABits[i] == 4
	}
	if !saw2 || !saw4 {
		t.Fatal("mixed assignment degenerate")
	}
	// Deterministic.
	q := Mixed24(n, 1)
	for i := range p.WBits {
		if p.WBits[i] != q.WBits[i] || p.ABits[i] != q.ABits[i] {
			t.Fatal("Mixed24 not deterministic")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("LeNet"); err == nil {
		t.Fatal("expected error for unknown network")
	}
	if _, err := AlexNet().Layer("nope"); err == nil {
		t.Fatal("expected error for unknown layer")
	}
}

func TestInceptionModuleChannelConsistency(t *testing.T) {
	// Each inception module's branch inputs must equal the previous
	// module's total output. The builders guarantee this by construction;
	// verify the 1×1 reduce layers all see the same input channel count
	// within a module.
	for _, n := range []*Network{GoogLeNet(), InceptionV2()} {
		byModule := map[string][]Layer{}
		for _, l := range n.Layers {
			for i := 0; i < len(l.Name); i++ {
				if l.Name[i] == '/' {
					byModule[l.Name[:i]] = append(byModule[l.Name[:i]], l)
					break
				}
			}
		}
		if len(byModule) < 9 {
			t.Fatalf("%s has %d inception modules, want >=9", n.Name, len(byModule))
		}
		for mod, ls := range byModule {
			cin := -1
			for _, l := range ls {
				if l.KH == 1 && l.Stride == 1 && !isProj(l.Name) {
					if cin == -1 {
						cin = l.C
					} else if l.C != cin {
						t.Errorf("%s module %s reduce layers disagree on input channels", n.Name, mod)
					}
				}
			}
		}
	}
}

func isProj(name string) bool {
	return len(name) >= 9 && name[len(name)-9:] == "pool_proj"
}
