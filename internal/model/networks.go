package model

import "fmt"

// Layer tables for the six benchmark networks. Geometry follows the original
// publications (Krizhevsky 2012; Simonyan & Zisserman 2014; Szegedy 2015;
// Ioffe & Szegedy 2015; He 2016). Shapes are for 224×224 ImageNet inference
// (227×227 for AlexNet).

// AlexNet returns the five convolution layers of AlexNet (grouping ignored,
// as is conventional in accelerator studies).
func AlexNet() *Network {
	return &Network{Name: "AlexNet", Layers: []Layer{
		{Name: "conv1", C: 3, H: 227, W: 227, K: 96, KH: 11, KW: 11, Stride: 4, Pad: 0},
		{Name: "conv2", C: 96, H: 27, W: 27, K: 256, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{Name: "conv3", C: 256, H: 13, W: 13, K: 384, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv4", C: 384, H: 13, W: 13, K: 384, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv5", C: 384, H: 13, W: 13, K: 256, KH: 3, KW: 3, Stride: 1, Pad: 1},
	}}
}

// VGG16 returns the thirteen convolution layers of VGG-16.
func VGG16() *Network {
	n := &Network{Name: "VGG-16"}
	add := func(name string, c, hw, k int) {
		n.Layers = append(n.Layers, Layer{Name: name, C: c, H: hw, W: hw, K: k, KH: 3, KW: 3, Stride: 1, Pad: 1})
	}
	add("conv1_1", 3, 224, 64)
	add("conv1_2", 64, 224, 64)
	add("conv2_1", 64, 112, 128)
	add("conv2_2", 128, 112, 128)
	add("conv3_1", 128, 56, 256)
	add("conv3_2", 256, 56, 256)
	add("conv3_3", 256, 56, 256)
	add("conv4_1", 256, 28, 512)
	add("conv4_2", 512, 28, 512)
	add("conv4_3", 512, 28, 512)
	add("conv5_1", 512, 14, 512)
	add("conv5_2", 512, 14, 512)
	add("conv5_3", 512, 14, 512)
	return n
}

// ResNet18 returns the twenty convolution layers of ResNet-18 (basic blocks,
// including the 1×1 downsample projections). Stage naming follows He et al.:
// conv2_x at 56×56/64ch, conv3_x at 28×28/128ch, conv4_x at 14×14/256ch,
// conv5_x at 7×7/512ch. conv3_2 (C=128, 28×28, K=128) is the layer Figure 18
// visualizes.
func ResNet18() *Network {
	n := &Network{Name: "ResNet-18"}
	n.Layers = append(n.Layers, Layer{Name: "conv1", C: 3, H: 224, W: 224, K: 64, KH: 7, KW: 7, Stride: 2, Pad: 3})
	basic := func(stage string, cin, hw, cout int, downsample bool) {
		idx := 0
		name := func() string { idx++; return stageName(stage, idx) }
		for b := 0; b < 2; b++ {
			s := 1
			ci := cout
			if b == 0 {
				ci = cin
				if downsample {
					s = 2
				}
			}
			h := hw
			if b == 0 && downsample {
				h = hw * 2
			}
			n.Layers = append(n.Layers,
				Layer{Name: name(), C: ci, H: h, W: h, K: cout, KH: 3, KW: 3, Stride: s, Pad: 1},
				Layer{Name: name(), C: cout, H: hw, W: hw, K: cout, KH: 3, KW: 3, Stride: 1, Pad: 1})
			if b == 0 && downsample {
				n.Layers = append(n.Layers,
					Layer{Name: stage + "_ds", C: ci, H: h, W: h, K: cout, KH: 1, KW: 1, Stride: 2, Pad: 0})
			}
		}
	}
	basic("conv2", 64, 56, 64, false)
	basic("conv3", 64, 28, 128, true)
	basic("conv4", 128, 14, 256, true)
	basic("conv5", 256, 7, 512, true)
	return n
}

func stageName(stage string, idx int) string {
	return fmt.Sprintf("%s_%d", stage, idx)
}

// ResNet50 returns the fifty-three convolution layers of ResNet-50
// (bottleneck blocks with 1×1/3×3/1×1 convs and 1×1 projections).
func ResNet50() *Network {
	n := &Network{Name: "ResNet-50"}
	n.Layers = append(n.Layers, Layer{Name: "conv1", C: 3, H: 224, W: 224, K: 64, KH: 7, KW: 7, Stride: 2, Pad: 3})
	bottleneck := func(stage string, blocks, cin, hwIn, mid int, stride int) {
		cout := mid * 4
		idx := 0
		name := func() string { idx++; return stageName(stage, idx) }
		hwOut := hwIn / stride
		for b := 0; b < blocks; b++ {
			ci, s, h := cout, 1, hwOut
			if b == 0 {
				ci, s, h = cin, stride, hwIn
			}
			n.Layers = append(n.Layers,
				Layer{Name: name(), C: ci, H: h, W: h, K: mid, KH: 1, KW: 1, Stride: 1, Pad: 0},
				Layer{Name: name(), C: mid, H: h, W: h, K: mid, KH: 3, KW: 3, Stride: s, Pad: 1},
				Layer{Name: name(), C: mid, H: hwOut, W: hwOut, K: cout, KH: 1, KW: 1, Stride: 1, Pad: 0})
			if b == 0 {
				n.Layers = append(n.Layers,
					Layer{Name: stage + "_ds", C: ci, H: h, W: h, K: cout, KH: 1, KW: 1, Stride: s, Pad: 0})
			}
		}
	}
	bottleneck("conv2", 3, 64, 56, 64, 1)
	bottleneck("conv3", 4, 256, 56, 128, 2)
	bottleneck("conv4", 6, 512, 28, 256, 2)
	bottleneck("conv5", 3, 1024, 14, 512, 2)
	return n
}

// inceptionBranchSpec describes one GoogLeNet inception module:
// 1×1 branch, 3×3 branch (reduce then 3×3), 5×5 branch (reduce then 5×5),
// and the pool-projection 1×1. Output channels = n1 + n3 + n5 + pool.
type inceptionSpec struct {
	name         string
	n1, r3, n3   int
	r5, n5, pool int
}

func (s inceptionSpec) out() int { return s.n1 + s.n3 + s.n5 + s.pool }

func (s inceptionSpec) layers(cin, hw int) []Layer {
	var ls []Layer
	add := func(suffix string, c, k, ksz, pad int) {
		ls = append(ls, Layer{Name: s.name + "/" + suffix, C: c, H: hw, W: hw, K: k, KH: ksz, KW: ksz, Stride: 1, Pad: pad})
	}
	if s.n1 > 0 {
		add("1x1", cin, s.n1, 1, 0)
	}
	add("3x3_reduce", cin, s.r3, 1, 0)
	add("3x3", s.r3, s.n3, 3, 1)
	add("5x5_reduce", cin, s.r5, 1, 0)
	add("5x5", s.r5, s.n5, 5, 2)
	add("pool_proj", cin, s.pool, 1, 0)
	return ls
}

// GoogLeNet returns the convolution layers of GoogLeNet (inception v1),
// 57 convolutions across the stem and nine inception modules.
func GoogLeNet() *Network {
	n := &Network{Name: "GoogLeNet"}
	n.Layers = append(n.Layers,
		Layer{Name: "conv1", C: 3, H: 224, W: 224, K: 64, KH: 7, KW: 7, Stride: 2, Pad: 3},
		Layer{Name: "conv2_reduce", C: 64, H: 56, W: 56, K: 64, KH: 1, KW: 1, Stride: 1, Pad: 0},
		Layer{Name: "conv2", C: 64, H: 56, W: 56, K: 192, KH: 3, KW: 3, Stride: 1, Pad: 1})
	specs := []struct {
		spec inceptionSpec
		hw   int
	}{
		{inceptionSpec{"3a", 64, 96, 128, 16, 32, 32}, 28},
		{inceptionSpec{"3b", 128, 128, 192, 32, 96, 64}, 28},
		{inceptionSpec{"4a", 192, 96, 208, 16, 48, 64}, 14},
		{inceptionSpec{"4b", 160, 112, 224, 24, 64, 64}, 14},
		{inceptionSpec{"4c", 128, 128, 256, 24, 64, 64}, 14},
		{inceptionSpec{"4d", 112, 144, 288, 32, 64, 64}, 14},
		{inceptionSpec{"4e", 256, 160, 320, 32, 128, 128}, 14},
		{inceptionSpec{"5a", 256, 160, 320, 32, 128, 128}, 7},
		{inceptionSpec{"5b", 384, 192, 384, 48, 128, 128}, 7},
	}
	cin := 192
	for _, s := range specs {
		n.Layers = append(n.Layers, s.spec.layers(cin, s.hw)...)
		cin = s.spec.out()
	}
	return n
}

// bnInceptionSpec describes one Inception-V2 (BN-Inception) module: a 1×1
// branch, a 3×3 branch, a double-3×3 branch, and a pool projection. Stride-2
// modules drop the 1×1 branch and the pool projection (the pooled input
// passes through), per Ioffe & Szegedy (2015).
type bnInceptionSpec struct {
	name        string
	n1, r3, n3  int
	rd, nd      int // double-3×3 branch: reduce, then two 3×3 at nd
	pool        int
	stride      int
	passthrough int // channels carried by the stride-2 pooling path
}

func (s bnInceptionSpec) out() int { return s.n1 + s.n3 + s.nd + s.pool + s.passthrough }

func (s bnInceptionSpec) layers(cin, hw int) []Layer {
	var ls []Layer
	add := func(suffix string, c, k, ksz, stride, pad, sz int) {
		ls = append(ls, Layer{Name: s.name + "/" + suffix, C: c, H: sz, W: sz, K: k, KH: ksz, KW: ksz, Stride: stride, Pad: pad})
	}
	hwOut := hw / s.stride
	if s.n1 > 0 {
		add("1x1", cin, s.n1, 1, 1, 0, hw)
	}
	add("3x3_reduce", cin, s.r3, 1, 1, 0, hw)
	add("3x3", s.r3, s.n3, 3, s.stride, 1, hw)
	add("d3x3_reduce", cin, s.rd, 1, 1, 0, hw)
	add("d3x3_a", s.rd, s.nd, 3, 1, 1, hw)
	add("d3x3_b", s.nd, s.nd, 3, s.stride, 1, hw)
	if s.pool > 0 {
		add("pool_proj", cin, s.pool, 1, 1, 0, hwOut)
	}
	return ls
}

// InceptionV2 returns the convolution layers of Inception-V2 (BN-Inception),
// following the module table of Ioffe & Szegedy (2015).
func InceptionV2() *Network {
	n := &Network{Name: "Inception-V2"}
	n.Layers = append(n.Layers,
		Layer{Name: "conv1", C: 3, H: 224, W: 224, K: 64, KH: 7, KW: 7, Stride: 2, Pad: 3},
		Layer{Name: "conv2_reduce", C: 64, H: 56, W: 56, K: 64, KH: 1, KW: 1, Stride: 1, Pad: 0},
		Layer{Name: "conv2", C: 64, H: 56, W: 56, K: 192, KH: 3, KW: 3, Stride: 1, Pad: 1})
	specs := []struct {
		spec bnInceptionSpec
		hw   int
	}{
		{bnInceptionSpec{"3a", 64, 64, 64, 64, 96, 32, 1, 0}, 28},
		{bnInceptionSpec{"3b", 64, 64, 96, 64, 96, 64, 1, 0}, 28},
		{bnInceptionSpec{"3c", 0, 128, 160, 64, 96, 0, 2, 320}, 28},
		{bnInceptionSpec{"4a", 224, 64, 96, 96, 128, 128, 1, 0}, 14},
		{bnInceptionSpec{"4b", 192, 96, 128, 96, 128, 128, 1, 0}, 14},
		{bnInceptionSpec{"4c", 160, 128, 160, 128, 160, 96, 1, 0}, 14},
		{bnInceptionSpec{"4d", 96, 128, 192, 160, 192, 96, 1, 0}, 14},
		{bnInceptionSpec{"4e", 0, 128, 192, 192, 256, 0, 2, 576}, 14},
		{bnInceptionSpec{"5a", 352, 192, 320, 160, 224, 128, 1, 0}, 7},
		{bnInceptionSpec{"5b", 352, 192, 320, 192, 224, 128, 1, 0}, 7},
	}
	cin := 192
	for _, s := range specs {
		n.Layers = append(n.Layers, s.spec.layers(cin, s.hw)...)
		cin = s.spec.out()
	}
	return n
}
