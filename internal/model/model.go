// Package model encodes the convolutional layer geometry of the six ImageNet
// CNNs in the paper's benchmark (Section V-A2): AlexNet, VGG-16, GoogLeNet,
// Inception-V2, ResNet-18 and ResNet-50. Only convolution layers are listed:
// all evaluated accelerators spend their cycles there, and (like the paper,
// which omits MobileNets for the same reason) we consider standard
// convolutions only.
//
// The package also assigns per-layer precision: uniform 2/4/8-bit models and
// EdMIPS-style mixed 2/4-bit models where each layer's weight and activation
// bit-widths are chosen independently from {2,4} (deterministically seeded,
// standing in for the learned bit allocation we cannot reproduce without
// training).
package model

import "fmt"

// Layer describes one convolution layer.
type Layer struct {
	Name   string
	C      int // input channels
	H, W   int // input spatial size
	K      int // output channels
	KH, KW int // kernel size
	Stride int
	Pad    int
}

// OutH returns the output feature-map height.
func (l Layer) OutH() int { return (l.H+2*l.Pad-l.KH)/l.Stride + 1 }

// OutW returns the output feature-map width.
func (l Layer) OutW() int { return (l.W+2*l.Pad-l.KW)/l.Stride + 1 }

// MACs returns the multiply-accumulate count of the layer.
func (l Layer) MACs() int64 {
	return int64(l.K) * int64(l.C) * int64(l.KH) * int64(l.KW) * int64(l.OutH()) * int64(l.OutW())
}

// Weights returns the number of weight values.
func (l Layer) Weights() int64 {
	return int64(l.K) * int64(l.C) * int64(l.KH) * int64(l.KW)
}

// Activations returns the number of input activation values.
func (l Layer) Activations() int64 {
	return int64(l.C) * int64(l.H) * int64(l.W)
}

func (l Layer) String() string {
	return fmt.Sprintf("%s: %dx%dx%d -> %d @%dx%d/s%d p%d", l.Name, l.C, l.H, l.W, l.K, l.KH, l.KW, l.Stride, l.Pad)
}

// Network is an ordered list of convolution layers.
type Network struct {
	Name   string
	Layers []Layer
}

// MACs returns the total multiply-accumulate count of the network.
func (n *Network) MACs() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.MACs()
	}
	return t
}

// Layer returns the layer with the given name, or an error.
func (n *Network) Layer(name string) (Layer, error) {
	for _, l := range n.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return Layer{}, fmt.Errorf("model: network %s has no layer %q", n.Name, name)
}

// Benchmark returns the six networks of the paper's DNN benchmark.
func Benchmark() []*Network {
	return []*Network{
		AlexNet(), VGG16(), GoogLeNet(), InceptionV2(), ResNet18(), ResNet50(),
	}
}

// ByName returns a benchmark network by name.
func ByName(name string) (*Network, error) {
	for _, n := range Benchmark() {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("model: unknown network %q", name)
}

// Precision is a per-layer (weight, activation) bit-width assignment.
type Precision struct {
	WBits []int
	ABits []int
}

// Uniform returns an all-layers precision assignment at the given bit-width.
func Uniform(n *Network, bits int) Precision {
	p := Precision{WBits: make([]int, len(n.Layers)), ABits: make([]int, len(n.Layers))}
	for i := range n.Layers {
		p.WBits[i], p.ABits[i] = bits, bits
	}
	return p
}

// Mixed24 returns an EdMIPS-style mixed-precision assignment: each layer's
// weight and activation bit-widths are drawn independently from {2,4} using a
// deterministic hash of the network name, layer index and a seed, standing in
// for the differentiable search the paper runs. First layers keep 4 bits on
// both sides, mirroring the common practice of protecting input stems.
func Mixed24(n *Network, seed uint64) Precision {
	p := Precision{WBits: make([]int, len(n.Layers)), ABits: make([]int, len(n.Layers))}
	for i := range n.Layers {
		if i == 0 {
			p.WBits[i], p.ABits[i] = 4, 4
			continue
		}
		h := splitmix(seed ^ hashString(n.Name) ^ uint64(i)*0x9e3779b97f4a7c15)
		p.WBits[i] = 2 + 2*int(h&1)
		p.ABits[i] = 2 + 2*int((h>>1)&1)
	}
	return p
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
