package lint

import (
	"os"
	"path/filepath"
	"testing"

	"ristretto/internal/conformance"
)

// TestEveryBaselineHasConformanceEngine is the structural counterpart of
// the differential harness: every accelerator package under
// internal/baselines must register at least one engine adapter named after
// its directory, so a new baseline cannot land without being cross-checked
// against the reference convolution.
func TestEveryBaselineHasConformanceEngine(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "internal", "baselines")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := conformance.ByName(e.Name()); !ok {
			t.Errorf("baseline package internal/baselines/%s has no conformance engine registration (see internal/conformance/engines.go)", e.Name())
		}
	}
}

// TestRistrettoViewsHaveConformanceEngines pins the Ristretto-side adapter
// set: the functional CSC pipeline (sparse and dense), both simulators and
// the analytic model must all stay registered.
func TestRistrettoViewsHaveConformanceEngines(t *testing.T) {
	for _, name := range []string{"csc", "csc-ns", "tile-sim", "core-sim", "analytic"} {
		if _, ok := conformance.ByName(name); !ok {
			t.Errorf("engine %q missing from the conformance registry", name)
		}
	}
}
