// Package lint holds repository-hygiene tests: godoc coverage of the
// internal packages and intra-repo markdown link integrity. CI runs them
// both through the normal test sweep and as a dedicated docs job; they use
// only go/parser and the filesystem, so there is nothing to install.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the repository root relative to this source file.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate lint_test.go")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// goPackageDirs returns every directory under root that contains non-test
// Go files.
func goPackageDirs(t *testing.T, root string) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// parseDir parses the non-test Go files of one package directory.
func parseDir(t *testing.T, dir string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	return fset, files
}

// TestPackageDocs requires a package-level doc comment in every internal/*
// package (and the cmd binaries, which document their CLI contract there).
func TestPackageDocs(t *testing.T) {
	root := repoRoot(t)
	for _, sub := range []string{"internal", "cmd"} {
		for _, dir := range goPackageDirs(t, filepath.Join(root, sub)) {
			_, files := parseDir(t, dir)
			documented := false
			for _, f := range files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				rel, _ := filepath.Rel(root, dir)
				t.Errorf("package %s has no package-level doc comment", rel)
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package API).
func exportedReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	typ := fd.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return ast.IsExported(x.Name)
		default:
			return true
		}
	}
}

// TestExportedDocComments requires doc comments on every exported
// identifier of the packages that promise full godoc: the telemetry PR's
// internal/telemetry, internal/runner and internal/ristretto, plus the
// serving PR's internal/server and internal/loadtest.
func TestExportedDocComments(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range []string{
		"internal/telemetry", "internal/runner", "internal/ristretto",
		"internal/server", "internal/loadtest",
	} {
		fset, files := parseDir(t, filepath.Join(root, pkg))
		for _, f := range files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !ast.IsExported(d.Name.Name) || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						pos := fset.Position(d.Pos())
						t.Errorf("%s: exported %s lacks a doc comment", pos, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						var names []*ast.Ident
						var specDoc *ast.CommentGroup
						switch s := spec.(type) {
						case *ast.TypeSpec:
							names = []*ast.Ident{s.Name}
							specDoc = s.Doc
						case *ast.ValueSpec:
							names = s.Names
							specDoc = s.Doc
							if specDoc == nil {
								specDoc = s.Comment
							}
						}
						for _, name := range names {
							if !ast.IsExported(name.Name) {
								continue
							}
							// A doc comment on the grouped declaration
							// covers its specs (the idiomatic const-block
							// style); otherwise the spec needs its own.
							if d.Doc == nil && specDoc == nil {
								pos := fset.Position(name.Pos())
								t.Errorf("%s: exported %s lacks a doc comment", pos, name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// mdLink matches inline markdown links; the first capture is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails on broken intra-repo links in the root-level and
// docs/ markdown files: every relative link target (file or directory,
// anchors stripped) must exist. External URLs and pure-anchor links are
// skipped, as are fenced code blocks.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	docs, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, sub...)
	if len(docs) == 0 {
		t.Fatal("no markdown docs found at repo root")
	}
	for _, doc := range docs {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for ln, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(doc), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken intra-repo link %q", filepath.Base(doc), ln+1, m[1])
				}
			}
		}
	}
}
