// Package cellcache is the fleet-wide content-addressed result cache:
// sweep-cell payloads stored on disk under the cell's stable fingerprint
// (see experiments.CellSpec.Fingerprint), so identical cells compute once
// and repeat sweeps are served from disk in microseconds.
//
// Correctness over convenience:
//
//   - entries are CRC-guarded: every file carries a crc32 of its payload,
//     verified on read — a corrupt or torn entry is deleted and reported
//     as a miss (recomputed, never served), mirroring the checkpoint
//     journal's discipline;
//   - entries are digest-bound: every file also carries the end-to-end
//     sha256 payload digest (experiments.CellPayloadDigest), which binds
//     the payload bytes to the fingerprint the entry is addressed by. A
//     payload copied or rewritten under the wrong fingerprint — or a
//     well-formed-but-wrong payload written by a corrupted writer whose
//     CRC still matches — fails the digest check and is deleted and
//     recomputed, never served;
//   - writes are crash-safe through safeio (temp file + fsync + rename),
//     so a SIGKILL mid-write leaves the old entry or none, never a hybrid;
//   - concurrent requests for the same fingerprint singleflight through Do:
//     one leader computes while waiters block on the in-flight result, and
//     errors are never cached;
//   - the store is append-only content addressing — a fingerprint's bytes
//     never change once written, so hits are byte-identical to the
//     computation that produced them (the cache correctness tests enforce
//     all of this).
//
// The disk is not trusted either (the disk-fault chaos suites exercise all
// of this through the safeio FS seam):
//
//   - a cache whose writes keep failing (ENOSPC, failed fsync) degrades to
//     read-only pass-through after Options.WriteFailLimit consecutive
//     failures: results still flow, they just stop being cached — a full
//     disk slows a sweep down, it never fails one;
//   - read errors that are not ENOENT are counted separately from plain
//     misses and answered by recomputation, never by guessing;
//   - Scrub walks every entry, verifies CRC and digest, and deletes what
//     does not verify — run on open by the fleet and the serve daemon, and
//     on demand via ristretto-fleet -scrub;
//   - Options.MaxBytes bounds the store: a deterministic second-chance
//     (clock) sweep evicts cold entries — hits set the reference bit — so
//     the on-disk footprint stays put while a warm working set keeps its
//     >=90% hit rate.
//
// Telemetry lands under fleet.cache.*: hits, misses, writes, corrupt
// entries, inflight dedups, write_errors, read_errors, evicted, scrubbed
// and degraded.
package cellcache

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"ristretto/internal/experiments"
	"ristretto/internal/safeio"
	"ristretto/internal/telemetry"
)

// Schema is the first header token of every cache entry file. Bump on
// incompatible format change; old entries then fail the header check and
// are recomputed. v2 added the fingerprint-bound sha256 payload digest to
// the header — v1 entries (crc-only) fail the schema check and recompute.
const Schema = "ristretto.cell-cache/v2"

// ErrDegraded is returned by Put once the cache has degraded to read-only
// after persistent write failures. Callers already treat Put errors as
// "uncached but correct"; the sentinel lets them tell degradation from a
// fresh failure.
var ErrDegraded = errors.New("cellcache: degraded to read-only after persistent write failures")

// Options tunes a cache beyond the defaults Open picks.
type Options struct {
	// FS is the filesystem seam (nil = safeio.OS). The disk-fault chaos
	// suites inject a lying disk here.
	FS safeio.FS
	// MaxBytes bounds the total size of entry files; 0 = unbounded. When a
	// write pushes the store over the bound, a deterministic second-chance
	// sweep evicts cold entries until it fits.
	MaxBytes int64
	// ScrubOnOpen verifies every entry (CRC + digest) while opening,
	// deleting what does not verify. The fleet coordinator and the serve
	// daemon open with this set; bare Open does not.
	ScrubOnOpen bool
	// WriteFailLimit is how many consecutive Put failures degrade the
	// cache to read-only pass-through; 0 = 3, negative = never degrade.
	WriteFailLimit int
}

// flight is one in-progress fill: waiters block on done; val/err are set
// before done closes. Errors are never cached — the flight is how waiters
// learn about them.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// entry is the in-memory accounting for one on-disk file: its size and the
// second-chance reference bit (set on every hit, cleared by the sweeping
// clock hand; an entry the hand finds cleared is evicted).
type entry struct {
	fp   string
	size int64
	ref  bool
}

// Cache is the content-addressed store rooted at a directory. Entries are
// sharded two hex chars deep (dir/ab/abcd...) to keep directories small at
// fleet scale. Safe for concurrent use by multiple goroutines; multiple
// processes may share a directory (atomic same-content writes commute),
// though the singleflight span — and the capacity accounting — is
// per-process.
type Cache struct {
	dir  string
	fsys safeio.FS

	mu      sync.Mutex
	flights map[string]*flight

	// emu guards the capacity/eviction state and the degraded flag.
	emu         sync.Mutex
	entries     map[string]*entry
	clock       []*entry // ring in discovery order; nil = evicted hole
	hand        int
	total       int64
	maxBytes    int64
	failLimit   int
	consecFails int
	degraded    bool

	hits        *telemetry.Counter
	misses      *telemetry.Counter
	writes      *telemetry.Counter
	corrupt     *telemetry.Counter
	dedup       *telemetry.Counter
	writeErrors *telemetry.Counter
	readErrors  *telemetry.Counter
	evicted     *telemetry.Counter
	scrubbed    *telemetry.Counter
	degradedC   *telemetry.Counter
}

// Open prepares a cache rooted at dir with default options, creating it as
// needed. Metrics land in r (nil = telemetry.Default) under fleet.cache.*.
func Open(dir string, r *telemetry.Registry) (*Cache, error) {
	return OpenWith(dir, r, Options{})
}

// OpenWith is Open with explicit Options. With ScrubOnOpen set the whole
// store is verified (and corrupt entries deleted) before OpenWith returns;
// with MaxBytes set the store is inventoried and evicted down to the bound.
func OpenWith(dir string, r *telemetry.Registry, opts Options) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellcache: empty cache directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = safeio.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if r == nil {
		r = telemetry.Default
	}
	failLimit := opts.WriteFailLimit
	if failLimit == 0 {
		failLimit = 3
	}
	c := &Cache{
		dir:         dir,
		fsys:        fsys,
		flights:     map[string]*flight{},
		entries:     map[string]*entry{},
		maxBytes:    opts.MaxBytes,
		failLimit:   failLimit,
		hits:        r.Counter("fleet.cache.hits"),
		misses:      r.Counter("fleet.cache.misses"),
		writes:      r.Counter("fleet.cache.writes"),
		corrupt:     r.Counter("fleet.cache.corrupt"),
		dedup:       r.Counter("fleet.cache.inflight_dedup"),
		writeErrors: r.Counter("fleet.cache.write_errors"),
		readErrors:  r.Counter("fleet.cache.read_errors"),
		evicted:     r.Counter("fleet.cache.evicted"),
		scrubbed:    r.Counter("fleet.cache.scrubbed"),
		degradedC:   r.Counter("fleet.cache.degraded"),
	}
	if opts.ScrubOnOpen {
		if _, err := c.Scrub(); err != nil {
			return nil, fmt.Errorf("cellcache: scrub on open: %w", err)
		}
	} else if c.maxBytes > 0 {
		if err := c.inventory(); err != nil {
			return nil, fmt.Errorf("cellcache: inventory: %w", err)
		}
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Degraded reports whether persistent write failures have degraded the
// cache to read-only pass-through.
func (c *Cache) Degraded() bool {
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.degraded
}

// path maps a fingerprint to its entry file. Fingerprints are hex sha256
// strings; anything shorter than the shard width still gets a stable path.
func (c *Cache) path(fp string) string {
	shard := fp
	if len(shard) > 2 {
		shard = fp[:2]
	}
	return filepath.Join(c.dir, shard, fp)
}

// EntryPath returns the file a fingerprint's entry lives at — for tools
// and the crash-consistency matrix, which plants torn entries there.
func (c *Cache) EntryPath(fp string) string { return c.path(fp) }

// Get returns the cached payload for a fingerprint. A present entry whose
// header, CRC or fingerprint-bound payload digest does not verify is
// deleted and reported as a miss — a corrupt entry is recomputed, never
// served. A read that fails for any reason other than the entry not
// existing counts under fleet.cache.read_errors (and still misses: real
// I/O trouble is answered by recomputation, not by guessing). The returned
// bytes are the caller's to keep (freshly read, not shared).
func (c *Cache) Get(fp string) ([]byte, bool) {
	data, err := c.fsys.ReadFile(c.path(fp))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.readErrors.Inc()
		}
		c.misses.Inc()
		return nil, false
	}
	payload, ok := decodeEntry(fp, data)
	if !ok {
		c.corrupt.Inc()
		c.misses.Inc()
		c.fsys.Remove(c.path(fp))
		c.dropEntry(fp)
		return nil, false
	}
	c.hits.Inc()
	c.noteEntry(fp, int64(len(data)))
	return payload, true
}

// Put stores a payload under its fingerprint, crash-safely. Re-putting an
// existing fingerprint rewrites the same content (content addressing: the
// bytes are a pure function of the fingerprint's cell). Failures count
// under fleet.cache.write_errors; after WriteFailLimit consecutive
// failures the cache degrades to read-only and Put returns ErrDegraded
// without touching the disk — a full disk must only ever cost speed.
func (c *Cache) Put(fp string, payload []byte) error {
	c.emu.Lock()
	if c.degraded {
		c.emu.Unlock()
		return ErrDegraded
	}
	c.emu.Unlock()
	data := encodeEntry(fp, payload)
	err := c.write(fp, data)
	if err != nil {
		c.writeErrors.Inc()
		c.emu.Lock()
		c.consecFails++
		if c.failLimit > 0 && c.consecFails >= c.failLimit && !c.degraded {
			c.degraded = true
			c.degradedC.Inc()
		}
		c.emu.Unlock()
		return err
	}
	c.writes.Inc()
	c.emu.Lock()
	c.consecFails = 0
	c.emu.Unlock()
	c.noteEntry(fp, int64(len(data)))
	return nil
}

// write performs the crash-safe on-disk store of one encoded entry.
func (c *Cache) write(fp string, data []byte) error {
	p := c.path(fp)
	if err := c.fsys.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return safeio.WriteFileFS(c.fsys, p, data, 0o644)
}

// Do answers a fingerprint through the cache with singleflight semantics:
// a disk hit returns immediately (hit=true); otherwise the first caller
// becomes the leader, runs compute, stores a successful result and
// publishes it to every concurrent caller of the same fingerprint
// (hit=false for all of them — exactly one compute ran). A failed compute
// is returned to the whole flight and nothing is cached, so the next
// request elects a fresh leader.
func (c *Cache) Do(fp string, compute func() ([]byte, error)) (payload []byte, hit bool, err error) {
	if v, ok := c.Get(fp); ok {
		return v, true, nil
	}
	c.mu.Lock()
	if fl, ok := c.flights[fp]; ok {
		c.dedup.Inc()
		c.mu.Unlock()
		<-fl.done
		return fl.val, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[fp] = fl
	c.mu.Unlock()

	v, cerr := compute()
	if cerr == nil {
		// A failed write degrades to uncached: the result is still correct
		// and still published to waiters, it just won't be a hit next time.
		// Put itself tallies the failure under fleet.cache.write_errors and
		// trips the read-only degradation, so nothing is silent.
		_ = c.Put(fp, v)
	}
	c.mu.Lock()
	fl.val, fl.err = v, cerr
	delete(c.flights, fp)
	c.mu.Unlock()
	close(fl.done)
	return v, false, cerr
}

// Len walks the store and counts valid-looking entries — an O(entries)
// maintenance/test helper, not a hot-path call. Walk errors surface
// instead of silently shrinking the count.
func (c *Cache) Len() (int, error) {
	n := 0
	err := c.fsys.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasPrefix(filepath.Base(path), ".") {
			return nil
		}
		n++
		return nil
	})
	return n, err
}

// encodeEntry frames a payload: one header line "schema crc8hex digest",
// then the raw payload bytes (which may themselves contain newlines). The
// digest is the fingerprint-bound end-to-end sha256
// (experiments.CellPayloadDigest), so the entry's integrity is checked
// against the address it is served under, not just against bit rot.
func encodeEntry(fp string, payload []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %08x %s\n", Schema, crc32.ChecksumIEEE(payload), experiments.CellPayloadDigest(fp, payload))
	b.Write(payload)
	return b.Bytes()
}

// decodeEntry reverses encodeEntry for the entry addressed by fp,
// rejecting wrong schemas, torn headers, headers with trailing junk after
// the digest token, payloads whose CRC does not match, and payloads whose
// fingerprint-bound digest does not verify — the last catches
// well-formed-but-wrong bytes a checksum alone would happily serve (an
// entry renamed to another fingerprint's path, or a corrupted writer that
// recomputed the CRC over the wrong payload).
func decodeEntry(fp string, data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	header := string(data[:nl])
	payload := data[nl+1:]
	// Exactly three fields: "schema crc8hex digest". Sscanf-style parsing
	// would accept trailing junk after the digest, which a strict framing
	// check must not.
	fields := strings.Fields(header)
	if len(fields) != 3 || fields[0] != Schema || len(fields[1]) != 8 {
		return nil, false
	}
	sum64, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != uint32(sum64) {
		return nil, false
	}
	if fields[2] != experiments.CellPayloadDigest(fp, payload) {
		return nil, false
	}
	return payload, true
}
