// Package cellcache is the fleet-wide content-addressed result cache:
// sweep-cell payloads stored on disk under the cell's stable fingerprint
// (see experiments.CellSpec.Fingerprint), so identical cells compute once
// and repeat sweeps are served from disk in microseconds.
//
// Correctness over convenience:
//
//   - entries are CRC-guarded: every file carries a crc32 of its payload,
//     verified on read — a corrupt or torn entry is deleted and reported
//     as a miss (recomputed, never served), mirroring the checkpoint
//     journal's discipline;
//   - entries are digest-bound: every file also carries the end-to-end
//     sha256 payload digest (experiments.CellPayloadDigest), which binds
//     the payload bytes to the fingerprint the entry is addressed by. A
//     payload copied or rewritten under the wrong fingerprint — or a
//     well-formed-but-wrong payload written by a corrupted writer whose
//     CRC still matches — fails the digest check and is deleted and
//     recomputed, never served;
//   - writes are crash-safe through safeio (temp file + fsync + rename),
//     so a SIGKILL mid-write leaves the old entry or none, never a hybrid;
//   - concurrent requests for the same fingerprint singleflight through Do:
//     one leader computes while waiters block on the in-flight result, and
//     errors are never cached;
//   - the store is append-only content addressing — a fingerprint's bytes
//     never change once written, so hits are byte-identical to the
//     computation that produced them (the cache correctness tests enforce
//     all of this).
//
// Telemetry lands under fleet.cache.*: hits, misses, writes, corrupt
// entries and inflight dedups.
package cellcache

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ristretto/internal/experiments"
	"ristretto/internal/safeio"
	"ristretto/internal/telemetry"
)

// Schema is the first header token of every cache entry file. Bump on
// incompatible format change; old entries then fail the header check and
// are recomputed. v2 added the fingerprint-bound sha256 payload digest to
// the header — v1 entries (crc-only) fail the schema check and recompute.
const Schema = "ristretto.cell-cache/v2"

// flight is one in-progress fill: waiters block on done; val/err are set
// before done closes. Errors are never cached — the flight is how waiters
// learn about them.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the content-addressed store rooted at a directory. Entries are
// sharded two hex chars deep (dir/ab/abcd...) to keep directories small at
// fleet scale. Safe for concurrent use by multiple goroutines; multiple
// processes may share a directory (atomic same-content writes commute),
// though the singleflight span is per-process.
type Cache struct {
	dir string

	mu      sync.Mutex
	flights map[string]*flight

	hits    *telemetry.Counter
	misses  *telemetry.Counter
	writes  *telemetry.Counter
	corrupt *telemetry.Counter
	dedup   *telemetry.Counter
}

// Open prepares a cache rooted at dir, creating it as needed. Metrics land
// in r (nil = telemetry.Default) under fleet.cache.*.
func Open(dir string, r *telemetry.Registry) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if r == nil {
		r = telemetry.Default
	}
	return &Cache{
		dir:     dir,
		flights: map[string]*flight{},
		hits:    r.Counter("fleet.cache.hits"),
		misses:  r.Counter("fleet.cache.misses"),
		writes:  r.Counter("fleet.cache.writes"),
		corrupt: r.Counter("fleet.cache.corrupt"),
		dedup:   r.Counter("fleet.cache.inflight_dedup"),
	}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path maps a fingerprint to its entry file. Fingerprints are hex sha256
// strings; anything shorter than the shard width still gets a stable path.
func (c *Cache) path(fp string) string {
	shard := fp
	if len(shard) > 2 {
		shard = fp[:2]
	}
	return filepath.Join(c.dir, shard, fp)
}

// Get returns the cached payload for a fingerprint. A present entry whose
// header, CRC or fingerprint-bound payload digest does not verify is
// deleted and reported as a miss — a corrupt entry is recomputed, never
// served. The returned bytes are the caller's to keep (freshly read, not
// shared).
func (c *Cache) Get(fp string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	payload, ok := decodeEntry(fp, data)
	if !ok {
		c.corrupt.Inc()
		c.misses.Inc()
		os.Remove(c.path(fp))
		return nil, false
	}
	c.hits.Inc()
	return payload, true
}

// Put stores a payload under its fingerprint, crash-safely. Re-putting an
// existing fingerprint rewrites the same content (content addressing: the
// bytes are a pure function of the fingerprint's cell).
func (c *Cache) Put(fp string, payload []byte) error {
	p := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	if err := safeio.WriteFile(p, encodeEntry(fp, payload), 0o644); err != nil {
		return err
	}
	c.writes.Inc()
	return nil
}

// Do answers a fingerprint through the cache with singleflight semantics:
// a disk hit returns immediately (hit=true); otherwise the first caller
// becomes the leader, runs compute, stores a successful result and
// publishes it to every concurrent caller of the same fingerprint
// (hit=false for all of them — exactly one compute ran). A failed compute
// is returned to the whole flight and nothing is cached, so the next
// request elects a fresh leader.
func (c *Cache) Do(fp string, compute func() ([]byte, error)) (payload []byte, hit bool, err error) {
	if v, ok := c.Get(fp); ok {
		return v, true, nil
	}
	c.mu.Lock()
	if fl, ok := c.flights[fp]; ok {
		c.dedup.Inc()
		c.mu.Unlock()
		<-fl.done
		return fl.val, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[fp] = fl
	c.mu.Unlock()

	v, cerr := compute()
	if cerr == nil {
		// A failed write degrades to uncached: the result is still correct
		// and still published to waiters, it just won't be a hit next time.
		_ = c.Put(fp, v)
	}
	c.mu.Lock()
	fl.val, fl.err = v, cerr
	delete(c.flights, fp)
	c.mu.Unlock()
	close(fl.done)
	return v, false, cerr
}

// Len walks the store and counts valid-looking entries — an O(entries)
// maintenance/test helper, not a hot-path call.
func (c *Cache) Len() int {
	n := 0
	filepath.Walk(c.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasPrefix(filepath.Base(path), ".") {
			return nil
		}
		n++
		return nil
	})
	return n
}

// encodeEntry frames a payload: one header line "schema crc8hex digest",
// then the raw payload bytes (which may themselves contain newlines). The
// digest is the fingerprint-bound end-to-end sha256
// (experiments.CellPayloadDigest), so the entry's integrity is checked
// against the address it is served under, not just against bit rot.
func encodeEntry(fp string, payload []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %08x %s\n", Schema, crc32.ChecksumIEEE(payload), experiments.CellPayloadDigest(fp, payload))
	b.Write(payload)
	return b.Bytes()
}

// decodeEntry reverses encodeEntry for the entry addressed by fp,
// rejecting wrong schemas, torn headers, payloads whose CRC does not
// match, and payloads whose fingerprint-bound digest does not verify —
// the last catches well-formed-but-wrong bytes a checksum alone would
// happily serve (an entry renamed to another fingerprint's path, or a
// corrupted writer that recomputed the CRC over the wrong payload).
func decodeEntry(fp string, data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	header := string(data[:nl])
	payload := data[nl+1:]
	var sum uint32
	var schema, digest string
	if _, err := fmt.Sscanf(header, "%s %08x %s", &schema, &sum, &digest); err != nil || schema != Schema {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	if digest != experiments.CellPayloadDigest(fp, payload) {
		return nil, false
	}
	return payload, true
}
