package cellcache

// Disk-robustness coverage: injected read/write faults, the capacity
// bound's deterministic second-chance eviction, read-only degradation
// under a persistently full disk, the scrub pass, and the strict entry
// header framing. The end-to-end story (a faulted fleet sweep staying
// byte-identical to the serial golden) lives in the chaos-disk CI gate.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

func fpN(i int) string {
	return fmt.Sprintf("%02x%062x", i, i)
}

func openWith(t *testing.T, opts Options) (*Cache, *telemetry.Registry) {
	t.Helper()
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	c, err := OpenWith(filepath.Join(t.TempDir(), "cells"), r, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, r
}

// TestReadErrorIsAMissNotAServe: a real I/O error on read (not ENOENT)
// counts under fleet.cache.read_errors and degrades to a recompute — Do
// still returns the right payload.
func TestReadErrorIsAMissNotAServe(t *testing.T) {
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, EIO: 1}, nil)
	c, r := openWith(t, Options{FS: fsys})
	payload := []byte("payload")
	computes := 0
	v, hit, err := c.Do(fpA, func() ([]byte, error) { computes++; return payload, nil })
	if err != nil || hit || !bytes.Equal(v, payload) || computes != 1 {
		t.Fatalf("Do under EIO = (%q, %v, %v), computes=%d", v, hit, err, computes)
	}
	// The entry was written (writes are clean in this spec) but every read
	// EIOs: the next Do recomputes again instead of failing.
	v, hit, err = c.Do(fpA, func() ([]byte, error) { computes++; return payload, nil })
	if err != nil || hit || !bytes.Equal(v, payload) || computes != 2 {
		t.Fatalf("second Do under EIO = (%q, %v, %v), computes=%d", v, hit, err, computes)
	}
	snap := r.Snapshot()
	if snap.Counters["fleet.cache.read_errors"] < 2 {
		t.Fatalf("read_errors = %d, want >= 2", snap.Counters["fleet.cache.read_errors"])
	}
	if snap.Counters["fleet.cache.corrupt"] != 0 {
		t.Fatalf("I/O errors misclassified as corruption: corrupt = %d", snap.Counters["fleet.cache.corrupt"])
	}
}

// TestPlainMissIsNotAReadError: ENOENT is the normal cold-cache case and
// must not count as an I/O error.
func TestPlainMissIsNotAReadError(t *testing.T) {
	c, r := newCache(t)
	if _, ok := c.Get(fpA); ok {
		t.Fatal("empty cache hit")
	}
	snap := r.Snapshot()
	if snap.Counters["fleet.cache.read_errors"] != 0 {
		t.Fatalf("plain miss counted as read error: %d", snap.Counters["fleet.cache.read_errors"])
	}
	if snap.Counters["fleet.cache.misses"] != 1 {
		t.Fatalf("misses = %d, want 1", snap.Counters["fleet.cache.misses"])
	}
}

// TestHeaderTrailingJunkRejected is the decodeEntry framing regression:
// a header with extra fields after the digest must not verify, even when
// CRC and digest themselves are the real ones.
func TestHeaderTrailingJunkRejected(t *testing.T) {
	c, _ := newCache(t)
	payload := []byte("payload bytes")
	if err := c.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	p := c.EntryPath(fpA)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	junked := append([]byte{}, data[:nl]...)
	junked = append(junked, []byte(" trailing-junk")...)
	junked = append(junked, data[nl:]...)
	if err := os.WriteFile(p, junked, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(fpA); ok {
		t.Fatal("entry with trailing header junk served")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("junked entry not deleted (stat err %v)", err)
	}
}

// TestDegradedReadOnlyAfterPersistentWriteFailures: WriteFailLimit
// consecutive Put failures flip the cache to read-only — Put returns
// ErrDegraded without disk I/O, Do keeps answering correctly, and
// fleet.cache.degraded records the transition once.
func TestDegradedReadOnlyAfterPersistentWriteFailures(t *testing.T) {
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, ENOSPC: 1}, nil)
	c, r := openWith(t, Options{FS: fsys, WriteFailLimit: 3})
	for i := 0; i < 3; i++ {
		if err := c.Put(fpN(i), []byte("payload")); err == nil || errors.Is(err, ErrDegraded) {
			t.Fatalf("Put %d = %v, want a real write error before the limit", i, err)
		}
	}
	if !c.Degraded() {
		t.Fatal("cache not degraded after WriteFailLimit failures")
	}
	if err := c.Put(fpN(9), []byte("payload")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put on degraded cache = %v, want ErrDegraded", err)
	}
	// The sweep must not notice: Do computes and returns success.
	payload := []byte("computed anyway")
	v, hit, err := c.Do(fpA, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(v, payload) {
		t.Fatalf("Do on degraded cache = (%q, %v, %v)", v, hit, err)
	}
	snap := r.Snapshot()
	if snap.Counters["fleet.cache.write_errors"] != 3 {
		t.Fatalf("write_errors = %d, want 3", snap.Counters["fleet.cache.write_errors"])
	}
	if snap.Counters["fleet.cache.degraded"] != 1 {
		t.Fatalf("degraded = %d, want 1", snap.Counters["fleet.cache.degraded"])
	}
}

// TestWriteFailureThenRecoverresetsTheFailureStreak: consecutive means
// consecutive — a success in between starts the count over, so a blip
// never degrades the cache.
func TestWriteFailureThenRecoverResetsStreak(t *testing.T) {
	fsys := faultinject.NewDiskFS(faultinject.DiskSpec{Seed: 1, ENOSPC: 0.5}, nil)
	c, _ := openWith(t, Options{FS: fsys, WriteFailLimit: 3})
	// With p=0.5 over many distinct fingerprints, both outcomes occur; as
	// long as no 3 failures run consecutively the cache must stay writable.
	streak := 0
	for i := 0; i < 64 && streak < 3; i++ {
		if err := c.Put(fpN(i), []byte("payload")); err != nil {
			streak++
		} else {
			streak = 0
			if c.Degraded() {
				t.Fatal("cache degraded despite a successful write resetting the streak")
			}
		}
	}
}

// TestSecondChanceEvictionDeterministic: with a byte bound, inserts evict
// in ring order — and a Get between inserts sets the reference bit, buying
// the touched entry a lap while the untouched neighbor goes first.
func TestSecondChanceEvictionDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 256)
	entrySize := int64(len(encodeEntry(fpN(0), payload)))
	c, r := openWith(t, Options{MaxBytes: entrySize * 3})
	for i := 0; i < 3; i++ {
		if err := c.Put(fpN(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// All three fit. Touch entry 1: its ref bit is set again (it already
	// had insert-grace; a second touch is idempotent).
	if _, ok := c.Get(fpN(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	// Inserting a fourth forces one eviction. Every entry has its bit set
	// (insert grace), so the hand strips 0's bit, 1's, 2's, then comes back
	// to 0 — cleared — and evicts it. Deterministic: always entry 0.
	if err := c.Put(fpN(3), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(fpN(0)); ok {
		t.Fatal("entry 0 survived; eviction order not deterministic ring order")
	}
	for _, i := range []int{1, 2, 3} {
		if _, ok := c.Get(fpN(i)); !ok {
			t.Fatalf("entry %d evicted, want entry 0 only", i)
		}
	}
	snap := r.Snapshot()
	if snap.Counters["fleet.cache.evicted"] != 1 {
		t.Fatalf("evicted = %d, want 1", snap.Counters["fleet.cache.evicted"])
	}
	// Rerun the same history against a fresh cache: identical survivor set.
	c2, _ := openWith(t, Options{MaxBytes: entrySize * 3})
	for i := 0; i < 3; i++ {
		if err := c2.Put(fpN(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	c2.Get(fpN(1))
	if err := c2.Put(fpN(3), payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, ok1 := c.Get(fpN(i))
		_, ok2 := c2.Get(fpN(i))
		if ok1 != ok2 {
			t.Fatalf("entry %d: survivor sets diverge between identical histories", i)
		}
	}
}

// TestScrubDeletesCorruptEntries: a scrub pass detects bit rot without
// waiting for a Get, deletes it, and reports honestly.
func TestScrubDeletesCorruptEntries(t *testing.T) {
	c, r := newCache(t)
	good, bad := fpN(1), fpN(2)
	for _, fp := range []string{good, bad} {
		if err := c.Put(fp, []byte("payload for "+fp)); err != nil {
			t.Fatal(err)
		}
	}
	// Rot one payload byte on disk.
	p := c.EntryPath(bad)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x04
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || rep.Corrupt != 1 || rep.ReadErrors != 0 {
		t.Fatalf("scrub report = %+v, want 2 checked / 1 corrupt", rep)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted (stat err %v)", err)
	}
	if _, ok := c.Get(good); !ok {
		t.Fatal("scrub deleted a valid entry")
	}
	snap := r.Snapshot()
	if snap.Counters["fleet.cache.scrubbed"] != 2 || snap.Counters["fleet.cache.corrupt"] != 1 {
		t.Fatalf("scrubbed=%d corrupt=%d, want 2/1",
			snap.Counters["fleet.cache.scrubbed"], snap.Counters["fleet.cache.corrupt"])
	}
}

// TestScrubOnOpenCatchesBitRot: OpenWith{ScrubOnOpen} deletes rotted
// entries before the first Get can trip over them — the fleet and serve
// binaries open their caches this way.
func TestScrubOnOpenCatchesBitRot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	c, err := OpenWith(dir, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fpA, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := c.EntryPath(fpA)
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith(dir, r, Options{ScrubOnOpen: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("scrub-on-open left the rotted entry (stat err %v)", err)
	}
}

// TestLenPropagatesWalkErrors: Len on a missing-permission or vanished
// store surfaces the walk error instead of silently reporting a small
// number. (A nonexistent dir is the one benign case: zero entries.)
func TestLenPropagatesWalkErrors(t *testing.T) {
	c, _ := newCache(t)
	n, err := c.Len()
	if err != nil || n != 0 {
		t.Fatalf("Len on fresh cache = %d, %v", n, err)
	}
	if err := c.Put(fpA, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if n, err = c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v, want 1", n, err)
	}
	if os.Getuid() == 0 {
		t.Skip("running as root: permission-based walk errors cannot be provoked")
	}
	shard := filepath.Dir(c.EntryPath(fpA))
	if err := os.Chmod(shard, 0o000); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(shard, 0o755)
	if _, err := c.Len(); err == nil {
		t.Fatal("Len swallowed a walk error")
	}
}
