package cellcache

// Self-scrubbing and the capacity bound. Both walk the store in lexical
// (WalkDir) order, which makes the clock ring — and therefore the
// second-chance eviction sequence — deterministic for a given history of
// puts and hits: the disk-chaos CI gate relies on a capacity-bounded rerun
// evicting the same entries on every machine.

import (
	"io/fs"
	"path/filepath"
	"strings"
)

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Checked is how many entry files the pass examined.
	Checked int `json:"checked"`
	// Corrupt is how many failed CRC/digest verification and were deleted.
	Corrupt int `json:"corrupt"`
	// ReadErrors is how many could not be read at all (counted separately,
	// also deleted: an unreadable entry can never be served).
	ReadErrors int `json:"read_errors"`
	// Bytes is the total size of the valid entries retained.
	Bytes int64 `json:"bytes"`
}

// Scrub walks every entry, verifies its CRC and fingerprint-bound digest,
// and deletes what does not verify — bit rot is caught here instead of on
// some future Get. The in-memory capacity inventory is rebuilt from the
// surviving entries (reference bits cleared, so unscanned-cold entries are
// first in line for eviction), and if the store exceeds MaxBytes it is
// evicted down to the bound before Scrub returns. Entries examined count
// under fleet.cache.scrubbed; deletions under fleet.cache.corrupt and
// fleet.cache.read_errors.
func (c *Cache) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	var live []*entry
	err := c.fsys.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		fp := filepath.Base(path)
		if d.IsDir() || strings.HasPrefix(fp, ".") {
			return nil
		}
		rep.Checked++
		c.scrubbed.Inc()
		data, rerr := c.fsys.ReadFile(path)
		if rerr != nil {
			rep.ReadErrors++
			c.readErrors.Inc()
			c.fsys.Remove(path)
			return nil
		}
		if _, ok := decodeEntry(fp, data); !ok {
			rep.Corrupt++
			c.corrupt.Inc()
			c.fsys.Remove(path)
			return nil
		}
		rep.Bytes += int64(len(data))
		live = append(live, &entry{fp: fp, size: int64(len(data))})
		return nil
	})
	if err != nil {
		return rep, err
	}
	c.resetInventory(live)
	return rep, nil
}

// inventory rebuilds the capacity accounting from file sizes alone — the
// cheap walk OpenWith uses when a bound is set without a scrub.
func (c *Cache) inventory() error {
	var live []*entry
	err := c.fsys.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		fp := filepath.Base(path)
		if d.IsDir() || strings.HasPrefix(fp, ".") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		live = append(live, &entry{fp: fp, size: info.Size()})
		return nil
	})
	if err != nil {
		return err
	}
	c.resetInventory(live)
	return nil
}

// resetInventory installs a freshly walked entry set and enforces the
// capacity bound on it.
func (c *Cache) resetInventory(live []*entry) {
	c.emu.Lock()
	defer c.emu.Unlock()
	c.entries = make(map[string]*entry, len(live))
	c.clock = c.clock[:0]
	c.hand = 0
	c.total = 0
	for _, e := range live {
		c.entries[e.fp] = e
		c.clock = append(c.clock, e)
		c.total += e.size
	}
	c.evictLocked()
}

// noteEntry records (or refreshes) one entry's accounting after a hit or a
// successful write: known entries get their reference bit set, new ones
// join the clock ring with the bit set — one full hand sweep of grace
// before they are evictable — and the bound is enforced.
func (c *Cache) noteEntry(fp string, size int64) {
	c.emu.Lock()
	defer c.emu.Unlock()
	if e, ok := c.entries[fp]; ok {
		c.total += size - e.size
		e.size = size
		e.ref = true
	} else {
		e := &entry{fp: fp, size: size, ref: true}
		c.entries[fp] = e
		c.clock = append(c.clock, e)
		c.total += size
	}
	c.evictLocked()
}

// dropEntry forgets an entry whose file is gone (deleted as corrupt).
func (c *Cache) dropEntry(fp string) {
	c.emu.Lock()
	defer c.emu.Unlock()
	if e, ok := c.entries[fp]; ok {
		c.total -= e.size
		delete(c.entries, fp)
		for i, ce := range c.clock {
			if ce == e {
				c.clock[i] = nil
				break
			}
		}
		c.compactLocked()
	}
}

// evictLocked runs the second-chance hand until the store fits MaxBytes:
// an entry whose reference bit is set gets it cleared and survives this
// lap; an entry the hand finds cleared is evicted (file removed, counted
// under fleet.cache.evicted). Deterministic: the ring order is discovery
// order and the hand never consults time. Called with emu held.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.total > c.maxBytes && len(c.entries) > 0 {
		if c.hand >= len(c.clock) {
			c.hand = 0
		}
		e := c.clock[c.hand]
		if e == nil {
			c.hand++
			continue
		}
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		c.fsys.Remove(c.path(e.fp))
		c.evicted.Inc()
		c.total -= e.size
		delete(c.entries, e.fp)
		c.clock[c.hand] = nil
		c.hand++
	}
	c.compactLocked()
}

// compactLocked squeezes eviction holes out of the ring once they dominate
// it, preserving order and the hand's position. Called with emu held.
func (c *Cache) compactLocked() {
	if len(c.clock) < 16 || len(c.entries)*2 > len(c.clock) {
		return
	}
	packed := c.clock[:0]
	hand := 0
	for i, e := range c.clock {
		if e == nil {
			continue
		}
		if i < c.hand {
			hand++
		}
		packed = append(packed, e)
	}
	c.clock = packed
	c.hand = hand
}
