package cellcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ristretto/internal/telemetry"
)

func newCache(t *testing.T) (*Cache, *telemetry.Registry) {
	t.Helper()
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	c, err := Open(filepath.Join(t.TempDir(), "cells"), r)
	if err != nil {
		t.Fatal(err)
	}
	return c, r
}

const fpA = "aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899"

// TestHitReturnsIdenticalBytes is the core cache-correctness property: a
// hit must return exactly the bytes that were computed, including payloads
// with embedded newlines and binary-ish content (the entry framing must
// not corrupt them).
func TestHitReturnsIdenticalBytes(t *testing.T) {
	c, r := newCache(t)
	payload := []byte("line1\nline2\n\x00\xff binary tail\n")
	if err := c.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(fpA)
	if !ok {
		t.Fatal("fresh entry missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("hit bytes differ:\n got %q\nwant %q", got, payload)
	}
	// And through the singleflight path: the hit must not run compute.
	v, hit, err := c.Do(fpA, func() ([]byte, error) {
		t.Fatal("compute ran despite a cached entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(v, payload) {
		t.Fatalf("Do hit = (%q, %v, %v)", v, hit, err)
	}
	if snap := r.Snapshot(); snap.Counters["fleet.cache.hits"] < 2 {
		t.Fatalf("hit counter = %d, want >= 2", snap.Counters["fleet.cache.hits"])
	}
}

// TestCorruptEntryRecomputedNotServed flips a payload byte on disk: the
// CRC must reject the entry, Get must miss (and delete the bad file), and
// the next Do must recompute and repair the cache.
func TestCorruptEntryRecomputedNotServed(t *testing.T) {
	c, r := newCache(t)
	payload := []byte("pristine payload bytes")
	if err := c.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	p := c.path(fpA)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if v, ok := c.Get(fpA); ok {
		t.Fatalf("corrupt entry served: %q", v)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry not deleted")
	}
	var computed atomic.Int64
	v, hit, err := c.Do(fpA, func() ([]byte, error) {
		computed.Add(1)
		return payload, nil
	})
	if err != nil || hit || !bytes.Equal(v, payload) || computed.Load() != 1 {
		t.Fatalf("recompute path = (%q, hit=%v, err=%v, computed=%d)", v, hit, err, computed.Load())
	}
	if got, ok := c.Get(fpA); !ok || !bytes.Equal(got, payload) {
		t.Fatal("cache not repaired after recompute")
	}
	if snap := r.Snapshot(); snap.Counters["fleet.cache.corrupt"] != 1 {
		t.Fatalf("corrupt counter = %d, want 1", snap.Counters["fleet.cache.corrupt"])
	}
}

// TestCorruptHeaderRejected covers the other framing failures: truncated
// header, wrong or stale schema, missing newline, missing digest.
func TestCorruptHeaderRejected(t *testing.T) {
	c, _ := newCache(t)
	for name, data := range map[string][]byte{
		"empty":          {},
		"no-newline":     []byte("ristretto.cell-cache/v2 00000000"),
		"wrong-schema":   []byte("ristretto.other/v9 00000000 digest\npayload"),
		"stale-v1":       []byte("ristretto.cell-cache/v1 00000000\npayload"),
		"bad-crc-hex":    []byte("ristretto.cell-cache/v2 zzzzzzzz digest\npayload"),
		"missing-digest": []byte("ristretto.cell-cache/v2 00000000\npayload"),
	} {
		p := c.path(fpA)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(fpA); ok {
			t.Errorf("%s: invalid entry served", name)
		}
	}
}

// TestDigestMismatchDeletedAndRecomputed is the end-to-end integrity
// property the CRC alone cannot give: an entry whose bytes are perfectly
// intact (schema, CRC and digest all self-consistent) but which belongs to
// a DIFFERENT fingerprint — a renamed file, or a confused writer — must
// never be served under this address. The digest binds payload to
// fingerprint, so the copied entry is deleted as corrupt and the next Do
// recomputes.
func TestDigestMismatchDeletedAndRecomputed(t *testing.T) {
	c, r := newCache(t)
	const fpB = "bbbbccddeeff00112233445566778899aabbccddeeff00112233445566778899"
	payload := []byte("payload computed for cell A")
	if err := c.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	// Replay A's (internally consistent) entry under B's address.
	data, err := os.ReadFile(c.path(fpA))
	if err != nil {
		t.Fatal(err)
	}
	pB := c.path(fpB)
	os.MkdirAll(filepath.Dir(pB), 0o755)
	if err := os.WriteFile(pB, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if v, ok := c.Get(fpB); ok {
		t.Fatalf("cross-fingerprint entry served: %q", v)
	}
	if _, err := os.Stat(pB); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("digest-mismatched entry not deleted")
	}
	want := []byte("payload computed for cell B")
	v, hit, err := c.Do(fpB, func() ([]byte, error) { return want, nil })
	if err != nil || hit || !bytes.Equal(v, want) {
		t.Fatalf("recompute after digest mismatch = (%q, hit=%v, err=%v)", v, hit, err)
	}
	// The original entry is untouched and still serves A.
	if v, ok := c.Get(fpA); !ok || !bytes.Equal(v, payload) {
		t.Fatalf("original entry damaged: (%q, %v)", v, ok)
	}
	if snap := r.Snapshot(); snap.Counters["fleet.cache.corrupt"] != 1 {
		t.Fatalf("corrupt counter = %d, want 1", snap.Counters["fleet.cache.corrupt"])
	}
}

// TestConcurrentSameCellSingleflight mirrors the serving memo cache's
// contract: N concurrent requests for one fingerprint run exactly one
// computation, and every caller gets the identical bytes.
func TestConcurrentSameCellSingleflight(t *testing.T) {
	c, r := newCache(t)
	const callers = 16
	var computed atomic.Int64
	gate := make(chan struct{})
	payload := []byte("expensive result")

	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(fpA, func() ([]byte, error) {
				computed.Add(1)
				<-gate // hold the flight open so everyone piles in
				return payload, nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	// Let the leader enter compute and the rest join the flight, then open
	// the gate. (Sleep-free would need hooks; 10ms of pile-up is plenty and
	// the assertion — computed == 1 — is unaffected by scheduling.)
	for computed.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || !bytes.Equal(results[i], payload) {
			t.Fatalf("caller %d got (%q, %v)", i, results[i], errs[i])
		}
	}
	if snap := r.Snapshot(); snap.Counters["fleet.cache.inflight_dedup"] == 0 {
		t.Error("no inflight dedups recorded; the flight never shared")
	}
}

// TestErrorsNeverCached: a failed compute reaches every waiter but leaves
// no entry, so the next request recomputes (and can succeed).
func TestErrorsNeverCached(t *testing.T) {
	c, _ := newCache(t)
	boom := errors.New("compute failed")
	if _, _, err := c.Do(fpA, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get(fpA); ok {
		t.Fatal("failed compute left a cache entry")
	}
	v, hit, err := c.Do(fpA, func() ([]byte, error) { return []byte("ok now"), nil })
	if err != nil || hit || string(v) != "ok now" {
		t.Fatalf("retry after failure = (%q, %v, %v)", v, hit, err)
	}
}

// TestDistinctFingerprintsIndependent: entries do not interfere, and Len
// counts them.
func TestDistinctFingerprintsIndependent(t *testing.T) {
	c, _ := newCache(t)
	for i := 0; i < 5; i++ {
		fp := fmt.Sprintf("%064x", i+1)
		if err := c.Put(fp, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.Len(); err != nil || n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		fp := fmt.Sprintf("%064x", i+1)
		v, ok := c.Get(fp)
		if !ok || string(v) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("entry %d = (%q, %v)", i, v, ok)
		}
	}
}

// TestOpenValidation: an empty directory is rejected, a nested missing one
// is created.
func TestOpenValidation(t *testing.T) {
	if _, err := Open("", nil); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := filepath.Join(t.TempDir(), "a", "b", "cells")
	c, err := Open(dir, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != dir {
		t.Fatalf("Dir = %q", c.Dir())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("cache root not created")
	}
}
