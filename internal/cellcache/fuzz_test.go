package cellcache

import (
	"bytes"
	"testing"
)

// FuzzCellDigestEnvelope fuzzes the cache entry framing (the digest
// envelope) with arbitrary fingerprints, payloads and on-disk mutations.
// Properties:
//
//  1. round trip: decodeEntry(fp, encodeEntry(fp, payload)) returns the
//     payload byte-for-byte;
//  2. address binding: a well-formed entry never decodes under a different
//     fingerprint (the digest binds payload to address);
//  3. tamper evidence: any single-byte mutation of the entry either still
//     decodes to exactly the original payload (a mutation in a redundant
//     header byte cannot smuggle different bytes through) or is rejected —
//     and arbitrary junk never panics the decoder.
func FuzzCellDigestEnvelope(f *testing.F) {
	f.Add("aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899",
		[]byte(`[{"id":"Fig. 7","rows":[["1","2"]]}]`), 7, byte(0x40))
	f.Add("0000000000000000000000000000000000000000000000000000000000000000",
		[]byte("line1\nline2\n\x00\xff"), 0, byte(0x01))
	f.Add("ff", []byte{}, 3, byte(0x80))
	f.Add("not-even-hex", []byte("ristretto.cell-cache/v2 00000000 x\n"), 12, byte(0xff))
	f.Fuzz(func(t *testing.T, fp string, payload []byte, pos int, flip byte) {
		entry := encodeEntry(fp, payload)
		got, ok := decodeEntry(fp, entry)
		if !ok {
			t.Fatalf("pristine entry rejected (fp=%q)", fp)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: got %q want %q", got, payload)
		}
		// Address binding: the same bytes under a different fingerprint
		// must not verify (unless the two fingerprints are equal).
		other := fp + "x"
		if _, ok := decodeEntry(other, entry); ok {
			t.Fatalf("entry for fp %q decoded under %q", fp, other)
		}
		// Tamper evidence: flip one byte anywhere in the entry.
		if len(entry) > 0 && flip != 0 {
			mut := append([]byte(nil), entry...)
			i := pos
			if i < 0 {
				i = -i
			}
			i %= len(mut)
			mut[i] ^= flip
			if v, ok := decodeEntry(fp, mut); ok && !bytes.Equal(v, payload) {
				t.Fatalf("mutation at %d served altered payload %q (want %q)", i, v, payload)
			}
		}
		// Junk never panics and never yields false positives against a
		// pristine payload expectation.
		decodeEntry(fp, payload)
	})
}
