// Package energy provides the event counters, per-event energy costs, and
// area models shared by all simulated accelerators.
//
// Like the paper we care about *relative* energy and *area-normalized*
// performance, so what matters is a single consistent cost table, not
// absolute silicon numbers. Compute-unit costs are anchored to published
// 28 nm figures (an 8-bit MAC ≈ 0.25 pJ, scaling quadratically with operand
// width); SRAM access energy follows a CACTI-like sqrt-capacity model; DRAM
// uses a flat per-byte cost (TETRIS methodology in the paper). Areas are
// anchored to the paper's Table VI breakdown of the 32-tile/32-multiplier
// Ristretto core.
package energy

import "math"

// Counters tallies the energy-bearing events of one simulated inference.
type Counters struct {
	AtomMuls    int64 // N-bit atom multiplications (Ristretto)
	MAC8        int64 // 8-bit scalar MACs (SparTen)
	Fusion2b    int64 // 2-bit sub-multiplications inside fusion units (Bit Fusion, SparTen-mp)
	TermOps     int64 // bit-serial exponent additions (Laconic)
	InnerJoin   int64 // inner-join matching operations (SparTen, SparTen-mp)
	AtomizerOps int64 // leading-one-detection scans (Ristretto Atomizer)

	InputBufBytes  int64 // input/activation buffer accesses
	WeightBufBytes int64 // weight buffer accesses
	OutputBufBytes int64 // output buffer accesses
	AccBufBytes    int64 // accumulate-buffer register-file accesses
	DRAMBytes      int64 // off-chip traffic
}

// Add accumulates another counter set.
func (c *Counters) Add(o Counters) {
	c.AtomMuls += o.AtomMuls
	c.MAC8 += o.MAC8
	c.Fusion2b += o.Fusion2b
	c.TermOps += o.TermOps
	c.InnerJoin += o.InnerJoin
	c.AtomizerOps += o.AtomizerOps
	c.InputBufBytes += o.InputBufBytes
	c.WeightBufBytes += o.WeightBufBytes
	c.OutputBufBytes += o.OutputBufBytes
	c.AccBufBytes += o.AccBufBytes
	c.DRAMBytes += o.DRAMBytes
}

// Model maps events to picojoules.
type Model struct {
	AtomMulPJ   float64 // per atom multiply+shift+accumulate
	MAC8PJ      float64 // per 8-bit MAC
	Fusion2bPJ  float64 // per 2-bit sub-product in a fusion unit
	TermOpPJ    float64 // per bit-serial term operation
	InnerJoinPJ float64 // per inner-join extraction
	AtomizerPJ  float64 // per Atomizer scan cycle
	SRAMPJPerB  float64 // per on-chip SRAM byte (input/weight/output buffers)
	AccRFPJPerB float64 // per accumulate-buffer register-file byte
	DRAMPJPerB  float64 // per off-chip byte
}

// Default returns the cost table used throughout the evaluation. AtomMulPJ
// is for 2-bit atoms; use ModelForGranularity for 1/3-bit variants.
func Default() Model {
	return Model{
		AtomMulPJ:   0.045,
		MAC8PJ:      0.25,
		Fusion2bPJ:  0.016, // 16 of these ≈ one 8-bit multiply
		TermOpPJ:    0.05,  // exponent add + decode-based accumulate
		InnerJoinPJ: 0.40,  // priority encode + prefix sum over a bitmask
		AtomizerPJ:  0.01,  // leading-one detection on an 8-bit word
		// On-chip buffers are banked per tile/CU (~8 KiB banks); streaming
		// reads hit one bank.
		SRAMPJPerB:  SRAMAccessPJPerByte(8 << 10),
		AccRFPJPerB: 0.015, // small register files, ~0.06 pJ per 32-bit write
		DRAMPJPerB:  64,
	}
}

// ModelForGranularity adapts the atom-multiply cost to the atom bit-width,
// following the paper's Figure 19a: the 1-bit variant pays ~3.5× the power
// of the 2-bit design at matched BitOps (wider shifters, more accumulators);
// the 3-bit variant is the cheapest per unit but wastes work on low-precision
// models.
func ModelForGranularity(gran int) Model {
	m := Default()
	switch gran {
	case 1:
		m.AtomMulPJ = 0.045 * 3.51 / 4.0 // per-multiplier: 4× as many units, 3.51× tile power
	case 2:
	case 3:
		m.AtomMulPJ = 0.045 * 1.75 // larger multiplier, fewer of them
	default:
		panic("energy: unsupported granularity")
	}
	return m
}

// SRAMAccessPJPerByte is the CACTI-like access energy of an SRAM of the
// given capacity: roughly proportional to sqrt(capacity) for the bitline/
// wordline energy plus a fixed decode floor.
func SRAMAccessPJPerByte(capacityBytes int) float64 {
	kb := float64(capacityBytes) / 1024
	return 0.2 + 0.11*math.Sqrt(kb)
}

// TotalPJ prices a counter set under the model.
func (m Model) TotalPJ(c Counters) float64 {
	return float64(c.AtomMuls)*m.AtomMulPJ +
		float64(c.MAC8)*m.MAC8PJ +
		float64(c.Fusion2b)*m.Fusion2bPJ +
		float64(c.TermOps)*m.TermOpPJ +
		float64(c.InnerJoin)*m.InnerJoinPJ +
		float64(c.AtomizerOps)*m.AtomizerPJ +
		float64(c.InputBufBytes+c.WeightBufBytes+c.OutputBufBytes)*m.SRAMPJPerB +
		float64(c.AccBufBytes)*m.AccRFPJPerB +
		float64(c.DRAMBytes)*m.DRAMPJPerB
}

// Breakdown prices a counter set by category (compute, on-chip, off-chip).
type Breakdown struct {
	ComputePJ float64
	OnChipPJ  float64
	OffChipPJ float64
}

// Split returns the energy breakdown of a counter set.
func (m Model) Split(c Counters) Breakdown {
	return Breakdown{
		ComputePJ: float64(c.AtomMuls)*m.AtomMulPJ + float64(c.MAC8)*m.MAC8PJ +
			float64(c.Fusion2b)*m.Fusion2bPJ + float64(c.TermOps)*m.TermOpPJ +
			float64(c.InnerJoin)*m.InnerJoinPJ + float64(c.AtomizerOps)*m.AtomizerPJ,
		OnChipPJ: float64(c.InputBufBytes+c.WeightBufBytes+c.OutputBufBytes)*m.SRAMPJPerB +
			float64(c.AccBufBytes)*m.AccRFPJPerB,
		OffChipPJ: float64(c.DRAMBytes) * m.DRAMPJPerB,
	}
}

// Total returns the sum of the breakdown.
func (b Breakdown) Total() float64 { return b.ComputePJ + b.OnChipPJ + b.OffChipPJ }

// WeightPassAmplification returns how many times a layer's activations must
// be re-fetched from DRAM when its weight footprint exceeds the on-chip
// weight buffer: the weights are processed in ⌈bytes/capacity⌉ partitions
// and the activation stream replays once per partition. capBytes of 0 means
// the default 256 KiB buffer (sized to Table VI's weight buffer). Applied
// uniformly to every modeled accelerator so comparisons stay fair — the
// advantage of a compressed format is fewer partitions, not exemption.
func WeightPassAmplification(weightBytes, capBytes int64) int64 {
	if capBytes <= 0 {
		capBytes = 256 << 10
	}
	p := (weightBytes + capBytes - 1) / capBytes
	if p < 1 {
		p = 1
	}
	return p
}
