package energy

// Area models, anchored to the paper's Table VI (28 nm, 500 MHz): a single
// Ristretto core with 32 compute tiles of 32 two-bit multipliers occupies
// 1.296 mm². Component areas scale linearly with unit counts from those
// anchors; granularity variants follow Figure 19a.

// AreaBreakdown is the paper's Table VI, in mm².
type AreaBreakdown struct {
	Atomizer   float64
	Atomputer  float64
	Atomulator float64
	AccBuffer  float64
	InputBuf   float64
	WeightBuf  float64
	OutputBuf  float64
	PostProc   float64
	Others     float64
}

// Total sums the breakdown.
func (a AreaBreakdown) Total() float64 {
	return a.Atomizer + a.Atomputer + a.Atomulator + a.AccBuffer +
		a.InputBuf + a.WeightBuf + a.OutputBuf + a.PostProc + a.Others
}

// TableVI returns the paper's reference breakdown for 32 tiles × 32
// two-bit multipliers.
func TableVI() AreaBreakdown {
	return AreaBreakdown{
		Atomizer:   0.001,
		Atomputer:  0.070,
		Atomulator: 0.128,
		AccBuffer:  0.496,
		InputBuf:   0.118,
		WeightBuf:  0.302,
		OutputBuf:  0.154,
		PostProc:   0.023,
		Others:     0.004,
	}
}

// GranularityFactors returns (area, power) of a compute tile relative to the
// 2-bit design at matched BitOps/cycle (Figure 19a): 1-bit pays 3.34×/3.51×
// for the wide shifters and extra accumulators; 3-bit is the smallest.
func GranularityFactors(gran int) (area, power float64) {
	switch gran {
	case 1:
		return 3.34, 3.51
	case 2:
		return 1, 1
	case 3:
		return 0.72, 0.75
	default:
		panic("energy: unsupported granularity")
	}
}

// RistrettoArea scales Table VI to a configuration with the given tile count,
// multipliers per tile, and atom granularity (compute area scales with
// tiles×multipliers relative to the 32×32 anchor; buffers scale with tiles).
func RistrettoArea(tiles, mults, gran int) AreaBreakdown {
	ref := TableVI()
	cu := float64(tiles*mults) / float64(32*32)
	tl := float64(tiles) / 32
	af, _ := GranularityFactors(gran)
	// At matched BitOps, a 1-bit design needs 4 multipliers per 2-bit one;
	// GranularityFactors already expresses tile-level area at matched
	// BitOps, so normalize the multiplier count to 2-bit equivalents.
	bitops := cu * float64(gran*gran) / 4
	return AreaBreakdown{
		Atomizer:   ref.Atomizer * tl,
		Atomputer:  ref.Atomputer * bitops * af,
		Atomulator: ref.Atomulator * bitops * af,
		AccBuffer:  ref.AccBuffer * bitops * af,
		InputBuf:   ref.InputBuf,
		WeightBuf:  ref.WeightBuf,
		OutputBuf:  ref.OutputBuf,
		PostProc:   ref.PostProc,
		Others:     ref.Others,
	}
}

// BitFusionArea estimates a Bit Fusion accelerator with the given number of
// fusion units (16 two-bit multipliers each) and the shared buffer set.
// A fusion unit's spatially-composable multiplier array is denser than
// Ristretto's shifter/accumulator-heavy atom chain, but it lacks the
// accumulate-buffer register files; per the same-buffer-capacity methodology
// the buffer areas match Ristretto's.
func BitFusionArea(units int) float64 {
	ref := TableVI()
	computePerUnit := 0.0058 // mm² per fusion unit (64 units ≈ 0.37 mm²)
	return float64(units)*computePerUnit + ref.InputBuf + ref.WeightBuf + ref.OutputBuf + ref.Others
}

// LaconicArea estimates a Laconic tile array: pes PEs of 16 bit-serial
// multipliers plus boundary booth encoders and the shared buffers.
func LaconicArea(pes int) float64 {
	ref := TableVI()
	computePerPE := 0.0148 // mm² per PE (48 PEs ≈ 0.71 mm², matching Ristretto's compute area per Section V-C)
	return float64(pes)*computePerPE + ref.InputBuf + ref.WeightBuf + ref.OutputBuf + ref.Others
}

// SparTenArea estimates a SparTen accelerator with the given CU count; the
// inner-join accounts for >60% of a CU (Section II-B2a). SparTen-mp CUs
// carry 16 inner-joins plus a fusion unit in place of the scalar MAC.
func SparTenArea(cus int, mp bool) float64 {
	ref := TableVI()
	innerJoin := 0.011 // mm²
	macAndRest := 0.006
	cu := innerJoin + macAndRest
	if mp {
		cu = 16*innerJoin + 0.0058 + 0.004
	}
	return float64(cus)*cu + ref.InputBuf + ref.WeightBuf + ref.OutputBuf + ref.Others
}
