package energy

import (
	"math"
	"testing"
)

func TestTableVITotal(t *testing.T) {
	// Paper Table VI: total 1.296 mm².
	if got := TableVI().Total(); math.Abs(got-1.296) > 1e-9 {
		t.Fatalf("Table VI total = %v, want 1.296", got)
	}
}

func TestRistrettoAreaAnchor(t *testing.T) {
	got := RistrettoArea(32, 32, 2)
	want := TableVI()
	if math.Abs(got.Total()-want.Total()) > 1e-9 {
		t.Fatalf("anchor config area %v != Table VI %v", got.Total(), want.Total())
	}
}

func TestRistrettoAreaScaling(t *testing.T) {
	half := RistrettoArea(32, 16, 2)
	full := RistrettoArea(32, 32, 2)
	if half.Atomputer >= full.Atomputer {
		t.Fatal("halving multipliers must shrink the Atomputer")
	}
	if half.InputBuf != full.InputBuf {
		t.Fatal("buffer area should not depend on multiplier count")
	}
}

func TestGranularityAreaOrdering(t *testing.T) {
	// Figure 19a: at matched BitOps (64×1b, 16×2b, 7×3b per tile), the 1-bit
	// variant is ~3.34× the 2-bit area, the 3-bit the smallest.
	a1 := RistrettoArea(32, 64, 1)
	a2 := RistrettoArea(32, 16, 2)
	a3 := RistrettoArea(32, 7, 3)
	c1 := a1.Atomputer + a1.Atomulator + a1.AccBuffer
	c2 := a2.Atomputer + a2.Atomulator + a2.AccBuffer
	c3 := a3.Atomputer + a3.Atomulator + a3.AccBuffer
	if !(c3 < c2 && c2 < c1) {
		t.Fatalf("compute area ordering wrong: 1b=%v 2b=%v 3b=%v", c1, c2, c3)
	}
	if r := c1 / c2; math.Abs(r-3.34) > 0.2 {
		t.Fatalf("1-bit/2-bit compute area ratio %v, want ≈3.34", r)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{AtomMuls: 1, DRAMBytes: 2, InputBufBytes: 3}
	a.Add(Counters{AtomMuls: 10, DRAMBytes: 20, AccBufBytes: 5})
	if a.AtomMuls != 11 || a.DRAMBytes != 22 || a.AccBufBytes != 5 || a.InputBufBytes != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestTotalMatchesSplit(t *testing.T) {
	m := Default()
	c := Counters{
		AtomMuls: 100, MAC8: 50, Fusion2b: 30, TermOps: 20, InnerJoin: 10,
		AtomizerOps: 5, InputBufBytes: 1000, WeightBufBytes: 500,
		OutputBufBytes: 200, AccBufBytes: 300, DRAMBytes: 50,
	}
	if math.Abs(m.TotalPJ(c)-m.Split(c).Total()) > 1e-9 {
		t.Fatal("TotalPJ disagrees with Split().Total()")
	}
	if m.Split(c).OffChipPJ != 50*m.DRAMPJPerB {
		t.Fatal("off-chip energy wrong")
	}
}

func TestSRAMEnergyGrowsWithCapacity(t *testing.T) {
	small := SRAMAccessPJPerByte(8 << 10)
	big := SRAMAccessPJPerByte(512 << 10)
	if small >= big {
		t.Fatal("SRAM energy must grow with capacity")
	}
	if small <= 0 {
		t.Fatal("SRAM energy must be positive")
	}
}

func TestDRAMDominatesSRAM(t *testing.T) {
	m := Default()
	if m.DRAMPJPerB < 10*m.SRAMPJPerB {
		t.Fatalf("DRAM (%v) should cost much more than SRAM (%v) per byte", m.DRAMPJPerB, m.SRAMPJPerB)
	}
}

func TestModelForGranularity(t *testing.T) {
	m1 := ModelForGranularity(1)
	m2 := ModelForGranularity(2)
	m3 := ModelForGranularity(3)
	// Per-BitOp cost: a 1-bit op covers 1 BitOp, a 2-bit op 4, a 3-bit op 9.
	perBit1 := m1.AtomMulPJ / 1
	perBit2 := m2.AtomMulPJ / 4
	perBit3 := m3.AtomMulPJ / 9
	if !(perBit3 < perBit2 && perBit2 < perBit1) {
		t.Fatalf("per-BitOp energy should fall with granularity: %v %v %v", perBit1, perBit2, perBit3)
	}
}

func TestBaselineAreas(t *testing.T) {
	if BitFusionArea(64) <= 0 || LaconicArea(48) <= 0 {
		t.Fatal("non-positive baseline area")
	}
	st := SparTenArea(32, false)
	mp := SparTenArea(32, true)
	if mp <= st {
		t.Fatal("SparTen-mp must be larger than SparTen (16 inner-joins)")
	}
	// Inner-join dominance: >60% of a plain CU.
	if 0.011/(0.011+0.006) < 0.60 {
		t.Fatal("inner-join share below the paper's 60%")
	}
}

func TestGranularityPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ModelForGranularity(4) },
		func() { GranularityFactors(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for unsupported granularity")
				}
			}()
			f()
		}()
	}
}

func TestWeightPassAmplification(t *testing.T) {
	if WeightPassAmplification(100, 0) != 1 {
		t.Fatal("small weights must not amplify")
	}
	if got := WeightPassAmplification(600<<10, 0); got != 3 {
		t.Fatalf("600KiB over 256KiB buffer = %d passes, want 3", got)
	}
	if WeightPassAmplification(10, 4) != 3 {
		t.Fatal("explicit capacity not honoured")
	}
}

func TestSRAMZeroCapacity(t *testing.T) {
	if SRAMAccessPJPerByte(0) != 0.2 {
		t.Fatalf("zero-capacity SRAM should cost just the decode floor, got %v", SRAMAccessPJPerByte(0))
	}
}
