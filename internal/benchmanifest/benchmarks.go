// Package benchmanifest defines the tracked micro-benchmark suite behind the
// repo's perf trajectory (ROADMAP item 1) and the committed BENCH_*.json
// manifests that pin it.
//
// The same registry backs two consumers: `go test -bench Manifest .` (the
// bench_test.go wrapper at the repo root) and `ristretto-bench
// -bench-manifest`, which runs every entry through testing.Benchmark, writes
// a ristretto.bench-manifest/v1 JSON document, and optionally compares it
// against a committed manifest with a regression tolerance (the CI gate).
// Benchmark names are stable identifiers: a manifest diff across PRs is the
// perf trajectory, so entries may be re-implemented (the hot path they
// measure is the contract) but not renamed or dropped casually.
package benchmanifest

import (
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/ristretto"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// Benchmark is one named entry of the tracked suite.
type Benchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// Registry returns the tracked micro-benchmark suite. Every entry reports
// allocations; the tile/core simulator entries are the ones the ~zero
// allocs/op acceptance gate watches.
func Registry() []Benchmark {
	return []Benchmark{
		{Name: "tile/intersect_16x16", Fn: benchTileIntersect},
		{Name: "tile/intersect_contended", Fn: benchTileContended},
		{Name: "core/sim_layer_8x8x4", Fn: benchCoreSimLayer},
		{Name: "core/act_stream_16x16", Fn: benchActStream},
		{Name: "core/weight_stream_16k", Fn: benchWeightStream},
		{Name: "atom/decompose_sweep_8b", Fn: benchAtomDecompose},
	}
}

// benchTileIntersect is the canonical tile-simulator hot path: a 16×16 tile
// against 16 3×3 kernels at realistic density, one intersection per
// iteration, output buffer and scratch reused across iterations.
func benchTileIntersect(b *testing.B) {
	g := workload.NewGen(2)
	f := g.FeatureMapExact(1, 16, 16, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(16, 1, 3, 3, 8, 2, 0.5, 0.7)
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 16, H: 16}), 8, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	cfg := ristretto.TileConfig{Mults: 32, Gran: 2, FIFODepth: 4}
	out := tensor.NewOutputMap(16, 18, 18)
	scratch := ristretto.NewTileScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ristretto.SimulateIntersectionScratch(acts, ws, 3, 3, 16, 16, out, cfg, scratch)
	}
}

// benchTileContended forces crossbar back-pressure: a single output channel
// funnels every delivery into one accumulate bank behind shallow FIFOs, so
// the stall/conflict paths dominate.
func benchTileContended(b *testing.B) {
	g := workload.NewGen(9)
	f := g.FeatureMapExact(1, 12, 12, 2, 2, 1.0, 1.0)
	w := g.KernelsExact(1, 1, 3, 3, 8, 2, 1.0, 1.0)
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 12, H: 12}), 2, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	cfg := ristretto.TileConfig{Mults: 8, Gran: 2, FIFODepth: 2}
	out := tensor.NewOutputMap(1, 14, 14)
	scratch := ristretto.NewTileScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ristretto.SimulateIntersectionScratch(acts, ws, 3, 3, 12, 12, out, cfg, scratch)
	}
}

// benchCoreSimLayer runs the whole lockstep core simulator on a small layer,
// including stream building and balancing — the end-to-end cycle-sim cost
// the daemon's /v1/sim pays per request.
func benchCoreSimLayer(b *testing.B) {
	g := workload.NewGen(52)
	f := g.FeatureMapExact(4, 8, 8, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(4, 4, 3, 3, 8, 2, 0.5, 0.7)
	cfg := ristretto.CoreSimConfig{Tiles: 4, Tile: ristretto.TileConfig{Mults: 8, Gran: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ristretto.SimulateCore(f, w, 1, 1, cfg)
	}
}

// benchActStream measures building one tile's compressed activation atom
// stream from the feature map — now the fused bitmap-word zero-skipping
// builder (the hot path measured is the contract, not the call).
func benchActStream(b *testing.B) {
	g := workload.NewGen(4)
	f := g.FeatureMapExact(1, 16, 16, 8, 2, 0.5, 0.7)
	tl := tensor.Tile{W: 16, H: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acts := core.StreamTileActs(f, 0, tl, 2)
		if len(acts) == 0 {
			b.Fatal("empty stream")
		}
	}
}

// benchWeightStream measures building one input channel's shuffled static
// weight stream (flatten + atomize + slice-major channel-first shuffle).
func benchWeightStream(b *testing.B) {
	g := workload.NewGen(5)
	w := g.KernelsExact(64, 1, 3, 3, 8, 2, 0.6, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
		if len(ws) == 0 {
			b.Fatal("empty stream")
		}
	}
}

// benchAtomDecompose sweeps every 8-bit magnitude through the atomizer
// decomposition — the innermost stream-building kernel.
func benchAtomDecompose(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int32(0); v < 256; v++ {
			atom.Decompose(v, 8, 2)
		}
	}
}
