package benchmanifest

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"

	"ristretto/internal/safeio"
)

// Schema identifies the manifest format.
const Schema = "ristretto.bench-manifest/v1"

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Manifest is the committed benchmark document (BENCH_*.json): the measured
// suite, the Bench.All() wall clock at the recorded scale, and optionally the
// numbers of the implementation the measuring PR replaced (Baseline), with
// the geomean ns/op speedup of the matched entries.
type Manifest struct {
	Schema         string  `json:"schema"`
	Tool           string  `json:"tool"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	Entries        []Entry `json:"entries"`
	BenchAllScale  int     `json:"bench_all_scale,omitempty"`
	BenchAllWallMs float64 `json:"bench_all_wall_ms,omitempty"`
	Baseline       []Entry `json:"baseline,omitempty"`
	BaselineNote   string  `json:"baseline_note,omitempty"`
	GeomeanSpeedup float64 `json:"geomean_speedup_vs_baseline,omitempty"`
	GeomeanNote    string  `json:"geomean_note,omitempty"`
}

// New returns an empty manifest stamped with the build environment.
func New(tool string) *Manifest {
	return &Manifest{
		Schema:    Schema,
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// Run executes every registry benchmark through testing.Benchmark and
// records the results. progress, when non-nil, receives a line per entry.
func (m *Manifest) Run(progress func(string)) {
	for _, bm := range Registry() {
		r := testing.Benchmark(bm.Fn)
		e := Entry{
			Name:        bm.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		m.Entries = append(m.Entries, e)
		if progress != nil {
			progress(fmt.Sprintf("%-28s %12.1f ns/op %8d B/op %6d allocs/op (%d iters)",
				e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations))
		}
	}
}

// ComputeSpeedup fills GeomeanSpeedup from the Baseline entries: the
// geometric mean of baseline/current ns/op over the benchmarks present in
// both lists.
func (m *Manifest) ComputeSpeedup() {
	base := map[string]Entry{}
	for _, e := range m.Baseline {
		base[e.Name] = e
	}
	var logSum float64
	n := 0
	for _, e := range m.Entries {
		b, ok := base[e.Name]
		if !ok || e.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		logSum += math.Log(b.NsPerOp / e.NsPerOp)
		n++
	}
	if n > 0 {
		m.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}
}

// Write atomically writes the manifest as indented JSON.
func (m *Manifest) Write(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a manifest and validates its schema.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("benchmanifest: %s: %w", path, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("benchmanifest: %s: schema %q, want %q", path, m.Schema, Schema)
	}
	return &m, nil
}

// Regression is one benchmark that got slower (or more allocation-hungry)
// than the committed manifest allows.
type Regression struct {
	Name    string
	Metric  string // "ns/op" or "allocs/op"
	Old     float64
	New     float64
	Ratio   float64
	Allowed float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (%.2fx, allowed %.2fx)",
		r.Name, r.Metric, r.Old, r.New, r.Ratio, r.Allowed)
}

// Compare checks fresh against the committed manifest. A benchmark regresses
// when its ns/op exceeds tolerance× the committed value, or when its
// allocs/op exceeds the committed value by more than allocSlack (absolute).
// Benchmarks missing from either side are reported as regressions too —
// the tracked suite must not silently shrink.
func Compare(committed, fresh *Manifest, tolerance float64, allocSlack int64) []Regression {
	var regs []Regression
	freshBy := map[string]Entry{}
	for _, e := range fresh.Entries {
		freshBy[e.Name] = e
	}
	for _, old := range committed.Entries {
		cur, ok := freshBy[old.Name]
		if !ok {
			regs = append(regs, Regression{Name: old.Name, Metric: "missing", Allowed: tolerance})
			continue
		}
		if old.NsPerOp > 0 && cur.NsPerOp > tolerance*old.NsPerOp {
			regs = append(regs, Regression{
				Name: old.Name, Metric: "ns/op",
				Old: old.NsPerOp, New: cur.NsPerOp,
				Ratio: cur.NsPerOp / old.NsPerOp, Allowed: tolerance,
			})
		}
		if cur.AllocsPerOp > old.AllocsPerOp+allocSlack {
			regs = append(regs, Regression{
				Name: old.Name, Metric: "allocs/op",
				Old: float64(old.AllocsPerOp), New: float64(cur.AllocsPerOp),
				Ratio: ratioOrInf(cur.AllocsPerOp, old.AllocsPerOp), Allowed: tolerance,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

func ratioOrInf(cur, old int64) float64 {
	if old == 0 {
		return math.Inf(1)
	}
	return float64(cur) / float64(old)
}
