package benchmanifest

import (
	"math"
	"path/filepath"
	"testing"
)

func manifestPair() (*Manifest, *Manifest) {
	committed := New("test")
	committed.Entries = []Entry{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 2000, AllocsPerOp: 10},
	}
	fresh := New("test")
	fresh.Entries = []Entry{
		{Name: "a", NsPerOp: 1100, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 2100, AllocsPerOp: 12},
	}
	return committed, fresh
}

func TestCompareWithinTolerance(t *testing.T) {
	committed, fresh := manifestPair()
	if regs := Compare(committed, fresh, 1.25, 16); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	committed, fresh := manifestPair()
	fresh.Entries[0].NsPerOp = 1300 // 1.3x > 1.25x
	regs := Compare(committed, fresh, 1.25, 16)
	if len(regs) != 1 || regs[0].Name != "a" || regs[0].Metric != "ns/op" {
		t.Fatalf("want one ns/op regression on a, got %v", regs)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	committed, fresh := manifestPair()
	fresh.Entries[1].AllocsPerOp = 100 // 10 -> 100 exceeds slack 16
	regs := Compare(committed, fresh, 1.25, 16)
	if len(regs) != 1 || regs[0].Name != "b" || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression on b, got %v", regs)
	}
}

func TestCompareFlagsMissingEntry(t *testing.T) {
	committed, fresh := manifestPair()
	fresh.Entries = fresh.Entries[:1]
	regs := Compare(committed, fresh, 1.25, 16)
	if len(regs) != 1 || regs[0].Name != "b" || regs[0].Metric != "missing" {
		t.Fatalf("want b reported missing, got %v", regs)
	}
}

func TestComputeSpeedupGeomean(t *testing.T) {
	m := New("test")
	m.Entries = []Entry{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "unmatched", NsPerOp: 1},
	}
	m.Baseline = []Entry{
		{Name: "a", NsPerOp: 200}, // 2x
		{Name: "b", NsPerOp: 800}, // 8x
	}
	m.ComputeSpeedup()
	if want := 4.0; math.Abs(m.GeomeanSpeedup-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", m.GeomeanSpeedup, want)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	m := New("test")
	m.Entries = []Entry{{Name: "a", NsPerOp: 123.5, AllocsPerOp: 1, BytesPerOp: 2, Iterations: 7}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 1 || got.Entries[0] != m.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	m := New("test")
	m.Schema = "something-else/v9"
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestRegistryNamesStable pins the tracked suite: names are stable
// identifiers (the perf trajectory diffs across manifests), so a rename or
// drop must be a conscious decision that updates this list too.
func TestRegistryNamesStable(t *testing.T) {
	want := []string{
		"tile/intersect_16x16",
		"tile/intersect_contended",
		"core/sim_layer_8x8x4",
		"core/act_stream_16x16",
		"core/weight_stream_16k",
		"atom/decompose_sweep_8b",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, bm := range reg {
		if bm.Name != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, bm.Name, want[i])
		}
		if bm.Fn == nil {
			t.Fatalf("registry[%d] %q has nil Fn", i, bm.Name)
		}
	}
}
