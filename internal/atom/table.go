package atom

// Precomputed decomposition tables. Stream building atomizes every non-zero
// value of every feature map and kernel, so the per-value digit extraction is
// one of the innermost loops of the whole simulator. Magnitudes are at most
// 8-bit for every paper configuration (16-bit operands go through the
// spatial/temporal extensions, which decompose into 8-bit halves or hit the
// generic fallback below), so one 256-entry table per granularity covers the
// hot path: nzDigits[n-1][mag] holds the non-zero atoms of mag with Sign
// unset and Last already set on the final atom.
var nzDigits [4][256][]Atom

// nzCount[n-1][mag] = len(nzDigits[n-1][mag]), kept separate so pure counting
// passes avoid touching the slice headers.
var nzCount [4][256]uint8

func init() {
	for n := Granularity(1); n <= 4; n++ {
		mask := uint32(1)<<uint(n) - 1
		for mag := uint32(0); mag < 256; mag++ {
			var out []Atom
			for i := 0; i < n.Count(8); i++ {
				if d := uint8((mag >> (uint(i) * uint(n))) & mask); d != 0 {
					out = append(out, Atom{Mag: d, Shift: uint8(i * int(n))})
				}
			}
			if len(out) > 0 {
				out[len(out)-1].Last = true
			}
			nzDigits[n-1][mag] = out
			nzCount[n-1][mag] = uint8(len(out))
		}
	}
}

// Digits returns the non-zero atoms of the unsigned magnitude mag (< 256) at
// granularity n, least-significant first, with Last set on the final atom
// and Sign unset — straight from the precomputed table. The returned slice
// is shared: callers must treat it as read-only and copy atoms out.
func Digits(mag uint32, n Granularity) []Atom {
	n.Validate()
	return nzDigits[n-1][mag]
}

// DigitCount returns the number of non-zero atoms of mag at granularity n
// without materializing them.
func DigitCount(mag uint32, n Granularity) int {
	n.Validate()
	if mag < 256 {
		return int(nzCount[n-1][mag])
	}
	mask := uint32(1)<<uint(n) - 1
	cnt := 0
	for m := mag; m != 0; m >>= uint(n) {
		if m&mask != 0 {
			cnt++
		}
	}
	return cnt
}

// AppendDecompose appends the non-zero atoms of v to dst and returns the
// extended slice — the allocation-free counterpart of Decompose for callers
// that own a reusable buffer. Panics on the same out-of-range inputs as
// Decompose.
func AppendDecompose(dst []Atom, v int32, bits int, n Granularity) []Atom {
	n.Validate()
	sign, mag := signMag(v, bits)
	base := len(dst)
	if mag < 256 {
		dst = append(dst, nzDigits[n-1][mag]...)
	} else {
		dst = appendDigitsGeneric(dst, mag, bits, n)
	}
	if sign {
		for i := base; i < len(dst); i++ {
			dst[i].Sign = true
		}
	}
	return dst
}

// appendDigitsGeneric is the >8-bit fallback digit extractor (Sign unset,
// Last set on the final appended atom).
func appendDigitsGeneric(dst []Atom, mag uint32, bits int, n Granularity) []Atom {
	mask := uint32(1)<<uint(n) - 1
	base := len(dst)
	for i := 0; i < n.Count(bits); i++ {
		if d := uint8((mag >> (uint(i) * uint(n))) & mask); d != 0 {
			dst = append(dst, Atom{Mag: d, Shift: uint8(i * int(n))})
		}
	}
	if len(dst) > base {
		dst[len(dst)-1].Last = true
	}
	return dst
}

// signMag splits v into sign and magnitude, enforcing the range contract
// shared by every decomposition entry point.
func signMag(v int32, bits int) (bool, uint32) {
	sign := v < 0
	mag := uint32(v)
	if sign {
		mag = uint32(-v)
	}
	if bits <= 0 || mag >= 1<<uint(bits) {
		panicRange(v, bits)
	}
	return sign, mag
}
