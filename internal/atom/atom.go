// Package atom implements the bit-level decomposition at the heart of
// condensed streaming computation (paper Section III-A).
//
// An m-bit integer is viewed as a stream of ceil(m/N) N-bit atoms; the value
// equals the sum of atom<<shift terms. Zero atoms carry no information and are
// squeezed out, exploiting bit-level sparsity. Signed weights are decomposed
// in sign-magnitude form: the magnitude is atomized and each atom carries a
// sign flag that negates its partial products.
package atom

import "fmt"

// Atom is one non-zero N-bit digit of a value.
type Atom struct {
	Mag   uint8 // digit value, 1 <= Mag < 1<<N (0 allowed only in dense mode)
	Shift uint8 // bit offset of the digit within the value (multiple of N)
	Sign  bool  // true if the owning value is negative (weights only)
	Last  bool  // true for the final (most-significant surviving) atom of a value
}

// Term returns the signed contribution of the atom: ±Mag<<Shift.
func (a Atom) Term() int32 {
	t := int32(a.Mag) << a.Shift
	if a.Sign {
		return -t
	}
	return t
}

func (a Atom) String() string {
	s := "+"
	if a.Sign {
		s = "-"
	}
	last := ""
	if a.Last {
		last = ",last"
	}
	return fmt.Sprintf("%s%d<<%d%s", s, a.Mag, a.Shift, last)
}

// Granularity describes the atom bit-width N. The paper evaluates N∈{1,2,3};
// the default Ristretto configuration uses 2-bit atoms.
type Granularity int

// Validate panics unless the granularity is one the paper evaluates.
func (n Granularity) Validate() {
	if n < 1 || n > 4 {
		panic(fmt.Sprintf("atom: unsupported granularity %d", int(n)))
	}
}

// Count returns the number of atoms an m-bit value decomposes into: ceil(m/N).
func (n Granularity) Count(bits int) int {
	return (bits + int(n) - 1) / int(n)
}

// ShiftRange returns the possible shift offsets of atoms of a value with the
// given bit-width, reproducing Table IV (e.g. 8-bit activations with 2-bit
// atoms shift by {0,2,4,6}).
func (n Granularity) ShiftRange(bits int) []int {
	cnt := n.Count(bits)
	r := make([]int, cnt)
	for i := range r {
		r[i] = i * int(n)
	}
	return r
}

// Decompose splits value v (given as a signed integer with |v| < 1<<bits for
// unsigned activations, or |v| < 1<<(bits-1) for signed weights — the caller
// guarantees range) into its non-zero atoms, least-significant first. A zero
// value yields no atoms. The final surviving atom carries Last=true.
func Decompose(v int32, bits int, n Granularity) []Atom {
	n.Validate()
	sign, mag := signMag(v, bits)
	if mag >= 256 {
		return decompose(v, bits, n, false)
	}
	tab := nzDigits[n-1][mag]
	if len(tab) == 0 {
		return nil
	}
	out := make([]Atom, len(tab))
	copy(out, tab)
	if sign {
		for i := range out {
			out[i].Sign = true
		}
	}
	return out
}

// DecomposeDense is like Decompose but keeps zero atoms, modelling the
// non-sparse (Ristretto-ns) configuration where every atom slot is occupied.
// A zero value still yields a full complement of ceil(bits/N) zero atoms.
func DecomposeDense(v int32, bits int, n Granularity) []Atom {
	return decompose(v, bits, n, true)
}

func panicRange(v int32, bits int) {
	panic(fmt.Sprintf("atom: value %d does not fit in %d bits", v, bits))
}

func decompose(v int32, bits int, n Granularity, dense bool) []Atom {
	n.Validate()
	sign, mag := signMag(v, bits)
	cnt := n.Count(bits)
	mask := uint32(1)<<uint(n) - 1
	var out []Atom
	for i := 0; i < cnt; i++ {
		d := uint8((mag >> (uint(i) * uint(n))) & mask)
		if d != 0 || dense {
			out = append(out, Atom{Mag: d, Shift: uint8(i * int(n)), Sign: sign})
		}
	}
	if len(out) > 0 {
		out[len(out)-1].Last = true
	}
	return out
}

// Reconstruct sums the terms of a decomposition back into the value. It is
// the inverse of Decompose/DecomposeDense and anchors the round-trip property
// tests.
func Reconstruct(atoms []Atom) int32 {
	var v int32
	for _, a := range atoms {
		v += a.Term()
	}
	return v
}

// CountNonZero returns how many non-zero atoms v contains at granularity n —
// the per-value workload unit of condensed streaming computation.
func CountNonZero(v int32, bits int, n Granularity) int {
	n.Validate()
	mag := uint32(v)
	if v < 0 {
		mag = uint32(-v)
	}
	if mag < 256 {
		return int(nzCount[n-1][mag])
	}
	mask := uint32(1)<<uint(n) - 1
	cnt := 0
	for i := 0; i < n.Count(bits); i++ {
		if (mag>>(uint(i)*uint(n)))&mask != 0 {
			cnt++
		}
	}
	return cnt
}

// AtomDensity returns the fraction of non-zero atoms among the atoms of the
// *non-zero* values in data — the paper's αa/βa statistic. Zero values are
// excluded (they are handled by value-level density αv/βv).
func AtomDensity(data []int32, bits int, n Granularity) float64 {
	total, nz := 0, 0
	for _, v := range data {
		if v == 0 {
			continue
		}
		total += n.Count(bits)
		nz += CountNonZero(v, bits, n)
	}
	if total == 0 {
		return 0
	}
	return float64(nz) / float64(total)
}

// TotalNonZeroAtoms returns the total number of non-zero atoms across data —
// the stream length after value- and bit-level compression.
func TotalNonZeroAtoms(data []int32, bits int, n Granularity) int {
	t := 0
	for _, v := range data {
		if v != 0 {
			t += CountNonZero(v, bits, n)
		}
	}
	return t
}

// ProductShiftRange returns the set of shift offsets a product of an
// activation atom and a weight atom would need if shifts were not decoupled:
// the pairwise sums of the two operand shift ranges. Ristretto avoids this
// wide range by decoupling the weight shift into the accumulate buffer
// (Section IV-C2); this function exists to quantify that design point in the
// granularity ablation (Figure 19a).
func ProductShiftRange(actBits, wBits int, n Granularity) []int {
	as := n.ShiftRange(actBits)
	ws := n.ShiftRange(wBits)
	seen := map[int]bool{}
	var out []int
	for _, a := range as {
		for _, w := range ws {
			if !seen[a+w] {
				seen[a+w] = true
				out = append(out, a+w)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
