package atom_test

import (
	"fmt"

	"ristretto/internal/atom"
)

// The paper's Section III-A example: 29 = 01_11_01 decomposes into the term
// set {1·2⁰, 3·2², 1·2⁴} under 2-bit atoms.
func ExampleDecompose() {
	for _, a := range atom.Decompose(29, 8, 2) {
		fmt.Println(a)
	}
	// Output:
	// +1<<0
	// +3<<2
	// +1<<4,last
}

// Booth-style effectual terms: 255 needs only two signed power-of-two terms
// (256−1), which is why bit-serial designs like Laconic booth-encode.
func ExampleNAFTerms() {
	fmt.Println("terms(255) =", atom.TermCount(255))
	fmt.Println("popcount(255) =", atom.OneCount(255))
	// Output:
	// terms(255) = 2
	// popcount(255) = 8
}

// Table IV: activation shift ranges under 2-bit atoms.
func ExampleGranularity_ShiftRange() {
	for _, bits := range []int{8, 6, 4, 2} {
		fmt.Printf("%db: %v\n", bits, atom.Granularity(2).ShiftRange(bits))
	}
	// Output:
	// 8b: [0 2 4 6]
	// 6b: [0 2 4]
	// 4b: [0 2]
	// 2b: [0]
}
