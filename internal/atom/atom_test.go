package atom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDecomposeExample29(t *testing.T) {
	// Paper Section III-A: 29 = 01_11_01 under 2-bit atoms is the term set
	// {1<<4, 3<<2, 1<<0}.
	atoms := Decompose(29, 8, 2)
	want := []Atom{
		{Mag: 1, Shift: 0},
		{Mag: 3, Shift: 2},
		{Mag: 1, Shift: 4, Last: true},
	}
	if !reflect.DeepEqual(atoms, want) {
		t.Fatalf("Decompose(29) = %v, want %v", atoms, want)
	}
	if Reconstruct(atoms) != 29 {
		t.Fatalf("Reconstruct = %d, want 29", Reconstruct(atoms))
	}
}

func TestDecomposeNegative(t *testing.T) {
	atoms := Decompose(-11, 8, 2) // |−11| = 00_10_11
	if Reconstruct(atoms) != -11 {
		t.Fatalf("Reconstruct(-11 atoms) = %d", Reconstruct(atoms))
	}
	for _, a := range atoms {
		if !a.Sign {
			t.Fatalf("atom %v of -11 must carry sign", a)
		}
	}
	if n := len(atoms); n != 2 {
		t.Fatalf("got %d atoms, want 2 (digits 3 and 2)", n)
	}
}

func TestDecomposeZero(t *testing.T) {
	if got := Decompose(0, 8, 2); got != nil {
		t.Fatalf("Decompose(0) = %v, want nil", got)
	}
	dense := DecomposeDense(0, 8, 2)
	if len(dense) != 4 {
		t.Fatalf("DecomposeDense(0,8,2) len = %d, want 4", len(dense))
	}
	if !dense[3].Last {
		t.Fatal("dense decomposition must mark last atom")
	}
}

func TestLastFlagMarksFinalAtom(t *testing.T) {
	for v := int32(1); v < 256; v++ {
		atoms := Decompose(v, 8, 2)
		for i, a := range atoms {
			if a.Last != (i == len(atoms)-1) {
				t.Fatalf("v=%d atom %d Last flag wrong: %v", v, i, atoms)
			}
		}
	}
}

func TestShiftRangeTableIV(t *testing.T) {
	// Table IV: activation shift ranges under 2-bit atoms.
	cases := []struct {
		bits int
		want []int
	}{
		{8, []int{0, 2, 4, 6}},
		{6, []int{0, 2, 4}},
		{4, []int{0, 2}},
		{2, []int{0}},
	}
	for _, c := range cases {
		if got := Granularity(2).ShiftRange(c.bits); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShiftRange(%d) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestGranularityCount(t *testing.T) {
	cases := []struct {
		n    Granularity
		bits int
		want int
	}{
		{1, 8, 8}, {2, 8, 4}, {3, 8, 3}, {2, 4, 2}, {2, 2, 1}, {3, 4, 2},
	}
	for _, c := range cases {
		if got := c.n.Count(c.bits); got != c.want {
			t.Errorf("Granularity(%d).Count(%d) = %d, want %d", c.n, c.bits, got, c.want)
		}
	}
}

func TestProductShiftRange(t *testing.T) {
	// Section IV-C2: a coupled 2-bit×2-bit product of 8-bit operands would
	// need shifts {0,2,4,6,8,10,12}.
	got := ProductShiftRange(8, 8, 2)
	want := []int{0, 2, 4, 6, 8, 10, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ProductShiftRange = %v, want %v", got, want)
	}
	// 1-bit granularity widens it to {0..14} (Figure 19a rationale).
	if got := ProductShiftRange(8, 8, 1); len(got) != 15 {
		t.Fatalf("1-bit product shift range has %d entries, want 15", len(got))
	}
}

func TestDecomposeRoundTripProperty(t *testing.T) {
	f := func(raw int16, granSeed uint8) bool {
		n := Granularity(granSeed%3 + 1)
		v := int32(raw % 128) // fits 8-bit signed magnitude
		atoms := Decompose(v, 8, n)
		if Reconstruct(atoms) != v {
			return false
		}
		dense := DecomposeDense(v, 8, n)
		if Reconstruct(dense) != v {
			return false
		}
		if len(dense) != n.Count(8) {
			return false
		}
		return len(atoms) == CountNonZero(v, 8, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsignedFullRange(t *testing.T) {
	for _, n := range []Granularity{1, 2, 3} {
		for v := int32(0); v < 256; v++ {
			if got := Reconstruct(Decompose(v, 8, n)); got != v {
				t.Fatalf("n=%d v=%d reconstruct=%d", n, v, got)
			}
		}
	}
}

func TestNAFRoundTrip(t *testing.T) {
	for v := int32(-4096); v <= 4096; v++ {
		if got := TermValue(NAFTerms(v)); got != v {
			t.Fatalf("NAF round trip failed for %d: got %d", v, got)
		}
	}
}

func TestNAFMinimality(t *testing.T) {
	// NAF never uses more terms than the plain binary representation.
	for v := int32(0); v < 1<<12; v++ {
		if TermCount(v) > OneCount(v) {
			t.Fatalf("NAF terms (%d) exceed popcount (%d) for %d", TermCount(v), OneCount(v), v)
		}
	}
	// Classic witness: 255 = 2^8 - 2^0 needs 2 NAF terms vs 8 bits.
	if TermCount(255) != 2 {
		t.Fatalf("TermCount(255) = %d, want 2", TermCount(255))
	}
}

func TestNAFNonAdjacency(t *testing.T) {
	f := func(raw int16) bool {
		terms := NAFTerms(int32(raw))
		for i := 1; i < len(terms); i++ {
			if terms[i].Shift == terms[i-1].Shift+1 {
				return false // adjacent non-zero digits violate NAF
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomDensity(t *testing.T) {
	// data: 0 excluded; 1 has 1/4 atoms non-zero at 2-bit over 8 bits;
	// 0b01010101=85 has 4/4.
	data := []int32{0, 1, 85}
	got := AtomDensity(data, 8, 2)
	want := (1.0 + 4.0) / 8.0
	if got != want {
		t.Fatalf("AtomDensity = %v, want %v", got, want)
	}
	if TotalNonZeroAtoms(data, 8, 2) != 5 {
		t.Fatalf("TotalNonZeroAtoms = %d, want 5", TotalNonZeroAtoms(data, 8, 2))
	}
}

func TestTermHistogram(t *testing.T) {
	data := []int32{0, 1, 3, 255}
	h := TermHistogram(data, true)
	// terms: 0→0, 1→1, 3→2 (4-1), 255→2 (256-1)
	if h[0] != 1 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("TermHistogram = %v", h)
	}
	hp := TermHistogram(data, false)
	// popcounts: 0,1,2,8
	if hp[0] != 1 || hp[1] != 1 || hp[2] != 1 || hp[8] != 1 {
		t.Fatalf("popcount TermHistogram = %v", hp)
	}
}

func TestRandomizedDecomposeAgainstNaiveSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		bits := []int{2, 4, 6, 8}[rng.Intn(4)]
		n := Granularity(rng.Intn(3) + 1)
		v := int32(rng.Intn(1 << (bits - 1)))
		if rng.Intn(2) == 0 {
			v = -v
		}
		var sum int32
		for _, a := range Decompose(v, bits, n) {
			sum += a.Term()
		}
		if sum != v {
			t.Fatalf("bits=%d n=%d v=%d sum=%d", bits, n, v, sum)
		}
	}
}
