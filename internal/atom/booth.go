package atom

// Bit-serial accelerators such as Laconic, Bit-Pragmatic and Bit-Tactical
// process only the "effectual terms" of an operand: a signed-power-of-two
// recoding where each term is ±2^k. Laconic uses a Booth-style encoder at the
// PE-array boundary; we implement the non-adjacent form (NAF), the canonical
// minimal signed-digit recoding Booth encoders approximate. The per-pair
// workload of a Laconic multiplier is #terms(a) × #terms(w) cycles.

// Term is one signed power-of-two component of a value.
type Term struct {
	Shift uint8 // exponent k
	Neg   bool  // true for -2^k
}

// NAFTerms returns the non-adjacent-form terms of v, least significant first.
// The NAF of v has the minimum number of non-zero signed digits of any
// base-2 signed-digit representation.
func NAFTerms(v int32) []Term {
	var terms []Term
	x := int64(v)
	neg := x < 0
	if neg {
		x = -x
	}
	shift := uint8(0)
	for x != 0 {
		if x&1 != 0 {
			d := 2 - (x & 3) // +1 if x ≡ 1 (mod 4), -1 if x ≡ 3 (mod 4)
			terms = append(terms, Term{Shift: shift, Neg: (d < 0) != neg})
			x -= d
		}
		x >>= 1
		shift++
	}
	return terms
}

// TermValue reconstructs the value from its signed power-of-two terms.
func TermValue(terms []Term) int32 {
	var v int64
	for _, t := range terms {
		p := int64(1) << t.Shift
		if t.Neg {
			v -= p
		} else {
			v += p
		}
	}
	return int32(v)
}

// TermCount returns the number of effectual (non-zero) NAF terms of v; zero
// values have zero terms. This is the bit-serial workload unit.
func TermCount(v int32) int {
	cnt := 0
	x := int64(v)
	if x < 0 {
		x = -x
	}
	for x != 0 {
		if x&1 != 0 {
			x -= 2 - (x & 3)
			cnt++
		}
		x >>= 1
	}
	return cnt
}

// OneCount returns the plain popcount of |v| — the term count of a naive
// (non-Booth) bit-serial encoder. Exposed so the Laconic model can be
// configured either way.
func OneCount(v int32) int {
	x := uint32(v)
	if v < 0 {
		x = uint32(-v)
	}
	cnt := 0
	for x != 0 {
		cnt += int(x & 1)
		x >>= 1
	}
	return cnt
}

// TermHistogram returns h where h[t] counts values in data with exactly t
// effectual terms (NAF if booth, else popcount). Used by the distribution-
// based Laconic performance model to compute expected maxima cheaply.
func TermHistogram(data []int32, booth bool) []int {
	var h []int
	for _, v := range data {
		var t int
		if booth {
			t = TermCount(v)
		} else {
			t = OneCount(v)
		}
		for len(h) <= t {
			h = append(h, 0)
		}
		h[t]++
	}
	return h
}
