package runner

import (
	"errors"
	"fmt"
)

// WireCellError is the JSON shape of a *CellError crossing a process
// boundary: the distributed-fleet worker endpoint (/v1/cell) answers a
// failed cell with this struct, and the coordinator reconstructs a
// *CellError from it so remote failures carry the same replay seed,
// attempt count and panic evidence as local ones. Key is the stable cell
// key the failure belongs to (journal/cache identity), which a bare cell
// index cannot convey across processes.
type WireCellError struct {
	// Cell is the failing index inside the remote MapCfg call (often 0 for
	// one-cell remote executions; Key is the cross-process identity).
	Cell int `json:"cell"`
	// Key is the stable cell key (e.g. an experiments job key) when the
	// remote side knows it.
	Key string `json:"key,omitempty"`
	// Seed is the replay seed derived for the cell, the value that lets a
	// local rerun target exactly the failed work.
	Seed int64 `json:"seed,omitempty"`
	// Attempts counts tries made remotely, including the first.
	Attempts int `json:"attempts,omitempty"`
	// Panicked is true when the remote failure was a recovered panic.
	Panicked bool `json:"panicked,omitempty"`
	// TimedOut is true when the remote cell exceeded its timeout.
	TimedOut bool `json:"timed_out,omitempty"`
	// Stack is the recovered goroutine stack for panics (may be truncated
	// by the remote side; empty for plain errors).
	Stack string `json:"stack,omitempty"`
	// Error is the underlying error message.
	Error string `json:"error"`
}

// Wire converts a *CellError into its cross-process JSON shape. key names
// the cell for the remote receiver (pass "" when unknown).
func (e *CellError) Wire(key string) *WireCellError {
	w := &WireCellError{
		Cell:     e.Cell,
		Key:      key,
		Seed:     e.Seed,
		Attempts: e.Attempts,
		Panicked: e.Stack != nil,
		TimedOut: e.TimedOut,
		Stack:    string(e.Stack),
	}
	if e.Err != nil {
		w.Error = e.Err.Error()
	}
	return w
}

// CellError reconstructs the typed error. The round-trip preserves the
// replay seed, attempt count, timeout flag and the panicked/failed kind
// (a panicked wire error yields a non-nil Stack even when the stack text
// was dropped), so Error() renders the same failure classification on
// both sides of the wire.
func (w *WireCellError) CellError() *CellError {
	ce := &CellError{
		Cell:     w.Cell,
		Seed:     w.Seed,
		Attempts: w.Attempts,
		TimedOut: w.TimedOut,
		Err:      errors.New(w.Error),
	}
	if w.Panicked {
		// Preserve the "panicked" classification even for an empty stack:
		// CellError reports kind by Stack != nil.
		ce.Stack = []byte(w.Stack)
		if ce.Stack == nil {
			ce.Stack = []byte{}
		}
	}
	if w.TimedOut && w.Error == ErrCellTimeout.Error() {
		ce.Err = ErrCellTimeout
	}
	return ce
}

// String renders the wire error for logs, mirroring CellError.Error with
// the stable key when present.
func (w *WireCellError) String() string {
	kind := "failed"
	switch {
	case w.Panicked:
		kind = "panicked"
	case w.TimedOut:
		kind = "timed out"
	}
	name := fmt.Sprintf("cell %d", w.Cell)
	if w.Key != "" {
		name = fmt.Sprintf("cell %q", w.Key)
	}
	s := fmt.Sprintf("runner: %s %s", name, kind)
	if w.Attempts > 1 {
		s += fmt.Sprintf(" after %d attempts", w.Attempts)
	}
	if w.Seed != 0 {
		s += fmt.Sprintf(" (replay seed %d)", w.Seed)
	}
	return s + ": " + w.Error
}
