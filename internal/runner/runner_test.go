package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		got, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const limit = 3
	p := New(limit)
	var inFlight, peak atomic.Int64
	_, err := Map(p, 50, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, limit)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("observed no concurrency (peak %d) with %d workers", p, limit)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	// Whatever the worker count, the reported error must be the one a serial
	// loop would hit first (lowest index), not whichever fired first.
	for _, workers := range []int{1, 4, 16} {
		p := New(workers)
		_, err := Map(p, 40, func(i int) (int, error) {
			if i == 7 || i == 23 {
				// Make the later failure race ahead of the earlier one.
				if i == 7 {
					time.Sleep(5 * time.Millisecond)
				}
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: got %q, want lowest-index error", workers, err)
		}
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	p := New(2)
	var started atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(p, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s := started.Load(); s > 10 {
		t.Fatalf("%d jobs started after early failure; cancellation not effective", s)
	}
}

func TestMapCompletedResultsSurviveError(t *testing.T) {
	p := New(1)
	out, err := Map(p, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 3; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
}

func TestMapZeroJobsAndDefaults(t *testing.T) {
	if got, err := Map(New(4), 0, func(i int) (int, error) { return 0, errors.New("never") }); err != nil || len(got) != 0 {
		t.Fatalf("zero jobs: %v, %d results", err, len(got))
	}
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if Serial().Workers() != 1 {
		t.Fatal("Serial pool not single-worker")
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	// The engine's core promise: identical output for any worker count.
	job := func(i int) (string, error) { return fmt.Sprintf("r%d", i*7%13), nil }
	want, err := Map(Serial(), 64, job)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, workers := range []int{2, 5, 32} {
		workers := workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Map(New(workers), 64, job)
			if err != nil {
				t.Errorf("workers=%d: %v", workers, err)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
