package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var ctx = context.Background()

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		got, err := Map(ctx, p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const limit = 3
	p := New(limit)
	var inFlight, peak atomic.Int64
	_, err := Map(ctx, p, 50, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, limit)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("observed no concurrency (peak %d) with %d workers", p, limit)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	// Whatever the worker count, the reported error must be the one a serial
	// loop would hit first (lowest index), not whichever fired first.
	for _, workers := range []int{1, 4, 16} {
		p := New(workers)
		_, err := Map(ctx, p, 40, func(i int) (int, error) {
			if i == 7 || i == 23 {
				// Make the later failure race ahead of the earlier one.
				if i == 7 {
					time.Sleep(5 * time.Millisecond)
				}
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err is %T, want *CellError", workers, err)
		}
		if ce.Cell != 7 {
			t.Fatalf("workers=%d: failing cell = %d, want lowest index 7", workers, ce.Cell)
		}
		if ce.Err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: underlying error %q, want %q", workers, ce.Err, "job 7 failed")
		}
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	p := New(2)
	var started atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(ctx, p, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s := started.Load(); s > 10 {
		t.Fatalf("%d jobs started after early failure; cancellation not effective", s)
	}
}

func TestMapCompletedResultsSurviveError(t *testing.T) {
	p := New(1)
	out, err := Map(ctx, p, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 3; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
}

func TestMapZeroJobsAndDefaults(t *testing.T) {
	if got, err := Map(ctx, New(4), 0, func(i int) (int, error) { return 0, errors.New("never") }); err != nil || len(got) != 0 {
		t.Fatalf("zero jobs: %v, %d results", err, len(got))
	}
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if Serial().Workers() != 1 {
		t.Fatal("Serial pool not single-worker")
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	// The engine's core promise: identical output for any worker count.
	job := func(i int) (string, error) { return fmt.Sprintf("r%d", i*7%13), nil }
	want, err := Map(ctx, Serial(), 64, job)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, workers := range []int{2, 5, 32} {
		workers := workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Map(ctx, New(workers), 64, job)
			if err != nil {
				t.Errorf("workers=%d: %v", workers, err)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		cfg := Cfg{Seed: func(cell int) int64 { return int64(1000 + cell) }}
		_, err := MapCfg(ctx, p, cfg, 20, func(i int) (int, error) {
			if i == 5 {
				panic("cell exploded")
			}
			return i, nil
		})
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %v (%T), want *CellError", workers, err, err)
		}
		if ce.Cell != 5 {
			t.Fatalf("workers=%d: cell = %d, want 5", workers, ce.Cell)
		}
		if ce.Seed != 1005 {
			t.Fatalf("workers=%d: replay seed = %d, want 1005", workers, ce.Seed)
		}
		if ce.Stack == nil || !strings.Contains(string(ce.Stack), "runner") {
			t.Fatalf("workers=%d: no usable stack recorded", workers)
		}
		if !strings.Contains(ce.Error(), "cell exploded") {
			t.Fatalf("workers=%d: message %q lost the panic value", workers, ce.Error())
		}
	}
}

func TestMapContextCancellationMidSweep(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	p := New(4)
	_, err := Map(cctx, p, 1000, func(i int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s > 50 {
		t.Fatalf("%d cells started after cancellation", s)
	}
}

func TestMapKeepGoingCollectsAllFailures(t *testing.T) {
	// Regression for worker attrition: with many failing cells every worker
	// records errors repeatedly; each must keep pulling work, so the whole
	// sweep completes with real concurrency and reports every failure.
	const n = 200
	p := New(4)
	var ran atomic.Int64
	var inFlight, peak atomic.Int64
	_, err := MapCfg(ctx, p, Cfg{KeepGoing: true}, n, func(i int) (int, error) {
		ran.Add(1)
		cur := inFlight.Add(1)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		if i%2 == 0 {
			return 0, fmt.Errorf("cell %d bad", i)
		}
		return i, nil
	})
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d cells, want all %d (worker attrition?)", got, n)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d: failing cells shrank the pool", p)
	}
	ces := AsCellErrors(err)
	if len(ces) != n/2 {
		t.Fatalf("got %d cell errors, want %d", len(ces), n/2)
	}
	for k, ce := range ces {
		if ce.Cell != 2*k {
			t.Fatalf("cell errors not index-ordered: errs[%d].Cell = %d", k, ce.Cell)
		}
	}
}

func TestMapRetryTransientErrors(t *testing.T) {
	transient := errors.New("transient")
	var flaky sync.Map // cell -> remaining failures
	fn := func(i int) (int, error) {
		if i%5 == 0 {
			v, _ := flaky.LoadOrStore(i, new(atomic.Int64))
			if v.(*atomic.Int64).Add(1) <= 2 {
				return 0, transient
			}
		}
		return i * 3, nil
	}
	cfg := Cfg{Retries: 3, Retryable: func(err error) bool { return errors.Is(err, transient) }}
	out, err := MapCfg(ctx, New(4), cfg, 30, fn)
	if err != nil {
		t.Fatalf("retries did not absorb transient errors: %v", err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	// Exhausted retries must surface with the attempt count.
	flaky = sync.Map{}
	cfg.Retries = 1
	_, err = MapCfg(ctx, New(2), cfg, 6, fn)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Cell != 0 || ce.Attempts != 2 {
		t.Fatalf("err = %v, want cell 0 after 2 attempts", err)
	}
	if !errors.Is(err, transient) {
		t.Fatal("underlying transient error not unwrappable")
	}
}

func TestMapRetryDeterminism(t *testing.T) {
	// Same deterministic failure pattern -> same final bits and same failure
	// set for every worker count.
	transient := errors.New("flaky")
	mk := func() func(i int) (string, error) {
		var attempts sync.Map
		return func(i int) (string, error) {
			v, _ := attempts.LoadOrStore(i, new(atomic.Int64))
			a := v.(*atomic.Int64).Add(1)
			if i%7 == 3 && a == 1 {
				return "", transient // succeeds on retry
			}
			if i%11 == 5 {
				return "", fmt.Errorf("hard failure %d", i)
			}
			return fmt.Sprintf("v%d", i*i%97), nil
		}
	}
	cfg := Cfg{KeepGoing: true, Retries: 2, Retryable: func(err error) bool { return errors.Is(err, transient) }}
	want, wantErr := MapCfg(ctx, Serial(), cfg, 120, mk())
	for _, workers := range []int{2, 8} {
		got, err := MapCfg(ctx, New(workers), cfg, 120, mk())
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
		wces, gces := AsCellErrors(wantErr), AsCellErrors(err)
		if len(wces) != len(gces) {
			t.Fatalf("workers=%d: %d failures, serial had %d", workers, len(gces), len(wces))
		}
		for k := range wces {
			if wces[k].Cell != gces[k].Cell || wces[k].Err.Error() != gces[k].Err.Error() {
				t.Fatalf("workers=%d: failure[%d] = %v, serial had %v", workers, k, gces[k], wces[k])
			}
		}
	}
}

func TestMapCellTimeout(t *testing.T) {
	cfg := Cfg{Timeout: 10 * time.Millisecond}
	_, err := MapCfg(ctx, New(2), cfg, 4, func(i int) (int, error) {
		if i == 2 {
			time.Sleep(2 * time.Second)
		}
		return i, nil
	})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Cell != 2 || !ce.TimedOut || !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %+v, want timeout on cell 2", ce)
	}
}

func TestMapFaultHook(t *testing.T) {
	// The hook can fail, panic, or delay; injected failures are retried like
	// real ones.
	var hookCalls atomic.Int64
	cfg := Cfg{
		Retries:   2,
		Retryable: func(error) bool { return true },
		Fault: func(cell, attempt int) error {
			hookCalls.Add(1)
			if cell == 3 && attempt == 0 {
				return errors.New("injected transient")
			}
			if cell == 6 && attempt == 0 {
				panic("injected panic")
			}
			return nil
		},
	}
	out, err := MapCfg(ctx, New(2), cfg, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		// Panics are not retried, so cell 6 fails terminally.
		var ce *CellError
		if !errors.As(err, &ce) || ce.Cell != 6 || ce.Stack == nil {
			t.Fatalf("err = %v, want panic CellError on cell 6", err)
		}
	} else {
		t.Fatal("expected injected panic to fail cell 6")
	}
	if out[3] != 4 {
		t.Fatalf("cell 3 = %d, want recovery after injected transient", out[3])
	}
	if hookCalls.Load() == 0 {
		t.Fatal("fault hook never called")
	}
}

func TestAsCellErrors(t *testing.T) {
	if AsCellErrors(nil) != nil {
		t.Fatal("nil error should flatten to nil")
	}
	if AsCellErrors(context.Canceled) != nil {
		t.Fatal("context error should flatten to nil")
	}
	single := &CellError{Cell: 4, Err: errors.New("x")}
	if got := AsCellErrors(single); len(got) != 1 || got[0] != single {
		t.Fatalf("single CellError flattened to %v", got)
	}
	multi := CellErrors{{Cell: 1, Err: errors.New("a")}, {Cell: 2, Err: errors.New("b")}}
	if got := AsCellErrors(multi); len(got) != 2 {
		t.Fatalf("CellErrors flattened to %v", got)
	}
	if !strings.Contains(multi.Error(), "2 cells failed") {
		t.Fatalf("aggregate message %q", multi.Error())
	}
}

// TestBackoffCancelPrompt is the regression guard for context-aware retry
// backoff: cancelling the context while a cell sleeps between attempts must
// abort the sleep immediately — not wait out the full (here: 10s) backoff —
// and surface the cell's failure.
func TestBackoffCancelPrompt(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	errTransient := errors.New("transient")
	attempts := atomic.Int64{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MapCfg(cctx, Serial(), Cfg{
		Retries:   5,
		Backoff:   10 * time.Second,
		Retryable: func(error) bool { return true },
	}, 1, func(i int) (int, error) {
		attempts.Add(1)
		return 0, errTransient
	})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation did not abort the backoff sleep: returned after %v", elapsed)
	}
	if err == nil {
		t.Fatal("cancelled retry loop reported success")
	}
	ces := AsCellErrors(err)
	if len(ces) != 1 || !errors.Is(ces[0], errTransient) {
		t.Fatalf("expected the cell's transient failure, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("cell ran %d attempts; cancellation mid-backoff should stop after the first", got)
	}
}
