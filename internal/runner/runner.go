// Package runner provides the bounded, deterministic worker pool behind the
// experiment harness. Every figure, extension study and design-space sweep
// fans its independent cells out through Map; because each cell derives its
// own random stream (workload.DeriveSeed) and results are collected in index
// order, output is bit-identical regardless of the worker count — the golden
// determinism tests in internal/experiments enforce this.
//
// On top of the deterministic core, the pool is the repository's
// fault-isolation boundary: worker panics are recovered into typed
// *CellError values (cell index, stack, replay seed) instead of killing the
// process, cells honour a context for cancellation, and MapCfg adds per-cell
// timeouts, an all-failures keep-going mode, bounded retry-with-backoff for
// transient errors, and a runtime fault-injection hook (see
// internal/faultinject) used by the chaos tests.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ristretto/internal/telemetry"
)

// Pool is a concurrency budget for Map calls. It carries no state between
// calls — each Map spawns its own bounded worker set — so nested Map calls
// (a figure fanning out inside a parallel All) cannot deadlock on shared
// slots; the bound applies per fan-out level.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs concurrently per Map call.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Serial is a single-worker pool: Map degenerates to an in-order loop.
func Serial() *Pool { return New(1) }

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Fault is a fault-injection hook called at the start of every cell attempt
// with the cell index and the zero-based attempt number. A non-nil return
// fails the attempt with that error (retried like any other error if the
// config allows); a panicking hook exercises the pool's panic recovery. The
// hook runs inside the cell's recover/timeout envelope, so injected faults
// are indistinguishable from real ones. internal/faultinject builds
// seed-deterministic hooks; nil means no injection and costs nothing.
type Fault func(cell, attempt int) error

// Cfg tunes the fault-tolerance behaviour of one MapCfg call. The zero
// value reproduces plain Map: no timeout, stop at the lowest failing index,
// no retries, no fault injection.
type Cfg struct {
	// Timeout bounds each cell attempt's wall time; 0 disables. A cell that
	// exceeds it fails with a *CellError wrapping ErrCellTimeout. The
	// abandoned attempt's goroutine is not killed (Go cannot); its result is
	// discarded. Timeouts are a fault-tolerance net, not a scheduling tool:
	// a run whose cells finish nowhere near the bound stays deterministic,
	// one that races the bound does not.
	Timeout time.Duration

	// KeepGoing runs every cell even after failures and returns all of them
	// as CellErrors (sorted by cell index), instead of stopping at the
	// lowest failing index. Failed cells keep their zero-value results.
	KeepGoing bool

	// Retries is the maximum number of re-attempts per cell (0 = fail on
	// the first error). Only errors Retryable accepts are retried; panics
	// never are.
	Retries int

	// Backoff is the sleep before the first retry, doubling per attempt;
	// 0 retries immediately. The sleep aborts early on cancellation.
	Backoff time.Duration

	// Retryable classifies errors worth retrying. Nil with Retries > 0
	// retries everything except cancellation.
	Retryable func(err error) bool

	// Seed derives the replay seed recorded in CellErrors for cell i, so a
	// failure report carries everything needed to rerun the cell alone.
	// Nil leaves CellError.Seed zero.
	Seed func(cell int) int64

	// Fault is the fault-injection hook (nil = none).
	Fault Fault
}

// ErrCellTimeout is the cause recorded in a *CellError when a cell attempt
// exceeds Cfg.Timeout.
var ErrCellTimeout = errors.New("runner: cell timed out")

// CellError is one failed sweep cell: the index, the replay seed (when the
// config derives one), how many attempts were made, the recovered stack for
// panics, and the underlying error. Map and MapCfg report every failure
// through this type, so a crash inside a thousand-cell sweep surfaces as a
// replayable record instead of a dead process.
type CellError struct {
	Cell     int    // index of the failing cell
	Seed     int64  // replay seed from Cfg.Seed (0 when not derived)
	Attempts int    // attempts made, counting the first
	Stack    []byte // non-nil when the failure was a recovered panic
	TimedOut bool   // true when the failure was a Cfg.Timeout expiry
	Err      error  // the underlying error (or the panic value wrapped)
}

// Error renders the failure with its cell index, kind and replay seed.
func (e *CellError) Error() string {
	kind := "failed"
	switch {
	case e.Stack != nil:
		kind = "panicked"
	case e.TimedOut:
		kind = "timed out"
	}
	s := fmt.Sprintf("runner: cell %d %s", e.Cell, kind)
	if e.Attempts > 1 {
		s += fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	if e.Seed != 0 {
		s += fmt.Sprintf(" (replay seed %d)", e.Seed)
	}
	return s + ": " + e.Err.Error()
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// CellErrors is the aggregate error of a keep-going MapCfg call: every
// failed cell in index order.
type CellErrors []*CellError

// Error summarizes the failure set.
func (es CellErrors) Error() string {
	if len(es) == 0 {
		return "runner: no cell errors"
	}
	if len(es) == 1 {
		return es[0].Error()
	}
	return fmt.Sprintf("runner: %d cells failed; first: %s", len(es), es[0].Error())
}

// Unwrap exposes the individual cell errors to errors.Is/As.
func (es CellErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// AsCellErrors flattens any error a Map/MapCfg call can return into its cell
// failures: a CellErrors aggregate is returned as-is, a single *CellError
// becomes a one-element slice, and anything else (nil, a context error)
// yields nil.
func AsCellErrors(err error) CellErrors {
	var es CellErrors
	if errors.As(err, &es) {
		return es
	}
	var e *CellError
	if errors.As(err, &e) {
		return CellErrors{e}
	}
	return nil
}

// taps bundles the pool's telemetry handles; a nil *taps (registry disabled)
// keeps the hot path free of registry traffic.
type taps struct {
	cells    *telemetry.Counter
	panics   *telemetry.Counter
	retries  *telemetry.Counter
	timeouts *telemetry.Counter
	cellNS   *telemetry.Histogram
	depth    *telemetry.Histogram
	inflight atomic.Int64
}

// newTaps resolves the handles once per Map call when telemetry is enabled.
func newTaps() *taps {
	r := telemetry.Default
	if !r.Enabled() {
		return nil
	}
	return &taps{
		cells:    r.Counter("runner.cells"),
		panics:   r.Counter("runner.panics_recovered"),
		retries:  r.Counter("runner.retries"),
		timeouts: r.Counter("runner.cell_timeouts"),
		cellNS:   r.Histogram("runner.cell_ns"),
		depth:    r.Histogram("runner.queue_depth"),
	}
}

// Map runs fn(i) for every i in [0, n) on the pool's workers and returns the
// results in index order. A cell error (or recovered panic) cancels the
// remaining not-yet-started jobs, and the failure of the lowest failing
// index is returned as a *CellError — the same cell a serial loop stopping
// at its first failure would report, so error propagation is independent of
// the worker count. Results of jobs that completed before cancellation are
// still filled in. A cancelled ctx stops new cells from starting and is
// returned (unwrapped) when no cell failed first.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCfg(ctx, p, Cfg{}, n, fn)
}

// MapCfg is Map with explicit fault-tolerance configuration: per-cell
// timeouts, keep-going failure collection, bounded retry-with-backoff and
// fault injection (see Cfg). The bit-identity guarantee is unchanged: for
// any worker count the successful results and the set of reported failures
// are the same (timeouts excepted — see Cfg.Timeout).
func MapCfg[T any](ctx context.Context, p *Pool, cfg Cfg, n int, fn func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Retries > 0 && cfg.Retryable == nil {
		cfg.Retryable = func(err error) bool {
			return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
		}
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	t := newTaps()

	errs := make([]*CellError, n)
	var next atomic.Int64
	next.Store(-1)
	// failed tracks the lowest failing index in stop mode: jobs past it are
	// never started, because a serial run would not have reached them.
	var failed atomic.Int64
	failed.Store(int64(n))

	worker := func() {
		for {
			i := int(next.Add(1))
			if i >= n {
				return
			}
			if !cfg.KeepGoing && int64(i) > failed.Load() {
				return
			}
			if ctx.Err() != nil {
				return
			}
			v, ce := runCell(ctx, cfg, t, i, fn)
			if ce != nil {
				errs[i] = ce
				if !cfg.KeepGoing {
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
				// Recycle the worker: a failing cell must not shrink the
				// pool, or keep-going sweeps with many failures would slowly
				// serialize and finally stall.
				continue
			}
			out[i] = v
		}
	}

	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	if cfg.KeepGoing {
		var ces CellErrors
		for _, e := range errs {
			if e != nil {
				ces = append(ces, e)
			}
		}
		if len(ces) > 0 {
			return out, ces
		}
	} else if f := failed.Load(); f < int64(n) {
		return out, errs[f]
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// runCell executes one cell with retries, wrapping any terminal failure
// into a *CellError.
func runCell[T any](ctx context.Context, cfg Cfg, t *taps, i int, fn func(i int) (T, error)) (T, *CellError) {
	var zero T
	if t != nil {
		t.depth.Observe(t.inflight.Add(1))
		start := time.Now()
		defer func() {
			t.cellNS.Observe(time.Since(start).Nanoseconds())
			t.inflight.Add(-1)
			t.cells.Inc()
		}()
	}
	attempts := 0
	for {
		v, err, stack, timedOut := attempt(ctx, cfg, t, i, attempts, fn)
		attempts++
		if err == nil {
			return v, nil
		}
		// Panics are never retried: they indicate a bug, not a transient
		// condition, and the stack is the evidence worth surfacing.
		retry := stack == nil && attempts <= cfg.Retries &&
			cfg.Retryable != nil && cfg.Retryable(err) && ctx.Err() == nil
		if retry {
			if t != nil {
				t.retries.Inc()
			}
			if cfg.Backoff > 0 {
				shift := attempts - 1
				if shift > 16 {
					shift = 16
				}
				retry = sleepCtx(ctx, cfg.Backoff<<shift)
			}
		}
		if retry {
			continue
		}
		ce := &CellError{Cell: i, Attempts: attempts, Stack: stack, TimedOut: timedOut, Err: err}
		if cfg.Seed != nil {
			ce.Seed = cfg.Seed(i)
		}
		return zero, ce
	}
}

// attempt runs one cell attempt under the recover (and optional timeout)
// envelope: the fault hook first, then fn. A recovered panic comes back as
// an error plus its stack.
func attempt[T any](ctx context.Context, cfg Cfg, t *taps, i, try int, fn func(i int) (T, error)) (v T, err error, stack []byte, timedOut bool) {
	exec := func() (v T, err error, stack []byte) {
		defer func() {
			if r := recover(); r != nil {
				stack = debug.Stack()
				err = fmt.Errorf("panic: %v", r)
				if t != nil {
					t.panics.Inc()
				}
			}
		}()
		if cfg.Fault != nil {
			if ferr := cfg.Fault(i, try); ferr != nil {
				return v, ferr, nil
			}
		}
		v, err = fn(i)
		return v, err, nil
	}
	if cfg.Timeout <= 0 {
		v, err, stack = exec()
		return v, err, stack, false
	}
	type result struct {
		v     T
		err   error
		stack []byte
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		r.v, r.err, r.stack = exec()
		ch <- r
	}()
	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err, r.stack, false
	case <-timer.C:
		if t != nil {
			t.timeouts.Inc()
		}
		return v, ErrCellTimeout, nil, true
	case <-ctx.Done():
		return v, ctx.Err(), nil, false
	}
}

// sleepCtx sleeps for d unless ctx is cancelled first, reporting whether the
// full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
