// Package runner provides the bounded, deterministic worker pool behind the
// experiment harness. Every figure, extension study and design-space sweep
// fans its independent cells out through Map; because each cell derives its
// own random stream (workload.DeriveSeed) and results are collected in index
// order, output is bit-identical regardless of the worker count — the golden
// determinism tests in internal/experiments enforce this.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ristretto/internal/telemetry"
)

// Pool is a concurrency budget for Map calls. It carries no state between
// calls — each Map spawns its own bounded worker set — so nested Map calls
// (a figure fanning out inside a parallel All) cannot deadlock on shared
// slots; the bound applies per fan-out level.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs concurrently per Map call.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Serial is a single-worker pool: Map degenerates to an in-order loop.
func Serial() *Pool { return New(1) }

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n) on the pool's workers and returns the
// results in index order. On error the remaining (not yet started) jobs are
// cancelled and the error of the lowest failing index is returned — the same
// error a serial loop stopping at its first failure would report, so error
// propagation is also independent of the worker count. Results of jobs that
// completed before cancellation are still filled in.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}

	// Telemetry taps (workload shape under the parallel harness): cells run,
	// per-cell wall time and the in-flight depth at dispatch. Handles are
	// resolved once per Map call; when telemetry is off the wrapper reduces
	// to the bare fn call, so the hot path stays allocation-free either way.
	run := fn
	if r := telemetry.Default; r.Enabled() {
		cells := r.Counter("runner.cells")
		cellNS := r.Histogram("runner.cell_ns")
		depth := r.Histogram("runner.queue_depth")
		var inflight atomic.Int64
		run = func(i int) (T, error) {
			depth.Observe(inflight.Add(1))
			t0 := time.Now()
			v, err := fn(i)
			cellNS.Observe(time.Since(t0).Nanoseconds())
			inflight.Add(-1)
			cells.Inc()
			return v, err
		}
	}

	if workers == 1 {
		// Serial fast path: no goroutines, stop at the first error.
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Int64
	failed.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				// Don't start jobs past an already-failed index: a serial
				// run would never have reached them.
				if i >= n || int64(i) > failed.Load() {
					return
				}
				v, err := run(i)
				if err != nil {
					errs[i] = err
					// Record the lowest failing index.
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if f := failed.Load(); f < int64(n) {
		return out, errs[f]
	}
	return out, nil
}
