package runner

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestWireCellErrorRoundTrip pins the cross-process contract the fleet
// coordinator relies on: every replay-relevant field of a CellError must
// survive JSON encode/decode, and the reconstructed error must classify
// (panicked / timed out / failed) identically to the original.
func TestWireCellErrorRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		ce   *CellError
		key  string
	}{
		{"panic", &CellError{Cell: 3, Seed: 987654321, Attempts: 1, Stack: []byte("goroutine 1 [running]:\nboom"), Err: errors.New("panic: injected")}, "figure12"},
		{"timeout", &CellError{Cell: 0, Seed: 42, Attempts: 2, TimedOut: true, Err: ErrCellTimeout}, "ext-fifo"},
		{"plain", &CellError{Cell: 7, Seed: -5, Attempts: 3, Err: errors.New("hard failure")}, ""},
		{"panic-empty-stack", &CellError{Cell: 1, Seed: 9, Attempts: 1, Stack: []byte{}, Err: errors.New("panic: x")}, "taxonomy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.ce.Wire(tc.key)
			raw, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			var back WireCellError
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			if back.Key != tc.key {
				t.Errorf("key %q != %q", back.Key, tc.key)
			}
			got := back.CellError()
			if got.Seed != tc.ce.Seed {
				t.Errorf("seed %d != %d: replay seed lost on the wire", got.Seed, tc.ce.Seed)
			}
			if got.Cell != tc.ce.Cell || got.Attempts != tc.ce.Attempts || got.TimedOut != tc.ce.TimedOut {
				t.Errorf("fields differ: got %+v want %+v", got, tc.ce)
			}
			if (got.Stack != nil) != (tc.ce.Stack != nil) {
				t.Errorf("panic classification lost: stack %v vs %v", got.Stack, tc.ce.Stack)
			}
			if got.Error() != tc.ce.Error() {
				t.Errorf("rendering differs:\n got %q\nwant %q", got.Error(), tc.ce.Error())
			}
			if tc.ce.TimedOut && !errors.Is(got, ErrCellTimeout) {
				t.Error("timeout cause not reconstructed as ErrCellTimeout")
			}
		})
	}
}

// TestWireCellErrorString covers the log rendering with and without keys.
func TestWireCellErrorString(t *testing.T) {
	w := (&CellError{Cell: 0, Seed: 11, Attempts: 2, Err: errors.New("x")}).Wire("figure4")
	s := w.String()
	for _, want := range []string{`cell "figure4"`, "replay seed 11", "after 2 attempts", ": x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
