// Package quant implements the uniform quantization and magnitude pruning
// used to produce the low-precision sparse operands of the study, plus the
// value/atom density statistics (αv, αa, βv, βa) that govern condensed
// streaming computation latency.
//
// The paper quantizes ImageNet-trained networks with a uniform quantizer and
// reports (Figure 1) that sparsity of both weights and activations grows as
// bit-width shrinks, reaching 47.43%/75.25% average weight/activation
// sparsity at 2 bits without pruning. We reproduce the mechanism: a uniform
// symmetric quantizer maps every value whose magnitude falls below half a
// quantization step to zero, so coarser steps (fewer bits) produce more
// zeros. The clip point (in units of the distribution's standard deviation)
// is per-bit-width calibrated the way learned-step quantization schemes
// behave: aggressive clipping at low bit-widths.
package quant

import (
	"fmt"
	"math"

	"ristretto/internal/atom"
)

// Config selects a uniform quantizer.
type Config struct {
	Bits      int     // target bit-width (2..8, or 16)
	ClipSigma float64 // clip point in standard deviations of the source data
}

// DefaultWeightClip returns a clip point (in σ) for signed weight
// quantization at the given bit-width. The values follow the trend of
// learned clipping (PACT/LSQ-style): tight clips at low precision. With
// Gaussian weights they yield zero fractions matching Figure 1's trend
// (≈47% at 2 bits, low single digits at 8 bits).
func DefaultWeightClip(bits int) float64 {
	switch {
	case bits <= 2:
		return 1.28
	case bits <= 3:
		return 1.8
	case bits <= 4:
		return 2.5
	case bits <= 6:
		return 3.2
	default:
		return 4.0
	}
}

// DefaultActClip returns a clip point (in σ of the pre-ReLU distribution)
// for unsigned activation quantization. Post-ReLU activations are half-
// Gaussian, so ~50% are already zero; the quantization dead-zone adds more
// at low bit-widths (≈75% total at 2 bits per Figure 1).
func DefaultActClip(bits int) float64 {
	switch {
	case bits <= 2:
		return 4.0
	case bits <= 3:
		return 4.0
	case bits <= 4:
		return 4.2
	case bits <= 6:
		return 4.5
	default:
		return 5.0
	}
}

// QuantizeSigned quantizes real-valued weights (with standard deviation std)
// to symmetric signed integers in (-(1<<(bits-1)), 1<<(bits-1)): the most
// negative code is excluded so magnitudes fit bits-1 bits, as sign-magnitude
// atomization requires.
func QuantizeSigned(x []float64, std float64, cfg Config) []int32 {
	if cfg.Bits < 2 {
		panic(fmt.Sprintf("quant: signed quantization needs >=2 bits, got %d", cfg.Bits))
	}
	clip := cfg.ClipSigma * std
	qmax := float64(int32(1)<<(cfg.Bits-1) - 1)
	scale := clip / qmax
	out := make([]int32, len(x))
	for i, v := range x {
		q := math.Round(v / scale)
		if q > qmax {
			q = qmax
		}
		if q < -qmax {
			q = -qmax
		}
		out[i] = int32(q)
	}
	return out
}

// QuantizeUnsigned quantizes real-valued pre-activation values (standard
// deviation std) through ReLU and a uniform unsigned quantizer to
// [0, 1<<bits).
func QuantizeUnsigned(x []float64, std float64, cfg Config) []int32 {
	clip := cfg.ClipSigma * std
	qmax := float64(int32(1)<<cfg.Bits - 1)
	scale := clip / qmax
	out := make([]int32, len(x))
	for i, v := range x {
		if v <= 0 {
			continue // ReLU
		}
		q := math.Round(v / scale)
		if q > qmax {
			q = qmax
		}
		out[i] = int32(q)
	}
	return out
}

// PruneToDensity zeroes the smallest-magnitude values of data in place until
// at most ceil(density*len) non-zeros remain (magnitude pruning). Values
// already zero count toward the pruned set. It returns the achieved density.
func PruneToDensity(data []int32, density float64) float64 {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("quant: invalid target density %v", density))
	}
	keep := int(math.Ceil(density * float64(len(data))))
	nz := 0
	for _, v := range data {
		if v != 0 {
			nz++
		}
	}
	if nz <= keep {
		return float64(nz) / float64(len(data))
	}
	// Threshold selection via magnitude histogram (values are small ints).
	maxAbs := 0
	for _, v := range data {
		a := int(v)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	hist := make([]int, maxAbs+1)
	for _, v := range data {
		a := int(v)
		if a < 0 {
			a = -a
		}
		hist[a]++
	}
	// Find smallest threshold t such that count(|v| > t) <= keep.
	remain := nz
	t := 0
	for ; t <= maxAbs; t++ {
		if t > 0 {
			remain -= hist[t]
		}
		if remain <= keep {
			break
		}
	}
	surplus := keep - remain // how many values at magnitude t+? may be kept extra
	kept := 0
	for i, v := range data {
		a := v
		if a < 0 {
			a = -a
		}
		switch {
		case a == 0:
		case int(a) > t:
			kept++
		case int(a) == t && surplus > 0:
			surplus--
			kept++
		default:
			data[i] = 0
		}
	}
	return float64(kept) / float64(len(data))
}

// Stats summarizes the sparsity structure of a quantized operand at a given
// atom granularity.
type Stats struct {
	Len          int     // total values
	NonZero      int     // non-zero values
	ValueDensity float64 // αv or βv
	AtomDensity  float64 // αa or βa (among atoms of non-zero values)
	NonZeroAtoms int     // compressed stream length
	DenseAtoms   int     // stream length with sparsity disabled
}

// Measure computes Stats over data at the given bit-width and atom size.
func Measure(data []int32, bits int, n atom.Granularity) Stats {
	s := Stats{Len: len(data)}
	for _, v := range data {
		if v != 0 {
			s.NonZero++
			s.NonZeroAtoms += atom.CountNonZero(v, bits, n)
		}
	}
	s.DenseAtoms = len(data) * n.Count(bits)
	if s.Len > 0 {
		s.ValueDensity = float64(s.NonZero) / float64(s.Len)
	}
	if s.NonZero > 0 {
		s.AtomDensity = float64(s.NonZeroAtoms) / float64(s.NonZero*n.Count(bits))
	}
	return s
}

// Sparsity returns 1 - ValueDensity, the fraction the paper's Figure 1 plots.
func (s Stats) Sparsity() float64 { return 1 - s.ValueDensity }
