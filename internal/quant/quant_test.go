package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ristretto/internal/atom"
)

func gaussians(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestQuantizeSignedRange(t *testing.T) {
	x := gaussians(10000, 1)
	for _, bits := range []int{2, 4, 8} {
		q := QuantizeSigned(x, 1, Config{Bits: bits, ClipSigma: DefaultWeightClip(bits)})
		limit := int32(1)<<(bits-1) - 1
		for _, v := range q {
			if v > limit || v < -limit {
				t.Fatalf("bits=%d value %d outside symmetric range ±%d", bits, v, limit)
			}
		}
	}
}

func TestQuantizeUnsignedRange(t *testing.T) {
	x := gaussians(10000, 2)
	for _, bits := range []int{2, 4, 8} {
		q := QuantizeUnsigned(x, 1, Config{Bits: bits, ClipSigma: DefaultActClip(bits)})
		limit := int32(1)<<bits - 1
		for _, v := range q {
			if v < 0 || v > limit {
				t.Fatalf("bits=%d value %d outside [0,%d]", bits, v, limit)
			}
		}
	}
}

func TestSparsityGrowsAsBitsShrink(t *testing.T) {
	// The core mechanism behind Figure 1: coarser quantization steps send
	// more values to the zero bin, for both weights and activations.
	x := gaussians(200000, 3)
	prevW, prevA := -1.0, -1.0
	for _, bits := range []int{8, 6, 4, 2} {
		w := QuantizeSigned(x, 1, Config{Bits: bits, ClipSigma: DefaultWeightClip(bits)})
		a := QuantizeUnsigned(x, 1, Config{Bits: bits, ClipSigma: DefaultActClip(bits)})
		ws := Measure(w, bits, 2).Sparsity()
		as := Measure(a, bits, 2).Sparsity()
		if ws <= prevW {
			t.Fatalf("weight sparsity not increasing: %v then %v at %d bits", prevW, ws, bits)
		}
		if as <= prevA {
			t.Fatalf("activation sparsity not increasing: %v then %v at %d bits", prevA, as, bits)
		}
		prevW, prevA = ws, as
	}
}

func TestTwoBitSparsityNearPaperAverages(t *testing.T) {
	// Paper: unpruned 2-bit models average 47.43% weight and 75.25%
	// activation sparsity. Our statistical substitute should land in the
	// same neighbourhood (±10 points).
	x := gaussians(500000, 4)
	w := QuantizeSigned(x, 1, Config{Bits: 2, ClipSigma: DefaultWeightClip(2)})
	a := QuantizeUnsigned(x, 1, Config{Bits: 2, ClipSigma: DefaultActClip(2)})
	ws := Measure(w, 2, 2).Sparsity()
	as := Measure(a, 2, 2).Sparsity()
	if math.Abs(ws-0.4743) > 0.10 {
		t.Errorf("2-bit weight sparsity %.3f too far from paper 0.474", ws)
	}
	if math.Abs(as-0.7525) > 0.10 {
		t.Errorf("2-bit activation sparsity %.3f too far from paper 0.753", as)
	}
}

func TestPruneToDensityExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]int32, 1000)
	for i := range data {
		data[i] = int32(rng.Intn(255) - 127)
	}
	got := PruneToDensity(data, 0.3)
	nz := 0
	for _, v := range data {
		if v != 0 {
			nz++
		}
	}
	if nz != 300 {
		t.Fatalf("kept %d non-zeros, want 300", nz)
	}
	if got != 0.3 {
		t.Fatalf("achieved density %v", got)
	}
}

func TestPruneKeepsLargestMagnitudes(t *testing.T) {
	data := []int32{1, -9, 2, 8, -3, 7, 4, -6, 5, 0}
	PruneToDensity(data, 0.3)
	want := map[int32]bool{-9: true, 8: true, 7: true}
	for _, v := range data {
		if v != 0 && !want[v] {
			t.Fatalf("kept %d, which is not among the 3 largest magnitudes: %v", v, data)
		}
	}
}

func TestPruneNoOpWhenAlreadySparse(t *testing.T) {
	data := []int32{0, 0, 5, 0}
	got := PruneToDensity(data, 0.9)
	if data[2] != 5 || got != 0.25 {
		t.Fatalf("prune altered already-sparse data: %v density %v", data, got)
	}
}

func TestPruneDensityProperty(t *testing.T) {
	f := func(seed int64, d8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		density := float64(d8%100) / 100
		data := make([]int32, 500)
		for i := range data {
			data[i] = int32(rng.Intn(31) - 15)
		}
		PruneToDensity(data, density)
		nz := 0
		for _, v := range data {
			if v != 0 {
				nz++
			}
		}
		return nz <= int(math.Ceil(density*500))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	// values: 0, 1 (one atom), 5 (0b0101: two atoms) at 4 bits, 2-bit atoms.
	s := Measure([]int32{0, 1, 5}, 4, 2)
	if s.NonZero != 2 || s.NonZeroAtoms != 3 || s.DenseAtoms != 6 {
		t.Fatalf("Measure = %+v", s)
	}
	if s.ValueDensity != 2.0/3.0 {
		t.Fatalf("ValueDensity = %v", s.ValueDensity)
	}
	if s.AtomDensity != 3.0/4.0 {
		t.Fatalf("AtomDensity = %v", s.AtomDensity)
	}
	if math.Abs(s.Sparsity()-1.0/3.0) > 1e-12 {
		t.Fatalf("Sparsity = %v", s.Sparsity())
	}
}

func TestMeasureConsistentWithAtomPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]int32, 2000)
	for i := range data {
		if rng.Intn(2) == 0 {
			data[i] = int32(rng.Intn(127))
		}
	}
	s := Measure(data, 8, 2)
	if s.NonZeroAtoms != atom.TotalNonZeroAtoms(data, 8, 2) {
		t.Fatal("Measure disagrees with atom.TotalNonZeroAtoms")
	}
}
