// Package crashmatrix is the crash-consistency harness: it replays every
// on-disk state an ill-timed crash or torn write could leave behind — one
// file per byte-truncation point — and asserts the reader's contract on
// each: a store opened on that state serves the old value or the new
// value, never a hybrid, and never an error that poisons the run.
//
// The matrices themselves live in this package's tests (the cell cache's
// entry framing, the experiment checkpoint journal) and in
// internal/fleet's (the fleet journal, whose reader is unexported). They
// are the executable form of the durability claims in ARCHITECTURE.md:
// safeio.WriteFile's rename discipline means a torn temp file leaves the
// old entry intact, and the crc-guarded journal line framing means a torn
// tail line is skipped, not misparsed.
package crashmatrix

import "fmt"

// Replay invokes check once for every prefix of data, from 0 bytes (the
// file was created but nothing reached the disk) through len(data) (the
// write completed) — each prefix being a state a crash or torn write could
// leave behind. The first failing prefix aborts the replay with its
// truncation point in the error.
func Replay(data []byte, check func(n int, prefix []byte) error) error {
	for n := 0; n <= len(data); n++ {
		if err := check(n, data[:n]); err != nil {
			return fmt.Errorf("crashmatrix: prefix %d/%d: %w", n, len(data), err)
		}
	}
	return nil
}
