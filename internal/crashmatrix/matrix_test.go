package crashmatrix_test

// The cell-cache and checkpoint-journal crash matrices: every byte
// truncation point of an entry file or journal is replayed and the reader
// must serve the old value or the new value — never a hybrid, never
// corrupt bytes. The fleet journal's matrix lives in internal/fleet
// (its reader is unexported).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ristretto/internal/cellcache"
	"ristretto/internal/crashmatrix"
	"ristretto/internal/experiments"
	"ristretto/internal/telemetry"
)

const fp = "aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899"

func openCache(t *testing.T, dir string) *cellcache.Cache {
	t.Helper()
	r := telemetry.NewRegistry()
	r.SetEnabled(true)
	c, err := cellcache.Open(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encodedEntry captures the exact on-disk bytes the cache writes for a
// payload, by putting it in a scratch cache and reading the file back.
func encodedEntry(t *testing.T, payload []byte) []byte {
	t.Helper()
	c := openCache(t, filepath.Join(t.TempDir(), "scratch"))
	if err := c.Put(fp, payload); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.EntryPath(fp))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCellEntryTruncationMatrix plants every prefix of an encoded cache
// entry at the entry's path — the state a lying disk or a torn in-place
// write would leave — and asserts Get serves exactly the full payload
// (complete prefix) or detects corruption and misses (every other prefix).
// No prefix may ever be served as a payload.
func TestCellEntryTruncationMatrix(t *testing.T) {
	payload := []byte("rows\nwith\nnewlines\nand binary \x00\xff tail")
	encoded := encodedEntry(t, payload)
	c := openCache(t, filepath.Join(t.TempDir(), "cells"))
	p := c.EntryPath(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	err := crashmatrix.Replay(encoded, func(n int, prefix []byte) error {
		if err := os.WriteFile(p, prefix, 0o644); err != nil {
			return err
		}
		got, ok := c.Get(fp)
		if ok && !bytes.Equal(got, payload) {
			return fmt.Errorf("served a hybrid: %q", got)
		}
		if n == len(encoded) && !ok {
			return fmt.Errorf("complete entry missed")
		}
		if n < len(encoded) && ok {
			return fmt.Errorf("truncated entry served as a hit")
		}
		// A detected-corrupt entry must also have been deleted, so it can
		// never be served by a later reader either.
		if !ok && n > 0 {
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				return fmt.Errorf("corrupt entry left on disk (stat err %v)", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTornTempLeavesOldEntryServed models the crash window of
// safeio.WriteFile's rename discipline: the new entry's temp file holds
// only a prefix and the rename never happened. The old entry at the real
// path must keep serving, bit for bit, for every torn-temp prefix.
func TestTornTempLeavesOldEntryServed(t *testing.T) {
	oldPayload := []byte(`[{"id":"old","rows":[["1","2"]]}]`)
	newPayload := []byte(`[{"id":"new","rows":[["3","4"]]}]`)
	encodedNew := encodedEntry(t, newPayload)

	c := openCache(t, filepath.Join(t.TempDir(), "cells"))
	if err := c.Put(fp, oldPayload); err != nil {
		t.Fatal(err)
	}
	entry := c.EntryPath(fp)
	tmp := filepath.Join(filepath.Dir(entry), "."+fp+".tmp123456")
	err := crashmatrix.Replay(encodedNew, func(n int, prefix []byte) error {
		if err := os.WriteFile(tmp, prefix, 0o600); err != nil {
			return err
		}
		got, ok := c.Get(fp)
		if !ok {
			return fmt.Errorf("old entry missed with torn temp present")
		}
		if !bytes.Equal(got, oldPayload) {
			return fmt.Errorf("old entry corrupted by torn temp: %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointJournalTruncationMatrix replays every byte truncation of a
// three-cell checkpoint journal: a resume over any prefix must see each
// cell either absent (re-run it) or byte-identical to what was journaled —
// and cells must disappear from the tail only, never from the middle
// (earlier fsynced records stay durable).
func TestCheckpointJournalTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.journal")
	j, err := experiments.OpenJournal(path, "crashmatrix", "fp-1", false)
	if err != nil {
		t.Fatal(err)
	}
	cells := []string{"cell-a", "cell-b", "cell-c"}
	want := map[string]json.RawMessage{}
	for i, cell := range cells {
		payload := map[string]any{"cell": cell, "rows": []int{i, i + 1}}
		if err := j.Append(cell, payload); err != nil {
			t.Fatal(err)
		}
		raw, ok := j.Lookup(cell)
		if !ok {
			t.Fatalf("%s not visible after Append", cell)
		}
		want[cell] = raw
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	replayPath := filepath.Join(dir, "replay.journal")
	err = crashmatrix.Replay(data, func(n int, prefix []byte) error {
		if err := os.WriteFile(replayPath, prefix, 0o644); err != nil {
			return err
		}
		j2, err := experiments.OpenJournal(replayPath, "crashmatrix", "fp-1", true)
		if err != nil {
			return fmt.Errorf("resume failed: %w", err)
		}
		defer j2.Close()
		seenPresent, missing := false, 0
		for i := len(cells) - 1; i >= 0; i-- { // newest first: absences must be a suffix
			cell := cells[i]
			raw, ok := j2.Lookup(cell)
			if !ok {
				// A missing newer cell with older cells present is the
				// expected tail truncation; a missing OLDER cell while a
				// newer one survived would mean a fsynced record vanished.
				if seenPresent {
					return fmt.Errorf("%s missing while a newer cell survived", cell)
				}
				missing++
				continue
			}
			seenPresent = true
			if !bytes.Equal(raw, want[cell]) {
				return fmt.Errorf("%s resumed as a hybrid: %s", cell, raw)
			}
		}
		if n == len(data) && missing > 0 {
			return fmt.Errorf("intact journal lost %d cells", missing)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointJournalDurabilityIsPrefixMonotone asserts the stronger
// tail-only property directly: once a truncation point is past cell K's
// record, every replay at or beyond that point must still serve cell K.
func TestCheckpointJournalDurabilityIsPrefixMonotone(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.journal")
	j, err := experiments.OpenJournal(path, "crashmatrix", "fp-1", false)
	if err != nil {
		t.Fatal(err)
	}
	cells := []string{"cell-a", "cell-b", "cell-c"}
	durableAt := map[string]int{} // journal size after each cell's fsynced Append
	for i, cell := range cells {
		if err := j.Append(cell, map[string]any{"cell": cell, "rows": []int{i}}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		durableAt[cell] = int(info.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayPath := filepath.Join(dir, "replay.journal")
	err = crashmatrix.Replay(data, func(n int, prefix []byte) error {
		if err := os.WriteFile(replayPath, prefix, 0o644); err != nil {
			return err
		}
		j2, err := experiments.OpenJournal(replayPath, "crashmatrix", "fp-1", true)
		if err != nil {
			return fmt.Errorf("resume failed: %w", err)
		}
		defer j2.Close()
		for _, cell := range cells {
			if _, ok := j2.Lookup(cell); !ok && n >= durableAt[cell] {
				return fmt.Errorf("%s durable at %d bytes but missing", cell, durableAt[cell])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
