package experiments

import (
	"fmt"
	"math"

	"ristretto/internal/atom"
	"ristretto/internal/model"
	"ristretto/internal/workload"
)

// Bench owns the shared state of an experiment run: the benchmark networks,
// a deterministic seed, an optional spatial scale-down for quick runs, and a
// cache of generated layer statistics so each (network, precision,
// granularity) workload is synthesized once.
type Bench struct {
	Seed  int64
	Scale int      // divide layer H/W by this (1 = paper scale); densities are unaffected
	Nets  []string // restrict to these networks (nil = full benchmark)

	cache map[string][]workload.LayerStats
}

// NewBench returns a Bench at full scale.
func NewBench(seed int64) *Bench {
	return &Bench{Seed: seed, Scale: 1, cache: map[string][]workload.LayerStats{}}
}

// NewQuickBench returns a Bench with spatial dimensions divided by scale —
// cycle counts shrink proportionally but every ratio the figures report is
// preserved, because densities and per-value statistics do not change.
func NewQuickBench(seed int64, scale int) *Bench {
	b := NewBench(seed)
	b.Scale = scale
	return b
}

// PrecisionNames are the four quantization settings of the evaluation.
var PrecisionNames = []string{"8b", "4b", "2b", "mix2/4"}

// precisionOf maps a name to a per-layer assignment.
func precisionOf(n *model.Network, name string, seed int64) (model.Precision, error) {
	switch name {
	case "8b":
		return model.Uniform(n, 8), nil
	case "4b":
		return model.Uniform(n, 4), nil
	case "2b":
		return model.Uniform(n, 2), nil
	case "mix2/4":
		return model.Mixed24(n, uint64(seed)), nil
	}
	return model.Precision{}, fmt.Errorf("experiments: unknown precision %q", name)
}

// scaled returns the network with spatial dimensions divided by the bench
// scale (clamped so every layer still produces output).
func (b *Bench) scaled(n *model.Network) *model.Network {
	if b.Scale <= 1 {
		return n
	}
	s := &model.Network{Name: n.Name}
	for _, l := range n.Layers {
		l.H = clampDim(l.H/b.Scale, l.KH, l.Stride, l.Pad)
		l.W = clampDim(l.W/b.Scale, l.KW, l.Stride, l.Pad)
		s.Layers = append(s.Layers, l)
	}
	return s
}

func clampDim(d, k, stride, pad int) int {
	min := k + stride // guarantee at least a couple of output positions
	if d < min {
		return min
	}
	return d
}

// Stats returns (cached) layer statistics for a network under a precision
// name at the given atom granularity.
func (b *Bench) Stats(n *model.Network, precision string, gran atom.Granularity) []workload.LayerStats {
	key := fmt.Sprintf("%s|%s|%d|%d|%d", n.Name, precision, gran, b.Seed, b.Scale)
	if s, ok := b.cache[key]; ok {
		return s
	}
	sn := b.scaled(n)
	p, err := precisionOf(sn, precision, b.Seed)
	if err != nil {
		panic(err)
	}
	g := workload.NewGen(b.Seed ^ int64(hash(key)))
	s := g.NetworkStats(sn, p, gran, true)
	b.cache[key] = s
	return s
}

// Networks returns the benchmark networks of the paper (or the configured
// subset).
func (b *Bench) Networks() []*model.Network {
	all := model.Benchmark()
	if b.Nets == nil {
		return all
	}
	var out []*model.Network
	for _, n := range all {
		for _, want := range b.Nets {
			if n.Name == want {
				out = append(out, n)
			}
		}
	}
	return out
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
