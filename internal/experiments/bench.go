package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"ristretto/internal/atom"
	"ristretto/internal/model"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

// Bench owns the shared state of an experiment run: the benchmark networks,
// a deterministic seed, an optional spatial scale-down for quick runs, and a
// concurrency-safe cache of generated layer statistics so each (network,
// precision, granularity) workload is synthesized exactly once even when
// experiments run in parallel.
type Bench struct {
	Seed  int64
	Scale int      // divide layer H/W by this (1 = paper scale); densities are unaffected
	Nets  []string // restrict to these networks (nil = full benchmark)

	// Workers bounds the experiment worker pool (0 = runtime.NumCPU(),
	// 1 = serial). Every experiment derives per-cell seeds with
	// workload.DeriveSeed and collects results in index order, so output is
	// bit-identical for every value — the determinism test enforces it.
	Workers int

	// Ctx, when set, cancels in-flight sweeps: once it is done no new cell
	// starts and the run returns with the partial results journaled so far.
	// The CLIs wire SIGINT/SIGTERM here. Nil means context.Background().
	Ctx context.Context

	mu    sync.Mutex
	cache map[string]*statsEntry
}

// ctx returns the bench context, defaulting to Background.
func (b *Bench) ctx() context.Context {
	if b.Ctx != nil {
		return b.Ctx
	}
	return context.Background()
}

// Fingerprint identifies the workload configuration a checkpoint journal was
// written under: seed, scale and network subset. Resuming with a different
// fingerprint would silently mix incompatible cells, so the journal refuses.
func (b *Bench) Fingerprint() string {
	nets := "all"
	if b.Nets != nil {
		nets = strings.Join(b.Nets, "+")
	}
	return fmt.Sprintf("seed=%d scale=%d nets=%s", b.Seed, b.Scale, nets)
}

// mapCells is the fan-out used by every inner experiment sweep: runner.Map
// under the bench context and worker pool.
func mapCells[T any](b *Bench, n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(b.ctx(), b.pool(), n, fn)
}

// statsEntry is a single-flight cache slot: the first caller synthesizes the
// workload under the entry's once while concurrent callers for the same key
// wait, instead of duplicating the (expensive) generation or racing the map.
type statsEntry struct {
	once  sync.Once
	stats []workload.LayerStats
}

// NewBench returns a Bench at full scale.
func NewBench(seed int64) *Bench {
	return &Bench{Seed: seed, Scale: 1, cache: map[string]*statsEntry{}}
}

// NewQuickBench returns a Bench with spatial dimensions divided by scale —
// cycle counts shrink proportionally but every ratio the figures report is
// preserved, because densities and per-value statistics do not change.
func NewQuickBench(seed int64, scale int) *Bench {
	b := NewBench(seed)
	b.Scale = scale
	return b
}

// pool returns the worker pool experiments fan out on.
func (b *Bench) pool() *runner.Pool { return runner.New(b.Workers) }

// PrecisionNames are the four quantization settings of the evaluation.
var PrecisionNames = []string{"8b", "4b", "2b", "mix2/4"}

// precisionOf maps a name to a per-layer assignment.
func precisionOf(n *model.Network, name string, seed int64) (model.Precision, error) {
	switch name {
	case "8b":
		return model.Uniform(n, 8), nil
	case "4b":
		return model.Uniform(n, 4), nil
	case "2b":
		return model.Uniform(n, 2), nil
	case "mix2/4":
		return model.Mixed24(n, uint64(seed)), nil
	}
	return model.Precision{}, fmt.Errorf("experiments: unknown precision %q", name)
}

// scaled returns the network with spatial dimensions divided by the bench
// scale (clamped so every layer still produces output).
func (b *Bench) scaled(n *model.Network) *model.Network {
	if b.Scale <= 1 {
		return n
	}
	s := &model.Network{Name: n.Name}
	for _, l := range n.Layers {
		l.H = clampDim(l.H/b.Scale, l.KH, l.Stride, l.Pad)
		l.W = clampDim(l.W/b.Scale, l.KW, l.Stride, l.Pad)
		s.Layers = append(s.Layers, l)
	}
	return s
}

// Scaled exposes the bench's spatial scaling — the exact geometry Stats
// measures. The serving layer uses it to resolve the scaled shape of a
// single layer before driving the cycle-accurate core simulator on it.
func (b *Bench) Scaled(n *model.Network) *model.Network { return b.scaled(n) }

func clampDim(d, k, stride, pad int) int {
	min := k + stride // guarantee at least a couple of output positions
	if d < min {
		return min
	}
	return d
}

// Stats returns (cached) layer statistics for a network under a precision
// name at the given atom granularity. It is safe for concurrent use: the
// first caller for a key synthesizes the workload, concurrent callers block
// on that synthesis and share its result (single-flight).
func (b *Bench) Stats(n *model.Network, precision string, gran atom.Granularity) []workload.LayerStats {
	key := fmt.Sprintf("%s|%s|%d|%d|%d", n.Name, precision, gran, b.Seed, b.Scale)
	b.mu.Lock()
	if b.cache == nil {
		b.cache = map[string]*statsEntry{}
	}
	e, ok := b.cache[key]
	if !ok {
		e = &statsEntry{}
		b.cache[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		sn := b.scaled(n)
		p, err := precisionOf(sn, precision, b.Seed)
		if err != nil {
			panic(err) // precision names are validated at the CLI boundary
		}
		g := workload.NewGen(workload.DeriveSeed(b.Seed, "stats", n.Name, precision, fmt.Sprint(int(gran)), fmt.Sprint(b.Scale)))
		e.stats = g.NetworkStats(sn, p, gran, true)
		observeWorkload(precision, e.stats)
	})
	return e.stats
}

// observeWorkload flushes per-precision stream statistics of a freshly
// synthesized workload into the telemetry registry: value/atom densities
// (αv/βv/αa/βa, in percent) as histograms over layers, and total compressed
// stream lengths as counters. These are the measured numbers behind the
// deviation notes in EXPERIMENTS.md — how much shorter the atom streams get
// as precision narrows.
func observeWorkload(precision string, stats []workload.LayerStats) {
	r := telemetry.Default
	if !r.Enabled() {
		return
	}
	actVD := r.Histogram("workload.act_value_density_pct." + precision)
	wVD := r.Histogram("workload.weight_value_density_pct." + precision)
	actAD := r.Histogram("workload.act_atom_density_pct." + precision)
	wAD := r.Histogram("workload.weight_atom_density_pct." + precision)
	actAtoms := r.Counter("workload.act_atoms." + precision)
	wAtoms := r.Counter("workload.weight_atoms." + precision)
	denseAtoms := r.Counter("workload.dense_atoms." + precision)
	for _, st := range stats {
		actVD.Observe(int64(100 * st.A.ValueDensity))
		wVD.Observe(int64(100 * st.W.ValueDensity))
		actAD.Observe(int64(100 * st.A.AtomDensity))
		wAD.Observe(int64(100 * st.W.AtomDensity))
		actAtoms.Add(int64(st.A.NonZeroAtoms))
		wAtoms.Add(int64(st.W.NonZeroAtoms))
		denseAtoms.Add(int64(st.A.DenseAtoms + st.W.DenseAtoms))
	}
}

// Networks returns the benchmark networks of the paper (or the configured
// subset).
func (b *Bench) Networks() []*model.Network {
	all := model.Benchmark()
	if b.Nets == nil {
		return all
	}
	var out []*model.Network
	for _, n := range all {
		for _, want := range b.Nets {
			if n.Name == want {
				out = append(out, n)
			}
		}
	}
	return out
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
