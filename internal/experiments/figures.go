package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"ristretto/internal/atom"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/energy"
	"ristretto/internal/model"
	"ristretto/internal/quant"
	"ristretto/internal/workload"
)

// hash is FNV-1a, used for seed-independent per-layer jitter. Seeds are never
// derived from it directly — that is workload.DeriveSeed's job.
func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Figure1 reproduces the sparsity-vs-bit-width study: five networks, each
// uniformly quantized to 8/6/4/2 bits *without pruning*, reporting average
// weight and activation sparsity. Weights are clipped Gaussians and
// pre-activations rectified Gaussians (per-layer σ jitter stands in for
// cross-layer distribution variety); the paper's observation — sparsity
// boosts as bit-width narrows, reaching ≈47%/75% at 2 bits — emerges from
// the uniform quantizer's dead zone.
func (b *Bench) Figure1() *Result {
	r := &Result{
		ID:     "Figure 1",
		Title:  "average weight/activation sparsity vs quantization bit-width (no pruning)",
		Header: []string{"network", "bits", "weight sparsity", "act sparsity"},
		Notes:  "paper anchors: 2-bit averages 47.43% (weight) and 75.25% (activation)",
	}
	nets := []string{"AlexNet", "VGG-16", "GoogLeNet", "ResNet-18", "ResNet-50"}
	bitsList := []int{8, 6, 4, 2}
	const maxSamples = 60000
	type cell struct{ wSpar, aSpar float64 }
	cells, err := mapCells(b, len(nets)*len(bitsList), func(i int) (cell, error) {
		name := nets[i/len(bitsList)]
		bits := bitsList[i%len(bitsList)]
		n, err := model.ByName(name)
		if err != nil {
			return cell{}, err
		}
		// One independent stream per (network, bit-width) cell. The previous
		// expression, seed ^ hash(name)*bits, parsed as seed ^ (hash*bits):
		// multiplying by bits ∈ {2,4,8} shifted entropy out of the low bits
		// and correlated the streams of one network across bit-widths.
		rng := rand.New(rand.NewSource(workload.DeriveSeed(b.Seed, "figure1", name, strconv.Itoa(bits))))
		var wZero, wTot, aZero, aTot int
		for li, l := range n.Layers {
			wn := int(l.Weights())
			if wn > maxSamples {
				wn = maxSamples
			}
			an := int(l.Activations())
			if an > maxSamples {
				an = maxSamples
			}
			// Per-network/per-layer clip jitter (±10%): quantized
			// sparsity is scale-invariant for Gaussians, so varying σ
			// alone would make every network identical; real networks
			// differ in how tightly their learned clips sit.
			jitter := 0.9 + 0.2*float64(int(hash(fmt.Sprintf("%s%d", name, li))%100))/100
			wRaw := make([]float64, wn)
			for i := range wRaw {
				wRaw[i] = rng.NormFloat64()
			}
			aRaw := make([]float64, an)
			for i := range aRaw {
				aRaw[i] = rng.NormFloat64()
			}
			wq := quant.QuantizeSigned(wRaw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultWeightClip(bits) * jitter})
			aq := quant.QuantizeUnsigned(aRaw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultActClip(bits) * jitter})
			for _, v := range wq {
				if v == 0 {
					wZero++
				}
			}
			for _, v := range aq {
				if v == 0 {
					aZero++
				}
			}
			wTot += wn
			aTot += an
		}
		return cell{
			wSpar: float64(wZero) / float64(wTot),
			aSpar: float64(aZero) / float64(aTot),
		}, nil
	})
	if err != nil {
		return r.fail(err)
	}
	for i, c := range cells {
		r.AddRow(nets[i/len(bitsList)], fmt.Sprintf("%d", bitsList[i%len(bitsList)]),
			pct(c.wSpar), pct(c.aSpar))
	}
	return r
}

// Figure4 reproduces the Laconic sensitivity study: a tile of PEs (16
// parallel bit-serial multipliers each, 8-bit vectors, uniform random
// sparsity, 1000 runs), comparing theoretical latency, average PE latency
// (data sharing disabled) and lock-step tile latency across value-sparsity
// levels and two tile sizes.
func (b *Bench) Figure4() *Result {
	r := &Result{
		ID:     "Figure 4",
		Title:  "Laconic latency vs value sparsity (16-lane PEs, 8-bit vectors, 1000 runs)",
		Header: []string{"tile", "sparsity", "theoretical", "avg PE", "tile latency"},
		Notes:  "latencies in cycles per inner-product round; sparsity benefits shrink as the tile grows",
	}
	const runs = 1000
	cfgs := []laconic.Config{
		{PERows: 2, PECols: 4, Lanes: 16, Booth: true},
		{PERows: 6, PECols: 8, Lanes: 16, Booth: true},
	}
	var sps []float64
	for sp := 0.0; sp <= 0.90001; sp += 0.15 {
		sps = append(sps, sp)
	}
	type cell struct{ theo, avg, tile float64 }
	cells, err := mapCells(b, len(cfgs)*len(sps), func(i int) (cell, error) {
		cfg := cfgs[i/len(sps)]
		sp := sps[i%len(sps)]
		// Seed derived per (tile, sparsity) cell; the old b.Seed+sp*1000+PEs
		// mixing made neighbouring sweep points reuse overlapping streams.
		g := workload.NewGen(workload.DeriveSeed(b.Seed, "figure4",
			fmt.Sprintf("%dx%d", cfg.PERows, cfg.PECols), pct(sp)))
		var c cell
		for i := 0; i < runs; i++ {
			run := laconic.SimulateTile(g, cfg, 8, 1-sp)
			c.theo += run.TheoreticalCycles
			c.avg += run.AvgPECycles
			c.tile += float64(run.TileCycles)
		}
		return c, nil
	})
	if err != nil {
		return r.fail(err)
	}
	for i, c := range cells {
		cfg := cfgs[i/len(sps)]
		r.AddRow(fmt.Sprintf("%dx%d", cfg.PERows, cfg.PECols), pct(sps[i%len(sps)]),
			f2(c.theo/runs), f2(c.avg/runs), f2(c.tile/runs))
	}
	return r
}

// TableIV reports the activation shift ranges under 2-bit atoms.
func TableIV() *Result {
	r := &Result{
		ID:     "Table IV",
		Title:  "shift ranges under different activation bit-width (2-bit atoms)",
		Header: []string{"activation bits", "shift range"},
	}
	for _, bits := range []int{8, 6, 4, 2} {
		r.AddRow(fmt.Sprintf("%db", bits), fmt.Sprint(atom.Granularity(2).ShiftRange(bits)))
	}
	return r
}

// TableVI reports the area breakdown of the 32-tile / 32-multiplier
// Ristretto core (the paper's synthesis anchor).
func TableVI() *Result {
	a := energy.TableVI()
	r := &Result{
		ID:     "Table VI",
		Title:  "area breakdown of the Ristretto accelerator (mm², 28nm anchor)",
		Header: []string{"component", "area (mm2)"},
	}
	r.AddRow("Compute Tile / Atomizer", fmt.Sprintf("%.3f", a.Atomizer))
	r.AddRow("Compute Tile / Atomputer", fmt.Sprintf("%.3f", a.Atomputer))
	r.AddRow("Compute Tile / Atomulator", fmt.Sprintf("%.3f", a.Atomulator))
	r.AddRow("Compute Tile / Accu Buffer", fmt.Sprintf("%.3f", a.AccBuffer))
	r.AddRow("Data Buffer / Input", fmt.Sprintf("%.3f", a.InputBuf))
	r.AddRow("Data Buffer / Weight", fmt.Sprintf("%.3f", a.WeightBuf))
	r.AddRow("Data Buffer / Output", fmt.Sprintf("%.3f", a.OutputBuf))
	r.AddRow("Post-Processing Unit", fmt.Sprintf("%.3f", a.PostProc))
	r.AddRow("Others", fmt.Sprintf("%.3f", a.Others))
	r.AddRow("Total", fmt.Sprintf("%.3f", a.Total()))
	return r
}

// Taxonomy reproduces the descriptive Tables I–III and V: the design-space
// feature matrices of prior accelerators that motivate the work.
func Taxonomy() []*Result {
	t1 := &Result{
		ID: "Table I", Title: "state-of-the-art dual-sided sparse CNN accelerators",
		Header: []string{"accelerator", "pre-processing", "compute", "post-processing", "MAC", "precision"},
	}
	t1.AddRow("SCNN", "broadcast", "outer product", "crossbar", "2D array", "16b")
	t1.AddRow("SparTen", "inner-join", "inner product", "permute network", "scalar", "8b")
	t1.AddRow("SNAP", "associative index matching", "inner product", "two-level reduction", "2D array", "16b")

	t2 := &Result{
		ID: "Table II", Title: "state-of-the-art precision-scalable CNN accelerators",
		Header: []string{"accelerator", "MAC", "precision", "dataflow"},
	}
	t2.AddRow("LOOM", "bit-serial", "1~16b", "2D broadcast")
	t2.AddRow("Bit Fusion", "bit-decomposition", "2/4/8b", "2D systolic")
	t2.AddRow("BitBlade", "bit-decomposition", "2/4/8b", "2D broadcast")

	t3 := &Result{
		ID: "Table III", Title: "sparsity exploitation of precision-scalable accelerators",
		Header: []string{"accelerator", "weight", "activation", "weight bit", "activation bit"},
	}
	t3.AddRow("Bit-Pragmatic", "", "", "", "yes")
	t3.AddRow("Bit-Tactical", "yes", "", "", "yes")
	t3.AddRow("Laconic", "", "", "yes", "yes")
	t3.AddRow("Ristretto (this work)", "yes", "yes", "yes", "yes")

	t5 := &Result{
		ID: "Table V", Title: "baseline accelerators evaluated in this work",
		Header: []string{"accelerator", "value sparsity", "bit sparsity", "variable precision"},
	}
	t5.AddRow("Bit Fusion", "", "", "yes")
	t5.AddRow("Laconic", "", "yes", "yes")
	t5.AddRow("SparTen", "yes", "", "")
	t5.AddRow("SparTen-mp", "yes", "", "yes")
	return []*Result{t1, t2, t3, t5}
}
