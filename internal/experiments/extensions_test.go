package experiments

import "testing"

func TestExtTableIRistrettoWinsAtLowPrecision(t *testing.T) {
	b := quickBench()
	r := b.ExtTableI()
	g8 := cellF(t, r, findRow(t, r, "geomean", "8b"), 2)
	g2 := cellF(t, r, findRow(t, r, "geomean", "2b"), 2)
	if g2 <= g8 {
		t.Fatalf("Ristretto's edge must grow at 2 bits: 8b=%v 2b=%v", g8, g2)
	}
	// The value-level sparse designs (SCNN, SNAP) stay roughly flat across
	// precision: their 2b/8b ratio must be far below Ristretto's.
	sc8 := cellF(t, r, findRow(t, r, "geomean", "8b"), 3)
	sc2 := cellF(t, r, findRow(t, r, "geomean", "2b"), 3)
	if sc2/sc8 > (g2/g8)*0.8 {
		t.Fatalf("SCNN should not gain from narrow precision like Ristretto does (%v vs %v)", sc2/sc8, g2/g8)
	}
}

func TestExtFigure3ModifiedHelpsCyclesNotArea(t *testing.T) {
	b := quickBench()
	r := b.ExtFigure3()
	for i := range r.Rows {
		cy := cellF(t, r, i, 2)
		an := cellF(t, r, i, 3)
		if cy < 1 {
			t.Fatalf("row %d: modification slower in cycles (%v) on sparse workloads", i, cy)
		}
		if an >= cy {
			t.Fatalf("row %d: area normalization must eat into the gain (%v vs %v)", i, an, cy)
		}
		if rst := cellF(t, r, i, 4); rst <= an {
			t.Fatalf("row %d: Ristretto (%v) should beat the strawman (%v)", i, rst, an)
		}
	}
}

func TestExtStridePhaseDecompositionWins(t *testing.T) {
	b := quickBench()
	r := b.ExtStride()
	for i := range r.Rows {
		if sp := cellF(t, r, i, 3); sp < 1 {
			t.Fatalf("row %d: phase decomposition slower (%v)", i, sp)
		}
	}
	// AlexNet (stride-4 conv1) must benefit noticeably.
	if sp := cellF(t, r, findRow(t, r, "AlexNet"), 3); sp < 1.3 {
		t.Fatalf("AlexNet phase speedup %v too small for a stride-4 stem", sp)
	}
}

func TestExtFIFODepthMonotone(t *testing.T) {
	b := quickBench()
	r := b.ExtFIFO()
	prevStalls := int64(1 << 62)
	for i := range r.Rows {
		stalls := int64(cellF(t, r, i, 2))
		if stalls > prevStalls {
			t.Fatalf("row %d: stalls increased with deeper FIFO (%d after %d)", i, stalls, prevStalls)
		}
		prevStalls = stalls
	}
	if first := cellF(t, r, 0, 2); first == 0 {
		t.Fatal("depth-1 FIFO should stall in the contention configuration")
	}
}

func TestExtFormatsMetadataEffect(t *testing.T) {
	b := quickBench()
	r := b.ExtFormats()
	// At 8 bits every format should compress below dense; at 2 bits the
	// COO coordinate metadata should push it above the bitmap format.
	coo8 := cellF(t, r, 0, 2)
	if coo8 >= 100 {
		t.Fatalf("8-bit COO should compress: %v%%", coo8)
	}
	coo2 := cellF(t, r, 2, 2)
	bm2 := cellF(t, r, 2, 3)
	if coo2 <= bm2 {
		t.Fatalf("2-bit COO (%v%%) should be costlier than bitmap (%v%%) — metadata dominates", coo2, bm2)
	}
}

func TestExtHighPrecisionTradeoffs(t *testing.T) {
	b := quickBench()
	r := b.ExtHighPrecision()
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	spatial := cellF(t, r, 0, 1)
	temporal := cellF(t, r, 1, 1)
	if spatial <= 0 || temporal <= 0 {
		t.Fatal("step counts must be positive")
	}
}

func TestExtBalancingNetworks(t *testing.T) {
	b := quickBench()
	r := b.ExtBalancingNetworks()
	for i := range r.Rows {
		wa := cellF(t, r, i, 3)
		if wa > 1.0001 {
			t.Fatalf("row %d: w/a balancing (%v) worse than none", i, wa)
		}
	}
}

func TestExtMultiCoreScaling(t *testing.T) {
	b := quickBench()
	r := b.ExtMultiCore()
	prev := 0.0
	for i := range r.Rows {
		sp := cellF(t, r, i, 2)
		if sp < prev {
			t.Fatalf("row %d: speedup regressed (%v after %v)", i, sp, prev)
		}
		prev = sp
	}
	// Efficiency must degrade as tiles outgrow channel counts.
	e0 := cellF(t, r, 0, 3)
	eN := cellF(t, r, len(r.Rows)-1, 3)
	if eN >= e0 {
		t.Fatalf("scaling efficiency should fall: %v → %v", e0, eN)
	}
}
