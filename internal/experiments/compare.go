package experiments

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/energy"
	"ristretto/internal/model"
	"ristretto/internal/ristretto"
	"ristretto/internal/workload"
)

// precNetCells evaluates fn over the precision × network cross product on
// the bench worker pool, returning cells in precision-major order — the
// iteration order of the serial loops it replaces, so assembling rows from
// the returned slice reproduces the serial output bit for bit. A non-nil
// error (a panicking cell, or run cancellation) means the cells are partial
// and the caller must fail its Result instead of rendering zeros.
func precNetCells[T any](b *Bench, precs []string, fn func(prec string, n *model.Network) T) ([]T, error) {
	nets := b.Networks()
	return mapCells(b, len(precs)*len(nets), func(i int) (T, error) {
		return fn(precs[i/len(nets)], nets[i%len(nets)]), nil
	})
}

// Matched configurations of Section V:
//   - vs Bit Fusion: equal 2-bit multiplier counts — Ristretto 32 tiles × 32
//     mults vs an 8×8 fusion-unit array (1024 each).
//   - vs Laconic: equal compute area — Ristretto 32 × 16 vs 6×8 PEs × 16.
//   - vs SparTen: equal peak BitOps/cycle — Ristretto 32 × 16 vs 32 CUs.
func ristrettoVsBitFusion() ristretto.Config {
	return ristretto.Config{Tiles: 32, Tile: ristretto.TileConfig{Mults: 32, Gran: 2}, Policy: balance.WeightAct}
}

func ristrettoVsLaconic() ristretto.Config {
	return ristretto.Config{Tiles: 32, Tile: ristretto.TileConfig{Mults: 16, Gran: 2}, Policy: balance.WeightAct}
}

// Figure12 compares area-normalized performance against Bit Fusion on the
// six networks at 8/4/2-bit and mixed 2/4-bit precision, including the
// sparsity-disabled Ristretto-ns variant.
func (b *Bench) Figure12() *Result {
	r := &Result{
		ID:     "Figure 12",
		Title:  "performance vs Bit Fusion (normalized to Bit Fusion, area-normalized)",
		Header: []string{"network", "precision", "Ristretto", "Ristretto-ns", "Bit Fusion"},
		Notes:  "paper averages: 8.2x / 7.47x / 7.13x / 6.73x at 8/4/2/mixed bits; Ristretto-ns ≈ Bit Fusion",
	}
	rcfg := ristrettoVsBitFusion()
	nscfg := rcfg
	nscfg.Dense = true
	bfcfg := bitfusion.DefaultConfig()
	areaR := energy.RistrettoArea(rcfg.Tiles, rcfg.Tile.Mults, int(rcfg.Tile.Gran)).Total()
	areaB := energy.BitFusionArea(bfcfg.Units())
	type cell struct{ s, sns float64 }
	cells, err := precNetCells(b, PrecisionNames, func(prec string, n *model.Network) cell {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Cycles
		cns := ristretto.EstimateNetwork(stats, nscfg).Cycles
		cbf, _ := bitfusion.EstimateNetwork(stats, bfcfg)
		return cell{
			s:   areaNormSpeedup(cbf, areaB, cr, areaR),
			sns: areaNormSpeedup(cbf, areaB, cns, areaR),
		}
	})
	if err != nil {
		return r.fail(err)
	}
	nets := b.Networks()
	for pi, prec := range PrecisionNames {
		var sp, spNS []float64
		for ni, n := range nets {
			c := cells[pi*len(nets)+ni]
			sp = append(sp, c.s)
			spNS = append(spNS, c.sns)
			r.AddRow(n.Name, prec, f2(c.s), f2(c.sns), "1.00")
		}
		r.AddRow("geomean", prec, f2(geomean(sp)), f2(geomean(spNS)), "1.00")
	}
	return r
}

// areaNormSpeedup returns (perf/area of the contender) / (perf/area of the
// baseline): cyclesBase/cyclesNew × areaBase/areaNew.
func areaNormSpeedup(cyclesBase int64, areaBase float64, cyclesNew int64, areaNew float64) float64 {
	return (float64(cyclesBase) / float64(cyclesNew)) * (areaBase / areaNew)
}

// Figure13 compares energy consumption against Bit Fusion (normalized to
// Bit Fusion) averaged over the six networks per precision.
func (b *Bench) Figure13() *Result {
	r := &Result{
		ID:     "Figure 13",
		Title:  "energy vs Bit Fusion (normalized to Bit Fusion, benchmark average)",
		Header: []string{"precision", "Ristretto energy", "of which DRAM", "Bit Fusion"},
		Notes:  "paper: 41.84% / 32.29% / 33.33% / 26.16% of Bit Fusion at 8/4/2/mixed bits",
	}
	rcfg := ristrettoVsBitFusion()
	bfcfg := bitfusion.DefaultConfig()
	m := energy.Default()
	type cell struct{ ratio, dram float64 }
	cells, err := precNetCells(b, PrecisionNames, func(prec string, n *model.Network) cell {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Counters
		_, cbf := bitfusion.EstimateNetwork(stats, bfcfg)
		er := m.Split(cr)
		eb := m.Split(cbf)
		return cell{ratio: er.Total() / eb.Total(), dram: er.OffChipPJ / er.Total()}
	})
	if err != nil {
		return r.fail(err)
	}
	nNets := len(b.Networks())
	for pi, prec := range PrecisionNames {
		var ratios, dramShare []float64
		for ni := 0; ni < nNets; ni++ {
			c := cells[pi*nNets+ni]
			ratios = append(ratios, c.ratio)
			dramShare = append(dramShare, c.dram)
		}
		r.AddRow(prec, pct(geomean(ratios)), pct(geomean(dramShare)), "100%")
	}
	return r
}

// Figure14 compares performance against Laconic at matched compute area.
func (b *Bench) Figure14() *Result {
	r := &Result{
		ID:     "Figure 14",
		Title:  "performance vs Laconic (normalized to Laconic)",
		Header: []string{"network", "precision", "Ristretto speedup"},
		Notes:  "paper averages: 3.58x / 4.18x / 6.12x / 5.69x at 8/4/2/mixed bits (grows as precision narrows)",
	}
	rcfg := ristrettoVsLaconic()
	lcfg := laconic.DefaultConfig()
	cells, err := precNetCells(b, PrecisionNames, func(prec string, n *model.Network) float64 {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Cycles
		cl, _ := laconic.EstimateNetwork(stats, lcfg)
		return float64(cl) / float64(cr)
	})
	if err != nil {
		return r.fail(err)
	}
	nets := b.Networks()
	for pi, prec := range PrecisionNames {
		var sp []float64
		for ni, n := range nets {
			s := cells[pi*len(nets)+ni]
			sp = append(sp, s)
			r.AddRow(n.Name, prec, f2(s))
		}
		r.AddRow("geomean", prec, f2(geomean(sp)))
	}
	return r
}

// Figure15 measures one compute tile's performance against controlled atom
// and value sparsity on randomly generated tensors, using the cycle-accurate
// simulator.
func (b *Bench) Figure15() *Result {
	r := &Result{
		ID:     "Figure 15",
		Title:  "Ristretto cycle-simulated performance vs sparsity (one compute tile, random tensors)",
		Header: []string{"sweep", "density", "cycles", "speedup vs dense"},
		Notes:  "unlike Laconic (Figure 4), latency scales directly with stream density",
	}
	cfg := ristretto.Config{Tiles: 1, Tile: ristretto.TileConfig{Mults: 16, Gran: 2}}
	densities := []float64{1.0, 0.8, 0.6, 0.4, 0.2}
	type sweep struct {
		label       string
		valD, atomD func(d float64) float64
	}
	sweeps := []sweep{
		{"atom density (value density 1.0)", func(float64) float64 { return 1.0 }, func(d float64) float64 { return d }},
		{"value density (atom density 1.0)", func(d float64) float64 { return d }, func(float64) float64 { return 1.0 }},
	}
	cycles, err := mapCells(b, len(sweeps)*len(densities), func(i int) (int64, error) {
		sw := sweeps[i/len(densities)]
		d := densities[i%len(densities)]
		g := workload.NewGen(b.Seed)
		f := g.FeatureMapExact(8, 16, 16, 8, 2, sw.valD(d), sw.atomD(d))
		w := g.KernelsExact(16, 8, 3, 3, 8, 2, sw.valD(d), sw.atomD(d))
		return ristretto.SimulateConv(f, w, 1, 1, cfg).Cycles, nil
	})
	if err != nil {
		return r.fail(err)
	}
	dense := cycles[0] // both sweeps start at density 1.0 = the dense run
	for i, c := range cycles {
		r.AddRow(sweeps[i/len(densities)].label, f2(densities[i%len(densities)]),
			fmt.Sprint(c), f2(float64(dense)/float64(c)))
	}
	return r
}

// Figure16 compares energy against Laconic.
func (b *Bench) Figure16() *Result {
	r := &Result{
		ID:     "Figure 16",
		Title:  "energy vs Laconic (normalized to Laconic, benchmark average)",
		Header: []string{"precision", "Ristretto energy", "Laconic"},
		Notes:  "Laconic stores and moves operands densely; Ristretto's compressed formats cut buffer and DRAM energy",
	}
	rcfg := ristrettoVsLaconic()
	lcfg := laconic.DefaultConfig()
	m := energy.Default()
	cells, err := precNetCells(b, PrecisionNames, func(prec string, n *model.Network) float64 {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Counters
		_, cl := laconic.EstimateNetwork(stats, lcfg)
		return m.TotalPJ(cr) / m.TotalPJ(cl)
	})
	if err != nil {
		return r.fail(err)
	}
	nNets := len(b.Networks())
	for pi, prec := range PrecisionNames {
		r.AddRow(prec, pct(geomean(cells[pi*nNets:(pi+1)*nNets])), "100%")
	}
	return r
}

// Figure17 compares performance against SparTen and SparTen-mp at matched
// peak BitOps/cycle and buffer capacity.
func (b *Bench) Figure17() *Result {
	r := &Result{
		ID:     "Figure 17",
		Title:  "performance vs SparTen and SparTen-mp (normalized to SparTen, area-normalized)",
		Header: []string{"network", "precision", "Ristretto", "SparTen-mp", "SparTen"},
		Notes:  "paper averages: Ristretto 3.01x/7.70x/8.54x/8.25x at 8/4/2/mixed bits; SparTen-mp in between",
	}
	rcfg := ristrettoVsLaconic() // 32×16: same peak BitOps as 32 8-bit CUs
	stcfg := sparten.DefaultConfig()
	mpcfg := sparten.Config{CUs: 32, MP: true}
	areaR := energy.RistrettoArea(rcfg.Tiles, rcfg.Tile.Mults, int(rcfg.Tile.Gran)).Total()
	areaST := energy.SparTenArea(32, false)
	areaMP := energy.SparTenArea(32, true)
	type cell struct{ sR, sMP float64 }
	cells, err := precNetCells(b, PrecisionNames, func(prec string, n *model.Network) cell {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Cycles
		cst, _ := sparten.EstimateNetwork(stats, stcfg)
		cmp, _ := sparten.EstimateNetwork(stats, mpcfg)
		return cell{
			sR:  areaNormSpeedup(cst, areaST, cr, areaR),
			sMP: areaNormSpeedup(cst, areaST, cmp, areaMP),
		}
	})
	if err != nil {
		return r.fail(err)
	}
	nets := b.Networks()
	for pi, prec := range PrecisionNames {
		var spR, spMP []float64
		for ni, n := range nets {
			c := cells[pi*len(nets)+ni]
			spR = append(spR, c.sR)
			spMP = append(spMP, c.sMP)
			r.AddRow(n.Name, prec, f2(c.sR), f2(c.sMP), "1.00")
		}
		r.AddRow("geomean", prec, f2(geomean(spR)), f2(geomean(spMP)), "1.00")
	}
	return r
}

// Figure18 visualizes load balancing on conv3_2 of 4-bit ResNet-18: 128
// input feature maps and their kernels distributed over 32 compute tiles
// under the three policies.
func (b *Bench) Figure18() *Result {
	r := &Result{
		ID:     "Figure 18",
		Title:  "load balancing of conv3_2 (4-bit ResNet-18), 128 input fmaps onto 32 compute tiles",
		Header: []string{"policy", "max tile cost", "min tile cost", "mean", "imbalance (max/mean)"},
		Notes:  "w/a balancing exploits that CSC latency is known before execution (Eq. 5)",
	}
	n, err := model.ByName("ResNet-18")
	if err != nil {
		return r.fail(err)
	}
	stats := b.Stats(n, "4b", 2)
	var st workload.LayerStats
	found := false
	for _, s := range stats {
		if s.Layer.Name == "conv3_2" {
			st, found = s, true
			break
		}
	}
	if !found {
		return r.fail(fmt.Errorf("experiments: conv3_2 not found in ResNet-18"))
	}
	const mults = 32
	costs := make([]int64, st.Layer.C)
	for c := range costs {
		costs[c] = balance.Cost(st.ActAtomsPerChan[c], st.WAtomsPerChan[c], mults)
	}
	for _, p := range []balance.Policy{balance.None, balance.WeightOnly, balance.WeightAct} {
		groups := balance.Assign(p, costs, st.WAtomsPerChan, 32)
		gc := balance.GroupCosts(groups, costs)
		max, min, mean := balance.Spread(gc)
		r.AddRow(p.String(), fmt.Sprint(max), fmt.Sprint(min), f1(mean), f2(float64(max)/mean))
	}
	return r
}

// Figure19a reports compute-unit area and power across atom granularities at
// matched BitOps/cycle (64×1b, 16×2b, 7×3b multipliers per tile).
func (b *Bench) Figure19a() *Result {
	r := &Result{
		ID:     "Figure 19a",
		Title:  "compute-unit area and power vs atom granularity (matched BitOps/cycle)",
		Header: []string{"granularity", "multipliers/tile", "relative area", "relative power"},
		Notes:  "paper: the 1-bit variant costs 3.34x area and 3.51x power of the 2-bit design",
	}
	mults := map[int]int{1: 64, 2: 16, 3: 7}
	for _, gran := range []int{1, 2, 3} {
		a, p := energy.GranularityFactors(gran)
		r.AddRow(fmt.Sprintf("%db", gran), fmt.Sprint(mults[gran]), f2(a), f2(p))
	}
	return r
}

// Figure19b reports benchmark-average area-normalized performance across
// atom granularities and bit-widths.
func (b *Bench) Figure19b() *Result {
	r := &Result{
		ID:     "Figure 19b",
		Title:  "benchmark-average area-normalized performance vs atom granularity",
		Header: []string{"precision", "1-bit atoms", "2-bit atoms", "3-bit atoms"},
		Notes:  "paper: 2-bit achieves the best average performance",
	}
	mults := map[int]int{1: 64, 2: 16, 3: 7}
	precs := []string{"8b", "4b", "2b"}
	grans := []int{1, 2, 3}
	perfAt, err := mapCells(b, len(precs)*len(grans), func(i int) (float64, error) {
		prec := precs[i/len(grans)]
		gran := grans[i%len(grans)]
		cfg := ristretto.Config{Tiles: 32, Tile: ristretto.TileConfig{Mults: mults[gran], Gran: atom.Granularity(gran)}, Policy: balance.WeightAct}
		// Normalize by compute-unit area (Figure 19a's subject); the
		// buffer complement is identical across the three designs.
		ab := energy.RistrettoArea(32, mults[gran], gran)
		area := ab.Atomizer + ab.Atomputer + ab.Atomulator + ab.AccBuffer
		var perfs []float64
		for _, n := range b.Networks() {
			stats := b.Stats(n, prec, atom.Granularity(gran))
			cy := ristretto.EstimateNetwork(stats, cfg).Cycles
			perfs = append(perfs, 1e12/(float64(cy)*area))
		}
		return geomean(perfs), nil
	})
	if err != nil {
		return r.fail(err)
	}
	colPerf := map[int][]float64{}
	for pi, prec := range precs {
		row := []string{prec}
		base := perfAt[pi*len(grans)] // gran == 1 column
		for gi, gran := range grans {
			p := perfAt[pi*len(grans)+gi]
			colPerf[gran] = append(colPerf[gran], p/base)
			row = append(row, f2(p/base))
		}
		r.AddRow(row...)
	}
	avg := []string{"average"}
	for _, gran := range []int{1, 2, 3} {
		avg = append(avg, f2(geomean(colPerf[gran])))
	}
	r.AddRow(avg...)
	return r
}
