package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// One shared quick bench for all tests: scale-8 spatial dims, two networks.
// Ratios at quick scale are noisier than the full-scale runs recorded in
// EXPERIMENTS.md, so assertions here are directional.
func quickBench() *Bench {
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet", "ResNet-18"}
	return b
}

func cellF(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(r.Cell(row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q not numeric: %v", r.ID, row, col, r.Cell(row, col), err)
	}
	return v
}

func findRow(t *testing.T, r *Result, match ...string) int {
	t.Helper()
outer:
	for i, row := range r.Rows {
		for j, m := range match {
			if m != "" && (j >= len(row) || row[j] != m) {
				continue outer
			}
		}
		return i
	}
	t.Fatalf("%s: no row matching %v", r.ID, match)
	return -1
}

func TestFigure1Trend(t *testing.T) {
	r := NewQuickBench(1, 8).Figure1()
	if len(r.Rows) != 5*4 {
		t.Fatalf("%d rows, want 20", len(r.Rows))
	}
	// Per network: sparsity at 2 bits must exceed sparsity at 8 bits, for
	// both operands; 2-bit values should be near the paper anchors.
	for net := 0; net < 5; net++ {
		w8, a8 := cellF(t, r, net*4, 2), cellF(t, r, net*4, 3)
		w2, a2 := cellF(t, r, net*4+3, 2), cellF(t, r, net*4+3, 3)
		if w2 <= w8 || a2 <= a8 {
			t.Fatalf("row %d: sparsity not increasing (w %v→%v, a %v→%v)", net, w8, w2, a8, a2)
		}
		if w2 < 35 || w2 > 60 {
			t.Errorf("2-bit weight sparsity %.1f%% far from paper 47.4%%", w2)
		}
		if a2 < 63 || a2 > 88 {
			t.Errorf("2-bit act sparsity %.1f%% far from paper 75.3%%", a2)
		}
	}
}

func TestFigure4Invariants(t *testing.T) {
	r := NewQuickBench(1, 8).Figure4()
	for i := range r.Rows {
		theo, avg, tile := cellF(t, r, i, 2), cellF(t, r, i, 3), cellF(t, r, i, 4)
		if theo > avg+1e-9 || avg > tile+1e-9 {
			t.Fatalf("row %d: ordering violated (%v %v %v)", i, theo, avg, tile)
		}
	}
	// Headline: on the large tile, 60% sparsity cuts theoretical latency by
	// >2× but tile latency by much less.
	dense := findRow(t, r, "6x8", "0.00%")
	sparse := findRow(t, r, "6x8", "60.00%")
	theoGain := cellF(t, r, dense, 2) / cellF(t, r, sparse, 2)
	tileGain := cellF(t, r, dense, 4) / cellF(t, r, sparse, 4)
	if theoGain < 2 {
		t.Fatalf("theoretical gain %v too small", theoGain)
	}
	if tileGain > theoGain*0.75 {
		t.Fatalf("tile latency too sensitive to sparsity: gain %v vs theoretical %v", tileGain, theoGain)
	}
}

func TestTableIVContent(t *testing.T) {
	r := TableIV()
	if r.Cell(0, 1) != "[0 2 4 6]" || r.Cell(3, 1) != "[0]" {
		t.Fatalf("Table IV wrong: %v", r.Rows)
	}
}

func TestTableVITotal(t *testing.T) {
	r := TableVI()
	if r.Cell(len(r.Rows)-1, 1) != "1.296" {
		t.Fatalf("Table VI total = %s", r.Cell(len(r.Rows)-1, 1))
	}
}

func TestTaxonomyTables(t *testing.T) {
	ts := Taxonomy()
	if len(ts) != 4 {
		t.Fatalf("%d taxonomy tables", len(ts))
	}
	last := ts[3]
	row := findRow(t, last, "SparTen-mp")
	if last.Cell(row, 1) != "yes" || last.Cell(row, 3) != "yes" {
		t.Fatal("SparTen-mp row wrong in Table V")
	}
}

func TestFigure12RistrettoWins(t *testing.T) {
	b := quickBench()
	r := b.Figure12()
	for _, prec := range PrecisionNames {
		row := findRow(t, r, "geomean", prec)
		sp := cellF(t, r, row, 2)
		ns := cellF(t, r, row, 3)
		if sp <= 1 {
			t.Fatalf("%s: Ristretto geomean speedup %v not > 1", prec, sp)
		}
		if sp <= ns {
			t.Fatalf("%s: sparse Ristretto (%v) not faster than -ns (%v)", prec, sp, ns)
		}
	}
}

func TestFigure13EnergyBelowBitFusion(t *testing.T) {
	b := quickBench()
	r := b.Figure13()
	for i := range r.Rows {
		if e := cellF(t, r, i, 1); e >= 100 {
			t.Fatalf("row %d: Ristretto energy %v%% not below Bit Fusion", i, e)
		}
	}
}

func TestFigure14RistrettoBeatsLaconic(t *testing.T) {
	b := quickBench()
	r := b.Figure14()
	g8 := cellF(t, r, findRow(t, r, "geomean", "8b"), 2)
	g2 := cellF(t, r, findRow(t, r, "geomean", "2b"), 2)
	if g8 <= 1 || g2 <= 1 {
		t.Fatalf("Laconic wins somewhere: 8b=%v 2b=%v", g8, g2)
	}
	if g2 <= g8 {
		t.Fatalf("speedup should grow as precision narrows: 8b=%v 2b=%v", g8, g2)
	}
}

func TestFigure15SparsityScales(t *testing.T) {
	r := NewQuickBench(1, 8).Figure15()
	// Within each sweep, lower density → higher speedup, strictly.
	var prev float64
	for i := 0; i < 5; i++ {
		s := cellF(t, r, i, 3)
		if i > 0 && s <= prev {
			t.Fatalf("atom sweep not monotonic at row %d: %v then %v", i, prev, s)
		}
		prev = s
	}
	prev = 0
	for i := 5; i < 10; i++ {
		s := cellF(t, r, i, 3)
		if i > 5 && s <= prev {
			t.Fatalf("value sweep not monotonic at row %d: %v then %v", i, prev, s)
		}
		prev = s
	}
	// Unlike Laconic, 80% sparsity buys a large (>2.5×) speedup.
	if s := cellF(t, r, 4, 3); s < 2.5 {
		t.Fatalf("atom sparsity speedup %v too small at 0.2 density", s)
	}
}

func TestFigure16EnergyBelowLaconic(t *testing.T) {
	b := quickBench()
	r := b.Figure16()
	for i := range r.Rows {
		if e := cellF(t, r, i, 1); e >= 100 {
			t.Fatalf("row %d: energy %v%% not below Laconic", i, e)
		}
	}
}

func TestFigure17SpeedupGrowsAsPrecisionNarrows(t *testing.T) {
	b := quickBench()
	r := b.Figure17()
	g8 := cellF(t, r, findRow(t, r, "geomean", "8b"), 2)
	g2 := cellF(t, r, findRow(t, r, "geomean", "2b"), 2)
	if g8 <= 1 || g2 <= 1 {
		t.Fatalf("SparTen wins somewhere: 8b=%v 2b=%v", g8, g2)
	}
	if g2 <= g8 {
		t.Fatalf("speedup vs SparTen should grow at low precision: 8b=%v 2b=%v", g8, g2)
	}
}

func TestFigure18BalancingOrdering(t *testing.T) {
	b := quickBench()
	r := b.Figure18()
	none := cellF(t, r, findRow(t, r, "no balancing"), 4)
	wa := cellF(t, r, findRow(t, r, "w/a balancing"), 4)
	if wa > none {
		t.Fatalf("w/a imbalance %v worse than none %v", wa, none)
	}
	if wa > 1.1 {
		t.Fatalf("w/a imbalance %v should be near 1.0", wa)
	}
}

func TestFigure19a(t *testing.T) {
	r := NewBench(1).Figure19a()
	if cellF(t, r, 0, 2) <= cellF(t, r, 1, 2) {
		t.Fatal("1-bit area should exceed 2-bit")
	}
	if cellF(t, r, 2, 2) >= cellF(t, r, 1, 2) {
		t.Fatal("3-bit area should be below 2-bit")
	}
}

func TestFigure19bTwoBitWins(t *testing.T) {
	b := quickBench()
	r := b.Figure19b()
	// Paper: the 2-bit design achieves the highest *average* performance;
	// at 2-bit precision the 1-bit variant may edge ahead (it exploits
	// finer bit sparsity), but pays for it at 8 bits and in area.
	avg := findRow(t, r, "average")
	one, two, three := cellF(t, r, avg, 1), cellF(t, r, avg, 2), cellF(t, r, avg, 3)
	if two <= one || two <= three {
		t.Fatalf("2-bit average (%v) not the best of (1b=%v, 3b=%v)", two, one, three)
	}
	// And 3-bit must lose badly at 2-bit precision (underutilization).
	row2b := findRow(t, r, "2b")
	if cellF(t, r, row2b, 3) >= cellF(t, r, row2b, 2) {
		t.Fatal("3-bit atoms should underperform at 2-bit precision")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "X", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "two,with comma")
	if !strings.Contains(r.String(), "== X: t ==") {
		t.Fatal("String missing header")
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"two,with comma\"") {
		t.Fatalf("CSV escaping wrong: %q", sb.String())
	}
}

func TestBenchCache(t *testing.T) {
	b := quickBench()
	n := b.Networks()[0]
	s1 := b.Stats(n, "4b", 2)
	s2 := b.Stats(n, "4b", 2)
	if &s1[0] != &s2[0] {
		t.Fatal("stats not cached")
	}
	if len(b.Networks()) != 2 {
		t.Fatal("network subset not honoured")
	}
}
