package experiments

import (
	"strings"
	"testing"

	"ristretto/internal/telemetry"
)

// renderCSVs renders every experiment of a small suite as CSV bytes.
func renderCSVs(t *testing.T, workers int) string {
	t.Helper()
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet"}
	b.Workers = workers
	var sb strings.Builder
	for _, r := range b.All() {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.ID, r.Err)
		}
		if err := r.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// TestTelemetryBitInvisible is the off-switch guarantee of the telemetry
// subsystem: enabling the Default registry must not change a single byte of
// any experiment's CSV output — telemetry observes the computation, it
// never participates in it.
func TestTelemetryBitInvisible(t *testing.T) {
	telemetry.Default.SetEnabled(false)
	off := renderCSVs(t, 2)

	telemetry.Default.Reset()
	telemetry.Default.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.Default.SetEnabled(false)
		telemetry.Default.Reset()
	})
	on := renderCSVs(t, 2)

	if on != off {
		t.Fatalf("telemetry-on CSV output differs from telemetry-off (first diverging line: %q)", diffLine(off, on))
	}

	// And the observation side must actually have observed something: the
	// suite exercises both the parallel runner and the analytic model.
	snap := telemetry.Default.Snapshot()
	if snap.Counters["runner.cells"] == 0 {
		t.Error("telemetry enabled but runner.cells is zero")
	}
	if snap.Counters["ristretto.analytic.layers"] == 0 {
		t.Error("telemetry enabled but ristretto.analytic.layers is zero")
	}
	// The cycle-simulated experiments populate all three pipeline stages.
	for _, rep := range snap.StageReports() {
		if rep.Busy == 0 {
			t.Errorf("stage %s recorded no busy cycles", rep.Stage)
		}
	}
}
