package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// Golden tests pin the fully deterministic (workload-independent) tables so
// accidental changes to the encoded paper content are caught. Run with
// -update-golden after an intentional change.
func checkGolden(t *testing.T, name string, r *Result) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	got := r.String()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if string(want) != got {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableIV(t *testing.T) { checkGolden(t, "table_iv", TableIV()) }
func TestGoldenTableVI(t *testing.T) { checkGolden(t, "table_vi", TableVI()) }
func TestGoldenFigure19a(t *testing.T) {
	checkGolden(t, "figure_19a", NewBench(1).Figure19a())
}

func TestGoldenTaxonomy(t *testing.T) {
	for i, r := range Taxonomy() {
		checkGolden(t, "taxonomy_"+string(rune('1'+i)), r)
	}
}
