package experiments

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"ristretto/internal/faultinject"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// contextWithCancel is context.WithCancel(Background), named for readability
// at the chaos call sites.
func contextWithCancel() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// chaosBench is the small, fast configuration all chaos tests share; the
// journal fingerprint ties checkpoints to it.
func chaosBench(workers int) *Bench {
	b := NewQuickBench(1, 16)
	b.Nets = []string{"AlexNet"}
	b.Workers = workers
	return b
}

// renderResults concatenates the rendered results, the byte stream the
// bit-identity assertions compare.
func renderResults(rs []*Result) string {
	var sb strings.Builder
	for _, r := range rs {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// golden runs the sweep serially with no faults and returns its rendering.
func golden(t *testing.T) string {
	t.Helper()
	rs, _, err := chaosBench(1).AllChecked(RunOptions{})
	if err != nil {
		t.Fatalf("golden run failed: %v", err)
	}
	return renderResults(rs)
}

// TestChaosCancelResumeBitIdentical kills a journaled sweep mid-run via an
// injected kill (context cancellation fired by the fault schedule after a
// few cells), then resumes from the checkpoint and asserts the final output
// is bit-identical to an uninterrupted serial run.
func TestChaosCancelResumeBitIdentical(t *testing.T) {
	want := golden(t)
	jpath := filepath.Join(t.TempDir(), "sweep.journal")

	// Phase 1: run with a kill scheduled after 4 cell entries.
	b := chaosBench(2)
	ctx, cancel := contextWithCancel()
	defer cancel()
	b.Ctx = ctx
	j, err := OpenJournal(jpath, "chaos-test", b.Fingerprint(), false)
	if err != nil {
		t.Fatal(err)
	}
	sched := faultinject.New(faultinject.Spec{Seed: 7, KillAfter: 4, DelayProb: 1, Delay: 5 * time.Millisecond})
	sched.OnKill(cancel)
	_, rep, err := b.AllChecked(RunOptions{Journal: j, Fault: sched.Hook()})
	if err == nil || !rep.Interrupted {
		t.Fatalf("kill did not interrupt the run (err=%v, interrupted=%v)", err, rep.Interrupted)
	}
	done := j.Cells()
	j.Close()
	if done == 0 {
		t.Fatal("nothing journaled before the kill; checkpoint would resume from scratch")
	}
	if done >= len(chaosBench(1).jobs()) {
		t.Fatalf("all %d jobs journaled; the kill fired too late to test resume", done)
	}

	// Phase 2: resume. Only missing cells run; output must match the golden.
	b2 := chaosBench(2)
	j2, err := OpenJournal(jpath, "chaos-test", b2.Fingerprint(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Resumable() {
		t.Fatal("journal not recognized as resumable")
	}
	rs, rep2, err := b2.AllChecked(RunOptions{Journal: j2})
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if rep2.Resumed != done {
		t.Fatalf("resumed %d cells, journal held %d", rep2.Resumed, done)
	}
	if got := renderResults(rs); got != want {
		t.Errorf("resumed output differs from uninterrupted serial run (first diverging line: %q)", diffLine(want, got))
	}
}

// TestChaosSIGKILLResume is the hard-kill variant: the sweep runs in a
// re-executed copy of the test binary, the parent SIGKILLs it once a few
// cells are journaled (no signal handler can run), resumes in-process from
// the journal the dead process left behind, and diffs against the golden.
func TestChaosSIGKILLResume(t *testing.T) {
	jpath := os.Getenv("RISTRETTO_CHAOS_JOURNAL")
	if jpath != "" {
		// Child mode: journaled serial run with slowed cells so the parent
		// reliably catches us mid-sweep.
		b := chaosBench(1)
		j, err := OpenJournal(jpath, "chaos-test", b.Fingerprint(), false)
		if err != nil {
			t.Fatal(err)
		}
		slow := func(cell, attempt int) error { time.Sleep(100 * time.Millisecond); return nil }
		b.AllChecked(RunOptions{Journal: j, Fault: slow})
		j.Close()
		return
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	want := golden(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	jpath = filepath.Join(t.TempDir(), "sweep.journal")
	cmd := exec.Command(exe, "-test.run", "TestChaosSIGKILLResume$")
	cmd.Env = append(os.Environ(), "RISTRETTO_CHAOS_JOURNAL="+jpath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Poll the journal until a few cells are durable, then SIGKILL.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never journaled 2 cells")
		}
		if countJournalCells(jpath) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no flush, no handler, no goodbye
	cmd.Wait()

	b := chaosBench(2)
	j, err := OpenJournal(jpath, "chaos-test", b.Fingerprint(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Resumable() || j.Cells() == 0 {
		t.Fatalf("journal from killed process not resumable (cells=%d)", j.Cells())
	}
	rs, rep, err := b.AllChecked(RunOptions{Journal: j})
	if err != nil {
		t.Fatalf("resume after SIGKILL failed: %v", err)
	}
	if rep.Resumed == 0 {
		t.Fatal("no cells replayed from the dead process's journal")
	}
	if got := renderResults(rs); got != want {
		t.Errorf("post-SIGKILL resume differs from golden (first diverging line: %q)", diffLine(want, got))
	}
}

// countJournalCells counts durable cell records without the Journal
// machinery — the parent must read the file exactly as a cold resume would.
func countJournalCells(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if rec, ok := decodeLine(line); ok && rec.Kind == "cell" {
			n++
		}
	}
	return n
}

// TestChaosCorruptRecordSkipped flips a byte inside a journaled cell record:
// the crc must reject that record (it is recomputed on resume), every other
// record must survive, and the final output must still match the golden.
func TestChaosCorruptRecordSkipped(t *testing.T) {
	want := golden(t)
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	b := chaosBench(1)
	j, err := OpenJournal(jpath, "chaos-test", b.Fingerprint(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AllChecked(RunOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	total := j.Cells()
	j.Close()

	// Corrupt the payload of the third cell line (line 0 is the header).
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	mid := []byte(lines[3])
	mid[len(mid)/2] ^= 0x40
	lines[3] = string(mid)
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	b2 := chaosBench(1)
	j2, err := OpenJournal(jpath, "chaos-test", b2.Fingerprint(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.CorruptRecords() != 1 {
		t.Fatalf("corrupt records = %d, want 1", j2.CorruptRecords())
	}
	if j2.Cells() != total-1 {
		t.Fatalf("surviving cells = %d, want %d", j2.Cells(), total-1)
	}
	rs, rep, err := b2.AllChecked(RunOptions{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != total-1 {
		t.Fatalf("resumed %d, want %d (the corrupted cell must be recomputed)", rep.Resumed, total-1)
	}
	if got := renderResults(rs); got != want {
		t.Errorf("output after corrupt-record recovery differs from golden (first diverging line: %q)", diffLine(want, got))
	}
}

// TestChaosTransientFaultsRetriedToGolden injects transient errors into a
// third of the cells and lets bounded retry absorb them: the final output
// must be bit-identical to the no-fault golden and the retry counter must
// show the recovery actually happened.
func TestChaosTransientFaultsRetriedToGolden(t *testing.T) {
	want := golden(t)
	telemetry.Default.Reset()
	telemetry.Default.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.Default.SetEnabled(false)
		telemetry.Default.Reset()
	})
	sched := faultinject.New(faultinject.Spec{Seed: 11, Transient: 0.4, TransientAttempts: 1})
	b := chaosBench(4)
	rs, _, err := b.AllChecked(RunOptions{
		Fault:     sched.Hook(),
		Retries:   2,
		Retryable: faultinject.IsTransient,
	})
	if err != nil {
		t.Fatalf("retries did not absorb the injected faults: %v", err)
	}
	if got := renderResults(rs); got != want {
		t.Errorf("output under transient faults differs from golden (first diverging line: %q)", diffLine(want, got))
	}
	if retries := telemetry.Default.Snapshot().Counters["runner.retries"]; retries == 0 {
		t.Error("runner.retries = 0; the fault schedule never fired")
	}
}

// TestChaosPanicSurfacesAsCellError injects a panic into one job and checks
// the acceptance criterion directly: the process survives, the failed job
// surfaces as a placeholder Result carrying a *runner.CellError with a
// replayable seed, and the failure is recorded for the manifest.
func TestChaosPanicSurfacesAsCellError(t *testing.T) {
	b := chaosBench(2)
	rs, rep, err := b.AllChecked(RunOptions{
		KeepGoing: true,
		Fault: func(cell, attempt int) error {
			if cell == 2 { // the "figure4" job
				panic("injected chaos panic")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("keep-going run returned error: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(rep.Failures))
	}
	f := rep.Failures[0]
	if f.Cell != "figure4" || !f.Panic || f.Seed == 0 {
		t.Fatalf("failure record %+v lacks cell key / panic flag / replay seed", f)
	}
	var found bool
	for _, r := range rs {
		var ce *runner.CellError
		if r.Err != nil && errors.As(r.Err, &ce) {
			found = true
			if ce.Stack == nil || ce.Seed == 0 {
				t.Fatalf("CellError %+v missing stack or seed", ce)
			}
		}
	}
	if !found {
		t.Fatal("no placeholder Result carries the CellError")
	}
	// Every other job must have completed normally.
	if len(rs) != len(b.jobs())+3 { // taxonomy expands to 4 results, 1 job failed
		t.Logf("results = %d (informational)", len(rs))
	}
}

// TestChaosKeepGoingVsStop pins the two failure modes side by side.
func TestChaosKeepGoingVsStop(t *testing.T) {
	boom := func(cell, attempt int) error {
		if cell == 1 || cell == 5 {
			return errors.New("injected hard failure")
		}
		return nil
	}
	// Stop mode: lowest failing job wins, run aborts.
	b := chaosBench(2)
	_, _, err := b.AllChecked(RunOptions{Fault: boom})
	var ce *runner.CellError
	if !errors.As(err, &ce) || ce.Cell != 1 {
		t.Fatalf("stop mode err = %v, want CellError on job 1", err)
	}
	// Keep-going: both failures collected, everything else completes.
	b2 := chaosBench(2)
	_, rep, err := b2.AllChecked(RunOptions{KeepGoing: true, Fault: boom})
	if err != nil {
		t.Fatalf("keep-going returned error: %v", err)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("failures = %d, want 2", len(rep.Failures))
	}
}

// TestDSECheckpointResume covers the DSE grid's per-point journaling: an
// interrupted sweep resumes to a frontier bit-identical to the
// uninterrupted one.
func TestDSECheckpointResume(t *testing.T) {
	b := chaosBench(1)
	tiles, mults, grans := []int{8, 16}, []int{8, 16}, []int{1, 2}
	wantPts, err := b.DesignSpace("AlexNet", "4b", tiles, mults, grans)
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "dse.journal")
	b2 := chaosBench(1)
	ctx, cancel := contextWithCancel()
	defer cancel()
	b2.Ctx = ctx
	j, err := OpenJournal(jpath, "dse-test", b2.Fingerprint(), false)
	if err != nil {
		t.Fatal(err)
	}
	sched := faultinject.New(faultinject.Spec{Seed: 3, KillAfter: 3})
	sched.OnKill(cancel)
	b2.DesignSpaceOpts(RunOptions{Journal: j, Fault: sched.Hook()}, "AlexNet", "4b", tiles, mults, grans)
	saved := j.Cells()
	j.Close()
	if saved == 0 || saved >= len(tiles)*len(mults)*len(grans) {
		t.Fatalf("journaled %d points; kill mistimed", saved)
	}

	b3 := chaosBench(1)
	j2, err := OpenJournal(jpath, "dse-test", b3.Fingerprint(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	gotPts, err := b3.DesignSpaceOpts(RunOptions{Journal: j2}, "AlexNet", "4b", tiles, mults, grans)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPts) != len(wantPts) {
		t.Fatalf("resumed frontier has %d points, want %d", len(gotPts), len(wantPts))
	}
	for i := range wantPts {
		if gotPts[i] != wantPts[i] {
			t.Fatalf("point %d differs after resume: %+v vs %+v", i, gotPts[i], wantPts[i])
		}
	}
}

// TestJournalValidation pins the resume guard rails: fingerprint, tool and
// schema mismatches refuse to resume with an actionable error.
func TestJournalValidation(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(jpath, "toolA", "seed=1", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("cell1", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := OpenJournal(jpath, "toolA", "seed=2", true); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
	if _, err := OpenJournal(jpath, "toolB", "seed=1", true); err == nil || !strings.Contains(err.Error(), "toolB") {
		t.Fatalf("tool mismatch not rejected: %v", err)
	}
	j2, err := OpenJournal(jpath, "toolA", "seed=1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Resumable() || j2.Cells() != 1 {
		t.Fatalf("valid resume failed: resumable=%v cells=%d", j2.Resumable(), j2.Cells())
	}
	raw, ok := j2.Lookup("cell1")
	if !ok || !strings.Contains(string(raw), `"x":1`) {
		t.Fatalf("payload lost: %q (ok=%v)", raw, ok)
	}
	// A missing file with resume requested degrades to a fresh journal.
	j3, err := OpenJournal(filepath.Join(t.TempDir(), "missing"), "toolA", "seed=1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Resumable() {
		t.Fatal("missing file reported as resumable")
	}
}

// TestJournalDuplicateCellLatestWins: re-journaled cells supersede earlier
// records, the behaviour resumed runs rely on.
func TestJournalDuplicateCellLatestWins(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(jpath, "t", "f", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("c", 1)
	j.Append("c", 2)
	j.Close()
	j2, err := OpenJournal(jpath, "t", "f", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	raw, _ := j2.Lookup("c")
	if string(raw) != "2" {
		t.Fatalf("latest record did not win: %q", raw)
	}
}
