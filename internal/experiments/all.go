package experiments

import (
	"sync/atomic"
	"time"

	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// RunStats describes how a full sweep executed: the worker bound, the
// wall-clock time of the whole run, the summed per-experiment durations
// (what a serial run would roughly have cost), and the per-experiment
// timing breakdown that run manifests record. Speedup is the Work/Elapsed
// ratio — the effective parallelism achieved.
type RunStats struct {
	Experiments int
	Workers     int
	Elapsed     time.Duration
	Work        time.Duration

	// Timings lists one entry per experiment job in paper order: the result
	// IDs the job regenerated, total rows, and its wall time. Only the
	// durations vary run to run; IDs and rows are deterministic.
	Timings []telemetry.ExperimentTiming
}

// Speedup returns the effective wall-clock speedup over running the same
// experiments back to back.
func (s RunStats) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 1
	}
	return float64(s.Work) / float64(s.Elapsed)
}

// All runs every regenerated table and figure in paper order, fanning the
// independent experiments out over the bench worker pool. Results — content
// and order — are bit-identical for every Workers setting: each experiment
// derives its own random streams (workload.DeriveSeed) and shares workload
// synthesis through the single-flight stats cache.
func (b *Bench) All() []*Result {
	rs, _ := b.AllStats()
	return rs
}

// AllStats is All plus execution metadata for reporting wall-clock speedup.
func (b *Bench) AllStats() ([]*Result, RunStats) {
	one := func(f func() *Result) func() []*Result {
		return func() []*Result { return []*Result{f()} }
	}
	jobs := []func() []*Result{
		one(b.Figure1),
		Taxonomy,
		one(b.Figure4),
		one(TableIV),
		one(TableVI),
		one(b.Figure12),
		one(b.Figure13),
		one(b.Figure14),
		one(b.Figure15),
		one(b.Figure16),
		one(b.Figure17),
		one(b.Figure18),
		one(b.Figure19a),
		one(b.Figure19b),
		one(b.ExtTableI),
		one(b.ExtFigure3),
		one(b.ExtStride),
		one(b.ExtFIFO),
		one(b.ExtFormats),
		one(b.ExtHighPrecision),
		one(b.ExtBalancingNetworks),
		one(b.ExtMultiCore),
	}
	type jobOut struct {
		rs      []*Result
		elapsed time.Duration
	}
	var workNS atomic.Int64
	start := time.Now()
	groups, _ := runner.Map(b.pool(), len(jobs), func(i int) (jobOut, error) {
		t0 := time.Now()
		rs := jobs[i]()
		d := time.Since(t0)
		workNS.Add(int64(d))
		return jobOut{rs: rs, elapsed: d}, nil
	})
	var out []*Result
	stats := RunStats{Workers: b.pool().Workers()}
	for _, g := range groups {
		out = append(out, g.rs...)
		t := telemetry.ExperimentTiming{Millis: float64(g.elapsed.Nanoseconds()) / 1e6}
		for _, r := range g.rs {
			t.IDs = append(t.IDs, r.ID)
			t.Rows += len(r.Rows)
		}
		stats.Timings = append(stats.Timings, t)
	}
	stats.Experiments = len(out)
	stats.Elapsed = time.Since(start)
	stats.Work = time.Duration(workNS.Load())
	return out, stats
}

// Extensions runs every extension study (serially; All fans them out
// individually).
func (b *Bench) Extensions() []*Result {
	return []*Result{
		b.ExtTableI(), b.ExtFigure3(), b.ExtStride(), b.ExtFIFO(),
		b.ExtFormats(), b.ExtHighPrecision(), b.ExtBalancingNetworks(), b.ExtMultiCore(),
	}
}
