package experiments

import (
	"sync/atomic"
	"time"

	"ristretto/internal/runner"
)

// RunStats describes how a full sweep executed: the worker bound, the
// wall-clock time of the whole run, and the summed per-experiment durations
// (what a serial run would roughly have cost). Speedup is their ratio — the
// effective parallelism achieved.
type RunStats struct {
	Experiments int
	Workers     int
	Elapsed     time.Duration
	Work        time.Duration
}

// Speedup returns the effective wall-clock speedup over running the same
// experiments back to back.
func (s RunStats) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 1
	}
	return float64(s.Work) / float64(s.Elapsed)
}

// All runs every regenerated table and figure in paper order, fanning the
// independent experiments out over the bench worker pool. Results — content
// and order — are bit-identical for every Workers setting: each experiment
// derives its own random streams (workload.DeriveSeed) and shares workload
// synthesis through the single-flight stats cache.
func (b *Bench) All() []*Result {
	rs, _ := b.AllStats()
	return rs
}

// AllStats is All plus execution metadata for reporting wall-clock speedup.
func (b *Bench) AllStats() ([]*Result, RunStats) {
	one := func(f func() *Result) func() []*Result {
		return func() []*Result { return []*Result{f()} }
	}
	jobs := []func() []*Result{
		one(b.Figure1),
		Taxonomy,
		one(b.Figure4),
		one(TableIV),
		one(TableVI),
		one(b.Figure12),
		one(b.Figure13),
		one(b.Figure14),
		one(b.Figure15),
		one(b.Figure16),
		one(b.Figure17),
		one(b.Figure18),
		one(b.Figure19a),
		one(b.Figure19b),
		one(b.ExtTableI),
		one(b.ExtFigure3),
		one(b.ExtStride),
		one(b.ExtFIFO),
		one(b.ExtFormats),
		one(b.ExtHighPrecision),
		one(b.ExtBalancingNetworks),
		one(b.ExtMultiCore),
	}
	var workNS atomic.Int64
	start := time.Now()
	groups, _ := runner.Map(b.pool(), len(jobs), func(i int) ([]*Result, error) {
		t0 := time.Now()
		rs := jobs[i]()
		workNS.Add(int64(time.Since(t0)))
		return rs, nil
	})
	var out []*Result
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, RunStats{
		Experiments: len(out),
		Workers:     b.pool().Workers(),
		Elapsed:     time.Since(start),
		Work:        time.Duration(workNS.Load()),
	}
}

// Extensions runs every extension study (serially; All fans them out
// individually).
func (b *Bench) Extensions() []*Result {
	return []*Result{
		b.ExtTableI(), b.ExtFigure3(), b.ExtStride(), b.ExtFIFO(),
		b.ExtFormats(), b.ExtHighPrecision(), b.ExtBalancingNetworks(), b.ExtMultiCore(),
	}
}
