package experiments

// All runs every regenerated table and figure in paper order.
func (b *Bench) All() []*Result {
	var out []*Result
	out = append(out, b.Figure1())
	out = append(out, Taxonomy()...)
	out = append(out, b.Figure4())
	out = append(out, TableIV(), TableVI())
	out = append(out,
		b.Figure12(), b.Figure13(), b.Figure14(), b.Figure15(),
		b.Figure16(), b.Figure17(), b.Figure18(), b.Figure19a(), b.Figure19b(),
	)
	out = append(out, b.Extensions()...)
	return out
}
