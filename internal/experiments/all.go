package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

// RunStats describes how a full sweep executed: the worker bound, the
// wall-clock time of the whole run, the summed per-experiment durations
// (what a serial run would roughly have cost), and the per-experiment
// timing breakdown that run manifests record. Speedup is the Work/Elapsed
// ratio — the effective parallelism achieved.
type RunStats struct {
	Experiments int
	Workers     int
	Elapsed     time.Duration
	Work        time.Duration

	// Timings lists one entry per experiment job in paper order: the result
	// IDs the job regenerated, total rows, and its wall time. Only the
	// durations vary run to run; IDs and rows are deterministic.
	Timings []telemetry.ExperimentTiming
}

// Speedup returns the effective wall-clock speedup over running the same
// experiments back to back.
func (s RunStats) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 1
	}
	return float64(s.Work) / float64(s.Elapsed)
}

// RunOptions configures fault tolerance for a checked sweep. The zero value
// runs exactly like the plain All: no journal, stop at the first failing
// job, no timeouts or retries, no fault injection.
type RunOptions struct {
	// Journal, when set, records each completed job so an interrupted run
	// can resume: journaled jobs are replayed from the checkpoint instead of
	// re-executed, which is what makes resume output bit-identical to an
	// uninterrupted run.
	Journal *Journal

	// KeepGoing runs every job even after failures, surfacing each failed
	// job as a placeholder Result carrying its CellError instead of
	// aborting the sweep.
	KeepGoing bool

	// CellTimeout bounds each job's wall time (0 = none).
	CellTimeout time.Duration

	// Retries and Backoff configure bounded retry for transient job errors;
	// Retryable classifies them (nil with Retries > 0 retries everything
	// except cancellation).
	Retries   int
	Backoff   time.Duration
	Retryable func(error) bool

	// Fault is the fault-injection hook threaded into the runner (nil =
	// none). See internal/faultinject.
	Fault runner.Fault
}

// runnerCfg translates the options into the runner configuration for a
// sweep of n jobs keyed by keyOf.
func (o RunOptions) runnerCfg(seed int64, keyOf func(i int) string) runner.Cfg {
	return runner.Cfg{
		Timeout:   o.CellTimeout,
		KeepGoing: o.KeepGoing,
		Retries:   o.Retries,
		Backoff:   o.Backoff,
		Retryable: o.Retryable,
		Fault:     o.Fault,
		Seed:      func(i int) int64 { return workload.DeriveSeed(seed, "job", keyOf(i)) },
	}
}

// RunReport is RunStats plus the fault-tolerance outcome of a checked run.
type RunReport struct {
	RunStats

	// Resumed counts jobs replayed from the checkpoint journal instead of
	// executed.
	Resumed int

	// Interrupted is true when the run context was cancelled before every
	// job finished; the returned results are partial (but everything
	// completed is journaled when a Journal is set).
	Interrupted bool

	// Failures records every failed job, in job order.
	Failures []telemetry.CellFailure
}

// namedJob pairs an experiment job with the stable key it journals under.
type namedJob struct {
	key string
	run func() []*Result
}

// jobs returns every regenerated table and figure in paper order with its
// stable journal key. Keys are part of the checkpoint format: renaming one
// orphans its journaled cells.
func (b *Bench) jobs() []namedJob {
	one := func(f func() *Result) func() []*Result {
		return func() []*Result { return []*Result{f()} }
	}
	return []namedJob{
		{"figure1", one(b.Figure1)},
		{"taxonomy", Taxonomy},
		{"figure4", one(b.Figure4)},
		{"table4", one(TableIV)},
		{"table6", one(TableVI)},
		{"figure12", one(b.Figure12)},
		{"figure13", one(b.Figure13)},
		{"figure14", one(b.Figure14)},
		{"figure15", one(b.Figure15)},
		{"figure16", one(b.Figure16)},
		{"figure17", one(b.Figure17)},
		{"figure18", one(b.Figure18)},
		{"figure19a", one(b.Figure19a)},
		{"figure19b", one(b.Figure19b)},
		{"ext-tablei", one(b.ExtTableI)},
		{"ext-figure3", one(b.ExtFigure3)},
		{"ext-stride", one(b.ExtStride)},
		{"ext-fifo", one(b.ExtFIFO)},
		{"ext-formats", one(b.ExtFormats)},
		{"ext-highprec", one(b.ExtHighPrecision)},
		{"ext-balancing", one(b.ExtBalancingNetworks)},
		{"ext-multicore", one(b.ExtMultiCore)},
	}
}

// All runs every regenerated table and figure in paper order, fanning the
// independent experiments out over the bench worker pool. Results — content
// and order — are bit-identical for every Workers setting: each experiment
// derives its own random streams (workload.DeriveSeed) and shares workload
// synthesis through the single-flight stats cache.
func (b *Bench) All() []*Result {
	rs, _ := b.AllStats()
	return rs
}

// AllStats is All plus execution metadata for reporting wall-clock speedup.
func (b *Bench) AllStats() ([]*Result, RunStats) {
	rs, rep, _ := b.AllChecked(RunOptions{})
	return rs, rep.RunStats
}

// AllChecked is All under fault tolerance: jobs journal to a checkpoint,
// failures surface as placeholder Results with CellErrors, cancellation
// yields a partial (journaled) run, and a resumed run replays journaled
// jobs for bit-identical output. The returned error is non-nil only for a
// stop-mode job failure or a cancelled context; with KeepGoing the failures
// are in the report instead.
func (b *Bench) AllChecked(opts RunOptions) ([]*Result, RunReport, error) {
	jobs := b.jobs()
	type jobOut struct {
		rs      []*Result
		elapsed time.Duration
		resumed bool
	}
	var workNS atomic.Int64
	start := time.Now()
	telem := telemetry.Default.Enabled()
	cfg := opts.runnerCfg(b.Seed, func(i int) string { return jobs[i].key })
	groups, err := runner.MapCfg(b.ctx(), b.pool(), cfg, len(jobs), func(i int) (jobOut, error) {
		if opts.Journal != nil {
			if raw, ok := opts.Journal.Lookup(jobs[i].key); ok {
				rs, derr := decodeResults(raw)
				if derr != nil {
					return jobOut{}, fmt.Errorf("experiments: corrupt journal payload for %q: %w", jobs[i].key, derr)
				}
				if telem {
					telemetry.Default.Counter("runner.cells_resumed").Inc()
				}
				return jobOut{rs: rs, resumed: true}, nil
			}
		}
		t0 := time.Now()
		rs := jobs[i].run()
		d := time.Since(t0)
		workNS.Add(int64(d))
		if opts.Journal != nil && b.ctx().Err() == nil {
			// An interrupted job returns partial Results carrying a context
			// error; journaling those would freeze the partial rows into
			// every future resume. Only completed jobs are durable.
			if jerr := opts.Journal.Append(jobs[i].key, encodeResults(rs)); jerr != nil {
				return jobOut{}, fmt.Errorf("experiments: journaling %q: %w", jobs[i].key, jerr)
			}
		}
		return jobOut{rs: rs, elapsed: d}, nil
	})

	rep := RunReport{RunStats: RunStats{Workers: b.pool().Workers()}}
	failed := map[int]*runner.CellError{}
	for _, ce := range runner.AsCellErrors(err) {
		failed[ce.Cell] = ce
	}
	var out []*Result
	for i, g := range groups {
		if ce, ok := failed[i]; ok {
			// A failed job still occupies its slot in paper order, as a
			// placeholder Result carrying the replayable error.
			ph := &Result{ID: "Job " + jobs[i].key, Title: "experiment job failed", Err: ce}
			out = append(out, ph)
			rep.Failures = append(rep.Failures, telemetry.CellFailure{
				Cell:     jobs[i].key,
				Error:    ce.Err.Error(),
				Seed:     ce.Seed,
				Attempts: ce.Attempts,
				Panic:    ce.Stack != nil,
				TimedOut: ce.TimedOut,
			})
			continue
		}
		if g.rs == nil {
			continue // never started (cancelled or past the stop watermark)
		}
		if g.resumed {
			rep.Resumed++
		}
		out = append(out, g.rs...)
		t := telemetry.ExperimentTiming{Millis: float64(g.elapsed.Nanoseconds()) / 1e6}
		for _, r := range g.rs {
			t.IDs = append(t.IDs, r.ID)
			t.Rows += len(r.Rows)
		}
		rep.Timings = append(rep.Timings, t)
	}
	rep.Experiments = len(out)
	rep.Elapsed = time.Since(start)
	rep.Work = time.Duration(workNS.Load())
	rep.Interrupted = b.ctx().Err() != nil
	if opts.KeepGoing && len(rep.Failures) > 0 {
		// Failures are fully described in the report; the run itself
		// "succeeded" in keep-going terms.
		err = nil
	}
	return out, rep, err
}

// Extensions runs every extension study (serially; All fans them out
// individually).
func (b *Bench) Extensions() []*Result {
	return []*Result{
		b.ExtTableI(), b.ExtFigure3(), b.ExtStride(), b.ExtFIFO(),
		b.ExtFormats(), b.ExtHighPrecision(), b.ExtBalancingNetworks(), b.ExtMultiCore(),
	}
}
