// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic substrate: one driver per
// experiment, each returning a Result whose rows mirror what the paper
// plots. The per-experiment index lives in DESIGN.md; paper-vs-measured
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string // e.g. "Figure 12"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string

	// Err is set when the experiment could not run (e.g. an unknown network
	// name); the rows are then empty or partial. Drivers check it instead of
	// the experiment panicking mid-sweep.
	Err error
}

// fail records err on the result and returns it, for early exits.
func (r *Result) fail(err error) *Result {
	r.Err = err
	return r
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "error: %v\n", r.Err)
	}
	return b.String()
}

// WriteCSV writes the result as CSV (header + rows).
func (r *Result) WriteCSV(w io.Writer) error {
	rows := append([][]string{r.Header}, r.Rows...)
	for _, row := range rows {
		esc := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(esc, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Cell returns the cell at (row, col), for test assertions.
func (r *Result) Cell(row, col int) string { return r.Rows[row][col] }

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
