package experiments

import (
	"fmt"

	"ristretto/internal/balance"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/scnn"
	"ristretto/internal/baselines/snap"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/model"
	"ristretto/internal/ristretto"
	"ristretto/internal/sparse"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// Extension studies: experiments beyond the paper's figures that exercise
// the systems its text describes — the Table I sparse-accelerator trio, the
// Figure 3 modified-Laconic strawman, Section IV-C3's stride handling,
// Section IV-D's high-precision modes, and the design choices DESIGN.md
// calls out (FIFO depth, compression formats).

// ExtTableI compares Ristretto against all three dual-sided sparse
// accelerators of Table I (SCNN, SparTen, SNAP) at matched scale: cycles
// normalized to SparTen.
func (b *Bench) ExtTableI() *Result {
	r := &Result{
		ID:     "Extension A (Table I trio)",
		Title:  "Ristretto vs the dual-sided sparse accelerators of Table I (cycles, normalized to SparTen)",
		Header: []string{"network", "precision", "Ristretto", "SCNN", "SNAP", "SparTen"},
		Notes:  "value-level sparse designs cannot exploit narrow precision; Ristretto's atom streams can",
	}
	rcfg := ristrettoVsLaconic()
	precs := []string{"8b", "2b"}
	type cell struct{ sR, sSC, sSN float64 }
	cells, err := precNetCells(b, precs, func(prec string, n *model.Network) cell {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cr := ristretto.EstimateNetwork(stats, rcfg).Cycles
		cst, _ := sparten.EstimateNetwork(stats, sparten.DefaultConfig())
		csc, _ := scnn.EstimateNetwork(stats, scnn.DefaultConfig())
		csn, _ := snap.EstimateNetwork(stats, snap.DefaultConfig())
		return cell{
			sR:  float64(cst) / float64(cr),
			sSC: float64(cst) / float64(csc),
			sSN: float64(cst) / float64(csn),
		}
	})
	if err != nil {
		return r.fail(err)
	}
	nets := b.Networks()
	for pi, prec := range precs {
		var spR, spSC, spSN []float64
		for ni, n := range nets {
			c := cells[pi*len(nets)+ni]
			spR = append(spR, c.sR)
			spSC = append(spSC, c.sSC)
			spSN = append(spSN, c.sSN)
			r.AddRow(n.Name, prec, f2(c.sR), f2(c.sSC), f2(c.sSN), "1.00")
		}
		r.AddRow("geomean", prec, f2(geomean(spR)), f2(geomean(spSC)), f2(geomean(spSN)), "1.00")
	}
	return r
}

// ExtFigure3 quantifies the Figure 3 strawman: plain Laconic vs the
// CSR+AIM-modified Laconic vs Ristretto, in cycles and compute-area-
// normalized performance.
func (b *Bench) ExtFigure3() *Result {
	r := &Result{
		ID:     "Extension B (Figure 3)",
		Title:  "modified Laconic (CSR + per-PE AIM) vs plain Laconic vs Ristretto",
		Header: []string{"network", "precision", "modified speedup (cycles)", "modified speedup (area-norm)", "Ristretto speedup (area-norm)"},
		Notes:  "the modification helps cycles but pays 1.6x PE area; Ristretto's unified dataflow needs no bolt-on matching",
	}
	rcfg := ristrettoVsLaconic()
	lcfg := laconic.DefaultConfig()
	areaR := energy.RistrettoArea(rcfg.Tiles, rcfg.Tile.Mults, int(rcfg.Tile.Gran)).Total()
	areaL := energy.LaconicArea(lcfg.PEs())
	areaM := energy.LaconicArea(lcfg.PEs()) * laconic.ModifiedAreaFactor
	precs := []string{"8b", "2b"}
	cells, err := precNetCells(b, precs, func(prec string, n *model.Network) [3]float64 {
		stats := b.Stats(n, prec, rcfg.Tile.Gran)
		cl, _ := laconic.EstimateNetwork(stats, lcfg)
		cm, _ := laconic.EstimateNetworkModified(stats, lcfg)
		cr := ristretto.EstimateNetwork(stats, rcfg).Cycles
		return [3]float64{
			float64(cl) / float64(cm),
			areaNormSpeedup(cl, areaL, cm, areaM),
			areaNormSpeedup(cl, areaL, cr, areaR),
		}
	})
	if err != nil {
		return r.fail(err)
	}
	nets := b.Networks()
	for pi, prec := range precs {
		for ni, n := range nets {
			c := cells[pi*len(nets)+ni]
			r.AddRow(n.Name, prec, f2(c[0]), f2(c[1]), f2(c[2]))
		}
	}
	return r
}

// ExtStride quantifies Section IV-C3: the naive full-stride-1 intersection
// (ineffectual outputs computed and discarded) versus the stride-phase
// decomposition, on the strided layers of the benchmark.
func (b *Bench) ExtStride() *Result {
	r := &Result{
		ID:     "Extension C (stride handling)",
		Title:  "naive stride-1 intersection vs stride-phase decomposition (network cycles)",
		Header: []string{"network", "naive cycles", "phase cycles", "phase speedup"},
		Notes:  "the naive mode follows Section IV-C3 literally; strided layers pay up to stride^2",
	}
	base := ristrettoVsBitFusion()
	naive := base
	naive.NaiveStride = true
	nets := b.Networks()
	cells, err := mapCells(b, len(nets), func(i int) ([2]int64, error) {
		stats := b.Stats(nets[i], "8b", base.Tile.Gran)
		return [2]int64{
			ristretto.EstimateNetwork(stats, naive).Cycles,
			ristretto.EstimateNetwork(stats, base).Cycles,
		}, nil
	})
	if err != nil {
		return r.fail(err)
	}
	for i, n := range nets {
		cn, cp := cells[i][0], cells[i][1]
		r.AddRow(n.Name, fmt.Sprint(cn), fmt.Sprint(cp), f2(float64(cn)/float64(cp)))
	}
	return r
}

// ExtFIFO sweeps the Atomulator FIFO depth on the cycle simulator with a
// contention-heavy configuration (few output channels), the design knob the
// crossbar discussion of Section IV-C3 motivates.
func (b *Bench) ExtFIFO() *Result {
	r := &Result{
		ID:     "Extension D (FIFO depth)",
		Title:  "cycle-simulated stalls vs Atomulator FIFO depth (4 output channels, 16 multipliers)",
		Header: []string{"FIFO depth", "cycles", "stall cycles", "stall fraction"},
		Notes:  "with 4 banks serving 16 multipliers the crossbar bandwidth dominates: FIFOs only shave bursts, so SCNN-style shallow FIFOs suffice (channel-first weight mapping is what actually avoids the contention)",
	}
	g := workload.NewGen(b.Seed)
	f := g.FeatureMapExact(4, 16, 16, 2, 2, 0.9, 1.0) // 2-bit: every atom delivers
	w := g.KernelsExact(4, 4, 3, 3, 8, 2, 0.8, 0.8)
	depths := []int{1, 2, 4, 8, 16}
	// The operands are generated once (sequentially, above) and shared
	// read-only; only the per-depth simulations fan out.
	sims, err := mapCells(b, len(depths), func(i int) (ristretto.SimResult, error) {
		cfg := ristretto.Config{Tiles: 1, Tile: ristretto.TileConfig{Mults: 16, Gran: 2, FIFODepth: depths[i]}}
		return ristretto.SimulateConv(f, w, 1, 1, cfg), nil
	})
	if err != nil {
		return r.fail(err)
	}
	for i, sim := range sims {
		r.AddRow(fmt.Sprint(depths[i]), fmt.Sprint(sim.Cycles), fmt.Sprint(sim.Stalls),
			pct(float64(sim.Stalls)/float64(sim.Cycles)))
	}
	return r
}

// ExtFormats measures the encoded size of the three compression formats
// across bit-widths at the benchmark's typical densities — the data behind
// EXPERIMENTS.md note 2 (metadata dominates narrow payloads).
func (b *Bench) ExtFormats() *Result {
	r := &Result{
		ID:     "Extension E (formats)",
		Title:  "compressed size vs dense, per format (16x16 tile at benchmark densities)",
		Header: []string{"bits", "density", "COO-2D", "bitmap", "CSR", "dense"},
		Notes:  "at 2 bits the coordinate metadata exceeds the payload: compression stops paying off off-chip",
	}
	g := workload.NewGen(b.Seed)
	for _, bits := range []int{8, 4, 2} {
		d := workload.EvalTargets("VGG-16", bits, bits).ADensity
		f := g.FeatureMapExact(1, 16, 16, bits, 2, d, 0.8)
		denseBits := 16 * 16 * bits
		coo := sparse.EncodeTile(f, 0, tensor.Tile{W: 16, H: 16}).SizeBits()
		bm := sparse.EncodeBitmap(f.Channel(0), bits)
		bmBits := 16*16 + bm.NNZ()*bits
		csr := sparse.EncodeCSR(f.Channel(0), 16, 16, bits).SizeBits()
		r.AddRow(fmt.Sprintf("%db", bits), f2(d),
			pct(float64(coo)/float64(denseBits)),
			pct(float64(bmBits)/float64(denseBits)),
			pct(float64(csr)/float64(denseBits)),
			"100%")
	}
	return r
}

// ExtHighPrecision exercises Section IV-D: a 16-bit layer run through
// spatial extension (wide shifters, direct CSC) versus temporal
// decomposition (four 8-bit sub-models), comparing intersection steps.
func (b *Bench) ExtHighPrecision() *Result {
	r := &Result{
		ID:     "Extension F (16-bit modes)",
		Title:  "16-bit inference: spatial extension vs temporal decomposition (CSC steps)",
		Header: []string{"mode", "steps", "atom products", "note"},
	}
	f := tensor.NewFeatureMap(4, 12, 12, 16)
	for i := range f.Data {
		f.Data[i] = int32(uint32(i*2654435761) % 65536)
		if i%3 == 0 {
			f.Data[i] = 0
		}
	}
	w := tensor.NewKernelStack(4, 4, 3, 3, 16)
	for i := range w.Data {
		if i%2 == 0 {
			w.Data[i] = int32(uint32(i*40503)%65535) - 32767
		}
	}
	cfg := core.Config{Gran: 2, Multiplier: 16}
	_, spatial := core.Convolve(f, w, 1, 1, cfg)
	subs := ristretto.TemporalDecompose(f, w)
	_, temporal := ristretto.ConvolveDecomposed(subs, 1, 1, cfg)
	r.AddRow("spatial extension", fmt.Sprint(spatial.Steps), fmt.Sprint(spatial.Products), "wider shifters {0,2,...,14}")
	r.AddRow("temporal decomposition", fmt.Sprint(temporal.Steps), fmt.Sprint(temporal.Products), "4 sequential 8-bit sub-models, no shifter change")
	return r
}

// ExtBalancingNetworks evaluates the three balancing policies across the
// whole benchmark (not just conv3_2), reporting network-level speedup of
// w/a balancing over the alternatives.
func (b *Bench) ExtBalancingNetworks() *Result {
	r := &Result{
		ID:     "Extension G (balancing across networks)",
		Title:  "network cycles by balancing policy (4-bit models), normalized to no balancing",
		Header: []string{"network", "no balancing", "w balancing", "w/a balancing"},
	}
	base := ristrettoVsBitFusion()
	nets := b.Networks()
	cells, err := mapCells(b, len(nets), func(i int) ([3]int64, error) {
		stats := b.Stats(nets[i], "4b", base.Tile.Gran)
		var cy [3]int64
		for j, p := range []balance.Policy{balance.None, balance.WeightOnly, balance.WeightAct} {
			cfg := base
			cfg.Policy = p
			cy[j] = ristretto.EstimateNetwork(stats, cfg).Cycles
		}
		return cy, nil
	})
	if err != nil {
		return r.fail(err)
	}
	for i, n := range nets {
		cy := cells[i]
		r.AddRow(n.Name, "1.00", f2(float64(cy[1])/float64(cy[0])), f2(float64(cy[2])/float64(cy[0])))
	}
	return r
}

// ExtMultiCore scales the Ristretto core count (Figure 7 shows a multi-core
// organization) and reports strong-scaling efficiency on ResNet-50: output
// channels split across cores, per-core tiles unchanged.
func (b *Bench) ExtMultiCore() *Result {
	r := &Result{
		ID:     "Extension H (multi-core scaling)",
		Title:  "strong scaling of compute tiles (ResNet-50, 4-bit), normalized to 32 tiles",
		Header: []string{"tiles", "cycles", "speedup", "efficiency"},
		Notes:  "tile-count scaling saturates when channel groups run out (C < tiles on early layers)",
	}
	n := b.Networks()[len(b.Networks())-1]
	stats := b.Stats(n, "4b", 2)
	tileCounts := []int{32, 64, 128, 256}
	cycles, err := mapCells(b, len(tileCounts), func(i int) (int64, error) {
		cfg := ristrettoVsBitFusion()
		cfg.Tiles = tileCounts[i]
		return ristretto.EstimateNetwork(stats, cfg).Cycles, nil
	})
	if err != nil {
		return r.fail(err)
	}
	base := cycles[0] // 32 tiles
	for i, cy := range cycles {
		tiles := tileCounts[i]
		sp := float64(base) / float64(cy)
		r.AddRow(fmt.Sprint(tiles), fmt.Sprint(cy), f2(sp), pct(sp/(float64(tiles)/32)))
	}
	return r
}
