package experiments

import "testing"

func dsePoints(t *testing.T) []DSEPoint {
	t.Helper()
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet"}
	points, err := b.DesignSpace("AlexNet", "4b", []int{8, 32}, []int{8, 32}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestDesignSpaceCoversGrid(t *testing.T) {
	points := dsePoints(t)
	if len(points) != 2*2*3 {
		t.Fatalf("%d points, want 12", len(points))
	}
	for _, p := range points {
		if p.Cycles <= 0 || p.AreaMM2 <= 0 || p.EnergyMJ <= 0 || p.PerfPerArea <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestDesignSpaceMonotonicInResources(t *testing.T) {
	points := dsePoints(t)
	find := func(tiles, mults, gran int) DSEPoint {
		for _, p := range points {
			if p.Tiles == tiles && p.Mults == mults && p.Gran == gran {
				return p
			}
		}
		t.Fatalf("point %d/%d/%d missing", tiles, mults, gran)
		return DSEPoint{}
	}
	small := find(8, 8, 2)
	big := find(32, 32, 2)
	if big.Cycles >= small.Cycles {
		t.Fatalf("more resources must be faster: %d vs %d", big.Cycles, small.Cycles)
	}
	if big.AreaMM2 <= small.AreaMM2 {
		t.Fatal("more resources must cost area")
	}
}

func TestDesignSpaceParetoNonEmptyAndValid(t *testing.T) {
	points := dsePoints(t)
	pareto := 0
	for i, p := range points {
		if !p.Pareto {
			continue
		}
		pareto++
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Cycles <= p.Cycles && q.AreaMM2 <= p.AreaMM2 && q.EnergyMJ <= p.EnergyMJ &&
				(q.Cycles < p.Cycles || q.AreaMM2 < p.AreaMM2 || q.EnergyMJ < p.EnergyMJ) {
				t.Fatalf("point %+v marked Pareto but dominated by %+v", p, q)
			}
		}
	}
	if pareto == 0 || pareto == len(points) {
		t.Fatalf("implausible Pareto set size %d of %d", pareto, len(points))
	}
}

func TestDesignSpaceSortedByPerfPerArea(t *testing.T) {
	points := dsePoints(t)
	for i := 1; i < len(points); i++ {
		if points[i].PerfPerArea > points[i-1].PerfPerArea {
			t.Fatal("points not sorted by perf/area")
		}
	}
}

func TestDSETableAndUnknownNetwork(t *testing.T) {
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet"}
	r, err := b.DSETable("AlexNet", "4b", []int{8}, []int{8}, []int{2})
	if err != nil || len(r.Rows) != 1 {
		t.Fatalf("DSETable: %v, %d rows", err, len(r.Rows))
	}
	if _, err := b.DesignSpace("LeNet", "4b", []int{8}, []int{8}, []int{2}); err == nil {
		t.Fatal("unknown network accepted")
	}
}
