package experiments

import (
	"encoding/json"
	"fmt"
	"sort"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/energy"
	"ristretto/internal/model"
	"ristretto/internal/ristretto"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// DSEPoint is one configuration of the Ristretto design space and its
// figures of merit.
type DSEPoint struct {
	Tiles, Mults, Gran int
	Cycles             int64
	AreaMM2            float64
	EnergyMJ           float64
	PerfPerArea        float64 // 1 / (cycles × mm²), scaled
	Pareto             bool    // not dominated on (cycles, area, energy)
}

// DesignSpace sweeps tile count × multipliers per tile × atom granularity
// for one network/precision, computing cycles, area and energy per point
// and marking the Pareto frontier — the design-space exploration behind the
// paper's configuration choices (32 tiles × 32 2-bit multipliers vs Bit
// Fusion; ×16 for the BitOps-matched comparisons).
func (b *Bench) DesignSpace(netName, precision string, tiles, mults, grans []int) ([]DSEPoint, error) {
	return b.DesignSpaceOpts(RunOptions{}, netName, precision, tiles, mults, grans)
}

// DesignSpaceOpts is DesignSpace under fault tolerance: grid points journal
// individually to the checkpoint (keyed "g<gran>-t<tiles>-m<mults>"), a
// resumed sweep recomputes only missing points, and with KeepGoing failed
// points are excluded from the frontier (never marked Pareto with zeroed
// figures of merit) while the surviving points plus the aggregated
// CellErrors are both returned.
func (b *Bench) DesignSpaceOpts(opts RunOptions, netName, precision string, tiles, mults, grans []int) ([]DSEPoint, error) {
	var net *model.Network
	for _, n := range b.Networks() {
		if n.Name == netName {
			net = n
		}
	}
	if net == nil {
		return nil, fmt.Errorf("experiments: network %q not in bench set", netName)
	}
	for _, v := range tiles {
		if v <= 0 {
			return nil, fmt.Errorf("experiments: tile count %d must be positive", v)
		}
	}
	for _, v := range mults {
		if v <= 0 {
			// A zero-multiplier point no longer panics (core.Steps guards
			// it) but it performs no work, so its figures of merit would be
			// degenerate — reject it up front.
			return nil, fmt.Errorf("experiments: multiplier count %d must be positive", v)
		}
	}
	for _, v := range grans {
		if v < 1 || v > 3 {
			return nil, fmt.Errorf("experiments: atom granularity %d outside 1-3", v)
		}
	}
	// Grid order gran → tiles → mults, flattened so the sweep fans out over
	// the worker pool with a deterministic point order.
	type gridCfg struct{ gran, tl, m int }
	var grid []gridCfg
	for _, gran := range grans {
		for _, tl := range tiles {
			for _, m := range mults {
				grid = append(grid, gridCfg{gran, tl, m})
			}
		}
	}
	key := func(i int) string {
		g := grid[i]
		return fmt.Sprintf("g%d-t%d-m%d", g.gran, g.tl, g.m)
	}
	cfg := opts.runnerCfg(b.Seed, key)
	points, err := runner.MapCfg(b.ctx(), b.pool(), cfg, len(grid), func(i int) (DSEPoint, error) {
		if opts.Journal != nil {
			if raw, ok := opts.Journal.Lookup(key(i)); ok {
				var p DSEPoint
				if derr := json.Unmarshal(raw, &p); derr != nil {
					return DSEPoint{}, fmt.Errorf("experiments: corrupt journal payload for %q: %w", key(i), derr)
				}
				if telemetry.Default.Enabled() {
					telemetry.Default.Counter("runner.cells_resumed").Inc()
				}
				return p, nil
			}
		}
		g := grid[i]
		cfg := ristretto.Config{
			Tiles:  g.tl,
			Tile:   ristretto.TileConfig{Mults: g.m, Gran: atom.Granularity(g.gran)},
			Policy: balance.WeightAct,
		}
		stats := b.Stats(net, precision, atom.Granularity(g.gran))
		perf := ristretto.EstimateNetwork(stats, cfg)
		area := energy.RistrettoArea(g.tl, g.m, g.gran).Total()
		pj := energy.ModelForGranularity(g.gran).TotalPJ(perf.Counters)
		p := DSEPoint{
			Tiles: g.tl, Mults: g.m, Gran: g.gran,
			Cycles:      perf.Cycles,
			AreaMM2:     area,
			EnergyMJ:    pj / 1e9,
			PerfPerArea: 1e9 / (float64(perf.Cycles) * area),
		}
		if opts.Journal != nil && b.ctx().Err() == nil {
			if jerr := opts.Journal.Append(key(i), p); jerr != nil {
				return DSEPoint{}, fmt.Errorf("experiments: journaling %q: %w", key(i), jerr)
			}
		}
		return p, nil
	})
	if err != nil && !opts.KeepGoing {
		return nil, err
	}
	if b.ctx().Err() != nil {
		// A cancelled sweep has unstarted zero-valued points; no frontier can
		// be marked from it. The journal already holds everything completed.
		return nil, err
	}
	if ces := runner.AsCellErrors(err); len(ces) > 0 {
		// Drop failed grid points before Pareto marking: a zero-valued point
		// would dominate everything and corrupt the frontier.
		bad := map[int]bool{}
		for _, ce := range ces {
			bad[ce.Cell] = true
		}
		kept := points[:0]
		for i, p := range points {
			if !bad[i] {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	markPareto(points)
	sort.SliceStable(points, func(i, j int) bool { return points[i].PerfPerArea > points[j].PerfPerArea })
	return points, err
}

// markPareto flags points not dominated on (cycles, area, energy).
func markPareto(points []DSEPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			p, q := points[i], points[j]
			if q.Cycles <= p.Cycles && q.AreaMM2 <= p.AreaMM2 && q.EnergyMJ <= p.EnergyMJ &&
				(q.Cycles < p.Cycles || q.AreaMM2 < p.AreaMM2 || q.EnergyMJ < p.EnergyMJ) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// DSETable renders a design-space sweep as a Result.
func (b *Bench) DSETable(netName, precision string, tiles, mults, grans []int) (*Result, error) {
	return b.DSETableOpts(RunOptions{}, netName, precision, tiles, mults, grans)
}

// DSETableOpts is DSETable under fault tolerance. With KeepGoing, cell
// failures do not abort the sweep: the surviving frontier is rendered and
// the aggregated failure is recorded on the Result's Err field.
func (b *Bench) DSETableOpts(opts RunOptions, netName, precision string, tiles, mults, grans []int) (*Result, error) {
	points, err := b.DesignSpaceOpts(opts, netName, precision, tiles, mults, grans)
	if err != nil && points == nil {
		return nil, err
	}
	r := &Result{
		ID:     "DSE",
		Title:  fmt.Sprintf("Ristretto design space on %s (%s), sorted by perf/area", netName, precision),
		Header: []string{"tiles", "mults", "gran", "cycles", "area mm2", "energy mJ", "perf/area", "pareto"},
	}
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		r.AddRow(fmt.Sprint(p.Tiles), fmt.Sprint(p.Mults), fmt.Sprintf("%db", p.Gran),
			fmt.Sprint(p.Cycles), fmt.Sprintf("%.3f", p.AreaMM2), fmt.Sprintf("%.3f", p.EnergyMJ),
			fmt.Sprintf("%.3g", p.PerfPerArea), mark)
	}
	r.Err = err // keep-going failures, if any
	return r, nil
}
