package experiments

import (
	"fmt"
	"sort"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/energy"
	"ristretto/internal/ristretto"
)

// DSEPoint is one configuration of the Ristretto design space and its
// figures of merit.
type DSEPoint struct {
	Tiles, Mults, Gran int
	Cycles             int64
	AreaMM2            float64
	EnergyMJ           float64
	PerfPerArea        float64 // 1 / (cycles × mm²), scaled
	Pareto             bool    // not dominated on (cycles, area, energy)
}

// DesignSpace sweeps tile count × multipliers per tile × atom granularity
// for one network/precision, computing cycles, area and energy per point
// and marking the Pareto frontier — the design-space exploration behind the
// paper's configuration choices (32 tiles × 32 2-bit multipliers vs Bit
// Fusion; ×16 for the BitOps-matched comparisons).
func (b *Bench) DesignSpace(netName, precision string, tiles, mults, grans []int) ([]DSEPoint, error) {
	var net string
	for _, n := range b.Networks() {
		if n.Name == netName {
			net = n.Name
		}
	}
	if net == "" {
		return nil, fmt.Errorf("experiments: network %q not in bench set", netName)
	}
	var points []DSEPoint
	for _, gran := range grans {
		for _, tl := range tiles {
			for _, m := range mults {
				cfg := ristretto.Config{
					Tiles:  tl,
					Tile:   ristretto.TileConfig{Mults: m, Gran: atom.Granularity(gran)},
					Policy: balance.WeightAct,
				}
				var cycles int64
				var cnt energy.Counters
				for _, n := range b.Networks() {
					if n.Name != net {
						continue
					}
					stats := b.Stats(n, precision, atom.Granularity(gran))
					perf := ristretto.EstimateNetwork(stats, cfg)
					cycles = perf.Cycles
					cnt = perf.Counters
				}
				area := energy.RistrettoArea(tl, m, gran).Total()
				pj := energy.ModelForGranularity(gran).TotalPJ(cnt)
				points = append(points, DSEPoint{
					Tiles: tl, Mults: m, Gran: gran,
					Cycles:      cycles,
					AreaMM2:     area,
					EnergyMJ:    pj / 1e9,
					PerfPerArea: 1e9 / (float64(cycles) * area),
				})
			}
		}
	}
	markPareto(points)
	sort.SliceStable(points, func(i, j int) bool { return points[i].PerfPerArea > points[j].PerfPerArea })
	return points, nil
}

// markPareto flags points not dominated on (cycles, area, energy).
func markPareto(points []DSEPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			p, q := points[i], points[j]
			if q.Cycles <= p.Cycles && q.AreaMM2 <= p.AreaMM2 && q.EnergyMJ <= p.EnergyMJ &&
				(q.Cycles < p.Cycles || q.AreaMM2 < p.AreaMM2 || q.EnergyMJ < p.EnergyMJ) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// DSETable renders a design-space sweep as a Result.
func (b *Bench) DSETable(netName, precision string, tiles, mults, grans []int) (*Result, error) {
	points, err := b.DesignSpace(netName, precision, tiles, mults, grans)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "DSE",
		Title:  fmt.Sprintf("Ristretto design space on %s (%s), sorted by perf/area", netName, precision),
		Header: []string{"tiles", "mults", "gran", "cycles", "area mm2", "energy mJ", "perf/area", "pareto"},
	}
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		r.AddRow(fmt.Sprint(p.Tiles), fmt.Sprint(p.Mults), fmt.Sprintf("%db", p.Gran),
			fmt.Sprint(p.Cycles), fmt.Sprintf("%.3f", p.AreaMM2), fmt.Sprintf("%.3f", p.EnergyMJ),
			fmt.Sprintf("%.3g", p.PerfPerArea), mark)
	}
	return r, nil
}
