package experiments

import (
	"strings"
	"sync"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/telemetry"
)

// renderAll runs the full suite at the given worker count and returns the
// concatenated rendered results. Any experiment error fails the test.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet", "ResNet-18"}
	b.Workers = workers
	var sb strings.Builder
	for _, r := range b.All() {
		if r.Err != nil {
			t.Fatalf("workers=%d: %s failed: %v", workers, r.ID, r.Err)
		}
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAllDeterministicAcrossWorkers is the bit-identity guarantee behind the
// -parallel flag: every experiment derives its own seed per cell and results
// are collected in index order, so the rendered output must not depend on the
// worker count. It runs with telemetry enabled, pinning the second guarantee
// the -telemetry flag relies on: instrumentation must not perturb a single
// byte either (TestTelemetryBitInvisible covers on-vs-off equality).
//
// TestAllDeterministicAcrossWorkersMultiProcess (determinism_fleet_test.go)
// extends this guarantee across real OS processes via the fleet coordinator.
func TestAllDeterministicAcrossWorkers(t *testing.T) {
	telemetry.Default.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.Default.SetEnabled(false)
		telemetry.Default.Reset()
	})
	serial := renderAll(t, 1)
	if serial == "" {
		t.Fatal("serial run produced no output")
	}
	for _, workers := range []int{2, 8} {
		if got := renderAll(t, workers); got != serial {
			d := diffLine(serial, got)
			t.Errorf("workers=%d output differs from serial run (first diverging line: %q)", workers, d)
		}
	}
}

// diffLine returns the first line where a and b diverge, for a readable
// failure message instead of two multi-kilobyte dumps.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) {
			return al[i] + " (missing in parallel run)"
		}
		if al[i] != bl[i] {
			return al[i] + " != " + bl[i]
		}
	}
	if len(bl) > len(al) {
		return bl[len(al)] + " (extra in parallel run)"
	}
	return ""
}

// TestStatsSingleFlight: concurrent Stats calls for the same key must
// synthesize the workload exactly once and hand every caller the same backing
// array — the single-flight behaviour the parallel figures rely on.
func TestStatsSingleFlight(t *testing.T) {
	b := NewQuickBench(1, 8)
	b.Nets = []string{"AlexNet"}
	n := b.Networks()[0]

	const callers = 8
	out := make([]*int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := b.Stats(n, "4b", atom.Granularity(2))
			if len(s) == 0 {
				return
			}
			out[i] = &s[0].WBits
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if out[i] == nil || out[0] == nil {
			t.Fatal("Stats returned empty layer stats")
		}
		if out[i] != out[0] {
			t.Fatalf("caller %d got a different backing array: Stats is not single-flight", i)
		}
	}
}
