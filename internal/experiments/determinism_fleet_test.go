// Cross-PROCESS determinism: determinism_test.go proves bit-identical
// output across worker-pool sizes inside one process; this file proves it
// across real OS processes. The test binary re-execs itself as
// ristretto-serve-equivalent workers (TestMain's worker mode), a fleet
// coordinator spreads the sweep over them, and the merged manifest must
// be byte-identical to the serial golden.
//
// It lives in package experiments_test (not experiments) because it
// imports internal/fleet and internal/server, which import experiments —
// an external test package breaks the cycle while sharing the binary.
package experiments_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/fleet"
	"ristretto/internal/server"
	"ristretto/internal/telemetry"
)

// fleetWorkerEnv gates worker mode: when set, the re-exec'd test binary
// serves /v1/cell instead of running tests.
const fleetWorkerEnv = "RISTRETTO_FLEET_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(fleetWorkerEnv) == "1" {
		runFleetWorker()
		return
	}
	os.Exit(m.Run())
}

// runFleetWorker is the re-exec entry point: boot a real HTTP worker on a
// kernel-assigned port, announce the address on stdout, serve until
// killed. RISTRETTO_FLEET_FAULT optionally injects a fault schedule —
// the chaos suite's knob.
func runFleetWorker() {
	cfg := server.Config{Registry: telemetry.NewRegistry()}
	if spec := os.Getenv("RISTRETTO_FLEET_FAULT"); spec != "" {
		s, err := faultinject.ParseSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet worker:", err)
			os.Exit(1)
		}
		cfg.Fault = faultinject.New(s)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet worker:", err)
		os.Exit(1)
	}
	fmt.Printf("FLEET_WORKER %s\n", ln.Addr())
	if err := http.Serve(ln, server.New(cfg).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "fleet worker:", err)
		os.Exit(1)
	}
}

// spawnFleetWorker re-execs the test binary in worker mode and returns
// its base URL once the worker announces its listen address.
func spawnFleetWorker(t *testing.T, extraEnv ...string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), fleetWorkerEnv+"=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "FLEET_WORKER "); ok {
				addrCh <- addr
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatal("worker exited before announcing its address")
		}
		return "http://" + addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not announce its address within 30s")
	}
	panic("unreachable")
}

// TestAllDeterministicAcrossWorkersMultiProcess is the cross-process
// extension of TestAllDeterministicAcrossWorkers: three real worker
// processes serve the sweep, and the coordinator's merged manifest must
// be byte-identical to the serial in-process run.
func TestAllDeterministicAcrossWorkersMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	const (
		seed  = 1
		scale = 32
	)
	nets := []string{"AlexNet"}

	serial := experiments.NewQuickBench(seed, scale)
	serial.Nets = nets
	var golden strings.Builder
	for _, r := range serial.All() {
		golden.WriteString(r.String())
		golden.WriteByte('\n')
	}

	var workers []string
	for i := 0; i < 3; i++ {
		url, _ := spawnFleetWorker(t)
		workers = append(workers, url)
	}
	rs, rep, err := fleet.Run(context.Background(), fleet.Config{
		Workers:  workers,
		Seed:     seed,
		Scale:    scale,
		Nets:     nets,
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, r := range rs {
		got.WriteString(r.String())
		got.WriteByte('\n')
	}
	if got.String() != golden.String() {
		t.Fatalf("multi-process fleet output differs from the serial run (%d vs %d bytes):\nfirst diff: %s",
			got.Len(), golden.Len(), firstLineDiff(got.String(), golden.String()))
	}
	if rep.Failures != 0 || rep.Cells != len(experiments.CellKeys()) {
		t.Fatalf("report %+v inconsistent with a clean full sweep", rep)
	}
	spread := map[int]bool{}
	for _, o := range rep.Outcomes {
		spread[o.Worker] = true
	}
	if len(spread) < 2 {
		t.Errorf("cells landed on workers %v only; expected the sweep to spread over processes", spread)
	}
}

// firstLineDiff reports the first differing line of two renders.
func firstLineDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(g), len(w))
}
