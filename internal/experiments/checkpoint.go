package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"ristretto/internal/safeio"
)

// CheckpointSchema identifies the journal file format. Bump on incompatible
// change.
const CheckpointSchema = "ristretto.checkpoint/v1"

// journalLine is one record of the checkpoint file. The file is plain text,
// one record per line: an 8-hex-digit IEEE crc32 of the JSON body, a space,
// then the body itself. The first record is a header carrying the schema,
// the writing tool and the workload fingerprint; every later record is a
// completed cell keyed by a stable string with an opaque JSON payload.
type journalLine struct {
	Kind        string          `json:"kind"` // "header" or "cell"
	Schema      string          `json:"schema,omitempty"`
	Tool        string          `json:"tool,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Cell        string          `json:"cell,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// Journal is an append-only, crc-guarded checkpoint file recording completed
// sweep cells. Appends go through safeio.Appender — flushed and fsynced per
// record — so a SIGKILL between records loses at most the record being
// written, and a torn final line fails its crc and is skipped on resume
// instead of poisoning the run. All file access goes through the journal's
// safeio.FS, so the disk-fault injector can sit underneath it.
type Journal struct {
	mu      sync.Mutex
	ap      *safeio.Appender
	fsys    safeio.FS
	path    string
	done    map[string]json.RawMessage
	resumed bool
	corrupt int
	closed  bool
}

// OpenJournal opens (or creates) the checkpoint file at path for the given
// tool and workload fingerprint. With resume false any existing file is
// truncated and a fresh header written. With resume true an existing file is
// validated — schema, tool and fingerprint must match or an error tells the
// user to rerun without -resume — and its valid cell records become
// available through Lookup; corrupt or truncated lines are skipped and
// counted. A missing file with resume true degrades to a fresh journal.
func OpenJournal(path, tool, fingerprint string, resume bool) (*Journal, error) {
	return OpenJournalFS(safeio.OS, path, tool, fingerprint, resume)
}

// OpenJournalFS is OpenJournal through an explicit filesystem (nil = the
// real one) — the seam the crash-consistency matrix and the disk-fault
// injector use.
func OpenJournalFS(fsys safeio.FS, path, tool, fingerprint string, resume bool) (*Journal, error) {
	if fsys == nil {
		fsys = safeio.OS
	}
	j := &Journal{fsys: fsys, path: path, done: map[string]json.RawMessage{}}
	if resume {
		if err := j.load(tool, fingerprint); err != nil {
			return nil, err
		}
	}
	ap, err := safeio.OpenAppenderFS(fsys, path, !j.resumed)
	if err != nil {
		return nil, err
	}
	j.ap = ap
	if !j.resumed {
		hdr := journalLine{Kind: "header", Schema: CheckpointSchema, Tool: tool, Fingerprint: fingerprint}
		if err := j.append(hdr); err != nil {
			ap.Close()
			return nil, err
		}
	}
	return j, nil
}

// load reads and validates an existing journal for resume.
func (j *Journal) load(tool, fingerprint string) error {
	f, err := j.fsys.Open(j.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // nothing to resume; start fresh
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	sawHeader := false
	for sc.Scan() {
		line := sc.Text()
		rec, ok := decodeLine(line)
		if !ok {
			j.corrupt++
			continue
		}
		switch rec.Kind {
		case "header":
			if rec.Schema != CheckpointSchema {
				return fmt.Errorf("experiments: checkpoint %s has schema %q, want %q — rerun without -resume", j.path, rec.Schema, CheckpointSchema)
			}
			if rec.Tool != tool {
				return fmt.Errorf("experiments: checkpoint %s was written by %q, not %q — rerun without -resume", j.path, rec.Tool, tool)
			}
			if rec.Fingerprint != fingerprint {
				return fmt.Errorf("experiments: checkpoint %s fingerprint %q does not match this run (%q) — rerun without -resume", j.path, rec.Fingerprint, fingerprint)
			}
			sawHeader = true
		case "cell":
			// Later valid duplicates win: a cell re-journaled after a
			// partially-applied resume supersedes the earlier record.
			j.done[rec.Cell] = rec.Payload
		default:
			j.corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("experiments: reading checkpoint %s: %w", j.path, err)
	}
	if !sawHeader {
		if len(j.done) > 0 {
			return fmt.Errorf("experiments: checkpoint %s has cells but no valid header — rerun without -resume", j.path)
		}
		return nil // empty or fully corrupt file: start fresh
	}
	j.resumed = true
	return nil
}

// decodeLine parses one "crc json" line, rejecting torn or bit-flipped
// records.
func decodeLine(line string) (journalLine, bool) {
	var rec journalLine
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &sum); err != nil {
		return rec, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE([]byte(body)) != sum {
		return rec, false
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// append encodes and durably writes one record (flush + fsync via the
// Appender).
func (j *Journal) append(rec journalLine) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Appendf(nil, "%08x %s\n", crc32.ChecksumIEEE(body), body)
	return j.ap.Append(line)
}

// Append journals a completed cell under its stable key. The payload is
// marshalled to JSON; the record is durable (fsynced) when Append returns.
func (j *Journal) Append(cell string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("experiments: journal closed")
	}
	if err := j.append(journalLine{Kind: "cell", Cell: cell, Payload: raw}); err != nil {
		return err
	}
	j.done[cell] = raw
	return nil
}

// Lookup returns the journaled payload for a cell key, if present.
func (j *Journal) Lookup(cell string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.done[cell]
	return raw, ok
}

// Resumable reports whether the journal was loaded from an existing,
// header-valid file (i.e. this run is a resume).
func (j *Journal) Resumable() bool { return j.resumed }

// Cells reports how many distinct completed cells the journal holds.
func (j *Journal) Cells() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// CorruptRecords reports how many lines were skipped as torn or corrupt
// while loading.
func (j *Journal) CorruptRecords() int { return j.corrupt }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. Records appended before Close
// are already durable; Close exists to release the descriptor.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.ap.Close()
}

// resultJSON is the journal payload for a []*Result job: the Result struct
// with its error flattened to a string so it round-trips through JSON and
// renders identically ("error: <msg>") after resume.
type resultJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  string     `json:"notes,omitempty"`
	Err    string     `json:"err,omitempty"`
}

// encodeResults converts a job's results into their journal payload.
func encodeResults(rs []*Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows, Notes: r.Notes}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

// decodeResults reverses encodeResults.
func decodeResults(raw json.RawMessage) ([]*Result, error) {
	var enc []resultJSON
	if err := json.Unmarshal(raw, &enc); err != nil {
		return nil, err
	}
	out := make([]*Result, len(enc))
	for i, e := range enc {
		r := &Result{ID: e.ID, Title: e.Title, Header: e.Header, Rows: e.Rows, Notes: e.Notes}
		if e.Err != "" {
			r.Err = errors.New(e.Err)
		}
		out[i] = r
	}
	return out, nil
}
