package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCellKeysStable pins the distribution keys: every journal key in
// paper order, no duplicates. Renaming or reordering a key orphans
// journaled checkpoints and cached cells, so this list changing should be
// a loud, deliberate event.
func TestCellKeysStable(t *testing.T) {
	keys := CellKeys()
	if len(keys) == 0 {
		t.Fatal("no cell keys")
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if k == "" {
			t.Fatal("empty cell key")
		}
		if seen[k] {
			t.Fatalf("duplicate cell key %q", k)
		}
		seen[k] = true
	}
	// Spot-check the anchors: first and last keys of the paper order.
	if keys[0] != "figure1" || keys[len(keys)-1] != "ext-multicore" {
		t.Fatalf("paper order changed: first=%q last=%q", keys[0], keys[len(keys)-1])
	}
	// Every key must resolve through RunCellChecked's lookup (an unknown
	// key errors, a known one runs — exercised cheaply on the smallest
	// bench by just resolving the first key).
	if _, err := (&Bench{}).RunCellChecked("no-such-cell", RunOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown cell") {
		t.Fatalf("unknown cell not rejected: %v", err)
	}
}

// TestCellFingerprintCanonical pins the cache-correctness invariant
// directly: net-subset reordering (which cannot change the computed
// result) must not change the fingerprint, while every result-affecting
// field must.
func TestCellFingerprintCanonical(t *testing.T) {
	base := CellSpec{Seed: 1, Scale: 8, Nets: []string{"AlexNet", "ResNet-18"}, Cell: "figure12"}
	fp := base.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not hex sha256", fp)
	}

	reordered := base
	reordered.Nets = []string{"ResNet-18", "AlexNet"}
	if reordered.Fingerprint() != fp {
		t.Error("net reordering changed the fingerprint; identical sweeps would recompute")
	}

	distinct := []CellSpec{
		{Seed: 2, Scale: 8, Nets: base.Nets, Cell: "figure12"},
		{Seed: 1, Scale: 4, Nets: base.Nets, Cell: "figure12"},
		{Seed: 1, Scale: 8, Nets: base.Nets, Cell: "figure13"},
		{Seed: 1, Scale: 8, Nets: []string{"AlexNet"}, Cell: "figure12"},
		{Seed: 1, Scale: 8, Nets: nil, Cell: "figure12"},
		// Duplicated nets duplicate the network in Bench.Networks — a
		// different workload, so a different fingerprint.
		{Seed: 1, Scale: 8, Nets: []string{"AlexNet", "AlexNet", "ResNet-18"}, Cell: "figure12"},
	}
	seen := map[string]int{fp: -1}
	for i, s := range distinct {
		got := s.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("collision between spec %d and %d: %+v", i, prev, s)
		}
		seen[got] = i
	}
}

// TestCellFingerprintMatchesBench: the spec a Bench hands the coordinator
// reflects exactly its workload configuration.
func TestCellFingerprintMatchesBench(t *testing.T) {
	b := NewQuickBench(7, 16)
	b.Nets = []string{"AlexNet"}
	s := b.CellSpec("table4")
	if s.Seed != 7 || s.Scale != 16 || s.Cell != "table4" || len(s.Nets) != 1 {
		t.Fatalf("spec %+v does not reflect bench config", s)
	}
	want := CellSpec{Seed: 7, Scale: 16, Nets: []string{"AlexNet"}, Cell: "table4"}.Fingerprint()
	if s.Fingerprint() != want {
		t.Fatal("bench-derived spec fingerprints differently from literal spec")
	}
}

// FuzzCellFingerprint fuzzes the cache-correctness invariant: for an
// arbitrary spec, (1) the fingerprint is stable under net-list reordering
// — the one representation difference that cannot change the result — and
// (2) the single-field mutations that do change the result (seed, scale,
// cell key, adding a net, duplicating a net) all produce distinct
// fingerprints. The committed corpus seeds the real sweep configurations.
func FuzzCellFingerprint(f *testing.F) {
	f.Add(int64(1), 1, "AlexNet,ResNet-18,VGG-16", "figure12")
	f.Add(int64(7), 16, "AlexNet", "table4")
	f.Add(int64(-3), 1024, "", "ext-multicore")
	f.Add(int64(42), 8, "GoogLeNet,MobileNet,AlexNet", "taxonomy")
	f.Add(int64(0), 0, "a,a,b", "figure1")
	f.Fuzz(func(t *testing.T, seed int64, scale int, netsCSV, cell string) {
		var nets []string
		if netsCSV != "" {
			nets = strings.Split(netsCSV, ",")
		}
		base := CellSpec{Seed: seed, Scale: scale, Nets: nets, Cell: cell}
		fp := base.Fingerprint()
		if len(fp) != 64 {
			t.Fatalf("fingerprint %q not 64 hex chars", fp)
		}

		// Stability: reversing (and rotating) the net list is a pure
		// representation change; Bench.Networks output is unaffected.
		if len(nets) > 1 {
			rev := make([]string, len(nets))
			for i, n := range nets {
				rev[len(nets)-1-i] = n
			}
			if (CellSpec{Seed: seed, Scale: scale, Nets: rev, Cell: cell}).Fingerprint() != fp {
				t.Errorf("reversed nets changed fingerprint for %+v", base)
			}
			rot := append(append([]string(nil), nets[1:]...), nets[0])
			if (CellSpec{Seed: seed, Scale: scale, Nets: rot, Cell: cell}).Fingerprint() != fp {
				t.Errorf("rotated nets changed fingerprint for %+v", base)
			}
		}

		// Determinism across recomputation (no hidden state).
		if base.Fingerprint() != fp {
			t.Error("fingerprint not deterministic")
		}

		// Collision-freedom across distinct cells: every mutation below
		// changes the computed result, so each must fingerprint uniquely.
		muts := []CellSpec{
			{Seed: seed + 1, Scale: scale, Nets: nets, Cell: cell},
			{Seed: seed, Scale: scale + 1, Nets: nets, Cell: cell},
			{Seed: seed, Scale: scale, Nets: nets, Cell: cell + "x"},
			{Seed: seed, Scale: scale, Nets: append(append([]string(nil), nets...), "zzz-extra"), Cell: cell},
		}
		if len(nets) > 0 && nets[0] != "zzz-extra" {
			// Duplicating a net is a distinct workload — unless it collides
			// with the append-"zzz-extra" mutation above by literally being
			// the same multiset.
			muts = append(muts, CellSpec{Seed: seed, Scale: scale,
				Nets: append(append([]string(nil), nets...), nets[0]), Cell: cell})
		}
		seen := map[string]int{fp: -1}
		for i, m := range muts {
			got := m.Fingerprint()
			if prev, dup := seen[got]; dup {
				enc, _ := json.Marshal(m)
				t.Errorf("collision: mutation %d fingerprints like %d (%s)", i, prev, enc)
			}
			seen[got] = i
		}
	})
}
