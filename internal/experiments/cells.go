package experiments

// This file is the distribution surface of the sweep: the checkpoint
// journal already keys every experiment job by a stable cell key, and the
// fleet coordinator (internal/fleet) uses exactly those keys as its unit of
// work. CellKeys enumerates them, CellSpec.Fingerprint turns one (workload
// config, cell key) pair into a content address for the fleet-wide result
// cache, RunCellChecked executes a single cell with the same panic/timeout
// envelope AllChecked gives a full run, and MergeCells reassembles per-cell
// payloads into the paper-order result list — byte-identical to a serial
// All() run, which the cross-process determinism suite enforces.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"ristretto/internal/runner"
)

// CellFingerprintSchema versions the fingerprint's canonical form. Bump on
// any change to the encoding below: a stale cache entry must never be
// addressable by a fingerprint computed differently.
const CellFingerprintSchema = "ristretto.cell/v1"

// CellDigestSchema versions the payload digest's canonical form (see
// CellPayloadDigest). Bump together with any change to the digest input
// encoding: a digest computed under an older scheme must never verify.
const CellDigestSchema = "ristretto.cell-digest/v1"

// CellPayloadDigest is the end-to-end integrity check of the fleet: a hex
// sha256 over the cell payload bytes *bound to the cell's fingerprint*, so
// a payload cannot be replayed under a different cell identity. Workers
// stamp it on /v1/cell responses, the coordinator verifies it before a
// payload may enter the merge, and the cell cache verifies it on every
// read — a mismatch anywhere quarantines the source instead of serving
// corrupt bytes. Like the fingerprint, fields are length-prefixed so no
// two distinct (fingerprint, payload) pairs share an input encoding.
func CellPayloadDigest(fingerprint string, payload []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema:%d:%s;", len(CellDigestSchema), CellDigestSchema)
	fmt.Fprintf(h, "fp:%d:%s;", len(fingerprint), fingerprint)
	fmt.Fprintf(h, "payload:%d:", len(payload))
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// CellKeys returns every sweep cell key in paper order — the same stable
// keys the checkpoint journal records. The order is part of the merge
// contract: MergeCells emits results in this order so a distributed run
// renders byte-identically to a serial one.
func CellKeys() []string {
	var b Bench
	jobs := (&b).jobs()
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.key
	}
	return keys
}

// CellSpec identifies one distributable sweep cell: the workload
// configuration (seed, scale, network subset) plus the stable cell key.
// Two specs with equal fingerprints compute bit-identical payloads, which
// is the correctness invariant of the content-addressed cell cache.
type CellSpec struct {
	Seed  int64    `json:"seed"`
	Scale int      `json:"scale"`
	Nets  []string `json:"nets,omitempty"` // nil = full benchmark
	Cell  string   `json:"cell"`
}

// Fingerprint returns the cell's content address: a hex sha256 over a
// canonical byte encoding of the spec. Canonicalization makes the
// fingerprint independent of representation noise that cannot change the
// result — JSON field order never enters (fields are serialized in a fixed
// order with explicit tags), and Nets is sorted first, because
// Bench.Networks selects in benchmark order regardless of how the subset
// was spelled. Duplicate net names are preserved: Networks duplicates the
// network, which does change the result. Everything that can change a
// single output byte (seed, scale, the multiset of nets, the cell key) is
// included, so distinct cells get distinct fingerprints.
func (c CellSpec) Fingerprint() string {
	h := sha256.New()
	// Length-prefixed fields: no separator collisions between e.g.
	// nets=["ab","c"] and nets=["a","bc"].
	writeField := func(tag, val string) {
		fmt.Fprintf(h, "%s:%d:%s;", tag, len(val), val)
	}
	writeField("schema", CellFingerprintSchema)
	writeField("seed", fmt.Sprint(c.Seed))
	writeField("scale", fmt.Sprint(c.Scale))
	nets := append([]string(nil), c.Nets...)
	sort.Strings(nets)
	writeField("netcount", fmt.Sprint(len(nets)))
	for _, n := range nets {
		writeField("net", n)
	}
	writeField("cell", c.Cell)
	return hex.EncodeToString(h.Sum(nil))
}

// CellSpec returns the spec for one of this bench's cells — the identity
// the coordinator dispatches and caches under.
func (b *Bench) CellSpec(cell string) CellSpec {
	return CellSpec{Seed: b.Seed, Scale: b.Scale, Nets: b.Nets, Cell: cell}
}

// RunCellChecked executes the single named sweep cell under the
// fault-tolerance options and returns its journal payload (the same JSON a
// checkpointed AllChecked run records for that key). A panic, timeout or
// failure inside the cell surfaces as a *runner.CellError carrying the
// cell's replay seed — derived exactly as AllChecked derives it, so a
// remote failure reproduces locally from the returned seed. Unknown keys
// are an error, not a panic: the fleet validates cell names at the API
// boundary with this.
func (b *Bench) RunCellChecked(cell string, opts RunOptions) (json.RawMessage, error) {
	jobs := b.jobs()
	idx := -1
	for i, j := range jobs {
		if j.key == cell {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("experiments: unknown cell %q (see CellKeys)", cell)
	}
	cfg := opts.runnerCfg(b.Seed, func(int) string { return cell })
	outs, err := runner.MapCfg(b.ctx(), runner.Serial(), cfg, 1, func(int) ([]*Result, error) {
		return jobs[idx].run(), nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(encodeResults(outs[0]))
}

// DecodeCellPayload decodes a cell payload (from RunCellChecked, a
// checkpoint journal, the cell cache or the wire) back into its Results.
func DecodeCellPayload(raw json.RawMessage) ([]*Result, error) {
	return decodeResults(raw)
}

// MergeCells assembles per-cell payloads into the full paper-order result
// list: for each key of CellKeys, the payload is decoded and its results
// appended. The output is bit-identical to a serial All() run over the
// same workload configuration — the distributed-sweep determinism
// guarantee. A missing or undecodable cell is an error naming the key.
func MergeCells(payloads map[string]json.RawMessage) ([]*Result, error) {
	var out []*Result
	for _, key := range CellKeys() {
		raw, ok := payloads[key]
		if !ok {
			return nil, fmt.Errorf("experiments: merge missing cell %q", key)
		}
		rs, err := decodeResults(raw)
		if err != nil {
			return nil, fmt.Errorf("experiments: corrupt payload for cell %q: %w", key, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}
