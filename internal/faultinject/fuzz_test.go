package faultinject

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"ristretto/internal/safeio"
)

// FuzzParseSpec hardens the -fault flag surface shared by the batch CLIs and
// the ristretto-serve daemon: no input string may panic the parser, and any
// accepted spec must be internally consistent (probabilities in [0,1],
// attempts >= 1, non-negative delay) and instantiate into a schedule whose
// hook can be exercised safely. Matches the PR 3 fuzz conventions: seeds
// inline, corpus committed under testdata/fuzz/FuzzParseSpec.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"seed=7,panic=0.1,transient=0.2:2,delay=0.05:10ms,kill-after=5",
		"panic=1",
		"transient=0.5",
		"transient=0.5:3",
		"delay=1:1s",
		"seed=-3",
		"kill-after=1",
		"bogus",
		"panic=2",
		"delay=0.5",
		"transient=0.1:0",
		",",
		"seed=9223372036854775807",
		"panic=0.0000000001,delay=1:0s",
		"delay=1:-5ms",
		"panic=NaN",
		"seed=7,seed=8",
		" panic = 0.5 ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if spec.Panic < 0 || spec.Panic > 1 {
			t.Fatalf("accepted panic prob %v out of [0,1] for %q", spec.Panic, s)
		}
		if spec.Transient < 0 || spec.Transient > 1 {
			t.Fatalf("accepted transient prob %v out of [0,1] for %q", spec.Transient, s)
		}
		if spec.DelayProb < 0 || spec.DelayProb > 1 {
			t.Fatalf("accepted delay prob %v out of [0,1] for %q", spec.DelayProb, s)
		}
		if spec.TransientAttempts < 1 {
			t.Fatalf("accepted transient attempts %d < 1 for %q", spec.TransientAttempts, s)
		}
		if spec.Delay < 0 {
			t.Fatalf("accepted negative delay %v for %q", spec.Delay, s)
		}
		if spec.KillAfter < 0 {
			t.Fatalf("accepted negative kill-after %d for %q", spec.KillAfter, s)
		}
		sched := New(spec)
		hook := sched.Hook()
		if spec.Zero() != (hook == nil) {
			t.Fatalf("Zero()=%v but hook nil=%v for %q", spec.Zero(), hook == nil, s)
		}
		// Exercise the hook on retry attempts (attempt > 0 never injects a
		// panic) when it cannot sleep noticeably; injected transients are the
		// only legal error.
		if hook != nil && (spec.DelayProb == 0 || spec.Delay <= time.Millisecond) {
			for cell := 0; cell < 4; cell++ {
				if err := hook(cell, 1); err != nil && !IsTransient(err) {
					t.Fatalf("hook returned non-transient error %v for %q", err, s)
				}
			}
		}
	})
}

// FuzzParseNetSpec is the same hardening for the -net-fault flag: no
// input panics the parser, and accepted specs are internally consistent
// and safe to instantiate into a transport.
func FuzzParseNetSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"host=127.0.0.1:8081,seed=9,corrupt=1,truncate=0.2,blackhole=0.1,slowdrip=0.3:50ms",
		"corrupt=0.5",
		"truncate=1",
		"blackhole=0.01",
		"slowdrip=1:1ms",
		"slowdrip=1",
		"slowdrip=1:-5ms",
		"host=",
		"seed=-3,corrupt=NaN",
		"corrupt=2",
		",",
		"sabotage=1",
		"host=a=b",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseNetSpec(s)
		if err != nil {
			return // rejected inputs just must not panic
		}
		for _, p := range []float64{spec.Corrupt, spec.Truncate, spec.BlackHole, spec.SlowDrip} {
			if p < 0 || p > 1 {
				t.Fatalf("accepted prob %v out of [0,1] for %q", p, s)
			}
		}
		if spec.DripDelay < 0 {
			t.Fatalf("accepted negative drip delay %v for %q", spec.DripDelay, s)
		}
		rt := NewTransport(spec, nil)
		if spec.Zero() != (rt == http.DefaultTransport) {
			t.Fatalf("Zero()=%v but transport wrapped=%v for %q", spec.Zero(), rt != http.DefaultTransport, s)
		}
	})
}

// FuzzParseDiskSpec is the same hardening for the -disk-fault flag: no
// input panics the parser, accepted specs are internally consistent
// (probabilities in [0,1] and not NaN, after >= 0), and every accepted
// spec instantiates into an FS whose write/read decision draws are safe to
// exercise for arbitrary paths — including the fuzzed spec string itself
// reused as a hostile path.
func FuzzParseDiskSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"path=cells/*,seed=5,enospc=1,eio=0.2,sync-fail=0.1,torn-write=0.3,bit-rot=0.5,after=10",
		"enospc=1",
		"eio=0.5",
		"sync-fail=1",
		"torn-write=0.25",
		"bit-rot=1",
		"after=0",
		"after=-1",
		"path=",
		"path=*",
		"path=a/**/b",
		"seed=-3,bit-rot=NaN",
		"enospc=2",
		",",
		"sabotage=1",
		"path=a=b",
		"seed=9223372036854775807,eio=1",
		" enospc = 0.5 ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseDiskSpec(s)
		if err != nil {
			return // rejected inputs just must not panic
		}
		for _, p := range []float64{spec.ENOSPC, spec.EIO, spec.SyncFail, spec.TornWrite, spec.BitRot} {
			if !(p >= 0 && p <= 1) {
				t.Fatalf("accepted prob %v out of [0,1] for %q", p, s)
			}
		}
		if spec.After < 0 {
			t.Fatalf("accepted negative after %d for %q", spec.After, s)
		}
		fsys := NewDiskFS(spec, nil)
		if spec.Zero() != (fsys == safeio.OS) {
			t.Fatalf("Zero()=%v but FS wrapped=%v for %q", spec.Zero(), fsys != safeio.OS, s)
		}
		if d, ok := fsys.(*diskFS); ok {
			// Decision draws must be pure and panic-free for hostile paths —
			// including glob patterns that could backtrack pathologically.
			for _, p := range []string{"", s, "cells/aa/fp", "/", strings.Repeat("a/", 64)} {
				d.writeFaults(normalizePath(p))
				d.readFaults(normalizePath(p))
				d.matches(p)
			}
		}
	})
}
