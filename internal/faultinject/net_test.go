package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseNetSpec(t *testing.T) {
	spec, err := ParseNetSpec("host=127.0.0.1:8081,seed=9,corrupt=1,truncate=0.25,blackhole=0.5,slowdrip=0.3:50ms")
	if err != nil {
		t.Fatal(err)
	}
	want := NetSpec{
		Seed: 9, Host: "127.0.0.1:8081",
		Corrupt: 1, Truncate: 0.25, BlackHole: 0.5,
		SlowDrip: 0.3, DripDelay: 50 * time.Millisecond,
	}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if zero, err := ParseNetSpec("  "); err != nil || !zero.Zero() {
		t.Fatalf("blank spec = (%+v, %v), want zero", zero, err)
	}
	for name, bad := range map[string]string{
		"no-equals":      "corrupt",
		"bad-prob":       "corrupt=2",
		"bad-seed":       "seed=x",
		"unknown-key":    "sabotage=1",
		"drip-no-delay":  "slowdrip=0.5",
		"drip-bad-delay": "slowdrip=0.5:fast",
	} {
		if _, err := ParseNetSpec(bad); err == nil {
			t.Errorf("%s: %q accepted", name, bad)
		}
	}
}

// postJSON sends body through client the way the fleet coordinator does
// (bytes.Reader body, so GetBody is populated for the request hash).
func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

// TestNetTransportCorruptKeepsJSONBreaksBytes: the corrupted response
// must still parse as JSON (the fault models silent corruption, not
// garbage) while differing from what the server sent — and the same
// request must draw the same corruption every time.
func TestNetTransportCorruptKeepsJSONBreaksBytes(t *testing.T) {
	served := `{"cell":"figure1","payload":[{"id":"Fig. 1","rows":[["123","456"]]}]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, served)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 9, Corrupt: 1}, nil)}

	var first []byte
	for i := 0; i < 3; i++ {
		_, b, err := postJSON(t, client, ts.URL, `{"cell":"figure1"}`)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) == served {
			t.Fatal("corrupt=1 response arrived intact")
		}
		if !json.Valid(b) {
			t.Fatalf("corrupted body is not JSON: %q", b)
		}
		if i == 0 {
			first = b
		} else if !bytes.Equal(b, first) {
			t.Fatalf("corruption not deterministic:\n%q\n%q", first, b)
		}
	}
}

// TestNetTransportHostScope: faults apply only to the configured host.
func TestNetTransportHostScope(t *testing.T) {
	served := `{"n":123456}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, served)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 1, Corrupt: 1, Host: "victim.example:999"}, nil)}
	_, b, err := postJSON(t, client, ts.URL, `{"cell":"x"}`)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != served {
		t.Fatalf("fault leaked to out-of-scope host: %q", b)
	}
}

// TestNetTransportTruncate: the body is cut short with Content-Length
// intact, so the client read fails like a dropped connection.
func TestNetTransportTruncate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1000))
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 3, Truncate: 1}, nil)}
	_, b, err := postJSON(t, client, ts.URL, `{"cell":"y"}`)
	if err == nil && len(b) == 1000 {
		t.Fatal("truncate=1 delivered the full body cleanly")
	}
}

// TestNetTransportBlackHole: the request hangs until its context
// expires; nothing is delivered.
func TestNetTransportBlackHole(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "should never arrive")
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 5, BlackHole: 1}, nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL, bytes.NewReader([]byte(`{"cell":"z"}`)))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("black-holed request returned a response")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("black hole returned before the context deadline")
	}
}

// TestNetTransportSlowDrip: the body arrives intact but strictly slower
// than the per-chunk delay floor implies.
func TestNetTransportSlowDrip(t *testing.T) {
	served := strings.Repeat("d", 4*dripChunk)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, served)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 7, SlowDrip: 1, DripDelay: 10 * time.Millisecond}, nil)}
	start := time.Now()
	_, b, err := postJSON(t, client, ts.URL, `{"cell":"w"}`)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != served {
		t.Fatalf("slow-drip altered the body: %d bytes", len(b))
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("4-chunk drip finished in %v, want >= 40ms", elapsed)
	}
}

// TestNetTransportDeterministicPerBody: different request bodies draw
// independent fault decisions; the same body always draws the same one.
func TestNetTransportDeterministicPerBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"v":987654321}`)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(NetSpec{Seed: 11, Corrupt: 0.5}, nil)}
	verdicts := map[string]bool{}
	hitBoth := map[bool]bool{}
	for i := 0; i < 64; i++ {
		body := `{"cell":"c` + strings.Repeat("x", i) + `"}`
		for rep := 0; rep < 2; rep++ {
			_, b, err := postJSON(t, client, ts.URL, body)
			if err != nil {
				t.Fatal(err)
			}
			corrupted := string(b) != `{"v":987654321}`
			if rep == 0 {
				verdicts[body] = corrupted
				hitBoth[corrupted] = true
			} else if verdicts[body] != corrupted {
				t.Fatalf("body %q changed verdict between sends", body)
			}
		}
	}
	if !hitBoth[true] || !hitBoth[false] {
		t.Fatal("corrupt=0.5 over 64 bodies never produced both verdicts")
	}
}

// TestCorruptDigitEdgeCases: the mutator always changes the bytes and
// never panics, whatever the body looks like.
func TestCorruptDigitEdgeCases(t *testing.T) {
	for _, body := range []string{"1", "abc", "no digits here!", "x9", strings.Repeat("a", 100) + "5"} {
		out := corruptDigit([]byte(body))
		if bytes.Equal(out, []byte(body)) {
			t.Errorf("corruptDigit(%q) unchanged", body)
		}
	}
	if out := corruptDigit(nil); len(out) != 0 {
		t.Errorf("corruptDigit(nil) = %q", out)
	}
}
