package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"ristretto/internal/safeio"
)

func TestParseDiskSpec(t *testing.T) {
	spec, err := ParseDiskSpec("path=cells/*,seed=5,enospc=1,eio=0.2,sync-fail=0.1,torn-write=0.3,bit-rot=0.5,after=10")
	if err != nil {
		t.Fatal(err)
	}
	want := DiskSpec{Seed: 5, Path: "cells/*", ENOSPC: 1, EIO: 0.2, SyncFail: 0.1, TornWrite: 0.3, BitRot: 0.5, After: 10}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if spec.Zero() {
		t.Fatal("non-zero spec reports Zero")
	}
	zero, err := ParseDiskSpec("")
	if err != nil || !zero.Zero() {
		t.Fatalf("empty spec = %+v, %v", zero, err)
	}
	for _, bad := range []string{
		"bogus", "enospc=2", "enospc=-1", "eio=NaN", "after=0", "after=x",
		"seed=notanumber", "unknown=1", "torn-write", "bit-rot=1.5",
	} {
		if _, err := ParseDiskSpec(bad); err == nil {
			t.Errorf("ParseDiskSpec(%q) accepted", bad)
		}
	}
}

func TestNormalizePath(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"cells/aa/fp123", "cells/aa/fp123"},
		{"cells/aa/.fp123.tmp98765", "cells/aa/fp123"},
		{".journal.tmp42", "journal"},
		{"cells/.hidden", "cells/.hidden"}, // dotfile without .tmp suffix is itself
		{"a/b/../c/file", "a/c/file"},
	} {
		if got := normalizePath(tc.in); got != tc.want {
			t.Errorf("normalizePath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestMatchGlobAndScope(t *testing.T) {
	for _, tc := range []struct {
		pattern, s string
		want       bool
	}{
		{"cells/*", "cells/aa/fp", true}, // '*' crosses '/'
		{"cells/*", "journal", false},
		{"*", "anything/at/all", true},
		{"f?", "fp", true},
		{"f?", "fpp", false},
		{"*.journal", "run/fleet.journal", true},
	} {
		d := &diskFS{spec: DiskSpec{Path: tc.pattern}}
		if got := d.matches(tc.s); got != tc.want {
			t.Errorf("matches(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
	// Component-aligned suffix: a spec written against a relative layout
	// ("cells/*") must scope an absolute tmpdir path to the same subtree.
	d := &diskFS{spec: DiskSpec{Path: "cells/*"}}
	if !d.matches("tmp/run1/cells/aa/fp") {
		t.Error("suffix scope did not match absolute-style path")
	}
	if d.matches("tmp/run1/journal") {
		t.Error("suffix scope matched a path outside the subtree")
	}
}

func TestDiskDecisionsDeterministic(t *testing.T) {
	spec := DiskSpec{Seed: 9, ENOSPC: 0.5, EIO: 0.5, TornWrite: 0.5, SyncFail: 0.5, BitRot: 0.5}
	a := &diskFS{spec: spec}
	b := &diskFS{spec: spec}
	for _, p := range []string{"cells/aa/x", "cells/bb/y", "journal", "deep/nested/path/z"} {
		ae, at, as := a.writeFaults(p)
		be, bt, bs := b.writeFaults(p)
		if ae != be || at != bt || as != bs {
			t.Fatalf("write decisions for %q differ between instances", p)
		}
		aeio, arot := a.readFaults(p)
		beio, brot := b.readFaults(p)
		if aeio != beio || arot != brot {
			t.Fatalf("read decisions for %q differ between instances", p)
		}
	}
	// And a different seed must change at least one decision across paths.
	c := &diskFS{spec: DiskSpec{Seed: 10, ENOSPC: 0.5, EIO: 0.5, TornWrite: 0.5, SyncFail: 0.5, BitRot: 0.5}}
	differs := false
	for _, p := range []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"} {
		ae, at, as := a.writeFaults(p)
		ce, ct, cs := c.writeFaults(p)
		if ae != ce || at != ct || as != cs {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seed change did not change any decision")
	}
}

func TestENOSPCRejectsWriteKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cells", "aa", "entry")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	old := []byte("old content")
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewDiskFS(DiskSpec{Seed: 1, ENOSPC: 1}, nil)
	err := safeio.WriteFileFS(fsys, path, []byte("new content"), 0o644)
	if err == nil {
		t.Fatal("write through a full disk succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("error %v does not wrap ENOSPC", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(got, old) {
		t.Fatalf("old file damaged by failed write: %q, %v", got, rerr)
	}
}

func TestSyncFailPropagatesNoReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	old := []byte("old")
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewDiskFS(DiskSpec{Seed: 1, SyncFail: 1}, nil)
	err := safeio.WriteFileFS(fsys, path, []byte("new"), 0o644)
	if err == nil {
		t.Fatal("write with failing fsync succeeded")
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("error %v does not wrap EIO", err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, old) {
		t.Fatalf("old file replaced despite failed fsync: %q", got)
	}
}

func TestTornWriteAcknowledgesPrefixOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	fsys := NewDiskFS(DiskSpec{Seed: 1, TornWrite: 1}, nil)
	payload := []byte("0123456789abcdef")
	// The torn write is the lying-disk case: safeio reports success.
	if err := safeio.WriteFileFS(fsys, path, payload, 0o644); err != nil {
		t.Fatalf("torn write must be acknowledged, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn write persisted %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	if !bytes.HasPrefix(payload, got) {
		t.Fatalf("torn write persisted non-prefix bytes %q", got)
	}
}

func TestEIOFailsReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewDiskFS(DiskSpec{Seed: 1, EIO: 1}, nil)
	if _, err := fsys.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile error = %v, want wrapped EIO", err)
	}
	if _, err := fsys.Open(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Open error = %v, want wrapped EIO", err)
	}
}

func TestBitRotFlipsOneDeterministicByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	content := bytes.Repeat([]byte("abcdefgh"), 32)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewDiskFS(DiskSpec{Seed: 3, BitRot: 1}, nil)
	rotted, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range content {
		if rotted[i] != content[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit rot changed %d bytes, want exactly 1", diff)
	}
	again, err := fsys.ReadFile(path)
	if err != nil || !bytes.Equal(again, rotted) {
		t.Fatalf("bit rot not deterministic across reads")
	}
	// Streaming reads through Open must rot the same byte ReadFile does.
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	streamed := make([]byte, 0, len(content))
	buf := make([]byte, 7) // odd size: the rot offset must survive chunking
	for {
		n, rerr := f.Read(buf)
		streamed = append(streamed, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	if !bytes.Equal(streamed, rotted) {
		t.Fatal("streamed rot differs from ReadFile rot")
	}
}

func TestAfterGateDelaysFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewDiskFS(DiskSpec{Seed: 1, EIO: 1, After: 2}, nil)
	for i := 0; i < 2; i++ {
		if _, err := fsys.ReadFile(path); err != nil {
			t.Fatalf("read %d failed before the After gate: %v", i, err)
		}
	}
	if _, err := fsys.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read after the gate = %v, want EIO", err)
	}
}

func TestPathScopeLimitsFaults(t *testing.T) {
	dir := t.TempDir()
	inScope := filepath.Join(dir, "cells", "aa", "entry")
	outScope := filepath.Join(dir, "journal")
	for _, p := range []string{inScope, outScope} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fsys := NewDiskFS(DiskSpec{Seed: 1, EIO: 1, Path: "cells/*"}, nil)
	if _, err := fsys.ReadFile(inScope); !errors.Is(err, syscall.EIO) {
		t.Fatalf("in-scope read = %v, want EIO", err)
	}
	if _, err := fsys.ReadFile(outScope); err != nil {
		t.Fatalf("out-of-scope read failed: %v", err)
	}
}

func TestZeroSpecReturnsBaseUnchanged(t *testing.T) {
	if fsys := NewDiskFS(DiskSpec{}, nil); fsys != safeio.OS {
		t.Fatal("zero spec did not return the passthrough FS")
	}
}
