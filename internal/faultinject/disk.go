package faultinject

// Disk fault injection: a seed-deterministic safeio.FS that makes the
// filesystem lie — ENOSPC on write, EIO on read, fsync that fails, torn
// writes that acknowledge bytes the disk never kept, and bit rot that
// flips a byte on the way back. The storage layers built on safeio (the
// cell cache, the fleet journal, the experiment checkpoint) are threaded
// through the FS seam, so the -disk-fault flag proves their durability
// claims the same way -fault proves the runner's and -net-fault proves the
// wire's.
//
// Decisions are keyed on the file's path (with safeio's random temp-file
// suffix stripped, so a fault follows the TARGET file deterministically),
// never on call order or timing: the same spec rots the same cache entries
// and rejects the same writes regardless of worker count, which is what
// lets a disk-chaos run be byte-compared against a clean golden run.

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"ristretto/internal/safeio"
)

// ErrInjectedENOSPC is the error injected for enospc write faults. It
// wraps syscall.ENOSPC, so errors.Is sees the real condition callers
// already handle.
var ErrInjectedENOSPC = fmt.Errorf("faultinject: injected disk full: %w", syscall.ENOSPC)

// ErrInjectedEIO is the error injected for eio read and sync-fail faults.
// It wraps syscall.EIO.
var ErrInjectedEIO = fmt.Errorf("faultinject: injected I/O error: %w", syscall.EIO)

// DiskSpec describes a deterministic disk fault schedule for NewDiskFS.
// Probabilities are per file path in [0,1]: a fault of each kind either
// always or never fires for a given path, decided by hashing (Seed, kind,
// path) — so "enospc=1" is a disk that is full for every matching path,
// and "bit-rot=0.5" rots half the matching files, the same half every run.
type DiskSpec struct {
	// Seed drives every injection decision, like Spec.Seed.
	Seed int64

	// Path, when non-empty, scopes the faults to matching files. The
	// pattern matches the whole (temp-suffix-normalized) path or any
	// component-aligned suffix of it; '*' matches any run of characters
	// including '/', '?' matches one character. "cells/*" therefore scopes
	// faults to everything under a cells/ directory. Empty matches all.
	Path string

	// ENOSPC is the probability that writes to a path fail with a wrapped
	// syscall.ENOSPC (nothing is written).
	ENOSPC float64

	// EIO is the probability that reads of a path fail with a wrapped
	// syscall.EIO.
	EIO float64

	// SyncFail is the probability that fsync of a path's handle fails with
	// a wrapped syscall.EIO after the data was written — the "lost my page
	// cache" case writers must treat as data loss.
	SyncFail float64

	// TornWrite is the probability that writes to a path are acknowledged
	// in full while only a prefix of the first write reaches the file and
	// everything after it is dropped — the lying disk a later reader must
	// catch by CRC/digest, never by trusting the writer.
	TornWrite float64

	// BitRot is the probability that one deterministic byte of a path's
	// content is flipped on every read — corruption at rest.
	BitRot float64

	// After, when positive, keeps all faults disarmed until that many
	// matching FS operations have been observed — the "disk goes bad
	// mid-run" schedule, like the panic spec's kill-after.
	After int
}

// ParseDiskSpec parses the -disk-fault flag syntax: comma-separated
// key=value pairs, e.g.
//
//	path=cells/*,seed=5,enospc=1,eio=0.2,sync-fail=0.1,torn-write=0.3,bit-rot=0.5,after=10
//
// An empty string yields a zero DiskSpec.
func ParseDiskSpec(s string) (DiskSpec, error) {
	var spec DiskSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad seed %q", val)
			}
			spec.Seed = n
		case "path":
			spec.Path = val
		case "enospc":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad enospc prob %q", val)
			}
			spec.ENOSPC = p
		case "eio":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad eio prob %q", val)
			}
			spec.EIO = p
		case "sync-fail":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad sync-fail prob %q", val)
			}
			spec.SyncFail = p
		case "torn-write":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad torn-write prob %q", val)
			}
			spec.TornWrite = p
		case "bit-rot":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad bit-rot prob %q", val)
			}
			spec.BitRot = p
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return spec, fmt.Errorf("faultinject: bad after %q", val)
			}
			spec.After = n
		default:
			return spec, fmt.Errorf("faultinject: unknown key %q", key)
		}
	}
	return spec, nil
}

// Zero reports whether the spec injects nothing, so callers can keep the
// passthrough FS entirely.
func (s DiskSpec) Zero() bool {
	return s.ENOSPC == 0 && s.EIO == 0 && s.SyncFail == 0 && s.TornWrite == 0 && s.BitRot == 0
}

// diskFS is the injecting FS. Write-side faults (enospc, torn-write,
// sync-fail) attach to handles opened for writing; read-side faults (eio,
// bit-rot) fire in ReadFile and on handles opened for reading. Everything
// else passes through.
type diskFS struct {
	spec DiskSpec
	base safeio.FS
	ops  atomic.Int64 // matching operations seen, for Spec.After
}

// NewDiskFS wraps base (nil = safeio.OS) with the spec's faults. A zero
// spec returns base unchanged.
func NewDiskFS(spec DiskSpec, base safeio.FS) safeio.FS {
	if base == nil {
		base = safeio.OS
	}
	if spec.Zero() {
		return base
	}
	return &diskFS{spec: spec, base: base}
}

// normalizePath makes fault decisions follow the target file: safeio's
// atomic writer stages content in ".<name>.tmp<random>" beside the target,
// and the random suffix would otherwise make every attempt draw a fresh
// fault. The temp decoration is stripped so temp file and target share one
// fate.
func normalizePath(p string) string {
	p = filepath.ToSlash(filepath.Clean(p))
	dir, base := filepath.Dir(p), filepath.Base(p)
	if strings.HasPrefix(base, ".") {
		if target, _, ok := strings.Cut(base[1:], ".tmp"); ok && target != "" {
			base = target
			if dir == "." {
				return base
			}
			return filepath.ToSlash(filepath.Join(dir, base))
		}
	}
	return p
}

// matchGlob reports whether the pattern matches s, with '*' matching any
// run of characters (including '/') and '?' matching exactly one.
func matchGlob(pattern, s string) bool {
	pi, si := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			pi, si = starP+1, starS
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// matches reports whether the (normalized) path is in the spec's scope:
// the glob matches the whole path or any component-aligned suffix.
func (d *diskFS) matches(p string) bool {
	if d.spec.Path == "" {
		return true
	}
	for {
		if matchGlob(d.spec.Path, p) {
			return true
		}
		i := strings.IndexByte(p, '/')
		if i < 0 {
			return false
		}
		p = p[i+1:]
	}
}

// armed reports whether faults may fire for path, counting the operation
// against Spec.After.
func (d *diskFS) armed(p string) bool {
	if !d.matches(p) {
		return false
	}
	n := d.ops.Add(1)
	return d.spec.After <= 0 || n > int64(d.spec.After)
}

// roll draws the deterministic decision for (kind, path).
func (d *diskFS) roll(kind, p string) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return rollAt(d.spec.Seed, kind, h)
}

// writeFaults resolves the write-side fate of a path in one draw set.
func (d *diskFS) writeFaults(p string) (enospc, torn, syncFail bool) {
	if !d.armed(p) {
		return false, false, false
	}
	enospc = d.spec.ENOSPC > 0 && d.roll("enospc", p) < d.spec.ENOSPC
	torn = d.spec.TornWrite > 0 && d.roll("torn-write", p) < d.spec.TornWrite
	syncFail = d.spec.SyncFail > 0 && d.roll("sync-fail", p) < d.spec.SyncFail
	return
}

// readFaults resolves the read-side fate of a path.
func (d *diskFS) readFaults(p string) (eio bool, rotAt int64) {
	if !d.armed(p) {
		return false, -1
	}
	rotAt = -1
	eio = d.spec.EIO > 0 && d.roll("eio", p) < d.spec.EIO
	if d.spec.BitRot > 0 && d.roll("bit-rot", p) < d.spec.BitRot {
		// The rot offset is itself deterministic per path; the reader maps
		// it into the file's length.
		rotAt = int64(d.roll("bit-rot-offset", p) * (1 << 30))
	}
	return
}

// CreateTemp implements safeio.FS; write faults key on the normalized
// target name, not the random temp name.
func (d *diskFS) CreateTemp(dir, pattern string) (safeio.File, error) {
	f, err := d.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return d.wrapWriter(f, normalizePath(f.Name())), nil
}

// OpenFile implements safeio.FS. Write-opened handles get write faults;
// read-opened handles get read faults.
func (d *diskFS) OpenFile(path string, flag int, perm os.FileMode) (safeio.File, error) {
	key := normalizePath(path)
	if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		f, err := d.base.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		return d.wrapWriter(f, key), nil
	}
	return d.openReader(path, key)
}

// Open implements safeio.FS.
func (d *diskFS) Open(path string) (safeio.File, error) {
	return d.openReader(path, normalizePath(path))
}

func (d *diskFS) openReader(path, key string) (safeio.File, error) {
	eio, rotAt := d.readFaults(key)
	if eio {
		return nil, fmt.Errorf("faultinject: read %s: %w", path, ErrInjectedEIO)
	}
	f, err := d.base.Open(path)
	if err != nil {
		return nil, err
	}
	if rotAt < 0 {
		return f, nil
	}
	// Map the rot draw into the file's actual length so streaming reads
	// flip the same byte ReadFile would.
	info, serr := d.base.Stat(path)
	if serr != nil || info.IsDir() || info.Size() == 0 {
		return f, nil
	}
	return &rotFile{File: f, rotAt: rotAt % info.Size()}, nil
}

func (d *diskFS) wrapWriter(f safeio.File, key string) safeio.File {
	enospc, torn, syncFail := d.writeFaults(key)
	if !enospc && !torn && !syncFail {
		return f
	}
	return &faultWriteFile{File: f, key: key, enospc: enospc, torn: torn, syncFail: syncFail}
}

// ReadFile implements safeio.FS.
func (d *diskFS) ReadFile(path string) ([]byte, error) {
	key := normalizePath(path)
	eio, rotAt := d.readFaults(key)
	if eio {
		return nil, fmt.Errorf("faultinject: read %s: %w", path, ErrInjectedEIO)
	}
	data, err := d.base.ReadFile(path)
	if err != nil {
		return data, err
	}
	if rotAt >= 0 && len(data) > 0 {
		data[rotAt%int64(len(data))] ^= 0x04
	}
	return data, nil
}

// Rename implements safeio.FS.
func (d *diskFS) Rename(oldpath, newpath string) error { return d.base.Rename(oldpath, newpath) }

// Remove implements safeio.FS.
func (d *diskFS) Remove(path string) error { return d.base.Remove(path) }

// MkdirAll implements safeio.FS.
func (d *diskFS) MkdirAll(path string, perm os.FileMode) error { return d.base.MkdirAll(path, perm) }

// Stat implements safeio.FS.
func (d *diskFS) Stat(path string) (os.FileInfo, error) { return d.base.Stat(path) }

// WalkDir implements safeio.FS.
func (d *diskFS) WalkDir(root string, fn fs.WalkDirFunc) error { return d.base.WalkDir(root, fn) }

// faultWriteFile injects write-side faults on one handle.
type faultWriteFile struct {
	safeio.File
	key      string
	enospc   bool
	torn     bool
	syncFail bool
	tornDone bool
}

// Write implements io.Writer with the handle's injected fate: enospc
// rejects every write outright; torn-write persists only the first half of
// the first write, drops the rest, and lies that everything landed.
func (f *faultWriteFile) Write(p []byte) (int, error) {
	if f.enospc {
		return 0, fmt.Errorf("faultinject: write %s: %w", f.key, ErrInjectedENOSPC)
	}
	if f.torn {
		if !f.tornDone {
			f.tornDone = true
			f.File.Write(p[:len(p)/2])
		}
		return len(p), nil // acknowledged, never persisted
	}
	return f.File.Write(p)
}

// Sync implements the fsync fault: the data may have been written, but the
// handle reports it never became durable.
func (f *faultWriteFile) Sync() error {
	if f.syncFail {
		return fmt.Errorf("faultinject: fsync %s: %w", f.key, ErrInjectedEIO)
	}
	return f.File.Sync()
}

// rotFile flips one byte at a fixed offset as the content streams by.
type rotFile struct {
	safeio.File
	off   int64
	rotAt int64
}

// Read implements io.Reader with bit rot at the handle's fixed offset.
func (f *rotFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if i := f.rotAt - f.off; i >= 0 && i < int64(n) {
		p[i] ^= 0x04
	}
	f.off += int64(n)
	return n, err
}
