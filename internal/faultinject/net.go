package faultinject

// Network fault injection: a seed-deterministic http.RoundTripper that
// corrupts, truncates, black-holes or slow-drips HTTP responses on their
// way back to the client. The fleet coordinator installs it (the
// ristretto-fleet -net-fault flag) to prove the end-to-end integrity
// pipeline: a corrupted worker response must be caught by the payload
// digest and recomputed elsewhere, never merged.
//
// Decisions are keyed on a hash of the request body (falling back to
// method+URL), not on call order — the same request draws the same fault
// regardless of which retry or worker goroutine sends it. Scope faults to
// one worker with NetSpec.Host, otherwise a deterministic per-request
// fault would follow the cell to every worker it is retried on.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// NetSpec describes a deterministic network fault schedule for
// NewTransport. Probabilities are per request in [0,1], decided by
// hashing (Seed, kind, request body).
type NetSpec struct {
	// Seed drives every injection decision, like Spec.Seed.
	Seed int64

	// Host, when non-empty, scopes the faults to requests whose URL host
	// matches exactly (e.g. "127.0.0.1:8081"). Requests to other hosts
	// pass through untouched.
	Host string

	// Corrupt is the probability that a response body is corrupted in
	// flight: one digit inside the body is deterministically rewritten,
	// keeping JSON well-formed while breaking any content digest.
	Corrupt float64

	// Truncate is the probability that a response body is cut short
	// (Content-Length preserved, so the client sees an unexpected EOF).
	Truncate float64

	// BlackHole is the probability that a request is swallowed: no
	// response, no error, until the request's context gives up.
	BlackHole float64

	// SlowDrip is the probability that a response body arrives a few
	// bytes at a time with DripDelay between chunks — a straggler that
	// still completes, for exercising hedged dispatch.
	SlowDrip  float64
	DripDelay time.Duration
}

// ParseNetSpec parses the -net-fault flag syntax: comma-separated
// key=value pairs, e.g.
//
//	host=127.0.0.1:8081,seed=9,corrupt=1,truncate=0.2,blackhole=0.1,slowdrip=0.3:50ms
//
// slowdrip takes a mandatory :duration suffix. An empty string yields a
// zero NetSpec.
func ParseNetSpec(s string) (NetSpec, error) {
	var spec NetSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad seed %q", val)
			}
			spec.Seed = n
		case "host":
			spec.Host = val
		case "corrupt":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad corrupt prob %q", val)
			}
			spec.Corrupt = p
		case "truncate":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad truncate prob %q", val)
			}
			spec.Truncate = p
		case "blackhole":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad blackhole prob %q", val)
			}
			spec.BlackHole = p
		case "slowdrip":
			prob, dur, found := strings.Cut(val, ":")
			if !found {
				return spec, fmt.Errorf("faultinject: slowdrip needs prob:duration, got %q", val)
			}
			p, err := parseProb(prob)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad slowdrip prob %q", prob)
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d < 0 {
				return spec, fmt.Errorf("faultinject: bad slowdrip duration %q", dur)
			}
			spec.SlowDrip, spec.DripDelay = p, d
		default:
			return spec, fmt.Errorf("faultinject: unknown key %q", key)
		}
	}
	return spec, nil
}

// Zero reports whether the spec injects nothing, so callers can skip
// wrapping the transport entirely.
func (s NetSpec) Zero() bool {
	return s.Corrupt == 0 && s.Truncate == 0 && s.BlackHole == 0 && s.SlowDrip == 0
}

// netTransport is the injecting RoundTripper. It only ever mutates the
// response direction: requests reach the server intact, so the server
// computes the true result and the coordinator's verification is what is
// under test.
type netTransport struct {
	spec NetSpec
	base http.RoundTripper
}

// NewTransport wraps base (nil = http.DefaultTransport) with the spec's
// response faults. A zero spec returns base unchanged.
func NewTransport(spec NetSpec, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if spec.Zero() {
		return base
	}
	return &netTransport{spec: spec, base: base}
}

// RoundTrip implements http.RoundTripper.
func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.spec.Host != "" && req.URL.Host != t.spec.Host {
		return t.base.RoundTrip(req)
	}
	key := requestKey(req)
	if t.spec.BlackHole > 0 && rollAt(t.spec.Seed, "blackhole", key) < t.spec.BlackHole {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if t.spec.Corrupt > 0 && rollAt(t.spec.Seed, "corrupt", key) < t.spec.Corrupt {
		if err := mutateBody(resp, corruptDigit); err != nil {
			resp.Body.Close()
			return nil, err
		}
		return resp, nil
	}
	if t.spec.Truncate > 0 && rollAt(t.spec.Seed, "truncate", key) < t.spec.Truncate {
		if err := mutateBody(resp, truncateBody); err != nil {
			resp.Body.Close()
			return nil, err
		}
		return resp, nil
	}
	if t.spec.SlowDrip > 0 && rollAt(t.spec.Seed, "slowdrip", key) < t.spec.SlowDrip {
		resp.Body = &dripReader{rc: resp.Body, delay: t.spec.DripDelay, done: req.Context().Done()}
		return resp, nil
	}
	return resp, nil
}

// requestKey hashes what the request asks for. The body (via GetBody, so
// the outgoing stream is untouched) identifies a cell dispatch exactly;
// bodiless requests fall back to method+URL.
func requestKey(req *http.Request) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	if req.GetBody != nil {
		if rc, err := req.GetBody(); err == nil {
			b, _ := io.ReadAll(rc)
			rc.Close()
			mix(b)
			return h
		}
	}
	mix([]byte(req.Method))
	mix([]byte(req.URL.String()))
	return h
}

// mutateBody reads the full response body, applies f, and reinstalls the
// result WITHOUT touching Content-Length — a shortened body therefore
// reads as a mid-stream connection loss, exactly like the real fault.
func mutateBody(resp *http.Response, f func([]byte) []byte) error {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	resp.Body = io.NopCloser(bytes.NewReader(f(body)))
	return nil
}

// corruptDigit rewrites one digit in the middle region of the body
// (40%..90%, where a cell response's payload rows live, clear of the
// header fields) so the JSON stays parseable but any digest over the
// content breaks. A body with no digit there is scanned fully; a body
// with no digits at all gets its last byte flipped.
func corruptDigit(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	lo, hi := len(out)*2/5, len(out)*9/10
	for _, span := range [][2]int{{lo, hi}, {0, len(out)}} {
		for i := span[0]; i < span[1]; i++ {
			if out[i] >= '0' && out[i] <= '9' {
				out[i] = '0' + (out[i]-'0'+1)%10
				return out
			}
		}
	}
	out[len(out)-1] ^= 0x20
	return out
}

// truncateBody keeps the first 60% of the body.
func truncateBody(b []byte) []byte {
	return b[:len(b)*3/5]
}

// dripReader delivers the wrapped body dripChunk bytes at a time with a
// delay before each chunk, bailing out promptly when the request context
// is done.
type dripReader struct {
	rc    io.ReadCloser
	delay time.Duration
	done  <-chan struct{}
}

const dripChunk = 64

// Read implements io.Reader.
func (d *dripReader) Read(p []byte) (int, error) {
	select {
	case <-d.done:
		return 0, io.ErrUnexpectedEOF
	case <-time.After(d.delay):
	}
	if len(p) > dripChunk {
		p = p[:dripChunk]
	}
	return d.rc.Read(p)
}

// Close implements io.Closer.
func (d *dripReader) Close() error { return d.rc.Close() }
