// Package faultinject builds seed-deterministic fault schedules for the
// experiment harness's chaos tests and the -fault CLI flag. A Schedule
// decides per (cell, fault-kind) from its own seed — never from wall-clock
// time or scheduling order — so the same spec injects the same panics,
// delays and transient errors into the same cells regardless of worker
// count, which is what lets a chaos run be compared bit-for-bit against a
// golden no-fault run after recovery.
//
// The schedule plugs into internal/runner through the build-tag-free
// runtime hook runner.Cfg.Fault; with a nil hook the runner pays nothing.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrTransient is the error injected for transient faults. It is the
// canonical "retry me" error: runner configs created from a Spec treat
// exactly this as retryable.
var ErrTransient = errors.New("faultinject: injected transient error")

// IsTransient reports whether err is (or wraps) an injected transient
// fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Spec describes a deterministic fault schedule. Probabilities are per
// cell in [0,1]; a fault of each kind either always or never fires for a
// given cell, decided by hashing (Seed, kind, cell).
type Spec struct {
	// Seed drives every injection decision. Distinct seeds give distinct
	// (but individually deterministic) schedules.
	Seed int64

	// Panic is the probability that a cell's first attempt panics.
	// Panics are injected on attempt 0 only, so a retried cell can
	// distinguish "crashed once" from "always crashes".
	Panic float64

	// Transient is the probability that a cell fails with ErrTransient;
	// TransientAttempts is how many leading attempts fail before the cell
	// succeeds (default 1).
	Transient         float64
	TransientAttempts int

	// DelayProb is the probability that a cell sleeps Delay before
	// running, to shake out ordering assumptions.
	DelayProb float64
	Delay     time.Duration

	// KillAfter, when positive, fires the kill callback (see
	// Schedule.OnKill) once the schedule has seen that many cell entries —
	// the chaos tests use it to cancel or SIGKILL a sweep mid-run.
	KillAfter int
}

// ParseSpec parses the -fault flag syntax: comma-separated key=value
// pairs, e.g.
//
//	seed=7,panic=0.1,transient=0.2:2,delay=0.05:10ms,kill-after=5
//
// transient takes an optional :attempts suffix, delay a mandatory
// :duration suffix. An empty string yields a zero Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	spec.TransientAttempts = 1
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad seed %q", val)
			}
			spec.Seed = n
		case "panic":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad panic prob %q", val)
			}
			spec.Panic = p
		case "transient":
			prob, attempts, found := strings.Cut(val, ":")
			p, err := parseProb(prob)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad transient prob %q", prob)
			}
			spec.Transient = p
			if found {
				n, err := strconv.Atoi(attempts)
				if err != nil || n < 1 {
					return spec, fmt.Errorf("faultinject: bad transient attempts %q", attempts)
				}
				spec.TransientAttempts = n
			}
		case "delay":
			prob, dur, found := strings.Cut(val, ":")
			if !found {
				return spec, fmt.Errorf("faultinject: delay needs prob:duration, got %q", val)
			}
			p, err := parseProb(prob)
			if err != nil {
				return spec, fmt.Errorf("faultinject: bad delay prob %q", prob)
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d < 0 {
				return spec, fmt.Errorf("faultinject: bad delay duration %q", dur)
			}
			spec.DelayProb, spec.Delay = p, d
		case "kill-after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return spec, fmt.Errorf("faultinject: bad kill-after %q", val)
			}
			spec.KillAfter = n
		default:
			return spec, fmt.Errorf("faultinject: unknown key %q", key)
		}
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	// The negated range check also rejects NaN, which compares false to
	// everything and would otherwise slip through as a "probability".
	if err != nil || !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("probability %q not in [0,1]", s)
	}
	return p, nil
}

// Zero reports whether the spec injects nothing, so callers can skip
// installing a hook entirely.
func (s Spec) Zero() bool {
	return s.Panic == 0 && s.Transient == 0 && s.DelayProb == 0 && s.KillAfter == 0
}

// Schedule is an instantiated Spec: a concurrency-safe fault source whose
// Hook plugs into runner.Cfg.Fault.
type Schedule struct {
	spec    Spec
	entered atomic.Int64
	killed  atomic.Bool
	onKill  atomic.Pointer[func()]
}

// New instantiates a schedule for the spec.
func New(spec Spec) *Schedule {
	if spec.TransientAttempts < 1 {
		spec.TransientAttempts = 1
	}
	return &Schedule{spec: spec}
}

// OnKill registers the callback fired (once) when KillAfter cell entries
// have been observed. Typically a context cancel, or os.Exit for
// hard-kill chaos tests.
func (s *Schedule) OnKill(fn func()) { s.onKill.Store(&fn) }

// Entered reports how many cell attempts the schedule has seen.
func (s *Schedule) Entered() int { return int(s.entered.Load()) }

// Hook returns the runner fault hook implementing the schedule, or nil
// when the spec injects nothing.
func (s *Schedule) Hook() func(cell, attempt int) error {
	if s.spec.Zero() {
		return nil
	}
	return s.inject
}

func (s *Schedule) inject(cell, attempt int) error {
	n := s.entered.Add(1)
	if k := s.spec.KillAfter; k > 0 && n >= int64(k) && s.killed.CompareAndSwap(false, true) {
		if fn := s.onKill.Load(); fn != nil {
			(*fn)()
		}
	}
	if s.spec.DelayProb > 0 && s.roll("delay", cell) < s.spec.DelayProb {
		time.Sleep(s.spec.Delay)
	}
	if s.spec.Panic > 0 && attempt == 0 && s.roll("panic", cell) < s.spec.Panic {
		panic(fmt.Sprintf("faultinject: injected panic (seed %d, cell %d)", s.spec.Seed, cell))
	}
	if s.spec.Transient > 0 && attempt < s.spec.TransientAttempts && s.roll("transient", cell) < s.spec.Transient {
		return fmt.Errorf("cell %d attempt %d: %w", cell, attempt, ErrTransient)
	}
	return nil
}

// roll maps (seed, kind, cell) to a uniform value in [0,1), independent of
// call order or concurrency.
func (s *Schedule) roll(kind string, cell int) float64 {
	return rollAt(s.spec.Seed, kind, uint64(cell))
}

// rollAt maps (seed, kind, key) to a uniform value in [0,1). It is the
// package's one source of randomness: pure, order-independent, shared by
// the cell schedule (key = cell index) and the network fault transport
// (key = request body hash), so a spec's decisions depend only on what is
// being faulted, never on timing.
func rollAt(seed int64, kind string, key uint64) float64 {
	// FNV-1a over the kind keeps different fault kinds decorrelated even
	// for the same (seed, key).
	h := uint64(14695981039346656037)
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 1099511628211
	}
	x := uint64(seed) ^ h ^ (key+1)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
