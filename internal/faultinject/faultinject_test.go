package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7,panic=0.1,transient=0.2:2,delay=0.05:10ms,kill-after=5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 7, Panic: 0.1, Transient: 0.2, TransientAttempts: 2, DelayProb: 0.05, Delay: 10 * time.Millisecond, KillAfter: 5}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if spec.Zero() {
		t.Fatal("non-empty spec reported Zero")
	}
	empty, err := ParseSpec("")
	if err != nil || !empty.Zero() {
		t.Fatalf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{
		"panic", "panic=2", "panic=-0.1", "seed=x", "transient=0.5:0",
		"delay=0.5", "delay=0.5:-1s", "kill-after=0", "bogus=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Panic: 0.3, Transient: 0.4, TransientAttempts: 1}
	outcome := func(s *Schedule, cell int) (out string) {
		defer func() {
			if recover() != nil {
				out = "panic"
			}
		}()
		if err := s.inject(cell, 0); err != nil {
			return "transient"
		}
		return "ok"
	}
	a, b := New(spec), New(spec)
	var sawPanic, sawTransient, sawOK bool
	for cell := 0; cell < 200; cell++ {
		oa := outcome(a, cell)
		ob := outcome(b, cell)
		if oa != ob {
			t.Fatalf("cell %d: schedule A says %s, B says %s", cell, oa, ob)
		}
		switch oa {
		case "panic":
			sawPanic = true
		case "transient":
			sawTransient = true
		case "ok":
			sawOK = true
		}
	}
	if !sawPanic || !sawTransient || !sawOK {
		t.Fatalf("200 cells exercised panic=%v transient=%v ok=%v; probabilities broken", sawPanic, sawTransient, sawOK)
	}
}

func TestScheduleIndependentOfOrder(t *testing.T) {
	// Concurrent, shuffled evaluation must give the same per-cell decision
	// as serial evaluation: decisions hash (seed, kind, cell) only.
	spec := Spec{Seed: 9, Transient: 0.5}
	serial := New(spec)
	want := make([]bool, 100)
	for c := range want {
		want[c] = serial.inject(c, 0) != nil
	}
	conc := New(spec)
	got := make([]bool, 100)
	var wg sync.WaitGroup
	for c := 0; c < 100; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[c] = conc.inject(c, 0) != nil
		}()
	}
	wg.Wait()
	for c := range want {
		if got[c] != want[c] {
			t.Fatalf("cell %d: concurrent decision %v, serial %v", c, got[c], want[c])
		}
	}
}

func TestTransientAttemptsAndRetrySuccess(t *testing.T) {
	spec := Spec{Seed: 3, Transient: 1, TransientAttempts: 2}
	s := New(spec)
	for attempt := 0; attempt < 4; attempt++ {
		err := s.inject(5, attempt)
		if attempt < 2 {
			if !IsTransient(err) {
				t.Fatalf("attempt %d: err = %v, want transient", attempt, err)
			}
		} else if err != nil {
			t.Fatalf("attempt %d: err = %v, want success after transients", attempt, err)
		}
	}
	if !errors.Is(s.inject(5, 0), ErrTransient) {
		t.Fatal("IsTransient/errors.Is disagree")
	}
}

func TestKillAfterFiresOnce(t *testing.T) {
	spec := Spec{Seed: 1, KillAfter: 10, Transient: 0.0001}
	s := New(spec)
	var fired int
	s.OnKill(func() { fired++ })
	for i := 0; i < 50; i++ {
		s.inject(i, 0)
	}
	if fired != 1 {
		t.Fatalf("kill fired %d times, want exactly once", fired)
	}
	if s.Entered() != 50 {
		t.Fatalf("Entered = %d, want 50", s.Entered())
	}
}

func TestZeroSpecHasNilHook(t *testing.T) {
	if New(Spec{Seed: 5}).Hook() != nil {
		t.Fatal("zero spec should yield nil hook")
	}
	if New(Spec{Transient: 0.5}).Hook() == nil {
		t.Fatal("non-zero spec should yield a hook")
	}
}
