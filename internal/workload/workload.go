// Package workload generates the synthetic operands that stand in for the
// paper's quantized/pruned ImageNet models (see DESIGN.md, substitution
// table). Two modes are provided:
//
//   - Statistical mode: weights are clipped Gaussians and activations are
//     rectified Gaussians, pushed through the uniform quantizer of
//     internal/quant and magnitude-pruned to per-network target densities
//     that follow the paper's Figure 1 trend plus the additional pruning of
//     Section V-A2. This drives the full-network benchmarks.
//
//   - Exact mode: tensors with precisely controlled value-level and
//     atom-level density, used where the paper sweeps sparsity directly
//     (Figures 4, 15, 18).
//
// All generation is deterministic given a seed.
package workload

import (
	"math/rand"

	"ristretto/internal/atom"
	"ristretto/internal/model"
	"ristretto/internal/quant"
	"ristretto/internal/tensor"
)

// Targets holds the value-level density targets (fraction non-zero) for a
// layer's weights and activations after quantization and pruning.
type Targets struct {
	WDensity float64 // βv
	ADensity float64 // αv
}

// EvalTargets returns the per-network value-density targets used in the
// full-network evaluation. The trend follows Figure 1 (sparsity grows as
// precision shrinks) plus the paper's additional lossless pruning; a small
// deterministic per-network offset models cross-network variation.
func EvalTargets(netName string, wbits, abits int) Targets {
	var w, a float64
	switch {
	case wbits <= 2:
		w = 0.36
	case wbits <= 4:
		w = 0.42
	default:
		w = 0.48
	}
	switch {
	case abits <= 2:
		a = 0.25
	case abits <= 4:
		a = 0.35
	default:
		a = 0.45
	}
	// ±0.04 deterministic per-network jitter.
	h := hash64(netName)
	w += (float64(h%9) - 4) / 100
	a += (float64((h>>8)%9) - 4) / 100
	return Targets{WDensity: clamp01(w), ADensity: clamp01(a)}
}

func clamp01(x float64) float64 {
	if x < 0.02 {
		return 0.02
	}
	if x > 1 {
		return 1
	}
	return x
}

func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// DeriveSeed derives an independent stream seed from a base seed and a list
// of labels (network name, precision, figure ID, …) by folding each label's
// FNV-1a digest into a splitmix64 chain. Unlike ad-hoc mixing expressions
// (e.g. seed ^ hash*bits, which multiplies entropy out of the low bits and
// correlates streams that share factors), every label permutes the full
// 64-bit state, so any two distinct label paths yield statistically
// independent generators. Every experiment derives its generator this way,
// which is what lets the harness run cells in any order — or in parallel —
// with bit-identical results.
func DeriveSeed(base int64, labels ...string) int64 {
	x := splitmix(uint64(base))
	for _, l := range labels {
		x = splitmix(x ^ hash64(l))
	}
	return int64(x)
}

// Gen is a deterministic generator of synthetic operands.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// FeatureMap generates a c×h×w activation map at the given bit-width:
// rectified-Gaussian values quantized with the default activation clip, then
// pruned (smallest magnitudes first) toward the target value density.
//
// Real feature maps have strongly uneven per-channel occupancy (some filters
// fire rarely) — the effect Ristretto's w/a load balancing exploits — so the
// per-channel density target varies deterministically around aDensity by
// ±60% while preserving the mean.
func (g *Gen) FeatureMap(c, h, w, bits int, aDensity float64) *tensor.FeatureMap {
	f := tensor.NewFeatureMap(c, h, w, bits)
	raw := make([]float64, h*w)
	for ch := 0; ch < c; ch++ {
		for i := range raw {
			raw[i] = g.rng.NormFloat64()
		}
		q := quant.QuantizeUnsigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultActClip(bits)})
		plane := f.Channel(ch)
		copy(plane, q)
		// Pseudo-random per-channel factor in [0.4, 1.6], mean ≈1. Hashed
		// by channel index (not sequential) so that cyclic tile assignment
		// does not accidentally balance it.
		factor := 0.4 + 1.2*float64(splitmix(uint64(ch)+0x9e37)%1024)/1023
		quant.PruneToDensity(plane, clamp01(aDensity*factor))
	}
	return f
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Kernels generates a k×c×kh×kw kernel stack at the given bit-width:
// Gaussian weights quantized with the default weight clip, pruned to the
// target density.
func (g *Gen) Kernels(k, c, kh, kw, bits int, wDensity float64) *tensor.KernelStack {
	ks := tensor.NewKernelStack(k, c, kh, kw, bits)
	raw := make([]float64, ks.Len())
	for i := range raw {
		raw[i] = g.rng.NormFloat64()
	}
	q := quant.QuantizeSigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultWeightClip(bits)})
	copy(ks.Data, q)
	quant.PruneToDensity(ks.Data, wDensity)
	return ks
}

// value draws a non-zero value whose non-zero atoms appear with probability
// atomDensity; at least one atom is non-zero. Used by the exact mode.
func (g *Gen) value(bits int, gran atom.Granularity, atomDensity float64, signed bool) int32 {
	magBits := bits
	if signed {
		magBits = bits - 1 // sign-magnitude: magnitude fits bits-1 bits
	}
	cnt := gran.Count(magBits)
	var v int32
	for v == 0 {
		for i := 0; i < cnt; i++ {
			rem := magBits - i*int(gran) // bits left for this digit
			digitMax := 1<<uint(gran) - 1
			if rem < int(gran) {
				digitMax = 1<<uint(rem) - 1
			}
			if digitMax > 0 && g.rng.Float64() < atomDensity {
				v |= int32(g.rng.Intn(digitMax)+1) << (uint(i) * uint(gran))
			}
		}
	}
	if signed && g.rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

// FeatureMapExact generates a feature map where each position is non-zero
// with probability valueDensity, and each atom of a non-zero value is
// non-zero with probability ~atomDensity (at least one). This gives direct
// control of both αv and αa for the sparsity-sweep experiments.
func (g *Gen) FeatureMapExact(c, h, w, bits int, gran atom.Granularity, valueDensity, atomDensity float64) *tensor.FeatureMap {
	f := tensor.NewFeatureMap(c, h, w, bits)
	for i := range f.Data {
		if g.rng.Float64() < valueDensity {
			f.Data[i] = g.value(bits, gran, atomDensity, false)
		}
	}
	return f
}

// KernelsExact is the weight-side analogue of FeatureMapExact.
func (g *Gen) KernelsExact(k, c, kh, kw, bits int, gran atom.Granularity, valueDensity, atomDensity float64) *tensor.KernelStack {
	ks := tensor.NewKernelStack(k, c, kh, kw, bits)
	for i := range ks.Data {
		if g.rng.Float64() < valueDensity {
			ks.Data[i] = g.value(bits, gran, atomDensity, true)
		}
	}
	return ks
}

// SparseVector generates an n-long vector of uniformly distributed bit-width
// values where each position is non-zero with probability density — the
// randomly generated sparse vectors of the paper's Figure 4 study.
func (g *Gen) SparseVector(n, bits int, density float64, signed bool) []int32 {
	v := make([]int32, n)
	for i := range v {
		if g.rng.Float64() >= density {
			continue
		}
		if signed {
			lim := 1<<(bits-1) - 1
			x := int32(g.rng.Intn(2*lim+1) - lim)
			if x == 0 {
				x = 1
			}
			v[i] = x
		} else {
			v[i] = int32(g.rng.Intn(1<<bits-1) + 1)
		}
	}
	return v
}

// LayerOperands generates the full activation and weight tensors of a layer
// at the given precisions and targets.
func (g *Gen) LayerOperands(l model.Layer, wbits, abits int, t Targets) (*tensor.FeatureMap, *tensor.KernelStack) {
	f := g.FeatureMap(l.C, l.H, l.W, abits, t.ADensity)
	k := g.Kernels(l.K, l.C, l.KH, l.KW, wbits, t.WDensity)
	return f, k
}
