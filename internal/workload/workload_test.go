package workload

import (
	"math"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/model"
	"ristretto/internal/quant"
)

func TestFeatureMapRespectsDensityTarget(t *testing.T) {
	g := NewGen(1)
	f := g.FeatureMap(8, 32, 32, 8, 0.3)
	d := f.Density()
	if d > 0.3+1.0/float64(f.Len()) {
		t.Fatalf("density %v exceeds target 0.3", d)
	}
	if d < 0.25 {
		t.Fatalf("density %v implausibly below target", d)
	}
}

func TestKernelsRespectDensityTarget(t *testing.T) {
	g := NewGen(2)
	k := g.Kernels(64, 64, 3, 3, 4, 0.4)
	d := k.Density()
	if d > 0.4+1.0/float64(k.Len()) || d < 0.3 {
		t.Fatalf("kernel density %v not near target 0.4", d)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGen(7).FeatureMap(2, 8, 8, 8, 0.5)
	b := NewGen(7).FeatureMap(2, 8, 8, 8, 0.5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestExactModeDensities(t *testing.T) {
	g := NewGen(3)
	f := g.FeatureMapExact(4, 64, 64, 8, 2, 0.5, 0.6)
	s := quant.Measure(f.Data, 8, 2)
	if math.Abs(s.ValueDensity-0.5) > 0.05 {
		t.Fatalf("value density %v far from 0.5", s.ValueDensity)
	}
	// Atom density is conditioned on at-least-one-atom, so it lands at or a
	// bit above the requested probability.
	if s.AtomDensity < 0.55 || s.AtomDensity > 0.75 {
		t.Fatalf("atom density %v far from 0.6", s.AtomDensity)
	}
}

func TestExactKernelsSignedRange(t *testing.T) {
	g := NewGen(4)
	k := g.KernelsExact(4, 4, 3, 3, 8, 2, 0.7, 0.5)
	limit := int32(127)
	sawNeg := false
	for _, v := range k.Data {
		if v > limit || v < -limit {
			t.Fatalf("weight %d outside signed 8-bit magnitude range", v)
		}
		sawNeg = sawNeg || v < 0
	}
	if !sawNeg {
		t.Fatal("no negative weights generated")
	}
}

func TestSparseVector(t *testing.T) {
	g := NewGen(5)
	v := g.SparseVector(10000, 8, 0.4, false)
	nz := 0
	for _, x := range v {
		if x < 0 || x > 255 {
			t.Fatalf("unsigned vector value %d out of range", x)
		}
		if x != 0 {
			nz++
		}
	}
	if math.Abs(float64(nz)/10000-0.4) > 0.03 {
		t.Fatalf("vector density %v far from 0.4", float64(nz)/10000)
	}
	sv := g.SparseVector(10000, 8, 1.0, true)
	for _, x := range sv {
		if x == 0 || x > 127 || x < -127 {
			t.Fatalf("signed dense vector value %d invalid", x)
		}
	}
}

func TestEvalTargetsTrend(t *testing.T) {
	for _, net := range []string{"AlexNet", "VGG-16", "ResNet-50"} {
		t8 := EvalTargets(net, 8, 8)
		t4 := EvalTargets(net, 4, 4)
		t2 := EvalTargets(net, 2, 2)
		if !(t2.WDensity < t4.WDensity && t4.WDensity < t8.WDensity) {
			t.Errorf("%s weight density not decreasing with bits: %v %v %v", net, t8, t4, t2)
		}
		if !(t2.ADensity < t4.ADensity && t4.ADensity < t8.ADensity) {
			t.Errorf("%s act density not decreasing with bits: %v %v %v", net, t8, t4, t2)
		}
	}
}

func TestLayerStatsConsistency(t *testing.T) {
	g := NewGen(6)
	l := model.Layer{Name: "t", C: 8, H: 16, W: 16, K: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	s := g.LayerStats(l, 4, 8, 2, Targets{WDensity: 0.5, ADensity: 0.4}, true)
	sumA, sumW := 0, 0
	for c := 0; c < l.C; c++ {
		sumA += s.ActAtomsPerChan[c]
		sumW += s.WAtomsPerChan[c]
	}
	if sumA != s.A.NonZeroAtoms {
		t.Fatalf("per-channel act atoms %d != total %d", sumA, s.A.NonZeroAtoms)
	}
	if sumW != s.W.NonZeroAtoms {
		t.Fatalf("per-channel weight atoms %d != total %d", sumW, s.W.NonZeroAtoms)
	}
	if s.WBits != 4 || s.ABits != 8 {
		t.Fatalf("bit-widths not recorded: %d %d", s.WBits, s.ABits)
	}
	// Term histogram covers all elements.
	tot := 0
	for _, c := range s.ATermHist {
		tot += c
	}
	if tot != int(l.Activations()) {
		t.Fatalf("act term histogram sums to %d, want %d", tot, l.Activations())
	}
}

func TestNetworkStats(t *testing.T) {
	g := NewGen(8)
	n := model.AlexNet()
	p := model.Uniform(n, 2)
	stats := g.NetworkStats(n, p, atom.Granularity(2), true)
	if len(stats) != len(n.Layers) {
		t.Fatal("stats length mismatch")
	}
	for i, s := range stats {
		if s.Layer.Name != n.Layers[i].Name {
			t.Fatal("layer order lost")
		}
		if s.A.NonZeroAtoms <= 0 || s.W.NonZeroAtoms <= 0 {
			t.Fatalf("layer %s has empty streams", s.Layer.Name)
		}
	}
}

func TestPerChannelDensityVariation(t *testing.T) {
	// Real feature maps have uneven per-channel occupancy; the generator
	// must reproduce it (the Figure 18 balancing study depends on it).
	g := NewGen(30)
	f := g.FeatureMap(32, 24, 24, 8, 0.4)
	min, max := 1.0, 0.0
	for c := 0; c < f.C; c++ {
		nz := 0
		for _, v := range f.Channel(c) {
			if v != 0 {
				nz++
			}
		}
		d := float64(nz) / float64(24*24)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max < 1.5*min {
		t.Fatalf("channel densities too uniform: min %.3f max %.3f", min, max)
	}
	// But the mean must stay near the target.
	overall := f.Density()
	if overall < 0.28 || overall > 0.45 {
		t.Fatalf("overall density %.3f drifted from 0.4 target", overall)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	// Distinct label paths must give distinct seeds; identical paths the
	// same seed; and order must matter.
	a := DeriveSeed(1, "AlexNet", "8b")
	if a != DeriveSeed(1, "AlexNet", "8b") {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]string{a: "AlexNet/8b"}
	for _, labels := range [][]string{
		{"AlexNet", "2b"}, {"8b", "AlexNet"}, {"AlexNet8b"}, {"VGG-16", "8b"}, {"AlexNet", "8b", ""},
	} {
		s := DeriveSeed(1, labels...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %v vs %s", labels, prev)
		}
		seen[s] = labels[0]
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestDeriveSeedDecorrelatesLowBits(t *testing.T) {
	// The expression DeriveSeed replaces (seed ^ hash*bits) pushed entropy
	// out of the low bits when bits shared a power-of-two factor. The low
	// bits of derived seeds must flip roughly half the time across labels.
	flips := 0
	const n = 256
	prev := DeriveSeed(1, "net", "0")
	for i := 1; i < n; i++ {
		s := DeriveSeed(1, "net", string(rune('0'+i%64)))
		if s&1 != prev&1 {
			flips++
		}
		prev = s
	}
	if flips < n/4 || flips > 3*n/4 {
		t.Fatalf("low bit flipped %d/%d times; seeds correlated", flips, n)
	}
}
