package workload

import (
	"ristretto/internal/atom"
	"ristretto/internal/model"
	"ristretto/internal/quant"
	"ristretto/internal/tensor"
)

// LayerStats carries everything the analytic performance models need about
// one layer's operands: value/atom densities, per-input-channel atom counts
// (for load balancing and channel-wise tile mapping), and effectual-term
// histograms (for the bit-serial Laconic model).
type LayerStats struct {
	Layer        model.Layer
	WBits, ABits int
	Gran         atom.Granularity

	W quant.Stats // weights
	A quant.Stats // input activations

	// Per input channel c: non-zero atoms of the activation plane (T_c) and
	// of the kernel slice across all K output channels (S_c). These feed
	// Eq. 3/5 and the Figure 18 balancing study.
	ActAtomsPerChan []int
	WAtomsPerChan   []int
	ActNZPerChan    []int
	WNZPerChan      []int

	// Per output channel (filter) k: non-zero weights and atoms. SparTen
	// assigns filters to compute units greedily by these statistics.
	WNZPerFilter    []int
	WAtomsPerFilter []int

	// Effectual-term histograms (index = #terms, value = element count,
	// including zero values at index 0) for Laconic's ta×tw workloads.
	ATermHist []int
	WTermHist []int
}

// StatsFromTensors measures LayerStats from materialized operands.
func StatsFromTensors(l model.Layer, f *tensor.FeatureMap, k *tensor.KernelStack, gran atom.Granularity, booth bool) LayerStats {
	s := LayerStats{
		Layer: l, WBits: f.Bits, ABits: f.Bits, Gran: gran,
		ActAtomsPerChan: make([]int, l.C),
		WAtomsPerChan:   make([]int, l.C),
		ActNZPerChan:    make([]int, l.C),
		WNZPerChan:      make([]int, l.C),
		WNZPerFilter:    make([]int, l.K),
		WAtomsPerFilter: make([]int, l.K),
	}
	s.WBits = k.Bits
	s.ABits = f.Bits
	s.A = quant.Measure(f.Data, f.Bits, gran)
	s.W = quant.Measure(k.Data, k.Bits, gran)
	for c := 0; c < l.C; c++ {
		plane := f.Channel(c)
		for _, v := range plane {
			if v != 0 {
				s.ActNZPerChan[c]++
				s.ActAtomsPerChan[c] += atom.CountNonZero(v, f.Bits, gran)
			}
		}
	}
	for kk := 0; kk < k.K; kk++ {
		for c := 0; c < k.C; c++ {
			for y := 0; y < k.KH; y++ {
				for x := 0; x < k.KW; x++ {
					v := k.At(kk, c, y, x)
					if v != 0 {
						s.WNZPerChan[c]++
						na := atom.CountNonZero(v, k.Bits, gran)
						s.WAtomsPerChan[c] += na
						s.WNZPerFilter[kk]++
						s.WAtomsPerFilter[kk] += na
					}
				}
			}
		}
	}
	s.ATermHist = atom.TermHistogram(f.Data, booth)
	s.WTermHist = atom.TermHistogram(k.Data, booth)
	return s
}

// LayerStats generates a layer's operands and measures their statistics in
// one step. The booth flag selects NAF (true) or popcount term counting for
// the bit-serial histograms.
func (g *Gen) LayerStats(l model.Layer, wbits, abits int, gran atom.Granularity, t Targets, booth bool) LayerStats {
	f, k := g.LayerOperands(l, wbits, abits, t)
	return StatsFromTensors(l, f, k, gran, booth)
}

// NetworkStats generates statistics for every layer of a network under a
// precision assignment.
func (g *Gen) NetworkStats(n *model.Network, p model.Precision, gran atom.Granularity, booth bool) []LayerStats {
	out := make([]LayerStats, len(n.Layers))
	for i, l := range n.Layers {
		t := EvalTargets(n.Name, p.WBits[i], p.ABits[i])
		out[i] = g.LayerStats(l, p.WBits[i], p.ABits[i], gran, t, booth)
	}
	return out
}

// TotalActAtoms returns the total non-zero activation atoms (T in Eq. 5).
func (s *LayerStats) TotalActAtoms() int { return s.A.NonZeroAtoms }

// TotalWAtoms returns the total non-zero weight atoms (S summed over chans).
func (s *LayerStats) TotalWAtoms() int { return s.W.NonZeroAtoms }
