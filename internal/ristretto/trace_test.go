package ristretto

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ristretto/internal/workload"
)

func traceRun(t *testing.T, tr Tracer) CoreSimResult {
	t.Helper()
	g := workload.NewGen(60)
	f := g.FeatureMapExact(2, 6, 6, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(3, 2, 3, 3, 8, 2, 0.6, 0.7)
	cfg := CoreSimConfig{Tiles: 2, Tile: TileConfig{Mults: 8, Gran: 2}, Trace: tr}
	return SimulateCore(f, w, 1, 1, cfg)
}

func TestMemoryTracerEventStructure(t *testing.T) {
	tr := &MemoryTracer{}
	res := traceRun(t, tr)
	if len(tr.Events) == 0 {
		t.Fatal("no events traced")
	}
	counts := map[string]int{}
	var lastCycle int64 = -1
	for _, e := range tr.Events {
		counts[e.Event]++
		if e.Cycle < lastCycle-1 { // events are near-ordered (tiles interleave within a cycle)
			t.Fatalf("trace time runs backwards: %d after %d", e.Cycle, lastCycle)
		}
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		if e.Tile < 0 || e.Tile >= 2 {
			t.Fatalf("bad tile id %d", e.Tile)
		}
	}
	// Every tile reports completion; drains are paired.
	if counts["tile_done"] != 2 {
		t.Fatalf("tile_done count %d, want 2", counts["tile_done"])
	}
	if counts["drain_start"] == 0 || counts["drain_start"] != counts["drain_end"] {
		t.Fatalf("unpaired drains: %v", counts)
	}
	if counts["job_start"] == 0 || counts["chunk_start"] < counts["job_start"] {
		t.Fatalf("implausible job/chunk events: %v", counts)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestJSONTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := &JSONTracer{W: &buf}
	traceRun(t, tr)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.Events() {
		t.Fatalf("%d lines vs %d events", len(lines), tr.Events())
	}
	for _, ln := range lines {
		var e TraceEvent
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if e.Event == "" {
			t.Fatalf("event kind missing in %q", ln)
		}
	}
}

func TestTracingDoesNotPerturbResults(t *testing.T) {
	plain := traceRun(t, nil)
	traced := traceRun(t, &MemoryTracer{})
	if plain.Cycles != traced.Cycles {
		t.Fatalf("tracing changed cycles: %d vs %d", plain.Cycles, traced.Cycles)
	}
	if !plain.Output.Equal(traced.Output) {
		t.Fatal("tracing changed results")
	}
}
