package ristretto

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/tensor"
)

// PostProcessor models the post-processing unit of Figure 7: when a group of
// output feature maps is complete in the output buffer, it applies ReLU and
// requantization, squeezes out the zero values (producing the next layer's
// block-COO input), and — with an Atomizer-like scanner — counts the
// non-zero atoms of each output channel. Those counts are exactly the
// activation statistics the w/a load balancer needs for the next layer
// (Section IV-E), which is why Ristretto can balance on both operands while
// prior accelerators could not.
type PostProcessor struct {
	OutBits    int              // requantized activation bit-width
	Gran       atom.Granularity // atom granularity for the statistics scan
	ShiftRight uint             // requantization scale as a right shift
}

// Run converts raw partial sums into the next layer's activation tensor:
// ReLU, arithmetic right shift, clamp to [0, 1<<OutBits). It returns the
// feature map plus the per-channel non-zero atom counts.
func (p PostProcessor) Run(o *tensor.OutputMap) (*tensor.FeatureMap, []int) {
	if p.OutBits < 1 || p.OutBits > 16 {
		panic(fmt.Sprintf("ristretto: bad requantization width %d", p.OutBits))
	}
	gran := p.Gran
	if gran == 0 {
		gran = 2
	}
	f := tensor.NewFeatureMap(o.K, o.H, o.W, p.OutBits)
	counts := make([]int, o.K)
	limit := int32(1)<<p.OutBits - 1
	for k := 0; k < o.K; k++ {
		src := o.Data[k*o.H*o.W : (k+1)*o.H*o.W]
		dst := f.Channel(k)
		for i, v := range src {
			if v <= 0 {
				continue // ReLU
			}
			q := v >> p.ShiftRight
			if q > limit {
				q = limit
			}
			dst[i] = q
			if q != 0 {
				counts[k] += atom.CountNonZero(q, p.OutBits, gran)
			}
		}
	}
	return f, counts
}

// RequantShift picks a right shift that maps the largest observed partial
// sum into the OutBits range — the static per-layer scale a deployed model
// would calibrate offline.
func RequantShift(o *tensor.OutputMap, outBits int) uint {
	var max int32
	for _, v := range o.Data {
		if v > max {
			max = v
		}
	}
	var s uint
	for max>>s > int32(1)<<outBits-1 {
		s++
	}
	return s
}
