package ristretto

import (
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func TestPostProcessorReLUAndClamp(t *testing.T) {
	o := tensor.NewOutputMap(1, 1, 4)
	o.Set(0, 0, 0, -50)  // ReLU → 0
	o.Set(0, 0, 1, 12)   // 12>>2 = 3
	o.Set(0, 0, 2, 4000) // clamps to 15 at 4 bits
	o.Set(0, 0, 3, 0)
	f, counts := PostProcessor{OutBits: 4, Gran: 2, ShiftRight: 2}.Run(o)
	if f.At(0, 0, 0) != 0 || f.At(0, 0, 1) != 3 || f.At(0, 0, 2) != 15 || f.At(0, 0, 3) != 0 {
		t.Fatalf("post-processed values wrong: %v", f.Data)
	}
	// atoms: 3 → one 2-bit atom; 15 → two.
	if counts[0] != 3 {
		t.Fatalf("atom count = %d, want 3", counts[0])
	}
}

func TestPostProcessorCountsMatchAtomPackage(t *testing.T) {
	g := workload.NewGen(1)
	f := g.FeatureMapExact(3, 6, 6, 8, 2, 0.6, 0.7)
	w := g.KernelsExact(4, 3, 3, 3, 8, 2, 0.6, 0.7)
	out := refconv.Conv(f, w, 1, 1)
	shift := RequantShift(out, 8)
	fm, counts := PostProcessor{OutBits: 8, Gran: 2, ShiftRight: shift}.Run(out)
	for k := 0; k < fm.C; k++ {
		want := atom.TotalNonZeroAtoms(fm.Channel(k), 8, 2)
		if counts[k] != want {
			t.Fatalf("channel %d: PPU count %d != atom package %d", k, counts[k], want)
		}
	}
}

func TestRequantShiftBoundsRange(t *testing.T) {
	o := tensor.NewOutputMap(1, 1, 2)
	o.Set(0, 0, 0, 100000)
	s := RequantShift(o, 8)
	if 100000>>s > 255 {
		t.Fatalf("shift %d leaves value out of range", s)
	}
	if s > 0 && 100000>>(s-1) <= 255 {
		t.Fatalf("shift %d not minimal", s)
	}
}

func TestPipelineMatchesReferenceChain(t *testing.T) {
	// Three-layer CNN through CSC must equal the same chain computed with
	// the dense reference convolution and identical post-processing.
	g := workload.NewGen(2)
	input := g.FeatureMap(4, 12, 12, 8, 0.5)
	mk := func(k, c, ks, bits int) *tensor.KernelStack {
		return g.KernelsExact(k, c, ks, ks, bits, 2, 0.5, 0.7)
	}
	layers := []PipelineLayer{
		{Kernels: mk(8, 4, 3, 4), Stride: 1, Pad: 1, Post: PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 4}},
		{Kernels: mk(6, 8, 3, 8), Stride: 2, Pad: 1, Post: PostProcessor{OutBits: 4, Gran: 2, ShiftRight: 7}},
		{Kernels: mk(5, 6, 1, 4), Stride: 1, Pad: 0, Post: PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 2}},
	}
	got := RunPipeline(input, layers, core.Config{Gran: 2, Multiplier: 16})

	cur := input
	var want *tensor.FeatureMap
	for _, l := range layers {
		out := refconv.Conv(cur, l.Kernels, l.Stride, l.Pad)
		fm, _ := l.Post.Run(out)
		want, cur = fm, fm
	}
	if got.Output.C != want.C || got.Output.H != want.H || got.Output.W != want.W {
		t.Fatalf("shape mismatch: %v vs %v", got.Output, want)
	}
	for i := range want.Data {
		if got.Output.Data[i] != want.Data[i] {
			t.Fatalf("pipeline diverges from reference chain at %d: %d vs %d", i, got.Output.Data[i], want.Data[i])
		}
	}
	if len(got.Stats) != 3 || len(got.AtomStats) != 3 {
		t.Fatalf("per-layer stats missing: %d %d", len(got.Stats), len(got.AtomStats))
	}
}

func TestPipelineAtomStatsFeedBalancer(t *testing.T) {
	// The PPU's per-channel atom counts are the T_c of the *next* layer:
	// they must equal what StatsFromTensors would measure on the produced
	// feature map.
	g := workload.NewGen(3)
	input := g.FeatureMap(3, 10, 10, 8, 0.6)
	k := g.KernelsExact(5, 3, 3, 3, 4, 2, 0.5, 0.7)
	layers := []PipelineLayer{{Kernels: k, Stride: 1, Pad: 1, Post: PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 5}}}
	res := RunPipeline(input, layers, core.Config{Gran: 2, Multiplier: 8})
	for c := 0; c < res.Output.C; c++ {
		want := atom.TotalNonZeroAtoms(res.Output.Channel(c), 8, 2)
		if res.AtomStats[0][c] != want {
			t.Fatalf("channel %d: %d vs %d", c, res.AtomStats[0][c], want)
		}
	}
}
