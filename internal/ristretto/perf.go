package ristretto

import (
	"ristretto/internal/balance"
	"ristretto/internal/energy"
	"ristretto/internal/telemetry"
	"ristretto/internal/workload"
)

// LayerPerf is the analytic (Eq. 3–5) performance and energy estimate of one
// layer on the Ristretto core. It is the full-network counterpart of the
// cycle simulator, validated against it in the tests.
type LayerPerf struct {
	Cycles      int64   // slowest compute tile (tiles synchronize per layer)
	IdealCycles int64   // total work / tile count: the balancing upper bound
	TileCycles  []int64 // per compute tile
	Utilization float64 // ideal / actual
	MemoryBound bool    // true when the DRAM roofline set the latency
	Counters    energy.Counters
}

// NetworkPerf aggregates layer estimates.
type NetworkPerf struct {
	Cycles   int64
	Counters energy.Counters
	Layers   []LayerPerf
}

// spatialTiles estimates how many block-COO tiles an H×W plane splits into
// with the default 16×16 tiling (metadata coordinates are 8-bit, so tiles
// are bounded; the exact tile size only affects second-order buffer-traffic
// terms).
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func spatialTiles(h, w int) int64 {
	th := (h + 15) / 16
	tw := (w + 15) / 16
	return int64(th * tw)
}

// EstimateLayer applies the condensed-streaming latency model to one layer's
// statistics:
//
//	per input channel c: cost_c = T_c · ⌈S_c/N⌉   (Eq. 3/5, ε omitted)
//
// where T_c counts the channel's non-zero activation atoms and S_c its
// kernels' non-zero weight atoms. Channels are grouped onto the M compute
// tiles by the configured balancing policy; the layer latency is the slowest
// group because tiles synchronize on the shared output buffer.
func EstimateLayer(st workload.LayerStats, cfg Config) LayerPerf {
	cfg = cfg.withDefaults()
	l := st.Layer
	n := cfg.Tile.Mults

	actAtoms := make([]int, l.C)
	wAtoms := make([]int, l.C)
	actVals := make([]int, l.C)
	copy(actAtoms, st.ActAtomsPerChan)
	copy(wAtoms, st.WAtomsPerChan)
	copy(actVals, st.ActNZPerChan)
	if cfg.Dense {
		// Ristretto-ns: every value position streams all of its atoms.
		aAtomsPerVal := cfg.Tile.Gran.Count(st.ABits)
		wAtomsPerVal := cfg.Tile.Gran.Count(st.WBits - 1)
		perChanVals := l.H * l.W
		perChanW := l.K * l.KH * l.KW
		for c := 0; c < l.C; c++ {
			actAtoms[c] = perChanVals * aAtomsPerVal
			wAtoms[c] = perChanW * wAtomsPerVal
			actVals[c] = perChanVals
		}
	}

	// Stride handling: by default strided layers are phase-decomposed
	// (stride² independent stride-1 convolutions over coordinate phases),
	// so only effectual outputs are computed. NaiveStride charges the full
	// stride-1 intersection (Section IV-C3).
	phases := 1
	if l.Stride > 1 && !cfg.NaiveStride {
		phases = l.Stride * l.Stride
	}
	costs := make([]int64, l.C)
	var totalCost int64
	for c := 0; c < l.C; c++ {
		costs[c] = int64(phases) * balance.Cost(ceilDiv(actAtoms[c], phases), ceilDiv(wAtoms[c], phases), n)
		totalCost += costs[c]
	}

	// Work units for balancing. Normally one unit per input channel; when
	// the layer has fewer channels than compute tiles (input stems, AlexNet
	// conv1), a channel's spatial block-COO tiles spread across compute
	// tiles, so each channel splits into up to ⌈M/C⌉ spatial shares.
	unitCosts := costs
	unitWAtoms := wAtoms
	if l.C < cfg.Tiles {
		split := (cfg.Tiles + l.C - 1) / l.C
		if s := int(spatialTiles(l.H, l.W)); split > s {
			split = s
		}
		if split > 1 {
			unitCosts = make([]int64, 0, l.C*split)
			unitWAtoms = make([]int, 0, l.C*split)
			for c := 0; c < l.C; c++ {
				share := costs[c] / int64(split)
				rem := costs[c] - share*int64(split)
				for s := 0; s < split; s++ {
					u := share
					if s == 0 {
						u += rem
					}
					unitCosts = append(unitCosts, u)
					unitWAtoms = append(unitWAtoms, wAtoms[c])
				}
			}
		}
	}
	groups := balance.Assign(cfg.Policy, unitCosts, unitWAtoms, cfg.Tiles)
	tileCycles := balance.GroupCosts(groups, unitCosts)

	p := LayerPerf{TileCycles: tileCycles}
	for _, c := range tileCycles {
		if c > p.Cycles {
			p.Cycles = c
		}
	}
	p.IdealCycles = (totalCost + int64(cfg.Tiles) - 1) / int64(cfg.Tiles)
	if p.Cycles > 0 {
		p.Utilization = float64(p.IdealCycles) / float64(p.Cycles)
	}

	// Energy-bearing event counts (per stride phase, then summed — the
	// phase decomposition divides both streams).
	tiles := spatialTiles(l.H, l.W)
	ph := int64(phases)
	for c := 0; c < l.C; c++ {
		aAt := int64(ceilDiv(actAtoms[c], phases))
		wAt := int64(ceilDiv(wAtoms[c], phases))
		aVal := int64(ceilDiv(actVals[c], phases))
		rounds := int64(0)
		if wAt > 0 {
			rounds = (wAt + int64(n) - 1) / int64(n)
		}
		p.Counters.AtomMuls += ph * aAt * wAt
		p.Counters.AtomizerOps += ph * aAt * rounds
		// Activation words re-read from the input buffer once per round;
		// block-COO payload plus 4+4-bit tile-relative coordinates.
		actBytes := aVal * int64(st.ABits+8) / 8
		p.Counters.InputBufBytes += ph * actBytes * rounds
		// Static weight stream reloaded once per spatial tile pass.
		p.Counters.WeightBufBytes += int64(wAtoms[c]) * tiles
		// One accumulate-buffer write per delivery: each non-zero
		// activation value delivers at every weight-atom slot.
		p.Counters.AccBufBytes += 4 * ph * aVal * wAt
	}
	// Slice drains: the accumulate banks are read and aggregated into the
	// output buffer once per weight slice.
	slices := int64(cfg.Tile.Gran.Count(st.WBits - 1))
	outVals := int64(l.K) * int64(l.OutH()) * int64(l.OutW())
	p.Counters.AccBufBytes += 4 * outVals * slices
	p.Counters.OutputBufBytes += 4 * outVals * slices

	// Off-chip traffic: block-COO activations (payload + 4+4-bit tile
	// coordinates) in, value-compressed weights (bitmask + non-zero
	// payloads; the cheap atom metadata — shifts, signs, last flags — is
	// derived on-chip when filling the weight buffer), compressed outputs
	// (post-processed back to block COO) out. Output density is taken from
	// the input's value density, the best available proxy.
	var actNZ int64
	for c := 0; c < l.C; c++ {
		actNZ += int64(actVals[c])
	}
	wNZ := int64(st.W.NonZero)
	if cfg.Dense {
		wNZ = l.Weights()
	}
	// Weight-buffer capacity: when a layer's compressed weights overflow
	// the on-chip weight buffer, they are processed in partitions and the
	// activations re-stream from DRAM once per partition. Compression
	// directly reduces the partition count — one of the format's payoffs.
	wDRAM := l.Weights()/8 + wNZ*int64(st.WBits)/8
	passes := energy.WeightPassAmplification(wDRAM, cfg.WeightBufCap)
	p.Counters.DRAMBytes += actNZ * int64(st.ABits+8) / 8 * passes
	p.Counters.DRAMBytes += wDRAM
	outDensity := st.A.ValueDensity
	if cfg.Dense {
		outDensity = 1
	}
	p.Counters.DRAMBytes += int64(float64(outVals)*outDensity) * int64(st.ABits+8) / 8

	// Roofline: a finite DRAM bandwidth can cap the layer below its
	// compute latency (common on compressed-away compute at 2 bits).
	if cfg.DRAMBytesPerCycle > 0 {
		memCycles := int64(float64(p.Counters.DRAMBytes) / cfg.DRAMBytesPerCycle)
		if memCycles > p.Cycles {
			p.Cycles = memCycles
			p.MemoryBound = true
			if p.Cycles > 0 {
				p.Utilization = float64(p.IdealCycles) / float64(p.Cycles)
			}
		}
	}
	return p
}

// EstimateNetwork sums per-layer estimates under one configuration.
func EstimateNetwork(stats []workload.LayerStats, cfg Config) NetworkPerf {
	var np NetworkPerf
	for _, st := range stats {
		lp := EstimateLayer(st, cfg)
		np.Cycles += lp.Cycles
		np.Counters.Add(lp.Counters)
		np.Layers = append(np.Layers, lp)
	}
	if r := telemetry.Default; r.Enabled() {
		r.Counter("ristretto.analytic.networks").Inc()
		r.Counter("ristretto.analytic.layers").Add(int64(len(np.Layers)))
		r.Counter("ristretto.analytic.cycles").Add(np.Cycles)
		r.Counter("ristretto.analytic.atom_muls").Add(np.Counters.AtomMuls)
		r.Counter("ristretto.analytic.dram_bytes").Add(np.Counters.DRAMBytes)
		util := r.Histogram("ristretto.analytic.layer_utilization_pct")
		memBound := r.Counter("ristretto.analytic.memory_bound_layers")
		for _, lp := range np.Layers {
			util.Observe(int64(100 * lp.Utilization))
			if lp.MemoryBound {
				memBound.Inc()
			}
		}
	}
	return np
}
