package ristretto

import (
	"testing"

	"ristretto/internal/balance"
	"ristretto/internal/model"
	"ristretto/internal/workload"
)

// Cross-check the three performance views on the same operands: the
// analytic model, the per-tile cycle simulator, and the lockstep core
// simulator must agree on the invariant work counts (atom multiplications)
// and stay mutually consistent on cycles.
func TestThreeWayWorkConsistency(t *testing.T) {
	g := workload.NewGen(70)
	l := model.Layer{Name: "t", C: 6, H: 10, W: 10, K: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	f := g.FeatureMap(l.C, l.H, l.W, 8, 0.5)
	w := g.Kernels(l.K, l.C, l.KH, l.KW, 8, 0.5)
	st := workload.StatsFromTensors(l, f, w, 2, true)

	tileCfg := TileConfig{Mults: 8, Gran: 2}
	est := EstimateLayer(st, Config{Tiles: 2, Tile: tileCfg, Policy: balance.WeightAct})
	conv := SimulateConv(f, w, 1, 1, Config{Tiles: 2, Tile: tileCfg, Policy: balance.WeightAct})
	core := SimulateCore(f, w, 1, 1, CoreSimConfig{Tiles: 2, Tile: tileCfg, Policy: balance.WeightAct})

	// Atom multiplications are an invariant of the dataflow: every act atom
	// of a channel meets every weight atom of that channel, exactly once.
	var want int64
	for c := 0; c < l.C; c++ {
		want += int64(st.ActAtomsPerChan[c]) * int64(st.WAtomsPerChan[c])
	}
	if est.Counters.AtomMuls != want {
		t.Fatalf("analytic AtomMuls %d != invariant %d", est.Counters.AtomMuls, want)
	}
	if conv.Counters.AtomMuls != want {
		t.Fatalf("tile-sim AtomMuls %d != invariant %d", conv.Counters.AtomMuls, want)
	}
	if core.Counters.AtomMuls != want {
		t.Fatalf("core-sim AtomMuls %d != invariant %d", core.Counters.AtomMuls, want)
	}

	// Cycle ordering: analytic (no overheads) ≤ per-tile sim ≤ lockstep
	// core (load + port contention), all within a modest band.
	if conv.Cycles < est.Cycles*95/100 {
		t.Fatalf("tile sim (%d) below analytic (%d)", conv.Cycles, est.Cycles)
	}
	if core.Cycles < conv.Cycles {
		t.Fatalf("core sim (%d) below tile sim (%d)", core.Cycles, conv.Cycles)
	}
	if core.Cycles > est.Cycles*3/2 {
		t.Fatalf("core sim (%d) implausibly above analytic (%d)", core.Cycles, est.Cycles)
	}
}
