package ristretto

import (
	"reflect"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func TestPackWordsCapacity(t *testing.T) {
	elems := []core.ActElem{{Val: 3, X: 1}, {Val: 2, X: 2}, {Val: 1, X: 3}, {Val: 3, X: 4}, {Val: 2, X: 5}}
	w8 := PackWords(elems, 8)
	w4 := PackWords(elems, 4)
	w2 := PackWords(elems, 2)
	if len(w8) != 5 || len(w4) != 3 || len(w2) != 2 {
		t.Fatalf("word counts: %d %d %d", len(w8), len(w4), len(w2))
	}
	// 2-bit packing: first word holds 4 activations: 3,2,1,3 → 0b11_01_10_11.
	if w2[0].Bits != 0b11011011 {
		t.Fatalf("2-bit packing = %08b", w2[0].Bits)
	}
}

func TestScanWordsMatchesCompressActs(t *testing.T) {
	// The word-level Atomizer must emit exactly the stream the abstract
	// CompressActs produces, for every supported quantization.
	for _, bits := range []int{2, 4, 8} {
		g := workload.NewGen(int64(bits))
		f := g.FeatureMapExact(1, 8, 8, bits, 2, 0.5, 0.7)
		elems := core.FlattenTile(f, 0, tensor.Tile{W: 8, H: 8})
		want := core.CompressActs(elems, bits, 2, false)
		tr := ScanWords(PackWords(elems, bits), bits, 2)
		if !reflect.DeepEqual(tr.Atoms, want) {
			t.Fatalf("bits=%d: word-level scan diverges from CompressActs", bits)
		}
		if tr.Cycles != len(want) {
			t.Fatalf("bits=%d: %d cycles for %d atoms (must be one atom per cycle)", bits, tr.Cycles, len(want))
		}
	}
}

func TestScanWordsHoldBound(t *testing.T) {
	// Section IV-C1: an 8-bit word is held at most four cycles (2-bit
	// atoms) and at least one — each 8-bit word contains ≥1 non-zero atom
	// per packed non-zero activation.
	for _, bits := range []int{2, 4, 8} {
		g := workload.NewGen(int64(10 + bits))
		f := g.FeatureMapExact(1, 16, 16, bits, 2, 0.6, 0.8)
		elems := core.FlattenTile(f, 0, tensor.Tile{W: 16, H: 16})
		tr := ScanWords(PackWords(elems, bits), bits, 2)
		bound := MaxHoldCycles(bits, 2)
		for i, h := range tr.HoldCycles {
			if h < 1 {
				t.Fatalf("bits=%d word %d emitted no atoms", bits, i)
			}
			if h > bound {
				t.Fatalf("bits=%d word %d held %d cycles, bound %d", bits, i, h, bound)
			}
		}
	}
	if MaxHoldCycles(8, 2) != 4 {
		t.Fatalf("8-bit word bound = %d, want 4", MaxHoldCycles(8, 2))
	}
}

func TestScanWordsCoordinateLatching(t *testing.T) {
	// Atoms of the same activation must carry the same latched coordinate,
	// and the last atom of each activation must carry the Last flag.
	elems := []core.ActElem{{Val: 0x55, X: 3, Y: 7}} // 4 non-zero 2-bit atoms
	tr := ScanWords(PackWords(elems, 8), 8, 2)
	if len(tr.Atoms) != 4 {
		t.Fatalf("%d atoms, want 4", len(tr.Atoms))
	}
	for i, a := range tr.Atoms {
		if a.X != 3 || a.Y != 7 {
			t.Fatalf("atom %d coordinate not latched: %+v", i, a)
		}
		if a.Last != (i == 3) {
			t.Fatalf("atom %d last flag wrong", i)
		}
	}
	// Reconstruct the value from the emitted atoms.
	var v int32
	for _, a := range tr.Atoms {
		v += int32(a.Mag) << a.Shift
	}
	if v != 0x55 {
		t.Fatalf("reconstructed %#x", v)
	}
}

func TestScanWordsGranularities(t *testing.T) {
	g := workload.NewGen(20)
	f := g.FeatureMapExact(1, 8, 8, 8, 2, 0.5, 0.7)
	elems := core.FlattenTile(f, 0, tensor.Tile{W: 8, H: 8})
	for _, gran := range []atom.Granularity{1, 2, 3} {
		want := core.CompressActs(elems, 8, gran, false)
		tr := ScanWords(PackWords(elems, 8), 8, gran)
		if !reflect.DeepEqual(tr.Atoms, want) {
			t.Fatalf("gran=%d mismatch", gran)
		}
	}
}
