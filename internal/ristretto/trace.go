package ristretto

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one state transition of a compute tile during a lockstep
// core simulation — the unit of the exported execution trace. Events are
// emitted on transitions (job/chunk/drain boundaries), not per cycle, so
// traces stay compact.
type TraceEvent struct {
	Cycle  int64  `json:"cycle"`
	Tile   int    `json:"tile"`
	Event  string `json:"event"` // job_start, chunk_start, drain_start, drain_end, job_end, tile_done
	Job    int    `json:"job"`
	Chunk  int    `json:"chunk,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Tracer receives trace events.
type Tracer interface {
	Emit(TraceEvent)
}

// JSONTracer writes one JSON object per line (JSONL) to an io.Writer.
type JSONTracer struct {
	W   io.Writer
	err error
	n   int
}

// Emit writes the event; the first write error is retained and surfaced by
// Err (tracing must never abort a simulation).
func (t *JSONTracer) Emit(e TraceEvent) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err == nil {
		_, err = fmt.Fprintf(t.W, "%s\n", b)
	}
	if err != nil {
		t.err = err
		return
	}
	t.n++
}

// Err returns the first write error, if any.
func (t *JSONTracer) Err() error { return t.err }

// Events returns how many events were written.
func (t *JSONTracer) Events() int { return t.n }

// MemoryTracer retains events in memory (tests, analysis).
type MemoryTracer struct {
	Events []TraceEvent
}

// Emit appends the event.
func (t *MemoryTracer) Emit(e TraceEvent) { t.Events = append(t.Events, e) }

// traceCtx is threaded through the core simulation when tracing is enabled.
type traceCtx struct {
	tracer Tracer
	cycle  *int64
	tile   int
}

func (c *traceCtx) emit(event string, job, chunk int, detail string) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.Emit(TraceEvent{Cycle: *c.cycle, Tile: c.tile, Event: event, Job: job, Chunk: chunk, Detail: detail})
}
