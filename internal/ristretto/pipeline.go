package ristretto

import (
	"ristretto/internal/core"
	"ristretto/internal/tensor"
)

// PipelineLayer is one stage of an end-to-end CSC inference: a kernel stack
// plus convolution geometry and the post-processing applied to its outputs.
type PipelineLayer struct {
	Kernels     *tensor.KernelStack
	Stride, Pad int
	Post        PostProcessor
}

// PipelineResult reports an end-to-end run.
type PipelineResult struct {
	Output    *tensor.FeatureMap // final post-processed activations
	Raw       *tensor.OutputMap  // final pre-activation partial sums
	Stats     []core.Stats       // per-layer CSC statistics
	AtomStats [][]int            // per-layer per-output-channel atom counts (PPU scan)
}

// RunPipeline chains layers through condensed streaming computation: each
// layer's CSC output feeds the post-processing unit (ReLU + requantization +
// compression + atom statistics), whose feature map becomes the next layer's
// input — the full on-chip loop of Figure 7. The numeric path is identical
// to running each layer densely and post-processing the same way, which the
// tests verify.
func RunPipeline(input *tensor.FeatureMap, layers []PipelineLayer, cfg core.Config) PipelineResult {
	var res PipelineResult
	cur := input
	var raw *tensor.OutputMap
	for i, l := range layers {
		out, st := core.Convolve(cur, l.Kernels, l.Stride, l.Pad, cfg)
		res.Stats = append(res.Stats, st)
		raw = out
		if i == len(layers)-1 {
			fm, counts := l.Post.Run(out)
			res.Output = fm
			res.AtomStats = append(res.AtomStats, counts)
			break
		}
		fm, counts := l.Post.Run(out)
		res.AtomStats = append(res.AtomStats, counts)
		cur = fm
	}
	res.Raw = raw
	return res
}
