package ristretto

import (
	"math/rand"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/refconv"
	"ristretto/internal/workload"
)

func TestSimulateCoreBitExact(t *testing.T) {
	cfgs := []CoreSimConfig{
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}},
		{Tiles: 1, Tile: TileConfig{Mults: 16, Gran: 2}},
		{Tiles: 2, Tile: TileConfig{Mults: 4, Gran: 1}, TileW: 4, TileH: 4},
		{Tiles: 8, Tile: TileConfig{Mults: 8, Gran: 3}},
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}, Policy: balance.WeightAct, DrainWidth: 2, LoadWidth: 1},
	}
	for i, cfg := range cfgs {
		g := workload.NewGen(int64(30 + i))
		f := g.FeatureMapExact(3, 8, 8, 8, cfg.Tile.Gran, 0.5, 0.7)
		w := g.KernelsExact(4, 3, 3, 3, 8, cfg.Tile.Gran, 0.6, 0.7)
		res := SimulateCore(f, w, 1, 1, cfg)
		want := refconv.Conv(f, w, 1, 1)
		if !res.Output.Equal(want) {
			t.Fatalf("cfg %d: core sim output wrong (maxdiff %d)", i, res.Output.MaxAbsDiff(want))
		}
		if res.Cycles <= 0 {
			t.Fatalf("cfg %d: no cycles", i)
		}
	}
}

func TestSimulateCoreRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8; i++ {
		gran := atom.Granularity(rng.Intn(3) + 1)
		cfg := CoreSimConfig{
			Tiles: 1 + rng.Intn(6),
			Tile:  TileConfig{Mults: 1 + rng.Intn(12), Gran: gran, FIFODepth: 1 + rng.Intn(4)},
			TileW: 1 + rng.Intn(6), TileH: 1 + rng.Intn(6),
			Policy: balance.Policy(rng.Intn(3)),
		}
		g := workload.NewGen(int64(40 + i))
		abits := []int{2, 4, 8}[rng.Intn(3)]
		wbits := []int{2, 4, 8}[rng.Intn(3)]
		f := g.FeatureMapExact(1+rng.Intn(3), 4+rng.Intn(5), 4+rng.Intn(5), abits, gran, 0.5, 0.7)
		w := g.KernelsExact(1+rng.Intn(4), f.C, 3, 3, wbits, gran, 0.6, 0.7)
		stride, pad := 1+rng.Intn(2), rng.Intn(2)
		res := SimulateCore(f, w, stride, pad, cfg)
		want := refconv.Conv(f, w, stride, pad)
		if !res.Output.Equal(want) {
			t.Fatalf("iter %d: core sim wrong", i)
		}
	}
}

func TestSimulateCoreTracksSimulateConv(t *testing.T) {
	// The lockstep core adds load and drain overheads on top of
	// SimulateConv's per-tile cycle sums; it must never be faster, and
	// should stay within ~40% on a medium layer.
	g := workload.NewGen(50)
	f := g.FeatureMap(6, 12, 12, 8, 0.5)
	w := g.Kernels(8, 6, 3, 3, 8, 0.5)
	tileCfg := TileConfig{Mults: 8, Gran: 2}
	conv := SimulateConv(f, w, 1, 1, Config{Tiles: 3, Tile: tileCfg, Policy: balance.WeightAct})
	core := SimulateCore(f, w, 1, 1, CoreSimConfig{Tiles: 3, Tile: tileCfg, Policy: balance.WeightAct})
	if core.Cycles < conv.Cycles {
		t.Fatalf("lockstep core (%d) cannot beat overhead-free per-tile sum (%d)", core.Cycles, conv.Cycles)
	}
	if float64(core.Cycles) > 1.4*float64(conv.Cycles) {
		t.Fatalf("core overheads too large: %d vs %d", core.Cycles, conv.Cycles)
	}
}

func TestSimulateCoreDrainContention(t *testing.T) {
	// Many tiles sharing one output port must queue on drains.
	g := workload.NewGen(51)
	f := g.FeatureMapExact(8, 8, 8, 8, 2, 0.6, 0.8)
	w := g.KernelsExact(8, 8, 3, 3, 8, 2, 0.6, 0.8)
	res := SimulateCore(f, w, 1, 1, CoreSimConfig{Tiles: 8, Tile: TileConfig{Mults: 8, Gran: 2}, DrainWidth: 1})
	if res.DrainWait == 0 {
		t.Fatal("expected output-port contention with 8 tiles and a slow port")
	}
	if res.LoadCycles == 0 {
		t.Fatal("expected weight-load cycles")
	}
}

func TestSimulateCoreBusyBounded(t *testing.T) {
	g := workload.NewGen(52)
	f := g.FeatureMapExact(4, 8, 8, 8, 2, 0.5, 0.7)
	w := g.KernelsExact(4, 4, 3, 3, 8, 2, 0.5, 0.7)
	res := SimulateCore(f, w, 1, 1, CoreSimConfig{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}})
	for i, b := range res.TileBusy {
		if b > res.Cycles {
			t.Fatalf("tile %d busy %d exceeds global cycles %d", i, b, res.Cycles)
		}
	}
}
