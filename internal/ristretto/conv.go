package ristretto

import (
	"ristretto/internal/balance"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
)

// Config parameterizes a Ristretto compute core.
type Config struct {
	Tiles  int // M: parallel compute tiles
	Tile   TileConfig
	TileW  int // feature-map tile width (0 = whole plane)
	TileH  int // feature-map tile height (0 = whole plane)
	Policy balance.Policy
	Dense  bool // Ristretto-ns: keep zero atoms and zero values in streams

	// NaiveStride charges strided layers the full stride-1 intersection
	// cost (Section IV-C3: ineffectual outputs are computed and discarded).
	// By default the analytic model assumes the stride-phase decomposition
	// — inputs and kernels split into stride² coordinate phases convolved
	// independently — which only performs effectual work and reproduces the
	// paper's Ristretto-ns ≈ Bit Fusion parity on strided networks.
	NaiveStride bool

	// WeightBufCap is the on-chip weight-buffer capacity in bytes (0 =
	// default 256 KiB, sized to Table VI's 0.302 mm² weight buffer). When a
	// layer's compressed weights exceed it, they re-stream from DRAM once
	// per spatial tile pass instead of being fetched once.
	WeightBufCap int64

	// DRAMBytesPerCycle bounds layer latency by off-chip bandwidth
	// (roofline): cycles = max(compute, DRAMBytes/bandwidth). Zero means
	// unbounded (compute-only, the paper's accounting).
	DRAMBytesPerCycle float64
}

// DefaultConfig is the paper's single-core configuration versus Bit Fusion:
// 32 compute tiles × 32 two-bit multipliers, w/a balancing.
func DefaultConfig() Config {
	return Config{Tiles: 32, Tile: TileConfig{Mults: 32, Gran: 2, FIFODepth: 4}, Policy: balance.WeightAct}
}

func (c Config) withDefaults() Config {
	if c.Tiles == 0 {
		c.Tiles = 32
	}
	c.Tile = c.Tile.withDefaults()
	return c
}

// SimResult is the outcome of a cycle-simulated layer.
type SimResult struct {
	Output     *tensor.OutputMap // strided/padded conv output
	Cycles     int64             // max over compute tiles (they synchronize per layer)
	TileCycles []int64           // per compute tile
	Stalls     int64
	Products   int64
	Deliveries int64
	Conflicts  int64
	Counters   energy.Counters
}

// SimulateConv runs a whole (small) layer through the cycle-level tile
// simulator: input channels are grouped onto compute tiles by the balancing
// policy; each tile serially processes its channels' (spatial tile ×
// channel) intersections; per-tile cycles sum and the layer latency is the
// slowest tile. The numeric output is bit-exact against refconv.Conv.
func SimulateConv(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg Config) SimResult {
	cfg = cfg.withDefaults()
	tw, th := cfg.TileW, cfg.TileH
	if tw == 0 {
		tw = f.W
	}
	if th == 0 {
		th = f.H
	}

	// Offline: per-channel static weight streams and balancing statistics.
	wstreams := make([][]core.WeightAtom, f.C)
	costs := make([]int64, f.C)
	watoms := make([]int, f.C)
	tatoms := make([]int, f.C)
	actStreams := make(map[[2]int][]core.ActAtom) // (channel, tileIdx) → atoms
	tiles := tensor.TileGrid(f.W, f.H, tw, th)
	flatK, flatT := core.FlattenKernels, core.FlattenTile
	if cfg.Dense {
		flatK, flatT = core.FlattenKernelsDense, core.FlattenTileDense
	}
	for c := 0; c < f.C; c++ {
		wstreams[c] = core.CompressWeights(flatK(w, c, nil), w.Bits, cfg.Tile.Gran, cfg.Dense)
		watoms[c] = len(wstreams[c])
		for ti, tl := range tiles {
			var acts []core.ActAtom
			if cfg.Dense {
				acts = core.CompressActs(flatT(f, c, tl), f.Bits, cfg.Tile.Gran, true)
			} else {
				// Fused zero-skipping builder: walks 64-lane bitmap words
				// instead of materializing the dense element list.
				acts = core.StreamTileActs(f, c, tl, cfg.Tile.Gran)
			}
			actStreams[[2]int{c, ti}] = acts
			tatoms[c] += len(acts)
		}
		costs[c] = balance.Cost(tatoms[c], watoms[c], cfg.Tile.Mults)
	}
	groups := balance.Assign(cfg.Policy, costs, watoms, cfg.Tiles)

	res := SimResult{TileCycles: make([]int64, cfg.Tiles)}
	global := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	scratch := NewTileScratch() // one scratch reused across every intersection
	for g, chans := range groups {
		for _, c := range chans {
			for ti, tl := range tiles {
				tileFull := tensor.NewOutputMap(w.K, tl.H+w.KH-1, tl.W+w.KW-1)
				r := SimulateIntersectionScratch(actStreams[[2]int{c, ti}], wstreams[c], w.KH, w.KW, tl.W, tl.H, tileFull, cfg.Tile, scratch)
				res.TileCycles[g] += r.Cycles
				res.Stalls += r.StallCycles
				res.Products += r.Products
				res.Deliveries += r.Deliveries
				res.Conflicts += r.Conflicts
				res.Counters.Add(r.Counters)
				refconv.AddTileFull(global, tileFull, tl)
			}
		}
	}
	for _, c := range res.TileCycles {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	res.Output = refconv.ExtractStrided(global, f.H, f.W, w.KH, w.KW, stride, pad)
	return res
}
