package ristretto

import (
	"math/rand"
	"testing"

	"ristretto/internal/balance"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// The two cycle simulators model the same microarchitecture at different
// scopes: SimulateConv sums isolated per-intersection runs, SimulateCore
// advances every tile in one lockstep loop with load latency and output-port
// contention. On everything that is scope-independent — work counts, stall
// definition, crossbar conflicts and buffer traffic — they follow one shared
// accounting convention and must agree EXACTLY. This suite pins that parity;
// any divergence is an accounting regression in one of the two.

// sharedCounters extracts the energy counters both simulators charge under
// the unified convention.
func sharedCounters(c energy.Counters) map[string]int64 {
	return map[string]int64{
		"AtomMuls":       c.AtomMuls,
		"AtomizerOps":    c.AtomizerOps,
		"InputBufBytes":  c.InputBufBytes,
		"WeightBufBytes": c.WeightBufBytes,
		"AccBufBytes":    c.AccBufBytes,
		"OutputBufBytes": c.OutputBufBytes,
	}
}

func assertParity(t *testing.T, label string, conv SimResult, cs CoreSimResult) {
	t.Helper()
	if conv.Products != cs.Products {
		t.Errorf("%s: Products: tile-sim %d, core-sim %d", label, conv.Products, cs.Products)
	}
	if conv.Deliveries != cs.Deliveries {
		t.Errorf("%s: Deliveries: tile-sim %d, core-sim %d", label, conv.Deliveries, cs.Deliveries)
	}
	if conv.Conflicts != cs.Conflicts {
		t.Errorf("%s: Conflicts: tile-sim %d, core-sim %d", label, conv.Conflicts, cs.Conflicts)
	}
	if conv.Stalls != cs.Stalls {
		t.Errorf("%s: Stalls: tile-sim %d, core-sim %d (stall definitions diverged)", label, conv.Stalls, cs.Stalls)
	}
	want, got := sharedCounters(conv.Counters), sharedCounters(cs.Counters)
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: Counters.%s: tile-sim %d, core-sim %d", label, name, w, g)
		}
	}
	if len(conv.Output.Data) != len(cs.Output.Data) {
		t.Fatalf("%s: output shape diverged", label)
	}
	for i := range conv.Output.Data {
		if conv.Output.Data[i] != cs.Output.Data[i] {
			t.Fatalf("%s: output[%d]: tile-sim %d, core-sim %d", label, i, conv.Output.Data[i], cs.Output.Data[i])
		}
	}
}

// TestTileCoreCounterParity sweeps randomized sparse layers through both
// simulators with matched configurations and requires exact agreement on
// every shared counter.
func TestTileCoreCounterParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for i := 0; i < 12; i++ {
		g := workload.NewGen(int64(7100 + i))
		c := 1 + rng.Intn(4)
		h := 3 + rng.Intn(10)
		w := 3 + rng.Intn(10)
		k := 1 + rng.Intn(6)
		ks := 1 + 2*rng.Intn(2) // 1 or 3
		f := g.FeatureMap(c, h, w, 8, 0.2+0.6*rng.Float64())
		ws := g.Kernels(k, c, ks, ks, 8, 0.2+0.6*rng.Float64())
		tileCfg := TileConfig{
			Mults:     []int{1, 4, 8, 16}[rng.Intn(4)],
			Gran:      2,
			FIFODepth: 1 + rng.Intn(4),
		}
		tiles := 1 + rng.Intn(3)
		tw, th := 0, 0
		if rng.Intn(2) == 0 {
			tw, th = 1+rng.Intn(w), 1+rng.Intn(h)
		}
		conv := SimulateConv(f, ws, 1, ks/2, Config{Tiles: tiles, Tile: tileCfg, TileW: tw, TileH: th, Policy: balance.WeightAct})
		cs := SimulateCore(f, ws, 1, ks/2, CoreSimConfig{Tiles: tiles, Tile: tileCfg, TileW: tw, TileH: th, Policy: balance.WeightAct})
		assertParity(t, "randomized", conv, cs)
	}
}

// TestTileCoreParityDegenerate pins the parity on shapes that exercise edge
// paths: single-pixel maps, single output channel (maximum crossbar
// contention), unit FIFO depth, unit multiplier count, all-zero operands.
func TestTileCoreParityDegenerate(t *testing.T) {
	g := workload.NewGen(7200)
	cases := []struct {
		name   string
		f      *tensor.FeatureMap
		w      *tensor.KernelStack
		tile   TileConfig
		tiles  int
		tw, th int
	}{
		{name: "1x1_map", f: g.FeatureMap(2, 1, 1, 8, 1), w: g.Kernels(3, 2, 1, 1, 8, 1), tile: TileConfig{Mults: 4, Gran: 2}, tiles: 2},
		{name: "single_out_channel", f: g.FeatureMap(1, 6, 6, 8, 0.8), w: g.Kernels(1, 1, 3, 3, 8, 0.9), tile: TileConfig{Mults: 16, Gran: 2, FIFODepth: 1}, tiles: 1},
		{name: "unit_mults", f: g.FeatureMap(2, 4, 4, 8, 0.5), w: g.Kernels(2, 2, 3, 3, 8, 0.5), tile: TileConfig{Mults: 1, Gran: 2}, tiles: 1},
		{name: "unit_fifo_tiled", f: g.FeatureMap(3, 8, 8, 8, 0.6), w: g.Kernels(2, 3, 3, 3, 8, 0.6), tile: TileConfig{Mults: 8, Gran: 2, FIFODepth: 1}, tiles: 2, tw: 3, th: 3},
		{name: "zero_acts", f: tensor.NewFeatureMap(2, 4, 4, 8), w: g.Kernels(2, 2, 3, 3, 8, 0.5), tile: TileConfig{Mults: 8, Gran: 2}, tiles: 2},
		{name: "gran1", f: g.FeatureMap(2, 5, 5, 8, 0.5), w: g.Kernels(2, 2, 3, 3, 8, 0.5), tile: TileConfig{Mults: 8, Gran: 1, FIFODepth: 2}, tiles: 2},
	}
	for _, tc := range cases {
		conv := SimulateConv(tc.f, tc.w, 1, 0, Config{Tiles: tc.tiles, Tile: tc.tile, TileW: tc.tw, TileH: tc.th, Policy: balance.WeightAct})
		cs := SimulateCore(tc.f, tc.w, 1, 0, CoreSimConfig{Tiles: tc.tiles, Tile: tc.tile, TileW: tc.tw, TileH: tc.th, Policy: balance.WeightAct})
		assertParity(t, tc.name, conv, cs)
	}
}

// runSingleJob drives one handcrafted intersection through the lockstep
// tile state machine and returns the aggregate result.
func runSingleJob(job tileJob, cfg TileConfig, loadWidth, drainWidth int) CoreSimResult {
	var res CoreSimResult
	res.TileBusy = make([]int64, 1)
	ct := newCoreTile(cfg.withDefaults(), loadWidth, drainWidth, []tileJob{job}, &traceCtx{cycle: &res.Cycles}, nil, &res)
	for ct.state != tileIdle {
		res.Cycles++
		free := true
		ct.step(&res, &free)
	}
	return res
}

// TestDrainPhaseStallsCounted pins the unified stall definition: FIFO
// back-pressure cycles count whether the activation stream is still feeding
// or already consumed. The crafted stream (two single-atom activations, one
// output channel, unit-depth FIFOs) only stalls AFTER the last atom entered
// the chain — the old `!done` guard counted zero stalls here.
func TestDrainPhaseStallsCounted(t *testing.T) {
	acts := []core.ActAtom{
		{Mag: 1, Last: true, X: 0, Y: 0},
		{Mag: 1, Last: true, X: 1, Y: 0},
	}
	// Three weights, same slice, same output channel: every Last delivery
	// targets the same bank, and with depth-1 FIFOs deferred deliveries
	// block the advance.
	weights := []core.WeightAtom{
		{Mag: 1, K: 0, X: 0, Y: 0},
		{Mag: 1, K: 0, X: 0, Y: 0},
		{Mag: 1, K: 0, X: 0, Y: 0},
	}
	cfg := TileConfig{Mults: 4, Gran: 2, FIFODepth: 1}
	out := tensor.NewOutputMap(1, 1, 2)
	r := SimulateIntersection(acts, weights, 1, 1, 2, 1, out, cfg)
	if r.Conflicts == 0 {
		t.Fatalf("crafted stream produced no crossbar conflicts")
	}
	if r.StallCycles == 0 {
		t.Fatalf("drain-phase FIFO back-pressure produced zero StallCycles: stalls after stream consumption are not being counted")
	}
	// The same job through the lockstep state machine must report the same
	// stalls (and conflicts) — the unified definition.
	job := tileJob{acts: acts, weights: weights, tile: tensor.Tile{W: 2, H: 1}, full: tensor.NewOutputMap(1, 1, 2)}
	cs := runSingleJob(job, cfg, 4, 8)
	if cs.Stalls != r.StallCycles {
		t.Fatalf("core-sim Stalls %d != tile-sim StallCycles %d", cs.Stalls, r.StallCycles)
	}
	if cs.Conflicts != r.Conflicts {
		t.Fatalf("core-sim Conflicts %d != tile-sim Conflicts %d", cs.Conflicts, r.Conflicts)
	}
}

// TestEmptyBankDrainSkipped pins the phantom-drain fix: a slice whose
// products are all discarded by the comp module leaves the accumulate bank
// empty, and the tile must not occupy the output port (or charge output
// traffic) for a zero-entry drain.
func TestEmptyBankDrainSkipped(t *testing.T) {
	acts := []core.ActAtom{
		{Mag: 1, Last: true, X: 0, Y: 0},
		{Mag: 2, Last: true, X: 1, Y: 0},
	}
	// Kernel coordinates beyond the 1×1 window push every product out of
	// the full-conv range, so the comp module drops all deliveries.
	weights := []core.WeightAtom{
		{Mag: 1, K: 0, X: 7, Y: 7},
		{Mag: 1, K: 0, X: 7, Y: 7},
	}
	job := tileJob{acts: acts, weights: weights, tile: tensor.Tile{W: 2, H: 1}, full: tensor.NewOutputMap(1, 1, 2)}
	cfg := TileConfig{Mults: 4, Gran: 2, FIFODepth: 2}
	cs := runSingleJob(job, cfg, 4, 8)
	if cs.Deliveries != 0 {
		t.Fatalf("expected all deliveries dropped, got %d", cs.Deliveries)
	}
	if cs.Counters.OutputBufBytes != 0 || cs.Counters.AccBufBytes != 0 {
		t.Fatalf("empty-bank drain charged traffic: out=%dB acc=%dB", cs.Counters.OutputBufBytes, cs.Counters.AccBufBytes)
	}
	// Exact cycle count: the static load plus a stall-free stream pass —
	// t feed cycles, then m flush cycles until the chain-empty check sees
	// the last register clear — and nothing else: no phantom output-port
	// cycle for the zero-entry drain.
	loadCycles := int64(1) // ceil(2 atoms / loadWidth 4)
	stream := int64(len(acts) + len(weights))
	if want := loadCycles + stream; cs.Cycles != want {
		t.Fatalf("empty-bank job took %d cycles, want %d (load %d + stream %d, no drain cycle)", cs.Cycles, want, loadCycles, stream)
	}
	if cs.Stalls != 0 || cs.DrainWait != 0 {
		t.Fatalf("unexpected stalls %d / drain-wait %d on delivery-free job", cs.Stalls, cs.DrainWait)
	}
}

// TestScratchReuseIsClean runs two very different intersections through one
// scratch back to back and checks the second result is identical to a
// fresh-scratch run — the all-drained invariant between runs.
func TestScratchReuseIsClean(t *testing.T) {
	g := workload.NewGen(7300)
	f1 := g.FeatureMap(1, 9, 9, 8, 0.9)
	w1 := g.Kernels(5, 1, 3, 3, 8, 0.9)
	f2 := g.FeatureMap(1, 4, 4, 8, 0.4)
	w2 := g.Kernels(2, 1, 1, 1, 8, 0.4)
	cfg := TileConfig{Mults: 8, Gran: 2, FIFODepth: 2}

	stream := func(f *tensor.FeatureMap, w *tensor.KernelStack) ([]core.ActAtom, []core.WeightAtom) {
		return core.StreamTileActs(f, 0, tensor.Tile{W: f.W, H: f.H}, cfg.Gran),
			core.CompressWeights(core.FlattenKernels(w, 0, nil), w.Bits, cfg.Gran, false)
	}
	a1, s1 := stream(f1, w1)
	a2, s2 := stream(f2, w2)

	s := NewTileScratch()
	big := tensor.NewOutputMap(w1.K, f1.H+w1.KH-1, f1.W+w1.KW-1)
	SimulateIntersectionScratch(a1, s1, w1.KH, w1.KW, f1.W, f1.H, big, cfg, s)

	reused := tensor.NewOutputMap(w2.K, f2.H+w2.KH-1, f2.W+w2.KW-1)
	rReused := SimulateIntersectionScratch(a2, s2, w2.KH, w2.KW, f2.W, f2.H, reused, cfg, s)
	fresh := tensor.NewOutputMap(w2.K, f2.H+w2.KH-1, f2.W+w2.KW-1)
	rFresh := SimulateIntersection(a2, s2, w2.KH, w2.KW, f2.W, f2.H, fresh, cfg)

	if rReused != rFresh {
		t.Fatalf("scratch reuse changed the result:\nreused %+v\nfresh  %+v", rReused, rFresh)
	}
	for i := range fresh.Data {
		if fresh.Data[i] != reused.Data[i] {
			t.Fatalf("scratch reuse corrupted output[%d]: %d vs %d", i, reused.Data[i], fresh.Data[i])
		}
	}
}
