package ristretto

import (
	"testing"

	"ristretto/internal/balance"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

// Integration: a three-layer mini-network runs layer by layer on the
// lockstep core simulator, with the post-processing unit producing each next
// input — the deepest end-to-end path in the repository. The final tensor
// must equal the dense reference chain, and the per-layer latencies must be
// consistent with the accumulated statistics.
func TestEndToEndCoreSimulation(t *testing.T) {
	g := workload.NewGen(80)
	input := g.FeatureMap(3, 16, 16, 8, 0.55)
	type layer struct {
		k           *tensor.KernelStack
		stride, pad int
		post        PostProcessor
	}
	layers := []layer{
		{g.Kernels(8, 3, 3, 3, 4, 0.5), 1, 1, PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 5}},
		{g.Kernels(8, 8, 3, 3, 8, 0.45), 2, 1, PostProcessor{OutBits: 4, Gran: 2, ShiftRight: 9}},
		{g.Kernels(4, 8, 1, 1, 2, 0.5), 1, 0, PostProcessor{OutBits: 8, Gran: 2, ShiftRight: 1}},
	}
	cfg := CoreSimConfig{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}, Policy: balance.WeightAct}

	cur := input
	ref := input
	var totalCycles int64
	for li, l := range layers {
		res := SimulateCore(cur, l.k, l.stride, l.pad, cfg)
		want := refconv.Conv(ref, l.k, l.stride, l.pad)
		if !res.Output.Equal(want) {
			t.Fatalf("layer %d: core sim diverged (maxdiff %d)", li, res.Output.MaxAbsDiff(want))
		}
		if res.Cycles <= 0 {
			t.Fatalf("layer %d: no cycles", li)
		}
		totalCycles += res.Cycles

		fm, counts := l.post.Run(res.Output)
		refFM, _ := l.post.Run(want)
		for i := range fm.Data {
			if fm.Data[i] != refFM.Data[i] {
				t.Fatalf("layer %d: post-processing diverged", li)
			}
		}
		// PPU statistics must match a direct measurement of the produced
		// tensor (they seed the next layer's balancer).
		sum := 0
		for _, c := range counts {
			sum += c
		}
		meas := 0
		for c := 0; c < fm.C; c++ {
			for _, v := range fm.Channel(c) {
				if v != 0 {
					meas += countAtoms(v, fm.Bits)
				}
			}
		}
		if sum != meas {
			t.Fatalf("layer %d: PPU atom count %d != measured %d", li, sum, meas)
		}
		cur, ref = fm, refFM
	}
	if totalCycles <= 0 {
		t.Fatal("no total latency")
	}
	if cur.C != 4 {
		t.Fatalf("final tensor has %d channels, want 4", cur.C)
	}
}

func countAtoms(v int32, bits int) int {
	cnt := 0
	mag := v
	for i := 0; i < (bits+1)/2; i++ {
		if (mag>>(2*i))&3 != 0 {
			cnt++
		}
	}
	return cnt
}
