package ristretto

import (
	"math"
	"math/rand"
	"testing"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/core"
	"ristretto/internal/model"
	"ristretto/internal/refconv"
	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func simCase(t *testing.T, seed int64, c, h, wd, kk, ks, abits, wbits int, cfg Config, stride, pad int) SimResult {
	t.Helper()
	g := workload.NewGen(seed)
	f := g.FeatureMapExact(c, h, wd, abits, cfg.Tile.Gran, 0.5, 0.7)
	w := g.KernelsExact(kk, c, ks, ks, wbits, cfg.Tile.Gran, 0.6, 0.7)
	res := SimulateConv(f, w, stride, pad, cfg)
	want := refconv.Conv(f, w, stride, pad)
	if !res.Output.Equal(want) {
		t.Fatalf("seed=%d: cycle sim output differs from reference (maxdiff %d)", seed, res.Output.MaxAbsDiff(want))
	}
	return res
}

func TestSimulateConvBitExact(t *testing.T) {
	cfgs := []Config{
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}},
		{Tiles: 1, Tile: TileConfig{Mults: 32, Gran: 2}},
		{Tiles: 2, Tile: TileConfig{Mults: 3, Gran: 2}, TileW: 4, TileH: 4},
		{Tiles: 2, Tile: TileConfig{Mults: 16, Gran: 1}},
		{Tiles: 2, Tile: TileConfig{Mults: 16, Gran: 3}},
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}, Policy: balance.WeightAct},
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2}, Dense: true},
		{Tiles: 4, Tile: TileConfig{Mults: 8, Gran: 2, FIFODepth: 1}},
	}
	for i, cfg := range cfgs {
		simCase(t, int64(i+1), 3, 8, 8, 4, 3, 8, 8, cfg, 1, 1)
	}
}

func TestSimulateConvMixedPrecision(t *testing.T) {
	for i, bits := range [][2]int{{2, 2}, {4, 4}, {2, 8}, {8, 2}, {4, 8}} {
		cfg := Config{Tiles: 2, Tile: TileConfig{Mults: 8, Gran: 2}}
		simCase(t, int64(100+i), 2, 6, 6, 3, 3, bits[0], bits[1], cfg, 1, 0)
	}
}

func TestSimulateConvRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		cfg := Config{
			Tiles: 1 + rng.Intn(4),
			Tile:  TileConfig{Mults: 1 + rng.Intn(16), Gran: atom.Granularity(rng.Intn(3) + 1), FIFODepth: 1 + rng.Intn(4)},
			TileW: 1 + rng.Intn(6), TileH: 1 + rng.Intn(6),
			Policy: balance.Policy(rng.Intn(3)),
		}
		simCase(t, int64(200+i), 1+rng.Intn(3), 4+rng.Intn(6), 4+rng.Intn(6),
			1+rng.Intn(4), 1+2*rng.Intn(2), []int{2, 4, 8}[rng.Intn(3)], []int{2, 4, 8}[rng.Intn(3)], cfg, 1+rng.Intn(2), rng.Intn(2))
	}
}

func TestCycleCountMatchesSliceAlignedPredictor(t *testing.T) {
	// With many output channels (no bank contention) the simulator must hit
	// the stall-free slice-aligned step count exactly.
	g := workload.NewGen(7)
	f := g.FeatureMapExact(1, 6, 6, 8, 2, 0.5, 0.7)
	// Every output channel gets exactly one atom per slice (value 85 =
	// 0b01010101), so each chunk holds 8 distinct channels: no contention.
	w := tensor.NewKernelStack(16, 1, 1, 1, 8)
	for k := 0; k < 16; k++ {
		w.Set(k, 0, 0, 0, 85)
	}
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 6, H: 6}), 8, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	out := tensor.NewOutputMap(16, 6, 6)
	r := SimulateIntersection(acts, ws, 1, 1, 6, 6, out, TileConfig{Mults: 8, Gran: 2, FIFODepth: 4})
	if r.StallCycles != 0 {
		t.Fatalf("unexpected stalls: %d", r.StallCycles)
	}
	// +1: the last delivery spends one writeback cycle in the crossbar
	// after the final intersection step.
	want := SliceAlignedSteps(len(acts), ws, 8) + 1
	if r.Cycles != want {
		t.Fatalf("cycles %d != slice-aligned predictor %d", r.Cycles, want)
	}
}

func TestSliceAlignedNearEq3(t *testing.T) {
	// The paper's Eq. 3 (slice-agnostic chunking) should be close to the
	// slice-aligned schedule when S >> N.
	g := workload.NewGen(8)
	w := g.KernelsExact(32, 1, 3, 3, 8, 2, 0.7, 0.7)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	tAtoms := 500
	aligned := float64(SliceAlignedSteps(tAtoms, ws, 32))
	eq3 := float64(core.Steps(tAtoms, len(ws), 32))
	if math.Abs(aligned-eq3)/eq3 > 0.12 {
		t.Fatalf("slice-aligned %v vs Eq.3 %v differ by >12%%", aligned, eq3)
	}
}

func TestBankContentionStalls(t *testing.T) {
	// A single output channel forces every delivery into one bank; with
	// 2-bit activations every atom delivers, so an 8-wide chain must stall.
	g := workload.NewGen(9)
	f := g.FeatureMapExact(1, 8, 8, 2, 2, 1.0, 1.0)
	w := g.KernelsExact(1, 1, 3, 3, 8, 2, 1.0, 1.0)
	acts := core.CompressActs(core.FlattenTile(f, 0, tensor.Tile{W: 8, H: 8}), 2, 2, false)
	ws := core.CompressWeights(core.FlattenKernels(w, 0, nil), 8, 2, false)
	out := tensor.NewOutputMap(1, 10, 10)
	r := SimulateIntersection(acts, ws, 3, 3, 8, 8, out, TileConfig{Mults: 8, Gran: 2, FIFODepth: 2})
	if r.StallCycles == 0 {
		t.Fatal("expected crossbar stalls with a single output channel")
	}
	// Numerics must survive the stalls.
	want := refconv.FullConv(f, w)
	if !out.Equal(want) {
		t.Fatal("stalled simulation corrupted results")
	}
}

func TestEstimateLayerMatchesCycleSim(t *testing.T) {
	// The analytic Eq. 3/5 model must track the cycle simulator within a
	// few percent on a contention-free layer.
	g := workload.NewGen(10)
	l := model.Layer{Name: "t", C: 6, H: 12, W: 12, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	f := g.FeatureMap(l.C, l.H, l.W, 8, 0.5)
	w := g.Kernels(l.K, l.C, l.KH, l.KW, 8, 0.5)
	cfg := Config{Tiles: 2, Tile: TileConfig{Mults: 8, Gran: 2}, Policy: balance.WeightAct}
	sim := SimulateConv(f, w, l.Stride, l.Pad, cfg)
	st := workload.StatsFromTensors(l, f, w, 2, true)
	est := EstimateLayer(st, cfg)
	ratio := float64(sim.Cycles) / float64(est.Cycles)
	if ratio < 0.95 || ratio > 1.15 {
		t.Fatalf("sim %d vs estimate %d (ratio %.3f) outside tolerance", sim.Cycles, est.Cycles, ratio)
	}
}

func TestDenseCostsMoreThanSparse(t *testing.T) {
	g := workload.NewGen(11)
	l := model.Layer{Name: "t", C: 4, H: 10, W: 10, K: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	f := g.FeatureMap(l.C, l.H, l.W, 8, 0.4)
	w := g.Kernels(l.K, l.C, l.KH, l.KW, 8, 0.4)
	st := workload.StatsFromTensors(l, f, w, 2, true)
	cfg := Config{Tiles: 2, Tile: TileConfig{Mults: 8, Gran: 2}, Policy: balance.WeightAct}
	sparse := EstimateLayer(st, cfg)
	cfg.Dense = true
	dense := EstimateLayer(st, cfg)
	if dense.Cycles <= sparse.Cycles*2 {
		t.Fatalf("dense (%d) should far exceed sparse (%d) at ~40%% density", dense.Cycles, sparse.Cycles)
	}
}

func TestBalancingImprovesLatency(t *testing.T) {
	g := workload.NewGen(12)
	l := model.Layer{Name: "t", C: 32, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	// Skewed channel densities: regenerate activations per channel.
	f := tensor.NewFeatureMap(l.C, l.H, l.W, 8)
	for c := 0; c < l.C; c++ {
		d := 0.05 + 0.9*float64(c)/float64(l.C)
		src := g.FeatureMap(1, l.H, l.W, 8, d)
		copy(f.Channel(c), src.Channel(0))
	}
	w := g.Kernels(l.K, l.C, l.KH, l.KW, 8, 0.5)
	st := workload.StatsFromTensors(l, f, w, 2, true)
	base := Config{Tiles: 8, Tile: TileConfig{Mults: 8, Gran: 2}}
	none := EstimateLayer(st, withPolicy(base, balance.None))
	wa := EstimateLayer(st, withPolicy(base, balance.WeightAct))
	if wa.Cycles > none.Cycles {
		t.Fatalf("w/a balancing (%d) worse than none (%d)", wa.Cycles, none.Cycles)
	}
	if wa.Utilization < none.Utilization {
		t.Fatalf("w/a utilization %.3f below none %.3f", wa.Utilization, none.Utilization)
	}
}

func withPolicy(c Config, p balance.Policy) Config { c.Policy = p; return c }

func TestEstimateNetwork(t *testing.T) {
	g := workload.NewGen(13)
	n := model.AlexNet()
	p := model.Uniform(n, 4)
	stats := g.NetworkStats(n, p, 2, true)
	perf := EstimateNetwork(stats, DefaultConfig())
	if perf.Cycles <= 0 || len(perf.Layers) != len(n.Layers) {
		t.Fatalf("bad network perf: %d cycles, %d layers", perf.Cycles, len(perf.Layers))
	}
	var sum int64
	for _, lp := range perf.Layers {
		sum += lp.Cycles
	}
	if sum != perf.Cycles {
		t.Fatal("network cycles must be the sum of layer cycles")
	}
	if perf.Counters.AtomMuls == 0 || perf.Counters.DRAMBytes == 0 {
		t.Fatal("counters not populated")
	}
}

func TestLowerPrecisionIsFaster(t *testing.T) {
	g := workload.NewGen(14)
	n := model.AlexNet()
	var prev int64 = -1
	for _, bits := range []int{8, 4, 2} {
		stats := g.NetworkStats(n, model.Uniform(n, bits), 2, true)
		perf := EstimateNetwork(stats, DefaultConfig())
		if prev > 0 && perf.Cycles >= prev {
			t.Fatalf("%d-bit (%d cycles) not faster than previous (%d)", bits, perf.Cycles, prev)
		}
		prev = perf.Cycles
	}
}

func TestSpatialExtension16Bit(t *testing.T) {
	// Section IV-D: wider shifters let CSC run 16-bit operands directly.
	g := workload.NewGen(15)
	f := tensor.NewFeatureMap(2, 5, 5, 16)
	for i := range f.Data {
		f.Data[i] = int32(g.SparseVector(1, 8, 0.7, false)[0]) * 257 % 65536
	}
	w := tensor.NewKernelStack(2, 2, 3, 3, 16)
	rng := rand.New(rand.NewSource(16))
	for i := range w.Data {
		if rng.Intn(2) == 0 {
			w.Data[i] = int32(rng.Intn(65535) - 32767)
		}
	}
	got, _ := core.Convolve(f, w, 1, 1, core.Config{Gran: 2, Multiplier: 16})
	want := refconv.Conv(f, w, 1, 1)
	if !got.Equal(want) {
		t.Fatalf("16-bit spatial extension mismatch (maxdiff %d)", got.MaxAbsDiff(want))
	}
}

func TestTemporalDecomposition16Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := tensor.NewFeatureMap(2, 4, 4, 16)
	for i := range f.Data {
		f.Data[i] = int32(rng.Intn(1 << 16))
	}
	w := tensor.NewKernelStack(2, 2, 3, 3, 16)
	for i := range w.Data {
		w.Data[i] = int32(rng.Intn(1<<16-1) - (1<<15 - 1))
	}
	subs := TemporalDecompose(f, w)
	if len(subs) != 4 {
		t.Fatalf("%d sub-models, want 4", len(subs))
	}
	got, st := ConvolveDecomposed(subs, 1, 0, core.Config{Gran: 2, Multiplier: 8})
	want := refconv.Conv(f, w, 1, 0)
	if !got.Equal(want) {
		t.Fatalf("temporal decomposition mismatch (maxdiff %d)", got.MaxAbsDiff(want))
	}
	if st.Products == 0 {
		t.Fatal("no work recorded")
	}
}

func TestTemporalDecomposeRejectsLowPrecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-16-bit operands")
		}
	}()
	TemporalDecompose(tensor.NewFeatureMap(1, 2, 2, 8), tensor.NewKernelStack(1, 1, 1, 1, 8))
}
