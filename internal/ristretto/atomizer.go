package ristretto

import (
	"ristretto/internal/atom"
	"ristretto/internal/core"
)

// This file models the Atomizer at word granularity (Section IV-C1). The
// tile simulator abstracts the Atomizer as "one non-zero atom per cycle";
// here we verify that abstraction from the actual word-parsing behaviour:
// the Atomizer reads one 8-bit word from the input buffer — holding one
// 8-bit, two 4-bit or four 2-bit activations — and scans it with a
// leading-one detector, emitting exactly one non-zero atom with its shift
// offset, last flag and latched (x,y) coordinate per cycle.

// Word is one 8-bit input-buffer word plus the coordinates of the
// activations packed into it (one per activation, low bits first).
type Word struct {
	Bits uint8 // packed payload
	XY   [][2]uint8
}

// PackWords packs a compressed (zero-values-removed) activation stream into
// 8-bit words at the given activation bit-width. Activations within a word
// occupy ascending bit positions.
func PackWords(elems []core.ActElem, bits int) []Word {
	perWord := 8 / bits
	if perWord < 1 {
		perWord = 1
	}
	var words []Word
	for i := 0; i < len(elems); i += perWord {
		var w Word
		for j := 0; j < perWord && i+j < len(elems); j++ {
			e := elems[i+j]
			w.Bits |= uint8(e.Val) << (j * bits)
			w.XY = append(w.XY, [2]uint8{e.X, e.Y})
		}
		words = append(words, w)
	}
	return words
}

// AtomizerTrace reports a word-level Atomizer scan.
type AtomizerTrace struct {
	Atoms      []core.ActAtom
	HoldCycles []int // cycles each word occupied the Atomizer
	Cycles     int   // total scan cycles (== len(Atoms): one atom per cycle)
}

// ScanWords runs the word-level Atomizer over a packed stream: per cycle it
// emits the next non-zero atom of the current word via leading-one
// detection, latching the owning activation's coordinate, and pulls the
// next word when the current one is exhausted. Since zero values were
// removed upstream, every word yields at least one atom per held cycle.
func ScanWords(words []Word, bits int, gran atom.Granularity) AtomizerTrace {
	var tr AtomizerTrace
	perWord := 8 / bits
	if perWord < 1 {
		perWord = 1
	}
	mask := int32(1)<<bits - 1
	for _, w := range words {
		hold := 0
		for j := 0; j < len(w.XY); j++ {
			v := (int32(w.Bits) >> (j * bits)) & mask
			if v == 0 {
				// A packed slot can only be zero in the final,
				// partially-filled word of the stream.
				continue
			}
			for _, a := range atom.Decompose(v, bits, gran) {
				tr.Atoms = append(tr.Atoms, core.ActAtom{
					Mag: a.Mag, Shift: a.Shift, Last: a.Last,
					X: w.XY[j][0], Y: w.XY[j][1],
				})
				hold++
			}
		}
		tr.HoldCycles = append(tr.HoldCycles, hold)
		tr.Cycles += hold
	}
	return tr
}

// MaxHoldCycles returns the paper's bound on how long an 8-bit word can
// occupy the Atomizer: ⌈8/N⌉ cycles for a full 8-bit activation, and one
// cycle per activation at 2-bit quantization with 2-bit atoms.
func MaxHoldCycles(bits int, gran atom.Granularity) int {
	perWord := 8 / bits
	if perWord < 1 {
		perWord = 1
	}
	return perWord * gran.Count(bits)
}
