package ristretto

import (
	"fmt"

	"ristretto/internal/balance"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/refconv"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
)

// This file is the whole-core lockstep simulator: all M compute tiles of
// Figure 7 advance in a single global cycle loop, contending for the shared
// output buffer when they drain accumulate banks. Compared with
// SimulateConv (which sums per-intersection cycle counts per tile), the
// core simulator additionally models:
//
//   - the initial static-stream load of each round from the tile's local
//     weight buffer (ping-pong hides subsequent loads, not the first);
//   - the shared output buffer's write port: one tile drains per cycle,
//     others queue (aggregation of "results of different compute tiles",
//     Section IV-C4);
//   - true concurrency, so the reported latency is the cycle the last tile
//     retires — enabling cross-tile traces.

// CoreSimConfig extends the tile configuration with core-level parameters.
type CoreSimConfig struct {
	Tiles      int
	Tile       TileConfig
	TileW      int
	TileH      int
	Policy     balance.Policy
	LoadWidth  int // weight atoms loaded per cycle into the static registers (default 4)
	DrainWidth int // accumulate-bank entries drained per cycle through the output port (default 8)

	// Trace, when non-nil, receives a compact event stream of tile state
	// transitions (see TraceEvent).
	Trace Tracer
}

func (c CoreSimConfig) withDefaults() CoreSimConfig {
	if c.Tiles == 0 {
		c.Tiles = 4
	}
	c.Tile = c.Tile.withDefaults()
	if c.LoadWidth == 0 {
		c.LoadWidth = 4
	}
	if c.DrainWidth == 0 {
		c.DrainWidth = 8
	}
	return c
}

// CoreSimResult reports a lockstep core simulation.
type CoreSimResult struct {
	Output     *tensor.OutputMap
	Cycles     int64   // global cycles until the last tile retires
	TileBusy   []int64 // cycles each tile spent non-idle
	DrainWait  int64   // cycles tiles spent queued on the output port
	LoadCycles int64   // cycles spent loading static streams
	Stalls     int64   // crossbar/FIFO stalls inside tiles
	Conflicts  int64   // crossbar deliveries deferred by a same-bank write
	Stages     telemetry.StageCycles
	Counters   energy.Counters
}

// tileJob is one (input channel, spatial tile) intersection assigned to a
// compute tile.
type tileJob struct {
	acts    []core.ActAtom
	weights []core.WeightAtom
	tile    tensor.Tile
	full    *tensor.OutputMap
}

type coreTileState int

const (
	tileLoading coreTileState = iota
	tileStreaming
	tileDraining
	tileIdle
)

// coreTile is the per-tile state machine of the lockstep simulation.
type coreTile struct {
	cfg        TileConfig
	loadWidth  int
	drainWidth int
	jobs       []tileJob
	job        int
	state      coreTileState

	tc *traceCtx

	chunks   [][]core.WeightAtom
	chunk    int
	loadLeft int
	pos      int
	slots    []slot
	bank     map[bankKey]int32

	drainLeft  int   // cycles of output-port occupancy requested
	drainShift uint8 // decoupled weight-slice shift of the pending drain

	occ  *telemetry.Histogram // accumulate-bank occupancy at drain (nil = telemetry off)
	busy int64
}

type bankKey struct {
	k    uint16
	addr int
}

func newCoreTile(cfg TileConfig, loadWidth, drainWidth int, jobs []tileJob, tc *traceCtx, occ *telemetry.Histogram) *coreTile {
	t := &coreTile{cfg: cfg, loadWidth: loadWidth, drainWidth: drainWidth, jobs: jobs, bank: map[bankKey]int32{}, tc: tc, occ: occ}
	t.nextJob()
	return t
}

func (t *coreTile) nextJob() {
	for t.job < len(t.jobs) {
		j := t.jobs[t.job]
		if len(j.acts) == 0 || len(j.weights) == 0 {
			t.job++
			continue
		}
		t.tc.emit("job_start", t.job, 0, fmt.Sprintf("acts=%d watoms=%d", len(j.acts), len(j.weights)))
		t.chunks = t.chunks[:0]
		start := 0
		for start < len(j.weights) {
			end := start
			for end < len(j.weights) && end-start < t.cfg.Mults && j.weights[end].Shift == j.weights[start].Shift {
				end++
			}
			t.chunks = append(t.chunks, j.weights[start:end])
			start = end
		}
		t.chunk = 0
		t.startChunk()
		return
	}
	t.state = tileIdle
	t.tc.emit("tile_done", t.job, 0, "")
}

func (t *coreTile) startChunk() {
	chunk := t.chunks[t.chunk]
	t.slots = make([]slot, len(chunk))
	for i := range t.slots {
		t.slots[i].w = chunk[i]
	}
	t.pos = 0
	t.tc.emit("chunk_start", t.job, t.chunk, fmt.Sprintf("m=%d shift=%d", len(chunk), chunk[0].Shift))
	// The first chunk of a job loads its static stream explicitly; later
	// chunks are hidden by the ping-pong registers.
	if t.chunk == 0 {
		t.loadLeft = (len(chunk) + t.loadWidth - 1) / t.loadWidth
		t.state = tileLoading
	} else {
		t.state = tileStreaming
	}
}

// step advances the tile one cycle. It returns counters deltas via res.
func (t *coreTile) step(res *CoreSimResult, drainPortFree *bool) {
	if t.state == tileIdle {
		return
	}
	t.busy++
	j := t.jobs[t.job]
	switch t.state {
	case tileLoading:
		// The stream pipeline waits on the static-stream fill: all three
		// stages idle (the load is accounted separately in LoadCycles).
		res.Stages.Idle[telemetry.StageAtomizer]++
		res.Stages.Idle[telemetry.StageAtomputer]++
		res.Stages.Idle[telemetry.StageAtomulator]++
		t.loadLeft--
		res.LoadCycles++
		res.Counters.WeightBufBytes += 4
		if t.loadLeft <= 0 {
			t.state = tileStreaming
		}
	case tileDraining:
		// The accumulate-buffer drain is Atomulator work; the upstream
		// stages have nothing to do until the next chunk starts.
		res.Stages.Idle[telemetry.StageAtomizer]++
		res.Stages.Idle[telemetry.StageAtomputer]++
		if !*drainPortFree {
			res.Stages.Stall[telemetry.StageAtomulator]++
			res.DrainWait++
			return
		}
		res.Stages.Busy[telemetry.StageAtomulator]++
		*drainPortFree = false
		t.drainLeft--
		res.Counters.OutputBufBytes += int64(t.cfg.Mults) // port width in bytes/cycle
		if t.drainLeft <= 0 {
			t.tc.emit("drain_end", t.job, t.chunk, fmt.Sprintf("entries=%d shift=%d", len(t.bank), t.drainShift))
			// Commit the bank contents with the decoupled shift.
			fullW := j.tile.W + jobKW(j) - 1
			for key, v := range t.bank {
				j.full.Add(int(key.k), key.addr/fullW, key.addr%fullW, v<<t.drainShift)
			}
			t.bank = map[bankKey]int32{}
			t.chunk++
			if t.chunk < len(t.chunks) {
				t.startChunk()
			} else {
				t.job++
				t.nextJob()
			}
		}
	case tileStreaming:
		t.streamCycle(res)
	}
}

func jobKW(j tileJob) int { return j.full.W - j.tile.W + 1 }
func jobKH(j tileJob) int { return j.full.H - j.tile.H + 1 }

// streamCycle is one pipeline cycle of the Atomputer/Atomulator, the same
// semantics as SimulateIntersection but resumable.
func (t *coreTile) streamCycle(res *CoreSimResult) {
	j := t.jobs[t.job]
	kh, kw := jobKH(j), jobKW(j)
	fullW, fullH := j.tile.W+kw-1, j.tile.H+kh-1

	// Crossbar: one delivery per bank per cycle.
	written := map[uint16]bool{}
	pending := false
	wrote := 0
	for s := range t.slots {
		if len(t.slots[s].fifo) == 0 {
			continue
		}
		pending = true
		d := t.slots[s].fifo[0]
		if written[d.k] {
			res.Conflicts++
			continue
		}
		written[d.k] = true
		t.slots[s].fifo = t.slots[s].fifo[1:]
		t.bank[bankKey{d.k, d.addr}] += d.val
		wrote++
		res.Counters.AccBufBytes += 4
	}

	advance := true
	for s := range t.slots {
		if len(t.slots[s].fifo) >= t.cfg.FIFODepth {
			advance = false
			break
		}
	}
	hadInput := t.pos < len(j.acts)
	fed, multed := false, false
	if advance {
		for s := len(t.slots) - 1; s > 0; s-- {
			t.slots[s].reg = t.slots[s-1].reg
		}
		if t.pos < len(j.acts) {
			a := j.acts[t.pos]
			t.pos++
			fed = true
			t.slots[0].reg = &a
			res.Counters.AtomizerOps++
			res.Counters.InputBufBytes++
		} else {
			t.slots[0].reg = nil
		}
		for s := range t.slots {
			a := t.slots[s].reg
			if a == nil {
				continue
			}
			multed = true
			res.Counters.AtomMuls++
			t.slots[s].acc += int32(t.slots[s].w.Mag) * (int32(a.Mag) << a.Shift)
			if a.Last {
				v := t.slots[s].acc
				if t.slots[s].w.Sign {
					v = -v
				}
				t.slots[s].acc = 0
				xo, yo := core.OutCoord(int(t.slots[s].w.X), int(t.slots[s].w.Y), int(a.X), int(a.Y), kh, kw)
				if xo >= 0 && xo < fullW && yo >= 0 && yo < fullH {
					t.slots[s].fifo = append(t.slots[s].fifo, delivery{k: t.slots[s].w.K, addr: core.OutAddr(xo, yo, j.tile.W, kw), val: v})
				}
			}
		}
	} else {
		res.Stalls++
	}
	classifyStages(&res.Stages, fed, multed, advance, hadInput, pending, wrote)

	// Chunk complete when the stream has fully drained through the chain
	// and FIFOs are empty; then request the output port for the bank drain
	// if this is the last chunk of its slice.
	if t.pos >= len(j.acts) {
		empty := true
		for s := range t.slots {
			if t.slots[s].reg != nil || len(t.slots[s].fifo) != 0 {
				empty = false
				break
			}
		}
		if empty {
			shift := t.slots[0].w.Shift
			lastOfSlice := t.chunk == len(t.chunks)-1 || t.chunks[t.chunk+1][0].Shift != shift
			if lastOfSlice {
				t.tc.emit("drain_start", t.job, t.chunk, "")
				if t.occ != nil {
					t.occ.Observe(int64(len(t.bank)))
				}
				t.drainShift = shift
				t.drainLeft = (len(t.bank) + t.drainWidth - 1) / t.drainWidth
				if t.drainLeft < 1 {
					t.drainLeft = 1
				}
				t.state = tileDraining
			} else {
				t.chunk++
				t.startChunk()
			}
		}
	}
}

// SimulateCore runs one layer through the lockstep core simulator and
// extracts the strided output. The numeric result is bit-exact against
// refconv.Conv.
func SimulateCore(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg CoreSimConfig) CoreSimResult {
	cfg = cfg.withDefaults()
	tw, th := cfg.TileW, cfg.TileH
	if tw == 0 {
		tw = f.W
	}
	if th == 0 {
		th = f.H
	}
	tiles := tensor.TileGrid(f.W, f.H, tw, th)

	// Offline: streams and balancing.
	wstreams := make([][]core.WeightAtom, f.C)
	costs := make([]int64, f.C)
	watoms := make([]int, f.C)
	for c := 0; c < f.C; c++ {
		wstreams[c] = core.CompressWeights(core.FlattenKernels(w, c, nil), w.Bits, cfg.Tile.Gran, false)
		watoms[c] = len(wstreams[c])
	}
	actStreams := map[[2]int][]core.ActAtom{}
	tatoms := make([]int, f.C)
	for c := 0; c < f.C; c++ {
		for ti, tl := range tiles {
			acts := core.CompressActs(core.FlattenTile(f, c, tl), f.Bits, cfg.Tile.Gran, false)
			actStreams[[2]int{c, ti}] = acts
			tatoms[c] += len(acts)
		}
		costs[c] = balance.Cost(tatoms[c], watoms[c], cfg.Tile.Mults)
	}
	groups := balance.Assign(cfg.Policy, costs, watoms, cfg.Tiles)

	// Per-tile job lists; every job owns its private full buffer so the
	// overlap-add stays race-free across tiles.
	var occHist *telemetry.Histogram
	if telemetry.Default.Enabled() {
		occHist = telemetry.Default.Histogram("ristretto.accbuf.occupancy_entries")
		var actAtoms, wAtoms int64
		for c := 0; c < f.C; c++ {
			actAtoms += int64(tatoms[c])
			wAtoms += int64(watoms[c])
		}
		telemetry.Default.Counter("ristretto.stream.act_atoms").Add(actAtoms)
		telemetry.Default.Counter("ristretto.stream.weight_atoms").Add(wAtoms)
	}
	res := CoreSimResult{TileBusy: make([]int64, cfg.Tiles)}
	cts := make([]*coreTile, cfg.Tiles)
	tcs := make([]*traceCtx, cfg.Tiles)
	for g := range tcs {
		tcs[g] = &traceCtx{tracer: cfg.Trace, cycle: &res.Cycles, tile: g}
	}
	fulls := []tileJob{}
	for g, chans := range groups {
		var jobs []tileJob
		for _, c := range chans {
			for ti, tl := range tiles {
				j := tileJob{
					acts:    actStreams[[2]int{c, ti}],
					weights: wstreams[c],
					tile:    tl,
					full:    tensor.NewOutputMap(w.K, tl.H+w.KH-1, tl.W+w.KW-1),
				}
				jobs = append(jobs, j)
				fulls = append(fulls, j)
			}
		}
		cts[g] = newCoreTile(cfg.Tile, cfg.LoadWidth, cfg.DrainWidth, jobs, tcs[g], occHist)
	}

	// Global cycle loop.
	for {
		allIdle := true
		for _, ct := range cts {
			if ct.state != tileIdle {
				allIdle = false
				break
			}
		}
		if allIdle {
			break
		}
		res.Cycles++
		drainPortFree := true
		for g, ct := range cts {
			before := ct.busy
			ct.step(&res, &drainPortFree)
			res.TileBusy[g] += ct.busy - before
		}
	}

	global := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	for _, j := range fulls {
		refconv.AddTileFull(global, j.full, j.tile)
	}
	res.Output = refconv.ExtractStrided(global, f.H, f.W, w.KH, w.KW, stride, pad)
	telemetry.Default.AddStageCycles(res.Stages)
	return res
}
